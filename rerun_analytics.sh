#!/usr/bin/env bash
# Post-recalibration partial re-run: fig03 executed before the
# in-memory-analytics scan-stride/RDD-cache recalibration; its
# analytics series below supersedes the one above.  (Every other
# harness in this file already ran with the recalibrated model.)
set -euo pipefail
cd "$(dirname "$0")" || exit

if [[ ! -x build/bench/fig03_slowmem_rate ]]; then
    echo "rerun_analytics.sh: build/bench/fig03_slowmem_rate not found;" \
         "build the tree first (cmake -B build -S . && cmake --build build -j)" >&2
    exit 2
fi

{
echo ""
echo "################################################################"
echo "# RERUN: in-memory-analytics series of Figure 3 after the"
echo "# scan-stride and RDD-cache recalibration (supersedes above)."
echo "################################################################"
echo "===== rerun:fig03_slowmem_rate (in-memory-analytics) ====="
THERMOSTAT_ONLY=in-memory-analytics ./build/bench/fig03_slowmem_rate
} >> bench_output.txt 2>&1
