#!/bin/bash
# Post-recalibration partial re-run: fig03 executed before the
# in-memory-analytics scan-stride/RDD-cache recalibration; its
# analytics series below supersedes the one above.  (Every other
# harness in this file already ran with the recalibrated model.)
cd "$(dirname "$0")"
{
echo ""
echo "################################################################"
echo "# RERUN: in-memory-analytics series of Figure 3 after the"
echo "# scan-stride and RDD-cache recalibration (supersedes above)."
echo "################################################################"
echo "===== rerun:fig03_slowmem_rate (in-memory-analytics) ====="
THERMOSTAT_ONLY=in-memory-analytics ./build/bench/fig03_slowmem_rate
} >> bench_output.txt 2>&1
