/**
 * @file
 * Bring-your-own-workload: build a ComposedWorkload from scratch
 * and watch Thermostat adapt as its working set changes.
 *
 * The synthetic app is a log-structured store: a hot append head, a
 * warm recently-written band that cools as the log grows, and a
 * long cold tail.  Halfway through the run a "reprocessing job"
 * starts scanning the cold tail, and the mis-classification
 * corrector pulls the scanned pages back to DRAM.
 *
 * Usage: custom_workload [seconds] [tolerable_slowdown_pct]
 */

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "sim/reporter.hh"
#include "sim/simulation.hh"

using namespace thermostat;

namespace
{

std::unique_ptr<ComposedWorkload>
makeLogStore()
{
    auto w = std::make_unique<ComposedWorkload>(
        "log-store", 400.0e3, 0.80, 600 * kNsPerSec);
    const std::uint64_t log_bytes = 4ULL << 30;
    w->addRegion({"log", log_bytes, 0, true, false});
    w->addRegion({"index", 256_MiB, 0, true, false});

    // Hot append head: the first 2% of the log, write-heavy.
    TrafficComponent head;
    head.region = "log";
    head.weight = 0.55;
    head.writeFraction = 0.85;
    head.burstLines = 8;
    head.pattern = std::make_unique<ZipfianPattern>(
        log_bytes / 50, 4096, 0.6, false, 1);
    w->addComponent(std::move(head));

    // Warm band: recency-skewed reads over the first quarter.
    TrafficComponent warm;
    warm.region = "log";
    warm.weight = 0.30;
    warm.writeFraction = 0.05;
    warm.pattern = std::make_unique<ZipfianPattern>(
        log_bytes / 4, 4096, 0.9, false, 2);
    w->addComponent(std::move(warm));

    // Reprocessing job: phase-shifted scan that reaches the cold
    // tail in the second half of the run.
    {
        auto scan = std::make_unique<SequentialScanPattern>(
            log_bytes / 2, 256);
        auto shifted = std::make_unique<PhaseShiftPattern>(
            std::move(scan), 300 * kNsPerSec, log_bytes / 2,
            log_bytes);
        TrafficComponent job;
        job.region = "log";
        job.weight = 0.05;
        job.writeFraction = 0.0;
        job.burstLines = 4;
        job.pattern = std::move(shifted);
        w->addComponent(std::move(job));
    }

    // The index stays hot.
    TrafficComponent index;
    index.region = "index";
    index.weight = 0.0999;
    index.writeFraction = 0.3;
    index.pattern =
        std::make_unique<UniformPattern>(256_MiB);
    w->addComponent(std::move(index));
    return w;
}

} // namespace

int
main(int argc, char **argv)
{
    const long seconds = argc > 1 ? std::atol(argv[1]) : 600;
    const double target = argc > 2 ? std::atof(argv[2]) : 3.0;

    SimConfig config;
    config.seed = 7;
    config.duration = static_cast<Ns>(seconds) * kNsPerSec;
    config.params.tolerableSlowdownPct = target;
    config.machine.fastTier = TierConfig::dram(8ULL << 30);
    config.machine.slowTier = TierConfig::slow(8ULL << 30);

    std::printf("Custom log-structured store under Thermostat "
                "(%lds, %.0f%% target)\n\n",
                seconds, target);
    Simulation sim(makeLogStore(), config);
    const SimResult result = sim.run();

    std::printf("cold data over time (watch the dip when the "
                "reprocessing job\nstarts scanning the cold tail "
                "at t=%lds):\n",
                seconds / 2);
    printSeries(result.cold2M, "bytes", 20);
    std::printf("\nachieved slowdown: %s (target %s); promotions: "
                "%llu\n",
                formatPct(result.slowdown, 2).c_str(),
                formatPct(target / 100.0, 0).c_str(),
                static_cast<unsigned long long>(
                    result.engine.promotions));
    std::printf("migration: %s demote, %s promote\n",
                formatRateMBps(result.demotionBytesPerSec).c_str(),
                formatRateMBps(result.promotionBytesPerSec).c_str());
    return 0;
}
