/**
 * @file
 * Capacity planner: the paper's Section 6 "merits of slow-memory
 * software-emulation" use case.  A cloud operator wants to know,
 * before buying hardware, how much of a workload's DRAM could move
 * to a cheaper tier at an acceptable slowdown, and what the memory
 * bill would look like across candidate device price/latency
 * points.
 *
 * Usage: capacity_planner [workload] [seconds]
 *
 * Sweeps tolerable slowdowns and slow-memory latencies, then prints
 * a provisioning table: cold fraction, achieved slowdown, and the
 * blended memory cost (Table 4's model) per configuration.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "sim/app_tuning.hh"
#include "sim/reporter.hh"
#include "sim/simulation.hh"
#include "workload/cloud_apps.hh"

using namespace thermostat;

namespace
{

struct PlanPoint
{
    double slowdownPct;
    Ns slowLatency;
    double coldFraction;
    double achievedSlowdown;
};

PlanPoint
evaluate(const std::string &workload, double slowdown_pct,
         Ns slow_latency, Ns duration)
{
    SimConfig config;
    config.seed = 42;
    config.machine = tunedMachineConfig(workload);
    config.duration = duration;
    config.params.tolerableSlowdownPct = slowdown_pct;
    config.params.slowMemLatency = slow_latency;
    // The emulation fault stands in for the candidate device.
    config.machine.trap.faultLatency =
        static_cast<Ns>(0.85 * static_cast<double>(slow_latency));

    Simulation sim(makeWorkload(workload), config);
    const SimResult result = sim.run();
    return {slowdown_pct, slow_latency, result.finalColdFraction,
            result.slowdown};
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string workload = argc > 1 ? argv[1] : "mysql-tpcc";
    const long seconds = argc > 2 ? std::atol(argv[2]) : 480;
    const Ns duration = static_cast<Ns>(seconds) * kNsPerSec;

    std::printf("Capacity planning for %s (%lds per "
                "configuration)\n\n",
                workload.c_str(), seconds);

    const double targets[] = {1.0, 3.0, 6.0};
    const Ns latencies[] = {500, 1000, 3000};

    TablePrinter table({"target", "device latency", "cold frac",
                        "achieved", "mem cost @0.33x",
                        "mem cost @0.2x"});
    double best_saving = 0.0;
    std::string best_config;
    for (const double target : targets) {
        for (const Ns latency : latencies) {
            const PlanPoint p =
                evaluate(workload, target, latency, duration);
            const double cost_33 =
                1.0 - p.coldFraction * (1.0 - 1.0 / 3.0);
            const double cost_20 =
                1.0 - p.coldFraction * (1.0 - 0.2);
            char lat[32];
            std::snprintf(lat, sizeof(lat), "%lluns",
                          static_cast<unsigned long long>(latency));
            table.addRow({formatPct(target / 100.0, 0), lat,
                          formatPct(p.coldFraction),
                          formatPct(p.achievedSlowdown, 2),
                          formatPct(cost_33, 0),
                          formatPct(cost_20, 0)});
            const double saving =
                p.coldFraction * (1.0 - 1.0 / 3.0);
            if (saving > best_saving &&
                p.achievedSlowdown <= target / 100.0 + 0.01) {
                best_saving = saving;
                best_config = formatPct(target / 100.0, 0) +
                              " target @ " + lat;
            }
        }
    }
    table.print();
    if (!best_config.empty()) {
        std::printf("\nBest within budget: %s saves %s of DRAM "
                    "spend at 1/3 device cost.\n",
                    best_config.c_str(),
                    formatPct(best_saving, 0).c_str());
    }
    std::printf("\nThis is the paper's deployment-evaluation story "
                "(Sec 6): Thermostat runs\non test nodes with "
                "emulated slow memory, so operators can price "
                "two-tier\nconfigurations before any hardware "
                "exists.\n");
    return 0;
}
