/**
 * @file
 * Cold-page tracker: drive the kernel-services layer directly (no
 * Thermostat engine) to inspect an application's page temperature,
 * the way an operator would explore /sys/kernel/mm/page_idle.
 *
 * Usage: cold_page_tracker [workload] [seconds]
 *
 * Runs the workload with a periodic kstaled scan, then prints an
 * idle-age histogram of its 2MB pages, the per-region breakdown,
 * and a comparison between Accessed-bit idleness and poison-based
 * access counting for a sample of pages -- the paper's Figure 1 /
 * Figure 2 methodology as a reusable tool.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "sim/app_tuning.hh"
#include "sim/reporter.hh"
#include "sim/simulation.hh"
#include "workload/cloud_apps.hh"

using namespace thermostat;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "cassandra";
    const long seconds = argc > 2 ? std::atol(argv[2]) : 120;

    SimConfig config;
    config.seed = 42;
    config.machine = tunedMachineConfig(name);
    config.duration = static_cast<Ns>(seconds) * kNsPerSec;
    config.thermostatEnabled = false;

    Simulation sim(makeWorkload(name), config);

    // Poison a sample of huge pages for access counting alongside
    // the Accessed-bit scans.
    Rng rng(17);
    auto sample_pages = sim.machine().space().hugePageAddrs();
    rng.shuffle(sample_pages);
    sample_pages.resize(
        std::min<std::size_t>(sample_pages.size(), 24));
    for (const Addr base : sample_pages) {
        sim.machine().trap().poison(base);
    }

    sim.setEpochHook([](Simulation &s, Ns now) {
        if (now % (2 * kNsPerSec) == 0) {
            s.kstaled().scanAll();
        }
    });
    (void)sim.run();

    std::printf("Cold-page tracker: %s after %lds\n\n", name.c_str(),
                seconds);

    // Idle-age histogram over 2MB pages.
    Log2Histogram idle_ages;
    std::map<std::string, std::pair<std::uint64_t, std::uint64_t>>
        by_region; // region -> (idle pages, total pages)
    AddressSpace &space = sim.machine().space();
    space.pageTable().forEachLeaf([&](Addr base, Pte &, bool huge) {
        if (!huge) {
            return;
        }
        const unsigned idle =
            sim.kstaled().idleState(base).idleScans;
        idle_ages.add(idle);
        for (const Region &region : space.regions()) {
            if (base >= region.base && base < region.end()) {
                auto &[idle_pages, total] = by_region[region.name];
                ++total;
                if (idle >= 5) { // idle for >= 10s
                    ++idle_pages;
                }
            }
        }
    });

    std::printf("idle-scan-age histogram (2s scans, log2 "
                "buckets):\n%s\n",
                idle_ages.toString().c_str());

    TablePrinter table({"Region", "2MB pages", "idle >= 10s",
                        "idle fraction"});
    for (const auto &[region, counts] : by_region) {
        table.addRow(
            {region, std::to_string(counts.second),
             std::to_string(counts.first),
             formatPct(static_cast<double>(counts.first) /
                       static_cast<double>(std::max<std::uint64_t>(
                           1, counts.second)))});
    }
    table.print();

    std::printf("\nAccessed-bit idleness vs measured access counts "
                "(poisoned sample):\n");
    TablePrinter sample_table({"page", "idle scans",
                               "counted accesses"});
    for (const Addr base : sample_pages) {
        char addr[32];
        std::snprintf(addr, sizeof(addr), "%#llx",
                      static_cast<unsigned long long>(base));
        sample_table.addRow(
            {addr,
             std::to_string(sim.kstaled().idleState(base).idleScans),
             std::to_string(
                 sim.machine().trap().faultCount(base))});
    }
    sample_table.print();
    std::printf("\nNote how pages with identical idle ages span "
                "orders of magnitude in\nmeasured access counts: "
                "the paper's core argument for rate-based\n"
                "classification (Fig 2).\n");
    return 0;
}
