/**
 * @file
 * Quickstart: run Thermostat on one workload and print what it did.
 *
 * Usage: quickstart [workload] [tolerable_slowdown_pct] [seconds]
 *   workload: aerospike | cassandra | mysql-tpcc | redis |
 *             in-memory-analytics | web-search   (default redis)
 *
 * Demonstrates the core public API: build a workload, configure the
 * machine and Thermostat parameters, run the simulation, inspect the
 * result.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/app_tuning.hh"
#include "sim/reporter.hh"
#include "sim/simulation.hh"
#include "workload/cloud_apps.hh"

using namespace thermostat;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "redis";
    const double slowdown_pct = argc > 2 ? std::atof(argv[2]) : 3.0;
    const long seconds = argc > 3 ? std::atol(argv[3]) : 300;

    SimConfig config;
    config.seed = 42;
    config.machine = tunedMachineConfig(name);
    config.params.tolerableSlowdownPct = slowdown_pct;
    if (seconds > 0) {
        config.duration = static_cast<Ns>(seconds) * kNsPerSec;
    }

    std::printf("Thermostat quickstart: %s, %.1f%% tolerable "
                "slowdown, %lds\n\n",
                name.c_str(), slowdown_pct, seconds);

    Simulation sim(makeWorkload(name), config);
    const SimResult result = sim.run();

    std::printf("RSS: %s (file-mapped %s)\n",
                formatBytes(result.finalRssBytes).c_str(),
                formatBytes(result.finalFileBytes).c_str());
    std::printf("cold data placed in slow memory: %s (%s of RSS)\n",
                formatBytes(static_cast<std::uint64_t>(
                                result.cold2M.lastValue() +
                                result.cold4K.lastValue()))
                    .c_str(),
                formatPct(result.finalColdFraction).c_str());
    std::printf("measured slowdown: %s (target %s)\n",
                formatPct(result.slowdown, 2).c_str(),
                formatPct(slowdown_pct / 100.0, 1).c_str());
    std::printf("monitoring overhead: %s\n",
                formatPct(result.monitorOverheadFraction, 3).c_str());
    std::printf("migration bandwidth: %s demote, %s promote\n",
                formatRateMBps(result.demotionBytesPerSec).c_str(),
                formatRateMBps(result.promotionBytesPerSec).c_str());
    std::printf("engine: %llu periods, %llu cold 2MB pages, "
                "%llu cold 4KB pages, %llu promotions\n",
                static_cast<unsigned long long>(result.engine.periods),
                static_cast<unsigned long long>(
                    result.engine.coldHugePlaced),
                static_cast<unsigned long long>(
                    result.engine.coldBasePlaced),
                static_cast<unsigned long long>(
                    result.engine.promotions));
    std::printf("        %llu collapse failures, %llu migration "
                "failures\n\n",
                static_cast<unsigned long long>(
                    result.engine.collapseFailures),
                static_cast<unsigned long long>(
                    result.engine.migrationFailures));

    std::printf("timing: %.2fs actual vs %.2fs baseline; "
                "%.1fM weighted faults (%.1f%% of time)\n\n",
                result.actualSeconds, result.baselineSeconds,
                static_cast<double>(result.trap.weightedFaults) /
                    1e6,
                static_cast<double>(result.trap.weightedFaults) *
                    850e-9 / result.baselineSeconds * 100.0);

    std::printf("cold footprint over time:\n");
    printSeries(result.cold2M, "bytes (2MB pages)", 12);
    std::printf("\nslow-memory access rate (target %.0f acc/s):\n",
                sim.engine().targetRate());
    printSeries(result.engineSlowRate, "acc/s", 12);
    return 0;
}
