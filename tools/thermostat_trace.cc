/**
 * @file
 * thermostat_trace: record, inspect and replay reference traces.
 *
 *   thermostat_trace record --workload redis --refs 1000000 \
 *                           --out redis.trace [--seed 42]
 *   thermostat_trace info   --in redis.trace
 *   thermostat_trace replay --in redis.trace --target 3 \
 *                           [--duration SEC]
 *
 * `record` captures a reference stream from a built-in workload
 * model; `replay` runs Thermostat over the recorded stream.  The
 * binary format is documented in workload/trace.hh, so externally
 * generated traces can be imported by writing the same layout.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "sim/reporter.hh"
#include "sim/simulation.hh"
#include "workload/cloud_apps.hh"
#include "workload/trace.hh"

using namespace thermostat;

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage:\n"
        "  %s record --workload NAME --refs N --out FILE [--seed S]\n"
        "  %s info   --in FILE\n"
        "  %s replay --in FILE [--target PCT] [--duration SEC]\n",
        argv0, argv0, argv0);
    std::exit(2);
}

const char *
nextArg(int argc, char **argv, int &i, const char *argv0)
{
    if (i + 1 >= argc) {
        usage(argv0);
    }
    return argv[++i];
}

int
doRecord(const std::string &workload, std::uint64_t refs,
         const std::string &out, std::uint64_t seed)
{
    if (!isWorkloadName(workload)) {
        std::fprintf(stderr, "unknown workload '%s'; known:\n",
                     workload.c_str());
        for (const std::string &name : allWorkloadNames()) {
            std::fprintf(stderr, "  %s\n", name.c_str());
        }
        std::fprintf(stderr, "  redis-bursty\n");
        return 2;
    }
    TieredMemory memory(TierConfig::dram(32ULL << 30),
                        TierConfig::slow(8ULL << 30));
    AddressSpace space(memory);
    RecordingWorkload recorder(workload == "redis-bursty"
                                   ? makeRedisBursty(seed)
                                   : makeWorkload(workload, seed));
    recorder.setup(space);
    Rng rng(seed);
    for (std::uint64_t i = 0; i < refs; ++i) {
        (void)recorder.sample(rng);
    }
    if (!recorder.save(out)) {
        std::fprintf(stderr, "failed to write %s\n", out.c_str());
        return 1;
    }
    std::printf("recorded %llu references of '%s' to %s\n",
                static_cast<unsigned long long>(refs),
                workload.c_str(), out.c_str());
    return 0;
}

int
doInfo(const std::string &in)
{
    std::string error;
    auto trace = TraceWorkload::load(in, &error);
    if (!trace) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 1;
    }
    std::printf("trace: %s\n", in.c_str());
    std::printf("workload: %s\n", trace->name().c_str());
    std::printf("entries: %zu\n", trace->entryCount());
    std::printf("burst rate: %s/s\n",
                formatNumber(trace->memRefRate(), 0).c_str());
    std::printf("cpu fraction: %.3f\n", trace->cpuWorkFraction());
    std::printf("regions:\n");
    for (const RegionSpec &region : trace->regions()) {
        std::printf("  %-12s %10s%s%s\n", region.name.c_str(),
                    formatBytes(region.bytes).c_str(),
                    region.thp ? "  thp" : "",
                    region.fileBacked ? "  file-backed" : "");
    }
    return 0;
}

int
doReplay(const std::string &in, double target, long duration_sec)
{
    std::string error;
    auto trace = TraceWorkload::load(in, &error);
    if (!trace) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 1;
    }
    SimConfig config;
    config.params.tolerableSlowdownPct = target;
    if (duration_sec > 0) {
        config.duration = static_cast<Ns>(duration_sec) * kNsPerSec;
    }
    Simulation sim(std::move(trace), config);
    const SimResult r = sim.run();
    std::printf("replayed %s: cold %s of %s, slowdown %s "
                "(target %s)\n",
                in.c_str(), formatPct(r.finalColdFraction).c_str(),
                formatBytes(r.finalRssBytes).c_str(),
                formatPct(r.slowdown, 2).c_str(),
                formatPct(target / 100.0, 1).c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage(argv[0]);
    }
    const std::string verb = argv[1];
    std::string workload;
    std::string in;
    std::string out;
    std::uint64_t refs = 1'000'000;
    std::uint64_t seed = 42;
    double target = 3.0;
    long duration_sec = 0;

    for (int i = 2; i < argc; ++i) {
        const char *arg = argv[i];
        if (!std::strcmp(arg, "--workload")) {
            workload = nextArg(argc, argv, i, argv[0]);
        } else if (!std::strcmp(arg, "--refs")) {
            refs = static_cast<std::uint64_t>(
                std::atoll(nextArg(argc, argv, i, argv[0])));
        } else if (!std::strcmp(arg, "--out")) {
            out = nextArg(argc, argv, i, argv[0]);
        } else if (!std::strcmp(arg, "--in")) {
            in = nextArg(argc, argv, i, argv[0]);
        } else if (!std::strcmp(arg, "--seed")) {
            seed = static_cast<std::uint64_t>(
                std::atoll(nextArg(argc, argv, i, argv[0])));
        } else if (!std::strcmp(arg, "--target")) {
            target = std::atof(nextArg(argc, argv, i, argv[0]));
        } else if (!std::strcmp(arg, "--duration")) {
            duration_sec =
                std::atol(nextArg(argc, argv, i, argv[0]));
        } else {
            usage(argv[0]);
        }
    }

    if (verb == "record" && !workload.empty() && !out.empty()) {
        return doRecord(workload, refs, out, seed);
    }
    if (verb == "info" && !in.empty()) {
        return doInfo(in);
    }
    if (verb == "replay" && !in.empty()) {
        return doReplay(in, target, duration_sec);
    }
    usage(argv[0]);
}
