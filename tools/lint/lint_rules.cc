#include "lint_rules.hh"

#include <fstream>
#include <tuple>

#include "lint_source.hh"

namespace thermostat
{
namespace lint
{

const std::vector<RuleInfo> &
rules()
{
    static const std::vector<RuleInfo> kRules = {
        {"ban-random-device",
         "std::random_device is nondeterministic; derive streams from "
         "the run seed via common/rng.hh",
         {{"src/", "bench/", "tools/"}, {}}},
        {"ban-c-random",
         "rand()/srand()/random()/drand48() share hidden global state; "
         "use common/rng.hh streams",
         {{"src/", "bench/", "tools/"}, {}}},
        {"ban-wall-clock",
         "wall-clock reads in the simulator break run reproducibility; "
         "use simulated Ns (obs/ may timestamp host phases)",
         {{"src/"}, {"src/obs/"}}},
        {"ban-naked-thread",
         "raw std::thread/std::async outside common/thread_pool; all "
         "parallelism goes through ThreadPool",
         {{"src/", "bench/", "tools/"}, {"src/common/thread_pool."}}},
        {"mutable-global",
         "mutable global/static-local state outside common/ breaks the "
         "one-Simulation-per-thread isolation contract",
         {{"src/"}, {"src/common/"}}},
        {"metric-name-style",
         "metric names are lowercase dot/slash-separated "
         "(component/name.leaf); see obs/metrics.hh",
         {{"src/", "bench/", "tools/"}, {}}},
        {"trace-category",
         "event-mask literals must use registered categories "
         "(sample,poison,classify,migrate,correct,phase,fault,policy,"
         "all,none)",
         {{"src/", "bench/", "tools/"}, {}}},
        {"unsafe-c-api",
         "banned unbounded C string API (strcpy/strcat/sprintf/vsprintf/"
         "gets/strtok); use snprintf or std::string",
         {{}, {}}},
        {"hot-path-unordered-map",
         "std::unordered_map on simulator/bench paths; per-page tables "
         "use common/flat_map.hh (baseline cold paths with a "
         "justification)",
         {{"src/", "bench/"}, {}}},
        {"shard-unsynced-state",
         "mutable member in the sharded execution set without a "
         "concurrency classification; annotate TSTAT_GUARDED_BY, make "
         "it lane-indexed (name contains 'lane'), or mark it "
         "'// shard: <class>' (lane-local | serial-only | read-only | "
         "merge-barrier)",
         {{"src/sim/machine.hh", "src/sim/simulation.hh",
           "src/tlb/tlb.hh", "src/cache/llc.hh",
           "src/sys/badger_trap.hh", "src/obs/access_sampler.hh",
           "src/vm/page_table.hh", "src/vm/page_walker.hh",
           "src/migrate/migration_queue.hh",
           "src/migrate/transaction_engine.hh"},
          {}}},
        // --- cross-TU project rules (built on the project model) ---
        {"subsystem-layering",
         "#include edge violates the subsystem layering DAG "
         "(DESIGN.md section 7 table); lower layers must not reach "
         "upward",
         {{"src/"}, {}}},
        {"rng-stream-discipline",
         "RNG streams derive from the run seed (seed / fork() / "
         "splitMix64) with a project-unique salt documented by a "
         "'// rng: <purpose>' marker; Rng members in sharded files "
         "are lane-indexed or marked serial",
         {{"src/"}, {"src/common/"}}},
        {"metric-schema",
         "cross-TU metric/trace schema audit: duplicate absolute "
         "metric registrations, names outside the DESIGN.md catalog, "
         "EventKind rows missing from the DESIGN.md event table",
         {{"src/"}, {}}},
        {"merge-barrier-escape",
         "lane-held state (LaneState vectors, lane-local or "
         "merge-barrier members) read from a non-lane method that "
         "neither routes through syncDeviceState() nor carries a "
         "'// shard:' classification",
         {{"src/sim/machine.cc", "src/sim/simulation.cc"}, {}}},
        {"unused-baseline-entry",
         "baseline entry no longer matches any finding; prune it "
         "(warning normally, error under --ci so the baseline only "
         "shrinks)",
         {{}, {}}},
    };
    return kRules;
}

const RuleInfo *
findRule(const std::string &id)
{
    for (const RuleInfo &r : rules()) {
        if (id == r.id) {
            return &r;
        }
    }
    return nullptr;
}

bool
ruleApplies(const RuleInfo &rule, const std::string &rel)
{
    for (const std::string &prefix : rule.scope.exclude) {
        if (rel.rfind(prefix, 0) == 0) {
            return false;
        }
    }
    if (rule.scope.include.empty()) {
        return true;
    }
    for (const std::string &prefix : rule.scope.include) {
        if (rel.rfind(prefix, 0) == 0) {
            return true;
        }
    }
    return false;
}

bool
findingLess(const Finding &a, const Finding &b)
{
    return std::tie(a.file, a.line, a.rule, a.message) <
           std::tie(b.file, b.line, b.rule, b.message);
}

std::string
baselineKey(const std::string &rule, const std::string &file,
            const std::string &snippet)
{
    return rule + "|" + file + "|" + snippet;
}

bool
loadBaseline(const std::string &path, Baseline *out)
{
    std::ifstream in(path);
    if (!in) {
        return false;
    }
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const std::string t = trim(line);
        if (t.empty() || t[0] == '#') {
            continue;
        }
        out->entries.emplace(t, lineno);
    }
    return true;
}

} // namespace lint
} // namespace thermostat
