/**
 * @file
 * Source-text model for thermostat_lint: a comment/literal-aware
 * tokenizer that turns a translation unit into per-line views, plus
 * the small string helpers every pass shares.
 *
 * The tokenizer is a whole-file state machine (not per-line): block
 * comments, raw string literals (`R"(...)"`, any delimiter, any
 * encoding prefix) and backslash line-continuations all carry state
 * across physical lines, so rule regexes can never match inside a
 * literal or a continued comment -- the two blind spots of the old
 * per-line scanner.
 */

#ifndef THERMOSTAT_LINT_SOURCE_HH
#define THERMOSTAT_LINT_SOURCE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace thermostat
{
namespace lint
{

/**
 * One physical line: raw text, a comment/literal-stripped code view
 * (literal *delimiters* survive, bodies are blanked so columns keep
 * their meaning), and the bodies of the ordinary double-quoted
 * literals that closed on the line.  Raw-string bodies are blanked
 * entirely and never recorded: they hold regex/JSON payloads, not
 * conventions.
 */
struct LineView
{
    std::string raw;
    std::string code;
    std::vector<std::string> literals;
};

/** Tokenize @p text into per-line views (see file comment). */
std::vector<LineView> splitLines(const std::string &text);

/** Strip leading/trailing whitespace. */
std::string trim(const std::string &s);

/** FNV-1a 64-bit content hash (incremental-cache keys). */
std::uint64_t fnv1a(const std::string &s);

} // namespace lint
} // namespace thermostat

#endif // THERMOSTAT_LINT_SOURCE_HH
