/**
 * @file
 * Per-file pass of thermostat_lint: runs the line-oriented rules and
 * extracts the symbol facts (includes, metric/trace registrations,
 * RNG constructions, sharded-member declarations, method spans and
 * member references) the cross-TU project passes consume.
 *
 * A FileFacts is self-contained and serializable, which is what
 * makes the content-hash incremental cache sound: a cache hit
 * replays both the file's findings and its contribution to the
 * project model without re-reading the source.
 */

#ifndef THERMOSTAT_LINT_SCANNER_HH
#define THERMOSTAT_LINT_SCANNER_HH

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "lint_rules.hh"

namespace thermostat
{
namespace lint
{

/** Location + suppression context shared by every fact kind. */
struct FactSite
{
    std::size_t line = 0;
    std::string snippet;             //!< trimmed raw source line
    std::set<std::string> allows;    //!< lint:allow(<rule>) in reach
    bool shardMarked = false;        //!< `// shard:` on line or above
    bool rngMarked = false;          //!< `// rng:` on line or above
};

/** `#include "subsystem/header.hh"` (project-style quotes only). */
struct IncludeFact
{
    FactSite at;
    std::string target; //!< e.g. "policy/tiering_policy.hh"
};

/** Metric literal at a registration site. */
struct MetricFact
{
    FactSite at;
    std::string literal;
    bool prefixArg = false; //!< literal prefix at registerMetrics()
};

/** `EventKind::X` use outside obs/event_trace.*. */
struct EventUseFact
{
    FactSite at;
    std::string kind;
};

/** RNG stream construction or seed-salt derivation. */
struct RngFact
{
    FactSite at;
    std::string args;        //!< constructor/derivation expression
    std::uint64_t salt = 0;  //!< literal salt value when hasSalt
    bool hasSalt = false;
    bool construction = false; //!< an Rng was built here
};

/** Data-member declaration in a sharded-execution-set header. */
struct MemberFact
{
    FactSite at;
    std::string name;           //!< trailing-underscore member
    std::string classification; //!< `// shard:` text, "" if none
    bool laneNamed = false;
    bool guarded = false;       //!< TSTAT_GUARDED_BY present
    bool rngTyped = false;      //!< declared type is Rng
};

/** Method definition span in a merge-barrier-scoped .cc file. */
struct MethodFact
{
    std::string name;
    std::size_t sigLine = 0;  //!< line of `Class::name(`
    std::size_t bodyEnd = 0;  //!< line of the closing `}`
    bool laneScoped = false;  //!< 'lane' in signature or laneOf()
    bool synced = false;      //!< mentions syncDeviceState
    bool blessed = false;     //!< `// shard:` near the definition
};

/** Member-convention token (`foo_`) referenced inside a method. */
struct TokenRefFact
{
    FactSite at;
    std::string token;
};

struct FileFacts
{
    std::string path; //!< root-relative
    std::uint64_t hash = 0;
    std::vector<Finding> lineFindings; //!< pre-baseline
    std::vector<IncludeFact> includes;
    std::vector<MetricFact> metrics;
    std::vector<EventUseFact> events;
    std::vector<std::string> eventEnumerators; //!< event_trace.hh
    std::vector<RngFact> rngs;
    std::vector<MemberFact> members;
    std::vector<MethodFact> methods;
    std::vector<TokenRefFact> tokenRefs;
};

/** Run the per-file pass over @p text for root-relative @p rel. */
FileFacts scanFile(const std::string &rel, const std::string &text);

/** Serialize @p facts as cache records (newline-terminated). */
std::string serializeFacts(const FileFacts &facts);

/**
 * Parse one file's cache records from @p lines[pos...], advancing
 * @p pos past them.  Returns false on malformed input (the caller
 * treats the whole cache as cold).
 */
bool parseFacts(const std::vector<std::string> &lines,
                std::size_t *pos, FileFacts *out);

} // namespace lint
} // namespace thermostat

#endif // THERMOSTAT_LINT_SCANNER_HH
