#include "lint_scanner.hh"

#include <algorithm>
#include <cstdlib>
#include <regex>
#include <sstream>

#include "lint_source.hh"

namespace thermostat
{
namespace lint
{

namespace
{

// ---------------------------------------------------------------------------
// Suppression-context helpers
// ---------------------------------------------------------------------------

/** Rules named by `lint:allow(<rule>)` on line @p index or the line
 * immediately above it (the marker's two documented placements). */
std::set<std::string>
allowsAt(const std::vector<LineView> &lines, std::size_t index)
{
    static const std::regex kAllow(R"(lint:allow\(([a-z0-9-]+)\))");
    std::set<std::string> out;
    for (std::size_t i = index == 0 ? index : index - 1;
         i <= index && i < lines.size(); ++i) {
        auto begin = std::sregex_iterator(lines[i].raw.begin(),
                                          lines[i].raw.end(), kAllow);
        for (auto it = begin; it != std::sregex_iterator(); ++it) {
            out.insert((*it)[1]);
        }
    }
    return out;
}

bool
markedAt(const std::vector<LineView> &lines, std::size_t index,
         const char *marker)
{
    if (lines[index].raw.find(marker) != std::string::npos) {
        return true;
    }
    return index > 0 &&
           lines[index - 1].raw.find(marker) != std::string::npos;
}

FactSite
siteAt(const std::vector<LineView> &lines, std::size_t index)
{
    FactSite site;
    site.line = index + 1;
    site.snippet = trim(lines[index].raw);
    site.allows = allowsAt(lines, index);
    site.shardMarked = markedAt(lines, index, "// shard:");
    site.rngMarked = markedAt(lines, index, "// rng:");
    return site;
}

// ---------------------------------------------------------------------------
// Line rules (the original scanner's rule set)
// ---------------------------------------------------------------------------

const std::set<std::string> kTraceCategories = {
    "all",     "none",    "sample", "poison", "classify",
    "migrate", "correct", "phase",  "fault",  "policy"};

bool
validMetricLiteral(const std::string &lit)
{
    // Leading '.' is the "suffix appended to a prefix" form
    // (registry.addCallback(prefix + ".ticks", ...)).
    static const std::regex re(
        R"(^\.?[a-z0-9_]+([./][a-z0-9_]+)*$)");
    return std::regex_match(lit, re);
}

bool
validTraceCategoryList(const std::string &lit)
{
    std::size_t start = 0;
    while (start <= lit.size()) {
        std::size_t end = lit.find(',', start);
        if (end == std::string::npos) {
            end = lit.size();
        }
        const std::string token = lit.substr(start, end - start);
        if (!token.empty() &&
            kTraceCategories.find(token) == kTraceCategories.end()) {
            return false;
        }
        if (end == lit.size()) {
            break;
        }
        start = end + 1;
    }
    return true;
}

/**
 * mutable-global helper: true when the statement starting at line
 * @p index with a bare `static` keyword declares a variable rather
 * than a function.  A declarator whose first `(`/`=`/`;` terminator
 * is `(` is a function (or ctor-style init, which this tree does not
 * use for statics).  The repo's gem5-style declarations break the
 * line after the return type, so continuation lines are joined until
 * a terminator appears.
 */
bool
staticDeclaresVariable(const std::vector<LineView> &lines,
                       std::size_t index)
{
    std::string code = lines[index].code;
    for (std::size_t next = index + 1;
         next < lines.size() && next < index + 4 &&
         code.find_first_of("=;({") == std::string::npos;
         ++next) {
        code += " " + lines[next].code;
    }
    const std::size_t paren = code.find('(');
    const std::size_t assign = code.find('=');
    const std::size_t semi = code.find(';');
    const std::size_t first_end = std::min(assign, semi);
    if (paren != std::string::npos && paren < first_end) {
        return false; // function declaration/definition
    }
    return true;
}

/** Exact-path membership in a rule's include list (the sharded-set
 * and merge-barrier scopes list whole files, not prefixes). */
bool
inScopeList(const char *rule_id, const std::string &rel)
{
    const RuleInfo *rule = findRule(rule_id);
    return rule && ruleApplies(*rule, rel);
}

void
scanLine(const std::string &rel, const std::vector<LineView> &lines,
         std::size_t index, FileFacts *facts)
{
    const LineView &line = lines[index];
    const std::size_t lineno = index + 1;
    struct Pattern
    {
        const char *rule;
        std::regex re;
        const char *what;
    };
    // Compiled once; matched against the code view only, so
    // comments and literal bodies can't trigger them.
    static const std::vector<Pattern> kPatterns = [] {
        std::vector<Pattern> p;
        p.push_back({"ban-random-device",
                     std::regex(R"(\bstd\s*::\s*random_device\b)"),
                     "std::random_device"});
        p.push_back({"ban-c-random",
                     std::regex(R"(\b(rand|srand|random|srandom|drand48|lrand48)\s*\()"),
                     "C random API"});
        p.push_back({"ban-wall-clock",
                     std::regex(R"(\b(system_clock|steady_clock|high_resolution_clock)\b)"),
                     "std::chrono wall clock"});
        p.push_back({"ban-wall-clock",
                     std::regex(R"(\btime\s*\(\s*(nullptr|NULL|0)\s*\))"),
                     "time()"});
        p.push_back({"ban-wall-clock",
                     std::regex(R"(\b(gettimeofday|clock_gettime)\s*\()"),
                     "POSIX wall clock"});
        p.push_back({"ban-naked-thread",
                     std::regex(R"(\bstd\s*::\s*(thread|jthread|async)\b)"),
                     "raw thread primitive"});
        p.push_back({"ban-naked-thread",
                     std::regex(R"(\bpthread_create\s*\()"),
                     "pthread_create"});
        p.push_back({"unsafe-c-api",
                     std::regex(R"(\b(strcpy|strcat|sprintf|vsprintf|gets|strtok)\s*\()"),
                     "unbounded C string API"});
        p.push_back({"hot-path-unordered-map",
                     std::regex(R"(\bstd\s*::\s*unordered_map\s*<)"),
                     "std::unordered_map"});
        return p;
    }();

    auto add = [&](const char *rule, const std::string &message) {
        const RuleInfo *info = findRule(rule);
        if (!info || !ruleApplies(*info, rel)) {
            return;
        }
        if (allowsAt(lines, index).count(rule)) {
            return;
        }
        facts->lineFindings.push_back(
            {rel, lineno, rule, message, trim(line.raw)});
    };

    for (const Pattern &p : kPatterns) {
        if (std::regex_search(line.code, p.re)) {
            const RuleInfo *info = findRule(p.rule);
            add(p.rule, std::string(p.what) + ": " +
                            (info ? info->summary : ""));
        }
    }

    // mutable-global: `static` locals/members that are not
    // const/constexpr, plus namespace-scope g_* definitions.
    static const std::regex kStatic(R"(^\s*static\s+)");
    static const std::regex kStaticConst(
        R"(^\s*static\s+(const|constexpr|thread_local\s+const)\b)");
    if (std::regex_search(line.code, kStatic) &&
        !std::regex_search(line.code, kStaticConst) &&
        staticDeclaresVariable(lines, index)) {
        add("mutable-global",
            "mutable static: " +
                std::string(findRule("mutable-global")->summary));
    }
    static const std::regex kGlobal(
        R"(^\s*[A-Za-z_][\w:<>,\s*&]*[\s*&]g_\w+\s*(=|;))");
    static const std::regex kConstGlobal(R"(\b(const|constexpr)\b)");
    if (std::regex_search(line.code, kGlobal) &&
        !std::regex_search(line.code, kConstGlobal)) {
        add("mutable-global",
            "mutable g_* global: " +
                std::string(findRule("mutable-global")->summary));
    }

    // metric-name-style: literals at registration call sites.
    const bool metricSite =
        line.code.find(".counter(") != std::string::npos ||
        line.code.find(".gauge(") != std::string::npos ||
        line.code.find(".histogram(") != std::string::npos ||
        line.code.find("addCallback(") != std::string::npos;
    if (metricSite) {
        for (const std::string &lit : line.literals) {
            if (!validMetricLiteral(lit)) {
                add("metric-name-style",
                    "metric name \"" + lit + "\" is not lowercase "
                    "dot/slash-separated (component/name.leaf)");
            } else {
                MetricFact m;
                m.at = siteAt(lines, index);
                m.literal = lit;
                facts->metrics.push_back(std::move(m));
            }
        }
    }
    if (line.code.find("registerMetrics(") != std::string::npos) {
        for (const std::string &lit : line.literals) {
            if (validMetricLiteral(lit) && lit[0] != '.') {
                MetricFact m;
                m.at = siteAt(lines, index);
                m.literal = lit;
                m.prefixArg = true;
                facts->metrics.push_back(std::move(m));
            }
        }
    }

    // trace-category: literal masks must use registered categories.
    if (line.code.find("parseEventMask(") != std::string::npos) {
        for (const std::string &lit : line.literals) {
            if (!validTraceCategoryList(lit)) {
                add("trace-category",
                    "\"" + lit + "\" contains a category outside "
                    "the registered set (see obs/event_trace.hh)");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Fact extraction for the project passes
// ---------------------------------------------------------------------------

/** Member declaration in a sharded header: fills facts->members and
 * fires shard-unsynced-state when the member is unclassified. */
void
scanShardMember(const std::string &rel,
                const std::vector<LineView> &lines, std::size_t index,
                FileFacts *facts)
{
    const LineView &line = lines[index];
    static const std::regex kMemberDecl(
        R"(^\s*[A-Za-z_][\w:<>,*&\s\[\]]*[\s*&](\w+_)\s*[;={])");
    static const std::regex kDeclExcluded(
        R"(^\s*(return|delete|throw|using|typedef|friend|template|)"
        R"(case|goto|if|while|for|else|public|private|protected|)"
        R"(const|constexpr|static\s+const|static\s+constexpr)\b)");
    std::smatch m;
    if (!std::regex_search(line.code, m, kMemberDecl) ||
        std::regex_search(line.code, kDeclExcluded)) {
        return;
    }
    MemberFact member;
    member.at = siteAt(lines, index);
    member.name = m[1];
    member.guarded =
        line.code.find("TSTAT_GUARDED_BY") != std::string::npos;
    static const std::regex kRngType(R"(^\s*Rng[\s&])");
    member.rngTyped = std::regex_search(line.code, kRngType);
    std::string lowered = member.name;
    std::transform(lowered.begin(), lowered.end(), lowered.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    member.laneNamed = lowered.find("lane") != std::string::npos;
    for (std::size_t i = index == 0 ? index : index - 1;
         i <= index; ++i) {
        const std::size_t at = lines[i].raw.find("// shard:");
        if (at != std::string::npos) {
            member.classification =
                trim(lines[i].raw.substr(at + 9));
        }
    }

    if (!member.guarded && !member.laneNamed &&
        member.classification.empty() &&
        !member.at.allows.count("shard-unsynced-state")) {
        facts->lineFindings.push_back(
            {rel, member.at.line, "shard-unsynced-state",
             "member '" + member.name + "' is unclassified: " +
                 std::string(findRule("shard-unsynced-state")->summary),
             member.at.snippet});
    }
    facts->members.push_back(std::move(member));
}

void
scanRng(const std::vector<LineView> &lines, std::size_t index,
        FileFacts *facts)
{
    const LineView &line = lines[index];
    // Stream constructions: `Rng name(args)`, `Rng(args)` temporaries
    // and `fooRng_(args)` / `rng_(args)` member initializers.
    static const std::regex kCtor(
        R"((?:\bRng\s+\w+\s*|\bRng\s*|\b\w*[Rr]ng_\s*)\(([^;{]*))");
    static const std::regex kAssign(R"(\bRng\s+\w+\s*=\s*(.*))");
    // Seed-salt derivation: `...seed... ^ 0x<literal>`.
    static const std::regex kSalt(
        R"([Ss]eed\w*(\(\))?\s*\^\s*0[xX]([0-9a-fA-F']+))");

    // Parameter lists (constructor/function *declarations*) start
    // with a type; real constructions pass values.
    static const std::regex kParamList(
        R"(^\s*(unsigned|signed|int|long|short|char|bool|float|)"
        R"(double|const|std\s*::|uint|Seed)\b)");

    std::smatch m;
    bool construction = false;
    std::string args;
    if (std::regex_search(line.code, m, kCtor)) {
        construction = true;
        args = m[1];
    } else if (std::regex_search(line.code, m, kAssign)) {
        construction = true;
        args = m[1];
    }
    if (construction &&
        (trim(args).empty() ||
         std::regex_search(args, kParamList) ||
         line.code.find("explicit") != std::string::npos)) {
        construction = false;
    }
    std::smatch saltMatch;
    const bool hasSalt =
        std::regex_search(line.code, saltMatch, kSalt);
    if (!construction && !hasSalt) {
        return;
    }
    RngFact fact;
    fact.at = siteAt(lines, index);
    fact.construction = construction;
    fact.args = trim(args);
    if (hasSalt) {
        std::string digits = saltMatch[2];
        digits.erase(std::remove(digits.begin(), digits.end(), '\''),
                     digits.end());
        fact.hasSalt = true;
        fact.salt = std::strtoull(digits.c_str(), nullptr, 16);
    }
    facts->rngs.push_back(std::move(fact));
}

/** Method spans + member-token references for the merge-barrier
 * scoped implementation files (gem5 style: definitions start at
 * column 0, the body's braces are column 0 too). */
void
scanMethods(const std::vector<LineView> &lines, FileFacts *facts)
{
    static const std::regex kDefStart(
        R"(^([A-Za-z_][\w:<>~]*)\()");
    static const std::regex kToken(R"(([A-Za-z_]\w*_)\b)");

    std::size_t i = 0;
    while (i < lines.size()) {
        std::smatch m;
        if (!std::regex_search(lines[i].code, m, kDefStart)) {
            ++i;
            continue;
        }
        MethodFact method;
        const std::string qualified = m[1];
        const std::size_t sep = qualified.rfind("::");
        method.name = sep == std::string::npos
                          ? qualified
                          : qualified.substr(sep + 2);
        method.sigLine = i + 1;
        for (std::size_t b = i >= 3 ? i - 3 : 0; b <= i; ++b) {
            if (lines[b].raw.find("// shard:") != std::string::npos) {
                method.blessed = true;
            }
        }

        // Signature: until the parameter parens balance out.
        int parens = 0;
        std::size_t j = i;
        std::string signature;
        for (; j < lines.size(); ++j) {
            signature += lines[j].code;
            for (const char c : lines[j].code) {
                parens += c == '(' ? 1 : c == ')' ? -1 : 0;
            }
            if (parens <= 0) {
                break;
            }
        }
        std::string sigLower = signature;
        std::transform(sigLower.begin(), sigLower.end(),
                       sigLower.begin(), [](unsigned char c) {
                           return std::tolower(c);
                       });
        method.laneScoped =
            sigLower.find("lane") != std::string::npos;
        method.synced =
            signature.find("syncDeviceState") != std::string::npos;

        // Body (plus any ctor initializer list): from the signature
        // end to the column-0 closing brace.
        int depth = 0;
        bool opened = false;
        std::size_t k = j + 1;
        for (; k < lines.size(); ++k) {
            const std::string &code = lines[k].code;
            if (!opened &&
                code.find_first_of(";") != std::string::npos &&
                code.find('{') == std::string::npos) {
                // Declaration, not a definition.
                break;
            }
            for (const char c : code) {
                depth += c == '{' ? 1 : c == '}' ? -1 : 0;
                if (c == '{') {
                    opened = true;
                }
            }
            if (code.find("laneOf(") != std::string::npos) {
                method.laneScoped = true;
            }
            if (code.find("syncDeviceState") != std::string::npos) {
                method.synced = true;
            }
            for (auto it = std::sregex_iterator(code.begin(),
                                                code.end(), kToken);
                 it != std::sregex_iterator(); ++it) {
                TokenRefFact ref;
                ref.at = siteAt(lines, k);
                ref.token = (*it)[1];
                facts->tokenRefs.push_back(std::move(ref));
            }
            if (opened && depth <= 0) {
                break;
            }
        }
        if (opened) {
            method.bodyEnd = k + 1;
            facts->methods.push_back(std::move(method));
            i = k + 1;
        } else {
            i = j + 1;
        }
    }
}

void
scanEventEnum(const std::vector<LineView> &lines, FileFacts *facts)
{
    static const std::regex kEnumerator(R"(^\s*([A-Z]\w*)\s*[,=]?)");
    bool inEnum = false;
    for (const LineView &line : lines) {
        if (!inEnum) {
            if (line.code.find("enum class EventKind") !=
                std::string::npos) {
                inEnum = true;
            }
            continue;
        }
        if (line.code.find("};") != std::string::npos) {
            break;
        }
        std::smatch m;
        if (std::regex_search(line.code, m, kEnumerator)) {
            facts->eventEnumerators.push_back(m[1]);
        }
    }
}

// ---------------------------------------------------------------------------
// Cache serialization
// ---------------------------------------------------------------------------

std::string
escapeField(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '|':
            out += "\\p";
            break;
          default:
            out += c;
        }
    }
    return out;
}

std::string
unescapeField(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] != '\\' || i + 1 >= s.size()) {
            out += s[i];
            continue;
        }
        ++i;
        switch (s[i]) {
          case 'n':
            out += '\n';
            break;
          case 'p':
            out += '|';
            break;
          default:
            out += s[i];
        }
    }
    return out;
}

std::vector<std::string>
splitFields(const std::string &line)
{
    std::vector<std::string> fields;
    std::string cur;
    for (std::size_t i = 0; i < line.size(); ++i) {
        if (line[i] == '\\' && i + 1 < line.size()) {
            cur += line[i];
            cur += line[i + 1];
            ++i;
            continue;
        }
        if (line[i] == '|') {
            fields.push_back(cur);
            cur.clear();
            continue;
        }
        cur += line[i];
    }
    fields.push_back(cur);
    for (std::string &f : fields) {
        f = unescapeField(f);
    }
    return fields;
}

std::string
encodeSite(const FactSite &site)
{
    std::string flags;
    if (site.shardMarked) {
        flags += 's';
    }
    if (site.rngMarked) {
        flags += 'r';
    }
    std::string allows;
    for (const std::string &a : site.allows) {
        allows += allows.empty() ? a : "," + a;
    }
    std::ostringstream os;
    os << site.line << "|" << flags << "|" << escapeField(allows)
       << "|" << escapeField(site.snippet);
    return os.str();
}

/** Decode the 4 site fields starting at fields[at]. */
bool
decodeSite(const std::vector<std::string> &fields, std::size_t at,
           FactSite *site)
{
    if (fields.size() < at + 4) {
        return false;
    }
    site->line = std::strtoull(fields[at].c_str(), nullptr, 10);
    site->shardMarked =
        fields[at + 1].find('s') != std::string::npos;
    site->rngMarked = fields[at + 1].find('r') != std::string::npos;
    std::stringstream allows(fields[at + 2]);
    std::string token;
    while (std::getline(allows, token, ',')) {
        if (!token.empty()) {
            site->allows.insert(token);
        }
    }
    site->snippet = fields[at + 3];
    return true;
}

} // namespace

FileFacts
scanFile(const std::string &rel, const std::string &text)
{
    FileFacts facts;
    facts.path = rel;
    facts.hash = fnv1a(text);
    const std::vector<LineView> lines = splitLines(text);

    const bool shardHeader = inScopeList("shard-unsynced-state", rel);
    const bool barrierFile = inScopeList("merge-barrier-escape", rel);
    const bool eventTraceFile =
        rel.find("obs/event_trace.") != std::string::npos;

    static const std::regex kInclude(
        R"(^\s*#\s*include\s*"([^"]+)\")");
    static const std::regex kEventUse(R"(\bEventKind\s*::\s*(\w+))");

    for (std::size_t i = 0; i < lines.size(); ++i) {
        scanLine(rel, lines, i, &facts);

        std::smatch m;
        if (std::regex_search(lines[i].raw, m, kInclude)) {
            IncludeFact inc;
            inc.at = siteAt(lines, i);
            inc.target = m[1];
            facts.includes.push_back(std::move(inc));
        }
        if (!eventTraceFile) {
            const std::string &code = lines[i].code;
            for (auto it = std::sregex_iterator(code.begin(),
                                                code.end(),
                                                kEventUse);
                 it != std::sregex_iterator(); ++it) {
                EventUseFact use;
                use.at = siteAt(lines, i);
                use.kind = (*it)[1];
                facts.events.push_back(std::move(use));
            }
        }
        if (shardHeader) {
            scanShardMember(rel, lines, i, &facts);
        }
        scanRng(lines, i, &facts);
    }
    if (barrierFile) {
        scanMethods(lines, &facts);
    }
    if (rel.find("obs/event_trace.hh") != std::string::npos) {
        scanEventEnum(lines, &facts);
    }
    return facts;
}

std::string
serializeFacts(const FileFacts &facts)
{
    std::ostringstream os;
    os << "F|" << escapeField(facts.path) << "|" << std::hex
       << facts.hash << std::dec << "\n";
    for (const Finding &f : facts.lineFindings) {
        os << "L|" << f.line << "|" << escapeField(f.rule) << "|"
           << escapeField(f.message) << "|" << escapeField(f.snippet)
           << "\n";
    }
    for (const IncludeFact &f : facts.includes) {
        os << "I|" << encodeSite(f.at) << "|"
           << escapeField(f.target) << "\n";
    }
    for (const MetricFact &f : facts.metrics) {
        os << "M|" << encodeSite(f.at) << "|"
           << (f.prefixArg ? "p" : "") << "|"
           << escapeField(f.literal) << "\n";
    }
    for (const EventUseFact &f : facts.events) {
        os << "E|" << encodeSite(f.at) << "|" << escapeField(f.kind)
           << "\n";
    }
    for (const std::string &e : facts.eventEnumerators) {
        os << "K|" << escapeField(e) << "\n";
    }
    for (const RngFact &f : facts.rngs) {
        std::string flags;
        if (f.construction) {
            flags += 'c';
        }
        if (f.hasSalt) {
            flags += 'h';
        }
        os << "R|" << encodeSite(f.at) << "|" << flags << "|"
           << std::hex << f.salt << std::dec << "|"
           << escapeField(f.args) << "\n";
    }
    for (const MemberFact &f : facts.members) {
        std::string flags;
        if (f.laneNamed) {
            flags += 'l';
        }
        if (f.guarded) {
            flags += 'g';
        }
        if (f.rngTyped) {
            flags += 'r';
        }
        os << "D|" << encodeSite(f.at) << "|" << flags << "|"
           << escapeField(f.name) << "|"
           << escapeField(f.classification) << "\n";
    }
    for (const MethodFact &f : facts.methods) {
        std::string flags;
        if (f.laneScoped) {
            flags += 'l';
        }
        if (f.synced) {
            flags += 's';
        }
        if (f.blessed) {
            flags += 'b';
        }
        os << "X|" << escapeField(f.name) << "|" << f.sigLine << "|"
           << f.bodyEnd << "|" << flags << "\n";
    }
    for (const TokenRefFact &f : facts.tokenRefs) {
        os << "T|" << encodeSite(f.at) << "|"
           << escapeField(f.token) << "\n";
    }
    return os.str();
}

bool
parseFacts(const std::vector<std::string> &lines, std::size_t *pos,
           FileFacts *out)
{
    if (*pos >= lines.size()) {
        return false;
    }
    {
        const std::vector<std::string> fields =
            splitFields(lines[*pos]);
        if (fields.size() != 3 || fields[0] != "F") {
            return false;
        }
        out->path = fields[1];
        out->hash = std::strtoull(fields[2].c_str(), nullptr, 16);
        ++*pos;
    }
    while (*pos < lines.size()) {
        const std::string &line = lines[*pos];
        if (line.empty()) {
            ++*pos;
            continue;
        }
        if (line[0] == 'F') {
            break; // next file's records
        }
        const std::vector<std::string> fields = splitFields(line);
        const std::string &tag = fields[0];
        bool ok = true;
        if (tag == "L" && fields.size() == 5) {
            Finding f;
            f.file = out->path;
            f.line = std::strtoull(fields[1].c_str(), nullptr, 10);
            f.rule = fields[2];
            f.message = fields[3];
            f.snippet = fields[4];
            out->lineFindings.push_back(std::move(f));
        } else if (tag == "I" && fields.size() == 6) {
            IncludeFact f;
            ok = decodeSite(fields, 1, &f.at);
            f.target = fields[5];
            out->includes.push_back(std::move(f));
        } else if (tag == "M" && fields.size() == 7) {
            MetricFact f;
            ok = decodeSite(fields, 1, &f.at);
            f.prefixArg = fields[5].find('p') != std::string::npos;
            f.literal = fields[6];
            out->metrics.push_back(std::move(f));
        } else if (tag == "E" && fields.size() == 6) {
            EventUseFact f;
            ok = decodeSite(fields, 1, &f.at);
            f.kind = fields[5];
            out->events.push_back(std::move(f));
        } else if (tag == "K" && fields.size() == 2) {
            out->eventEnumerators.push_back(fields[1]);
        } else if (tag == "R" && fields.size() == 8) {
            RngFact f;
            ok = decodeSite(fields, 1, &f.at);
            f.construction =
                fields[5].find('c') != std::string::npos;
            f.hasSalt = fields[5].find('h') != std::string::npos;
            f.salt = std::strtoull(fields[6].c_str(), nullptr, 16);
            f.args = fields[7];
            out->rngs.push_back(std::move(f));
        } else if (tag == "D" && fields.size() == 8) {
            MemberFact f;
            ok = decodeSite(fields, 1, &f.at);
            f.laneNamed = fields[5].find('l') != std::string::npos;
            f.guarded = fields[5].find('g') != std::string::npos;
            f.rngTyped = fields[5].find('r') != std::string::npos;
            f.name = fields[6];
            f.classification = fields[7];
            out->members.push_back(std::move(f));
        } else if (tag == "X" && fields.size() == 5) {
            MethodFact f;
            f.name = fields[1];
            f.sigLine =
                std::strtoull(fields[2].c_str(), nullptr, 10);
            f.bodyEnd =
                std::strtoull(fields[3].c_str(), nullptr, 10);
            f.laneScoped = fields[4].find('l') != std::string::npos;
            f.synced = fields[4].find('s') != std::string::npos;
            f.blessed = fields[4].find('b') != std::string::npos;
            out->methods.push_back(std::move(f));
        } else if (tag == "T" && fields.size() == 6) {
            TokenRefFact f;
            ok = decodeSite(fields, 1, &f.at);
            f.token = fields[5];
            out->tokenRefs.push_back(std::move(f));
        } else {
            return false;
        }
        if (!ok) {
            return false;
        }
        ++*pos;
    }
    return true;
}

} // namespace lint
} // namespace thermostat
