#include "lint_source.hh"

#include <cctype>

namespace thermostat
{
namespace lint
{

namespace
{

/** Tokenizer state carried across physical lines. */
enum class State
{
    Code,
    LineComment,  //!< may continue via trailing backslash
    BlockComment,
    String,       //!< ordinary "..."; may continue via backslash
    CharLit,
    RawString,    //!< R"delim(...)delim"; spans lines freely
};

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/**
 * True when the '"' at @p pos opens a raw string literal: it is
 * preceded by 'R' with an optional encoding prefix (u8, u, U, L)
 * and the prefix is not the tail of a longer identifier.
 */
bool
rawPrefixAt(const std::string &text, std::size_t pos)
{
    if (pos == 0 || text[pos - 1] != 'R') {
        return false;
    }
    std::size_t before = pos - 1; // index of 'R'
    if (before >= 2 && text[before - 2] == 'u' &&
        text[before - 1] == '8') {
        before -= 2;
    } else if (before >= 1 && (text[before - 1] == 'u' ||
                               text[before - 1] == 'U' ||
                               text[before - 1] == 'L')) {
        before -= 1;
    }
    return before == 0 || !identChar(text[before - 1]);
}

} // namespace

std::vector<LineView>
splitLines(const std::string &text)
{
    std::vector<LineView> lines;
    lines.emplace_back();
    State state = State::Code;
    std::string rawDelim;    // RawString: ")delim" closer to match
    std::string literalBody; // String: body accumulated on the line

    auto line = [&]() -> LineView & { return lines.back(); };

    auto newline = [&]() {
        switch (state) {
          case State::LineComment:
            // A line comment whose last character is a backslash
            // splices onto the next physical line (phase-2 line
            // continuation) and keeps commenting it out.
            if (line().raw.empty() || line().raw.back() != '\\') {
                state = State::Code;
            }
            break;
          case State::String:
          case State::CharLit:
            // Unterminated at end-of-line without a splice: be
            // error-tolerant and drop back to code.
            literalBody.clear();
            state = State::Code;
            break;
          default:
            break;
        }
        lines.emplace_back();
    };

    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        if (c == '\n') {
            newline();
            continue;
        }
        line().raw += c;
        const std::size_t pos = line().raw.size() - 1;

        switch (state) {
          case State::Code:
            if (c == '/' && i + 1 < text.size()) {
                if (text[i + 1] == '/') {
                    state = State::LineComment;
                    line().raw += text[++i];
                    continue;
                }
                if (text[i + 1] == '*') {
                    state = State::BlockComment;
                    line().raw += text[++i];
                    continue;
                }
            }
            if (c == '"') {
                if (rawPrefixAt(line().raw, pos)) {
                    // Parse the open delimiter up to '('.
                    std::string delim;
                    std::size_t j = i + 1;
                    while (j < text.size() && text[j] != '(' &&
                           text[j] != '\n' && delim.size() < 16) {
                        delim += text[j];
                        line().raw += text[j];
                        ++j;
                    }
                    if (j < text.size() && text[j] == '(') {
                        line().raw += text[j];
                        i = j;
                        rawDelim = ")" + delim + "\"";
                        line().code += '"';
                        state = State::RawString;
                        continue;
                    }
                    // Malformed open: treat as ordinary string.
                    i = j - 1;
                }
                line().code += '"';
                literalBody.clear();
                state = State::String;
                continue;
            }
            if (c == '\'') {
                line().code += '\'';
                state = State::CharLit;
                continue;
            }
            line().code += c;
            break;

          case State::LineComment:
            break; // swallowed; newline() decides continuation

          case State::BlockComment:
            if (c == '*' && i + 1 < text.size() &&
                text[i + 1] == '/') {
                line().raw += text[++i];
                state = State::Code;
            }
            break;

          case State::String:
            if (c == '\\' && i + 1 < text.size()) {
                if (text[i + 1] == '\n') {
                    // Spliced string: the literal continues on the
                    // next physical line, so start a new LineView
                    // without newline()'s back-to-code reset.
                    lines.emplace_back();
                    ++i;
                    continue;
                }
                literalBody += c;
                literalBody += text[i + 1];
                line().raw += text[i + 1];
                line().code += "  ";
                ++i;
                continue;
            }
            if (c == '"') {
                line().code += '"';
                line().literals.push_back(literalBody);
                literalBody.clear();
                state = State::Code;
                continue;
            }
            literalBody += c;
            line().code += ' ';
            break;

          case State::CharLit:
            if (c == '\\' && i + 1 < text.size() &&
                text[i + 1] != '\n') {
                line().raw += text[i + 1];
                line().code += "  ";
                ++i;
                continue;
            }
            if (c == '\'') {
                line().code += '\'';
                state = State::Code;
                continue;
            }
            line().code += ' ';
            break;

          case State::RawString:
            // Look for the ")delim"" closer starting here.
            if (c == ')' &&
                text.compare(i, rawDelim.size(), rawDelim) == 0) {
                for (std::size_t k = 1; k < rawDelim.size(); ++k) {
                    line().raw += text[i + k];
                }
                i += rawDelim.size() - 1;
                line().code += '"';
                state = State::Code;
                continue;
            }
            break;
        }
    }
    return lines;
}

std::string
trim(const std::string &s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) {
        ++b;
    }
    while (e > b &&
           std::isspace(static_cast<unsigned char>(s[e - 1]))) {
        --e;
    }
    return s.substr(b, e - b);
}

std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

} // namespace lint
} // namespace thermostat
