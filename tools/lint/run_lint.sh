#!/usr/bin/env bash
# Build (if needed) and run thermostat_lint over the repository with
# the checked-in suppression baseline.  Extra arguments are passed
# through (e.g. --json, --list-rules, or explicit paths).
# Exit status mirrors the tool: 0 clean, 1 findings, 2 error.
set -euo pipefail
cd "$(dirname "$0")/../.." || exit

build_dir="${BUILD_DIR:-build}"
lint_bin="$build_dir/tools/lint/thermostat_lint"

if [[ ! -x "$lint_bin" ]]; then
    cmake -B "$build_dir" -S . >/dev/null
    cmake --build "$build_dir" --target thermostat_lint -j"$(nproc)" >/dev/null
fi

exec "$lint_bin" --root . "$@"
