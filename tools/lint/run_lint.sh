#!/usr/bin/env bash
# Build (if needed) and run thermostat_lint over the repository with
# the checked-in suppression baseline and the build-tree incremental
# cache.  Extra arguments are passed through (e.g. --ci, --format
# sarif, --list-rules, or explicit paths).
#
#   --timing   run a cold full-repo lint (cache cleared first),
#              print a "lint_full" timing row, and fail if the cold
#              scan takes 5 s or longer.
#
# Exit status mirrors the tool: 0 clean, 1 findings, 2 error.
set -euo pipefail
cd "$(dirname "$0")/../.." || exit

build_dir="${BUILD_DIR:-build}"
lint_bin="$build_dir/tools/lint/thermostat_lint"
cache_file="$build_dir/lint_cache.tsv"

if [[ ! -x "$lint_bin" ]]; then
    cmake -B "$build_dir" -S . >/dev/null
    cmake --build "$build_dir" --target thermostat_lint -j"$(nproc)" >/dev/null
fi

if [[ "${1:-}" == "--timing" ]]; then
    shift
    rm -f "$cache_file"
    start_ns=$(date +%s%N)
    status=0
    "$lint_bin" --root . --cache "$cache_file" "$@" || status=$?
    end_ns=$(date +%s%N)
    elapsed_ms=$(( (end_ns - start_ns) / 1000000 ))
    printf 'lint_full cold_ms=%d budget_ms=5000\n' "$elapsed_ms"
    if (( elapsed_ms >= 5000 )); then
        echo "run_lint.sh: cold full-repo lint exceeded 5 s budget" >&2
        exit 1
    fi
    exit "$status"
fi

exec "$lint_bin" --root . --cache "$cache_file" "$@"
