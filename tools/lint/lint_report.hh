/**
 * @file
 * Output renderers for thermostat_lint: human text, the machine
 * JSON report consumed by tests/tooling, and SARIF 2.1.0 for CI
 * inline annotations (github/codeql-action/upload-sarif).
 */

#ifndef THERMOSTAT_LINT_REPORT_HH
#define THERMOSTAT_LINT_REPORT_HH

#include <cstddef>
#include <string>
#include <vector>

#include "lint_rules.hh"

namespace thermostat
{
namespace lint
{

enum class Format
{
    Text,
    Json,
    Sarif,
};

/** Everything a renderer needs about one run. */
struct Report
{
    std::vector<Finding> findings; //!< post-baseline, sorted
    /** Unused baseline entries: key + 1-based baseline line. */
    std::vector<std::pair<std::string, std::size_t>> unusedBaseline;
    std::size_t filesScanned = 0;
    std::size_t baselined = 0; //!< findings the baseline absorbed
    std::size_t cacheHits = 0;
    std::size_t cacheMisses = 0;
    bool ci = false; //!< unused baseline entries were promoted
};

std::string jsonEscape(const std::string &s);

std::string renderText(const Report &report);
std::string renderJson(const Report &report);
std::string renderSarif(const Report &report);

std::string render(const Report &report, Format format);

} // namespace lint
} // namespace thermostat

#endif // THERMOSTAT_LINT_REPORT_HH
