/**
 * @file
 * thermostat_lint driver: collects files, runs the per-file scanner
 * in parallel over the shared ThreadPool (with a content-hash
 * incremental cache), evaluates the cross-TU project rules, applies
 * the suppression baseline and renders text/JSON/SARIF.
 *
 * The rule implementations live in the lint library next to this
 * file: lint_source (tokenizer), lint_rules (registry + baseline),
 * lint_scanner (per-file pass), lint_project (cross-TU passes),
 * lint_report (renderers).
 *
 * Exit status: 0 clean, 1 findings, 2 usage/environment error.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/thread_pool.hh"
#include "lint_project.hh"
#include "lint_report.hh"
#include "lint_rules.hh"
#include "lint_scanner.hh"
#include "lint_source.hh"

namespace fs = std::filesystem;

using namespace thermostat;
using namespace thermostat::lint;

namespace
{

const char *const kCacheHeader = "thermostat-lint-cache v2";

bool
lintableExtension(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".hh" || ext == ".cpp" ||
           ext == ".hpp" || ext == ".h";
}

/** Directories never descended into on a tree walk.  lint_fixtures
 * holds deliberate violations for tests/test_lint.cc; explicitly
 * listed files are still scanned. */
bool
skippedDir(const fs::path &p)
{
    const std::string name = p.filename().string();
    return name == "lint_fixtures" || name == ".git" ||
           name.rfind("build", 0) == 0;
}

void
collectFiles(const fs::path &path, std::vector<fs::path> *out)
{
    std::error_code ec;
    if (fs::is_regular_file(path, ec)) {
        if (lintableExtension(path)) {
            out->push_back(path);
        }
        return;
    }
    if (!fs::is_directory(path, ec)) {
        return;
    }
    std::vector<fs::path> sub;
    for (const auto &entry : fs::directory_iterator(path, ec)) {
        sub.push_back(entry.path());
    }
    std::sort(sub.begin(), sub.end());
    for (const fs::path &p : sub) {
        if (fs::is_directory(p, ec)) {
            if (!skippedDir(p)) {
                collectFiles(p, out);
            }
        } else if (lintableExtension(p)) {
            out->push_back(p);
        }
    }
}

std::string
relativeTo(const fs::path &file, const fs::path &root)
{
    std::error_code ec;
    fs::path rel = fs::relative(file, root, ec);
    if (ec || rel.empty()) {
        rel = file;
    }
    return rel.generic_string();
}

/** Cache file -> facts keyed by root-relative path.  Any parse
 * hiccup makes the whole cache cold (it is only an accelerator). */
std::map<std::string, FileFacts>
loadCache(const std::string &path)
{
    std::map<std::string, FileFacts> cache;
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        return cache;
    }
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) {
        lines.push_back(line);
    }
    if (lines.empty() || lines[0] != kCacheHeader) {
        return cache;
    }
    std::size_t pos = 1;
    while (pos < lines.size()) {
        if (lines[pos].empty()) {
            ++pos;
            continue;
        }
        FileFacts facts;
        if (!parseFacts(lines, &pos, &facts)) {
            cache.clear();
            return cache;
        }
        cache.emplace(facts.path, std::move(facts));
    }
    return cache;
}

void
storeCache(const std::string &path,
           const std::vector<FileFacts> &files)
{
    std::ofstream out(path, std::ios::binary);
    if (!out) {
        std::fprintf(stderr,
                     "thermostat_lint: cannot write cache %s\n",
                     path.c_str());
        return;
    }
    out << kCacheHeader << "\n";
    for (const FileFacts &facts : files) {
        out << serializeFacts(facts);
    }
}

void
usage(std::FILE *to)
{
    std::fprintf(
        to,
        "usage: thermostat_lint [--root DIR] [--baseline FILE]\n"
        "                       [--format text|json|sarif] [--json]\n"
        "                       [--out FILE] [--cache FILE] [--ci]\n"
        "                       [--list-rules] [paths...]\n"
        "\n"
        "Scans paths (default: src bench tools tests under --root)\n"
        "for determinism/concurrency/convention violations, then\n"
        "runs the cross-TU project rules (subsystem layering DAG,\n"
        "RNG-stream discipline, metric/trace schema audit,\n"
        "merge-barrier escape).  --cache enables the content-hash\n"
        "incremental cache; --ci promotes unused baseline entries\n"
        "to errors.  Exit: 0 clean, 1 findings, 2 error.\n");
}

} // namespace

int
main(int argc, char **argv)
{
    fs::path root = ".";
    fs::path baseline_path;
    bool baseline_set = false;
    Format format = Format::Text;
    bool ci = false;
    std::string out_path;
    std::string cache_path;
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "thermostat_lint: %s needs a value\n",
                             flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--root") {
            root = next("--root");
        } else if (arg == "--baseline") {
            baseline_path = next("--baseline");
            baseline_set = true;
        } else if (arg == "--json") {
            format = Format::Json;
        } else if (arg == "--format") {
            const std::string value = next("--format");
            if (value == "text") {
                format = Format::Text;
            } else if (value == "json") {
                format = Format::Json;
            } else if (value == "sarif") {
                format = Format::Sarif;
            } else {
                std::fprintf(stderr,
                             "thermostat_lint: unknown format %s\n",
                             value.c_str());
                return 2;
            }
        } else if (arg == "--out") {
            out_path = next("--out");
        } else if (arg == "--cache") {
            cache_path = next("--cache");
        } else if (arg == "--ci") {
            ci = true;
        } else if (arg == "--list-rules") {
            for (const RuleInfo &r : rules()) {
                std::printf("%-24s %s\n", r.id, r.summary);
            }
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage(stdout);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr,
                         "thermostat_lint: unknown option %s\n",
                         arg.c_str());
            usage(stderr);
            return 2;
        } else {
            paths.push_back(arg);
        }
    }

    std::error_code ec;
    if (!fs::is_directory(root, ec)) {
        std::fprintf(stderr,
                     "thermostat_lint: --root %s: not a directory\n",
                     root.string().c_str());
        return 2;
    }
    if (paths.empty()) {
        for (const char *d : {"src", "bench", "tools", "tests"}) {
            if (fs::is_directory(root / d, ec)) {
                paths.push_back(d);
            }
        }
    }

    Baseline baseline;
    if (!baseline_set) {
        baseline_path = root / "tools" / "lint" / "lint_baseline.txt";
    }
    if (fs::exists(baseline_path, ec)) {
        if (!loadBaseline(baseline_path.string(), &baseline)) {
            std::fprintf(stderr,
                         "thermostat_lint: cannot read baseline %s\n",
                         baseline_path.string().c_str());
            return 2;
        }
    } else if (baseline_set) {
        std::fprintf(stderr,
                     "thermostat_lint: baseline %s not found\n",
                     baseline_path.string().c_str());
        return 2;
    }

    std::vector<fs::path> files;
    for (const std::string &p : paths) {
        fs::path full = fs::path(p).is_absolute() ? fs::path(p)
                                                  : root / p;
        if (!fs::exists(full, ec)) {
            std::fprintf(stderr,
                         "thermostat_lint: %s: no such path\n",
                         full.string().c_str());
            return 2;
        }
        collectFiles(full, &files);
    }

    std::map<std::string, FileFacts> cache;
    if (!cache_path.empty()) {
        cache = loadCache(cache_path);
    }

    // Per-file pass: parallel over the shared pool, results written
    // into index-disjoint slots so ordering stays deterministic.
    std::vector<FileFacts> allFacts(files.size());
    std::vector<std::string> readErrors(files.size());
    std::vector<char> hits(files.size(), 0);
    {
        ThreadPool pool;
        pool.parallelFor(
            0, files.size(), 1, [&](std::size_t i) {
                std::ifstream in(files[i], std::ios::binary);
                if (!in) {
                    readErrors[i] = files[i].string();
                    return;
                }
                std::ostringstream buf;
                buf << in.rdbuf();
                const std::string text = buf.str();
                const std::string rel = relativeTo(files[i], root);
                const auto it = cache.find(rel);
                if (it != cache.end() &&
                    it->second.hash == fnv1a(text)) {
                    allFacts[i] = it->second;
                    hits[i] = 1;
                    return;
                }
                allFacts[i] = scanFile(rel, text);
            });
        pool.wait();
    }
    for (const std::string &err : readErrors) {
        if (!err.empty()) {
            std::fprintf(stderr,
                         "thermostat_lint: cannot read %s\n",
                         err.c_str());
            return 2;
        }
    }
    if (!cache_path.empty()) {
        storeCache(cache_path, allFacts);
    }

    // Project passes always run fresh from the (possibly replayed)
    // facts; the DESIGN.md catalogs are re-read every run so docs
    // edits invalidate findings without touching the cache.
    std::vector<Finding> combined;
    for (const FileFacts &facts : allFacts) {
        combined.insert(combined.end(), facts.lineFindings.begin(),
                        facts.lineFindings.end());
    }
    const DesignCatalog catalog =
        loadDesignCatalog((root / "DESIGN.md").string());
    runProjectRules(allFacts, catalog, &combined);

    Report report;
    report.ci = ci;
    report.filesScanned = files.size();
    for (std::size_t i = 0; i < files.size(); ++i) {
        (hits[i] ? report.cacheHits : report.cacheMisses) += 1;
    }
    for (Finding &f : combined) {
        const std::string key = baselineKey(f.rule, f.file, f.snippet);
        const auto it = baseline.entries.find(key);
        if (it != baseline.entries.end()) {
            baseline.used.insert(key);
            ++report.baselined;
        } else {
            report.findings.push_back(std::move(f));
        }
    }
    const std::string baselineRel =
        relativeTo(baseline_path, root);
    for (const auto &entry : baseline.entries) {
        if (baseline.used.count(entry.first)) {
            continue;
        }
        report.unusedBaseline.emplace_back(entry.first,
                                           entry.second);
        if (ci) {
            report.findings.push_back(
                {baselineRel, entry.second, "unused-baseline-entry",
                 "baseline entry no longer matches any finding; "
                 "prune it",
                 entry.first});
        }
    }
    std::sort(report.findings.begin(), report.findings.end(),
              findingLess);

    const std::string rendered = render(report, format);
    if (!out_path.empty()) {
        std::ofstream out(out_path, std::ios::binary);
        if (!out) {
            std::fprintf(stderr,
                         "thermostat_lint: cannot write %s\n",
                         out_path.c_str());
            return 2;
        }
        out << rendered;
    } else {
        std::fputs(rendered.c_str(), stdout);
    }
    return report.findings.empty() ? 0 : 1;
}
