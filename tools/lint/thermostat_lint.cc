/**
 * @file
 * thermostat_lint: repo-specific determinism/concurrency/convention
 * analyzer (see DESIGN.md, "Static analysis & determinism
 * enforcement").
 *
 * The reproduction's headline guarantees -- bit-identical parallel
 * sweeps, byte-identical golden runs, per-policy determinism -- are
 * enforced at runtime by tests, which only fire *after* a stray
 * `std::random_device` or unsynchronized global has already skewed a
 * run.  This tool bans those bug classes at lint time, before any
 * simulation executes.
 *
 * It is deliberately a fast, self-contained, line-oriented scanner
 * (comments and string-literal bodies are stripped before rule
 * matching; no compiler, no external deps) rather than an AST tool:
 * every rule is a repo convention with a textual signature, and the
 * suppression baseline + inline `lint:allow(<rule>)` markers absorb
 * the rare heuristic false positive.
 *
 * Usage:
 *   thermostat_lint [--root DIR] [--baseline FILE] [--json]
 *                   [--out FILE] [--list-rules] [paths...]
 *
 * Paths default to src bench tools tests under --root (default ".").
 * Exit status: 0 clean, 1 non-baselined findings, 2 usage/IO error.
 */

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace
{

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Rule table
// ---------------------------------------------------------------------------

/** Path scoping: a rule applies when rel matches a prefix in
 * `include` (empty = everywhere) and no prefix in `exclude`. */
struct RuleScope
{
    std::vector<std::string> include;
    std::vector<std::string> exclude;
};

struct RuleInfo
{
    const char *id;
    const char *summary;
    RuleScope scope;
};

// Keep ids stable: they are referenced by the suppression baseline,
// inline lint:allow markers, tests/lint_fixtures, and DESIGN.md.
const std::vector<RuleInfo> kRules = {
    {"ban-random-device",
     "std::random_device is nondeterministic; derive streams from "
     "the run seed via common/rng.hh",
     {{"src/", "bench/", "tools/"}, {}}},
    {"ban-c-random",
     "rand()/srand()/random()/drand48() share hidden global state; "
     "use common/rng.hh streams",
     {{"src/", "bench/", "tools/"}, {}}},
    {"ban-wall-clock",
     "wall-clock reads in the simulator break run reproducibility; "
     "use simulated Ns (obs/ may timestamp host phases)",
     {{"src/"}, {"src/obs/"}}},
    {"ban-naked-thread",
     "raw std::thread/std::async outside common/thread_pool; all "
     "parallelism goes through ThreadPool",
     {{"src/", "bench/", "tools/"}, {"src/common/thread_pool."}}},
    {"mutable-global",
     "mutable global/static-local state outside common/ breaks the "
     "one-Simulation-per-thread isolation contract",
     {{"src/"}, {"src/common/"}}},
    {"metric-name-style",
     "metric names are lowercase dot/slash-separated "
     "(component/name.leaf); see obs/metrics.hh",
     {{"src/", "bench/", "tools/"}, {}}},
    {"trace-category",
     "event-mask literals must use registered categories "
     "(sample,poison,classify,migrate,correct,phase,fault,policy,"
     "all,none)",
     {{"src/", "bench/", "tools/"}, {}}},
    {"unsafe-c-api",
     "banned unbounded C string API (strcpy/strcat/sprintf/vsprintf/"
     "gets/strtok); use snprintf or std::string",
     {{}, {}}},
    {"hot-path-unordered-map",
     "std::unordered_map on simulator/bench paths; per-page tables "
     "use common/flat_map.hh (baseline cold paths with a "
     "justification)",
     {{"src/", "bench/"}, {}}},
    {"shard-unsynced-state",
     "mutable member in the sharded execution set without a "
     "concurrency classification; annotate TSTAT_GUARDED_BY, make "
     "it lane-indexed (name contains 'lane'), or mark it "
     "'// shard: <class>' (lane-local | serial-only | read-only | "
     "merge-barrier)",
     {{"src/sim/machine.hh", "src/sim/simulation.hh",
       "src/tlb/tlb.hh", "src/cache/llc.hh",
       "src/sys/badger_trap.hh", "src/obs/access_sampler.hh",
       "src/vm/page_table.hh", "src/vm/page_walker.hh",
       "src/migrate/migration_queue.hh",
       "src/migrate/transaction_engine.hh"},
      {}}},
};

const RuleInfo *
findRule(const std::string &id)
{
    for (const RuleInfo &r : kRules) {
        if (id == r.id) {
            return &r;
        }
    }
    return nullptr;
}

bool
ruleApplies(const RuleInfo &rule, const std::string &rel)
{
    for (const std::string &prefix : rule.scope.exclude) {
        if (rel.rfind(prefix, 0) == 0) {
            return false;
        }
    }
    if (rule.scope.include.empty()) {
        return true;
    }
    for (const std::string &prefix : rule.scope.include) {
        if (rel.rfind(prefix, 0) == 0) {
            return true;
        }
    }
    return false;
}

// ---------------------------------------------------------------------------
// Source model
// ---------------------------------------------------------------------------

/** One physical line: raw text, comment/literal-stripped code view,
 * and the bodies of the double-quoted literals on the line. */
struct LineView
{
    std::string raw;
    std::string code;
    std::vector<std::string> literals;
};

/**
 * Split @p text into LineViews.  The code view keeps string/char
 * literal *delimiters* but blanks their bodies, and blanks comments
 * entirely, so rule regexes never match inside either.  Raw-string
 * literals are handled as plain strings (good enough for this tree:
 * the scanner's consumers are conventions, not a parser).
 */
std::vector<LineView>
splitLines(const std::string &text)
{
    std::vector<LineView> lines;
    bool in_block_comment = false;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        const std::size_t eol = text.find('\n', pos);
        const std::size_t end =
            eol == std::string::npos ? text.size() : eol;
        LineView line;
        line.raw = text.substr(pos, end - pos);
        std::string &code = line.code;
        code.reserve(line.raw.size());
        for (std::size_t i = 0; i < line.raw.size();) {
            const char c = line.raw[i];
            if (in_block_comment) {
                if (c == '*' && i + 1 < line.raw.size() &&
                    line.raw[i + 1] == '/') {
                    in_block_comment = false;
                    i += 2;
                } else {
                    ++i;
                }
                continue;
            }
            if (c == '/' && i + 1 < line.raw.size()) {
                if (line.raw[i + 1] == '/') {
                    break; // line comment: drop the rest
                }
                if (line.raw[i + 1] == '*') {
                    in_block_comment = true;
                    i += 2;
                    continue;
                }
            }
            if (c == '"' || c == '\'') {
                const char quote = c;
                std::string body;
                std::size_t j = i + 1;
                bool closed = false;
                while (j < line.raw.size()) {
                    if (line.raw[j] == '\\' &&
                        j + 1 < line.raw.size()) {
                        body += line.raw[j];
                        body += line.raw[j + 1];
                        j += 2;
                        continue;
                    }
                    if (line.raw[j] == quote) {
                        closed = true;
                        break;
                    }
                    body += line.raw[j];
                    ++j;
                }
                code += quote;
                code.append(body.size(), ' ');
                if (closed) {
                    code += quote;
                    if (quote == '"') {
                        line.literals.push_back(body);
                    }
                    i = j + 1;
                } else {
                    i = line.raw.size(); // unterminated: eat line
                }
                continue;
            }
            code += c;
            ++i;
        }
        lines.push_back(std::move(line));
        if (eol == std::string::npos) {
            break;
        }
        pos = eol + 1;
    }
    return lines;
}

std::string
trim(const std::string &s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) {
        ++b;
    }
    while (e > b &&
           std::isspace(static_cast<unsigned char>(s[e - 1]))) {
        --e;
    }
    return s.substr(b, e - b);
}

// ---------------------------------------------------------------------------
// Findings and suppression
// ---------------------------------------------------------------------------

struct Finding
{
    std::string file; //!< root-relative path
    std::size_t line = 0;
    std::string rule;
    std::string message;
    std::string snippet; //!< trimmed raw source line
};

/** Baseline entry key: rule|path|trimmed-line-content.  Content (not
 * line number) keys the entry so unrelated edits don't churn it. */
std::string
baselineKey(const std::string &rule, const std::string &file,
            const std::string &snippet)
{
    return rule + "|" + file + "|" + snippet;
}

struct Baseline
{
    std::set<std::string> entries;
    std::set<std::string> used;
};

bool
loadBaseline(const fs::path &path, Baseline *out)
{
    std::ifstream in(path);
    if (!in) {
        return false;
    }
    std::string line;
    while (std::getline(in, line)) {
        const std::string t = trim(line);
        if (t.empty() || t[0] == '#') {
            continue;
        }
        out->entries.insert(t);
    }
    return true;
}

/** `lint:allow(<rule>)` suppresses a rule on its own line and, so
 * the marker fits the 79-column style as a standalone comment, on
 * the line immediately after it. */
bool
inlineSuppressed(const std::vector<LineView> &lines,
                 std::size_t index, const char *rule)
{
    const std::string marker = std::string("lint:allow(") + rule + ")";
    if (lines[index].raw.find(marker) != std::string::npos) {
        return true;
    }
    return index > 0 &&
           lines[index - 1].raw.find(marker) != std::string::npos;
}

// ---------------------------------------------------------------------------
// Rule implementations
// ---------------------------------------------------------------------------

const std::set<std::string> kTraceCategories = {
    "all",     "none",    "sample", "poison", "classify",
    "migrate", "correct", "phase",  "fault",  "policy"};

bool
validMetricLiteral(const std::string &lit)
{
    // Leading '.' is the "suffix appended to a prefix" form
    // (registry.addCallback(prefix + ".ticks", ...)).
    static const std::regex re(
        R"(^\.?[a-z0-9_]+([./][a-z0-9_]+)*$)");
    return std::regex_match(lit, re);
}

bool
validTraceCategoryList(const std::string &lit)
{
    std::size_t start = 0;
    while (start <= lit.size()) {
        std::size_t end = lit.find(',', start);
        if (end == std::string::npos) {
            end = lit.size();
        }
        const std::string token = lit.substr(start, end - start);
        if (!token.empty() &&
            kTraceCategories.find(token) == kTraceCategories.end()) {
            return false;
        }
        if (end == lit.size()) {
            break;
        }
        start = end + 1;
    }
    return true;
}

/**
 * mutable-global helper: true when the statement starting at line
 * @p index with a bare `static` keyword declares a variable rather
 * than a function.  A declarator whose first `(`/`=`/`;` terminator
 * is `(` is a function (or ctor-style init, which this tree does not
 * use for statics).  The repo's gem5-style declarations break the
 * line after the return type, so continuation lines are joined until
 * a terminator appears.
 */
bool
staticDeclaresVariable(const std::vector<LineView> &lines,
                       std::size_t index)
{
    std::string code = lines[index].code;
    for (std::size_t next = index + 1;
         next < lines.size() && next < index + 4 &&
         code.find_first_of("=;({") == std::string::npos;
         ++next) {
        code += " " + lines[next].code;
    }
    const std::size_t paren = code.find('(');
    const std::size_t assign = code.find('=');
    const std::size_t semi = code.find(';');
    const std::size_t first_end = std::min(assign, semi);
    if (paren != std::string::npos && paren < first_end) {
        return false; // function declaration/definition
    }
    return true;
}

void
scanLine(const std::string &rel,
         const std::vector<LineView> &lines, std::size_t index,
         std::vector<Finding> *findings)
{
    const LineView &line = lines[index];
    const std::size_t lineno = index + 1;
    struct Pattern
    {
        const char *rule;
        std::regex re;
        const char *what;
    };
    // Compiled once; matched against the code view only, so
    // comments and literal bodies can't trigger them.
    static const std::vector<Pattern> kPatterns = [] {
        std::vector<Pattern> p;
        p.push_back({"ban-random-device",
                     std::regex(R"(\bstd\s*::\s*random_device\b)"),
                     "std::random_device"});
        p.push_back({"ban-c-random",
                     std::regex(R"(\b(rand|srand|random|srandom|drand48|lrand48)\s*\()"),
                     "C random API"});
        p.push_back({"ban-wall-clock",
                     std::regex(R"(\b(system_clock|steady_clock|high_resolution_clock)\b)"),
                     "std::chrono wall clock"});
        p.push_back({"ban-wall-clock",
                     std::regex(R"(\btime\s*\(\s*(nullptr|NULL|0)\s*\))"),
                     "time()"});
        p.push_back({"ban-wall-clock",
                     std::regex(R"(\b(gettimeofday|clock_gettime)\s*\()"),
                     "POSIX wall clock"});
        p.push_back({"ban-naked-thread",
                     std::regex(R"(\bstd\s*::\s*(thread|jthread|async)\b)"),
                     "raw thread primitive"});
        p.push_back({"ban-naked-thread",
                     std::regex(R"(\bpthread_create\s*\()"),
                     "pthread_create"});
        p.push_back({"unsafe-c-api",
                     std::regex(R"(\b(strcpy|strcat|sprintf|vsprintf|gets|strtok)\s*\()"),
                     "unbounded C string API"});
        p.push_back({"hot-path-unordered-map",
                     std::regex(R"(\bstd\s*::\s*unordered_map\s*<)"),
                     "std::unordered_map"});
        return p;
    }();

    auto add = [&](const char *rule, const std::string &message) {
        const RuleInfo *info = findRule(rule);
        if (!info || !ruleApplies(*info, rel)) {
            return;
        }
        if (inlineSuppressed(lines, index, rule)) {
            return;
        }
        findings->push_back(
            {rel, lineno, rule, message, trim(line.raw)});
    };

    for (const Pattern &p : kPatterns) {
        if (std::regex_search(line.code, p.re)) {
            const RuleInfo *info = findRule(p.rule);
            add(p.rule, std::string(p.what) + ": " +
                            (info ? info->summary : ""));
        }
    }

    // mutable-global: `static` locals/members that are not
    // const/constexpr, plus namespace-scope g_* definitions.
    static const std::regex kStatic(R"(^\s*static\s+)");
    static const std::regex kStaticConst(
        R"(^\s*static\s+(const|constexpr|thread_local\s+const)\b)");
    if (std::regex_search(line.code, kStatic) &&
        !std::regex_search(line.code, kStaticConst) &&
        staticDeclaresVariable(lines, index)) {
        add("mutable-global", "mutable static: " +
                                  std::string(findRule("mutable-global")
                                                  ->summary));
    }
    static const std::regex kGlobal(
        R"(^\s*[A-Za-z_][\w:<>,\s*&]*[\s*&]g_\w+\s*(=|;))");
    static const std::regex kConstGlobal(R"(\b(const|constexpr)\b)");
    if (std::regex_search(line.code, kGlobal) &&
        !std::regex_search(line.code, kConstGlobal)) {
        add("mutable-global", "mutable g_* global: " +
                                  std::string(findRule("mutable-global")
                                                  ->summary));
    }

    // shard-unsynced-state: class data members (trailing-underscore
    // convention) in the headers whose state lane workers execute
    // against must say how they are safe: a TSTAT_GUARDED_BY
    // capability, a lane-indexed name, or an explicit `// shard:`
    // classification on the same or preceding line.  Anything else
    // is a member a future edit could silently mutate from inside a
    // parallel lane.
    static const std::regex kMemberDecl(
        R"(^\s*[A-Za-z_][\w:<>,*&\s\[\]]*[\s*&](\w+_)\s*[;={])");
    static const std::regex kDeclExcluded(
        R"(^\s*(return|delete|throw|using|typedef|friend|template|)"
        R"(case|goto|if|while|for|else|public|private|protected|)"
        R"(const|constexpr|static\s+const|static\s+constexpr)\b)");
    std::smatch member_match;
    if (std::regex_search(line.code, member_match, kMemberDecl) &&
        !std::regex_search(line.code, kDeclExcluded) &&
        line.code.find("TSTAT_GUARDED_BY") == std::string::npos) {
        std::string member = member_match[1];
        std::string lowered = member;
        std::transform(lowered.begin(), lowered.end(),
                       lowered.begin(), [](unsigned char c) {
                           return std::tolower(c);
                       });
        const bool lane_indexed =
            lowered.find("lane") != std::string::npos;
        const bool classified =
            line.raw.find("// shard:") != std::string::npos ||
            (index > 0 && lines[index - 1].raw.find("// shard:") !=
                              std::string::npos);
        if (!lane_indexed && !classified) {
            add("shard-unsynced-state",
                "member '" + member + "' is unclassified: " +
                    std::string(
                        findRule("shard-unsynced-state")->summary));
        }
    }

    // metric-name-style: literals at registration call sites.
    if (line.code.find(".counter(") != std::string::npos ||
        line.code.find(".gauge(") != std::string::npos ||
        line.code.find(".histogram(") != std::string::npos ||
        line.code.find("addCallback(") != std::string::npos) {
        for (const std::string &lit : line.literals) {
            if (!validMetricLiteral(lit)) {
                add("metric-name-style",
                    "metric name \"" + lit + "\" is not lowercase "
                    "dot/slash-separated (component/name.leaf)");
            }
        }
    }

    // trace-category: literal masks must use registered categories.
    if (line.code.find("parseEventMask(") != std::string::npos) {
        for (const std::string &lit : line.literals) {
            if (!validTraceCategoryList(lit)) {
                add("trace-category",
                    "\"" + lit + "\" contains a category outside "
                    "the registered set (see obs/event_trace.hh)");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// File walking
// ---------------------------------------------------------------------------

bool
lintableExtension(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".hh" || ext == ".cpp" ||
           ext == ".hpp" || ext == ".h";
}

/** Directories never descended into on a tree walk.  lint_fixtures
 * holds deliberate violations for tests/test_lint.cc; explicitly
 * listed files are still scanned. */
bool
skippedDir(const fs::path &p)
{
    const std::string name = p.filename().string();
    return name == "lint_fixtures" || name == ".git" ||
           name.rfind("build", 0) == 0;
}

void
collectFiles(const fs::path &path, std::vector<fs::path> *out)
{
    std::error_code ec;
    if (fs::is_regular_file(path, ec)) {
        if (lintableExtension(path)) {
            out->push_back(path);
        }
        return;
    }
    if (!fs::is_directory(path, ec)) {
        return;
    }
    std::vector<fs::path> sub;
    for (const auto &entry : fs::directory_iterator(path, ec)) {
        sub.push_back(entry.path());
    }
    std::sort(sub.begin(), sub.end());
    for (const fs::path &p : sub) {
        if (fs::is_directory(p, ec)) {
            if (!skippedDir(p)) {
                collectFiles(p, out);
            }
        } else if (lintableExtension(p)) {
            out->push_back(p);
        }
    }
}

std::string
relativeTo(const fs::path &file, const fs::path &root)
{
    std::error_code ec;
    fs::path rel = fs::relative(file, root, ec);
    if (ec || rel.empty()) {
        rel = file;
    }
    return rel.generic_string();
}

// ---------------------------------------------------------------------------
// Output
// ---------------------------------------------------------------------------

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonReport(const std::vector<Finding> &findings,
           std::size_t baselined, std::size_t files,
           const std::vector<std::string> &unused_baseline)
{
    std::ostringstream os;
    os << "{\n  \"version\": 1,\n";
    os << "  \"checkedFiles\": " << files << ",\n";
    os << "  \"baselinedFindings\": " << baselined << ",\n";
    os << "  \"findings\": [";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const Finding &f = findings[i];
        os << (i ? ",\n    {" : "\n    {");
        os << "\"file\": \"" << jsonEscape(f.file) << "\", ";
        os << "\"line\": " << f.line << ", ";
        os << "\"rule\": \"" << jsonEscape(f.rule) << "\", ";
        os << "\"message\": \"" << jsonEscape(f.message) << "\", ";
        os << "\"snippet\": \"" << jsonEscape(f.snippet) << "\"}";
    }
    os << (findings.empty() ? "],\n" : "\n  ],\n");
    os << "  \"unusedBaselineEntries\": [";
    for (std::size_t i = 0; i < unused_baseline.size(); ++i) {
        os << (i ? ", " : "") << "\"" << jsonEscape(unused_baseline[i])
           << "\"";
    }
    os << "]\n}\n";
    return os.str();
}

void
usage(std::FILE *to)
{
    std::fprintf(to,
                 "usage: thermostat_lint [--root DIR] [--baseline FILE]\n"
                 "                       [--json] [--out FILE]\n"
                 "                       [--list-rules] [paths...]\n"
                 "\n"
                 "Scans paths (default: src bench tools tests under\n"
                 "--root) for determinism/concurrency/convention\n"
                 "violations.  Exit: 0 clean, 1 findings, 2 error.\n");
}

} // namespace

int
main(int argc, char **argv)
{
    fs::path root = ".";
    fs::path baseline_path;
    bool baseline_set = false;
    bool json = false;
    std::string out_path;
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "thermostat_lint: %s needs a value\n",
                             flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--root") {
            root = next("--root");
        } else if (arg == "--baseline") {
            baseline_path = next("--baseline");
            baseline_set = true;
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--out") {
            out_path = next("--out");
        } else if (arg == "--list-rules") {
            for (const RuleInfo &r : kRules) {
                std::printf("%-24s %s\n", r.id, r.summary);
            }
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage(stdout);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr,
                         "thermostat_lint: unknown option %s\n",
                         arg.c_str());
            usage(stderr);
            return 2;
        } else {
            paths.push_back(arg);
        }
    }

    std::error_code ec;
    if (!fs::is_directory(root, ec)) {
        std::fprintf(stderr, "thermostat_lint: --root %s: not a directory\n",
                     root.string().c_str());
        return 2;
    }
    if (paths.empty()) {
        for (const char *d : {"src", "bench", "tools", "tests"}) {
            if (fs::is_directory(root / d, ec)) {
                paths.push_back(d);
            }
        }
    }

    Baseline baseline;
    if (!baseline_set) {
        baseline_path = root / "tools" / "lint" / "lint_baseline.txt";
    }
    if (fs::exists(baseline_path, ec)) {
        if (!loadBaseline(baseline_path, &baseline)) {
            std::fprintf(stderr,
                         "thermostat_lint: cannot read baseline %s\n",
                         baseline_path.string().c_str());
            return 2;
        }
    } else if (baseline_set) {
        std::fprintf(stderr, "thermostat_lint: baseline %s not found\n",
                     baseline_path.string().c_str());
        return 2;
    }

    std::vector<fs::path> files;
    for (const std::string &p : paths) {
        fs::path full = fs::path(p).is_absolute() ? fs::path(p)
                                                  : root / p;
        if (!fs::exists(full, ec)) {
            std::fprintf(stderr, "thermostat_lint: %s: no such path\n",
                         full.string().c_str());
            return 2;
        }
        collectFiles(full, &files);
    }

    std::vector<Finding> fresh;
    std::size_t baselined = 0;
    for (const fs::path &file : files) {
        std::ifstream in(file, std::ios::binary);
        if (!in) {
            std::fprintf(stderr, "thermostat_lint: cannot read %s\n",
                         file.string().c_str());
            return 2;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        const std::string rel = relativeTo(file, root);
        const std::vector<LineView> lines = splitLines(buf.str());
        std::vector<Finding> file_findings;
        for (std::size_t i = 0; i < lines.size(); ++i) {
            scanLine(rel, lines, i, &file_findings);
        }
        for (Finding &f : file_findings) {
            const std::string key =
                baselineKey(f.rule, f.file, f.snippet);
            if (baseline.entries.count(key)) {
                baseline.used.insert(key);
                ++baselined;
            } else {
                fresh.push_back(std::move(f));
            }
        }
    }

    std::vector<std::string> unused_baseline;
    for (const std::string &entry : baseline.entries) {
        if (!baseline.used.count(entry)) {
            unused_baseline.push_back(entry);
        }
    }

    std::string report;
    if (json) {
        report = jsonReport(fresh, baselined, files.size(),
                            unused_baseline);
    } else {
        std::ostringstream os;
        for (const Finding &f : fresh) {
            os << f.file << ":" << f.line << ": error: [" << f.rule
               << "] " << f.message << "\n    " << f.snippet << "\n";
        }
        for (const std::string &entry : unused_baseline) {
            os << "warning: unused baseline entry: " << entry << "\n";
        }
        os << files.size() << " files checked, " << fresh.size()
           << " finding" << (fresh.size() == 1 ? "" : "s") << " ("
           << baselined << " baselined)\n";
        report = os.str();
    }

    if (!out_path.empty()) {
        std::ofstream out(out_path, std::ios::binary);
        if (!out) {
            std::fprintf(stderr, "thermostat_lint: cannot write %s\n",
                         out_path.c_str());
            return 2;
        }
        out << report;
    } else {
        std::fputs(report.c_str(), stdout);
    }
    return fresh.empty() ? 0 : 1;
}
