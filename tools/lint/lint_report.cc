#include "lint_report.hh"

#include <sstream>

namespace thermostat
{
namespace lint
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
renderText(const Report &report)
{
    std::ostringstream os;
    for (const Finding &f : report.findings) {
        os << f.file << ":" << f.line << ": [" << f.rule << "] "
           << f.message << "\n    " << f.snippet << "\n";
    }
    for (const auto &entry : report.unusedBaseline) {
        os << (report.ci ? "error" : "warning")
           << ": unused baseline entry (line " << entry.second
           << "): " << entry.first << "\n";
    }
    os << report.filesScanned << " files checked, "
       << report.findings.size() << " finding"
       << (report.findings.size() == 1 ? "" : "s") << " ("
       << report.baselined << " baselined; cache: "
       << report.cacheHits << " hits, " << report.cacheMisses
       << " misses)\n";
    return os.str();
}

std::string
renderJson(const Report &report)
{
    std::ostringstream os;
    os << "{\n  \"version\": 2,\n";
    os << "  \"checkedFiles\": " << report.filesScanned << ",\n";
    os << "  \"baselinedFindings\": " << report.baselined << ",\n";
    os << "  \"cacheHits\": " << report.cacheHits << ",\n";
    os << "  \"cacheMisses\": " << report.cacheMisses << ",\n";
    os << "  \"findings\": [";
    for (std::size_t i = 0; i < report.findings.size(); ++i) {
        const Finding &f = report.findings[i];
        os << (i ? ",\n" : "\n");
        os << "    {\"rule\": \"" << jsonEscape(f.rule)
           << "\", \"file\": \"" << jsonEscape(f.file)
           << "\", \"line\": " << f.line << ", \"message\": \""
           << jsonEscape(f.message) << "\", \"snippet\": \""
           << jsonEscape(f.snippet) << "\"}";
    }
    os << (report.findings.empty() ? "" : "\n  ") << "],\n";
    os << "  \"unusedBaselineEntries\": [";
    for (std::size_t i = 0; i < report.unusedBaseline.size(); ++i) {
        os << (i ? ",\n" : "\n");
        os << "    {\"entry\": \""
           << jsonEscape(report.unusedBaseline[i].first)
           << "\", \"baselineLine\": "
           << report.unusedBaseline[i].second << "}";
    }
    os << (report.unusedBaseline.empty() ? "" : "\n  ") << "]\n";
    os << "}\n";
    return os.str();
}

std::string
renderSarif(const Report &report)
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"$schema\": "
          "\"https://json.schemastore.org/sarif-2.1.0.json\",\n";
    os << "  \"version\": \"2.1.0\",\n";
    os << "  \"runs\": [\n";
    os << "    {\n";
    os << "      \"tool\": {\n";
    os << "        \"driver\": {\n";
    os << "          \"name\": \"thermostat_lint\",\n";
    os << "          \"version\": \"2.0.0\",\n";
    os << "          \"informationUri\": "
          "\"https://example.invalid/thermostat/DESIGN.md\",\n";
    os << "          \"rules\": [";
    const std::vector<RuleInfo> &all = rules();
    for (std::size_t i = 0; i < all.size(); ++i) {
        os << (i ? ",\n" : "\n");
        os << "            {\"id\": \"" << jsonEscape(all[i].id)
           << "\", \"shortDescription\": {\"text\": \""
           << jsonEscape(all[i].summary) << "\"}}";
    }
    os << "\n          ]\n";
    os << "        }\n";
    os << "      },\n";
    os << "      \"results\": [";
    for (std::size_t i = 0; i < report.findings.size(); ++i) {
        const Finding &f = report.findings[i];
        os << (i ? ",\n" : "\n");
        os << "        {\"ruleId\": \"" << jsonEscape(f.rule)
           << "\", \"level\": \"error\", \"message\": {\"text\": \""
           << jsonEscape(f.message)
           << "\"}, \"locations\": [{\"physicalLocation\": "
              "{\"artifactLocation\": {\"uri\": \""
           << jsonEscape(f.file)
           << "\"}, \"region\": {\"startLine\": "
           << (f.line == 0 ? 1 : f.line) << "}}}]}";
    }
    os << (report.findings.empty() ? "" : "\n      ") << "]\n";
    os << "    }\n";
    os << "  ]\n";
    os << "}\n";
    return os.str();
}

std::string
render(const Report &report, Format format)
{
    switch (format) {
      case Format::Json:
        return renderJson(report);
      case Format::Sarif:
        return renderSarif(report);
      case Format::Text:
      default:
        return renderText(report);
    }
}

} // namespace lint
} // namespace thermostat
