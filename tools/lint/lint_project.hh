/**
 * @file
 * Cross-TU project passes of thermostat_lint.  Consumes the
 * FileFacts produced (or cache-replayed) by the per-file scanner and
 * evaluates the rules that need a whole-project view:
 *
 *  - subsystem-layering:     #include edges vs the layering DAG
 *  - rng-stream-discipline:  seed derivation, salt uniqueness,
 *                            sharded Rng members
 *  - metric-schema:          duplicate registrations, DESIGN.md
 *                            metric/event catalog drift
 *  - merge-barrier-escape:   lane-held state read outside lane or
 *                            merge-barrier context
 */

#ifndef THERMOSTAT_LINT_PROJECT_HH
#define THERMOSTAT_LINT_PROJECT_HH

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint_rules.hh"
#include "lint_scanner.hh"

namespace thermostat
{
namespace lint
{

/** Metric/event name catalogs extracted from DESIGN.md. */
struct DesignCatalog
{
    bool loaded = false; //!< DESIGN.md with markers was found
    std::set<std::string> metricRoots;
    std::set<std::string> eventKinds;
};

/**
 * Parse the `lint:metric-catalog` / `lint:event-catalog` marker
 * blocks out of @p designPath.  A missing file or missing markers
 * yields an unloaded catalog, which disables the drift checks (the
 * fixtures tree carries its own DESIGN.md).
 */
DesignCatalog loadDesignCatalog(const std::string &designPath);

/** The subsystem layering DAG: subsystem -> allowed include
 * targets (self-edges are implicitly allowed). */
const std::map<std::string, std::set<std::string>> &layeringDag();

/** Run every project rule over @p files and append findings. */
void runProjectRules(const std::vector<FileFacts> &files,
                     const DesignCatalog &catalog,
                     std::vector<Finding> *out);

} // namespace lint
} // namespace thermostat

#endif // THERMOSTAT_LINT_PROJECT_HH
