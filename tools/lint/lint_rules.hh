/**
 * @file
 * Rule registry, findings, and the two-tier suppression machinery
 * (inline `lint:allow(<rule>)` markers and the content-keyed
 * baseline) shared by the per-file scanner and the project passes.
 *
 * Keep rule ids stable: they are referenced by the suppression
 * baseline, inline markers, tests/lint_fixtures, DESIGN.md section 7
 * and the SARIF rule metadata CI uploads.
 */

#ifndef THERMOSTAT_LINT_RULES_HH
#define THERMOSTAT_LINT_RULES_HH

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace thermostat
{
namespace lint
{

/** Path scoping: a rule applies when rel matches a prefix in
 * `include` (empty = everywhere) and no prefix in `exclude`. */
struct RuleScope
{
    std::vector<std::string> include;
    std::vector<std::string> exclude;
};

struct RuleInfo
{
    const char *id;
    const char *summary;
    RuleScope scope;
};

/** The full rule catalog (also what --list-rules prints). */
const std::vector<RuleInfo> &rules();

const RuleInfo *findRule(const std::string &id);

bool ruleApplies(const RuleInfo &rule, const std::string &rel);

struct Finding
{
    std::string file; //!< root-relative path
    std::size_t line = 0;
    std::string rule;
    std::string message;
    std::string snippet; //!< trimmed raw source line
};

/** Stable ordering for report output: file, line, rule. */
bool findingLess(const Finding &a, const Finding &b);

/** Baseline entry key: rule|path|trimmed-line-content.  Content
 * (not line number) keys the entry so unrelated edits don't churn
 * it. */
std::string baselineKey(const std::string &rule,
                        const std::string &file,
                        const std::string &snippet);

struct Baseline
{
    /** entry key -> 1-based line in the baseline file. */
    std::map<std::string, std::size_t> entries;
    std::set<std::string> used;
};

bool loadBaseline(const std::string &path, Baseline *out);

} // namespace lint
} // namespace thermostat

#endif // THERMOSTAT_LINT_RULES_HH
