#include "lint_project.hh"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <regex>
#include <sstream>

#include "lint_source.hh"

namespace thermostat
{
namespace lint
{

namespace
{

std::string
lowered(const std::string &s)
{
    std::string out = s;
    std::transform(out.begin(), out.end(), out.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return out;
}

/** Subsystem directory of a root-relative path, "" when the file is
 * not inside a known src/<subsystem>/ directory. */
std::string
subsystemOf(const std::string &rel)
{
    if (rel.rfind("src/", 0) != 0) {
        return "";
    }
    const std::size_t slash = rel.find('/', 4);
    if (slash == std::string::npos) {
        return ""; // file directly under src/
    }
    const std::string sub = rel.substr(4, slash - 4);
    return layeringDag().count(sub) ? sub : "";
}

/** Subsystem a project include target lands in, "" if unknown. */
std::string
targetSubsystem(const std::string &target)
{
    const std::size_t slash = target.find('/');
    if (slash == std::string::npos) {
        return "";
    }
    const std::string sub = target.substr(0, slash);
    return layeringDag().count(sub) ? sub : "";
}

void
addFinding(const std::string &rule, const std::string &file,
           const FactSite &at, const std::string &message,
           std::vector<Finding> *out)
{
    if (at.allows.count(rule)) {
        return;
    }
    out->push_back({file, at.line, rule, message, at.snippet});
}

// ---------------------------------------------------------------------------
// subsystem-layering
// ---------------------------------------------------------------------------

void
checkLayering(const std::vector<FileFacts> &files,
              std::vector<Finding> *out)
{
    const RuleInfo *rule = findRule("subsystem-layering");
    for (const FileFacts &file : files) {
        if (!ruleApplies(*rule, file.path)) {
            continue;
        }
        const std::string from = subsystemOf(file.path);
        if (from.empty()) {
            continue;
        }
        const std::set<std::string> &allowed =
            layeringDag().at(from);
        for (const IncludeFact &inc : file.includes) {
            const std::string to = targetSubsystem(inc.target);
            if (to.empty() || to == from || allowed.count(to)) {
                continue;
            }
            addFinding(rule->id, file.path, inc.at,
                       "layering violation: " + from + " -> " + to +
                           " is not an allowed DAG edge (" + from +
                           " may include: " +
                           [&allowed] {
                               std::string s;
                               for (const std::string &a : allowed) {
                                   s += s.empty() ? a : ", " + a;
                               }
                               return s.empty() ? std::string("none")
                                                : s;
                           }() +
                           ")",
                       out);
        }
    }
}

// ---------------------------------------------------------------------------
// rng-stream-discipline
// ---------------------------------------------------------------------------

void
checkRngDiscipline(const std::vector<FileFacts> &files,
                   std::vector<Finding> *out)
{
    const RuleInfo *rule = findRule("rng-stream-discipline");

    struct SaltSite
    {
        const FileFacts *file;
        const RngFact *fact;
    };
    std::map<std::uint64_t, std::vector<SaltSite>> saltSites;

    for (const FileFacts &file : files) {
        if (!ruleApplies(*rule, file.path)) {
            continue;
        }
        for (const RngFact &fact : file.rngs) {
            const std::string args = lowered(fact.args);
            const bool derived =
                args.find("seed") != std::string::npos ||
                args.find("rng") != std::string::npos ||
                args.find("fork(") != std::string::npos ||
                args.find("splitmix64") != std::string::npos;
            if (fact.construction && !derived &&
                !fact.at.rngMarked) {
                addFinding(rule->id, file.path, fact.at,
                           "RNG stream not derived from the run "
                           "seed (pass seed/rng/fork()/splitMix64, "
                           "or document with '// rng: <purpose>')",
                           out);
            }
            if (fact.hasSalt) {
                if (!fact.at.rngMarked) {
                    addFinding(rule->id, file.path, fact.at,
                               "seed salt without a "
                               "'// rng: <purpose>' marker naming "
                               "the stream it creates",
                               out);
                }
                saltSites[fact.salt].push_back({&file, &fact});
            }
        }

        // Rng-typed members in the sharded execution set must be
        // lane-indexed or explicitly serial.
        for (const MemberFact &member : file.members) {
            if (!member.rngTyped || member.laneNamed) {
                continue;
            }
            if (lowered(member.classification).find("serial") !=
                std::string::npos) {
                continue;
            }
            addFinding(rule->id, file.path, member.at,
                       "Rng member '" + member.name +
                           "' in a sharded file is neither "
                           "lane-indexed nor marked "
                           "'// shard: serial-only'",
                       out);
        }
    }

    for (const auto &entry : saltSites) {
        // Distinct source locations sharing one salt value collide.
        std::set<std::string> locations;
        for (const SaltSite &site : entry.second) {
            std::ostringstream loc;
            loc << site.file->path << ":" << site.fact->at.line;
            locations.insert(loc.str());
        }
        if (locations.size() < 2) {
            continue;
        }
        std::string all;
        for (const std::string &loc : locations) {
            all += all.empty() ? loc : ", " + loc;
        }
        std::set<std::string> reported;
        for (const SaltSite &site : entry.second) {
            std::ostringstream loc;
            loc << site.file->path << ":" << site.fact->at.line;
            if (!reported.insert(loc.str()).second) {
                continue;
            }
            std::ostringstream value;
            value << std::hex << entry.first;
            addFinding(rule->id, site.file->path, site.fact->at,
                       "seed salt 0x" + value.str() +
                           " is reused by multiple streams (" +
                           all + "); salts must be project-unique",
                       out);
        }
    }
}

// ---------------------------------------------------------------------------
// metric-schema
// ---------------------------------------------------------------------------

bool
inCatalog(const std::string &literal,
          const std::set<std::string> &roots)
{
    for (const std::string &root : roots) {
        if (literal == root ||
            literal.rfind(root + "/", 0) == 0 ||
            literal.rfind(root + ".", 0) == 0) {
            return true;
        }
    }
    return false;
}

void
checkMetricSchema(const std::vector<FileFacts> &files,
                  const DesignCatalog &catalog,
                  std::vector<Finding> *out)
{
    const RuleInfo *rule = findRule("metric-schema");

    struct MetricSite
    {
        const FileFacts *file;
        const MetricFact *fact;
    };
    std::map<std::string, std::vector<MetricSite>> absolute;
    bool haveEnumerators = false;

    for (const FileFacts &file : files) {
        if (!file.eventEnumerators.empty()) {
            haveEnumerators = true;
        }
        if (!ruleApplies(*rule, file.path)) {
            continue;
        }
        for (const MetricFact &fact : file.metrics) {
            if (fact.literal.empty() || fact.literal[0] == '.') {
                continue; // suffix appended to a runtime prefix
            }
            // A bare single-segment literal at a callback site is a
            // leaf composed through a helper (tenantMetricName and
            // friends), not an absolute name; only separators or an
            // explicit registerMetrics prefix make it schema-level.
            const bool absoluteName =
                fact.literal.find('/') != std::string::npos ||
                fact.literal.find('.') != std::string::npos;
            if (!absoluteName && !fact.prefixArg) {
                continue;
            }
            if (!fact.prefixArg) {
                absolute[fact.literal].push_back({&file, &fact});
            }
            if (catalog.loaded &&
                !inCatalog(fact.literal, catalog.metricRoots)) {
                addFinding(rule->id, file.path, fact.at,
                           "metric \"" + fact.literal +
                               "\" is outside the DESIGN.md metric "
                               "catalog (add a catalog row or fix "
                               "the name)",
                           out);
            }
        }
    }

    for (const auto &entry : absolute) {
        std::set<std::string> locations;
        for (const MetricSite &site : entry.second) {
            std::ostringstream loc;
            loc << site.file->path << ":" << site.fact->at.line;
            locations.insert(loc.str());
        }
        if (locations.size() < 2) {
            continue;
        }
        std::string all;
        for (const std::string &loc : locations) {
            all += all.empty() ? loc : ", " + loc;
        }
        std::set<std::string> reported;
        for (const MetricSite &site : entry.second) {
            std::ostringstream loc;
            loc << site.file->path << ":" << site.fact->at.line;
            if (!reported.insert(loc.str()).second) {
                continue;
            }
            addFinding(rule->id, site.file->path, site.fact->at,
                       "metric \"" + entry.first +
                           "\" registered at multiple sites (" +
                           all + ")",
                       out);
        }
    }

    if (!catalog.loaded) {
        return;
    }
    if (haveEnumerators) {
        // Authoritative mode: audit the enum definition itself.
        for (const FileFacts &file : files) {
            for (std::size_t i = 0;
                 i < file.eventEnumerators.size(); ++i) {
                const std::string &kind =
                    file.eventEnumerators[i];
                if (catalog.eventKinds.count(kind)) {
                    continue;
                }
                FactSite at;
                at.line = 1;
                at.snippet = "enum class EventKind { ... " + kind +
                             " ... }";
                addFinding(rule->id, file.path, at,
                           "EventKind::" + kind +
                               " is missing from the DESIGN.md "
                               "event catalog",
                           out);
            }
        }
    } else {
        // Fixture mode: no enum in the scanned set, audit uses.
        for (const FileFacts &file : files) {
            if (!ruleApplies(*rule, file.path)) {
                continue;
            }
            for (const EventUseFact &use : file.events) {
                if (catalog.eventKinds.count(use.kind)) {
                    continue;
                }
                addFinding(rule->id, file.path, use.at,
                           "EventKind::" + use.kind +
                               " is missing from the DESIGN.md "
                               "event catalog",
                           out);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// merge-barrier-escape
// ---------------------------------------------------------------------------

void
checkMergeBarrier(const std::vector<FileFacts> &files,
                  std::vector<Finding> *out)
{
    const RuleInfo *rule = findRule("merge-barrier-escape");

    // Lane-held members, collected from every sharded header in the
    // scanned set: anything classified lane-local or merge-barrier
    // is only coherent inside a lane or after syncDeviceState().
    std::set<std::string> laneHeld;
    for (const FileFacts &file : files) {
        for (const MemberFact &member : file.members) {
            const std::string cls = lowered(member.classification);
            if (cls.find("lane-local") != std::string::npos ||
                cls.find("merge-barrier") != std::string::npos) {
                laneHeld.insert(member.name);
            }
        }
    }

    for (const FileFacts &file : files) {
        if (!ruleApplies(*rule, file.path)) {
            continue;
        }
        std::set<std::string> reported; // method|token
        for (const TokenRefFact &ref : file.tokenRefs) {
            const bool held =
                laneHeld.count(ref.token) ||
                lowered(ref.token).find("lane") !=
                    std::string::npos;
            if (!held) {
                continue;
            }
            const MethodFact *method = nullptr;
            for (const MethodFact &m : file.methods) {
                if (ref.at.line >= m.sigLine &&
                    ref.at.line <= m.bodyEnd) {
                    method = &m;
                    break;
                }
            }
            if (!method || method->synced || method->laneScoped ||
                method->blessed) {
                continue;
            }
            if (ref.at.shardMarked ||
                ref.at.allows.count(rule->id)) {
                continue;
            }
            if (!reported.insert(method->name + "|" + ref.token)
                     .second) {
                continue;
            }
            addFinding(rule->id, file.path, ref.at,
                       "lane-held state '" + ref.token +
                           "' read in non-lane method '" +
                           method->name +
                           "()' without syncDeviceState() or a "
                           "'// shard:' classification",
                       out);
        }
    }
}

} // namespace

DesignCatalog
loadDesignCatalog(const std::string &designPath)
{
    DesignCatalog catalog;
    std::ifstream in(designPath);
    if (!in) {
        return catalog;
    }
    static const std::regex kTick(R"(`([A-Za-z][\w./]*)`)");
    std::string line;
    enum class Block { None, Metric, Event } block = Block::None;
    bool sawMarker = false;
    while (std::getline(in, line)) {
        if (line.find("<!-- lint:metric-catalog -->") !=
            std::string::npos) {
            block = Block::Metric;
            sawMarker = true;
            continue;
        }
        if (line.find("<!-- lint:event-catalog -->") !=
            std::string::npos) {
            block = Block::Event;
            sawMarker = true;
            continue;
        }
        if (line.find("<!-- /lint:") != std::string::npos) {
            block = Block::None;
            continue;
        }
        if (block == Block::None) {
            continue;
        }
        auto begin =
            std::sregex_iterator(line.begin(), line.end(), kTick);
        for (auto it = begin; it != std::sregex_iterator(); ++it) {
            if (block == Block::Metric) {
                catalog.metricRoots.insert((*it)[1]);
            } else {
                catalog.eventKinds.insert((*it)[1]);
            }
        }
    }
    catalog.loaded = sawMarker;
    return catalog;
}

const std::map<std::string, std::set<std::string>> &
layeringDag()
{
    // Allowed #include edges between src/ subsystems.  Mirrors the
    // DAG table in DESIGN.md section 7 -- update both together.
    static const std::map<std::string, std::set<std::string>> kDag =
        {
            {"common", {}},
            {"obs", {"common"}},
            {"fault", {"common", "obs"}},
            {"mem", {"common", "obs", "fault"}},
            {"vm", {"common", "obs", "mem"}},
            {"tlb", {"common", "obs"}},
            {"cache", {"common", "obs"}},
            {"sys",
             {"common", "obs", "fault", "mem", "vm", "tlb",
              "cache"}},
            {"workload", {"common", "vm"}},
            {"core", {"common", "obs", "sys", "vm"}},
            {"migrate",
             {"common", "obs", "fault", "mem", "sys", "vm"}},
            {"policy",
             {"common", "obs", "core", "migrate", "sys", "vm",
              "workload"}},
            {"sim",
             {"common", "obs", "fault", "mem", "vm", "tlb", "cache",
              "sys", "workload", "core", "migrate", "policy"}},
            {"host",
             {"common", "obs", "fault", "mem", "vm", "tlb", "cache",
              "sys", "workload", "core", "migrate", "policy",
              "sim"}},
        };
    return kDag;
}

void
runProjectRules(const std::vector<FileFacts> &files,
                const DesignCatalog &catalog,
                std::vector<Finding> *out)
{
    checkLayering(files, out);
    checkRngDiscipline(files, out);
    checkMetricSchema(files, catalog, out);
    checkMergeBarrier(files, out);
}

} // namespace lint
} // namespace thermostat
