/**
 * @file
 * Parallel benchmark driver: schedules whole benchmark binaries
 * across cores, replacing the serial loop in run_benches.sh.
 *
 * Each benchmark runs as its own child process with stdout+stderr
 * captured to a per-benchmark log; once everything has finished the
 * logs are replayed in the fixed benchmark order, so the combined
 * output is byte-stable regardless of how the processes interleaved.
 * Worker count honors THERMOSTAT_JOBS (or --jobs N).
 *
 * Usage:
 *   run_all [--quick] [--jobs N] [--bench-dir DIR] [--log-dir DIR]
 *           [--list] [name...]
 *
 * With no names, the full suite runs: headline figures/tables at
 * full durations plus the ablation/microbench set in quick mode
 * (the split run_benches.sh has always used).  --quick forces quick
 * mode for everything.  Exit status is the number of failed
 * benchmarks (0 = all passed).
 */

#include <sys/stat.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/thread_pool.hh"

namespace
{

struct BenchJob
{
    std::string name;
    bool quick = false;
    int exitStatus = -1;
};

/** Headline experiments: full durations by default. */
const char *const kFullBenches[] = {
    "fig03_slowmem_rate", "fig05_cassandra",      "fig06_mysql",
    "fig07_aerospike",    "fig08_redis",          "fig09_analytics",
    "fig10_websearch",    "fig11_slowdown_sweep", "tab01_thp_gain",
    "tab02_footprints",   "tab03_migration_bw",   "tab04_cost_savings",
    "fig01_idle_fraction", "fig02_accessbit_scatter",
};

/**
 * Ablations, microbenches, and the consolidation sweep: always
 * quick in the default suite (the full 32-tenant consolidation
 * grid is a deliberate, standalone run).
 */
const char *const kQuickBenches[] = {
    "abl_sampling_overhead", "abl_poison_budget",
    "abl_sample_fraction",   "abl_correction",
    "abl_slow_emu_mode",     "abl_hw_counting",
    "abl_spread_pages",      "abl_wear_leveling",
    "micro_components",      "policy_compare",
    "datacenter_consolidation",
};

std::string
shellQuote(const std::string &s)
{
    std::string quoted = "'";
    for (const char c : s) {
        if (c == '\'') {
            quoted += "'\\''";
        } else {
            quoted += c;
        }
    }
    quoted += "'";
    return quoted;
}

bool
dumpFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
        return false;
    }
    char buf[1 << 16];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
        std::fwrite(buf, 1, n, stdout);
    }
    std::fclose(f);
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    bool all_quick = false;
    bool list_only = false;
    unsigned jobs = 0;
    std::string bench_dir = "build/bench";
    std::string log_dir = "bench_logs";
    std::vector<std::string> names;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            all_quick = true;
        } else if (arg == "--list") {
            list_only = true;
        } else if (arg == "--jobs" && i + 1 < argc) {
            jobs = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--bench-dir" && i + 1 < argc) {
            bench_dir = argv[++i];
        } else if (arg == "--log-dir" && i + 1 < argc) {
            log_dir = argv[++i];
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: run_all [--quick] [--jobs N] "
                "[--bench-dir DIR] [--log-dir DIR] [--list] "
                "[name...]\n");
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "run_all: unknown option %s\n",
                         arg.c_str());
            return 2;
        } else {
            names.push_back(arg);
        }
    }

    std::vector<BenchJob> run;
    if (names.empty()) {
        for (const char *name : kFullBenches) {
            run.push_back({name, all_quick, -1});
        }
        for (const char *name : kQuickBenches) {
            run.push_back({name, true, -1});
        }
    } else {
        for (const std::string &name : names) {
            run.push_back({name, all_quick, -1});
        }
    }

    if (list_only) {
        for (const BenchJob &job : run) {
            std::printf("%s%s\n", job.name.c_str(),
                        job.quick ? " (quick)" : "");
        }
        return 0;
    }

    if (mkdir(log_dir.c_str(), 0755) != 0 && errno != EEXIST) {
        std::fprintf(stderr, "run_all: cannot create %s\n",
                     log_dir.c_str());
        return 2;
    }

    thermostat::ThreadPool pool(jobs);
    std::printf("run_all: %zu benchmarks on %u workers\n",
                run.size(), pool.threadCount());
    std::fflush(stdout);

    for (BenchJob &job : run) {
        pool.submit([&job, &bench_dir, &log_dir] {
            const std::string log =
                log_dir + "/" + job.name + ".log";
            const std::string cmd =
                shellQuote(bench_dir + "/" + job.name) +
                (job.quick ? " --quick" : "") + " > " +
                shellQuote(log) + " 2>&1";
            job.exitStatus = std::system(cmd.c_str());
        });
    }
    pool.wait();

    // Replay logs in suite order so the combined output is stable.
    int failures = 0;
    for (const BenchJob &job : run) {
        std::printf("===== %s =====\n", job.name.c_str());
        std::fflush(stdout);
        if (!dumpFile(log_dir + "/" + job.name + ".log")) {
            std::printf("(no output captured)\n");
        }
        if (job.exitStatus != 0) {
            ++failures;
            std::printf("*** %s FAILED (status %d)\n",
                        job.name.c_str(), job.exitStatus);
        }
        std::fflush(stdout);
    }
    std::printf("\nrun_all: %d of %zu benchmarks failed\n", failures,
                run.size());
    return failures;
}
