/**
 * @file
 * thermostat_sim: the command-line driver for single experiments.
 *
 *   thermostat_sim --workload redis --target 3 --duration 600 \
 *                  [--warmup 300] [--seed 42] [--mode emu|device] \
 *                  [--counting badgertrap|cmbit|pebs] \
 *                  [--thp on|off] [--spread] [--no-thermostat] \
 *                  [--csv DIR] [--metrics-out FILE] \
 *                  [--metrics-format json|prom] \
 *                  [--trace-out FILE] [--trace-events MASK] \
 *                  [--flight-out FILE] [--profile-out FILE] \
 *                  [--sample-period N] [--sampler-feedback] \
 *                  [--fault-plan SPEC] \
 *                  [--log-level quiet|normal|verbose]
 *
 * Prints the run summary and, with --csv, writes the plot series
 * (footprint.csv, slow_rate.csv, device_rate.csv, summary.csv).
 * --metrics-out dumps the metric registry (hierarchical JSON, or
 * Prometheus text exposition with --metrics-format prom);
 * --trace-out exports the page-lifecycle event trace as Chrome
 * trace-event JSON (open in Perfetto / chrome://tracing), or as
 * JSONL when FILE ends in .jsonl.  --flight-out writes the
 * per-epoch flight-recorder ring (JSONL, or CSV when FILE ends in
 * .csv); --profile-out writes the host-time phase profile tree.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "host/datacenter_host.hh"
#include "policy/policy_factory.hh"
#include "sim/app_tuning.hh"
#include "sim/csv_export.hh"
#include "sim/reporter.hh"
#include "sim/simulation.hh"
#include "workload/cloud_apps.hh"

using namespace thermostat;

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --workload NAME [options]\n"
        "  --workload NAME    aerospike | cassandra | mysql-tpcc |"
        " redis |\n"
        "                     in-memory-analytics | web-search |"
        " redis-bursty\n"
        "  --policy NAME      tiering engine (default thermostat;\n"
        "                     see --list-policies)\n"
        "  --cold-fraction F  slow-memory share for the comparison\n"
        "                     engines (default 0.5)\n"
        "  --policy-param K=V tune an engine knob (repeatable; see\n"
        "                     --policy-param help for the keys)\n"
        "  --list-policies    print registered policies and exit\n"
        "  --list-workloads   print known workloads and exit\n"
        "  --target PCT       tolerable slowdown %% (default 3)\n"
        "  --duration SEC     measured seconds (default: natural)\n"
        "  --warmup SEC       warmup seconds (default 0)\n"
        "  --seed N           RNG seed (default 42)\n"
        "  --shards N         epoch-pipeline worker threads (0 =\n"
        "                     auto, 1 = serial; results are\n"
        "                     identical for every value)\n"
        "  --mode emu|device  slow-memory model (default emu)\n"
        "  --counting M       badgertrap | cmbit | pebs\n"
        "  --thp on|off       transparent huge pages (default on)\n"
        "  --spread           enable Sec 6 page spreading\n"
        "  --khugepaged       run the khugepaged recovery daemon\n"
        "  --no-thermostat    baseline run, engine disabled\n"
        "  --csv DIR          write plot series into DIR\n"
        "  --metrics-out FILE write metric registry dump\n"
        "  --metrics-format F json (default) | prom (Prometheus\n"
        "                     text exposition)\n"
        "  --trace-out FILE   write event trace (Chrome JSON, or\n"
        "                     JSONL if FILE ends in .jsonl)\n"
        "  --flight-out FILE  write per-epoch flight recorder\n"
        "                     (JSONL, or CSV if FILE ends in .csv)\n"
        "  --profile-out FILE write host-time phase profile (JSON)\n"
        "  --sample-period N  telemetry sampling period (mean\n"
        "                     accesses per sample; 0 disables;\n"
        "                     default 64)\n"
        "  --sampler-feedback route sampled accesses into the\n"
        "                     policy's access-feedback hook\n"
        "  --trace-events M   comma list of sample,poison,classify,\n"
        "                     migrate,correct,fault,phase | all |"
        " none\n"
        "  --fault-plan SPEC  deterministic fault injection, e.g.\n"
        "                     \"migration-copy:p=0.05;"
        "wear-retire:at=60,count=4\"\n"
        "                     (grammar: src/fault/fault_injector.hh)\n"
        "  --log-level L      quiet | normal | verbose\n"
        "multi-tenant host mode (instead of --workload):\n"
        "  --tenants FILE     run a consolidated host from a tenant\n"
        "                     spec file (one tenant per line, e.g.\n"
        "                     \"id=web workload=web-search"
        " policy=thermostat\";\n"
        "                     grammar: src/host/tenant_spec.hh)\n"
        "  --host-bw-mbps F   shared migration bandwidth cap,\n"
        "                     MB/s (decimal; 0 = unlimited)\n"
        "  --host-fast-cap-mb N    host-wide fast-tier cap, MiB\n"
        "  --tenant-fast-cap-mb N  per-tenant fast-tier cap, MiB\n"
        "  (host mode honours --target --duration --warmup --seed\n"
        "   --shards --mode --counting --thp --metrics-out\n"
        "   --flight-out; per-tenant policy/target/fault-plan come\n"
        "   from the spec file)\n",
        argv0);
    std::exit(2);
}

const char *
nextArg(int argc, char **argv, int &i)
{
    if (i + 1 >= argc) {
        usage(argv[0]);
    }
    return argv[++i];
}

void
printList(const std::vector<std::string> &names)
{
    for (const std::string &name : names) {
        std::printf("%s\n", name.c_str());
    }
}

/** --list-policies: name plus its registry one-liner. */
void
printPolicyListings()
{
    std::size_t width = 0;
    for (const PolicyListing &l : PolicyFactory::listings()) {
        width = std::max(width, l.name.size());
    }
    for (const PolicyListing &l : PolicyFactory::listings()) {
        std::printf("%-*s  %s\n", static_cast<int>(width),
                    l.name.c_str(), l.description.c_str());
    }
}

/**
 * --policy-param KEY=VALUE.  Unknown keys and out-of-range values
 * are rejected with the same listing-style diagnostic the unknown
 * --policy path uses, so typos fail loudly instead of silently
 * running the defaults.
 */
[[noreturn]] void
badPolicyParam(const std::string &spec, const std::string &error)
{
    std::fprintf(stderr, "bad --policy-param '%s': %s; known keys:\n",
                 spec.c_str(), error.c_str());
    for (const PolicyParamKey &key : policyParamKeys()) {
        std::fprintf(stderr, "  %-24s %s\n", key.key, key.help);
    }
    std::exit(2);
}

void
applyPolicyParam(PolicyParams &params, const std::string &spec)
{
    const std::size_t eq = spec.find('=');
    if (eq == std::string::npos || eq == 0) {
        badPolicyParam(spec, "expected KEY=VALUE");
    }
    std::string error;
    if (!setPolicyParam(params, spec.substr(0, eq),
                        spec.substr(eq + 1), &error)) {
        badPolicyParam(spec, error);
    }
}

/** All workload names the CLI accepts, in listing order. */
std::vector<std::string>
cliWorkloadNames()
{
    std::vector<std::string> names = allWorkloadNames();
    names.push_back("redis-bursty");
    return names;
}

[[noreturn]] void
unknownName(const char *what, const std::string &name,
            const std::vector<std::string> &known)
{
    std::fprintf(stderr, "unknown %s '%s'; known:\n", what,
                 name.c_str());
    for (const std::string &k : known) {
        std::fprintf(stderr, "  %s\n", k.c_str());
    }
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload;
    std::string csv_dir;
    SimConfig config;
    double target = 3.0;
    long duration_sec = 0;
    long warmup_sec = 0;
    bool spread = false;
    bool enabled = true;
    std::string mode = "emu";
    std::string counting = "badgertrap";
    std::string thp = "on";
    std::string metrics_out;
    std::string metrics_format = "json";
    std::string trace_out;
    std::string flight_out;
    std::string profile_out;
    std::string tenants_file;
    double host_bw_mbps = 0.0;
    long host_fast_cap_mb = 0;
    long tenant_fast_cap_mb = 0;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (!std::strcmp(arg, "--workload")) {
            workload = nextArg(argc, argv, i);
        } else if (!std::strcmp(arg, "--policy")) {
            config.policy = nextArg(argc, argv, i);
        } else if (!std::strcmp(arg, "--cold-fraction")) {
            config.policyParams.coldFraction =
                std::atof(nextArg(argc, argv, i));
        } else if (!std::strcmp(arg, "--policy-param")) {
            applyPolicyParam(config.policyParams,
                             nextArg(argc, argv, i));
        } else if (!std::strcmp(arg, "--list-policies")) {
            printPolicyListings();
            return 0;
        } else if (!std::strcmp(arg, "--list-workloads")) {
            printList(cliWorkloadNames());
            return 0;
        } else if (!std::strcmp(arg, "--target")) {
            target = std::atof(nextArg(argc, argv, i));
        } else if (!std::strcmp(arg, "--duration")) {
            duration_sec = std::atol(nextArg(argc, argv, i));
        } else if (!std::strcmp(arg, "--warmup")) {
            warmup_sec = std::atol(nextArg(argc, argv, i));
        } else if (!std::strcmp(arg, "--seed")) {
            config.seed = static_cast<std::uint64_t>(
                std::atoll(nextArg(argc, argv, i)));
        } else if (!std::strcmp(arg, "--shards")) {
            config.shards = static_cast<unsigned>(
                std::atoi(nextArg(argc, argv, i)));
        } else if (!std::strcmp(arg, "--mode")) {
            mode = nextArg(argc, argv, i);
        } else if (!std::strcmp(arg, "--counting")) {
            counting = nextArg(argc, argv, i);
        } else if (!std::strcmp(arg, "--thp")) {
            thp = nextArg(argc, argv, i);
        } else if (!std::strcmp(arg, "--spread")) {
            spread = true;
        } else if (!std::strcmp(arg, "--khugepaged")) {
            config.khugepagedEnabled = true;
        } else if (!std::strcmp(arg, "--no-thermostat")) {
            enabled = false;
        } else if (!std::strcmp(arg, "--csv")) {
            csv_dir = nextArg(argc, argv, i);
        } else if (!std::strcmp(arg, "--metrics-out")) {
            metrics_out = nextArg(argc, argv, i);
        } else if (!std::strcmp(arg, "--metrics-format")) {
            metrics_format = nextArg(argc, argv, i);
            if (metrics_format != "json" &&
                metrics_format != "prom") {
                usage(argv[0]);
            }
        } else if (!std::strcmp(arg, "--trace-out")) {
            trace_out = nextArg(argc, argv, i);
        } else if (!std::strcmp(arg, "--flight-out")) {
            flight_out = nextArg(argc, argv, i);
        } else if (!std::strcmp(arg, "--profile-out")) {
            profile_out = nextArg(argc, argv, i);
        } else if (!std::strcmp(arg, "--sample-period")) {
            config.sampler.period = static_cast<Count>(
                std::atoll(nextArg(argc, argv, i)));
        } else if (!std::strcmp(arg, "--sampler-feedback")) {
            config.samplerFeedback = true;
        } else if (!std::strcmp(arg, "--fault-plan")) {
            std::string error;
            if (!FaultPlan::parse(nextArg(argc, argv, i),
                                  config.faultPlan, error)) {
                std::fprintf(stderr, "bad --fault-plan: %s\n",
                             error.c_str());
                usage(argv[0]);
            }
        } else if (!std::strcmp(arg, "--trace-events")) {
            if (!parseEventMask(nextArg(argc, argv, i),
                                &config.traceMask)) {
                usage(argv[0]);
            }
        } else if (!std::strcmp(arg, "--tenants")) {
            tenants_file = nextArg(argc, argv, i);
        } else if (!std::strcmp(arg, "--host-bw-mbps")) {
            host_bw_mbps = std::atof(nextArg(argc, argv, i));
        } else if (!std::strcmp(arg, "--host-fast-cap-mb")) {
            host_fast_cap_mb = std::atol(nextArg(argc, argv, i));
        } else if (!std::strcmp(arg, "--tenant-fast-cap-mb")) {
            tenant_fast_cap_mb = std::atol(nextArg(argc, argv, i));
        } else if (!std::strcmp(arg, "--log-level")) {
            LogLevel level;
            if (!parseLogLevel(nextArg(argc, argv, i), &level)) {
                usage(argv[0]);
            }
            setLogLevel(level);
        } else {
            usage(argv[0]);
        }
    }
    if (tenants_file.empty() == workload.empty()) {
        usage(argv[0]); // exactly one of --workload / --tenants
    }

    config.params.tolerableSlowdownPct = target;
    config.params.spreadHugePages = spread;
    config.thermostatEnabled = enabled;
    if (duration_sec > 0) {
        config.duration = static_cast<Ns>(duration_sec) * kNsPerSec;
    }
    config.warmup = static_cast<Ns>(warmup_sec) * kNsPerSec;

    // Mode switches layered onto a (possibly workload-tuned)
    // machine config; in host mode they land on the base machine
    // and the host re-applies them after per-tenant tuning.
    const auto apply_machine_modes = [&](MachineConfig &machine) {
        if (mode == "device") {
            machine.slowMode = SlowEmuMode::Device;
            machine.trap.faultLatency = 300;
        } else if (mode != "emu") {
            usage(argv[0]);
        }
        if (counting == "cmbit") {
            machine.countingMode = CountingMode::CmBit;
        } else if (counting == "pebs") {
            machine.countingMode = CountingMode::Pebs;
        } else if (counting != "badgertrap") {
            usage(argv[0]);
        }
        if (thp == "off") {
            machine.thpEnabled = false;
        } else if (thp != "on") {
            usage(argv[0]);
        }
    };

    if (!tenants_file.empty()) {
        std::vector<TenantSpec> parsed;
        std::vector<TenantSpec> specs;
        std::string error;
        if (!parseTenantSpecFile(tenants_file, &parsed, &error) ||
            !expandTenantSpecs(parsed, &specs, &error)) {
            std::fprintf(stderr, "--tenants: %s\n", error.c_str());
            return 2;
        }
        apply_machine_modes(config.machine);

        HostConfig hconfig;
        hconfig.base = config;
        hconfig.arbiter.epoch = config.epoch;
        hconfig.arbiter.migrationBwBytesPerSec =
            host_bw_mbps * 1.0e6;
        hconfig.arbiter.hostFastCapBytes =
            static_cast<std::uint64_t>(host_fast_cap_mb) << 20;
        hconfig.arbiter.tenantFastCapBytes =
            static_cast<std::uint64_t>(tenant_fast_cap_mb) << 20;

        DatacenterHost host(specs, hconfig);
        const HostResult hr = host.run();

        TablePrinter table({"tenant", "workload", "policy",
                            "slowdown", "avg", "max", "slo viol",
                            "fast", "denied"});
        for (const TenantOutcome &t : hr.tenants) {
            table.addRow({t.id, t.spec.workload, t.spec.policy,
                          formatPct(t.result.slowdown, 2),
                          formatPct(t.avgEpochSlowdown, 2),
                          formatPct(t.maxEpochSlowdown, 2),
                          std::to_string(t.sloViolations),
                          formatBytes(t.fastBytes),
                          formatBytes(t.bytesDenied)});
        }
        table.print();
        std::printf("host epochs %llu, denials %llu, "
                    "invariant violations %llu, "
                    "isolation violations %llu\n",
                    static_cast<unsigned long long>(hr.hostEpochs),
                    static_cast<unsigned long long>(
                        hr.arbiterDenials),
                    static_cast<unsigned long long>(
                        hr.invariantViolations),
                    static_cast<unsigned long long>(
                        hr.isolationViolations));

        if (!metrics_out.empty()) {
            const std::string text =
                metrics_format == "prom"
                    ? host.metrics().dumpPrometheus()
                    : host.metrics().dumpJson();
            if (!EventTracer::writeFile(metrics_out, text)) {
                return 1;
            }
        }
        if (!flight_out.empty()) {
            const bool csv =
                flight_out.size() >= 4 &&
                flight_out.compare(flight_out.size() - 4, 4,
                                   ".csv") == 0;
            const std::string text =
                csv ? host.flightRecorder().toCsv()
                    : host.flightRecorder().toJsonl();
            if (!EventTracer::writeFile(flight_out, text)) {
                return 1;
            }
        }
        return hr.invariantViolations == 0 &&
                       hr.isolationViolations == 0
                   ? 0
                   : 1;
    }

    if (!isWorkloadName(workload)) {
        unknownName("workload", workload, cliWorkloadNames());
    }
    if (!PolicyFactory::known(config.policy)) {
        unknownName("policy", config.policy,
                    PolicyFactory::names());
    }

    const bool bursty = workload == "redis-bursty";
    const std::string tuned_name = bursty ? "redis" : workload;
    config.machine = tunedMachineConfig(tuned_name);
    apply_machine_modes(config.machine);

    auto w = bursty ? makeRedisBursty(config.seed)
                    : makeWorkload(workload, config.seed);
    Simulation sim(std::move(w), config);
    const SimResult r = sim.run();

    TablePrinter table({"metric", "value"});
    table.addRow({"workload", r.workload});
    table.addRow({"policy", r.policyName});
    table.addRow({"measured seconds",
                  formatNumber(static_cast<double>(r.duration) /
                                   kNsPerSec,
                               0)});
    table.addRow({"RSS", formatBytes(r.finalRssBytes)});
    table.addRow({"cold fraction",
                  formatPct(r.finalColdFraction)});
    table.addRow({"slowdown", formatPct(r.slowdown, 2)});
    table.addRow({"target", formatPct(target / 100.0, 1)});
    table.addRow({"monitoring overhead",
                  formatPct(r.monitorOverheadFraction, 2)});
    table.addRow({"demotion bandwidth",
                  formatRateMBps(r.demotionBytesPerSec)});
    table.addRow({"promotion bandwidth",
                  formatRateMBps(r.promotionBytesPerSec)});
    table.addRow({"promotions",
                  std::to_string(r.engine.promotions)});
    table.addRow({"pages spread",
                  std::to_string(r.engine.pagesSpread)});
    table.addRow({"audit violations",
                  std::to_string(r.auditViolations)});
    if (sim.faultInjector() != nullptr) {
        table.addRow({"migration retries",
                      std::to_string(r.migration.retries)});
        table.addRow({"copy aborts",
                      std::to_string(r.migration.copyAborts)});
        table.addRow({"pages quarantined",
                      std::to_string(r.engine.quarantined)});
        table.addRow({"throttled periods",
                      std::to_string(r.engine.throttledPeriods)});
        table.addRow({"evacuation promotions",
                      std::to_string(r.engine.evacuationPromotions)});
        table.addRow(
            {"retired slow frames",
             std::to_string(sim.machine()
                                .memory()
                                .slow()
                                .allocator()
                                .retiredFrames())});
    }
    table.print();

    if (!metrics_out.empty()) {
        const std::string text =
            metrics_format == "prom"
                ? sim.metrics().dumpPrometheus()
                : sim.metricsJson();
        if (!EventTracer::writeFile(metrics_out, text)) {
            return 1;
        }
    }
    if (!flight_out.empty()) {
        const bool csv =
            flight_out.size() >= 4 &&
            flight_out.compare(flight_out.size() - 4, 4, ".csv") == 0;
        const std::string text = csv
                                     ? sim.flightRecorder().toCsv()
                                     : sim.flightRecorder().toJsonl();
        if (!EventTracer::writeFile(flight_out, text)) {
            return 1;
        }
    }
    if (!profile_out.empty() &&
        !EventTracer::writeFile(profile_out,
                                sim.profiler().toJson())) {
        return 1;
    }
    if (!trace_out.empty()) {
        const bool jsonl =
            trace_out.size() >= 6 &&
            trace_out.compare(trace_out.size() - 6, 6, ".jsonl") == 0;
        const std::string text = jsonl ? sim.tracer().toJsonl()
                                       : sim.tracer().toChromeTrace();
        if (!EventTracer::writeFile(trace_out, text)) {
            return 1;
        }
    }

    if (!csv_dir.empty()) {
        if (writeSimResultCsv(r, csv_dir)) {
            std::printf("\nseries written to %s/\n",
                        csv_dir.c_str());
        } else {
            return 1;
        }
    }
    return 0;
}
