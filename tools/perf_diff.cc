/**
 * @file
 * perf_diff: the perf-regression gate.
 *
 *   perf_diff --baseline BENCH_hotpath.json --fresh fresh.json \
 *             [--threshold PCT] [--threshold-for NAME=PCT]... \
 *             [--metric KEY] [--direction higher|lower] \
 *             [--json FILE]
 *
 * Both files use the bench_hotpath schema: {"scenarios": [{"name":
 * ..., "accesses_per_sec": ...}, ...]}.  Scenarios are matched by
 * name; for each pair the relative delta of the chosen metric is
 * checked against the threshold (per-scenario overrides win over the
 * global one).  With --direction higher (the default) a drop beyond
 * the threshold is a regression and a rise beyond it an improvement;
 * --direction lower inverts that (for latency-style metrics).
 *
 * A scenario present in the baseline but missing from the fresh run
 * is a regression (a silently dropped benchmark must not pass the
 * gate); a scenario only in the fresh run is reported but does not
 * affect the verdict.
 *
 * Exit status: 0 = pass (or improvement), 1 = regression,
 * 2 = usage / unreadable / malformed input.  --json additionally
 * writes a machine-readable verdict for CI annotation.
 *
 * --update-baseline prints the same delta table, then rewrites the
 * baseline file with the fresh run's bytes and exits 0: the
 * intended-change workflow after landing a performance patch
 * (run_benches.sh --update-baseline wires it up).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hh"

using namespace thermostat;

namespace
{

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: perf_diff --baseline FILE --fresh FILE [options]\n"
        "  --threshold PCT      global tolerance, percent"
        " (default 10)\n"
        "  --threshold-for N=P  per-scenario tolerance override\n"
        "  --metric KEY         scenario metric key (default"
        " accesses_per_sec)\n"
        "  --direction D        higher (default) | lower ="
        " better\n"
        "  --json FILE          write machine-readable verdict\n"
        "  --update-baseline    print the delta table, then rewrite\n"
        "                       the baseline file with the fresh\n"
        "                       run and exit 0\n");
    std::exit(2);
}

const char *
nextArg(int argc, char **argv, int &i)
{
    if (i + 1 >= argc) {
        usage();
    }
    return argv[++i];
}

/** Read an entire file; exit 2 when unreadable. */
std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "perf_diff: cannot read '%s'\n",
                     path.c_str());
        std::exit(2);
    }
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** Scenario name -> metric value, in file order. */
struct ScenarioList
{
    std::vector<std::string> order;
    std::map<std::string, double> value;
};

ScenarioList
loadScenarios(const std::string &path, const std::string &metric)
{
    std::string error;
    JsonValue doc;
    if (!parseJson(readFile(path), &doc, &error)) {
        std::fprintf(stderr, "perf_diff: %s: %s\n", path.c_str(),
                     error.c_str());
        std::exit(2);
    }
    if (!doc.hasMember("scenarios")) {
        std::fprintf(stderr,
                     "perf_diff: %s: no \"scenarios\" array\n",
                     path.c_str());
        std::exit(2);
    }
    ScenarioList out;
    for (const JsonValue &s : doc.member("scenarios").elements()) {
        const std::string name = s.member("name").asString();
        if (name.empty() || !s.hasMember(metric)) {
            std::fprintf(stderr,
                         "perf_diff: %s: scenario without name or"
                         " '%s'\n",
                         path.c_str(), metric.c_str());
            std::exit(2);
        }
        if (out.value.count(name) == 0) {
            out.order.push_back(name);
        }
        out.value[name] = s.member(metric).asNumber();
    }
    if (out.order.empty()) {
        std::fprintf(stderr, "perf_diff: %s: empty scenario list\n",
                     path.c_str());
        std::exit(2);
    }
    return out;
}

struct Row
{
    std::string name;
    double baseline = 0.0;
    double fresh = 0.0;
    double deltaPct = 0.0;
    double thresholdPct = 0.0;
    std::string verdict; // pass | improve | regress | missing | new
};

} // namespace

int
main(int argc, char **argv)
{
    std::string baseline_path;
    std::string fresh_path;
    std::string json_out;
    std::string metric = "accesses_per_sec";
    double threshold = 10.0;
    bool higher_is_better = true;
    bool update_baseline = false;
    std::map<std::string, double> overrides;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (!std::strcmp(arg, "--baseline")) {
            baseline_path = nextArg(argc, argv, i);
        } else if (!std::strcmp(arg, "--fresh")) {
            fresh_path = nextArg(argc, argv, i);
        } else if (!std::strcmp(arg, "--threshold")) {
            threshold = std::atof(nextArg(argc, argv, i));
        } else if (!std::strcmp(arg, "--threshold-for")) {
            const std::string spec = nextArg(argc, argv, i);
            const std::size_t eq = spec.find('=');
            if (eq == std::string::npos || eq == 0) {
                usage();
            }
            overrides[spec.substr(0, eq)] =
                std::atof(spec.c_str() + eq + 1);
        } else if (!std::strcmp(arg, "--metric")) {
            metric = nextArg(argc, argv, i);
        } else if (!std::strcmp(arg, "--direction")) {
            const std::string dir = nextArg(argc, argv, i);
            if (dir == "higher") {
                higher_is_better = true;
            } else if (dir == "lower") {
                higher_is_better = false;
            } else {
                usage();
            }
        } else if (!std::strcmp(arg, "--json")) {
            json_out = nextArg(argc, argv, i);
        } else if (!std::strcmp(arg, "--update-baseline")) {
            update_baseline = true;
        } else {
            usage();
        }
    }
    if (baseline_path.empty() || fresh_path.empty() ||
        threshold < 0.0) {
        usage();
    }

    const ScenarioList base = loadScenarios(baseline_path, metric);
    const ScenarioList fresh = loadScenarios(fresh_path, metric);

    std::vector<Row> rows;
    bool any_regress = false;
    bool any_improve = false;
    for (const std::string &name : base.order) {
        Row row;
        row.name = name;
        row.baseline = base.value.at(name);
        const auto ov = overrides.find(name);
        row.thresholdPct =
            ov != overrides.end() ? ov->second : threshold;
        const auto it = fresh.value.find(name);
        if (it == fresh.value.end()) {
            row.verdict = "missing";
            any_regress = true;
            rows.push_back(row);
            continue;
        }
        row.fresh = it->second;
        row.deltaPct =
            row.baseline != 0.0
                ? (row.fresh - row.baseline) / row.baseline * 100.0
                : 0.0;
        // "Better" is a signed move in the metric's good direction.
        const double gain =
            higher_is_better ? row.deltaPct : -row.deltaPct;
        if (gain < -row.thresholdPct) {
            row.verdict = "regress";
            any_regress = true;
        } else if (gain > row.thresholdPct) {
            row.verdict = "improve";
            any_improve = true;
        } else {
            row.verdict = "pass";
        }
        rows.push_back(row);
    }
    for (const std::string &name : fresh.order) {
        if (base.value.count(name) != 0) {
            continue;
        }
        Row row;
        row.name = name;
        row.fresh = fresh.value.at(name);
        row.verdict = "new";
        rows.push_back(row);
    }

    const std::string verdict = any_regress ? "regress"
                                : any_improve ? "improve"
                                              : "pass";

    std::printf("perf_diff: %s vs %s (metric %s, %s is better)\n",
                fresh_path.c_str(), baseline_path.c_str(),
                metric.c_str(),
                higher_is_better ? "higher" : "lower");
    for (const Row &row : rows) {
        std::printf("  %-24s %14.1f %14.1f %+7.2f%% (tol %.1f%%)"
                    " %s\n",
                    row.name.c_str(), row.baseline, row.fresh,
                    row.deltaPct, row.thresholdPct,
                    row.verdict.c_str());
    }
    std::printf("verdict: %s\n", verdict.c_str());

    if (!json_out.empty()) {
        JsonWriter w;
        w.beginObject();
        w.key("verdict");
        w.value(verdict);
        w.key("metric");
        w.value(metric);
        w.key("direction");
        w.value(higher_is_better ? "higher" : "lower");
        w.key("threshold_pct");
        w.value(threshold);
        w.key("baseline");
        w.value(baseline_path);
        w.key("fresh");
        w.value(fresh_path);
        w.key("scenarios");
        w.beginArray();
        for (const Row &row : rows) {
            w.beginObject();
            w.key("name");
            w.value(row.name);
            w.key("baseline");
            w.value(row.baseline);
            w.key("fresh");
            w.value(row.fresh);
            w.key("delta_pct");
            w.value(row.deltaPct);
            w.key("threshold_pct");
            w.value(row.thresholdPct);
            w.key("verdict");
            w.value(row.verdict);
            w.endObject();
        }
        w.endArray();
        w.endObject();
        std::ofstream out(json_out, std::ios::binary);
        if (!out) {
            std::fprintf(stderr,
                         "perf_diff: cannot write '%s'\n",
                         json_out.c_str());
            return 2;
        }
        out << w.str() << "\n";
    }
    if (update_baseline) {
        // Adopt the fresh run verbatim (bytes, not a re-encode, so
        // the committed file matches what bench_hotpath emitted).
        std::ofstream out(baseline_path,
                          std::ios::binary | std::ios::trunc);
        if (!out) {
            std::fprintf(stderr,
                         "perf_diff: cannot write '%s'\n",
                         baseline_path.c_str());
            return 2;
        }
        out << readFile(fresh_path);
        std::printf("baseline updated: %s <- %s\n",
                    baseline_path.c_str(), fresh_path.c_str());
        return 0;
    }
    return any_regress ? 1 : 0;
}
