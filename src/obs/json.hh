/**
 * @file
 * Minimal JSON helpers for the observability exporters.
 *
 * JsonWriter is a small append-only builder that handles string
 * escaping and number formatting; jsonWellFormed() is a strict
 * syntax checker used by tests (and by tools that want to validate
 * a dump before shipping it to Perfetto).  Deliberately tiny: no
 * DOM, no parsing into values, no external dependency.
 */

#ifndef THERMOSTAT_OBS_JSON_HH
#define THERMOSTAT_OBS_JSON_HH

#include <cstdint>
#include <string>

namespace thermostat
{

/** Escape @p s for inclusion inside a JSON string literal. */
std::string jsonEscape(const std::string &s);

/** Format a double as a JSON number (no NaN/Inf; those become 0). */
std::string jsonNumber(double value);

/**
 * Strict syntax check of a complete JSON document (one value).
 * Returns false on trailing garbage, unbalanced structure, bad
 * escapes or malformed numbers.
 */
bool jsonWellFormed(const std::string &text);

/**
 * Append-only JSON builder.  The caller is responsible for calling
 * the begin/end methods in a balanced order; key() must precede
 * every member value inside an object.
 */
class JsonWriter
{
  public:
    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Start an object member; follow with a value call. */
    void key(const std::string &name);

    void value(const std::string &s);
    void value(const char *s);
    void value(double d);
    void value(std::uint64_t v);
    void value(bool b);

    /** Splice an already-rendered JSON value in as a member. */
    void raw(const std::string &json);

    const std::string &str() const { return out_; }

  private:
    void comma();

    std::string out_;
    bool needComma_ = false;
};

} // namespace thermostat

#endif // THERMOSTAT_OBS_JSON_HH
