/**
 * @file
 * Minimal JSON helpers for the observability exporters.
 *
 * JsonWriter is a small append-only builder that handles string
 * escaping and number formatting; jsonWellFormed() is a strict
 * syntax checker used by tests (and by tools that want to validate
 * a dump before shipping it to Perfetto).  Deliberately tiny: no
 * DOM, no parsing into values, no external dependency.
 */

#ifndef THERMOSTAT_OBS_JSON_HH
#define THERMOSTAT_OBS_JSON_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace thermostat
{

/** Escape @p s for inclusion inside a JSON string literal. */
std::string jsonEscape(const std::string &s);

/** Format a double as a JSON number (no NaN/Inf; those become 0). */
std::string jsonNumber(double value);

/**
 * Strict syntax check of a complete JSON document (one value).
 * Returns false on trailing garbage, unbalanced structure, bad
 * escapes or malformed numbers.
 */
bool jsonWellFormed(const std::string &text);

/**
 * Parsed JSON value: a small immutable DOM for tools that consume
 * the exporters' output (tools/perf_diff compares BENCH_*.json
 * baselines).  Object member order is not preserved (members are
 * name-sorted); numbers are doubles, matching what JsonWriter
 * emits.  Accessors return fallbacks instead of throwing so
 * comparison tools can probe optional fields cheaply.
 */
class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    JsonValue() = default;

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    bool asBool(bool fallback = false) const;
    double asNumber(double fallback = 0.0) const;
    const std::string &asString() const;

    /** Array elements (empty unless isArray()). */
    const std::vector<JsonValue> &elements() const;

    /** Object member lookup; null-kind sentinel when absent. */
    const JsonValue &member(const std::string &name) const;
    bool hasMember(const std::string &name) const;
    const std::map<std::string, JsonValue> &members() const;

  private:
    friend class JsonParser;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<JsonValue> array_;
    std::map<std::string, JsonValue> object_;
};

/**
 * Parse one complete JSON document.  On failure returns false and
 * sets @p error to a position-prefixed message; @p out is then
 * unspecified.
 */
bool parseJson(const std::string &text, JsonValue *out,
               std::string *error);

/**
 * Append-only JSON builder.  The caller is responsible for calling
 * the begin/end methods in a balanced order; key() must precede
 * every member value inside an object.
 */
class JsonWriter
{
  public:
    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Start an object member; follow with a value call. */
    void key(const std::string &name);

    void value(const std::string &s);
    void value(const char *s);
    void value(double d);
    void value(std::uint64_t v);
    void value(bool b);

    /** Splice an already-rendered JSON value in as a member. */
    void raw(const std::string &json);

    const std::string &str() const { return out_; }

  private:
    void comma();

    std::string out_;
    bool needComma_ = false;
};

} // namespace thermostat

#endif // THERMOSTAT_OBS_JSON_HH
