/**
 * @file
 * Hierarchical phase profiler for the simulator's own hot loops.
 *
 * ProfileScope is an RAII wall-clock timer; nested scopes build a
 * call tree rooted at "run" (epoch -> policy_tick -> migrate, ...).
 * Each node tracks invocation count and total host nanoseconds;
 * self time is total minus the children's totals, computed at
 * export.  The JSON export is a nested tree, so a profile answers
 * "where does a run spend its host time" at a glance -- the tool
 * for chasing the ROADMAP's single-run throughput target.
 *
 * Host wall-clock reads are confined to obs/ by the lint rules
 * (ban-wall-clock): simulated results never depend on these
 * timings, so profiling on/off cannot perturb golden runs.
 *
 * Not thread-safe: one Profiler per Simulation, like the tracer.
 * A disabled profiler's scopes cost one branch.
 */

#ifndef THERMOSTAT_OBS_PROFILER_HH
#define THERMOSTAT_OBS_PROFILER_HH

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace thermostat
{

class Profiler
{
  public:
    /** One tree node; index 0 is the root ("run"). */
    struct Node
    {
        std::string name;
        int parent = -1;
        std::vector<int> children;
        std::uint64_t count = 0;
        Ns totalNs = 0;
    };

    explicit Profiler(bool enabled = true);

    bool enabled() const { return enabled_; }
    void setEnabled(bool enabled) { enabled_ = enabled; }

    /**
     * Enter the child named @p name of the current node (created on
     * first use); returns a token for leave().  The name pointer
     * must outlive the profiler (static literals).
     */
    int enter(const char *name);
    void leave(int node, Ns elapsed);

    /** Host ns since profiler construction (monotonic). */
    Ns now() const;

    // -- Read side -------------------------------------------------------

    const std::vector<Node> &nodes() const { return nodes_; }
    const Node &root() const { return nodes_[0]; }

    /** Sum of @p node's direct children's totals. */
    Ns childrenTotal(const Node &node) const;

    /** Total minus children (never negative). */
    Ns selfNs(const Node &node) const;

    /**
     * Nested JSON: {"name","count","total_ns","self_ns",
     * "children":[...]}.  Children appear in first-entry order.
     */
    std::string toJson() const;

    /** Indented "name  count  total  self" lines for consoles. */
    std::string toText() const;

    /** Drop all samples, keep the tree shape reset to just root. */
    void clear();

  private:
    int findOrAddChild(int parent, const char *name);
    void writeNode(int index, std::string &out, int depth) const;

    bool enabled_;
    std::vector<Node> nodes_;
    int current_ = 0;
    std::chrono::steady_clock::time_point epoch_;
};

/**
 * RAII scope: enters on construction, accumulates elapsed host time
 * on destruction.  Null profiler or disabled profiler = no-op.
 */
class ProfileScope
{
  public:
    ProfileScope(Profiler *profiler, const char *name)
        : profiler_(profiler != nullptr && profiler->enabled()
                        ? profiler
                        : nullptr)
    {
        if (profiler_ != nullptr) {
            node_ = profiler_->enter(name);
            begin_ = profiler_->now();
        }
    }

    ~ProfileScope()
    {
        if (profiler_ != nullptr) {
            profiler_->leave(node_, profiler_->now() - begin_);
        }
    }

    ProfileScope(const ProfileScope &) = delete;
    ProfileScope &operator=(const ProfileScope &) = delete;

  private:
    Profiler *profiler_;
    int node_ = 0;
    Ns begin_ = 0;
};

} // namespace thermostat

#endif // THERMOSTAT_OBS_PROFILER_HH
