#include "obs/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace thermostat
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonNumber(double value)
{
    if (!std::isfinite(value)) {
        return "0";
    }
    // Integral values print without a fraction so counters stay
    // exact; everything else keeps full double precision.
    if (value == std::floor(value) && std::fabs(value) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", value);
        return buf;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
}

namespace
{

/** Recursive-descent JSON syntax checker. */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text) : text_(text) {}

    bool
    check()
    {
        skipWs();
        if (!value(0)) {
            return false;
        }
        skipWs();
        return pos_ == text_.size();
    }

  private:
    static constexpr int kMaxDepth = 64;

    bool
    value(int depth)
    {
        if (depth > kMaxDepth || pos_ >= text_.size()) {
            return false;
        }
        switch (text_[pos_]) {
          case '{':
            return object(depth);
          case '[':
            return array(depth);
          case '"':
            return string();
          case 't':
            return literal("true");
          case 'f':
            return literal("false");
          case 'n':
            return literal("null");
          default:
            return number();
        }
    }

    bool
    object(int depth)
    {
        ++pos_; // '{'
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (!string()) {
                return false;
            }
            skipWs();
            if (peek() != ':') {
                return false;
            }
            ++pos_;
            skipWs();
            if (!value(depth + 1)) {
                return false;
            }
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    array(int depth)
    {
        ++pos_; // '['
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (!value(depth + 1)) {
                return false;
            }
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    string()
    {
        if (peek() != '"') {
            return false;
        }
        ++pos_;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c == '\\') {
                ++pos_;
                if (pos_ >= text_.size()) {
                    return false;
                }
                const char esc = text_[pos_];
                if (esc == 'u') {
                    for (int i = 1; i <= 4; ++i) {
                        if (pos_ + i >= text_.size() ||
                            !std::isxdigit(static_cast<unsigned char>(
                                text_[pos_ + i]))) {
                            return false;
                        }
                    }
                    pos_ += 4;
                } else if (!std::strchr("\"\\/bfnrt", esc)) {
                    return false;
                }
            } else if (static_cast<unsigned char>(c) < 0x20) {
                return false;
            }
            ++pos_;
        }
        return false; // unterminated
    }

    bool
    number()
    {
        const std::size_t start = pos_;
        if (peek() == '-') {
            ++pos_;
        }
        if (!digits()) {
            return false;
        }
        if (peek() == '.') {
            ++pos_;
            if (!digits()) {
                return false;
            }
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-') {
                ++pos_;
            }
            if (!digits()) {
                return false;
            }
        }
        return pos_ > start;
    }

    bool
    digits()
    {
        const std::size_t start = pos_;
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
        return pos_ > start;
    }

    bool
    literal(const char *word)
    {
        const std::size_t len = std::strlen(word);
        if (text_.compare(pos_, len, word) != 0) {
            return false;
        }
        pos_ += len;
        return true;
    }

    char
    peek() const
    {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

bool
jsonWellFormed(const std::string &text)
{
    return JsonChecker(text).check();
}

void
JsonWriter::comma()
{
    if (needComma_) {
        out_ += ',';
    }
    needComma_ = false;
}

void
JsonWriter::beginObject()
{
    comma();
    out_ += '{';
}

void
JsonWriter::endObject()
{
    out_ += '}';
    needComma_ = true;
}

void
JsonWriter::beginArray()
{
    comma();
    out_ += '[';
}

void
JsonWriter::endArray()
{
    out_ += ']';
    needComma_ = true;
}

void
JsonWriter::key(const std::string &name)
{
    comma();
    out_ += '"';
    out_ += jsonEscape(name);
    out_ += "\":";
}

void
JsonWriter::value(const std::string &s)
{
    comma();
    out_ += '"';
    out_ += jsonEscape(s);
    out_ += '"';
    needComma_ = true;
}

void
JsonWriter::value(const char *s)
{
    value(std::string(s));
}

void
JsonWriter::value(double d)
{
    comma();
    out_ += jsonNumber(d);
    needComma_ = true;
}

void
JsonWriter::value(std::uint64_t v)
{
    comma();
    out_ += std::to_string(v);
    needComma_ = true;
}

void
JsonWriter::value(bool b)
{
    comma();
    out_ += b ? "true" : "false";
    needComma_ = true;
}

void
JsonWriter::raw(const std::string &json)
{
    comma();
    out_ += json;
    needComma_ = true;
}

} // namespace thermostat
