#include "obs/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace thermostat
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonNumber(double value)
{
    if (!std::isfinite(value)) {
        return "0";
    }
    // Integral values print without a fraction so counters stay
    // exact; everything else keeps full double precision.
    if (value == std::floor(value) && std::fabs(value) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", value);
        return buf;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
}

namespace
{

/** Recursive-descent JSON syntax checker. */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text) : text_(text) {}

    bool
    check()
    {
        skipWs();
        if (!value(0)) {
            return false;
        }
        skipWs();
        return pos_ == text_.size();
    }

  private:
    static constexpr int kMaxDepth = 64;

    bool
    value(int depth)
    {
        if (depth > kMaxDepth || pos_ >= text_.size()) {
            return false;
        }
        switch (text_[pos_]) {
          case '{':
            return object(depth);
          case '[':
            return array(depth);
          case '"':
            return string();
          case 't':
            return literal("true");
          case 'f':
            return literal("false");
          case 'n':
            return literal("null");
          default:
            return number();
        }
    }

    bool
    object(int depth)
    {
        ++pos_; // '{'
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (!string()) {
                return false;
            }
            skipWs();
            if (peek() != ':') {
                return false;
            }
            ++pos_;
            skipWs();
            if (!value(depth + 1)) {
                return false;
            }
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    array(int depth)
    {
        ++pos_; // '['
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (!value(depth + 1)) {
                return false;
            }
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    string()
    {
        if (peek() != '"') {
            return false;
        }
        ++pos_;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c == '\\') {
                ++pos_;
                if (pos_ >= text_.size()) {
                    return false;
                }
                const char esc = text_[pos_];
                if (esc == 'u') {
                    for (int i = 1; i <= 4; ++i) {
                        if (pos_ + i >= text_.size() ||
                            !std::isxdigit(static_cast<unsigned char>(
                                text_[pos_ + i]))) {
                            return false;
                        }
                    }
                    pos_ += 4;
                } else if (!std::strchr("\"\\/bfnrt", esc)) {
                    return false;
                }
            } else if (static_cast<unsigned char>(c) < 0x20) {
                return false;
            }
            ++pos_;
        }
        return false; // unterminated
    }

    bool
    number()
    {
        const std::size_t start = pos_;
        if (peek() == '-') {
            ++pos_;
        }
        if (!digits()) {
            return false;
        }
        if (peek() == '.') {
            ++pos_;
            if (!digits()) {
                return false;
            }
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-') {
                ++pos_;
            }
            if (!digits()) {
                return false;
            }
        }
        return pos_ > start;
    }

    bool
    digits()
    {
        const std::size_t start = pos_;
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
        return pos_ > start;
    }

    bool
    literal(const char *word)
    {
        const std::size_t len = std::strlen(word);
        if (text_.compare(pos_, len, word) != 0) {
            return false;
        }
        pos_ += len;
        return true;
    }

    char
    peek() const
    {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

bool
jsonWellFormed(const std::string &text)
{
    return JsonChecker(text).check();
}

bool
JsonValue::asBool(bool fallback) const
{
    return kind_ == Kind::Bool ? bool_ : fallback;
}

double
JsonValue::asNumber(double fallback) const
{
    return kind_ == Kind::Number ? number_ : fallback;
}

const std::string &
JsonValue::asString() const
{
    static const std::string kEmpty;
    return kind_ == Kind::String ? string_ : kEmpty;
}

const std::vector<JsonValue> &
JsonValue::elements() const
{
    static const std::vector<JsonValue> kEmpty;
    return kind_ == Kind::Array ? array_ : kEmpty;
}

const JsonValue &
JsonValue::member(const std::string &name) const
{
    static const JsonValue kNull;
    if (kind_ != Kind::Object) {
        return kNull;
    }
    const auto it = object_.find(name);
    return it != object_.end() ? it->second : kNull;
}

bool
JsonValue::hasMember(const std::string &name) const
{
    return kind_ == Kind::Object &&
           object_.find(name) != object_.end();
}

const std::map<std::string, JsonValue> &
JsonValue::members() const
{
    static const std::map<std::string, JsonValue> kEmpty;
    return kind_ == Kind::Object ? object_ : kEmpty;
}

/**
 * Recursive-descent parser building the JsonValue DOM.  Kept
 * separate from JsonChecker so the checker stays allocation-free
 * for its validation-only callers.
 */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    bool
    parse(JsonValue *out, std::string *error)
    {
        skipWs();
        if (!value(out, 0)) {
            fillError(error);
            return false;
        }
        skipWs();
        if (pos_ != text_.size()) {
            fail("trailing characters after document");
            fillError(error);
            return false;
        }
        return true;
    }

  private:
    static constexpr int kMaxDepth = 64;

    bool
    value(JsonValue *out, int depth)
    {
        if (depth > kMaxDepth) {
            return fail("nesting too deep");
        }
        if (pos_ >= text_.size()) {
            return fail("unexpected end of input");
        }
        switch (text_[pos_]) {
          case '{':
            return object(out, depth);
          case '[':
            return array(out, depth);
          case '"':
            out->kind_ = JsonValue::Kind::String;
            return string(&out->string_);
          case 't':
            out->kind_ = JsonValue::Kind::Bool;
            out->bool_ = true;
            return literal("true");
          case 'f':
            out->kind_ = JsonValue::Kind::Bool;
            out->bool_ = false;
            return literal("false");
          case 'n':
            out->kind_ = JsonValue::Kind::Null;
            return literal("null");
          default:
            out->kind_ = JsonValue::Kind::Number;
            return number(&out->number_);
        }
    }

    bool
    object(JsonValue *out, int depth)
    {
        out->kind_ = JsonValue::Kind::Object;
        ++pos_; // '{'
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            std::string name;
            if (!string(&name)) {
                return false;
            }
            skipWs();
            if (peek() != ':') {
                return fail("expected ':' after member name");
            }
            ++pos_;
            skipWs();
            JsonValue member;
            if (!value(&member, depth + 1)) {
                return false;
            }
            out->object_[name] = std::move(member);
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}' in object");
        }
    }

    bool
    array(JsonValue *out, int depth)
    {
        out->kind_ = JsonValue::Kind::Array;
        ++pos_; // '['
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            JsonValue element;
            if (!value(&element, depth + 1)) {
                return false;
            }
            out->array_.push_back(std::move(element));
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']' in array");
        }
    }

    bool
    string(std::string *out)
    {
        if (peek() != '"') {
            return fail("expected string");
        }
        ++pos_;
        out->clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c == '\\') {
                ++pos_;
                if (pos_ >= text_.size()) {
                    return fail("unterminated escape");
                }
                const char esc = text_[pos_];
                switch (esc) {
                  case '"':
                  case '\\':
                  case '/':
                    *out += esc;
                    break;
                  case 'b':
                    *out += '\b';
                    break;
                  case 'f':
                    *out += '\f';
                    break;
                  case 'n':
                    *out += '\n';
                    break;
                  case 'r':
                    *out += '\r';
                    break;
                  case 't':
                    *out += '\t';
                    break;
                  case 'u': {
                    unsigned code = 0;
                    for (int i = 1; i <= 4; ++i) {
                        if (pos_ + i >= text_.size() ||
                            !std::isxdigit(
                                static_cast<unsigned char>(
                                    text_[pos_ + i]))) {
                            return fail("bad \\u escape");
                        }
                        const char h = text_[pos_ + i];
                        code = code * 16 +
                               static_cast<unsigned>(
                                   std::isdigit(
                                       static_cast<unsigned char>(h))
                                       ? h - '0'
                                       : std::tolower(h) - 'a' + 10);
                    }
                    pos_ += 4;
                    // Exporters only emit \u00xx control escapes;
                    // anything wider degrades to '?' rather than
                    // growing a UTF-8 encoder here.
                    *out += code < 0x80
                                ? static_cast<char>(code)
                                : '?';
                    break;
                  }
                  default:
                    return fail("bad escape character");
                }
            } else if (static_cast<unsigned char>(c) < 0x20) {
                return fail("raw control character in string");
            } else {
                *out += c;
            }
            ++pos_;
        }
        return fail("unterminated string");
    }

    bool
    number(double *out)
    {
        const std::size_t start = pos_;
        if (peek() == '-') {
            ++pos_;
        }
        if (!digits()) {
            return fail("malformed number");
        }
        if (peek() == '.') {
            ++pos_;
            if (!digits()) {
                return fail("malformed number fraction");
            }
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-') {
                ++pos_;
            }
            if (!digits()) {
                return fail("malformed number exponent");
            }
        }
        *out = std::strtod(text_.substr(start, pos_ - start).c_str(),
                           nullptr);
        return true;
    }

    bool
    digits()
    {
        const std::size_t start = pos_;
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
        return pos_ > start;
    }

    bool
    literal(const char *word)
    {
        const std::size_t len = std::strlen(word);
        if (text_.compare(pos_, len, word) != 0) {
            return fail("bad literal");
        }
        pos_ += len;
        return true;
    }

    bool
    fail(const char *what)
    {
        if (error_.empty()) {
            error_ = what;
            errorPos_ = pos_;
        }
        return false;
    }

    void
    fillError(std::string *error) const
    {
        if (error != nullptr) {
            *error = "offset " + std::to_string(errorPos_) + ": " +
                     (error_.empty() ? "parse error" : error_);
        }
    }

    char
    peek() const
    {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    const std::string &text_;
    std::size_t pos_ = 0;
    std::string error_;
    std::size_t errorPos_ = 0;
};

bool
parseJson(const std::string &text, JsonValue *out,
          std::string *error)
{
    return JsonParser(text).parse(out, error);
}

void
JsonWriter::comma()
{
    if (needComma_) {
        out_ += ',';
    }
    needComma_ = false;
}

void
JsonWriter::beginObject()
{
    comma();
    out_ += '{';
}

void
JsonWriter::endObject()
{
    out_ += '}';
    needComma_ = true;
}

void
JsonWriter::beginArray()
{
    comma();
    out_ += '[';
}

void
JsonWriter::endArray()
{
    out_ += ']';
    needComma_ = true;
}

void
JsonWriter::key(const std::string &name)
{
    comma();
    out_ += '"';
    out_ += jsonEscape(name);
    out_ += "\":";
}

void
JsonWriter::value(const std::string &s)
{
    comma();
    out_ += '"';
    out_ += jsonEscape(s);
    out_ += '"';
    needComma_ = true;
}

void
JsonWriter::value(const char *s)
{
    value(std::string(s));
}

void
JsonWriter::value(double d)
{
    comma();
    out_ += jsonNumber(d);
    needComma_ = true;
}

void
JsonWriter::value(std::uint64_t v)
{
    comma();
    out_ += std::to_string(v);
    needComma_ = true;
}

void
JsonWriter::value(bool b)
{
    comma();
    out_ += b ? "true" : "false";
    needComma_ = true;
}

void
JsonWriter::raw(const std::string &json)
{
    comma();
    out_ += json;
    needComma_ = true;
}

} // namespace thermostat
