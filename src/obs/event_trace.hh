/**
 * @file
 * Structured page-lifecycle event tracing.
 *
 * The EventTracer is a bounded ring buffer of timestamped events
 * covering the full Thermostat page lifecycle (sampled -> split ->
 * poisoned -> classified -> demoted/promoted -> corrected), fed by
 * the engine, the migrator, BadgerTrap and khugepaged.  Exporters
 * render the ring as JSONL (one event per line, jq-friendly) or as
 * Chrome trace-event JSON loadable in Perfetto / chrome://tracing.
 *
 * Two timelines coexist: lifecycle events carry *simulated*
 * nanoseconds (track "simulation"), while TraceScope phase timings
 * carry *host wall-clock* nanoseconds since tracer creation (track
 * "host"), making the simulator's own hot loops profilable.
 *
 * An optional sink observes every event before masking/ring
 * overwrite; the lifecycle auditor subscribes there so its checks
 * see the complete stream regardless of ring capacity or mask.
 */

#ifndef THERMOSTAT_OBS_EVENT_TRACE_HH
#define THERMOSTAT_OBS_EVENT_TRACE_HH

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.hh"

namespace thermostat
{

class MetricRegistry;

/** What happened to a page (or which engine phase ran). */
enum class EventKind : std::uint8_t
{
    PageSampled,    //!< chosen for this period's profiling sample
    PageSplit,      //!< huge page split into 4KB mappings
    PagePoisoned,   //!< PTE poisoned for software access counting
    PageUnpoisoned, //!< poison removed
    ClassifiedHot,  //!< profiling verdict: keep in fast memory
    ClassifiedCold, //!< profiling verdict: move to slow memory
    PageCollapsed,  //!< split range recovered into a huge page
    CollapseFailed, //!< collapse attempt failed
    PageDemoted,    //!< migrated fast -> slow (value = bytes)
    PagePromoted,   //!< migrated slow -> fast (value = bytes)
    Corrected,      //!< promotion ordered by the misclassification
                    //!< corrector (paper Sec 3.5)
    PageSpread,     //!< Sec 6 extension: hot page left split, cold
                    //!< subpages demoted (value = subpages demoted)
    MigrationFailed, //!< target tier full
    MigrationThrottled, //!< host arbiter denied admission
                        //!< (value = bytes not moved)
    MigrationRetried, //!< migration attempt failed, retrying
                      //!< (value = attempt number)
    MigrationAborted, //!< copy torn mid-migration and rolled back
                      //!< (value = bytes copied then discarded)
    FrameRetired,    //!< wear-retired slow-tier block
                     //!< (addr = frame base pfn, value = frames)
    PageQuarantined, //!< demotion kept failing; page benched
    PageUnquarantined, //!< quarantine expired, page eligible again
    PolicyDemote,   //!< tiering policy ordered a demotion
    PolicyPromote,  //!< tiering policy ordered a promotion
    TransactionStarted,   //!< shadow copy opened; page resident in
                          //!< both tiers (value = bytes)
    TransactionCommitted, //!< revalidation clean, move landed
                          //!< (value = bytes)
    TransactionAborted,   //!< torn shadow copy or dirty
                          //!< revalidation; rolled back
                          //!< (value = bytes discarded)
    ReplicaRetained, //!< slow-tier copy kept after a clean
                     //!< promotion commit (value = bytes)
    ReplicaDropped,  //!< replica invalidated by a write or spent
                     //!< by a shadow-free demotion (value = bytes)
    QueueRejected,   //!< bounded migration queue was full
                     //!< (value = bytes not queued)
    Phase           //!< TraceScope host-time phase (value = wall ns)
};

/** Category bit for one kind (mask filtering / Chrome "cat"). */
enum EventCategory : std::uint32_t
{
    kEvSample = 1u << 0,   //!< PageSampled, PageSplit
    kEvPoison = 1u << 1,   //!< PagePoisoned, PageUnpoisoned
    kEvClassify = 1u << 2, //!< Classified*, PageCollapsed,
                           //!< CollapseFailed
    kEvMigrate = 1u << 3,  //!< PageDemoted/Promoted, PageSpread,
                           //!< MigrationFailed
    kEvCorrect = 1u << 4,  //!< Corrected
    kEvPhase = 1u << 5,    //!< Phase
    kEvFault = 1u << 6,    //!< MigrationRetried/Aborted, FrameRetired,
                           //!< PageQuarantined/Unquarantined
    kEvPolicy = 1u << 7,   //!< PolicyDemote, PolicyPromote
    kEvAll = 0xffffffffu
};

const char *eventKindName(EventKind kind);
EventCategory eventCategory(EventKind kind);

/**
 * Parse a comma-separated category list ("sample,migrate,phase" or
 * "all") into a mask; returns false on an unknown token.
 */
bool parseEventMask(const std::string &spec, std::uint32_t *mask_out);

/** One trace record (fixed-size; strings are static literals). */
struct TraceEvent
{
    Ns time = 0;        //!< simulated ns (Phase: host wall ns)
    EventKind kind = EventKind::PageSampled;
    bool huge = false;
    Addr addr = 0;
    std::uint64_t value = 0; //!< kind-specific payload
    const char *name = nullptr; //!< phase label (Phase events only)
};

/**
 * The bounded ring of events plus exporters.
 */
class EventTracer
{
  public:
    using Sink = std::function<void(const TraceEvent &)>;

    explicit EventTracer(std::size_t capacity = 1u << 16);

    /**
     * Ambient simulated clock for emitters whose APIs carry no
     * timestamp (e.g. BadgerTrap::poison); the engine and the
     * simulation keep it current at each tick.
     */
    void setSimTime(Ns now) { simTime_ = now; }
    Ns simTime() const { return simTime_; }

    /** Record recording filter; the sink is not affected. */
    void setMask(std::uint32_t mask) { mask_ = mask; }
    std::uint32_t mask() const { return mask_; }

    /** Observer of the full (unmasked, unbounded) stream. */
    void setSink(Sink sink) { sink_ = std::move(sink); }

    void emit(const TraceEvent &event);

    /** Convenience for lifecycle events (simulated time). */
    void
    record(EventKind kind, Ns now, Addr addr, bool huge = false,
           std::uint64_t value = 0)
    {
        emit({now, kind, huge, addr, value, nullptr});
    }

    std::size_t capacity() const { return buffer_.size(); }
    std::size_t size() const { return count_; }
    /** Events lost to ring overwrite (masked events don't count). */
    std::uint64_t dropped() const { return dropped_; }
    /** Events offered to emit(), masked or not. */
    std::uint64_t totalEmitted() const { return totalEmitted_; }

    /**
     * Register "trace/emitted_events" and "trace/dropped_events"
     * so ring overflow is visible in every metrics dump (a nonzero
     * drop count means the *export* is incomplete; sink consumers
     * like the LifecycleAuditor still saw every event).
     */
    void registerMetrics(MetricRegistry &registry) const;

    /** Ring contents, oldest first. */
    std::vector<TraceEvent> events() const;

    void clear();

    /** Host wall-clock ns since tracer construction (Phase track). */
    Ns hostNow() const;

    /** One JSON object per line, raw field dump. */
    std::string toJsonl() const;

    /**
     * Chrome trace-event JSON (Perfetto-loadable): lifecycle events
     * as instants on pid 1 "simulation", Phase events as complete
     * (ph "X") slices on pid 2 "host".  Events are sorted by
     * timestamp within each track.
     */
    std::string toChromeTrace() const;

    /** Write @p text to @p path; warns and returns false on error. */
    static bool writeFile(const std::string &path,
                          const std::string &text);

  private:
    std::vector<TraceEvent> buffer_;
    std::size_t head_ = 0;  //!< next write position
    std::size_t count_ = 0; //!< valid entries
    std::uint64_t dropped_ = 0;
    bool overflowWarned_ = false;
    std::uint64_t totalEmitted_ = 0;
    std::uint32_t mask_ = kEvAll;
    Ns simTime_ = 0;
    Sink sink_;
    std::chrono::steady_clock::time_point hostEpoch_;
};

/**
 * RAII wall-clock timer for simulator phases: construct at phase
 * entry, emits a Phase event (host-time track) on destruction.
 */
class TraceScope
{
  public:
    TraceScope(EventTracer *tracer, const char *name)
        : tracer_(tracer), name_(name),
          begin_(tracer ? tracer->hostNow() : 0)
    {
    }

    ~TraceScope()
    {
        if (tracer_) {
            const Ns end = tracer_->hostNow();
            tracer_->emit({begin_, EventKind::Phase, false, 0,
                           end - begin_, name_});
        }
    }

    TraceScope(const TraceScope &) = delete;
    TraceScope &operator=(const TraceScope &) = delete;

  private:
    EventTracer *tracer_;
    const char *name_;
    Ns begin_;
};

} // namespace thermostat

#endif // THERMOSTAT_OBS_EVENT_TRACE_HH
