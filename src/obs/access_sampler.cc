#include "obs/access_sampler.hh"

#include <algorithm>

#include "obs/metrics.hh"

namespace thermostat
{

AccessSampler::AccessSampler(const AccessSamplerConfig &config,
                             std::uint64_t run_seed)
    : config_(config), rng_(run_seed ^ config.seedSalt)
{
    if (enabled()) {
        gap_ = nextGap();
    }
}

std::uint64_t
AccessSampler::nextGap()
{
    // Randomized inter-sample gap with mean `period`: uniform on
    // [1, 2*period - 1].  Integer-only (no libm), so the gap
    // sequence is bit-identical on every platform, and the jitter
    // breaks lockstep aliasing with strided access patterns the
    // same way hardware PEBS randomization does.
    const Count period = config_.period;
    if (period <= 1) {
        return 1;
    }
    return 1 + rng_.nextBounded(2 * period - 1);
}

void
AccessSampler::record(const AccessSample &sample)
{
    ++sampled_;
    if (sample.write) {
        ++sampledWrites_;
    }
    if (sample.slowTier) {
        ++sampledSlow_;
    }

    pageWeight_[sample.pageBase] += sample.weight;
    regionWeight_[alignDown2M(sample.pageBase)] += sample.weight;

    // Order-sensitive stream digest: hash the sample into a rolling
    // FNV/SplitMix mix so tests can assert two runs produced the
    // exact same sample sequence without storing it.
    std::uint64_t word = sample.pageBase;
    word = word * 0x100000001b3ULL + sample.weight;
    word ^= (sample.huge ? 1ULL : 0) | (sample.write ? 2ULL : 0) |
            (sample.slowTier ? 4ULL : 0);
    std::uint64_t state = digest_ ^ word;
    digest_ = splitMix64(state);

    if (config_.keepRecords) {
        if (records_.size() < config_.maxRecords) {
            records_.push_back(sample);
        } else if (!records_.empty()) {
            records_[recordHead_] = sample;
            recordHead_ = (recordHead_ + 1) % records_.size();
            ++recordsDropped_;
        }
    }
    if (hook_) {
        hook_(sample);
    }
    gap_ = nextGap();
}

std::vector<AccessSample>
AccessSampler::records() const
{
    // Un-rotate the ring: recordHead_ marks the oldest entry once
    // the ring has wrapped (it is 0 before that).
    std::vector<AccessSample> out;
    out.reserve(records_.size());
    for (std::size_t i = 0; i < records_.size(); ++i) {
        out.push_back(
            records_[(recordHead_ + i) % records_.size()]);
    }
    return out;
}

std::uint64_t
AccessSampler::pageWeight(Addr page_base) const
{
    const auto it = pageWeight_.find(page_base);
    return it != pageWeight_.end() ? it->value : 0;
}

std::uint64_t
AccessSampler::regionWeight(Addr region_base) const
{
    const auto it = regionWeight_.find(region_base);
    return it != regionWeight_.end() ? it->value : 0;
}

Log2Histogram
AccessSampler::pageHotnessHistogram() const
{
    Log2Histogram histogram;
    for (const auto &slot : pageWeight_) {
        histogram.add(slot.value);
    }
    return histogram;
}

Log2Histogram
AccessSampler::regionHotnessHistogram() const
{
    Log2Histogram histogram;
    for (const auto &slot : regionWeight_) {
        histogram.add(slot.value);
    }
    return histogram;
}

std::vector<AccessSampler::RegionRank>
AccessSampler::hottestRegions(std::size_t n) const
{
    std::vector<RegionRank> ranks;
    ranks.reserve(regionWeight_.size());
    for (const auto &slot : regionWeight_) {
        ranks.push_back({slot.key, slot.value});
    }
    std::sort(ranks.begin(), ranks.end(),
              [](const RegionRank &a, const RegionRank &b) {
                  if (a.weight != b.weight) {
                      return a.weight > b.weight;
                  }
                  return a.base < b.base;
              });
    if (ranks.size() > n) {
        ranks.resize(n);
    }
    return ranks;
}

void
AccessSampler::registerMetrics(MetricRegistry &registry,
                               const std::string &prefix) const
{
    registry.addCallback(prefix + ".offered", [this] {
        return static_cast<double>(offered_);
    });
    registry.addCallback(prefix + ".sampled", [this] {
        return static_cast<double>(sampled_);
    });
    registry.addCallback(prefix + ".sampled_writes", [this] {
        return static_cast<double>(sampledWrites_);
    });
    registry.addCallback(prefix + ".sampled_slow", [this] {
        return static_cast<double>(sampledSlow_);
    });
    registry.addCallback(prefix + ".pages_seen", [this] {
        return static_cast<double>(pageWeight_.size());
    });
    registry.addCallback(prefix + ".regions_seen", [this] {
        return static_cast<double>(regionWeight_.size());
    });
    registry.addCallback(prefix + ".records_dropped", [this] {
        return static_cast<double>(recordsDropped_);
    });
}

void
AccessSampler::reset()
{
    offered_ = 0;
    sampled_ = 0;
    sampledWrites_ = 0;
    sampledSlow_ = 0;
    digest_ = 0x9e3779b97f4a7c15ULL;
    pageWeight_.clear();
    regionWeight_.clear();
    records_.clear();
    recordHead_ = 0;
    recordsDropped_ = 0;
    if (enabled()) {
        gap_ = nextGap();
    }
}

} // namespace thermostat
