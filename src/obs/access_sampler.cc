#include "obs/access_sampler.hh"

#include <algorithm>

#include "obs/metrics.hh"

namespace thermostat
{

AccessSampler::AccessSampler(const AccessSamplerConfig &config,
                             std::uint64_t run_seed)
    : config_(config)
{
    // One independent, deterministically derived stream per lane:
    // splitmix the salted run seed forward once per lane so the lane
    // streams are decorrelated but fully determined by the run seed.
    std::uint64_t state = run_seed ^ config.seedSalt;
    for (unsigned lane = 0; lane < kMachineLanes; ++lane) {
        LaneState &ls = lanes_[lane];
        ls.rng = Rng(splitMix64(state));
        if (enabled()) {
            ls.gap = nextGap(ls);
        }
    }
}

std::uint64_t
AccessSampler::nextGap(LaneState &lane)
{
    // Randomized inter-sample gap with mean `period`: uniform on
    // [1, 2*period - 1].  Integer-only (no libm), so the gap
    // sequence is bit-identical on every platform, and the jitter
    // breaks lockstep aliasing with strided access patterns the
    // same way hardware PEBS randomization does.
    const Count period = config_.period;
    if (period <= 1) {
        return 1;
    }
    return 1 + lane.rng.nextBounded(2 * period - 1);
}

void
AccessSampler::record(LaneState &lane, const AccessSample &sample)
{
    ++lane.sampled;
    if (sample.write) {
        ++lane.sampledWrites;
    }
    if (sample.slowTier) {
        ++lane.sampledSlow;
    }

    lane.pageWeight.add(sample.pageBase, sample.weight);
    lane.regionWeight.add(alignDown2M(sample.pageBase),
                          sample.weight);

    // Order-sensitive stream digest: hash the sample into a rolling
    // FNV/SplitMix mix so tests can assert two runs produced the
    // exact same sample sequence without storing it.
    std::uint64_t word = sample.pageBase;
    word = word * 0x100000001b3ULL + sample.weight;
    word ^= (sample.huge ? 1ULL : 0) | (sample.write ? 2ULL : 0) |
            (sample.slowTier ? 4ULL : 0);
    std::uint64_t state = lane.digest ^ word;
    lane.digest = splitMix64(state);

    if (config_.keepRecords) {
        if (lane.records.size() < config_.maxRecords) {
            lane.records.push_back(sample);
        } else if (!lane.records.empty()) {
            lane.records[lane.recordHead] = sample;
            lane.recordHead =
                (lane.recordHead + 1) % lane.records.size();
            ++lane.recordsDropped;
        }
    }
    if (hook_) {
        hook_(sample);
    }
    lane.gap = nextGap(lane);
}

std::uint64_t
AccessSampler::offered() const
{
    std::uint64_t n = 0;
    for (const LaneState &lane : lanes_) {
        n += lane.offered;
    }
    return n;
}

std::uint64_t
AccessSampler::sampled() const
{
    std::uint64_t n = 0;
    for (const LaneState &lane : lanes_) {
        n += lane.sampled;
    }
    return n;
}

std::uint64_t
AccessSampler::sampledWrites() const
{
    std::uint64_t n = 0;
    for (const LaneState &lane : lanes_) {
        n += lane.sampledWrites;
    }
    return n;
}

std::uint64_t
AccessSampler::sampledSlow() const
{
    std::uint64_t n = 0;
    for (const LaneState &lane : lanes_) {
        n += lane.sampledSlow;
    }
    return n;
}

std::size_t
AccessSampler::pagesSeen() const
{
    std::size_t n = 0;
    for (const LaneState &lane : lanes_) {
        n += lane.pageWeight.size();
    }
    return n;
}

std::size_t
AccessSampler::regionsSeen() const
{
    std::size_t n = 0;
    for (const LaneState &lane : lanes_) {
        n += lane.regionWeight.size();
    }
    return n;
}

std::uint64_t
AccessSampler::recordsDropped() const
{
    std::uint64_t n = 0;
    for (const LaneState &lane : lanes_) {
        n += lane.recordsDropped;
    }
    return n;
}

std::uint64_t
AccessSampler::streamDigest() const
{
    std::uint64_t digest = 0x9e3779b97f4a7c15ULL;
    for (const LaneState &lane : lanes_) {
        std::uint64_t state = digest ^ lane.digest;
        digest = splitMix64(state);
    }
    return digest;
}

std::vector<AccessSample>
AccessSampler::records() const
{
    // Lane-major; within a lane, un-rotate the ring (recordHead
    // marks the oldest entry once the ring has wrapped).
    std::vector<AccessSample> out;
    for (const LaneState &lane : lanes_) {
        for (std::size_t i = 0; i < lane.records.size(); ++i) {
            out.push_back(
                lane.records[(lane.recordHead + i) %
                             lane.records.size()]);
        }
    }
    return out;
}

std::uint64_t
AccessSampler::pageWeight(Addr page_base) const
{
    return lanes_[laneOf(page_base)].pageWeight.get(page_base);
}

std::uint64_t
AccessSampler::regionWeight(Addr region_base) const
{
    return lanes_[laneOf(region_base)].regionWeight.get(region_base);
}

Log2Histogram
AccessSampler::pageHotnessHistogram() const
{
    Log2Histogram histogram;
    for (const LaneState &lane : lanes_) {
        for (const Count weight : lane.pageWeight.counts()) {
            histogram.add(weight);
        }
    }
    return histogram;
}

Log2Histogram
AccessSampler::regionHotnessHistogram() const
{
    Log2Histogram histogram;
    for (const LaneState &lane : lanes_) {
        for (const Count weight : lane.regionWeight.counts()) {
            histogram.add(weight);
        }
    }
    return histogram;
}

std::vector<AccessSampler::RegionRank>
AccessSampler::hottestRegions(std::size_t n) const
{
    std::vector<RegionRank> ranks;
    ranks.reserve(regionsSeen());
    for (const LaneState &lane : lanes_) {
        const std::vector<Addr> &bases = lane.regionWeight.pages();
        const std::vector<Count> &weights =
            lane.regionWeight.counts();
        for (std::size_t i = 0; i < bases.size(); ++i) {
            ranks.push_back({bases[i], weights[i]});
        }
    }
    std::sort(ranks.begin(), ranks.end(),
              [](const RegionRank &a, const RegionRank &b) {
                  if (a.weight != b.weight) {
                      return a.weight > b.weight;
                  }
                  return a.base < b.base;
              });
    if (ranks.size() > n) {
        ranks.resize(n);
    }
    return ranks;
}

void
AccessSampler::registerMetrics(MetricRegistry &registry,
                               const std::string &prefix) const
{
    registry.addCallback(prefix + ".offered", [this] {
        return static_cast<double>(offered());
    });
    registry.addCallback(prefix + ".sampled", [this] {
        return static_cast<double>(sampled());
    });
    registry.addCallback(prefix + ".sampled_writes", [this] {
        return static_cast<double>(sampledWrites());
    });
    registry.addCallback(prefix + ".sampled_slow", [this] {
        return static_cast<double>(sampledSlow());
    });
    registry.addCallback(prefix + ".pages_seen", [this] {
        return static_cast<double>(pagesSeen());
    });
    registry.addCallback(prefix + ".regions_seen", [this] {
        return static_cast<double>(regionsSeen());
    });
    registry.addCallback(prefix + ".records_dropped", [this] {
        return static_cast<double>(recordsDropped());
    });
}

void
AccessSampler::reset()
{
    for (LaneState &lane : lanes_) {
        lane.offered = 0;
        lane.sampled = 0;
        lane.sampledWrites = 0;
        lane.sampledSlow = 0;
        lane.digest = 0x9e3779b97f4a7c15ULL;
        lane.pageWeight.clear();
        lane.regionWeight.clear();
        lane.records.clear();
        lane.recordHead = 0;
        lane.recordsDropped = 0;
        if (enabled()) {
            lane.gap = nextGap(lane);
        }
    }
}

} // namespace thermostat
