#include "obs/flight_recorder.hh"

#include <algorithm>

#include "common/logging.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"

namespace thermostat
{

namespace
{

double
toSeconds(Ns time)
{
    return static_cast<double>(time) /
           static_cast<double>(kNsPerSec);
}

} // namespace

EpochFlightRecorder::EpochFlightRecorder(
    std::vector<std::string> columns, std::size_t capacity)
    : columns_(std::move(columns)),
      capacity_(std::max<std::size_t>(capacity, 1))
{
    rows_.reserve(std::min<std::size_t>(capacity_, 1024));
}

void
EpochFlightRecorder::append(Ns time,
                            const std::vector<double> &values)
{
    TSTAT_ASSERT(values.size() == columns_.size(),
                 "flight row has %zu values for %zu columns",
                 values.size(), columns_.size());
    ++appended_;
    if (rows_.size() < capacity_) {
        rows_.push_back({time, values});
        return;
    }
    rows_[head_] = {time, values};
    head_ = (head_ + 1) % capacity_;
    ++dropped_;
}

std::vector<EpochRow>
EpochFlightRecorder::rows() const
{
    std::vector<EpochRow> out;
    out.reserve(rows_.size());
    const std::size_t start =
        rows_.size() < capacity_ ? 0 : head_;
    for (std::size_t i = 0; i < rows_.size(); ++i) {
        out.push_back(rows_[(start + i) % rows_.size()]);
    }
    return out;
}

int
EpochFlightRecorder::columnIndex(const std::string &name) const
{
    for (std::size_t i = 0; i < columns_.size(); ++i) {
        if (columns_[i] == name) {
            return static_cast<int>(i);
        }
    }
    return -1;
}

std::string
EpochFlightRecorder::toJsonl() const
{
    std::string out;
    for (const EpochRow &row : rows()) {
        JsonWriter w;
        w.beginObject();
        w.key("t_sec");
        w.value(toSeconds(row.time));
        for (std::size_t i = 0; i < columns_.size(); ++i) {
            w.key(columns_[i]);
            w.value(row.values[i]);
        }
        w.endObject();
        out += w.str();
        out += '\n';
    }
    JsonWriter meta;
    meta.beginObject();
    meta.key("meta");
    meta.beginObject();
    meta.key("rows");
    meta.value(static_cast<std::uint64_t>(rows_.size()));
    meta.key("appended");
    meta.value(appended_);
    meta.key("dropped");
    meta.value(dropped_);
    meta.key("capacity");
    meta.value(static_cast<std::uint64_t>(capacity_));
    meta.endObject();
    meta.endObject();
    out += meta.str();
    out += '\n';
    return out;
}

std::string
EpochFlightRecorder::toCsv() const
{
    std::string out = "t_sec";
    for (const std::string &column : columns_) {
        out += ',';
        out += column;
    }
    out += '\n';
    for (const EpochRow &row : rows()) {
        out += jsonNumber(toSeconds(row.time));
        for (const double value : row.values) {
            out += ',';
            out += jsonNumber(value);
        }
        out += '\n';
    }
    return out;
}

void
EpochFlightRecorder::registerMetrics(MetricRegistry &registry) const
{
    registry.addCallback("flight/rows", [this] {
        return static_cast<double>(rows_.size());
    });
    registry.addCallback("flight/dropped_rows", [this] {
        return static_cast<double>(dropped_);
    });
}

void
EpochFlightRecorder::clear()
{
    rows_.clear();
    head_ = 0;
    appended_ = 0;
    dropped_ = 0;
}

} // namespace thermostat
