#include "obs/event_trace.hh"

#include <algorithm>
#include <cstdio>

#include "common/logging.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"

namespace thermostat
{

const char *
eventKindName(EventKind kind)
{
    switch (kind) {
      case EventKind::PageSampled:
        return "sampled";
      case EventKind::PageSplit:
        return "split";
      case EventKind::PagePoisoned:
        return "poisoned";
      case EventKind::PageUnpoisoned:
        return "unpoisoned";
      case EventKind::ClassifiedHot:
        return "classified_hot";
      case EventKind::ClassifiedCold:
        return "classified_cold";
      case EventKind::PageCollapsed:
        return "collapsed";
      case EventKind::CollapseFailed:
        return "collapse_failed";
      case EventKind::PageDemoted:
        return "demoted";
      case EventKind::PagePromoted:
        return "promoted";
      case EventKind::Corrected:
        return "corrected";
      case EventKind::PageSpread:
        return "spread";
      case EventKind::MigrationFailed:
        return "migration_failed";
      case EventKind::MigrationThrottled:
        return "migration_throttled";
      case EventKind::MigrationRetried:
        return "migration_retried";
      case EventKind::MigrationAborted:
        return "migration_aborted";
      case EventKind::FrameRetired:
        return "frame_retired";
      case EventKind::PageQuarantined:
        return "quarantined";
      case EventKind::PageUnquarantined:
        return "unquarantined";
      case EventKind::PolicyDemote:
        return "policy_demote";
      case EventKind::PolicyPromote:
        return "policy_promote";
      case EventKind::TransactionStarted:
        return "txn_started";
      case EventKind::TransactionCommitted:
        return "txn_committed";
      case EventKind::TransactionAborted:
        return "txn_aborted";
      case EventKind::ReplicaRetained:
        return "replica_retained";
      case EventKind::ReplicaDropped:
        return "replica_dropped";
      case EventKind::QueueRejected:
        return "queue_rejected";
      case EventKind::Phase:
        return "phase";
    }
    return "unknown";
}

EventCategory
eventCategory(EventKind kind)
{
    switch (kind) {
      case EventKind::PageSampled:
      case EventKind::PageSplit:
        return kEvSample;
      case EventKind::PagePoisoned:
      case EventKind::PageUnpoisoned:
        return kEvPoison;
      case EventKind::ClassifiedHot:
      case EventKind::ClassifiedCold:
      case EventKind::PageCollapsed:
      case EventKind::CollapseFailed:
        return kEvClassify;
      case EventKind::PageDemoted:
      case EventKind::PagePromoted:
      case EventKind::PageSpread:
      case EventKind::MigrationFailed:
      case EventKind::MigrationThrottled:
      case EventKind::TransactionStarted:
      case EventKind::TransactionCommitted:
      case EventKind::ReplicaRetained:
      case EventKind::ReplicaDropped:
      case EventKind::QueueRejected:
        return kEvMigrate;
      case EventKind::Corrected:
        return kEvCorrect;
      case EventKind::MigrationRetried:
      case EventKind::MigrationAborted:
      case EventKind::TransactionAborted:
      case EventKind::FrameRetired:
      case EventKind::PageQuarantined:
      case EventKind::PageUnquarantined:
        return kEvFault;
      case EventKind::PolicyDemote:
      case EventKind::PolicyPromote:
        return kEvPolicy;
      case EventKind::Phase:
        return kEvPhase;
    }
    return kEvSample;
}

namespace
{

const char *
categoryName(EventCategory cat)
{
    switch (cat) {
      case kEvSample:
        return "sample";
      case kEvPoison:
        return "poison";
      case kEvClassify:
        return "classify";
      case kEvMigrate:
        return "migrate";
      case kEvCorrect:
        return "correct";
      case kEvPhase:
        return "phase";
      case kEvFault:
        return "fault";
      case kEvPolicy:
        return "policy";
      default:
        return "all";
    }
}

} // namespace

bool
parseEventMask(const std::string &spec, std::uint32_t *mask_out)
{
    std::uint32_t mask = 0;
    std::size_t start = 0;
    while (start <= spec.size()) {
        std::size_t end = spec.find(',', start);
        if (end == std::string::npos) {
            end = spec.size();
        }
        const std::string token = spec.substr(start, end - start);
        if (token == "all") {
            mask |= kEvAll;
        } else if (token == "none") {
            // explicit empty mask
        } else if (token == "sample") {
            mask |= kEvSample;
        } else if (token == "poison") {
            mask |= kEvPoison;
        } else if (token == "classify") {
            mask |= kEvClassify;
        } else if (token == "migrate") {
            mask |= kEvMigrate;
        } else if (token == "correct") {
            mask |= kEvCorrect;
        } else if (token == "phase") {
            mask |= kEvPhase;
        } else if (token == "fault") {
            mask |= kEvFault;
        } else if (token == "policy") {
            mask |= kEvPolicy;
        } else if (!token.empty()) {
            return false;
        }
        if (end == spec.size()) {
            break;
        }
        start = end + 1;
    }
    *mask_out = mask;
    return true;
}

EventTracer::EventTracer(std::size_t capacity)
    : buffer_(std::max<std::size_t>(capacity, 1)),
      hostEpoch_(std::chrono::steady_clock::now())
{
}

Ns
EventTracer::hostNow() const
{
    return static_cast<Ns>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - hostEpoch_)
            .count());
}

void
EventTracer::emit(const TraceEvent &event)
{
    ++totalEmitted_;
    if (sink_) {
        sink_(event);
    }
    if (!(mask_ & eventCategory(event.kind))) {
        return;
    }
    if (count_ == buffer_.size()) {
        ++dropped_;
        if (!overflowWarned_) {
            overflowWarned_ = true;
            TSTAT_WARN(
                "event ring overflowed at capacity %zu; oldest "
                "events are being dropped from exports (see "
                "trace/dropped_events; sink consumers such as the "
                "lifecycle auditor still see the full stream). "
                "Raise SimConfig.traceCapacity or narrow "
                "--trace-events to keep the full trace.",
                buffer_.size());
        }
    } else {
        ++count_;
    }
    buffer_[head_] = event;
    head_ = (head_ + 1) % buffer_.size();
}

std::vector<TraceEvent>
EventTracer::events() const
{
    std::vector<TraceEvent> out;
    out.reserve(count_);
    const std::size_t start =
        (head_ + buffer_.size() - count_) % buffer_.size();
    for (std::size_t i = 0; i < count_; ++i) {
        out.push_back(buffer_[(start + i) % buffer_.size()]);
    }
    return out;
}

void
EventTracer::clear()
{
    head_ = 0;
    count_ = 0;
    dropped_ = 0;
    totalEmitted_ = 0;
    overflowWarned_ = false;
}

void
EventTracer::registerMetrics(MetricRegistry &registry) const
{
    registry.addCallback("trace/emitted_events", [this] {
        return static_cast<double>(totalEmitted_);
    });
    registry.addCallback("trace/dropped_events", [this] {
        return static_cast<double>(dropped_);
    });
}

std::string
EventTracer::toJsonl() const
{
    std::string out;
    for (const TraceEvent &ev : events()) {
        JsonWriter w;
        w.beginObject();
        w.key("t_ns");
        w.value(ev.time);
        w.key("kind");
        w.value(eventKindName(ev.kind));
        w.key("cat");
        w.value(categoryName(eventCategory(ev.kind)));
        if (ev.kind == EventKind::Phase) {
            w.key("name");
            w.value(ev.name ? ev.name : "");
            w.key("dur_ns");
            w.value(ev.value);
        } else {
            w.key("addr");
            w.value(ev.addr);
            w.key("huge");
            w.value(ev.huge);
            w.key("value");
            w.value(ev.value);
        }
        w.endObject();
        out += w.str();
        out += '\n';
    }
    return out;
}

std::string
EventTracer::toChromeTrace() const
{
    std::vector<TraceEvent> evs = events();
    // Stable sort by (track, timestamp) so every track's timeline is
    // monotonic even though phase slices are emitted at scope exit.
    std::stable_sort(evs.begin(), evs.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         const bool pa = a.kind == EventKind::Phase;
                         const bool pb = b.kind == EventKind::Phase;
                         if (pa != pb) {
                             return pa < pb;
                         }
                         return a.time < b.time;
                     });

    JsonWriter w;
    w.beginObject();
    w.key("displayTimeUnit");
    w.value("ms");
    w.key("traceEvents");
    w.beginArray();

    // Perfetto/chrome://tracing label tracks via metadata records;
    // without both process_name and thread_name the UI shows bare
    // pid/tid numbers.
    auto meta = [&w](const char *meta_name, std::uint64_t pid,
                     std::uint64_t tid, const char *name) {
        w.beginObject();
        w.key("name");
        w.value(meta_name);
        w.key("ph");
        w.value("M");
        w.key("pid");
        w.value(pid);
        w.key("tid");
        w.value(tid);
        w.key("args");
        w.beginObject();
        w.key("name");
        w.value(name);
        w.endObject();
        w.endObject();
    };
    meta("process_name", 1, 1, "simulation");
    meta("thread_name", 1, 1, "page lifecycle");
    meta("process_name", 2, 1, "host");
    meta("thread_name", 2, 1, "simulator phases");

    for (const TraceEvent &ev : evs) {
        const bool phase = ev.kind == EventKind::Phase;
        w.beginObject();
        w.key("name");
        w.value(phase ? (ev.name ? ev.name : "phase")
                      : eventKindName(ev.kind));
        w.key("cat");
        w.value(categoryName(eventCategory(ev.kind)));
        w.key("ph");
        w.value(phase ? "X" : "i");
        // Chrome trace timestamps are microseconds (double).
        w.key("ts");
        w.value(static_cast<double>(ev.time) / 1e3);
        if (phase) {
            w.key("dur");
            w.value(static_cast<double>(ev.value) / 1e3);
        } else {
            w.key("s");
            w.value("t");
        }
        w.key("pid");
        w.value(std::uint64_t{phase ? 2u : 1u});
        w.key("tid");
        w.value(std::uint64_t{1});
        w.key("args");
        w.beginObject();
        if (!phase) {
            w.key("addr");
            w.value(ev.addr);
            w.key("huge");
            w.value(ev.huge);
            w.key("value");
            w.value(ev.value);
        }
        w.endObject();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

bool
EventTracer::writeFile(const std::string &path,
                       const std::string &text)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        TSTAT_WARN("cannot write %s", path.c_str());
        return false;
    }
    const std::size_t n =
        std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    if (n != text.size()) {
        TSTAT_WARN("short write to %s", path.c_str());
        return false;
    }
    return true;
}

} // namespace thermostat
