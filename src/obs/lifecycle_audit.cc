#include "obs/lifecycle_audit.hh"

#include "common/logging.hh"
#include "mem/tiered_memory.hh"
#include "sys/migration.hh"

namespace thermostat
{

namespace
{
constexpr std::size_t kMaxMessages = 20;
} // namespace

void
LifecycleAuditor::violation(const std::string &msg)
{
    ++violations_;
    if (messages_.size() < kMaxMessages) {
        messages_.push_back(msg);
    }
}

void
LifecycleAuditor::onEvent(const TraceEvent &ev)
{
    ++eventsSeen_;
    if (ev.kind == EventKind::Phase) {
        return; // host-time track, not part of the lifecycle
    }
    if (ev.time < lastSimTime_) {
        violation(detail::formatString(
            "non-monotonic timestamp: %llu after %llu",
            static_cast<unsigned long long>(ev.time),
            static_cast<unsigned long long>(lastSimTime_)));
    }
    lastSimTime_ = ev.time;

    PageState &st = pages_[ev.addr];
    switch (ev.kind) {
      case EventKind::PageDemoted:
        if (st.inSlow) {
            violation(detail::formatString(
                "double demotion of %#llx without promotion",
                static_cast<unsigned long long>(ev.addr)));
        }
        st.inSlow = true;
        demotedBytes_ += ev.value;
        break;
      case EventKind::PagePromoted:
        if (!st.inSlow) {
            violation(detail::formatString(
                "promotion of %#llx which is not in slow memory",
                static_cast<unsigned long long>(ev.addr)));
        }
        st.inSlow = false;
        promotedBytes_ += ev.value;
        break;
      case EventKind::PagePoisoned:
        if (st.poisoned) {
            violation(detail::formatString(
                "double poison of %#llx",
                static_cast<unsigned long long>(ev.addr)));
        }
        if (ev.huge && !st.inSlow) {
            violation(detail::formatString(
                "huge page %#llx poisoned outside slow memory",
                static_cast<unsigned long long>(ev.addr)));
        }
        st.poisoned = true;
        break;
      case EventKind::PageUnpoisoned:
        if (!st.poisoned) {
            violation(detail::formatString(
                "unpoison of non-poisoned page %#llx",
                static_cast<unsigned long long>(ev.addr)));
        }
        st.poisoned = false;
        break;
      default:
        break; // informational kinds carry no state transitions
    }
}

void
LifecycleAuditor::finish(const MigrationStats &migration,
                         const TierStats &slow_tier)
{
    if (demotedBytes_ != migration.bytesDemoted) {
        violation(detail::formatString(
            "traced demotion bytes %llu != migrator total %llu",
            static_cast<unsigned long long>(demotedBytes_),
            static_cast<unsigned long long>(migration.bytesDemoted)));
    }
    if (promotedBytes_ != migration.bytesPromoted) {
        violation(detail::formatString(
            "traced promotion bytes %llu != migrator total %llu",
            static_cast<unsigned long long>(promotedBytes_),
            static_cast<unsigned long long>(
                migration.bytesPromoted)));
    }
    if (slow_tier.migrationBytesIn != demotedBytes_) {
        violation(detail::formatString(
            "slow tier migration-in %llu != traced demotions %llu",
            static_cast<unsigned long long>(
                slow_tier.migrationBytesIn),
            static_cast<unsigned long long>(demotedBytes_)));
    }
    if (slow_tier.migrationBytesOut != promotedBytes_) {
        violation(detail::formatString(
            "slow tier migration-out %llu != traced promotions %llu",
            static_cast<unsigned long long>(
                slow_tier.migrationBytesOut),
            static_cast<unsigned long long>(promotedBytes_)));
    }
}

} // namespace thermostat
