/**
 * @file
 * Per-epoch flight recorder: a bounded ring of metric rows.
 *
 * Every simulated epoch appends one row of named columns (epoch
 * slowdown, migration deltas, fault counts, sampler tallies, ...),
 * so a run yields a full time-series instead of one end-of-run
 * snapshot -- the raw material for per-tenant SLO accounting and
 * for the adaptive meta-policy's feedback loop (ROADMAP items 1
 * and 5).  The ring is bounded: memory stays O(capacity) however
 * long the run, the newest rows win on wrap, and the drop count is
 * reported so truncation is never silent.
 *
 * Exports are deterministic functions of the row data (no wall
 * clock, no iteration over unordered containers): a fixed seed
 * produces byte-identical JSONL/CSV across runs and regardless of
 * THERMOSTAT_JOBS.
 */

#ifndef THERMOSTAT_OBS_FLIGHT_RECORDER_HH
#define THERMOSTAT_OBS_FLIGHT_RECORDER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace thermostat
{

class MetricRegistry;

/** One recorded epoch. */
struct EpochRow
{
    Ns time = 0; //!< epoch end, measurement time
    std::vector<double> values;
};

class EpochFlightRecorder
{
  public:
    /**
     * @param columns Column names, fixed for the recorder's life;
     *        every append must supply exactly this many values.
     * @param capacity Ring size in rows (>= 1).
     */
    EpochFlightRecorder(std::vector<std::string> columns,
                        std::size_t capacity = 1u << 12);

    const std::vector<std::string> &columns() const
    {
        return columns_;
    }
    std::size_t capacity() const { return capacity_; }
    std::size_t size() const { return rows_.size(); }
    /** Rows lost to ring wrap (oldest-first eviction). */
    std::uint64_t droppedRows() const { return dropped_; }
    std::uint64_t totalAppended() const { return appended_; }

    /** Append one epoch; values.size() must match columns(). */
    void append(Ns time, const std::vector<double> &values);

    /** Retained rows, oldest first. */
    std::vector<EpochRow> rows() const;

    /** Column index by name; -1 when unknown. */
    int columnIndex(const std::string &name) const;

    /**
     * One JSON object per row: {"t_sec": ..., "<col>": ...}.  A
     * trailing meta line reports schema + drop accounting.
     */
    std::string toJsonl() const;

    /** CSV with a `t_sec` column prepended to the schema. */
    std::string toCsv() const;

    /** "flight/rows", "flight/dropped_rows" gauges. */
    void registerMetrics(MetricRegistry &registry) const;

    void clear();

  private:
    std::vector<std::string> columns_;
    std::size_t capacity_;
    std::vector<EpochRow> rows_; //!< ring storage
    std::size_t head_ = 0;       //!< next write position once full
    std::uint64_t appended_ = 0;
    std::uint64_t dropped_ = 0;
};

} // namespace thermostat

#endif // THERMOSTAT_OBS_FLIGHT_RECORDER_HH
