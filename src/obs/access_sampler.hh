/**
 * @file
 * Deterministic PEBS-style access sampling.
 *
 * The AccessSampler taps the timing stream inside Machine::access
 * and keeps a statistically representative view of it: every access
 * is offered, roughly one in `period` is recorded.  Sampling gaps
 * are drawn geometrically from the sampler's own xoshiro stream
 * (seeded from the run seed), so a fixed seed yields a byte-stable
 * sample stream, the hot path pays one decrement-and-branch per
 * access, and the shared workload/simulation RNG streams are never
 * perturbed -- golden runs stay byte-identical with the sampler
 * enabled.
 *
 * What the samples feed:
 *  - per-page (4KB-base) hotness counts in an open-addressing
 *    FlatMap, exportable as a Log2Histogram of per-page weights;
 *  - per-region (2MB-aligned) counts, the granularity Thermostat
 *    places at;
 *  - an optional callback (the TieringPolicy access-feedback hook)
 *    so adaptive policies can consume a sampled view of the real
 *    access stream instead of the synthetic profiling stream
 *    (ROADMAP item 5's sampled-feedback source).
 *
 * This mirrors the paper's Sec 6.1.2 PEBS discussion: a record rate
 * of 1/period with no interrupt cost modeled here (the simulated
 * cost of hardware sampling is modeled separately by
 * CountingMode::Pebs in the profiling stream).
 */

#ifndef THERMOSTAT_OBS_ACCESS_SAMPLER_HH
#define THERMOSTAT_OBS_ACCESS_SAMPLER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/flat_map.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace thermostat
{

class MetricRegistry;

/** One recorded sample of the timing stream. */
struct AccessSample
{
    Addr pageBase = 0; //!< 4KB-aligned virtual page base
    bool huge = false; //!< leaf size at the sampled address
    bool write = false;
    bool slowTier = false;
    Count weight = 0; //!< real accesses this sample represents
};

/** Sampler configuration (SimConfig.sampler). */
struct AccessSamplerConfig
{
    /**
     * Mean accesses per recorded sample; 0 disables the sampler
     * entirely (the Machine tap is never installed).
     */
    Count period = 64;

    /** Salt mixed into the run seed for the sampler's own stream. */
    std::uint64_t seedSalt = 0x5a3b1e5ULL;

    /**
     * Keep the raw sample records (for export/tests) in addition to
     * the aggregate tables.  Bounded by maxRecords.
     */
    bool keepRecords = false;

    /** Raw-record cap; older records are dropped FIFO. */
    std::size_t maxRecords = 1u << 16;
};

/**
 * The sampler.  Not thread-safe: one instance per Simulation, same
 * as every other per-run component.
 */
class AccessSampler
{
  public:
    using SampleHook = std::function<void(const AccessSample &)>;

    AccessSampler(const AccessSamplerConfig &config,
                  std::uint64_t run_seed);

    bool enabled() const { return config_.period != 0; }
    Count period() const { return config_.period; }

    /**
     * Hot-path tap: decrement the geometric gap; record when it
     * expires.  Inline so the common (skip) case is one predictable
     * branch.
     */
    void
    onAccess(Addr page_base, bool huge, bool write, bool slow_tier,
             Count weight)
    {
        ++offered_;
        if (--gap_ > 0) {
            return;
        }
        record({page_base, huge, write, slow_tier, weight});
    }

    /** Sampled-feedback consumer (e.g. the policy feedback shim). */
    void setHook(SampleHook hook) { hook_ = std::move(hook); }

    // -- Aggregate views -------------------------------------------------

    std::uint64_t offered() const { return offered_; }
    std::uint64_t sampled() const { return sampled_; }
    std::uint64_t sampledWrites() const { return sampledWrites_; }
    std::uint64_t sampledSlow() const { return sampledSlow_; }

    /** Distinct 4KB pages observed. */
    std::size_t pagesSeen() const { return pageWeight_.size(); }
    /** Distinct 2MB regions observed. */
    std::size_t regionsSeen() const { return regionWeight_.size(); }

    /** Sampled weight attributed to one 4KB page base. */
    std::uint64_t pageWeight(Addr page_base) const;
    /** Sampled weight attributed to one 2MB-aligned region. */
    std::uint64_t regionWeight(Addr region_base) const;

    /**
     * Histogram of per-page sampled weights: the hotness skew of
     * everything observed so far (one entry per distinct page).
     */
    Log2Histogram pageHotnessHistogram() const;
    /** Same at 2MB-region granularity. */
    Log2Histogram regionHotnessHistogram() const;

    /** Raw records, oldest first (empty unless keepRecords). */
    std::vector<AccessSample> records() const;
    std::uint64_t recordsDropped() const { return recordsDropped_; }

    /**
     * Deterministic digest of the whole sample stream (order
     * sensitive); two runs with the same seed must agree.
     */
    std::uint64_t streamDigest() const { return digest_; }

    /** Top-N hottest regions by sampled weight (ties by address). */
    struct RegionRank
    {
        Addr base = 0;
        std::uint64_t weight = 0;
    };
    std::vector<RegionRank> hottestRegions(std::size_t n) const;

    /** Counters under "<prefix>.": offered/sampled/pages/regions. */
    void registerMetrics(MetricRegistry &registry,
                         const std::string &prefix) const;

    /** Drop all aggregates and re-arm the gap (epoch reuse). */
    void reset();

  private:
    void record(const AccessSample &sample);

    /** Draw the next geometric inter-sample gap (>= 1). */
    std::uint64_t nextGap();

    AccessSamplerConfig config_;
    Rng rng_;
    std::uint64_t gap_ = 1;

    std::uint64_t offered_ = 0;
    std::uint64_t sampled_ = 0;
    std::uint64_t sampledWrites_ = 0;
    std::uint64_t sampledSlow_ = 0;
    std::uint64_t digest_ = 0x9e3779b97f4a7c15ULL;

    FlatMap<Addr, std::uint64_t> pageWeight_;
    FlatMap<Addr, std::uint64_t> regionWeight_;

    std::vector<AccessSample> records_;
    std::size_t recordHead_ = 0; //!< FIFO start when ring is full
    std::uint64_t recordsDropped_ = 0;

    SampleHook hook_;
};

} // namespace thermostat

#endif // THERMOSTAT_OBS_ACCESS_SAMPLER_HH
