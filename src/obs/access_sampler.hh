/**
 * @file
 * Deterministic PEBS-style access sampling.
 *
 * The AccessSampler taps the timing stream inside Machine::access
 * and keeps a statistically representative view of it: every access
 * is offered, roughly one in `period` is recorded.  Sampling gaps
 * are drawn geometrically from the sampler's own xoshiro stream
 * (seeded from the run seed), so a fixed seed yields a byte-stable
 * sample stream, the hot path pays one decrement-and-branch per
 * access, and the shared workload/simulation RNG streams are never
 * perturbed -- golden runs stay byte-identical with the sampler
 * enabled.
 *
 * What the samples feed:
 *  - per-page (4KB-base) hotness counts in an open-addressing
 *    FlatMap, exportable as a Log2Histogram of per-page weights;
 *  - per-region (2MB-aligned) counts, the granularity Thermostat
 *    places at;
 *  - an optional callback (the TieringPolicy access-feedback hook)
 *    so adaptive policies can consume a sampled view of the real
 *    access stream instead of the synthetic profiling stream
 *    (ROADMAP item 5's sampled-feedback source).
 *
 * This mirrors the paper's Sec 6.1.2 PEBS discussion: a record rate
 * of 1/period with no interrupt cost modeled here (the simulated
 * cost of hardware sampling is modeled separately by
 * CountingMode::Pebs in the profiling stream).
 */

#ifndef THERMOSTAT_OBS_ACCESS_SAMPLER_HH
#define THERMOSTAT_OBS_ACCESS_SAMPLER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include <array>

#include "common/page_counters.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace thermostat
{

class MetricRegistry;

/** One recorded sample of the timing stream. */
struct AccessSample
{
    Addr pageBase = 0; //!< 4KB-aligned virtual page base
    bool huge = false; //!< leaf size at the sampled address
    bool write = false;
    bool slowTier = false;
    Count weight = 0; //!< real accesses this sample represents
};

/** Sampler configuration (SimConfig.sampler). */
struct AccessSamplerConfig
{
    /**
     * Mean accesses per recorded sample; 0 disables the sampler
     * entirely (the Machine tap is never installed).
     */
    Count period = 64;

    /** Salt mixed into the run seed for the sampler's own stream. */
    std::uint64_t seedSalt = 0x5a3b1e5ULL;

    /**
     * Keep the raw sample records (for export/tests) in addition to
     * the aggregate tables.  Bounded by maxRecords per lane.
     */
    bool keepRecords = false;

    /** Raw-record cap per lane; older records are dropped FIFO. */
    std::size_t maxRecords = 1u << 16;
};

/**
 * The sampler.  One instance per Simulation; internally sharded by
 * machine lane (laneOf of the sampled page), so each lane owns its
 * own xoshiro gap stream, counters, SoA weight shards and record
 * ring.  Concurrent onAccess calls are safe for *distinct lanes*
 * (which is how the sharded epoch pipeline drives it); the per-lane
 * sample streams -- and therefore every merged view -- depend only
 * on the lane split, not on the worker count.  The feedback hook is
 * the exception: when installed, the caller must drive the sampler
 * serially (Simulation drops to the serial timing path).
 */
class AccessSampler
{
  public:
    using SampleHook = std::function<void(const AccessSample &)>;

    AccessSampler(const AccessSamplerConfig &config,
                  std::uint64_t run_seed);

    bool enabled() const { return config_.period != 0; }
    Count period() const { return config_.period; }

    /**
     * Hot-path tap: decrement the geometric gap; record when it
     * expires.  Inline so the common (skip) case is one predictable
     * branch.
     */
    void
    onAccess(Addr page_base, bool huge, bool write, bool slow_tier,
             Count weight)
    {
        LaneState &lane = lanes_[laneOf(page_base)];
        ++lane.offered;
        if (--lane.gap > 0) {
            return;
        }
        record(lane, {page_base, huge, write, slow_tier, weight});
    }

    /** Sampled-feedback consumer (e.g. the policy feedback shim). */
    void setHook(SampleHook hook) { hook_ = std::move(hook); }

    /** Whether a feedback hook is installed (forces serial driving). */
    bool hasHook() const { return static_cast<bool>(hook_); }

    // -- Aggregate views -------------------------------------------------

    std::uint64_t offered() const;
    std::uint64_t sampled() const;
    std::uint64_t sampledWrites() const;
    std::uint64_t sampledSlow() const;

    /** Distinct 4KB pages observed. */
    std::size_t pagesSeen() const;
    /** Distinct 2MB regions observed. */
    std::size_t regionsSeen() const;

    /** Sampled weight attributed to one 4KB page base. */
    std::uint64_t pageWeight(Addr page_base) const;
    /** Sampled weight attributed to one 2MB-aligned region. */
    std::uint64_t regionWeight(Addr region_base) const;

    /**
     * Histogram of per-page sampled weights: the hotness skew of
     * everything observed so far (one entry per distinct page).
     */
    Log2Histogram pageHotnessHistogram() const;
    /** Same at 2MB-region granularity. */
    Log2Histogram regionHotnessHistogram() const;

    /**
     * Raw records, lane-major, oldest first within each lane (empty
     * unless keepRecords).
     */
    std::vector<AccessSample> records() const;
    std::uint64_t recordsDropped() const;

    /**
     * Deterministic digest of the whole sample stream: each lane
     * keeps an order-sensitive rolling digest of its samples, and
     * the lane digests are folded in lane order.  Two runs with the
     * same seed must agree, for any worker count.
     */
    std::uint64_t streamDigest() const;

    /** Top-N hottest regions by sampled weight (ties by address). */
    struct RegionRank
    {
        Addr base = 0;
        std::uint64_t weight = 0;
    };
    std::vector<RegionRank> hottestRegions(std::size_t n) const;

    /** Counters under "<prefix>.": offered/sampled/pages/regions. */
    void registerMetrics(MetricRegistry &registry,
                         const std::string &prefix) const;

    /** Drop all aggregates and re-arm the gap (epoch reuse). */
    void reset();

  private:
    /** One machine lane's sampling state (see class comment). */
    struct LaneState
    {
        Rng rng;
        std::uint64_t gap = 1;          // shard: lane-local
        std::uint64_t offered = 0;      // shard: lane-local
        std::uint64_t sampled = 0;      // shard: lane-local
        std::uint64_t sampledWrites = 0; // shard: lane-local
        std::uint64_t sampledSlow = 0;  // shard: lane-local
        std::uint64_t digest = 0x9e3779b97f4a7c15ULL; // shard: lane-local
        PageCounterShard pageWeight;
        PageCounterShard regionWeight;
        std::vector<AccessSample> records;
        std::size_t recordHead = 0;     // shard: lane-local
        std::uint64_t recordsDropped = 0; // shard: lane-local
    };

    void record(LaneState &lane, const AccessSample &sample);

    /** Draw @p lane's next geometric inter-sample gap (>= 1). */
    std::uint64_t nextGap(LaneState &lane);

    AccessSamplerConfig config_; // shard: read-only
    std::array<LaneState, kMachineLanes> lanes_;
    SampleHook hook_; // shard: serial-only
};

} // namespace thermostat

#endif // THERMOSTAT_OBS_ACCESS_SAMPLER_HH
