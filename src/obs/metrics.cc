#include "obs/metrics.hh"

#include <sstream>

#include "common/logging.hh"
#include "obs/json.hh"

namespace thermostat
{

void
MetricRegistry::checkName(const std::string &name) const
{
    TSTAT_ASSERT(!name.empty(), "metric with empty name");
    if (entries_.count(name)) {
        TSTAT_PANIC("metric '%s' registered twice", name.c_str());
    }
    // A name may not be an interior node of another name (and vice
    // versa), or the hierarchical dump would need a key to be both a
    // leaf and an object.
    const std::string prefix = name + ".";
    const auto after = entries_.lower_bound(prefix);
    if (after != entries_.end() &&
        after->first.compare(0, prefix.size(), prefix) == 0) {
        TSTAT_PANIC("metric '%s' conflicts with '%s'", name.c_str(),
                    after->first.c_str());
    }
    for (std::size_t dot = name.find('.'); dot != std::string::npos;
         dot = name.find('.', dot + 1)) {
        if (entries_.count(name.substr(0, dot))) {
            TSTAT_PANIC("metric '%s' conflicts with '%s'",
                        name.c_str(), name.substr(0, dot).c_str());
        }
    }
}

Counter &
MetricRegistry::counter(const std::string &name)
{
    checkName(name);
    Entry &e = entries_[name];
    e.counter = std::make_unique<Counter>();
    return *e.counter;
}

Gauge &
MetricRegistry::gauge(const std::string &name)
{
    checkName(name);
    Entry &e = entries_[name];
    e.gauge = std::make_unique<Gauge>();
    return *e.gauge;
}

Log2Histogram &
MetricRegistry::histogram(const std::string &name)
{
    checkName(name);
    Entry &e = entries_[name];
    e.histogram = std::make_unique<Log2Histogram>();
    return *e.histogram;
}

void
MetricRegistry::addCallback(const std::string &name, Callback fn)
{
    TSTAT_ASSERT(fn != nullptr, "null metric callback for '%s'",
                 name.c_str());
    checkName(name);
    entries_[name].callback = std::move(fn);
}

bool
MetricRegistry::contains(const std::string &name) const
{
    return entries_.count(name) != 0;
}

std::vector<MetricSample>
MetricRegistry::snapshot() const
{
    std::vector<MetricSample> out;
    out.reserve(entries_.size());
    for (const auto &[name, e] : entries_) {
        if (e.counter) {
            out.push_back(
                {name, static_cast<double>(e.counter->value())});
        } else if (e.gauge) {
            out.push_back({name, e.gauge->value()});
        } else if (e.histogram) {
            // Keep the flattened view name-sorted: "p50" < "p99" <
            // "samples".
            out.push_back(
                {name + ".p50",
                 static_cast<double>(e.histogram->percentile(0.5))});
            out.push_back(
                {name + ".p99",
                 static_cast<double>(e.histogram->percentile(0.99))});
            out.push_back(
                {name + ".samples",
                 static_cast<double>(e.histogram->totalSamples())});
        } else {
            out.push_back({name, e.callback()});
        }
    }
    return out;
}

void
MetricRegistry::reset()
{
    for (auto &[name, e] : entries_) {
        (void)name;
        if (e.counter) {
            e.counter->reset();
        } else if (e.gauge) {
            e.gauge->reset();
        } else if (e.histogram) {
            e.histogram->reset();
        }
    }
}

std::string
MetricRegistry::dumpText() const
{
    std::ostringstream os;
    for (const MetricSample &s : snapshot()) {
        os << s.name << " " << jsonNumber(s.value) << "\n";
    }
    return os.str();
}

namespace
{

/** Prometheus metric name: [a-z0-9_] with a namespace prefix. */
std::string
promName(const std::string &name)
{
    std::string out = "thermostat_";
    for (const char c : name) {
        if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
            c == '_') {
            out += c;
        } else if (c >= 'A' && c <= 'Z') {
            out += static_cast<char>(c - 'A' + 'a');
        } else {
            out += '_';
        }
    }
    return out;
}

/** Prometheus sample value; exposition uses decimal or sci form. */
std::string
promNumber(double value)
{
    return jsonNumber(value);
}

} // namespace

std::string
MetricRegistry::dumpPrometheus() const
{
    std::ostringstream os;
    for (const auto &[name, e] : entries_) {
        const std::string prom = promName(name);
        if (e.counter) {
            os << "# TYPE " << prom << " counter\n";
            os << prom << " "
               << promNumber(static_cast<double>(e.counter->value()))
               << "\n";
        } else if (e.gauge) {
            os << "# TYPE " << prom << " gauge\n";
            os << prom << " " << promNumber(e.gauge->value())
               << "\n";
        } else if (e.histogram) {
            os << "# TYPE " << prom << " summary\n";
            os << prom << "{quantile=\"0.5\"} "
               << promNumber(static_cast<double>(
                      e.histogram->percentile(0.5)))
               << "\n";
            os << prom << "{quantile=\"0.99\"} "
               << promNumber(static_cast<double>(
                      e.histogram->percentile(0.99)))
               << "\n";
            os << prom << "_count "
               << promNumber(static_cast<double>(
                      e.histogram->totalSamples()))
               << "\n";
        } else {
            os << "# TYPE " << prom << " gauge\n";
            os << prom << " " << promNumber(e.callback()) << "\n";
        }
    }
    return os.str();
}

std::string
MetricRegistry::dumpJson() const
{
    // The snapshot is name-sorted, so sibling leaves of one subtree
    // are adjacent: walk the list keeping a stack of open objects
    // equal to the current name's ancestor path.
    const std::vector<MetricSample> flat = snapshot();
    JsonWriter w;
    w.beginObject();
    std::vector<std::string> stack;

    auto split = [](const std::string &name) {
        std::vector<std::string> parts;
        std::size_t start = 0;
        for (std::size_t dot = name.find('.');
             dot != std::string::npos; dot = name.find('.', start)) {
            parts.push_back(name.substr(start, dot - start));
            start = dot + 1;
        }
        parts.push_back(name.substr(start));
        return parts;
    };

    for (const MetricSample &s : flat) {
        const std::vector<std::string> parts = split(s.name);
        // Pop to the common ancestor.
        std::size_t common = 0;
        while (common < stack.size() && common + 1 < parts.size() &&
               stack[common] == parts[common]) {
            ++common;
        }
        while (stack.size() > common) {
            w.endObject();
            stack.pop_back();
        }
        // Open intermediate objects down to the leaf's parent.
        for (std::size_t i = stack.size(); i + 1 < parts.size(); ++i) {
            w.key(parts[i]);
            w.beginObject();
            stack.push_back(parts[i]);
        }
        w.key(parts.back());
        w.value(s.value);
    }
    while (!stack.empty()) {
        w.endObject();
        stack.pop_back();
    }
    w.endObject();
    return w.str();
}

} // namespace thermostat
