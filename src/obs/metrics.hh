/**
 * @file
 * Unified metric registry (paper-agnostic observability layer).
 *
 * Every subsystem registers its counters under a hierarchical dotted
 * name ("machine.tlb.l1.hits") instead of hand-plumbing bespoke
 * structs through SimResult.  Four metric flavours:
 *
 *  - Counter:  owned monotonically increasing integer, cheap inline
 *              increment on hot paths.
 *  - Gauge:    owned settable double (levels, fractions).
 *  - Callback: a lazily evaluated double read from an existing
 *              component at snapshot time; this is how the legacy
 *              *Stats structs are exposed without restructuring the
 *              components that own them.
 *  - Histogram: a Log2Histogram; snapshots expand it into
 *              .samples/.p50/.p99 leaves.
 *
 * Names form a tree: registering both "a.b" and "a.b.c" is rejected
 * so the hierarchical JSON dump is always well-formed.  Inspired by
 * gem5's stats package (see common/stats.hh) and ChampSim's
 * per-component counter dumps.
 */

#ifndef THERMOSTAT_OBS_METRICS_HH
#define THERMOSTAT_OBS_METRICS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace thermostat
{

/** Owned monotonically increasing integer metric. */
class Counter
{
  public:
    void inc(std::uint64_t delta = 1) { value_ += delta; }
    Counter &operator++() { ++value_; return *this; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Owned settable scalar metric. */
class Gauge
{
  public:
    void set(double v) { value_ = v; }
    void add(double delta) { value_ += delta; }
    double value() const { return value_; }
    void reset() { value_ = 0.0; }

  private:
    double value_ = 0.0;
};

/** One flattened (name, value) pair produced by a snapshot. */
struct MetricSample
{
    std::string name;
    double value;
};

/**
 * The registry: owns Counters/Gauges/Histograms, references
 * callbacks, snapshots and dumps the lot.  Registration of a
 * duplicate or tree-conflicting name panics (a wiring bug).
 */
class MetricRegistry
{
  public:
    using Callback = std::function<double()>;

    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Log2Histogram &histogram(const std::string &name);
    void addCallback(const std::string &name, Callback fn);

    bool contains(const std::string &name) const;
    std::size_t size() const { return entries_.size(); }

    /**
     * Flattened name-sorted view of every metric's current value.
     * Histograms expand to <name>.samples/.p50/.p99.
     */
    std::vector<MetricSample> snapshot() const;

    /** Reset owned metrics; callback-backed metrics are untouched. */
    void reset();

    /** "name value" lines, name-sorted (for console dumps/tests). */
    std::string dumpText() const;

    /** Hierarchical JSON object keyed by dotted-name components. */
    std::string dumpJson() const;

    /**
     * Prometheus text exposition format (version 0.0.4): one
     * `# TYPE`-annotated family per metric, names sanitized to
     * [a-z0-9_] with a "thermostat_" prefix.  Counters export as
     * `counter`, gauges/callbacks as `gauge`, histograms as
     * `summary` (quantile-labeled p50/p99 plus `_count`), so any
     * run's metrics can be scraped or diffed with stock tooling.
     */
    std::string dumpPrometheus() const;

  private:
    struct Entry
    {
        // Exactly one is set.
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Log2Histogram> histogram;
        Callback callback;
    };

    /** Panics if @p name collides with an existing entry. */
    void checkName(const std::string &name) const;

    std::map<std::string, Entry> entries_;
};

} // namespace thermostat

#endif // THERMOSTAT_OBS_METRICS_HH
