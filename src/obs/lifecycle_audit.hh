/**
 * @file
 * Lifecycle auditor: turns the event trace into correctness tooling.
 *
 * Subscribed as the EventTracer's sink, it replays the page
 * lifecycle state machine and flags protocol violations:
 *
 *  - a page demoted twice with no intervening promotion;
 *  - a promotion of a page that is not in slow memory;
 *  - poisoning an already-poisoned page / unpoisoning a
 *    non-poisoned one;
 *  - a *huge* page poisoned while resident in fast memory (the
 *    design only poisons whole 2MB pages once they live in slow
 *    memory for mis-classification monitoring, Sec 3.5; profiling
 *    poison is applied to 4KB mappings only);
 *  - non-monotonic simulated timestamps.
 *
 * finish() cross-checks the stream's migration byte totals against
 * the migrator's and the slow tier's authoritative accounting, so a
 * stats-plumbing regression in either surfaces as an audit failure.
 */

#ifndef THERMOSTAT_OBS_LIFECYCLE_AUDIT_HH
#define THERMOSTAT_OBS_LIFECYCLE_AUDIT_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "obs/event_trace.hh"

namespace thermostat
{

struct MigrationStats;
struct TierStats;

class LifecycleAuditor
{
  public:
    /** Feed one event (wire via EventTracer::setSink). */
    void onEvent(const TraceEvent &event);

    /**
     * End-of-run cross-checks against the authoritative accounting:
     * traced demotion/promotion bytes must equal the migrator's
     * totals and the slow tier's migration traffic.
     */
    void finish(const MigrationStats &migration,
                const TierStats &slow_tier);

    Count violations() const { return violations_; }
    bool ok() const { return violations_ == 0; }

    /** First few violation descriptions (capped). */
    const std::vector<std::string> &messages() const
    {
        return messages_;
    }

    std::uint64_t demotedBytes() const { return demotedBytes_; }
    std::uint64_t promotedBytes() const { return promotedBytes_; }
    std::uint64_t eventsSeen() const { return eventsSeen_; }

  private:
    struct PageState
    {
        bool inSlow = false;
        bool poisoned = false;
    };

    void violation(const std::string &msg);

    // Audit sink: fed per lifecycle *event* (sample/migrate/etc.),
    // not per memory access.  lint:allow(hot-path-unordered-map)
    std::unordered_map<Addr, PageState> pages_;
    std::uint64_t demotedBytes_ = 0;
    std::uint64_t promotedBytes_ = 0;
    std::uint64_t eventsSeen_ = 0;
    Ns lastSimTime_ = 0;
    Count violations_ = 0;
    std::vector<std::string> messages_;
};

} // namespace thermostat

#endif // THERMOSTAT_OBS_LIFECYCLE_AUDIT_HH
