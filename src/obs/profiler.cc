#include "obs/profiler.hh"

#include <cstdio>

#include "common/logging.hh"
#include "obs/json.hh"

namespace thermostat
{

Profiler::Profiler(bool enabled)
    : enabled_(enabled), epoch_(std::chrono::steady_clock::now())
{
    Node root;
    root.name = "run";
    nodes_.push_back(std::move(root));
}

Ns
Profiler::now() const
{
    return static_cast<Ns>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
}

int
Profiler::findOrAddChild(int parent, const char *name)
{
    for (const int child : nodes_[parent].children) {
        if (nodes_[child].name == name) {
            return child;
        }
    }
    const int index = static_cast<int>(nodes_.size());
    Node node;
    node.name = name;
    node.parent = parent;
    nodes_.push_back(std::move(node));
    nodes_[parent].children.push_back(index);
    return index;
}

int
Profiler::enter(const char *name)
{
    const int node = findOrAddChild(current_, name);
    current_ = node;
    return node;
}

void
Profiler::leave(int node, Ns elapsed)
{
    TSTAT_ASSERT(node > 0 &&
                     node < static_cast<int>(nodes_.size()),
                 "profiler leave of unknown node %d", node);
    TSTAT_ASSERT(current_ == node,
                 "profiler scopes must nest (leaving %s while in %s)",
                 nodes_[node].name.c_str(),
                 nodes_[current_].name.c_str());
    ++nodes_[node].count;
    nodes_[node].totalNs += elapsed;
    current_ = nodes_[node].parent;
    if (current_ == 0) {
        // The root is never explicitly timed; folding top-level
        // intervals in keeps children-sum <= total true at every
        // node, the tree invariant the tests pin.
        nodes_[0].totalNs += elapsed;
    }
}

Ns
Profiler::childrenTotal(const Node &node) const
{
    Ns total = 0;
    for (const int child : node.children) {
        total += nodes_[child].totalNs;
    }
    return total;
}

Ns
Profiler::selfNs(const Node &node) const
{
    const Ns children = childrenTotal(node);
    return node.totalNs > children ? node.totalNs - children : 0;
}

void
Profiler::writeNode(int index, std::string &out, int depth) const
{
    const Node &node = nodes_[static_cast<std::size_t>(index)];
    // The root has no timed interval of its own; report it as the
    // sum of its children so percentages have a denominator.
    const Ns total =
        index == 0 ? childrenTotal(node) : node.totalNs;
    JsonWriter w;
    w.beginObject();
    w.key("name");
    w.value(node.name);
    w.key("count");
    w.value(node.count);
    w.key("total_ns");
    w.value(static_cast<std::uint64_t>(total));
    w.key("self_ns");
    w.value(static_cast<std::uint64_t>(
        index == 0 ? 0 : selfNs(node)));
    w.endObject();
    // Splice children into the object by rewriting the closing
    // brace; JsonWriter has no reentrant nesting across calls.
    std::string rendered = w.str();
    rendered.pop_back(); // '}'
    out += rendered;
    out += ",\"children\":[";
    bool first = true;
    for (const int child : node.children) {
        if (!first) {
            out += ',';
        }
        first = false;
        writeNode(child, out, depth + 1);
    }
    out += "]}";
}

std::string
Profiler::toJson() const
{
    std::string out;
    writeNode(0, out, 0);
    return out;
}

std::string
Profiler::toText() const
{
    std::string out;
    // Iterative preorder with explicit depth, children in
    // first-entry order.
    std::vector<std::pair<int, int>> stack{{0, 0}};
    while (!stack.empty()) {
        const auto [index, depth] = stack.back();
        stack.pop_back();
        const Node &node = nodes_[static_cast<std::size_t>(index)];
        const Ns total =
            index == 0 ? childrenTotal(node) : node.totalNs;
        char line[160];
        std::snprintf(line, sizeof(line),
                      "%*s%-24s %10llu calls %12.3f ms total "
                      "%12.3f ms self\n",
                      depth * 2, "", node.name.c_str(),
                      static_cast<unsigned long long>(node.count),
                      static_cast<double>(total) / 1e6,
                      static_cast<double>(
                          index == 0 ? 0 : selfNs(node)) /
                          1e6);
        out += line;
        for (auto it = node.children.rbegin();
             it != node.children.rend(); ++it) {
            stack.push_back({*it, depth + 1});
        }
    }
    return out;
}

void
Profiler::clear()
{
    nodes_.clear();
    current_ = 0;
    Node root;
    root.name = "run";
    nodes_.push_back(std::move(root));
}

} // namespace thermostat
