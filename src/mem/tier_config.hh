/**
 * @file
 * Configuration of a physical memory tier.
 *
 * The paper's system model (Sec 1, 2.1): conventional DRAM with
 * 50-100ns access latency, and a denser, cheaper technology (e.g.
 * Intel/Micron 3D XPoint) with 400ns to several microseconds of
 * latency at roughly 1/3 to 1/5 the cost per bit.
 */

#ifndef THERMOSTAT_MEM_TIER_CONFIG_HH
#define THERMOSTAT_MEM_TIER_CONFIG_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace thermostat
{

/** Static parameters of one memory tier. */
struct TierConfig
{
    std::string name = "dram";

    /** Usable capacity in bytes (must be 2MB aligned). */
    std::uint64_t capacityBytes = 16ULL << 30;

    /** Uncontended read access latency. */
    Ns readLatency = 80;

    /** Uncontended write access latency. */
    Ns writeLatency = 80;

    /** Peak sustainable bandwidth in bytes/sec. */
    double bandwidthBytesPerSec = 50.0e9;

    /** Relative cost per byte (DRAM == 1.0). */
    double relativeCostPerByte = 1.0;

    /**
     * Write endurance per 4KB frame before wear-out (0 = unlimited,
     * as for DRAM).  Used by the device-wear analysis (paper Sec 6).
     */
    std::uint64_t writeEndurance = 0;

    /** DRAM-like tier used throughout the evaluation. */
    static TierConfig dram(std::uint64_t capacity_bytes);

    /**
     * Near-future slow memory: 1us access latency (the paper's
     * BadgerTrap-emulated operating point), 1/3 DRAM cost, finite
     * endurance representative of PCM-class devices.
     */
    static TierConfig slow(std::uint64_t capacity_bytes);
};

} // namespace thermostat

#endif // THERMOSTAT_MEM_TIER_CONFIG_HH
