/**
 * @file
 * Physical frame allocator for one memory tier.
 *
 * Frames are managed in 2MB blocks (512 contiguous, aligned 4KB
 * frames) so that huge pages can always be backed by a naturally
 * aligned block, mirroring how Linux's buddy allocator serves THP.
 * A 2MB block can be broken to serve 4KB allocations; fully freed
 * blocks coalesce back to the huge free list.
 */

#ifndef THERMOSTAT_MEM_FRAME_ALLOCATOR_HH
#define THERMOSTAT_MEM_FRAME_ALLOCATOR_HH

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.hh"

namespace thermostat
{

/**
 * Allocates 4KB and 2MB frames from a contiguous PFN range
 * [basePfn, basePfn + frameCount).
 */
class FrameAllocator
{
  public:
    /**
     * @param base_pfn First 4KB frame number owned by this allocator;
     *                 must be 2MB aligned (multiple of 512).
     * @param frame_count Number of 4KB frames; multiple of 512.
     */
    FrameAllocator(Pfn base_pfn, std::uint64_t frame_count);

    /** Allocate one naturally aligned 2MB block; nullopt when full. */
    std::optional<Pfn> allocHuge();

    /** Allocate one 4KB frame; breaks a huge block if needed. */
    std::optional<Pfn> allocBase();

    /** Return a 2MB block allocated with allocHuge(). */
    void freeHuge(Pfn base);

    /** Return a 4KB frame allocated with allocBase(). */
    void freeBase(Pfn pfn);

    /**
     * Convert a block allocated with allocHuge() into 512
     * individually-allocated 4KB frames (so they can be freed one by
     * one).  Mirrors what the buddy allocator does when a THP is
     * split.  Occupancy is unchanged.
     */
    void breakAllocatedHuge(Pfn base);

    /**
     * Inverse of breakAllocatedHuge(): requires all 512 frames of
     * the block to still be allocated.
     * @return false if any frame of the block has been freed.
     */
    bool reformAllocatedHuge(Pfn base);

    /**
     * Permanently retire a 2MB block (device wear-out).  Free frames
     * leave service immediately; frames still allocated keep working
     * until freed, at which point they retire instead of returning
     * to a free list.  Retirement is irreversible.
     * @return false when @p base is not a block base of this
     *         allocator or the block is already retired.
     */
    bool retireBlock(Pfn base);

    /** Whether the 2MB block containing @p pfn has been retired. */
    bool blockRetired(Pfn pfn) const;

    /** 4KB frames permanently removed from service so far (frames
     *  of retired blocks still awaiting free are not yet counted:
     *  allocated + free + retired == frameCount at all times). */
    std::uint64_t retiredFrames() const { return retiredFrames_; }

    /**
     * Block bases that are allocated (whole or broken) and not yet
     * retired -- the candidate set for wear-driven retirement.
     */
    std::vector<Pfn> allocatedBlockBases() const;

    Pfn basePfn() const { return basePfn_; }
    std::uint64_t frameCount() const { return frameCount_; }

    /** Whether @p pfn lies in this allocator's range. */
    bool owns(Pfn pfn) const;

    /** Currently allocated 4KB-frame count (huge blocks count 512). */
    std::uint64_t allocatedFrames() const { return allocatedFrames_; }

    /** Free 4KB-frame count. */
    std::uint64_t freeFrames() const;

    /** Fraction of capacity currently allocated, in [0, 1]. */
    double utilization() const;

  private:
    struct BrokenBlock
    {
        std::vector<Pfn> freeList; //!< free 4KB frames in the block
        unsigned allocated = 0;    //!< allocated frames in the block
    };

    Pfn basePfn_;
    std::uint64_t frameCount_;
    std::uint64_t allocatedFrames_ = 0;

    /** Free (whole) 2MB blocks, by base PFN; LIFO for locality. */
    std::vector<Pfn> freeHugeBlocks_;

    /** Blocks currently broken into 4KB frames, by block base PFN. */
    // Touched only when a wear-retirement fault fires, never on the
    // per-access path.  lint:allow(hot-path-unordered-map)
    std::unordered_map<Pfn, BrokenBlock> brokenBlocks_;

    /** Bases of retired blocks (including pending drains). */
    std::unordered_set<Pfn> retiredBlocks_;

    std::uint64_t retiredFrames_ = 0;
};

} // namespace thermostat

#endif // THERMOSTAT_MEM_FRAME_ALLOCATOR_HH
