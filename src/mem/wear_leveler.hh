/**
 * @file
 * Start-Gap wear leveling (Qureshi et al., MICRO'09).
 *
 * The paper's device-wear discussion (Sec 6) points at Start-Gap as
 * the standard remedy for write-endurance-limited slow memory.  This
 * is a faithful standalone implementation: an algebraic mapping from
 * logical to physical lines using one gap line that rotates through
 * the region every `gapMovePeriod` writes, plus a static randomized
 * start offset.
 */

#ifndef THERMOSTAT_MEM_WEAR_LEVELER_HH
#define THERMOSTAT_MEM_WEAR_LEVELER_HH

#include <cstdint>
#include <string>

#include "common/permutation.hh"
#include "common/types.hh"

namespace thermostat
{

class MetricRegistry;

/**
 * Start-Gap remapper over a region of @p lineCount lines (the line is
 * the wear-leveling granule; we use 4KB frames).  Physical line
 * count is lineCount + 1 (the extra gap line).
 */
class StartGapWearLeveler
{
  public:
    /**
     * @param line_count Logical lines in the region.
     * @param gap_move_period Writes between gap movements (Qureshi
     *        et al. use 100).
     * @param seed Seeds the static address-space randomization (a
     *        Feistel permutation; a plain shift would preserve the
     *        adjacency of hot lines and defeat the leveling).
     */
    StartGapWearLeveler(std::uint64_t line_count,
                        std::uint64_t gap_move_period = 100,
                        std::uint64_t seed = 0);

    /** Translate a logical line to its current physical line. */
    std::uint64_t remap(std::uint64_t logical) const;

    /** Record one write; may advance the gap. */
    void recordWrite();

    std::uint64_t gapPosition() const { return gap_; }
    std::uint64_t startPosition() const { return start_; }
    std::uint64_t gapMoves() const { return gapMoves_; }
    std::uint64_t lineCount() const { return lineCount_; }

    /**
     * Number of complete rotations of the gap through the region;
     * after each rotation every line has shifted by one, spreading
     * writes across all physical lines.
     */
    std::uint64_t rotations() const { return rotations_; }

    /** Expose the leveler state under "<prefix>." in @p registry. */
    void registerMetrics(MetricRegistry &registry,
                         const std::string &prefix) const;

  private:
    std::uint64_t lineCount_;
    std::uint64_t gapMovePeriod_;
    FixedPermutation randomize_;
    std::uint64_t start_ = 0;
    std::uint64_t gap_;
    std::uint64_t writesSinceMove_ = 0;
    std::uint64_t gapMoves_ = 0;
    std::uint64_t rotations_ = 0;
};

} // namespace thermostat

#endif // THERMOSTAT_MEM_WEAR_LEVELER_HH
