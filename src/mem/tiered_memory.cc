#include "mem/tiered_memory.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "fault/fault_injector.hh"
#include "obs/event_trace.hh"
#include "obs/metrics.hh"

namespace thermostat
{

TierConfig
TierConfig::dram(std::uint64_t capacity_bytes)
{
    TierConfig cfg;
    cfg.name = "dram";
    cfg.capacityBytes = capacity_bytes;
    cfg.readLatency = 80;
    cfg.writeLatency = 80;
    cfg.bandwidthBytesPerSec = 50.0e9;
    cfg.relativeCostPerByte = 1.0;
    cfg.writeEndurance = 0;
    return cfg;
}

TierConfig
TierConfig::slow(std::uint64_t capacity_bytes)
{
    TierConfig cfg;
    cfg.name = "slowmem";
    cfg.capacityBytes = capacity_bytes;
    cfg.readLatency = 1000;
    cfg.writeLatency = 1500;
    cfg.bandwidthBytesPerSec = 5.0e9;
    cfg.relativeCostPerByte = 1.0 / 3.0;
    cfg.writeEndurance = 100'000'000ULL;
    return cfg;
}

MemoryTier::MemoryTier(const TierConfig &config, Pfn base_pfn)
    : config_(config),
      allocator_(base_pfn, config.capacityBytes / kPageSize4K)
{
    TSTAT_ASSERT(config.capacityBytes % kPageSize2M == 0,
                 "tier capacity must be 2MB aligned");
}

void
MemoryTier::recordMigrationIn(std::uint64_t bytes)
{
    ++stats_.migrationsIn;
    stats_.migrationBytesIn += bytes;
}

void
MemoryTier::recordMigrationOut(std::uint64_t bytes)
{
    ++stats_.migrationsOut;
    stats_.migrationBytesOut += bytes;
}

void
MemoryTier::recordWear(Pfn pfn, Count writes)
{
    if (config_.writeEndurance == 0) {
        return; // DRAM-like: wear not tracked.
    }
    totalWear_ += writes;
    Count &w = frameWear_[pfn];
    w += writes;
    maxFrameWear_ = std::max(maxFrameWear_, w);
}

Count
MemoryTier::blockWear(Pfn base) const
{
    Count wear = 0;
    for (unsigned i = 0; i < kSubpagesPerHuge; ++i) {
        const auto it = frameWear_.find(base + i);
        if (it != frameWear_.end()) {
            wear += it->value;
        }
    }
    return wear;
}

bool
MemoryTier::wornOut() const
{
    return config_.writeEndurance != 0 &&
           maxFrameWear_ > config_.writeEndurance;
}

std::uint64_t
MemoryTier::usedBytes() const
{
    return allocator_.allocatedFrames() * kPageSize4K;
}

TieredMemory::TieredMemory(const TierConfig &fast, const TierConfig &slow)
    : fastTier_(fast, 0),
      slowTier_(slow, fast.capacityBytes / kPageSize4K),
      slowBasePfn_(fast.capacityBytes / kPageSize4K)
{
}

Ns
TieredMemory::access(Pfn pfn, AccessType type, std::uint64_t bytes)
{
    MemoryTier &t = tier(tierOf(pfn));
    t.recordAccess(type, bytes);
    if (type == AccessType::Write) {
        t.recordWear(pfn, 1);
    }
    return t.accessLatency(type);
}

std::optional<Pfn>
TieredMemory::allocHuge(Tier t)
{
    return tier(t).allocator().allocHuge();
}

std::optional<Pfn>
TieredMemory::allocBase(Tier t)
{
    return tier(t).allocator().allocBase();
}

void
TieredMemory::freeHuge(Pfn base)
{
    tier(tierOf(base)).allocator().freeHuge(base);
}

void
TieredMemory::freeBase(Pfn pfn)
{
    tier(tierOf(pfn)).allocator().freeBase(pfn);
}

std::uint64_t
TieredMemory::usedBytes() const
{
    return fastTier_.usedBytes() + slowTier_.usedBytes();
}

double
TieredMemory::costRelativeToAllFast() const
{
    const auto fast_used = static_cast<double>(fastTier_.usedBytes());
    const auto slow_used = static_cast<double>(slowTier_.usedBytes());
    const double total = fast_used + slow_used;
    if (total == 0.0) {
        return 1.0;
    }
    const double blended =
        fast_used * fastTier_.config().relativeCostPerByte +
        slow_used * slowTier_.config().relativeCostPerByte;
    return blended / (total * fastTier_.config().relativeCostPerByte);
}

void
TieredMemory::advanceFaultState(Ns now)
{
    if (faults_ == nullptr) {
        return;
    }

    // Latency-spike episode: excess per slow line access, scaled
    // from the device's read latency by the plan's severity factor.
    const double latency_factor =
        faults_->severity(FaultSite::SlowLatency, now);
    slowFaultExcess_ = static_cast<Ns>(std::llround(
        (latency_factor - 1.0) *
        static_cast<double>(slowTier_.config().readLatency)));

    // Bandwidth degradation: migration copies divide their
    // bandwidth by this factor for the epoch.
    slowCopySlowdown_ =
        faults_->severity(FaultSite::SlowBandwidth, now);

    slowHealthy_ = !faults_->windowActive(FaultSite::SlowLatency, now) &&
                   !faults_->windowActive(FaultSite::SlowBandwidth, now) &&
                   !faults_->shouldFail(FaultSite::SlowLatency, now) &&
                   !faults_->shouldFail(FaultSite::SlowBandwidth, now);

    const Count retire =
        faults_->takeScheduled(FaultSite::WearRetire, now);
    if (retire > 0) {
        retireWornSlowBlocks(retire, now);
    }
}

void
TieredMemory::retireWornSlowBlocks(Count count, Ns now)
{
    // Victims: the most-worn live blocks (the device retires what
    // it has written most), ties broken by address for determinism.
    std::vector<Pfn> candidates =
        slowTier_.allocator().allocatedBlockBases();
    std::sort(candidates.begin(), candidates.end(),
              [this](Pfn a, Pfn b) {
                  const Count wa = slowTier_.blockWear(a);
                  const Count wb = slowTier_.blockWear(b);
                  if (wa != wb) {
                      return wa > wb;
                  }
                  return a < b;
              });
    Count retired = 0;
    for (const Pfn base : candidates) {
        if (retired >= count) {
            break;
        }
        if (!slowTier_.allocator().retireBlock(base)) {
            continue;
        }
        ++retired;
        evacuations_.push_back(base);
        if (tracer_ != nullptr) {
            tracer_->record(EventKind::FrameRetired, now,
                            static_cast<Addr>(base), true,
                            kSubpagesPerHuge);
        }
    }
}

std::vector<Pfn>
TieredMemory::takeEvacuations()
{
    std::vector<Pfn> out;
    out.swap(evacuations_);
    return out;
}

void
MemoryTier::registerMetrics(MetricRegistry &registry,
                            const std::string &prefix) const
{
    registry.addCallback(prefix + ".reads", [this] {
        return static_cast<double>(stats_.reads);
    });
    registry.addCallback(prefix + ".writes", [this] {
        return static_cast<double>(stats_.writes);
    });
    registry.addCallback(prefix + ".bytes_read", [this] {
        return static_cast<double>(stats_.bytesRead);
    });
    registry.addCallback(prefix + ".bytes_written", [this] {
        return static_cast<double>(stats_.bytesWritten);
    });
    registry.addCallback(prefix + ".migrations_in", [this] {
        return static_cast<double>(stats_.migrationsIn);
    });
    registry.addCallback(prefix + ".migrations_out", [this] {
        return static_cast<double>(stats_.migrationsOut);
    });
    registry.addCallback(prefix + ".migration_bytes_in", [this] {
        return static_cast<double>(stats_.migrationBytesIn);
    });
    registry.addCallback(prefix + ".migration_bytes_out", [this] {
        return static_cast<double>(stats_.migrationBytesOut);
    });
    registry.addCallback(prefix + ".used_bytes", [this] {
        return static_cast<double>(usedBytes());
    });
    registry.addCallback(prefix + ".capacity_bytes", [this] {
        return static_cast<double>(capacityBytes());
    });
    registry.addCallback(prefix + ".total_wear", [this] {
        return static_cast<double>(totalWear());
    });
    registry.addCallback(prefix + ".max_frame_wear", [this] {
        return static_cast<double>(maxFrameWear());
    });
    registry.addCallback(prefix + ".retired_frames", [this] {
        return static_cast<double>(allocator_.retiredFrames());
    });
}

void
TieredMemory::registerMetrics(MetricRegistry &registry,
                              const std::string &prefix) const
{
    fastTier_.registerMetrics(registry, prefix + ".fast");
    slowTier_.registerMetrics(registry, prefix + ".slow");
    registry.addCallback(prefix + ".fast.shadow_bytes", [this] {
        return static_cast<double>(fastShadowBytes_);
    });
    registry.addCallback(prefix + ".slow.shadow_bytes", [this] {
        return static_cast<double>(slowShadowBytes_);
    });
}

} // namespace thermostat
