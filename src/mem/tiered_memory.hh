/**
 * @file
 * The two-tier physical memory system.
 *
 * Models the paper's dual-technology main memory: a fast DRAM tier
 * and a slow, cheap tier exposed to the OS as a separate NUMA zone
 * (Sec 3.6).  Tracks per-tier occupancy, access traffic, migration
 * bandwidth (Table 3) and device wear (Sec 6).
 */

#ifndef THERMOSTAT_MEM_TIERED_MEMORY_HH
#define THERMOSTAT_MEM_TIERED_MEMORY_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/flat_map.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mem/frame_allocator.hh"
#include "mem/tier_config.hh"

namespace thermostat
{

class EventTracer;
class FaultInjector;
class MetricRegistry;

/** Per-tier runtime statistics. */
struct TierStats
{
    Count reads = 0;
    Count writes = 0;
    std::uint64_t bytesRead = 0;
    std::uint64_t bytesWritten = 0;
    Count migrationsIn = 0;
    Count migrationsOut = 0;
    std::uint64_t migrationBytesIn = 0;
    std::uint64_t migrationBytesOut = 0;
};

/**
 * One physical memory tier (a NUMA zone in the paper's KVM setup):
 * configuration, frame allocator and traffic accounting.
 */
class MemoryTier
{
  public:
    MemoryTier(const TierConfig &config, Pfn base_pfn);

    const TierConfig &config() const { return config_; }
    FrameAllocator &allocator() { return allocator_; }
    const FrameAllocator &allocator() const { return allocator_; }
    const TierStats &stats() const { return stats_; }

    /** Latency of one device access (cache-line granularity). */
    Ns
    accessLatency(AccessType type) const
    {
        return type == AccessType::Read ? config_.readLatency
                                        : config_.writeLatency;
    }

    /** Record a cache-line access to this tier. */
    void
    recordAccess(AccessType type, std::uint64_t bytes)
    {
        if (type == AccessType::Read) {
            ++stats_.reads;
            stats_.bytesRead += bytes;
        } else {
            ++stats_.writes;
            stats_.bytesWritten += bytes;
        }
    }

    /**
     * Fold a batch of lane-deferred access traffic into the tier
     * counters (Machine::syncDeviceState): the access-count and byte
     * fields of @p delta, accumulated lane-locally, land here in one
     * addition each.  Migration fields are ignored -- migrations are
     * recorded serially at their source.
     */
    void
    applyDeferred(const TierStats &delta)
    {
        stats_.reads += delta.reads;
        stats_.writes += delta.writes;
        stats_.bytesRead += delta.bytesRead;
        stats_.bytesWritten += delta.bytesWritten;
    }

    /** Record migration traffic landing in / leaving this tier. */
    void recordMigrationIn(std::uint64_t bytes);
    void recordMigrationOut(std::uint64_t bytes);

    /** Record wear: @p writes line writes against frame @p pfn. */
    void recordWear(Pfn pfn, Count writes);

    /** Maximum line-writes recorded against any single 4KB frame. */
    Count maxFrameWear() const { return maxFrameWear_; }

    /** Wear accumulated against one 2MB block (sum over frames). */
    Count blockWear(Pfn base) const;

    /** Total line-writes across the tier. */
    Count totalWear() const { return totalWear_; }

    /**
     * Whether any frame has exceeded the configured endurance
     * (always false for unlimited-endurance tiers).
     */
    bool wornOut() const;

    std::uint64_t capacityBytes() const { return config_.capacityBytes; }
    std::uint64_t usedBytes() const;

    /** Expose the counters under "<prefix>." in @p registry. */
    void registerMetrics(MetricRegistry &registry,
                         const std::string &prefix) const;

  private:
    TierConfig config_;
    FrameAllocator allocator_;
    TierStats stats_;
    Count totalWear_ = 0;
    Count maxFrameWear_ = 0;
    FlatMap<Pfn, Count> frameWear_;
};

/**
 * The complete physical memory: a fast tier and a slow tier occupying
 * disjoint PFN ranges (fast first).  tierOf() resolves a PFN to its
 * tier, as the OS does with pfn_to_nid().
 */
class TieredMemory
{
  public:
    TieredMemory(const TierConfig &fast, const TierConfig &slow);

    MemoryTier &
    tier(Tier t)
    {
        return t == Tier::Fast ? fastTier_ : slowTier_;
    }

    const MemoryTier &
    tier(Tier t) const
    {
        return t == Tier::Fast ? fastTier_ : slowTier_;
    }

    MemoryTier &fast() { return tier(Tier::Fast); }
    MemoryTier &slow() { return tier(Tier::Slow); }

    /** Which tier a physical frame belongs to. */
    Tier
    tierOf(Pfn pfn) const
    {
        return pfn < slowBasePfn_ ? Tier::Fast : Tier::Slow;
    }

    /** Device access latency for a line access to frame @p pfn. */
    Ns access(Pfn pfn, AccessType type, std::uint64_t bytes = 64);

    /** Allocate a 2MB block in @p t; nullopt when the tier is full. */
    std::optional<Pfn> allocHuge(Tier t);

    /** Allocate a 4KB frame in @p t; nullopt when the tier is full. */
    std::optional<Pfn> allocBase(Tier t);

    void freeHuge(Pfn base);
    void freeBase(Pfn pfn);

    /** Total bytes allocated across both tiers. */
    std::uint64_t usedBytes() const;

    // ----- non-exclusive residency (src/migrate) ---------------------
    //
    // Nomad-style transactional migration leaves a page resident in
    // both tiers between shadow-copy start and commit, and may keep
    // a read replica after a clean promotion.  Those frames are
    // allocated through the normal allocHuge/allocBase path; the
    // shadow counters track how many of the allocated bytes are
    // second copies, so usedBytes() minus shadowBytes() is the
    // exclusive footprint and the TransactionEngine's ledger can be
    // cross-checked against the device every epoch.

    /** Account @p bytes of @p t's used capacity as a second copy. */
    void
    recordShadowAlloc(Tier t, std::uint64_t bytes)
    {
        shadowBytes(t) += bytes;
    }

    /** The shadow copy at @p t was committed, aborted or dropped. */
    void
    recordShadowRelease(Tier t, std::uint64_t bytes)
    {
        std::uint64_t &shadow = shadowBytes(t);
        TSTAT_ASSERT(shadow >= bytes,
                     "shadow release underflow on %s tier",
                     tierName(t));
        shadow -= bytes;
    }

    /** Bytes of @p t currently holding non-exclusive copies. */
    std::uint64_t
    shadowBytes(Tier t) const
    {
        return t == Tier::Fast ? fastShadowBytes_ : slowShadowBytes_;
    }

    /** Register "<prefix>.fast.*" and "<prefix>.slow.*". */
    void registerMetrics(MetricRegistry &registry,
                         const std::string &prefix) const;

    /**
     * Blended memory cost of the *used* footprint relative to backing
     * the same footprint entirely with fast-tier memory, given
     * per-tier relativeCostPerByte.  Used for Table 4.
     */
    double costRelativeToAllFast() const;

    // ----- fault injection (src/fault) -------------------------------
    //
    // All of this is inert unless an injector is attached: the
    // default state reads as "healthy, no latency excess, no
    // retirements", and no fault-path code runs, so fault-free runs
    // stay byte-identical.

    void setFaultInjector(FaultInjector *injector)
    {
        faults_ = injector;
    }
    bool hasFaultInjector() const { return faults_ != nullptr; }
    void setTracer(EventTracer *tracer) { tracer_ = tracer; }

    /**
     * Advance epoch-granularity device fault state: latches the
     * slow tier's latency-spike excess and copy-bandwidth slowdown
     * for the coming epoch and fires pending wear-retirement events
     * (blocks chosen by recorded wear, worn-most first).  Called by
     * the simulation once per epoch when faults are enabled.
     */
    void advanceFaultState(Ns now);

    /** False while the slow tier is in a degradation episode. */
    bool slowHealthy() const { return slowHealthy_; }

    /** Migration-copy bandwidth divisor (1.0 when healthy). */
    double slowCopySlowdown() const { return slowCopySlowdown_; }

    /** Extra per-line latency of the degraded slow device. */
    Ns slowFaultExcess() const { return slowFaultExcess_; }

    /**
     * Base PFNs of slow-tier blocks retired since the last call.
     * The engine must evacuate (re-promote) any pages still mapped
     * there.
     */
    std::vector<Pfn> takeEvacuations();

  private:
    /** Wear-retire @p count slow-tier blocks, worn-most first. */
    void retireWornSlowBlocks(Count count, Ns now);

    std::uint64_t &
    shadowBytes(Tier t)
    {
        return t == Tier::Fast ? fastShadowBytes_ : slowShadowBytes_;
    }

    MemoryTier fastTier_;
    MemoryTier slowTier_;
    Pfn slowBasePfn_;
    std::uint64_t fastShadowBytes_ = 0;
    std::uint64_t slowShadowBytes_ = 0;

    FaultInjector *faults_ = nullptr;
    EventTracer *tracer_ = nullptr;
    bool slowHealthy_ = true;
    double slowCopySlowdown_ = 1.0;
    Ns slowFaultExcess_ = 0;
    std::vector<Pfn> evacuations_;
};

} // namespace thermostat

#endif // THERMOSTAT_MEM_TIERED_MEMORY_HH
