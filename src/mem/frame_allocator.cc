#include "mem/frame_allocator.hh"

#include <algorithm>

#include "common/logging.hh"

namespace thermostat
{

FrameAllocator::FrameAllocator(Pfn base_pfn, std::uint64_t frame_count)
    : basePfn_(base_pfn), frameCount_(frame_count)
{
    TSTAT_ASSERT(base_pfn % kSubpagesPerHuge == 0,
                 "FrameAllocator base not 2MB aligned");
    TSTAT_ASSERT(frame_count % kSubpagesPerHuge == 0,
                 "FrameAllocator size not a multiple of 2MB");
    const std::uint64_t blocks = frame_count / kSubpagesPerHuge;
    freeHugeBlocks_.reserve(blocks);
    // Push in reverse so allocation proceeds from low addresses.
    for (std::uint64_t i = blocks; i-- > 0;) {
        freeHugeBlocks_.push_back(base_pfn + i * kSubpagesPerHuge);
    }
}

std::optional<Pfn>
FrameAllocator::allocHuge()
{
    if (freeHugeBlocks_.empty()) {
        return std::nullopt;
    }
    const Pfn base = freeHugeBlocks_.back();
    freeHugeBlocks_.pop_back();
    allocatedFrames_ += kSubpagesPerHuge;
    return base;
}

std::optional<Pfn>
FrameAllocator::allocBase()
{
    // Prefer a frame from an already-broken block.
    for (auto &[block_base, block] : brokenBlocks_) {
        if (!block.freeList.empty()) {
            const Pfn pfn = block.freeList.back();
            block.freeList.pop_back();
            ++block.allocated;
            ++allocatedFrames_;
            return pfn;
        }
    }
    // Break a fresh huge block.
    if (freeHugeBlocks_.empty()) {
        return std::nullopt;
    }
    const Pfn base = freeHugeBlocks_.back();
    freeHugeBlocks_.pop_back();
    BrokenBlock block;
    block.freeList.reserve(kSubpagesPerHuge - 1);
    for (unsigned i = kSubpagesPerHuge; i-- > 1;) {
        block.freeList.push_back(base + i);
    }
    block.allocated = 1;
    brokenBlocks_.emplace(base, std::move(block));
    ++allocatedFrames_;
    return base;
}

void
FrameAllocator::freeHuge(Pfn base)
{
    TSTAT_ASSERT(owns(base) && base % kSubpagesPerHuge == 0,
                 "freeHuge: bad block base");
    TSTAT_ASSERT(brokenBlocks_.find(base) == brokenBlocks_.end(),
                 "freeHuge on a broken block");
    TSTAT_ASSERT(allocatedFrames_ >= kSubpagesPerHuge,
                 "freeHuge underflow");
    allocatedFrames_ -= kSubpagesPerHuge;
    if (retiredBlocks_.count(base) != 0) {
        // Retirement was pending on this block; it leaves service
        // instead of returning to the free list.
        retiredFrames_ += kSubpagesPerHuge;
        return;
    }
    freeHugeBlocks_.push_back(base);
}

void
FrameAllocator::freeBase(Pfn pfn)
{
    TSTAT_ASSERT(owns(pfn), "freeBase: pfn outside allocator");
    const Pfn block_base = pfn - (pfn % kSubpagesPerHuge);
    auto it = brokenBlocks_.find(block_base);
    TSTAT_ASSERT(it != brokenBlocks_.end(),
                 "freeBase: frame not from a broken block");
    BrokenBlock &block = it->second;
    TSTAT_ASSERT(block.allocated > 0, "freeBase: double free");
    --block.allocated;
    TSTAT_ASSERT(allocatedFrames_ > 0, "freeBase underflow");
    --allocatedFrames_;
    if (retiredBlocks_.count(block_base) != 0) {
        ++retiredFrames_;
        if (block.allocated == 0) {
            // Last live frame gone; the block is fully retired.
            brokenBlocks_.erase(it);
        }
        return;
    }
    if (block.allocated == 0) {
        // Whole block free again: coalesce.
        brokenBlocks_.erase(it);
        freeHugeBlocks_.push_back(block_base);
    } else {
        block.freeList.push_back(pfn);
    }
}

bool
FrameAllocator::retireBlock(Pfn base)
{
    if (!owns(base) || base % kSubpagesPerHuge != 0 ||
        retiredBlocks_.count(base) != 0) {
        return false;
    }
    retiredBlocks_.insert(base);
    // A free whole block retires immediately.
    auto free_it =
        std::find(freeHugeBlocks_.begin(), freeHugeBlocks_.end(), base);
    if (free_it != freeHugeBlocks_.end()) {
        freeHugeBlocks_.erase(free_it);
        retiredFrames_ += kSubpagesPerHuge;
        return true;
    }
    // A broken block's free frames retire now; allocated frames
    // drain through freeBase().  An empty free list also keeps
    // allocBase() from ever handing the block out again.
    auto broken_it = brokenBlocks_.find(base);
    if (broken_it != brokenBlocks_.end()) {
        BrokenBlock &block = broken_it->second;
        retiredFrames_ += block.freeList.size();
        block.freeList.clear();
        TSTAT_ASSERT(block.allocated > 0,
                     "retireBlock: empty broken block");
        return true;
    }
    // Whole-allocated huge block: drains through freeHuge().
    return true;
}

bool
FrameAllocator::blockRetired(Pfn pfn) const
{
    return retiredBlocks_.count(pfn - (pfn % kSubpagesPerHuge)) != 0;
}

std::vector<Pfn>
FrameAllocator::allocatedBlockBases() const
{
    std::vector<Pfn> bases;
    const std::uint64_t blocks = frameCount_ / kSubpagesPerHuge;
    for (std::uint64_t i = 0; i < blocks; ++i) {
        const Pfn base = basePfn_ + i * kSubpagesPerHuge;
        if (retiredBlocks_.count(base) != 0) {
            continue;
        }
        if (brokenBlocks_.count(base) != 0) {
            bases.push_back(base);
            continue;
        }
        if (std::find(freeHugeBlocks_.begin(), freeHugeBlocks_.end(),
                      base) == freeHugeBlocks_.end()) {
            // Not free, not broken, not retired: a whole huge
            // allocation.
            bases.push_back(base);
        }
    }
    return bases;
}

void
FrameAllocator::breakAllocatedHuge(Pfn base)
{
    TSTAT_ASSERT(owns(base) && base % kSubpagesPerHuge == 0,
                 "breakAllocatedHuge: bad block base");
    TSTAT_ASSERT(brokenBlocks_.find(base) == brokenBlocks_.end(),
                 "breakAllocatedHuge: block already broken");
    BrokenBlock block;
    block.allocated = kSubpagesPerHuge;
    brokenBlocks_.emplace(base, std::move(block));
}

bool
FrameAllocator::reformAllocatedHuge(Pfn base)
{
    auto it = brokenBlocks_.find(base);
    if (it == brokenBlocks_.end() ||
        it->second.allocated != kSubpagesPerHuge) {
        return false;
    }
    brokenBlocks_.erase(it);
    return true;
}

bool
FrameAllocator::owns(Pfn pfn) const
{
    return pfn >= basePfn_ && pfn < basePfn_ + frameCount_;
}

std::uint64_t
FrameAllocator::freeFrames() const
{
    return frameCount_ - allocatedFrames_ - retiredFrames_;
}

double
FrameAllocator::utilization() const
{
    const std::uint64_t usable = frameCount_ - retiredFrames_;
    if (usable == 0) {
        return frameCount_ == 0 ? 0.0 : 1.0;
    }
    return static_cast<double>(allocatedFrames_) /
           static_cast<double>(usable);
}

} // namespace thermostat
