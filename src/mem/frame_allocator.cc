#include "mem/frame_allocator.hh"

#include <algorithm>

#include "common/logging.hh"

namespace thermostat
{

FrameAllocator::FrameAllocator(Pfn base_pfn, std::uint64_t frame_count)
    : basePfn_(base_pfn), frameCount_(frame_count)
{
    TSTAT_ASSERT(base_pfn % kSubpagesPerHuge == 0,
                 "FrameAllocator base not 2MB aligned");
    TSTAT_ASSERT(frame_count % kSubpagesPerHuge == 0,
                 "FrameAllocator size not a multiple of 2MB");
    const std::uint64_t blocks = frame_count / kSubpagesPerHuge;
    freeHugeBlocks_.reserve(blocks);
    // Push in reverse so allocation proceeds from low addresses.
    for (std::uint64_t i = blocks; i-- > 0;) {
        freeHugeBlocks_.push_back(base_pfn + i * kSubpagesPerHuge);
    }
}

std::optional<Pfn>
FrameAllocator::allocHuge()
{
    if (freeHugeBlocks_.empty()) {
        return std::nullopt;
    }
    const Pfn base = freeHugeBlocks_.back();
    freeHugeBlocks_.pop_back();
    allocatedFrames_ += kSubpagesPerHuge;
    return base;
}

std::optional<Pfn>
FrameAllocator::allocBase()
{
    // Prefer a frame from an already-broken block.
    for (auto &[block_base, block] : brokenBlocks_) {
        if (!block.freeList.empty()) {
            const Pfn pfn = block.freeList.back();
            block.freeList.pop_back();
            ++block.allocated;
            ++allocatedFrames_;
            return pfn;
        }
    }
    // Break a fresh huge block.
    if (freeHugeBlocks_.empty()) {
        return std::nullopt;
    }
    const Pfn base = freeHugeBlocks_.back();
    freeHugeBlocks_.pop_back();
    BrokenBlock block;
    block.freeList.reserve(kSubpagesPerHuge - 1);
    for (unsigned i = kSubpagesPerHuge; i-- > 1;) {
        block.freeList.push_back(base + i);
    }
    block.allocated = 1;
    brokenBlocks_.emplace(base, std::move(block));
    ++allocatedFrames_;
    return base;
}

void
FrameAllocator::freeHuge(Pfn base)
{
    TSTAT_ASSERT(owns(base) && base % kSubpagesPerHuge == 0,
                 "freeHuge: bad block base");
    TSTAT_ASSERT(brokenBlocks_.find(base) == brokenBlocks_.end(),
                 "freeHuge on a broken block");
    TSTAT_ASSERT(allocatedFrames_ >= kSubpagesPerHuge,
                 "freeHuge underflow");
    allocatedFrames_ -= kSubpagesPerHuge;
    freeHugeBlocks_.push_back(base);
}

void
FrameAllocator::freeBase(Pfn pfn)
{
    TSTAT_ASSERT(owns(pfn), "freeBase: pfn outside allocator");
    const Pfn block_base = pfn - (pfn % kSubpagesPerHuge);
    auto it = brokenBlocks_.find(block_base);
    TSTAT_ASSERT(it != brokenBlocks_.end(),
                 "freeBase: frame not from a broken block");
    BrokenBlock &block = it->second;
    TSTAT_ASSERT(block.allocated > 0, "freeBase: double free");
    --block.allocated;
    TSTAT_ASSERT(allocatedFrames_ > 0, "freeBase underflow");
    --allocatedFrames_;
    if (block.allocated == 0) {
        // Whole block free again: coalesce.
        brokenBlocks_.erase(it);
        freeHugeBlocks_.push_back(block_base);
    } else {
        block.freeList.push_back(pfn);
    }
}

void
FrameAllocator::breakAllocatedHuge(Pfn base)
{
    TSTAT_ASSERT(owns(base) && base % kSubpagesPerHuge == 0,
                 "breakAllocatedHuge: bad block base");
    TSTAT_ASSERT(brokenBlocks_.find(base) == brokenBlocks_.end(),
                 "breakAllocatedHuge: block already broken");
    BrokenBlock block;
    block.allocated = kSubpagesPerHuge;
    brokenBlocks_.emplace(base, std::move(block));
}

bool
FrameAllocator::reformAllocatedHuge(Pfn base)
{
    auto it = brokenBlocks_.find(base);
    if (it == brokenBlocks_.end() ||
        it->second.allocated != kSubpagesPerHuge) {
        return false;
    }
    brokenBlocks_.erase(it);
    return true;
}

bool
FrameAllocator::owns(Pfn pfn) const
{
    return pfn >= basePfn_ && pfn < basePfn_ + frameCount_;
}

std::uint64_t
FrameAllocator::freeFrames() const
{
    return frameCount_ - allocatedFrames_;
}

double
FrameAllocator::utilization() const
{
    return frameCount_ == 0
               ? 0.0
               : static_cast<double>(allocatedFrames_) /
                     static_cast<double>(frameCount_);
}

} // namespace thermostat
