#include "mem/wear_leveler.hh"

#include "obs/metrics.hh"

#include "common/logging.hh"

namespace thermostat
{

StartGapWearLeveler::StartGapWearLeveler(std::uint64_t line_count,
                                         std::uint64_t gap_move_period,
                                         std::uint64_t seed)
    : lineCount_(line_count),
      gapMovePeriod_(gap_move_period),
      randomize_(line_count, seed),
      gap_(line_count) // gap initially after the last line
{
    TSTAT_ASSERT(line_count > 0, "StartGap over empty region");
    TSTAT_ASSERT(gap_move_period > 0, "StartGap: zero move period");
}

std::uint64_t
StartGapWearLeveler::remap(std::uint64_t logical) const
{
    TSTAT_ASSERT(logical < lineCount_, "StartGap: logical out of range");
    // Static randomization, then the Start-Gap algebraic map: the
    // pre-gap position is computed over the N logical lines, and
    // positions at or past the gap shift up by one into the N+1
    // physical slots, so no line ever maps onto the gap itself.
    const std::uint64_t randomized = randomize_.map(logical);
    std::uint64_t physical = (randomized + start_) % lineCount_;
    if (physical >= gap_) {
        ++physical;
    }
    return physical;
}

void
StartGapWearLeveler::recordWrite()
{
    if (++writesSinceMove_ < gapMovePeriod_) {
        return;
    }
    writesSinceMove_ = 0;
    ++gapMoves_;
    if (gap_ == 0) {
        gap_ = lineCount_;
        start_ = (start_ + 1) % lineCount_;
        ++rotations_;
    } else {
        --gap_;
    }
}

void
StartGapWearLeveler::registerMetrics(MetricRegistry &registry,
                                     const std::string &prefix) const
{
    registry.addCallback(prefix + ".gap_moves", [this] {
        return static_cast<double>(gapMoves_);
    });
    registry.addCallback(prefix + ".rotations", [this] {
        return static_cast<double>(rotations_);
    });
    registry.addCallback(prefix + ".gap_position", [this] {
        return static_cast<double>(gap_);
    });
    registry.addCallback(prefix + ".line_count", [this] {
        return static_cast<double>(lineCount_);
    });
}

} // namespace thermostat
