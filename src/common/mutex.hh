/**
 * @file
 * Annotated mutual-exclusion primitives for Clang Thread Safety
 * Analysis (see common/thread_annotations.hh).
 *
 * libstdc++'s std::mutex and std::lock_guard carry no capability
 * attributes, so state guarded by them is invisible to
 * `-Wthread-safety`.  These thin wrappers put the attributes on:
 * declare shared data with TSTAT_GUARDED_BY(mutex_) and take a
 * MutexLock before touching it, and Clang proves at compile time
 * that no unlocked access exists.
 *
 * Mutex satisfies BasicLockable, so it works directly with
 * std::condition_variable_any -- the pool's wait pattern is
 *
 *     MutexLock lock(&mutex_);
 *     cv.wait(mutex_, [this] {
 *         mutex_.assertHeld();   // predicate runs under the lock,
 *         return inFlight_ == 0; // but is analyzed as a plain fn
 *     });
 */

#ifndef THERMOSTAT_COMMON_MUTEX_HH
#define THERMOSTAT_COMMON_MUTEX_HH

#include <mutex>

#include "common/thread_annotations.hh"

namespace thermostat
{

/** std::mutex with lock/unlock visible to the static analysis. */
class TSTAT_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() TSTAT_ACQUIRE() { mutex_.lock(); }
    void unlock() TSTAT_RELEASE() { mutex_.unlock(); }
    bool try_lock() TSTAT_TRY_ACQUIRE(true)
    {
        return mutex_.try_lock();
    }

    /**
     * Runtime no-op; tells the analysis this thread holds the lock.
     * For condition-variable predicates and other contexts the
     * analysis cannot follow.
     */
    void assertHeld() const TSTAT_ASSERT_CAPABILITY() {}

  private:
    std::mutex mutex_;
};

/** RAII scoped lock over Mutex (std::lock_guard, but annotated). */
class TSTAT_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex *mutex) TSTAT_ACQUIRE(mutex)
        : mutex_(mutex)
    {
        mutex_->lock();
    }

    ~MutexLock() TSTAT_RELEASE() { mutex_->unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex *mutex_;
};

} // namespace thermostat

#endif // THERMOSTAT_COMMON_MUTEX_HH
