#include "common/thread_pool.hh"

#include <algorithm>
#include <cstdlib>
#include <string>
#include <utility>

namespace thermostat
{

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0) {
        threads = defaultJobs();
    }
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i) {
        workers_.emplace_back([this] { workerLoop(); });
    }
}

ThreadPool::~ThreadPool()
{
    // Drain without rethrowing: a job exception nobody waited for
    // must not escape a destructor.
    drain();
    {
        MutexLock lock(&mutex_);
        stopping_ = true;
    }
    workReady_.notify_all();
    for (std::thread &w : workers_) {
        w.join();
    }
}

void
ThreadPool::submit(std::function<void()> job)
{
    {
        MutexLock lock(&mutex_);
        queue_.push_back(std::move(job));
        ++inFlight_;
    }
    workReady_.notify_one();
}

void
ThreadPool::drain()
{
    MutexLock lock(&mutex_);
    allDone_.wait(mutex_, [this] {
        mutex_.assertHeld(); // predicate runs under the cv's lock
        return inFlight_ == 0;
    });
}

void
ThreadPool::wait()
{
    std::exception_ptr error;
    {
        MutexLock lock(&mutex_);
        allDone_.wait(mutex_, [this] {
            mutex_.assertHeld();
            return inFlight_ == 0;
        });
        std::swap(error, firstError_);
    }
    if (error) {
        std::rethrow_exception(error);
    }
}

void
ThreadPool::parallelFor(std::size_t begin, std::size_t end,
                        std::size_t grainsize,
                        const std::function<void(std::size_t)> &fn)
{
    if (begin >= end) {
        return;
    }
    if (grainsize == 0) {
        grainsize = 1;
    }
    for (std::size_t lo = begin; lo < end; lo += grainsize) {
        const std::size_t hi = std::min(end, lo + grainsize);
        submit([lo, hi, &fn] {
            for (std::size_t i = lo; i < hi; ++i) {
                fn(i);
            }
        });
    }
    wait();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            MutexLock lock(&mutex_);
            workReady_.wait(mutex_, [this] {
                mutex_.assertHeld();
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty()) {
                return; // stopping_ and drained
            }
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        try {
            job();
        } catch (...) {
            MutexLock lock(&mutex_);
            if (!firstError_) {
                firstError_ = std::current_exception();
            }
        }
        {
            MutexLock lock(&mutex_);
            --inFlight_;
            if (inFlight_ == 0) {
                allDone_.notify_all();
            }
        }
    }
}

unsigned
ThreadPool::defaultJobs()
{
    if (const char *env = std::getenv("THERMOSTAT_JOBS")) {
        const long n = std::strtol(env, nullptr, 10);
        if (n > 0) {
            return static_cast<unsigned>(n);
        }
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

} // namespace thermostat
