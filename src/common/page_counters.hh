/**
 * @file
 * Structure-of-arrays per-page counter store.
 *
 * The page-granular metadata the hot phases maintain (BadgerTrap
 * fault counts, sampler hotness weights) used to live in one
 * FlatMap<Addr, Count> per component.  That shape is fine for point
 * lookups but poor for the two things the epoch pipeline actually
 * does with it: streaming every counter (histograms, resets,
 * classification input) and updating counters from concurrent lane
 * workers.  PageCounterShard splits the map into an index
 * (page -> dense slot) plus parallel dense arrays of pages and
 * counts, so scans are linear array walks and each machine lane can
 * own one shard outright -- no synchronization, deterministic
 * content per lane regardless of worker count.
 *
 * Slots are append-only (counters are reset, not erased, matching
 * how BadgerTrap and the sampler use their maps), which keeps the
 * dense arrays stable and the per-lane insertion order deterministic.
 */

#ifndef THERMOSTAT_COMMON_PAGE_COUNTERS_HH
#define THERMOSTAT_COMMON_PAGE_COUNTERS_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/flat_map.hh"
#include "common/types.hh"

namespace thermostat
{

/** One lane's worth of page counters (see file comment). */
class PageCounterShard
{
  public:
    /** Add @p weight to @p page's counter, creating it at 0. */
    void
    add(Addr page, Count weight)
    {
        counts_[slotOf(page)] += weight;
    }

    /** Set @p page's counter to @p value, creating the slot. */
    void
    set(Addr page, Count value)
    {
        counts_[slotOf(page)] = value;
    }

    /** The counter, or 0 when the page was never tracked. */
    Count
    get(Addr page) const
    {
        const auto it = index_.find(page);
        return it == index_.end() ? 0 : counts_[it->value];
    }

    /** Whether @p page has a slot (even if its count is 0). */
    bool
    tracked(Addr page) const
    {
        return index_.find(page) != index_.end();
    }

    std::size_t size() const { return pages_.size(); }
    bool empty() const { return pages_.empty(); }

    /** Dense views for batched scans; parallel arrays. */
    const std::vector<Addr> &pages() const { return pages_; }
    const std::vector<Count> &counts() const { return counts_; }

    /** Zero every counter, keeping the slots. */
    void
    resetCounts()
    {
        for (Count &c : counts_) {
            c = 0;
        }
    }

    /** Drop everything. */
    void
    clear()
    {
        index_.clear();
        pages_.clear();
        counts_.clear();
    }

  private:
    std::uint32_t
    slotOf(Addr page)
    {
        const auto it = index_.find(page);
        if (it != index_.end()) {
            return it->value;
        }
        const auto slot = static_cast<std::uint32_t>(pages_.size());
        index_[page] = slot;
        pages_.push_back(page);
        counts_.push_back(0);
        return slot;
    }

    FlatMap<Addr, std::uint32_t> index_;
    std::vector<Addr> pages_;  //!< slot -> page base
    std::vector<Count> counts_; //!< slot -> counter
};

} // namespace thermostat

#endif // THERMOSTAT_COMMON_PAGE_COUNTERS_HH
