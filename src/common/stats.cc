#include "common/stats.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

#include "common/logging.hh"

namespace thermostat
{

void
MeanAccumulator::add(double x)
{
    ++count_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (count_ == 1) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
}

void
MeanAccumulator::reset()
{
    *this = MeanAccumulator();
}

double
MeanAccumulator::variance() const
{
    if (count_ < 2) {
        return 0.0;
    }
    return m2_ / static_cast<double>(count_ - 1);
}

double
MeanAccumulator::stddev() const
{
    return std::sqrt(variance());
}

Log2Histogram::Log2Histogram()
    : buckets_(65, 0)
{
}

void
Log2Histogram::add(std::uint64_t value, std::uint64_t weight)
{
    const unsigned idx =
        value <= 1 ? 0 : static_cast<unsigned>(std::bit_width(value));
    buckets_[std::min<unsigned>(idx, 64)] += weight;
    samples_ += weight;
}

void
Log2Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    samples_ = 0;
}

std::uint64_t
Log2Histogram::bucket(unsigned i) const
{
    TSTAT_ASSERT(i < buckets_.size(), "histogram bucket out of range");
    return buckets_[i];
}

std::uint64_t
Log2Histogram::percentile(double fraction) const
{
    if (samples_ == 0) {
        return 0;
    }
    fraction = std::clamp(fraction, 0.0, 1.0);
    const auto target = static_cast<std::uint64_t>(
        std::ceil(fraction * static_cast<double>(samples_)));
    std::uint64_t seen = 0;
    for (unsigned i = 0; i < buckets_.size(); ++i) {
        seen += buckets_[i];
        if (seen >= target) {
            return i == 0 ? 1 : (std::uint64_t{1} << i) - 1;
        }
    }
    return ~std::uint64_t{0};
}

std::string
Log2Histogram::toString() const
{
    std::ostringstream os;
    for (unsigned i = 0; i < buckets_.size(); ++i) {
        if (buckets_[i] == 0) {
            continue;
        }
        const std::uint64_t lo = i == 0 ? 0 : std::uint64_t{1} << (i - 1);
        const std::uint64_t hi =
            i == 0 ? 1 : (std::uint64_t{1} << i) - 1;
        os << lo << ".." << hi << ": " << buckets_[i] << "\n";
    }
    return os.str();
}

TimeSeries::TimeSeries(std::string name)
    : name_(std::move(name))
{
}

void
TimeSeries::append(Ns time, double value)
{
    if (!samples_.empty() && time < samples_.back().time) {
        TSTAT_PANIC("TimeSeries '%s': non-monotonic append",
                    name_.c_str());
    }
    samples_.push_back({time, value});
}

double
TimeSeries::minValue() const
{
    double v = samples_.empty() ? 0.0 : samples_.front().value;
    for (const auto &s : samples_) {
        v = std::min(v, s.value);
    }
    return v;
}

double
TimeSeries::maxValue() const
{
    double v = samples_.empty() ? 0.0 : samples_.front().value;
    for (const auto &s : samples_) {
        v = std::max(v, s.value);
    }
    return v;
}

double
TimeSeries::meanValue() const
{
    if (samples_.empty()) {
        return 0.0;
    }
    double sum = 0.0;
    for (const auto &s : samples_) {
        sum += s.value;
    }
    return sum / static_cast<double>(samples_.size());
}

double
TimeSeries::lastValue() const
{
    return samples_.empty() ? 0.0 : samples_.back().value;
}

TimeSeries
TimeSeries::windowAverage(Ns window) const
{
    TimeSeries out(name_ + ".avg");
    if (samples_.empty()) {
        return out;
    }
    if (window == 0) {
        // Degenerate window: every sample is its own bucket, so the
        // average is the series itself (just renamed).
        for (const auto &s : samples_) {
            out.append(s.time, s.value);
        }
        return out;
    }
    std::size_t i = 0;
    while (i < samples_.size()) {
        const Ns win_start = samples_[i].time / window * window;
        const Ns win_end = win_start + window;
        double sum = 0.0;
        std::size_t n = 0;
        while (i < samples_.size() && samples_[i].time < win_end) {
            sum += samples_[i].value;
            ++n;
            ++i;
        }
        out.append(win_start + window / 2,
                   sum / static_cast<double>(n));
    }
    return out;
}

std::string
TimeSeries::toCsv() const
{
    std::ostringstream os;
    os << "time_sec," << (name_.empty() ? "value" : name_) << "\n";
    for (const auto &s : samples_) {
        os << static_cast<double>(s.time) / kNsPerSec << ","
           << s.value << "\n";
    }
    return os.str();
}

void
RateMeter::record(Ns now, Count events)
{
    if (!started_) {
        firstTime_ = now;
        if (!windowAnchored_) {
            windowStart_ = now;
            windowAnchored_ = true;
        }
        started_ = true;
    }
    lastTime_ = now;
    total_ += events;
    windowEvents_ += events;
}

void
RateMeter::reset()
{
    *this = RateMeter();
}

double
RateMeter::overallRate()const
{
    if (!started_ || lastTime_ == firstTime_) {
        return 0.0;
    }
    return static_cast<double>(total_) * kNsPerSec /
           static_cast<double>(lastTime_ - firstTime_);
}

double
RateMeter::takeWindowRate(Ns now)
{
    if (!started_) {
        // No events yet: anchor the checkpoint here so the first
        // real window spans [now, next take] instead of starting at
        // the first event, which would overstate the rate.
        windowStart_ = now;
        windowAnchored_ = true;
        return 0.0;
    }
    if (now <= windowStart_) {
        // Zero-length (or backwards) window: no time has passed.
        // Keep pending events for the next real window.
        return 0.0;
    }
    const double rate = static_cast<double>(windowEvents_) * kNsPerSec /
                        static_cast<double>(now - windowStart_);
    windowStart_ = now;
    windowEvents_ = 0;
    return rate;
}

} // namespace thermostat
