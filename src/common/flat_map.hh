/**
 * @file
 * Open-addressing hash map for the simulator's per-page/per-frame
 * counter tables (BadgerTrap fault counts, kstaled idle state, frame
 * wear, LLC ground-truth misses).
 *
 * These tables sit on the per-access hot path, where
 * `std::unordered_map`'s node allocation and pointer chasing
 * dominate; a flat table with linear probing keeps each probe inside
 * one or two cache lines.  Keys are integers (addresses / frame
 * numbers) mixed through a splitmix64-style finalizer; capacity is
 * a power of two so the slot index is a mask, not a division.
 *
 * Deletion uses tombstones; rehashing (growth or explicit reserve)
 * drops them.  Iterators walk occupied slots only and are
 * invalidated by any mutation, like unordered_map on rehash --
 * callers here never hold one across an insert.
 */

#ifndef THERMOSTAT_COMMON_FLAT_MAP_HH
#define THERMOSTAT_COMMON_FLAT_MAP_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace thermostat
{

/** splitmix64 finalizer: a cheap, well-mixed integer hash. */
constexpr std::uint64_t
mixHash64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/**
 * Open-addressing map from an integer key type to a
 * default-constructible value.
 */
template <typename Key, typename Value>
class FlatMap
{
    enum class SlotState : std::uint8_t
    {
        Empty,
        Occupied,
        Tombstone
    };

    struct Slot
    {
        Key key{};
        Value value{};
    };

  public:
    using value_type = Slot;

    /** Forward iterator over occupied slots. */
    template <bool Const>
    class Iter
    {
        using MapPtr =
            std::conditional_t<Const, const FlatMap *, FlatMap *>;

      public:
        Iter(MapPtr map, std::size_t index)
            : map_(map), index_(index)
        {
            skipToOccupied();
        }

        auto &operator*() const { return map_->slots_[index_]; }
        auto *operator->() const { return &map_->slots_[index_]; }

        Iter &
        operator++()
        {
            ++index_;
            skipToOccupied();
            return *this;
        }

        bool
        operator==(const Iter &other) const
        {
            return index_ == other.index_;
        }

        bool
        operator!=(const Iter &other) const
        {
            return index_ != other.index_;
        }

      private:
        void
        skipToOccupied()
        {
            while (index_ < map_->states_.size() &&
                   map_->states_[index_] != SlotState::Occupied) {
                ++index_;
            }
        }

        MapPtr map_;
        std::size_t index_;

        friend class FlatMap;
    };

    using iterator = Iter<false>;
    using const_iterator = Iter<true>;

    FlatMap() = default;

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** Number of slots (for load-factor tests). */
    std::size_t capacity() const { return slots_.size(); }

    void
    clear()
    {
        slots_.clear();
        states_.clear();
        size_ = 0;
        used_ = 0;
    }

    /** Grow so @p n entries fit without rehashing. */
    void
    reserve(std::size_t n)
    {
        std::size_t want = kMinCapacity;
        while (want * kMaxLoadDen < n * kMaxLoadNum) {
            want <<= 1;
        }
        if (want > slots_.size()) {
            rehash(want);
        }
    }

    Value &
    operator[](const Key &key)
    {
        if (needsGrowth()) {
            grow();
        }
        const auto [index, found] = probe(key);
        if (found) {
            return slots_[index].value;
        }
        if (states_[index] == SlotState::Empty) {
            ++used_;
        }
        states_[index] = SlotState::Occupied;
        slots_[index].key = key;
        slots_[index].value = Value{};
        ++size_;
        return slots_[index].value;
    }

    iterator
    find(const Key &key)
    {
        if (size_ == 0) {
            return end();
        }
        const auto [index, found] = probe(key);
        return found ? iterator(this, index) : end();
    }

    const_iterator
    find(const Key &key) const
    {
        if (size_ == 0) {
            return end();
        }
        const auto [index, found] = probe(key);
        return found ? const_iterator(this, index) : end();
    }

    bool
    contains(const Key &key) const
    {
        return find(key) != end();
    }

    /** @return number of entries removed (0 or 1). */
    std::size_t
    erase(const Key &key)
    {
        if (size_ == 0) {
            return 0;
        }
        const auto [index, found] = probe(key);
        if (!found) {
            return 0;
        }
        states_[index] = SlotState::Tombstone;
        slots_[index] = Slot{};
        --size_;
        return 1;
    }

    iterator begin() { return iterator(this, 0); }
    iterator end() { return iterator(this, slots_.size()); }
    const_iterator begin() const
    {
        return const_iterator(this, 0);
    }
    const_iterator end() const
    {
        return const_iterator(this, slots_.size());
    }

  private:
    static constexpr std::size_t kMinCapacity = 16;
    // Grow past 7/8 of live+tombstone slots.
    static constexpr std::size_t kMaxLoadNum = 8;
    static constexpr std::size_t kMaxLoadDen = 7;

    bool
    needsGrowth() const
    {
        return slots_.empty() ||
               (used_ + 1) * kMaxLoadNum > slots_.size() * kMaxLoadDen;
    }

    /**
     * Find @p key, or the slot where it would be inserted.
     * @return {slot index, key present}.  With an empty table the
     * caller must grow first.
     */
    std::pair<std::size_t, bool>
    probe(const Key &key) const
    {
        const std::size_t mask = slots_.size() - 1;
        std::size_t index =
            static_cast<std::size_t>(
                mixHash64(static_cast<std::uint64_t>(key))) &
            mask;
        std::size_t first_tombstone = slots_.size();
        for (;;) {
            const SlotState state = states_[index];
            if (state == SlotState::Occupied) {
                if (slots_[index].key == key) {
                    return {index, true};
                }
            } else if (state == SlotState::Empty) {
                return {first_tombstone < slots_.size()
                            ? first_tombstone
                            : index,
                        false};
            } else if (first_tombstone == slots_.size()) {
                first_tombstone = index;
            }
            index = (index + 1) & mask;
        }
    }

    void
    grow()
    {
        // Double when genuinely full; same size when tombstones are
        // the problem (rehashing drops them).
        const std::size_t target =
            slots_.empty()
                ? kMinCapacity
                : ((size_ + 1) * kMaxLoadNum >
                           slots_.size() * kMaxLoadDen
                       ? slots_.size() * 2
                       : slots_.size());
        rehash(target);
    }

    void
    rehash(std::size_t new_capacity)
    {
        std::vector<Slot> old_slots = std::move(slots_);
        std::vector<SlotState> old_states = std::move(states_);
        slots_.assign(new_capacity, Slot{});
        states_.assign(new_capacity, SlotState::Empty);
        size_ = 0;
        used_ = 0;
        for (std::size_t i = 0; i < old_slots.size(); ++i) {
            if (old_states[i] == SlotState::Occupied) {
                (*this)[old_slots[i].key] =
                    std::move(old_slots[i].value);
            }
        }
    }

    std::vector<Slot> slots_;
    std::vector<SlotState> states_;
    std::size_t size_ = 0; //!< occupied slots
    std::size_t used_ = 0; //!< occupied + tombstone slots
};

} // namespace thermostat

#endif // THERMOSTAT_COMMON_FLAT_MAP_HH
