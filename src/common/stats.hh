/**
 * @file
 * Statistics primitives used across the simulator.
 *
 * Inspired by gem5's stats package but deliberately small: scalar
 * counters, streaming mean/variance, log2-bucketed histograms, and
 * time series with windowed averaging (used e.g. for the paper's
 * Figure 3, which reports slow-memory access rate averaged over 30s
 * windows).
 */

#ifndef THERMOSTAT_COMMON_STATS_HH
#define THERMOSTAT_COMMON_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace thermostat
{

/**
 * Streaming mean / variance accumulator (Welford's algorithm).
 */
class MeanAccumulator
{
  public:
    void add(double x);
    void reset();

    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? mean_ : 0.0; }

    /** Sample variance (n-1 denominator); 0 for fewer than 2 samples. */
    double variance() const;
    double stddev() const;
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double sum() const { return sum_; }

  private:
    std::uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/**
 * Histogram with power-of-two bucket boundaries: bucket i counts
 * samples in [2^(i-1), 2^i), bucket 0 counts zeros and ones.
 */
class Log2Histogram
{
  public:
    Log2Histogram();

    void add(std::uint64_t value, std::uint64_t weight = 1);
    void reset();

    std::uint64_t totalSamples() const { return samples_; }
    std::uint64_t bucketCount() const { return buckets_.size(); }
    std::uint64_t bucket(unsigned i) const;

    /** Value below which @p fraction of the mass lies (approximate). */
    std::uint64_t percentile(double fraction) const;

    /** Render "bucket_lo..bucket_hi: count" lines for reports. */
    std::string toString() const;

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t samples_ = 0;
};

/**
 * A time-stamped scalar series, e.g. "cold bytes over time" or
 * "slow-memory accesses/sec".  Samples must be appended in
 * nondecreasing time order.
 */
class TimeSeries
{
  public:
    struct Sample
    {
        Ns time;
        double value;
    };

    explicit TimeSeries(std::string name = "");

    void append(Ns time, double value);

    const std::string &name() const { return name_; }
    std::size_t size() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }
    const Sample &at(std::size_t i) const { return samples_.at(i); }
    const std::vector<Sample> &samples() const { return samples_; }

    double minValue() const;
    double maxValue() const;
    double meanValue() const;

    /** Last sample value, or 0 for an empty series. */
    double lastValue() const;

    /**
     * Average the series into fixed windows of @p window ns, value-
     * weighted by nothing (plain mean of samples per window); windows
     * with no samples are skipped.  Used for Figure 3 style plots.
     */
    TimeSeries windowAverage(Ns window) const;

    /** Emit "time_sec,value" CSV rows (with a header line). */
    std::string toCsv() const;

  private:
    std::string name_;
    std::vector<Sample> samples_;
};

/**
 * Tracks an event rate over simulated time: count events, then query
 * events/sec over the whole run or since the last checkpoint.
 */
class RateMeter
{
  public:
    void record(Ns now, Count events = 1);
    void reset();

    Count total() const { return total_; }

    /** Events/sec between the first and last recorded event. */
    double overallRate() const;

    /**
     * Events/sec in the window since the last takeWindow() call;
     * advances the checkpoint to @p now.
     */
    double takeWindowRate(Ns now);

  private:
    Count total_ = 0;
    Count windowEvents_ = 0;
    Ns firstTime_ = 0;
    Ns lastTime_ = 0;
    Ns windowStart_ = 0;
    bool started_ = false;
    bool windowAnchored_ = false; //!< takeWindowRate checkpointed
};

} // namespace thermostat

#endif // THERMOSTAT_COMMON_STATS_HH
