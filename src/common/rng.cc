#include "common/rng.hh"

#include <cmath>

#include "common/logging.hh"

namespace thermostat
{

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : state_) {
        word = splitMix64(sm);
    }
}

Rng
Rng::fork()
{
    return Rng(next() ^ 0xa5a5a5a5deadbeefULL);
}

std::vector<std::uint64_t>
Rng::sampleWithoutReplacement(std::uint64_t n, std::uint64_t k)
{
    std::vector<std::uint64_t> out;
    if (k >= n) {
        out.reserve(n);
        for (std::uint64_t i = 0; i < n; ++i) {
            out.push_back(i);
        }
        return out;
    }
    out.reserve(k);
    // Floyd's algorithm: O(k) draws, distinct by construction.
    for (std::uint64_t j = n - k; j < n; ++j) {
        const std::uint64_t t = nextBounded(j + 1);
        bool seen = false;
        for (const std::uint64_t v : out) {
            if (v == t) {
                seen = true;
                break;
            }
        }
        out.push_back(seen ? j : t);
    }
    return out;
}

double
ZipfSampler::zeta(std::uint64_t n, double theta)
{
    double sum = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i) {
        sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    return sum;
}

ZipfSampler::ZipfSampler(std::uint64_t n, double theta)
    : n_(n), theta_(theta)
{
    TSTAT_ASSERT(n > 0, "ZipfSampler over empty domain");
    TSTAT_ASSERT(theta > 0.0 && theta < 1.0,
                 "ZipfSampler theta must be in (0,1)");
    zetaN_ = zeta(n_, theta_);
    zeta2_ = zeta(2, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2_ / zetaN_);
    halfPowTheta_ = std::pow(0.5, theta_);
}

std::uint64_t
ZipfSampler::sample(Rng &rng) const
{
    const double u = rng.nextDouble();
    const double uz = u * zetaN_;
    if (uz < 1.0) {
        return 0;
    }
    if (uz < 1.0 + halfPowTheta_) {
        return 1;
    }
    const auto idx = static_cast<std::uint64_t>(
        static_cast<double>(n_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return idx >= n_ ? n_ - 1 : idx;
}

double
ZipfSampler::popularity(std::uint64_t rank) const
{
    TSTAT_ASSERT(rank < n_, "popularity rank out of range");
    return 1.0 /
           (std::pow(static_cast<double>(rank + 1), theta_) * zetaN_);
}

} // namespace thermostat
