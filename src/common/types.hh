/**
 * @file
 * Fundamental types shared by every Thermostat module.
 *
 * The simulator models an x86-64 style virtual memory system with a
 * 4KB base page size and 2MB huge pages (512 base pages per huge
 * page).  Addresses, page numbers and simulated time are fixed-width
 * integers so that every experiment is bit-for-bit reproducible.
 */

#ifndef THERMOSTAT_COMMON_TYPES_HH
#define THERMOSTAT_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace thermostat
{

/** A virtual or physical byte address. */
using Addr = std::uint64_t;

/** A virtual page number (address >> page shift). */
using Vpn = std::uint64_t;

/** A physical frame number. */
using Pfn = std::uint64_t;

/** Simulated time in nanoseconds. */
using Ns = std::uint64_t;

/** Counts of events (accesses, faults, migrations, ...). */
using Count = std::uint64_t;

/** Base (small) page geometry. */
constexpr unsigned kPageShift4K = 12;
constexpr Addr kPageSize4K = Addr{1} << kPageShift4K;

/** Huge page geometry. */
constexpr unsigned kPageShift2M = 21;
constexpr Addr kPageSize2M = Addr{1} << kPageShift2M;

/** Number of 4KB pages inside one 2MB huge page. */
constexpr unsigned kSubpagesPerHuge =
    static_cast<unsigned>(kPageSize2M / kPageSize4K);

/** Time unit helpers. */
constexpr Ns kNsPerUs = 1000;
constexpr Ns kNsPerMs = 1000 * kNsPerUs;
constexpr Ns kNsPerSec = 1000 * kNsPerMs;

/** Sentinel for "no frame / no page". */
constexpr std::uint64_t kInvalidPage =
    std::numeric_limits<std::uint64_t>::max();

/** Memory size helpers. */
constexpr std::uint64_t operator""_KiB(unsigned long long v)
{
    return v << 10;
}

constexpr std::uint64_t operator""_MiB(unsigned long long v)
{
    return v << 20;
}

constexpr std::uint64_t operator""_GiB(unsigned long long v)
{
    return v << 30;
}

/** Align @p addr down to the containing 4KB page boundary. */
constexpr Addr
alignDown4K(Addr addr)
{
    return addr & ~(kPageSize4K - 1);
}

/** Align @p addr down to the containing 2MB page boundary. */
constexpr Addr
alignDown2M(Addr addr)
{
    return addr & ~(kPageSize2M - 1);
}

/** Align @p addr up to the next 4KB boundary. */
constexpr Addr
alignUp4K(Addr addr)
{
    return (addr + kPageSize4K - 1) & ~(kPageSize4K - 1);
}

/** Align @p addr up to the next 2MB boundary. */
constexpr Addr
alignUp2M(Addr addr)
{
    return (addr + kPageSize2M - 1) & ~(kPageSize2M - 1);
}

/** Virtual page number (4KB granularity) of @p addr. */
constexpr Vpn
vpn4K(Addr addr)
{
    return addr >> kPageShift4K;
}

/** Virtual page number (2MB granularity) of @p addr. */
constexpr Vpn
vpn2M(Addr addr)
{
    return addr >> kPageShift2M;
}

/** Index of the 4KB subpage of @p addr within its 2MB huge page. */
constexpr unsigned
subpageIndex(Addr addr)
{
    return static_cast<unsigned>((addr >> kPageShift4K) &
                                 (kSubpagesPerHuge - 1));
}

/**
 * Number of address-hash lanes the per-run machine state is split
 * into.  The lane count is a fixed semantic constant, independent of
 * how many worker threads (`--shards`) execute the lanes: results
 * are defined per lane, so any worker count from 1 to kMachineLanes
 * produces bit-identical output.
 */
constexpr unsigned kMachineLanes = 8;

/**
 * Lane owning @p addr.  Keyed by the 2MB region so a huge page and
 * all of its 4KB subpages land in the same lane across THP split and
 * collapse; the Fibonacci hash spreads adjacent regions across
 * lanes.
 */
constexpr unsigned
laneOf(Addr addr)
{
    return static_cast<unsigned>(
        (vpn2M(addr) * 0x9e3779b97f4a7c15ULL) >> 61);
}

/** Whether a memory reference reads or writes its target. */
enum class AccessType : std::uint8_t { Read, Write };

/** The two physical memory tiers of the system. */
enum class Tier : std::uint8_t
{
    Fast, //!< Conventional DRAM (50-100ns).
    Slow  //!< Dense cheap memory, e.g. 3D XPoint (400ns-3us).
};

/** Human-readable tier name. */
constexpr const char *
tierName(Tier tier)
{
    return tier == Tier::Fast ? "fast" : "slow";
}

} // namespace thermostat

#endif // THERMOSTAT_COMMON_TYPES_HH
