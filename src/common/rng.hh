/**
 * @file
 * Deterministic random number generation for the simulator.
 *
 * Every stochastic component (workload generators, the Thermostat
 * sampler, cache/TLB replacement tie-breaks) owns its own Rng stream
 * seeded from a single experiment seed, so runs are reproducible and
 * components do not perturb each other's streams.
 *
 * The core generator is xoshiro256** (Blackman & Vigna), seeded via
 * SplitMix64, both public domain algorithms.
 */

#ifndef THERMOSTAT_COMMON_RNG_HH
#define THERMOSTAT_COMMON_RNG_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/logging.hh"

namespace thermostat
{

/** SplitMix64 step; used for seeding and cheap hashing. */
constexpr std::uint64_t
splitMix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/**
 * xoshiro256** pseudo random generator.
 *
 * Satisfies UniformRandomBitGenerator so it can also drive <random>
 * distributions where convenient.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x5eedULL);

    /** Derive an independent child stream (for a sub-component). */
    Rng fork();

    /**
     * Next raw 64 random bits.  Inline (as are the derived draws
     * below): workload generators call these several times per
     * synthesized memory reference.
     */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;

        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);

        return result;
    }

    std::uint64_t operator()() { return next(); }

    static constexpr std::uint64_t min() { return 0; }
    static constexpr std::uint64_t max() { return ~0ULL; }

    /** Uniform integer in [0, bound); bound must be nonzero. */
    std::uint64_t
    nextBounded(std::uint64_t bound)
    {
        TSTAT_ASSERT(bound != 0, "nextBounded(0)");
        // Lemire-style rejection to remove modulo bias.
        const std::uint64_t threshold = (-bound) % bound;
        for (;;) {
            const std::uint64_t r = next();
            if (r >= threshold) {
                return r % bound;
            }
        }
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    nextRange(std::uint64_t lo, std::uint64_t hi)
    {
        TSTAT_ASSERT(lo <= hi, "nextRange: lo > hi");
        return lo + nextBounded(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability @p p of true. */
    bool nextBool(double p) { return nextDouble() < p; }

    /**
     * Sample @p k distinct indices from [0, n) without replacement
     * (Floyd's algorithm); returns fewer when k > n.
     */
    std::vector<std::uint64_t> sampleWithoutReplacement(std::uint64_t n,
                                                        std::uint64_t k);

    /** Fisher-Yates shuffle of an index vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            const std::size_t j =
                static_cast<std::size_t>(nextBounded(i));
            std::swap(v[i - 1], v[j]);
        }
    }

  private:
    static constexpr std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> state_;
};

/**
 * Repeated uniform draws in [0, bound) with the Lemire rejection
 * threshold (`(-bound) % bound`, one 64-bit division) hoisted to
 * construction.  The draw sequence and results are identical to
 * calling Rng::nextBounded(bound) each time; patterns that draw
 * against a fixed bound on every reference use this to halve the
 * division count per draw.
 */
class BoundedDraw
{
  public:
    BoundedDraw() = default;

    explicit BoundedDraw(std::uint64_t bound)
        : bound_(bound), threshold_((-bound) % bound)
    {
        TSTAT_ASSERT(bound != 0, "BoundedDraw(0)");
    }

    std::uint64_t bound() const { return bound_; }

    std::uint64_t
    operator()(Rng &rng) const
    {
        for (;;) {
            const std::uint64_t r = rng.next();
            if (r >= threshold_) {
                return r % bound_;
            }
        }
    }

  private:
    std::uint64_t bound_ = 1;
    std::uint64_t threshold_ = 0;
};

/**
 * Zipfian sampler over [0, n) with parameter theta, using the
 * Gray-et-al. (YCSB) rejection-free method.  Item 0 is the most
 * popular.  theta in (0, 1) matches YCSB's default skew regime.
 */
class ZipfSampler
{
  public:
    ZipfSampler(std::uint64_t n, double theta);

    /** Draw one item; item 0 is hottest. */
    std::uint64_t sample(Rng &rng) const;

    std::uint64_t itemCount() const { return n_; }
    double theta() const { return theta_; }

    /** Exact popularity of item @p rank (probability mass). */
    double popularity(std::uint64_t rank) const;

  private:
    static double zeta(std::uint64_t n, double theta);

    std::uint64_t n_;
    double theta_;
    double zetaN_;
    double zeta2_;
    double alpha_;
    double eta_;
    double halfPowTheta_; //!< pow(0.5, theta), hoisted out of sample()
};

} // namespace thermostat

#endif // THERMOSTAT_COMMON_RNG_HH
