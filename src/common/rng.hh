/**
 * @file
 * Deterministic random number generation for the simulator.
 *
 * Every stochastic component (workload generators, the Thermostat
 * sampler, cache/TLB replacement tie-breaks) owns its own Rng stream
 * seeded from a single experiment seed, so runs are reproducible and
 * components do not perturb each other's streams.
 *
 * The core generator is xoshiro256** (Blackman & Vigna), seeded via
 * SplitMix64, both public domain algorithms.
 */

#ifndef THERMOSTAT_COMMON_RNG_HH
#define THERMOSTAT_COMMON_RNG_HH

#include <array>
#include <cstdint>
#include <vector>

namespace thermostat
{

/** SplitMix64 step; used for seeding and cheap hashing. */
constexpr std::uint64_t
splitMix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/**
 * xoshiro256** pseudo random generator.
 *
 * Satisfies UniformRandomBitGenerator so it can also drive <random>
 * distributions where convenient.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x5eedULL);

    /** Derive an independent child stream (for a sub-component). */
    Rng fork();

    /** Next raw 64 random bits. */
    std::uint64_t next();

    std::uint64_t operator()() { return next(); }

    static constexpr std::uint64_t min() { return 0; }
    static constexpr std::uint64_t max() { return ~0ULL; }

    /** Uniform integer in [0, bound); bound must be nonzero. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t nextRange(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial with probability @p p of true. */
    bool nextBool(double p);

    /**
     * Sample @p k distinct indices from [0, n) without replacement
     * (Floyd's algorithm); returns fewer when k > n.
     */
    std::vector<std::uint64_t> sampleWithoutReplacement(std::uint64_t n,
                                                        std::uint64_t k);

    /** Fisher-Yates shuffle of an index vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            const std::size_t j =
                static_cast<std::size_t>(nextBounded(i));
            std::swap(v[i - 1], v[j]);
        }
    }

  private:
    std::array<std::uint64_t, 4> state_;
};

/**
 * Zipfian sampler over [0, n) with parameter theta, using the
 * Gray-et-al. (YCSB) rejection-free method.  Item 0 is the most
 * popular.  theta in (0, 1) matches YCSB's default skew regime.
 */
class ZipfSampler
{
  public:
    ZipfSampler(std::uint64_t n, double theta);

    /** Draw one item; item 0 is hottest. */
    std::uint64_t sample(Rng &rng) const;

    std::uint64_t itemCount() const { return n_; }
    double theta() const { return theta_; }

    /** Exact popularity of item @p rank (probability mass). */
    double popularity(std::uint64_t rank) const;

  private:
    static double zeta(std::uint64_t n, double theta);

    std::uint64_t n_;
    double theta_;
    double zetaN_;
    double zeta2_;
    double alpha_;
    double eta_;
};

} // namespace thermostat

#endif // THERMOSTAT_COMMON_RNG_HH
