#include "common/logging.hh"

#include <cstdarg>
#include <vector>

#include "common/mutex.hh"
#include "common/thread_annotations.hh"

namespace thermostat
{

namespace
{

// The log level and pluggable sink are process-wide mutable state
// reachable from every pool worker; g_mutex makes them (and sink
// invocation, see the header's sink contract) race-free, and the
// annotations let clang -Wthread-safety prove no unlocked access.
Mutex g_mutex;
LogLevel g_level TSTAT_GUARDED_BY(g_mutex) = LogLevel::Normal;
LogSink g_sink TSTAT_GUARDED_BY(g_mutex) = nullptr;
void *g_sinkCtx TSTAT_GUARDED_BY(g_mutex) = nullptr;

} // namespace

LogLevel
logLevel()
{
    MutexLock lock(&g_mutex);
    return g_level;
}

void
setLogLevel(LogLevel level)
{
    MutexLock lock(&g_mutex);
    g_level = level;
}

bool
parseLogLevel(const std::string &name, LogLevel *level_out)
{
    if (name == "quiet" || name == "0") {
        *level_out = LogLevel::Quiet;
    } else if (name == "normal" || name == "1") {
        *level_out = LogLevel::Normal;
    } else if (name == "verbose" || name == "2") {
        *level_out = LogLevel::Verbose;
    } else {
        return false;
    }
    return true;
}

void
setLogSink(LogSink sink, void *ctx)
{
    MutexLock lock(&g_mutex);
    g_sink = sink;
    g_sinkCtx = ctx;
}

ScopedLogCapture::ScopedLogCapture()
{
    setLogSink(&ScopedLogCapture::hook, this);
}

ScopedLogCapture::~ScopedLogCapture()
{
    setLogSink(nullptr);
}

void
ScopedLogCapture::hook(LogKind kind, const std::string &msg, void *ctx)
{
    static_cast<ScopedLogCapture *>(ctx)->entries_.push_back(
        {kind, msg});
}

std::size_t
ScopedLogCapture::count(LogKind kind) const
{
    std::size_t n = 0;
    for (const Entry &e : entries_) {
        n += e.kind == kind ? 1 : 0;
    }
    return n;
}

bool
ScopedLogCapture::contains(const std::string &needle) const
{
    for (const Entry &e : entries_) {
        if (e.message.find(needle) != std::string::npos) {
            return true;
        }
    }
    return false;
}

namespace detail
{

std::string
formatString(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    const int needed = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    if (needed < 0) {
        va_end(ap2);
        return std::string(fmt);
    }
    std::vector<char> buf(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<std::size_t>(needed));
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    // The sink runs under g_mutex (see the sink contract in the
    // header): its own state needs no further locking, and messages
    // from concurrent pool jobs never interleave.
    MutexLock lock(&g_mutex);
    if (g_sink) {
        g_sink(LogKind::Warn, msg, g_sinkCtx);
        return;
    }
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg, LogLevel level)
{
    MutexLock lock(&g_mutex);
    if (static_cast<int>(g_level) < static_cast<int>(level)) {
        return;
    }
    if (g_sink) {
        g_sink(level == LogLevel::Verbose ? LogKind::Verbose
                                          : LogKind::Inform,
               msg, g_sinkCtx);
        return;
    }
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace detail

} // namespace thermostat
