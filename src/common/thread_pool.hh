/**
 * @file
 * Fixed-size worker pool for running independent jobs concurrently.
 *
 * The simulator itself is single-threaded by design (DESIGN.md,
 * "Threading model"): one Simulation owns one Machine and mutates it
 * freely with no locks.  Parallelism lives one level up, where a
 * sweep runs many *independent* Simulation instances at once.  This
 * pool is the only concurrency primitive in the tree: a bounded set
 * of workers draining a FIFO of type-erased jobs.
 *
 * Worker count resolution (ThreadPool::defaultJobs) honors the
 * THERMOSTAT_JOBS environment variable so CI and scripts can pin
 * parallelism; otherwise it uses the hardware concurrency.
 */

#ifndef THERMOSTAT_COMMON_THREAD_POOL_HH
#define THERMOSTAT_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.hh"
#include "common/thread_annotations.hh"

namespace thermostat
{

/**
 * A fixed set of worker threads draining a job queue.
 *
 * Jobs must be independent: the pool provides no ordering guarantee
 * between them.  Deterministic result ordering is the caller's
 * responsibility (write results into a pre-sized slot array indexed
 * by job id; see bench/sweep_runner.hh for the canonical pattern).
 */
class ThreadPool
{
  public:
    /**
     * Start @p threads workers (0 = ThreadPool::defaultJobs()).
     * A single-worker pool degrades to serial execution in queue
     * order, which is how the determinism tests compare serial and
     * parallel sweeps.
     */
    explicit ThreadPool(unsigned threads = 0);

    /** Drains outstanding jobs, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue one job. */
    void submit(std::function<void()> job) TSTAT_EXCLUDES(mutex_);

    /**
     * Block until every submitted job has finished running.  If any
     * job threw since the last wait(), rethrows the first captured
     * exception (later ones are dropped); the pool stays usable for
     * further submits afterwards.  The destructor drains without
     * rethrowing.
     */
    void wait() TSTAT_EXCLUDES(mutex_);

    unsigned threadCount() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /**
     * Run fn(i) for every i in [begin, end), batched into chunks of
     * at most @p grainsize indices per job, and block until all are
     * done.  Exceptions propagate like wait(): the first one thrown
     * by any fn call is rethrown here.  fn must be safe to call
     * concurrently for distinct indices; within one chunk indices
     * run in increasing order.
     */
    void parallelFor(std::size_t begin, std::size_t end,
                     std::size_t grainsize,
                     const std::function<void(std::size_t)> &fn)
        TSTAT_EXCLUDES(mutex_);

    /**
     * Worker count from the environment: THERMOSTAT_JOBS when set to
     * a positive integer, else std::thread::hardware_concurrency()
     * (minimum 1).
     */
    static unsigned defaultJobs();

  private:
    void workerLoop() TSTAT_EXCLUDES(mutex_);
    void drain() TSTAT_EXCLUDES(mutex_);

    std::vector<std::thread> workers_; //!< ctor/dtor thread only

    // Everything below is the pool's shared state; Clang's
    // -Wthread-safety proves every access happens under mutex_
    // (common/mutex.hh explains the annotated-wrapper scheme).
    Mutex mutex_;
    // condition_variable_any waits on the annotated Mutex directly.
    std::condition_variable_any workReady_; //!< job arrived / stop
    std::condition_variable_any allDone_;   //!< everything drained
    std::deque<std::function<void()>> queue_ TSTAT_GUARDED_BY(mutex_);
    std::size_t inFlight_ TSTAT_GUARDED_BY(mutex_) =
        0; //!< queued + currently executing
    bool stopping_ TSTAT_GUARDED_BY(mutex_) = false;
    std::exception_ptr firstError_ TSTAT_GUARDED_BY(mutex_);
};

} // namespace thermostat

#endif // THERMOSTAT_COMMON_THREAD_POOL_HH
