/**
 * @file
 * Deterministic fixed permutation of [0, n).
 *
 * Workload generators map logical item ranks to addresses through a
 * bijection.  A hash-table-backed store (Redis) scatters hot keys
 * uniformly over its address space -- the effect the paper points at
 * when explaining why Redis pages are uniformly warm (Sec 5) -- while
 * a log- or table-structured store keeps ranks roughly in order.
 *
 * Implemented as a 4-round Feistel network over a power-of-two domain
 * with cycle walking to reach exactly [0, n); O(1) per evaluation,
 * no tables.
 */

#ifndef THERMOSTAT_COMMON_PERMUTATION_HH
#define THERMOSTAT_COMMON_PERMUTATION_HH

#include <cstdint>

namespace thermostat
{

/** A seeded bijection on [0, size). */
class FixedPermutation
{
  public:
    FixedPermutation(std::uint64_t size, std::uint64_t seed);

    /**
     * Image of @p index under the permutation.  Inline: workload
     * generators evaluate this once per synthesized reference.
     */
    std::uint64_t
    map(std::uint64_t index) const
    {
        // Cycle walking: re-encrypt until the image lands in [0,n).
        std::uint64_t value = feistel(index);
        while (value >= size_) {
            value = feistel(value);
        }
        return value;
    }

    std::uint64_t size() const { return size_; }

  private:
    std::uint64_t
    feistel(std::uint64_t value) const
    {
        std::uint64_t left = (value >> halfBits_) & halfMask_;
        std::uint64_t right = value & halfMask_;
        for (const std::uint64_t key : keys_) {
            std::uint64_t mix = right ^ key;
            mix = (mix ^ (mix >> 30)) * 0xbf58476d1ce4e5b9ULL;
            mix = (mix ^ (mix >> 27)) * 0x94d049bb133111ebULL;
            mix ^= mix >> 31;
            const std::uint64_t next_right = left ^ (mix & halfMask_);
            left = right;
            right = next_right;
        }
        return (left << halfBits_) | right;
    }

    std::uint64_t size_;
    unsigned halfBits_;
    std::uint64_t halfMask_;
    std::uint64_t keys_[4];
};

/** The identity mapping, for generators that preserve locality. */
class IdentityPermutation
{
  public:
    explicit IdentityPermutation(std::uint64_t size) : size_(size) {}

    std::uint64_t map(std::uint64_t index) const { return index; }
    std::uint64_t size() const { return size_; }

  private:
    std::uint64_t size_;
};

} // namespace thermostat

#endif // THERMOSTAT_COMMON_PERMUTATION_HH
