#include "common/permutation.hh"

#include <bit>

#include "common/logging.hh"
#include "common/rng.hh"

namespace thermostat
{

FixedPermutation::FixedPermutation(std::uint64_t size, std::uint64_t seed)
    : size_(size)
{
    TSTAT_ASSERT(size > 0, "FixedPermutation over empty domain");
    // Domain for the Feistel network: smallest even-bit power of two
    // covering size (even so the two halves are equal width).
    unsigned bits = std::bit_width(size - 1);
    if (bits < 2) {
        bits = 2;
    }
    if (bits % 2) {
        ++bits;
    }
    halfBits_ = bits / 2;
    halfMask_ = (std::uint64_t{1} << halfBits_) - 1;
    std::uint64_t s = seed ^ 0xfeedface0badf00dULL;
    for (auto &key : keys_) {
        key = splitMix64(s);
    }
}

} // namespace thermostat
