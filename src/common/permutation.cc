#include "common/permutation.hh"

#include <bit>

#include "common/logging.hh"
#include "common/rng.hh"

namespace thermostat
{

FixedPermutation::FixedPermutation(std::uint64_t size, std::uint64_t seed)
    : size_(size)
{
    TSTAT_ASSERT(size > 0, "FixedPermutation over empty domain");
    // Domain for the Feistel network: smallest even-bit power of two
    // covering size (even so the two halves are equal width).
    unsigned bits = std::bit_width(size - 1);
    if (bits < 2) {
        bits = 2;
    }
    if (bits % 2) {
        ++bits;
    }
    halfBits_ = bits / 2;
    halfMask_ = (std::uint64_t{1} << halfBits_) - 1;
    std::uint64_t s = seed ^ 0xfeedface0badf00dULL;
    for (auto &key : keys_) {
        key = splitMix64(s);
    }
}

std::uint64_t
FixedPermutation::feistel(std::uint64_t value) const
{
    std::uint64_t left = (value >> halfBits_) & halfMask_;
    std::uint64_t right = value & halfMask_;
    for (const std::uint64_t key : keys_) {
        std::uint64_t mix = right ^ key;
        mix = (mix ^ (mix >> 30)) * 0xbf58476d1ce4e5b9ULL;
        mix = (mix ^ (mix >> 27)) * 0x94d049bb133111ebULL;
        mix ^= mix >> 31;
        const std::uint64_t next_right = left ^ (mix & halfMask_);
        left = right;
        right = next_right;
    }
    return (left << halfBits_) | right;
}

std::uint64_t
FixedPermutation::map(std::uint64_t index) const
{
    TSTAT_ASSERT(index < size_, "permutation index out of range");
    // Cycle walking: re-encrypt until the image lands inside [0,n).
    std::uint64_t value = feistel(index);
    while (value >= size_) {
        value = feistel(value);
    }
    return value;
}

} // namespace thermostat
