/**
 * @file
 * gem5-style status/error reporting helpers.
 *
 * panic()  - internal invariant violated; aborts.
 * fatal()  - unrecoverable user/configuration error; exits cleanly.
 * warn()   - suspicious but survivable condition.
 * inform() - status message.
 *
 * All messages go to stderr so that experiment output on stdout stays
 * machine-parseable.
 */

#ifndef THERMOSTAT_COMMON_LOGGING_HH
#define THERMOSTAT_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

namespace thermostat
{

/** Verbosity threshold for inform(); warn/fatal/panic always print. */
enum class LogLevel : int { Quiet = 0, Normal = 1, Verbose = 2 };

/** Process-wide log verbosity (default Normal). */
LogLevel logLevel();

/** Set the process-wide log verbosity. */
void setLogLevel(LogLevel level);

/** Parse "quiet"/"normal"/"verbose" (or 0/1/2); false if unknown. */
bool parseLogLevel(const std::string &name, LogLevel *level_out);

/** Message severity as seen by a log sink. */
enum class LogKind : int { Warn = 0, Inform = 1, Verbose = 2 };

/**
 * Receiver of warn()/inform()/verbose() messages; panic and fatal
 * always go to stderr regardless.  The sink replaces the default
 * stderr output entirely while installed.
 *
 * Sink contract: the sink is invoked under the logging layer's
 * internal mutex, so concurrent warn()/inform() calls from pool
 * workers are serialized and the sink needs no locking of its own --
 * but it must not log or (un)install sinks itself (the mutex is not
 * recursive).
 */
using LogSink = void (*)(LogKind kind, const std::string &msg,
                         void *ctx);

/** Install (or with nullptr remove) the process-wide log sink. */
void setLogSink(LogSink sink, void *ctx = nullptr);

/**
 * RAII log capture for tests: while alive, warn/inform messages are
 * collected into the instance instead of stderr.  Not reentrant --
 * only one capture may be alive at a time.
 */
class ScopedLogCapture
{
  public:
    ScopedLogCapture();
    ~ScopedLogCapture();

    ScopedLogCapture(const ScopedLogCapture &) = delete;
    ScopedLogCapture &operator=(const ScopedLogCapture &) = delete;

    struct Entry
    {
        LogKind kind;
        std::string message;
    };

    const std::vector<Entry> &entries() const { return entries_; }

    /** Number of captured messages of @p kind. */
    std::size_t count(LogKind kind) const;

    /** True if any captured message contains @p needle. */
    bool contains(const std::string &needle) const;

  private:
    static void hook(LogKind kind, const std::string &msg, void *ctx);

    std::vector<Entry> entries_;
};

namespace detail
{

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg, LogLevel level);

/** Minimal printf-style formatting into a std::string. */
std::string formatString(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace detail

/**
 * Abort on a broken internal invariant (a Thermostat bug, never a
 * user error).
 */
#define TSTAT_PANIC(...)                                                  \
    ::thermostat::detail::panicImpl(                                     \
        __FILE__, __LINE__,                                              \
        ::thermostat::detail::formatString(__VA_ARGS__))

/** Exit on an unrecoverable user/configuration error. */
#define TSTAT_FATAL(...)                                                  \
    ::thermostat::detail::fatalImpl(                                     \
        ::thermostat::detail::formatString(__VA_ARGS__))

/** Report a survivable but suspicious condition. */
#define TSTAT_WARN(...)                                                   \
    ::thermostat::detail::warnImpl(                                      \
        ::thermostat::detail::formatString(__VA_ARGS__))

/** Report normal operating status (suppressed when Quiet). */
#define TSTAT_INFORM(...)                                                 \
    ::thermostat::detail::informImpl(                                    \
        ::thermostat::detail::formatString(__VA_ARGS__),                 \
        ::thermostat::LogLevel::Normal)

/** Report detailed status (printed only when Verbose). */
#define TSTAT_VERBOSE(...)                                                \
    ::thermostat::detail::informImpl(                                    \
        ::thermostat::detail::formatString(__VA_ARGS__),                 \
        ::thermostat::LogLevel::Verbose)

/** Panic with a formatted message unless @p cond holds. */
#define TSTAT_ASSERT(cond, ...)                                           \
    do {                                                                 \
        if (!(cond)) {                                                   \
            ::thermostat::detail::panicImpl(                             \
                __FILE__, __LINE__,                                      \
                std::string("assertion failed: ") + #cond + ": " +       \
                    ::thermostat::detail::formatString(__VA_ARGS__));    \
        }                                                                \
    } while (0)

} // namespace thermostat

#endif // THERMOSTAT_COMMON_LOGGING_HH
