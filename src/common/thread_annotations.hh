/**
 * @file
 * Clang Thread Safety Analysis annotation macros.
 *
 * These expand to Clang's `capability`-family attributes so that
 * `-Wthread-safety` statically proves the locking discipline of the
 * tree's intentionally-shared state (the ThreadPool queue and the
 * pluggable log sink); on GCC and other compilers they compile away
 * to nothing.  CI's static-analysis job builds with
 * `clang++ -Wthread-safety -Werror`, making a data race on annotated
 * state a compile error rather than a TSan lottery ticket.
 *
 * Use them through common/mutex.hh's annotated Mutex/MutexLock
 * wrappers: libstdc++'s std::mutex and std::lock_guard carry no
 * capability attributes, so guarding members with a raw std::mutex
 * would make every access a false positive under the analysis.
 *
 * Naming follows the Clang documentation (and Abseil's macros of the
 * same shape): GUARDED_BY on data, REQUIRES/EXCLUDES on functions,
 * ACQUIRE/RELEASE on lock primitives.
 */

#ifndef THERMOSTAT_COMMON_THREAD_ANNOTATIONS_HH
#define THERMOSTAT_COMMON_THREAD_ANNOTATIONS_HH

#if defined(__clang__)
#define TSTAT_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define TSTAT_THREAD_ANNOTATION(x) // no-op outside Clang
#endif

// NOLINTBEGIN(bugprone-macro-parentheses): attribute arguments are
// lock expressions, not arithmetic; parenthesizing them changes the
// attribute grammar.

/** Marks a type as a lockable capability ("mutex"). */
#define TSTAT_CAPABILITY(x) TSTAT_THREAD_ANNOTATION(capability(x))

/** Marks an RAII type that acquires in its ctor, releases in dtor. */
#define TSTAT_SCOPED_CAPABILITY \
    TSTAT_THREAD_ANNOTATION(scoped_lockable)

/** Data member readable/writable only while holding the lock. */
#define TSTAT_GUARDED_BY(x) TSTAT_THREAD_ANNOTATION(guarded_by(x))

/** Pointer member whose *pointee* is guarded by the lock. */
#define TSTAT_PT_GUARDED_BY(x) \
    TSTAT_THREAD_ANNOTATION(pt_guarded_by(x))

/** Function callable only while holding the listed capabilities. */
#define TSTAT_REQUIRES(...) \
    TSTAT_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Function callable only while NOT holding the listed locks. */
#define TSTAT_EXCLUDES(...) \
    TSTAT_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Function that acquires the capability (no args = `this`). */
#define TSTAT_ACQUIRE(...) \
    TSTAT_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function that releases the capability (no args = `this`). */
#define TSTAT_RELEASE(...) \
    TSTAT_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function that acquires iff it returns the given value. */
#define TSTAT_TRY_ACQUIRE(...) \
    TSTAT_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/**
 * Runtime no-op telling the analysis the capability is held here;
 * the escape hatch for condition-variable predicate lambdas, which
 * run under the lock but are analyzed as plain functions.
 */
#define TSTAT_ASSERT_CAPABILITY(...) \
    TSTAT_THREAD_ANNOTATION(assert_capability(__VA_ARGS__))

/** Function returning a reference to the named capability. */
#define TSTAT_RETURN_CAPABILITY(x) \
    TSTAT_THREAD_ANNOTATION(lock_returned(x))

/** Opt a function out of the analysis entirely (last resort). */
#define TSTAT_NO_THREAD_SAFETY_ANALYSIS \
    TSTAT_THREAD_ANNOTATION(no_thread_safety_analysis)

// NOLINTEND(bugprone-macro-parentheses)

#endif // THERMOSTAT_COMMON_THREAD_ANNOTATIONS_HH
