/**
 * @file
 * Spatial-extrapolation access-rate estimation (paper Sec 3.2).
 *
 * Thermostat cannot afford to poison all 512 4KB subpages of every
 * sampled huge page, so it (i) uses the hardware Accessed bits to
 * find the subpages with a non-zero access rate, (ii) poisons a
 * random sample of at most K of those, and (iii) extrapolates:
 *
 *   rate(2MB) = rate(poisoned sample) * accessed_count / sampled_count
 *
 * The unaccessed subpages are assumed to contribute negligibly.
 */

#ifndef THERMOSTAT_CORE_ACCESS_ESTIMATOR_HH
#define THERMOSTAT_CORE_ACCESS_ESTIMATOR_HH

#include <cstdint>

#include "common/types.hh"

namespace thermostat
{

/** Inputs and result of one huge-page rate estimate. */
struct RateEstimate
{
    Addr pageBase = 0;            //!< virtual base of the page
    std::uint64_t pageBytes = 0;  //!< 2MB, or 4KB for base pages
    Count sampledFaults = 0;      //!< faults on poisoned subpages
    unsigned poisonedCount = 0;   //!< subpages poisoned
    unsigned accessedCount = 0;   //!< subpages with A bit set
    Ns window = 0;                //!< observation window

    /** Estimated accesses/sec for the whole page. */
    double estimatedRate() const;
};

/**
 * Compute the spatially-extrapolated access rate.
 *
 * @param sampled_faults Weighted fault count over the window.
 * @param poisoned_count Number of poisoned (monitored) subpages.
 * @param accessed_count Number of subpages with non-zero rate.
 * @param window Observation window.
 * @return Estimated accesses/sec; 0 when nothing was monitored.
 */
double estimateAccessRate(Count sampled_faults, unsigned poisoned_count,
                          unsigned accessed_count, Ns window);

/**
 * De-bias an Accessed-bit population observed through a scaled
 * access stream (simulation-fidelity shim, not part of the paper's
 * mechanism).  When the reference stream delivers only every q-th
 * access, subpages with few accesses in the window are never
 * marked; assuming Poisson per-subpage arrivals, an observed marked
 * fraction f corresponds to a true accessed fraction
 * 1 - (1 - f)^q.
 *
 * @param marked Subpages whose Accessed bit was observed set.
 * @param total Subpages scanned (512 for a 2MB page).
 * @param stream_quantum Real accesses represented per stream sample
 *        (q = 1 means the stream is exact; no correction).
 * @return Estimated number of subpages a full-rate stream would
 *         have marked; always >= marked.
 */
unsigned debiasAccessedCount(unsigned marked, unsigned total,
                             double stream_quantum);

} // namespace thermostat

#endif // THERMOSTAT_CORE_ACCESS_ESTIMATOR_HH
