#include "core/idle_policy.hh"

namespace thermostat
{

IdlePagePolicy::IdlePagePolicy(AddressSpace &space, Kstaled &kstaled,
                               PageMigrator &migrator, BadgerTrap &trap,
                               const IdlePolicyConfig &config)
    : space_(space),
      kstaled_(kstaled),
      migrator_(migrator),
      trap_(trap),
      config_(config)
{
}

std::uint64_t
IdlePagePolicy::placedBytes() const
{
    std::uint64_t bytes = 0;
    for (const Addr page : placed_) {
        // Placed pages are 2MB leaves (the policy scans huge pages;
        // 4KB mappings are left alone like kstaled does).
        (void)page;
        bytes += kPageSize2M;
    }
    return bytes;
}

double
IdlePagePolicy::idleFraction()
{
    return kstaled_.hugeIdleFraction(config_.idleScans);
}

void
IdlePagePolicy::tick(Ns now)
{
    while (now >= nextScan_) {
        scanAndPlace(now);
        nextScan_ += config_.scanPeriod;
    }
}

void
IdlePagePolicy::scanAndPlace(Ns now)
{
    kstaled_.scanAll();
    ++stats_.scans;

    std::vector<Addr> to_place;
    std::vector<Addr> to_promote;
    space_.pageTable().forEachLeaf(
        [&](Addr base, Pte &, bool huge) {
            if (!huge) {
                return;
            }
            const PageIdleState state = kstaled_.idleState(base);
            const bool is_placed =
                placed_.find(base) != placed_.end();
            if (!is_placed && state.idleScans >= config_.idleScans) {
                to_place.push_back(base);
            } else if (is_placed && config_.promoteOnAccess &&
                       state.idleScans == 0) {
                to_promote.push_back(base);
            }
        });

    for (const Addr base : to_place) {
        if (!migrator_.migrate(base, Tier::Slow, now).moved) {
            continue;
        }
        if (config_.poisonPlacedPages) {
            trap_.poison(base);
        }
        placed_.insert(base);
        ++stats_.placed;
    }
    for (const Addr base : to_promote) {
        if (!migrator_.migrate(base, Tier::Fast, now).moved) {
            continue;
        }
        if (config_.poisonPlacedPages) {
            trap_.unpoison(base);
        }
        placed_.erase(base);
        ++stats_.promoted;
    }
}

} // namespace thermostat
