/**
 * @file
 * The Thermostat engine (paper Sec 3).
 *
 * A periodic daemon driving the three-stage sampling pipeline of
 * Figure 4 over each sampling period:
 *
 *   Stage 1 (split):    randomly select ~5% of huge pages, split
 *                       them, clear subpage Accessed bits.
 *   Stage 2 (poison):   read Accessed bits, poison <=50 accessed
 *                       subpages per sampled page.
 *   Stage 3 (classify): estimate per-page rates by spatial
 *                       extrapolation, place the coldest sampled
 *                       pages in slow memory within the f-scaled
 *                       rate budget, and run the mis-classification
 *                       corrector over the resident cold set.
 *
 * Cold pages remain poisoned while in slow memory so their access
 * counts keep accumulating at low overhead; the corrector promotes
 * the hottest of them whenever the aggregate measured rate exceeds
 * the budget (Sec 3.5), which also adapts to working-set changes.
 */

#ifndef THERMOSTAT_CORE_THERMOSTAT_HH
#define THERMOSTAT_CORE_THERMOSTAT_HH

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "obs/event_trace.hh"
#include "core/classifier.hh"
#include "core/sampler.hh"
#include "sys/badger_trap.hh"
#include "sys/kstaled.hh"
#include "sys/mem_cgroup.hh"
#include "sys/migration.hh"
#include "vm/address_space.hh"

namespace thermostat
{

class MetricRegistry;

/** Engine-level counters. */
struct EngineStats
{
    Count periods = 0;
    Count coldHugePlaced = 0;
    Count coldBasePlaced = 0;
    Count pagesSpread = 0;     //!< Sec 6 extension: split-and-spread
    Count spreadSubpagesDemoted = 0;
    Count promotions = 0;
    Count collapseFailures = 0;
    Count migrationFailures = 0;
    Ns overheadTime = 0; //!< total monitoring+migration CPU charged

    // Graceful-degradation counters (zero without fault injection).
    Count quarantined = 0;        //!< pages benched after repeated
                                  //!< demotion failures
    Count unquarantined = 0;      //!< quarantines expired
    Count throttledPeriods = 0;   //!< classify periods that skipped
                                  //!< placement (slow tier unhealthy)
    Count evacuationPromotions = 0; //!< pages pulled off retired
                                    //!< slow-tier blocks
};

/**
 * The application-transparent page management engine.
 */
class ThermostatEngine
{
  public:
    ThermostatEngine(MemCgroup &cgroup, AddressSpace &space,
                     BadgerTrap &trap, Kstaled &kstaled,
                     PageMigrator &migrator, Rng rng);

    /**
     * Advance the engine to @p now; runs any pipeline stage whose
     * time has come.  Call at least once per stage length
     * (samplingPeriod / 3).
     */
    void tick(Ns now);

    /** Huge pages currently placed in slow memory. */
    const std::unordered_set<Addr> &coldHugePages() const
    {
        return coldHuge_;
    }

    /** Standalone 4KB pages currently placed in slow memory. */
    const std::unordered_set<Addr> &coldBasePages() const
    {
        return coldBase_;
    }

    /** Bytes currently placed in slow memory. */
    std::uint64_t coldBytes() const;

    /**
     * True while the 2MB range at @p base is split for this
     * period's profiling (between the split and classify stages).
     * Khugepaged must not collapse such ranges: before the poison
     * stage runs there is no poisoned PTE to warn it off, and a
     * premature collapse would turn the sampler's subpage poison
     * into a whole-huge-page poison in fast memory.
     */
    bool
    isProfilingRange(Addr base) const
    {
        return profilingRanges_.find(base) != profilingRanges_.end();
    }

    /** Aggregate slow-memory access-rate budget (accesses/sec). */
    double targetRate() const;

    /**
     * Measured slow-memory access rate at each classification point
     * (accesses/sec over the preceding period); Figure 3's series.
     */
    const TimeSeries &slowRateSeries() const { return slowRateSeries_; }

    const EngineStats &stats() const { return stats_; }

    /**
     * Attach a lifecycle tracer: the engine emits sample/split,
     * classification, spread and correction events, and keeps the
     * tracer's ambient simulated clock current so downstream
     * emitters (BadgerTrap, khugepaged) timestamp correctly.
     */
    void setTracer(EventTracer *tracer) { tracer_ = tracer; }

    /** Expose engine counters under "<prefix>." in @p registry. */
    void registerMetrics(MetricRegistry &registry,
                         const std::string &prefix) const;

    /**
     * Monitoring/migration CPU time accumulated since the last call
     * (the simulation charges it to the application's epoch).
     */
    Ns takeOverhead();

    /**
     * Simulation-fidelity shim: real accesses represented per
     * reference-stream sample, used to de-bias Accessed-bit
     * populations (see debiasAccessedCount()).  1 = exact stream.
     */
    void setMarkingQuantum(double quantum) { markingQuantum_ = quantum; }

    /** Pages currently benched after repeated demotion failures. */
    std::size_t quarantinedPages() const
    {
        return quarantineUntil_.size();
    }

  private:
    enum class Stage { Split, Poison, Classify };

    Ns stageLength() const;
    void runSplitStage(Ns now);
    void runPoisonStage(Ns now);
    void runClassifyStage(Ns now);
    void applyClassification(const Classification &classes, Ns now);
    bool trySpreadHotPage(const SampledPage &page, Ns now);
    void runCorrection(Ns now);
    void accrueOverhead();

    // Graceful degradation (no-ops unless the memory system has a
    // fault injector attached; see the byte-identical rule in
    // DESIGN.md).
    bool faultAware() const;
    bool isQuarantined(Addr base, Ns now);
    void noteDemotionOutcome(Addr base, bool moved, Ns now);
    void processEvacuations(Ns now);

    MemCgroup &cgroup_;
    AddressSpace &space_;
    BadgerTrap &trap_;
    Kstaled &kstaled_;
    PageMigrator &migrator_;
    Rng rng_;
    Sampler sampler_;

    Stage nextStage_ = Stage::Split;
    Ns nextStageTime_ = 0;
    Ns poisonStart_ = 0;
    Ns lastClassify_ = 0;
    std::vector<Addr> splitBases_;
    std::vector<Addr> sampledBase_;
    std::unordered_set<Addr> profilingRanges_;
    std::vector<SampledPage> profiled_;
    std::unordered_map<Addr, const SampledPage *> profiledByBase_;

    std::unordered_set<Addr> coldHuge_;
    std::unordered_set<Addr> coldBase_;

    /** Consecutive demotion failures per page (fault-aware mode). */
    std::unordered_map<Addr, Count> demotionFailures_;
    /** Benched pages and when their quarantine expires. */
    std::unordered_map<Addr, Ns> quarantineUntil_;
    /** Retired slow-tier blocks still awaiting evacuation. */
    std::vector<Pfn> evacuationBacklog_;

    TimeSeries slowRateSeries_{"slow_mem_access_rate"};
    EngineStats stats_;
    EventTracer *tracer_ = nullptr;
    double markingQuantum_ = 1.0;
    Ns pendingOverhead_ = 0;
    Ns seenKstaledCost_ = 0;
    Ns seenTrapMaintenance_ = 0;
};

} // namespace thermostat

#endif // THERMOSTAT_CORE_THERMOSTAT_HH
