#include "core/access_estimator.hh"

#include <algorithm>
#include <cmath>

namespace thermostat
{

unsigned
debiasAccessedCount(unsigned marked, unsigned total,
                    double stream_quantum)
{
    if (marked == 0 || total == 0 || stream_quantum <= 1.0) {
        return marked;
    }
    if (marked >= total) {
        return total;
    }
    const double f = static_cast<double>(marked) /
                     static_cast<double>(total);
    const double true_frac =
        1.0 - std::pow(1.0 - f, stream_quantum);
    const auto est = static_cast<unsigned>(
        std::lround(true_frac * static_cast<double>(total)));
    return std::clamp(est, marked, total);
}

double
estimateAccessRate(Count sampled_faults, unsigned poisoned_count,
                   unsigned accessed_count, Ns window)
{
    if (poisoned_count == 0 || window == 0) {
        return 0.0;
    }
    const double sample_rate =
        static_cast<double>(sampled_faults) *
        static_cast<double>(kNsPerSec) / static_cast<double>(window);
    // Scale the sampled subpages' rate up by the number of subpages
    // known (via Accessed bits) to have a non-zero access rate.
    const double scale = static_cast<double>(accessed_count) /
                         static_cast<double>(poisoned_count);
    return sample_rate * (scale < 1.0 ? 1.0 : scale);
}

double
RateEstimate::estimatedRate() const
{
    return estimateAccessRate(sampledFaults, poisonedCount,
                              accessedCount, window);
}

} // namespace thermostat
