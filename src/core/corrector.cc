#include "core/corrector.hh"

#include <algorithm>

namespace thermostat
{

CorrectionPlan
planCorrection(std::vector<PageRate> cold_rates, double target_rate)
{
    CorrectionPlan plan;
    for (const PageRate &page : cold_rates) {
        plan.measuredRate += page.rate;
    }
    plan.residualRate = plan.measuredRate;
    if (plan.measuredRate <= target_rate) {
        return plan;
    }

    // Hottest first: each promotion buys the most rate reduction per
    // byte of fast memory reclaimed from the budget.
    std::sort(cold_rates.begin(), cold_rates.end(),
              [](const PageRate &a, const PageRate &b) {
                  if (a.rate != b.rate) {
                      return a.rate > b.rate;
                  }
                  return a.base < b.base;
              });
    for (const PageRate &page : cold_rates) {
        if (plan.residualRate <= target_rate) {
            break;
        }
        plan.promote.push_back(page);
        plan.residualRate -= page.rate;
    }
    return plan;
}

} // namespace thermostat
