#include "core/classifier.hh"

#include <algorithm>

#include "common/logging.hh"

namespace thermostat
{

double
slowdownToRateBudget(double tolerable_slowdown_pct, Ns slow_mem_latency)
{
    TSTAT_ASSERT(slow_mem_latency > 0, "zero slow-memory latency");
    const double ts_sec = static_cast<double>(slow_mem_latency) /
                          static_cast<double>(kNsPerSec);
    return tolerable_slowdown_pct / (100.0 * ts_sec);
}

Classification
classifyPages(std::vector<PageRate> rates, double budget_rate)
{
    std::sort(rates.begin(), rates.end(),
              [](const PageRate &a, const PageRate &b) {
                  if (a.rate != b.rate) {
                      return a.rate < b.rate;
                  }
                  return a.base < b.base; // deterministic tie-break
              });

    Classification result;
    double spent = 0.0;
    for (PageRate &page : rates) {
        if (spent + page.rate <= budget_rate) {
            spent += page.rate;
            result.cold.push_back(page);
        } else {
            result.hot.push_back(page);
        }
    }
    result.coldAggregateRate = spent;
    return result;
}

} // namespace thermostat
