/**
 * @file
 * Page sampling for access-rate profiling (paper Sec 3.2).
 *
 * Each sampling period Thermostat randomly selects a fraction
 * (default 5%) of the application's huge pages, splits them into
 * 4KB mappings, uses the hardware Accessed bits to find subpages
 * with non-zero rate, and poisons at most K (default 50) of those
 * for software access counting.  Standalone 4KB pages are sampled
 * and poisoned directly.  Only ~0.5% of memory is under the costly
 * poison-based monitoring at any time, keeping overhead under 1%.
 */

#ifndef THERMOSTAT_CORE_SAMPLER_HH
#define THERMOSTAT_CORE_SAMPLER_HH

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "sys/badger_trap.hh"
#include "sys/kstaled.hh"
#include "vm/address_space.hh"

namespace thermostat
{

/** One page under profiling in the current period. */
struct SampledPage
{
    Addr base = 0;
    bool huge = false;            //!< was a 2MB page (now split)
    std::vector<Addr> poisoned;   //!< poisoned 4KB subpages
    std::vector<Addr> accessed;   //!< subpages whose A bit was set
    unsigned accessedSubpages = 0;
};

/** Sampler counters. */
struct SamplerStats
{
    Count hugeSampled = 0;
    Count baseSampled = 0;
    Count splits = 0;
    Count subpagesPoisoned = 0;
};

/**
 * Selects, splits and poisons the per-period profiling sample.
 */
class Sampler
{
  public:
    Sampler(AddressSpace &space, BadgerTrap &trap, Kstaled &kstaled,
            Rng rng);

    /**
     * Stage 1: choose ~fraction of the huge pages (excluding
     * @p exclude, e.g. pages already in slow memory), split them,
     * and clear their subpages' Accessed bits so the next scan
     * reflects this period only.
     * @return bases of the split pages.
     */
    std::vector<Addr> selectAndSplit(
        double fraction, const std::unordered_set<Addr> &exclude);

    /**
     * Stage 1 for standalone 4KB pages (non-THP mappings): select
     * ~fraction, excluding @p exclude and subpages of @p split_bases,
     * and clear their Accessed bits.
     */
    std::vector<Addr> selectBasePages(
        double fraction, const std::unordered_set<Addr> &exclude,
        const std::vector<Addr> &split_bases);

    /**
     * Stage 2 for one split huge page: read the subpages' Accessed
     * bits, poison at most @p budget of the accessed subpages, and
     * return the bookkeeping needed for estimation.
     */
    SampledPage poisonSubpages(Addr huge_base, unsigned budget);

    /** Stage 2 for a standalone 4KB page: poison it directly. */
    SampledPage poisonBasePage(Addr base);

    const SamplerStats &stats() const { return stats_; }

  private:
    AddressSpace &space_;
    BadgerTrap &trap_;
    Kstaled &kstaled_;
    Rng rng_;
    SamplerStats stats_;
};

} // namespace thermostat

#endif // THERMOSTAT_CORE_SAMPLER_HH
