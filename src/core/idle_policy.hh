/**
 * @file
 * The naive Accessed-bit placement policy Thermostat argues against
 * (paper Sec 1/2.1, Figure 1).
 *
 * kstaled-style scanning flags pages whose Accessed bit stayed clear
 * for an idle threshold (10s in Figure 1); this policy simply moves
 * every such page to slow memory.  It has no notion of access
 * *rate*, so it cannot bound the resulting slowdown -- the paper
 * measures >10% degradation for Redis -- and (optionally) never
 * promotes pages back.
 */

#ifndef THERMOSTAT_CORE_IDLE_POLICY_HH
#define THERMOSTAT_CORE_IDLE_POLICY_HH

#include <cstdint>
#include <unordered_set>

#include "common/types.hh"
#include "sys/badger_trap.hh"
#include "sys/kstaled.hh"
#include "sys/migration.hh"
#include "vm/address_space.hh"

namespace thermostat
{

/** Idle-policy knobs. */
struct IdlePolicyConfig
{
    /** Time between Accessed-bit scans. */
    Ns scanPeriod = 2 * kNsPerSec;

    /** Consecutive idle scans before a page counts as cold. */
    unsigned idleScans = 5; // 5 x 2s = the paper's 10 seconds

    /**
     * Poison placed pages so accesses to them cost the emulated
     * slow-memory latency (how Figure 1's degradation was measured).
     */
    bool poisonPlacedPages = true;

    /**
     * Promote a placed page the next time a scan sees its Accessed
     * bit (a mild improvement the paper's naive baseline lacks).
     */
    bool promoteOnAccess = false;
};

/** Counters. */
struct IdlePolicyStats
{
    Count scans = 0;
    Count placed = 0;
    Count promoted = 0;
};

/**
 * Periodic driver: scan, demote idle pages, optionally promote
 * re-accessed ones.  Call tick() at least once per scan period.
 */
class IdlePagePolicy
{
  public:
    IdlePagePolicy(AddressSpace &space, Kstaled &kstaled,
                   PageMigrator &migrator, BadgerTrap &trap,
                   const IdlePolicyConfig &config = {});

    /** Advance to @p now; scans/placements happen on period ticks. */
    void tick(Ns now);

    const std::unordered_set<Addr> &placedPages() const
    {
        return placed_;
    }

    std::uint64_t placedBytes() const;

    /** Fraction of 2MB pages currently idle >= the threshold. */
    double idleFraction();

    const IdlePolicyStats &stats() const { return stats_; }
    const IdlePolicyConfig &config() const { return config_; }

  private:
    void scanAndPlace(Ns now);

    AddressSpace &space_;
    Kstaled &kstaled_;
    PageMigrator &migrator_;
    BadgerTrap &trap_;
    IdlePolicyConfig config_;
    IdlePolicyStats stats_;
    std::unordered_set<Addr> placed_;
    Ns nextScan_ = 0;
};

} // namespace thermostat

#endif // THERMOSTAT_CORE_IDLE_POLICY_HH
