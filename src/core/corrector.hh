/**
 * @file
 * Mis-classification detection and correction (paper Sec 3.5).
 *
 * Pages in slow memory remain poisoned, so every TLB miss to them is
 * counted at low overhead (they are cold by construction).  Each
 * sampling period the cold pages are sorted by measured access count
 * and the hottest are promoted back to fast memory until the
 * aggregate access rate of the remaining cold set drops under the
 * target slow-memory rate.  This both fixes sampling errors and
 * adapts to working-set changes.
 */

#ifndef THERMOSTAT_CORE_CORRECTOR_HH
#define THERMOSTAT_CORE_CORRECTOR_HH

#include <vector>

#include "core/classifier.hh"

namespace thermostat
{

/** Outcome of a correction pass. */
struct CorrectionPlan
{
    std::vector<PageRate> promote;  //!< hottest-first promotions
    double residualRate = 0.0;      //!< rate of the remaining cold set
    double measuredRate = 0.0;      //!< pre-correction aggregate rate
};

/**
 * Decide which cold pages to promote.
 *
 * @param cold_rates Measured per-page rates of the cold set.
 * @param target_rate Aggregate slow-memory access rate budget.
 * @return Promotion plan; empty when already under budget.
 */
CorrectionPlan planCorrection(std::vector<PageRate> cold_rates,
                              double target_rate);

} // namespace thermostat

#endif // THERMOSTAT_CORE_CORRECTOR_HH
