#include "core/sampler.hh"

#include <algorithm>

#include "common/logging.hh"

namespace thermostat
{

Sampler::Sampler(AddressSpace &space, BadgerTrap &trap, Kstaled &kstaled,
                 Rng rng)
    : space_(space), trap_(trap), kstaled_(kstaled), rng_(rng)
{
}

std::vector<Addr>
Sampler::selectAndSplit(double fraction,
                        const std::unordered_set<Addr> &exclude)
{
    std::vector<Addr> candidates;
    space_.pageTable().forEachLeaf(
        [&](Addr base, Pte &, bool huge) {
            if (huge && exclude.find(base) == exclude.end()) {
                candidates.push_back(base);
            }
        });
    const auto want = static_cast<std::uint64_t>(
        static_cast<double>(candidates.size()) * fraction + 0.5);
    const auto picks =
        rng_.sampleWithoutReplacement(candidates.size(), want);

    std::vector<Addr> split_bases;
    split_bases.reserve(picks.size());
    for (const std::uint64_t idx : picks) {
        const Addr base = candidates[idx];
        if (!space_.splitHuge(base)) {
            continue; // raced with a concurrent state change
        }
        ++stats_.splits;
        ++stats_.hugeSampled;
        split_bases.push_back(base);
        // Clear subpage Accessed bits so stage 2 sees only accesses
        // from this period (single shootdown: the split flushed the
        // old 2MB translation anyway).
        kstaled_.clearSubpagesAfterSplit(base);
    }
    return split_bases;
}

std::vector<Addr>
Sampler::selectBasePages(double fraction,
                         const std::unordered_set<Addr> &exclude,
                         const std::vector<Addr> &split_bases)
{
    std::unordered_set<Addr> split_set(split_bases.begin(),
                                       split_bases.end());
    std::vector<Addr> candidates;
    space_.pageTable().forEachLeaf(
        [&](Addr base, Pte &, bool huge) {
            if (huge) {
                return;
            }
            if (exclude.find(base) != exclude.end()) {
                return;
            }
            // Skip subpages of huge pages split for this period.
            if (split_set.find(alignDown2M(base)) != split_set.end()) {
                return;
            }
            candidates.push_back(base);
        });
    const auto want = static_cast<std::uint64_t>(
        static_cast<double>(candidates.size()) * fraction + 0.5);
    const auto picks =
        rng_.sampleWithoutReplacement(candidates.size(), want);

    std::vector<Addr> selected;
    selected.reserve(picks.size());
    for (const std::uint64_t idx : picks) {
        selected.push_back(candidates[idx]);
    }
    kstaled_.scanPages(selected);
    stats_.baseSampled += selected.size();
    return selected;
}

SampledPage
Sampler::poisonSubpages(Addr huge_base, unsigned budget)
{
    SampledPage page;
    page.base = huge_base;
    page.huge = true;

    page.accessed.reserve(kSubpagesPerHuge);
    kstaled_.testAndClearRegion(huge_base, page.accessed);
    page.accessedSubpages =
        static_cast<unsigned>(page.accessed.size());

    const auto picks = rng_.sampleWithoutReplacement(
        page.accessed.size(),
        std::min<std::uint64_t>(budget, page.accessed.size()));
    page.poisoned.reserve(picks.size());
    for (const std::uint64_t idx : picks) {
        const Addr sub = page.accessed[idx];
        trap_.poison(sub);
        page.poisoned.push_back(sub);
    }
    stats_.subpagesPoisoned += page.poisoned.size();
    return page;
}

SampledPage
Sampler::poisonBasePage(Addr base)
{
    SampledPage page;
    page.base = base;
    page.huge = false;
    page.accessedSubpages = 1;
    trap_.poison(base);
    page.poisoned.push_back(base);
    ++stats_.subpagesPoisoned;
    return page;
}

} // namespace thermostat
