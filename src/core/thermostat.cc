#include "core/thermostat.hh"

#include <algorithm>
#include <unordered_set>

#include "common/logging.hh"
#include "core/access_estimator.hh"
#include "core/corrector.hh"
#include "obs/metrics.hh"

namespace thermostat
{

ThermostatEngine::ThermostatEngine(MemCgroup &cgroup,
                                   AddressSpace &space, BadgerTrap &trap,
                                   Kstaled &kstaled,
                                   PageMigrator &migrator, Rng rng)
    : cgroup_(cgroup),
      space_(space),
      trap_(trap),
      kstaled_(kstaled),
      migrator_(migrator),
      rng_(rng),
      sampler_(space, trap, kstaled, rng_.fork())
{
}

Ns
ThermostatEngine::stageLength() const
{
    return std::max<Ns>(1, cgroup_.params().samplingPeriod / 3);
}

double
ThermostatEngine::targetRate() const
{
    const ThermostatParams &params = cgroup_.params();
    return slowdownToRateBudget(params.tolerableSlowdownPct,
                                params.slowMemLatency);
}

std::uint64_t
ThermostatEngine::coldBytes() const
{
    return coldHuge_.size() * kPageSize2M +
           coldBase_.size() * kPageSize4K;
}

Ns
ThermostatEngine::takeOverhead()
{
    const Ns out = pendingOverhead_;
    pendingOverhead_ = 0;
    return out;
}

void
ThermostatEngine::accrueOverhead()
{
    const Ns kstaled_cost = kstaled_.totalCost();
    const Ns trap_cost = trap_.stats().maintenanceTime;
    pendingOverhead_ += (kstaled_cost - seenKstaledCost_) +
                        (trap_cost - seenTrapMaintenance_);
    stats_.overheadTime += (kstaled_cost - seenKstaledCost_) +
                           (trap_cost - seenTrapMaintenance_);
    seenKstaledCost_ = kstaled_cost;
    seenTrapMaintenance_ = trap_cost;
}

bool
ThermostatEngine::faultAware() const
{
    return space_.memory().hasFaultInjector();
}

bool
ThermostatEngine::isQuarantined(Addr base, Ns now)
{
    const auto it = quarantineUntil_.find(base);
    if (it == quarantineUntil_.end()) {
        return false;
    }
    if (now < it->second) {
        return true;
    }
    // Lazy expiry: the page becomes placeable again.
    quarantineUntil_.erase(it);
    ++stats_.unquarantined;
    if (tracer_) {
        tracer_->record(EventKind::PageUnquarantined, now, base);
    }
    return false;
}

void
ThermostatEngine::noteDemotionOutcome(Addr base, bool moved, Ns now)
{
    if (moved) {
        demotionFailures_.erase(base);
        return;
    }
    const Count fails = ++demotionFailures_[base];
    if (fails < cgroup_.params().quarantineThreshold) {
        return;
    }
    // Repeated failures: bench the page instead of burning
    // migration bandwidth on it every period.
    demotionFailures_.erase(base);
    quarantineUntil_[base] =
        now + cgroup_.params().quarantineDuration;
    ++stats_.quarantined;
    if (tracer_) {
        tracer_->record(EventKind::PageQuarantined, now, base);
    }
}

void
ThermostatEngine::processEvacuations(Ns now)
{
    {
        std::vector<Pfn> fresh = space_.memory().takeEvacuations();
        evacuationBacklog_.insert(evacuationBacklog_.end(),
                                  fresh.begin(), fresh.end());
    }
    if (evacuationBacklog_.empty()) {
        return;
    }

    std::unordered_set<Pfn> retired(evacuationBacklog_.begin(),
                                    evacuationBacklog_.end());
    const auto blockOf = [](Pfn pfn) {
        return pfn - (pfn % kSubpagesPerHuge);
    };

    // Cold pages mapped into retired blocks must come back to the
    // fast tier; sorted for a deterministic migration order (the
    // cold sets are hash sets).
    std::vector<Addr> victims;
    for (const Addr base : coldHuge_) {
        const WalkResult wr = space_.pageTable().walk(base);
        if (wr.mapped() && retired.count(blockOf(wr.pte->pfn()))) {
            victims.push_back(base);
        }
    }
    for (const Addr base : coldBase_) {
        const WalkResult wr = space_.pageTable().walk(base);
        if (wr.mapped() && retired.count(blockOf(wr.pte->pfn()))) {
            victims.push_back(base);
        }
    }
    std::sort(victims.begin(), victims.end());

    bool any_failed = false;
    for (const Addr base : victims) {
        const MigrateResult res =
            migrator_.migrate(base, Tier::Fast, now);
        pendingOverhead_ += res.cost;
        stats_.overheadTime += res.cost;
        if (!res.moved) {
            // Fast tier full (or still failing): keep the block in
            // the backlog and try again next tick.
            ++stats_.migrationFailures;
            any_failed = true;
            continue;
        }
        pendingOverhead_ += trap_.unpoison(base);
        coldHuge_.erase(base);
        coldBase_.erase(base);
        ++stats_.evacuationPromotions;
    }
    if (!any_failed) {
        evacuationBacklog_.clear();
    }
}

void
ThermostatEngine::tick(Ns now)
{
    if (!cgroup_.params().enabled) {
        return;
    }
    if (tracer_) {
        tracer_->setSimTime(now);
    }
    if (faultAware()) {
        processEvacuations(now);
    }
    while (now >= nextStageTime_) {
        switch (nextStage_) {
          case Stage::Split:
            runSplitStage(now);
            break;
          case Stage::Poison:
            runPoisonStage(now);
            break;
          case Stage::Classify:
            runClassifyStage(now);
            break;
        }
    }
}

void
ThermostatEngine::runSplitStage(Ns now)
{
    const ThermostatParams &params = cgroup_.params();
    splitBases_ =
        sampler_.selectAndSplit(params.sampleFraction, coldHuge_);
    profilingRanges_.clear();
    profilingRanges_.insert(splitBases_.begin(), splitBases_.end());
    sampledBase_ = sampler_.selectBasePages(params.sampleFraction,
                                            coldBase_, splitBases_);
    if (tracer_) {
        for (const Addr base : splitBases_) {
            tracer_->record(EventKind::PageSampled, now, base, true);
            tracer_->record(EventKind::PageSplit, now, base, true);
        }
        for (const Addr base : sampledBase_) {
            tracer_->record(EventKind::PageSampled, now, base,
                            false);
        }
    }
    accrueOverhead();
    nextStage_ = Stage::Poison;
    nextStageTime_ = now + stageLength();
}

void
ThermostatEngine::runPoisonStage(Ns now)
{
    const ThermostatParams &params = cgroup_.params();
    profiled_.clear();
    profiled_.reserve(splitBases_.size() + sampledBase_.size());
    for (const Addr base : splitBases_) {
        profiled_.push_back(
            sampler_.poisonSubpages(base, params.poisonBudget));
    }
    for (const Addr base : sampledBase_) {
        // Only pages with a non-zero rate are worth poisoning; the
        // Accessed bit from stage 1 tells us which.  Unaccessed
        // pages keep a zero estimate for free.
        SampledPage page;
        if (kstaled_.testAndClearAccessed(base)) {
            page = sampler_.poisonBasePage(base);
        } else {
            page.base = base;
            page.huge = false;
            page.accessedSubpages = 0;
        }
        profiled_.push_back(page);
    }
    accrueOverhead();
    poisonStart_ = now;
    nextStage_ = Stage::Classify;
    nextStageTime_ = now + 2 * stageLength();
}

void
ThermostatEngine::runClassifyStage(Ns now)
{
    const Ns window = now > poisonStart_ ? now - poisonStart_ : 1;

    // Harvest counts and release the profiling poison.
    std::vector<PageRate> rates;
    rates.reserve(profiled_.size());
    std::uint64_t sampled_bytes = 0;
    for (const SampledPage &page : profiled_) {
        Count faults = 0;
        for (const Addr sub : page.poisoned) {
            faults += trap_.faultCount(sub);
            trap_.unpoison(sub);
        }
        PageRate rate;
        rate.base = page.base;
        rate.bytes = page.huge ? kPageSize2M : kPageSize4K;
        const unsigned accessed =
            page.huge ? debiasAccessedCount(page.accessedSubpages,
                                            kSubpagesPerHuge,
                                            markingQuantum_)
                      : page.accessedSubpages;
        rate.rate = estimateAccessRate(
            faults, static_cast<unsigned>(page.poisoned.size()),
            accessed, window);
        if (page.huge && page.poisoned.empty()) {
            // No subpage had a non-zero rate: genuinely idle.
            rate.rate = 0.0;
        }
        rates.push_back(rate);
        sampled_bytes += rate.bytes;
    }

    // Budget for this period's sample: f * x / (100 ts), f computed
    // as the sampled fraction of the resident footprint, applied to
    // the budget headroom left after the cold set's measured rate
    // (the corrector's view from the previous period); placing into
    // spent budget would only be clawed back next period.
    const std::uint64_t rss = space_.rssBytes();
    const double f =
        rss == 0 ? 0.0
                 : static_cast<double>(sampled_bytes) /
                       static_cast<double>(rss);
    const double headroom =
        std::max(0.0, targetRate() - slowRateSeries_.lastValue());
    profiledByBase_.clear();
    for (const SampledPage &page : profiled_) {
        profiledByBase_.emplace(page.base, &page);
    }
    const Classification classes =
        classifyPages(std::move(rates), f * headroom);

    applyClassification(classes, now);
    profiledByBase_.clear();
    runCorrection(now);
    accrueOverhead();

    profiled_.clear();
    splitBases_.clear();
    sampledBase_.clear();
    profilingRanges_.clear();
    ++stats_.periods;
    lastClassify_ = now;
    nextStage_ = Stage::Split;
    // One tick past `now` so a single tick() call cannot loop
    // through more than one full period.
    nextStageTime_ = now + 1;
}

void
ThermostatEngine::applyClassification(const Classification &classes,
                                      Ns now)
{
    // Graceful degradation: while the slow tier is in a fault
    // episode, stop feeding it new cold pages for this period (the
    // resident cold set and the corrector keep running).
    const bool fault_aware = faultAware();
    bool throttled = false;
    if (fault_aware && !classes.cold.empty() &&
        !space_.memory().slowHealthy()) {
        throttled = true;
        ++stats_.throttledPeriods;
    }
    for (const PageRate &page : classes.cold) {
        if (tracer_) {
            tracer_->record(EventKind::ClassifiedCold, now,
                            page.base, page.bytes == kPageSize2M);
        }
        if (throttled ||
            (fault_aware && isQuarantined(page.base, now))) {
            continue;
        }
        if (page.bytes == kPageSize2M) {
            if (!space_.collapseHuge(page.base)) {
                ++stats_.collapseFailures;
                if (tracer_) {
                    tracer_->record(EventKind::CollapseFailed, now,
                                    page.base, true);
                }
                continue;
            }
            if (tracer_) {
                tracer_->record(EventKind::PageCollapsed, now,
                                page.base, true);
            }
            const MigrateResult res =
                migrator_.migrate(page.base, Tier::Slow, now);
            pendingOverhead_ += res.cost;
            stats_.overheadTime += res.cost;
            if (fault_aware) {
                noteDemotionOutcome(page.base, res.moved, now);
            }
            if (!res.moved) {
                ++stats_.migrationFailures;
                continue;
            }
            // Keep the cold page poisoned: its fault counts feed
            // the mis-classification corrector.
            pendingOverhead_ += trap_.poison(page.base);
            coldHuge_.insert(page.base);
            ++stats_.coldHugePlaced;
        } else {
            const MigrateResult res =
                migrator_.migrate(page.base, Tier::Slow, now);
            pendingOverhead_ += res.cost;
            stats_.overheadTime += res.cost;
            if (fault_aware) {
                noteDemotionOutcome(page.base, res.moved, now);
            }
            if (!res.moved) {
                ++stats_.migrationFailures;
                continue;
            }
            pendingOverhead_ += trap_.poison(page.base);
            coldBase_.insert(page.base);
            ++stats_.coldBasePlaced;
        }
    }
    for (const PageRate &page : classes.hot) {
        if (tracer_) {
            tracer_->record(EventKind::ClassifiedHot, now, page.base,
                            page.bytes == kPageSize2M);
        }
        if (page.bytes != kPageSize2M) {
            continue;
        }
        const auto it = profiledByBase_.find(page.base);
        if (cgroup_.params().spreadHugePages &&
            it != profiledByBase_.end() &&
            trySpreadHotPage(*it->second, now)) {
            continue;
        }
        if (space_.collapseHuge(page.base)) {
            if (tracer_) {
                tracer_->record(EventKind::PageCollapsed, now,
                                page.base, true);
            }
        } else {
            ++stats_.collapseFailures;
            if (tracer_) {
                tracer_->record(EventKind::CollapseFailed, now,
                                page.base, true);
            }
        }
    }
}

bool
ThermostatEngine::trySpreadHotPage(const SampledPage &page, Ns now)
{
    // Sec 6 extension: a hot page whose hot footprint is confined to
    // a few subpages stays split; its never-accessed subpages move
    // to slow memory individually and keep being monitored.
    const ThermostatParams &params = cgroup_.params();
    const unsigned accessed =
        debiasAccessedCount(page.accessedSubpages, kSubpagesPerHuge,
                            markingQuantum_);
    if (accessed == 0 || accessed > params.spreadMaxHotSubpages) {
        return false;
    }
    std::unordered_set<Addr> hot_subpages(page.accessed.begin(),
                                          page.accessed.end());
    unsigned demoted = 0;
    for (unsigned i = 0; i < kSubpagesPerHuge; ++i) {
        const Addr sub = page.base + i * kPageSize4K;
        if (hot_subpages.find(sub) != hot_subpages.end()) {
            continue;
        }
        const MigrateResult res =
            migrator_.migrate(sub, Tier::Slow, now);
        pendingOverhead_ += res.cost;
        stats_.overheadTime += res.cost;
        if (!res.moved) {
            ++stats_.migrationFailures;
            continue;
        }
        pendingOverhead_ += trap_.poison(sub);
        coldBase_.insert(sub);
        ++demoted;
    }
    if (demoted == 0) {
        return false;
    }
    ++stats_.pagesSpread;
    stats_.spreadSubpagesDemoted += demoted;
    if (tracer_) {
        tracer_->record(EventKind::PageSpread, now, page.base, true,
                        demoted);
    }
    return true;
}

void
ThermostatEngine::runCorrection(Ns now)
{
    if (!cgroup_.params().correctionEnabled) {
        return;
    }
    const Ns window =
        lastClassify_ == 0 ? cgroup_.params().samplingPeriod
                           : now - lastClassify_;
    if (window == 0 || (coldHuge_.empty() && coldBase_.empty())) {
        slowRateSeries_.append(now, 0.0);
        return;
    }

    std::vector<PageRate> cold_rates;
    cold_rates.reserve(coldHuge_.size() + coldBase_.size());
    const double per_sec = static_cast<double>(kNsPerSec) /
                           static_cast<double>(window);
    for (const Addr base : coldHuge_) {
        cold_rates.push_back(
            {base, kPageSize2M,
             static_cast<double>(trap_.faultCount(base)) * per_sec});
    }
    for (const Addr base : coldBase_) {
        cold_rates.push_back(
            {base, kPageSize4K,
             static_cast<double>(trap_.faultCount(base)) * per_sec});
    }

    const CorrectionPlan plan =
        planCorrection(std::move(cold_rates), targetRate());
    slowRateSeries_.append(now, plan.measuredRate);

    for (const PageRate &page : plan.promote) {
        const MigrateResult res =
            migrator_.migrate(page.base, Tier::Fast, now);
        pendingOverhead_ += res.cost;
        stats_.overheadTime += res.cost;
        if (!res.moved) {
            ++stats_.migrationFailures;
            continue;
        }
        pendingOverhead_ += trap_.unpoison(page.base);
        if (page.bytes == kPageSize2M) {
            coldHuge_.erase(page.base);
        } else {
            coldBase_.erase(page.base);
        }
        ++stats_.promotions;
        if (tracer_) {
            tracer_->record(EventKind::Corrected, now, page.base,
                            page.bytes == kPageSize2M,
                            static_cast<std::uint64_t>(page.rate));
        }
    }

    // Fresh window for the surviving cold set.
    for (const Addr base : coldHuge_) {
        trap_.resetCount(base);
    }
    for (const Addr base : coldBase_) {
        trap_.resetCount(base);
    }
}

void
ThermostatEngine::registerMetrics(MetricRegistry &registry,
                                  const std::string &prefix) const
{
    registry.addCallback(prefix + ".periods", [this] {
        return static_cast<double>(stats_.periods);
    });
    registry.addCallback(prefix + ".cold_huge_placed", [this] {
        return static_cast<double>(stats_.coldHugePlaced);
    });
    registry.addCallback(prefix + ".cold_base_placed", [this] {
        return static_cast<double>(stats_.coldBasePlaced);
    });
    registry.addCallback(prefix + ".pages_spread", [this] {
        return static_cast<double>(stats_.pagesSpread);
    });
    registry.addCallback(prefix + ".spread_subpages_demoted",
                         [this] {
                             return static_cast<double>(
                                 stats_.spreadSubpagesDemoted);
                         });
    registry.addCallback(prefix + ".promotions", [this] {
        return static_cast<double>(stats_.promotions);
    });
    registry.addCallback(prefix + ".collapse_failures", [this] {
        return static_cast<double>(stats_.collapseFailures);
    });
    registry.addCallback(prefix + ".migration_failures", [this] {
        return static_cast<double>(stats_.migrationFailures);
    });
    registry.addCallback(prefix + ".overhead_ns", [this] {
        return static_cast<double>(stats_.overheadTime);
    });
    registry.addCallback(prefix + ".cold_bytes", [this] {
        return static_cast<double>(coldBytes());
    });
    registry.addCallback(prefix + ".target_rate",
                         [this] { return targetRate(); });
    registry.addCallback(prefix + ".measured_slow_rate", [this] {
        return slowRateSeries_.lastValue();
    });
    registry.addCallback(prefix + ".quarantined", [this] {
        return static_cast<double>(stats_.quarantined);
    });
    registry.addCallback(prefix + ".unquarantined", [this] {
        return static_cast<double>(stats_.unquarantined);
    });
    registry.addCallback(prefix + ".throttled_periods", [this] {
        return static_cast<double>(stats_.throttledPeriods);
    });
    registry.addCallback(prefix + ".evacuation_promotions", [this] {
        return static_cast<double>(stats_.evacuationPromotions);
    });
}

} // namespace thermostat
