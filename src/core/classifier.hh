/**
 * @file
 * Hot/cold page classification (paper Sec 3.4).
 *
 * The user-specified tolerable slowdown x% translates to an access
 * rate budget: A accesses/sec to slow memory with latency ts cost
 * A*ts seconds per second, so the budget is x / (100 * ts).  When
 * only a fraction f of pages was sampled this period, the sampled
 * pages may consume f times the budget.  Pages are sorted by
 * estimated rate and the coldest prefix is selected until the
 * budget is exhausted.
 */

#ifndef THERMOSTAT_CORE_CLASSIFIER_HH
#define THERMOSTAT_CORE_CLASSIFIER_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "sys/mem_cgroup.hh"

namespace thermostat
{

/** A page with an estimated (or measured) access rate. */
struct PageRate
{
    Addr base = 0;
    std::uint64_t bytes = 0;
    double rate = 0.0; //!< accesses/sec
};

/** Result of a classification pass. */
struct Classification
{
    std::vector<PageRate> cold; //!< selected for slow memory
    std::vector<PageRate> hot;  //!< stays in fast memory
    double coldAggregateRate = 0.0;
};

/**
 * Translate a tolerable slowdown into the aggregate slow-memory
 * access-rate budget (accesses/sec): x / (100 * ts).
 */
double slowdownToRateBudget(double tolerable_slowdown_pct,
                            Ns slow_mem_latency);

/**
 * Select the coldest pages whose cumulative rate fits the budget.
 *
 * @param rates Estimated per-page rates (consumed by value).
 * @param budget_rate Aggregate accesses/sec allowed.
 * @return Cold/hot partition, cold sorted coldest-first.
 */
Classification classifyPages(std::vector<PageRate> rates,
                             double budget_rate);

} // namespace thermostat

#endif // THERMOSTAT_CORE_CLASSIFIER_HH
