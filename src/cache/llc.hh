/**
 * @file
 * Last-level cache model.
 *
 * Used for two things: (i) charging DRAM/slow-tier latency only on
 * LLC misses, and (ii) providing ground-truth per-page memory access
 * rates ("We describe our methodology for measuring memory access
 * rate in Section 3.3") for the Figure 2 correlation study and for
 * validating the TLB-miss-as-LLC-miss-proxy assumption.
 */

#ifndef THERMOSTAT_CACHE_LLC_HH
#define THERMOSTAT_CACHE_LLC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/flat_map.hh"
#include "common/types.hh"

namespace thermostat
{

class MetricRegistry;

/** LLC geometry and timing. */
struct LlcConfig
{
    std::uint64_t sizeBytes = 32ULL << 20;
    unsigned lineSize = 64;
    unsigned ways = 16;
    Ns hitLatency = 30;

    /** Track per-2MB-frame miss counters (ground truth). */
    bool trackFrameMisses = false;
};

/** Hit/miss counters. */
struct LlcStats
{
    Count hits = 0;
    Count misses = 0;
    Count writebacks = 0;

    double
    missRatio() const
    {
        const Count total = hits + misses;
        return total == 0
                   ? 0.0
                   : static_cast<double>(misses) /
                         static_cast<double>(total);
    }
};

/**
 * Set-associative, physically-indexed LLC with LRU replacement.
 */
class LastLevelCache
{
  public:
    explicit LastLevelCache(const LlcConfig &config);

    /**
     * Access the line containing physical address @p paddr.
     * @return true on hit.
     *
     * Defined inline below: this is the single hottest function in
     * the simulator (one call per cache line per memory access).
     */
    bool access(Addr paddr, AccessType type);

    /** Hit without side effects? (test helper) */
    bool contains(Addr paddr) const;

    /** Drop every line (e.g. after wholesale migration). */
    void flushAll();

    /** Invalidate all lines within one 4KB frame. */
    void invalidateFrame(Pfn pfn);

    const LlcConfig &config() const { return config_; }
    const LlcStats &stats() const { return stats_; }
    void resetStats();

    /** Expose the counters under "<prefix>." in @p registry. */
    void registerMetrics(MetricRegistry &registry,
                         const std::string &prefix) const;

    /**
     * Ground-truth misses charged to the 2MB-aligned frame
     * containing @p pfn2m (only when trackFrameMisses is set).
     */
    Count frameMisses(Pfn huge_frame_base) const;

    /** Clear per-frame ground-truth counters. */
    void clearFrameMisses() { frameMisses_.clear(); }

  private:
    /**
     * Lines are split into a packed tag array scanned on every
     * access and a cold LRU-clock array touched only on the hit way
     * or during victim selection.  A packed tag holds
     * `line_address << 2 | dirty << 1 | valid`, so the hit test is a
     * single masked compare and a 16-way set scan stays within two
     * cache lines instead of six.
     */
    static constexpr std::uint64_t kValidBit = 1;
    static constexpr std::uint64_t kDirtyBit = 2;

    static std::uint64_t
    packTag(std::uint64_t line)
    {
        return (line << 2) | kValidBit;
    }

    std::uint64_t
    lineAddr(Addr paddr) const
    {
        return linePow2_ ? paddr >> lineShift_
                         : paddr / config_.lineSize;
    }

    unsigned
    setIndex(std::uint64_t line) const
    {
        return setsPow2_ ? static_cast<unsigned>(line & setMask_)
                         : static_cast<unsigned>(line % setCount_);
    }

    void recordFrameMiss(Addr paddr);

    LlcConfig config_; // shard: read-only
    unsigned setCount_; // shard: read-only
    // shard: read-only
    std::uint64_t setMask_; //!< setCount_ - 1 when a power of two
    bool setsPow2_; // shard: read-only
    bool linePow2_; // shard: read-only
    unsigned lineShift_; // shard: read-only

    /**
     * Per-set storage block: `ways` packed tags followed by `ways`
     * LRU clocks, contiguous so one miss streams a single 2*ways
     * stretch of memory instead of striding two arrays.
     */
    std::vector<std::uint64_t> setData_; // shard: lane-local
    // shard: lane-local
    std::vector<std::uint32_t> mruWay_; //!< per-set hit-way hint
    std::uint64_t useClock_ = 0; // shard: lane-local
    LlcStats stats_; // shard: lane-local
    FlatMap<Pfn, Count> frameMisses_; // shard: lane-local
};

/**
 * Address-hash lane router over kMachineLanes independent LLC
 * slices.
 *
 * The LLC is physically indexed but the lane split follows the
 * *virtual* 2MB region being accessed (laneOf in common/types.hh),
 * matching the TLB and page-counter sharding: the lane is chosen by
 * the caller from the access's virtual address, so the slice
 * assignment survives migration between frames.  Each slice gets an
 * even share of the aggregate capacity.  A frame is only ever cached
 * in the lane owning its mapping, so maintenance by frame
 * (invalidateFrame) broadcasts and hits at most one lane; contains()
 * probes all lanes.  Results are fixed by the slicing, not by the
 * worker count executing the lanes.
 */
class LlcShards
{
  public:
    explicit LlcShards(const LlcConfig &config);

    /** Access @p paddr in @p lane (the accessing vaddr's lane). */
    bool
    access(unsigned lane, Addr paddr, AccessType type)
    {
        return lanes_[lane].access(paddr, type);
    }

    /** Hit in any lane without side effects? (test helper) */
    bool contains(Addr paddr) const;

    /** Drop every line in every lane. */
    void flushAll();

    /** Invalidate all lines of one 4KB frame, in every lane. */
    void invalidateFrame(Pfn pfn);

    LastLevelCache &lane(unsigned lane) { return lanes_[lane]; }
    const LastLevelCache &lane(unsigned lane) const
    {
        return lanes_[lane];
    }

    /** Aggregate geometry (what the machine was configured with). */
    const LlcConfig &config() const { return config_; }
    /** Per-lane slice geometry (all lanes are identical). */
    const LlcConfig &laneConfig() const { return laneConfig_; }

    /** Lane-summed counters. */
    LlcStats stats() const;
    void resetStats();

    /** Lane-summed ground-truth frame misses. */
    Count frameMisses(Pfn huge_frame_base) const;
    void clearFrameMisses();

    /** Register lane-summed counters under "<prefix>.". */
    void registerMetrics(MetricRegistry &registry,
                         const std::string &prefix) const;

    /** Divide the aggregate geometry into one lane's slice. */
    static LlcConfig sliceConfig(const LlcConfig &config);

  private:
    // shard: read-only
    LlcConfig config_;     //!< aggregate geometry
    LlcConfig laneConfig_; //!< per-lane slice geometry
    std::vector<LastLevelCache> lanes_; //!< kMachineLanes slices
};

inline bool
LastLevelCache::access(Addr paddr, AccessType type)
{
    const std::uint64_t line = lineAddr(paddr);
    const unsigned set = setIndex(line);
    const unsigned ways = config_.ways;
    std::uint64_t *tags =
        &setData_[static_cast<std::uint64_t>(set) * 2 * ways];
    std::uint64_t *uses = tags + ways;
    const std::uint64_t want = packTag(line);
    ++useClock_;

    // Most hits land on the way that hit last time in this set.
    const std::uint32_t hint = mruWay_[set];
    if ((tags[hint] & ~kDirtyBit) == want) {
        if (type == AccessType::Write) {
            tags[hint] |= kDirtyBit;
        }
        uses[hint] = useClock_;
        ++stats_.hits;
        return true;
    }
    unsigned invalid_way = ways;
    for (unsigned w = 0; w < ways; ++w) {
        if ((tags[w] & ~kDirtyBit) == want) {
            if (type == AccessType::Write) {
                tags[w] |= kDirtyBit;
            }
            uses[w] = useClock_;
            mruWay_[set] = w;
            ++stats_.hits;
            return true;
        }
        if ((tags[w] & kValidBit) == 0 && invalid_way == ways) {
            invalid_way = w;
        }
    }

    // Miss: the first invalid way, else the LRU way.
    unsigned victim = invalid_way;
    if (victim == ways) {
        victim = 0;
        std::uint64_t victim_use = uses[0];
        for (unsigned w = 1; w < ways; ++w) {
            if (uses[w] < victim_use) {
                victim_use = uses[w];
                victim = w;
            }
        }
    }

    ++stats_.misses;
    if (config_.trackFrameMisses) {
        recordFrameMiss(paddr);
    }
    if ((tags[victim] & (kValidBit | kDirtyBit)) ==
        (kValidBit | kDirtyBit)) {
        ++stats_.writebacks;
    }
    tags[victim] =
        want | (type == AccessType::Write ? kDirtyBit : 0);
    uses[victim] = useClock_;
    mruWay_[set] = victim;
    return false;
}

} // namespace thermostat

#endif // THERMOSTAT_CACHE_LLC_HH
