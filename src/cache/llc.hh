/**
 * @file
 * Last-level cache model.
 *
 * Used for two things: (i) charging DRAM/slow-tier latency only on
 * LLC misses, and (ii) providing ground-truth per-page memory access
 * rates ("We describe our methodology for measuring memory access
 * rate in Section 3.3") for the Figure 2 correlation study and for
 * validating the TLB-miss-as-LLC-miss-proxy assumption.
 */

#ifndef THERMOSTAT_CACHE_LLC_HH
#define THERMOSTAT_CACHE_LLC_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace thermostat
{

class MetricRegistry;

/** LLC geometry and timing. */
struct LlcConfig
{
    std::uint64_t sizeBytes = 32ULL << 20;
    unsigned lineSize = 64;
    unsigned ways = 16;
    Ns hitLatency = 30;

    /** Track per-2MB-frame miss counters (ground truth). */
    bool trackFrameMisses = false;
};

/** Hit/miss counters. */
struct LlcStats
{
    Count hits = 0;
    Count misses = 0;
    Count writebacks = 0;

    double
    missRatio() const
    {
        const Count total = hits + misses;
        return total == 0
                   ? 0.0
                   : static_cast<double>(misses) /
                         static_cast<double>(total);
    }
};

/**
 * Set-associative, physically-indexed LLC with LRU replacement.
 */
class LastLevelCache
{
  public:
    explicit LastLevelCache(const LlcConfig &config);

    /**
     * Access the line containing physical address @p paddr.
     * @return true on hit.
     */
    bool access(Addr paddr, AccessType type);

    /** Hit without side effects? (test helper) */
    bool contains(Addr paddr) const;

    /** Drop every line (e.g. after wholesale migration). */
    void flushAll();

    /** Invalidate all lines within one 4KB frame. */
    void invalidateFrame(Pfn pfn);

    const LlcConfig &config() const { return config_; }
    const LlcStats &stats() const { return stats_; }
    void resetStats();

    /** Expose the counters under "<prefix>." in @p registry. */
    void registerMetrics(MetricRegistry &registry,
                         const std::string &prefix) const;

    /**
     * Ground-truth misses charged to the 2MB-aligned frame
     * containing @p pfn2m (only when trackFrameMisses is set).
     */
    Count frameMisses(Pfn huge_frame_base) const;

    /** Clear per-frame ground-truth counters. */
    void clearFrameMisses() { frameMisses_.clear(); }

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lastUse = 0;
    };

    std::uint64_t lineAddr(Addr paddr) const;
    unsigned setIndex(std::uint64_t line) const;

    LlcConfig config_;
    unsigned setCount_;
    std::vector<Line> lines_;
    std::uint64_t useClock_ = 0;
    LlcStats stats_;
    std::unordered_map<Pfn, Count> frameMisses_;
};

} // namespace thermostat

#endif // THERMOSTAT_CACHE_LLC_HH
