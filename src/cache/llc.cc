#include "cache/llc.hh"

#include <algorithm>

#include "common/logging.hh"
#include "obs/metrics.hh"

namespace thermostat
{

LastLevelCache::LastLevelCache(const LlcConfig &config)
    : config_(config)
{
    TSTAT_ASSERT(config.lineSize > 0 && config.ways > 0,
                 "bad LLC geometry");
    const std::uint64_t line_count = config.sizeBytes / config.lineSize;
    TSTAT_ASSERT(line_count % config.ways == 0,
                 "LLC lines not divisible by ways");
    setCount_ = static_cast<unsigned>(line_count / config.ways);
    setsPow2_ = (setCount_ & (setCount_ - 1)) == 0;
    setMask_ = setCount_ - 1;
    linePow2_ = (config.lineSize & (config.lineSize - 1)) == 0;
    lineShift_ = 0;
    while ((1u << lineShift_) < config.lineSize) {
        ++lineShift_;
    }
    setData_.assign(2 * line_count, 0);
    mruWay_.assign(setCount_, 0);
}

void
LastLevelCache::recordFrameMiss(Addr paddr)
{
    const Pfn huge_base =
        (paddr >> kPageShift2M) << (kPageShift2M - kPageShift4K);
    ++frameMisses_[huge_base];
}

bool
LastLevelCache::contains(Addr paddr) const
{
    const std::uint64_t line = lineAddr(paddr);
    const std::uint64_t *tags =
        &setData_[static_cast<std::uint64_t>(setIndex(line)) * 2 *
                  config_.ways];
    const std::uint64_t want = packTag(line);
    for (unsigned w = 0; w < config_.ways; ++w) {
        if ((tags[w] & ~kDirtyBit) == want) {
            return true;
        }
    }
    return false;
}

void
LastLevelCache::flushAll()
{
    std::fill(setData_.begin(), setData_.end(), 0);
}

void
LastLevelCache::invalidateFrame(Pfn pfn)
{
    const std::uint64_t first_line =
        pfn * kPageSize4K / config_.lineSize;
    const std::uint64_t line_count = kPageSize4K / config_.lineSize;
    for (std::uint64_t line = first_line;
         line < first_line + line_count; ++line) {
        std::uint64_t *tags =
            &setData_[static_cast<std::uint64_t>(setIndex(line)) *
                      2 * config_.ways];
        const std::uint64_t want = packTag(line);
        for (unsigned w = 0; w < config_.ways; ++w) {
            if ((tags[w] & ~kDirtyBit) == want) {
                tags[w] = 0;
            }
        }
    }
}

void
LastLevelCache::resetStats()
{
    stats_ = LlcStats();
}

Count
LastLevelCache::frameMisses(Pfn huge_frame_base) const
{
    const auto it = frameMisses_.find(huge_frame_base);
    return it == frameMisses_.end() ? 0 : it->value;
}

void
LastLevelCache::registerMetrics(MetricRegistry &registry,
                                const std::string &prefix) const
{
    registry.addCallback(prefix + ".hits", [this] {
        return static_cast<double>(stats_.hits);
    });
    registry.addCallback(prefix + ".misses", [this] {
        return static_cast<double>(stats_.misses);
    });
    registry.addCallback(prefix + ".writebacks", [this] {
        return static_cast<double>(stats_.writebacks);
    });
    registry.addCallback(prefix + ".miss_ratio",
                         [this] { return stats_.missRatio(); });
}

} // namespace thermostat
