#include "cache/llc.hh"

#include "common/logging.hh"
#include "obs/metrics.hh"

namespace thermostat
{

LastLevelCache::LastLevelCache(const LlcConfig &config)
    : config_(config)
{
    TSTAT_ASSERT(config.lineSize > 0 && config.ways > 0,
                 "bad LLC geometry");
    const std::uint64_t line_count = config.sizeBytes / config.lineSize;
    TSTAT_ASSERT(line_count % config.ways == 0,
                 "LLC lines not divisible by ways");
    setCount_ = static_cast<unsigned>(line_count / config.ways);
    lines_.resize(line_count);
}

std::uint64_t
LastLevelCache::lineAddr(Addr paddr) const
{
    return paddr / config_.lineSize;
}

unsigned
LastLevelCache::setIndex(std::uint64_t line) const
{
    return static_cast<unsigned>(line % setCount_);
}

bool
LastLevelCache::access(Addr paddr, AccessType type)
{
    const std::uint64_t line = lineAddr(paddr);
    const unsigned set = setIndex(line);
    ++useClock_;

    Line *victim = nullptr;
    for (unsigned w = 0; w < config_.ways; ++w) {
        Line &l = lines_[static_cast<std::uint64_t>(set) *
                             config_.ways + w];
        if (l.valid && l.tag == line) {
            l.lastUse = useClock_;
            l.dirty = l.dirty || type == AccessType::Write;
            ++stats_.hits;
            return true;
        }
        if (!l.valid) {
            if (!victim || victim->valid) {
                victim = &l;
            }
        } else if (!victim ||
                   (victim->valid && l.lastUse < victim->lastUse)) {
            victim = &l;
        }
    }

    ++stats_.misses;
    if (config_.trackFrameMisses) {
        const Pfn huge_base =
            (paddr >> kPageShift2M) << (kPageShift2M - kPageShift4K);
        ++frameMisses_[huge_base];
    }
    if (victim->valid && victim->dirty) {
        ++stats_.writebacks;
    }
    victim->tag = line;
    victim->valid = true;
    victim->dirty = type == AccessType::Write;
    victim->lastUse = useClock_;
    return false;
}

bool
LastLevelCache::contains(Addr paddr) const
{
    const std::uint64_t line = lineAddr(paddr);
    const unsigned set = setIndex(line);
    for (unsigned w = 0; w < config_.ways; ++w) {
        const Line &l = lines_[static_cast<std::uint64_t>(set) *
                                   config_.ways + w];
        if (l.valid && l.tag == line) {
            return true;
        }
    }
    return false;
}

void
LastLevelCache::flushAll()
{
    for (Line &l : lines_) {
        l.valid = false;
        l.dirty = false;
    }
}

void
LastLevelCache::invalidateFrame(Pfn pfn)
{
    const std::uint64_t first_line =
        pfn * kPageSize4K / config_.lineSize;
    const std::uint64_t line_count = kPageSize4K / config_.lineSize;
    for (std::uint64_t line = first_line;
         line < first_line + line_count; ++line) {
        const unsigned set = setIndex(line);
        for (unsigned w = 0; w < config_.ways; ++w) {
            Line &l = lines_[static_cast<std::uint64_t>(set) *
                                 config_.ways + w];
            if (l.valid && l.tag == line) {
                l.valid = false;
                l.dirty = false;
            }
        }
    }
}

void
LastLevelCache::resetStats()
{
    stats_ = LlcStats();
}

Count
LastLevelCache::frameMisses(Pfn huge_frame_base) const
{
    const auto it = frameMisses_.find(huge_frame_base);
    return it == frameMisses_.end() ? 0 : it->second;
}

void
LastLevelCache::registerMetrics(MetricRegistry &registry,
                                const std::string &prefix) const
{
    registry.addCallback(prefix + ".hits", [this] {
        return static_cast<double>(stats_.hits);
    });
    registry.addCallback(prefix + ".misses", [this] {
        return static_cast<double>(stats_.misses);
    });
    registry.addCallback(prefix + ".writebacks", [this] {
        return static_cast<double>(stats_.writebacks);
    });
    registry.addCallback(prefix + ".miss_ratio",
                         [this] { return stats_.missRatio(); });
}

} // namespace thermostat
