#include "cache/llc.hh"

#include <algorithm>

#include "common/logging.hh"
#include "obs/metrics.hh"

namespace thermostat
{

LastLevelCache::LastLevelCache(const LlcConfig &config)
    : config_(config)
{
    TSTAT_ASSERT(config.lineSize > 0 && config.ways > 0,
                 "bad LLC geometry");
    const std::uint64_t line_count = config.sizeBytes / config.lineSize;
    TSTAT_ASSERT(line_count % config.ways == 0,
                 "LLC lines not divisible by ways");
    setCount_ = static_cast<unsigned>(line_count / config.ways);
    setsPow2_ = (setCount_ & (setCount_ - 1)) == 0;
    setMask_ = setCount_ - 1;
    linePow2_ = (config.lineSize & (config.lineSize - 1)) == 0;
    lineShift_ = 0;
    while ((1u << lineShift_) < config.lineSize) {
        ++lineShift_;
    }
    setData_.assign(2 * line_count, 0);
    mruWay_.assign(setCount_, 0);
}

void
LastLevelCache::recordFrameMiss(Addr paddr)
{
    const Pfn huge_base =
        (paddr >> kPageShift2M) << (kPageShift2M - kPageShift4K);
    ++frameMisses_[huge_base];
}

bool
LastLevelCache::contains(Addr paddr) const
{
    const std::uint64_t line = lineAddr(paddr);
    const std::uint64_t *tags =
        &setData_[static_cast<std::uint64_t>(setIndex(line)) * 2 *
                  config_.ways];
    const std::uint64_t want = packTag(line);
    for (unsigned w = 0; w < config_.ways; ++w) {
        if ((tags[w] & ~kDirtyBit) == want) {
            return true;
        }
    }
    return false;
}

void
LastLevelCache::flushAll()
{
    std::fill(setData_.begin(), setData_.end(), 0);
}

void
LastLevelCache::invalidateFrame(Pfn pfn)
{
    const std::uint64_t first_line =
        pfn * kPageSize4K / config_.lineSize;
    const std::uint64_t line_count = kPageSize4K / config_.lineSize;
    for (std::uint64_t line = first_line;
         line < first_line + line_count; ++line) {
        std::uint64_t *tags =
            &setData_[static_cast<std::uint64_t>(setIndex(line)) *
                      2 * config_.ways];
        const std::uint64_t want = packTag(line);
        for (unsigned w = 0; w < config_.ways; ++w) {
            if ((tags[w] & ~kDirtyBit) == want) {
                tags[w] = 0;
            }
        }
    }
}

void
LastLevelCache::resetStats()
{
    stats_ = LlcStats();
}

Count
LastLevelCache::frameMisses(Pfn huge_frame_base) const
{
    const auto it = frameMisses_.find(huge_frame_base);
    return it == frameMisses_.end() ? 0 : it->value;
}

void
LastLevelCache::registerMetrics(MetricRegistry &registry,
                                const std::string &prefix) const
{
    registry.addCallback(prefix + ".hits", [this] {
        return static_cast<double>(stats_.hits);
    });
    registry.addCallback(prefix + ".misses", [this] {
        return static_cast<double>(stats_.misses);
    });
    registry.addCallback(prefix + ".writebacks", [this] {
        return static_cast<double>(stats_.writebacks);
    });
    registry.addCallback(prefix + ".miss_ratio",
                         [this] { return stats_.missRatio(); });
}

LlcConfig
LlcShards::sliceConfig(const LlcConfig &config)
{
    LlcConfig slice = config;
    const std::uint64_t lane_lines =
        config.sizeBytes / kMachineLanes / config.lineSize;
    const std::uint64_t lines = std::max<std::uint64_t>(
        config.ways, lane_lines - (lane_lines % config.ways));
    slice.sizeBytes = lines * config.lineSize;
    return slice;
}

LlcShards::LlcShards(const LlcConfig &config)
    : config_(config), laneConfig_(sliceConfig(config))
{
    lanes_.reserve(kMachineLanes);
    for (unsigned lane = 0; lane < kMachineLanes; ++lane) {
        lanes_.emplace_back(laneConfig_);
    }
}

bool
LlcShards::contains(Addr paddr) const
{
    for (const LastLevelCache &lane : lanes_) {
        if (lane.contains(paddr)) {
            return true;
        }
    }
    return false;
}

void
LlcShards::flushAll()
{
    for (LastLevelCache &lane : lanes_) {
        lane.flushAll();
    }
}

void
LlcShards::invalidateFrame(Pfn pfn)
{
    for (LastLevelCache &lane : lanes_) {
        lane.invalidateFrame(pfn);
    }
}

LlcStats
LlcShards::stats() const
{
    LlcStats merged;
    for (const LastLevelCache &lane : lanes_) {
        merged.hits += lane.stats().hits;
        merged.misses += lane.stats().misses;
        merged.writebacks += lane.stats().writebacks;
    }
    return merged;
}

void
LlcShards::resetStats()
{
    for (LastLevelCache &lane : lanes_) {
        lane.resetStats();
    }
}

Count
LlcShards::frameMisses(Pfn huge_frame_base) const
{
    Count total = 0;
    for (const LastLevelCache &lane : lanes_) {
        total += lane.frameMisses(huge_frame_base);
    }
    return total;
}

void
LlcShards::clearFrameMisses()
{
    for (LastLevelCache &lane : lanes_) {
        lane.clearFrameMisses();
    }
}

void
LlcShards::registerMetrics(MetricRegistry &registry,
                           const std::string &prefix) const
{
    registry.addCallback(prefix + ".hits", [this] {
        return static_cast<double>(stats().hits);
    });
    registry.addCallback(prefix + ".misses", [this] {
        return static_cast<double>(stats().misses);
    });
    registry.addCallback(prefix + ".writebacks", [this] {
        return static_cast<double>(stats().writebacks);
    });
    registry.addCallback(prefix + ".miss_ratio",
                         [this] { return stats().missRatio(); });
}

} // namespace thermostat
