/**
 * @file
 * kstaled-style idle page tracking via hardware Accessed bits
 * (Lespinasse, LWN 2011; paper Sec 2.1).
 *
 * Each scan visits leaf PTEs, records which pages were accessed
 * since the previous scan, clears the Accessed bit and shoots down
 * the TLB entry so future accesses set it again.  This is the
 * baseline mechanism the paper shows to be insufficient: the single
 * Accessed bit per page cannot estimate access *rates*, and scanning
 * fast enough to try costs more than the tolerable slowdown.
 */

#ifndef THERMOSTAT_SYS_KSTALED_HH
#define THERMOSTAT_SYS_KSTALED_HH

#include <cstdint>
#include <vector>

#include "common/flat_map.hh"
#include "common/types.hh"
#include "tlb/tlb.hh"
#include "vm/address_space.hh"

namespace thermostat
{

class MetricRegistry;
class Profiler;

/** Scanner cost model and hotness definition. */
struct KstaledConfig
{
    /** Cost of reading (and possibly clearing) one PTE. */
    Ns perPteCost = 20;

    /** Cost of the TLB shootdown issued when an A bit is cleared. */
    Ns shootdownCost = 2000;

    /**
     * A page is "hot" when its Accessed bit was set in this many
     * consecutive scans (Fig. 2 uses three).
     */
    unsigned hotConsecutiveScans = 3;
};

/** Per-page idle-tracking state. */
struct PageIdleState
{
    unsigned idleScans = 0; //!< consecutive scans without an access
    unsigned hotStreak = 0; //!< consecutive scans with an access
    Count totalAccessedScans = 0;
};

/** Result of one scan pass. */
struct ScanStats
{
    Count scannedPtes = 0;
    Count accessedPtes = 0;
    Count shootdowns = 0;
    Ns cost = 0;
};

/**
 * The scanner.  Tracks pages at the granularity they are mapped
 * (2MB leaves as single pages, split pages as 512 4KB entries).
 */
class Kstaled
{
  public:
    Kstaled(AddressSpace &space, TlbShards &tlb,
            const KstaledConfig &config = {});

    /** Scan every leaf in the address space. */
    ScanStats scanAll();

    /** Scan only the given page base addresses. */
    ScanStats scanPages(const std::vector<Addr> &pages);

    /**
     * Read-and-clear one page's Accessed bit (with shootdown when it
     * was set).  Cost is accumulated into totalCost().
     * @return whether the bit was set.
     */
    bool testAndClearAccessed(Addr page_base);

    /**
     * Batched testAndClearAccessed over every subpage of a split
     * 2MB region: one dense PT-array scan instead of 512 cached
     * walks, with identical accounting (per-PTE cost, and one
     * shootdown per cleared bit).  Appends the bases of subpages
     * whose Accessed bit was set to @p accessed, in address order.
     */
    void testAndClearRegion(Addr huge_base,
                            std::vector<Addr> &accessed);

    /**
     * Clear the Accessed bits of all 512 subpages of a huge page
     * that was just split.  The split itself already requires one
     * shootdown of the old 2MB translation, so the whole operation
     * costs 512 PTE writes plus a single shootdown -- unlike
     * steady-state scanning, which pays per live translation.
     */
    ScanStats clearSubpagesAfterSplit(Addr huge_base);

    /** Idle state of a page (default state if never scanned). */
    PageIdleState idleState(Addr page_base) const;

    /** Whether the page met the hot-streak criterion. */
    bool isHot(Addr page_base) const;

    /**
     * Fraction of 2MB leaves idle for at least @p min_idle_scans
     * consecutive scans (Figure 1 uses scans covering 10 seconds).
     */
    double hugeIdleFraction(unsigned min_idle_scans);

    /** Total scanner CPU time charged so far. */
    Ns totalCost() const { return totalCost_; }

    /** Scans completed. */
    Count scanCount() const { return scanCount_; }

    /** Expose the counters under "<prefix>." in @p registry. */
    void registerMetrics(MetricRegistry &registry,
                         const std::string &prefix) const;

    /** Host-time profiler: scan passes run under "kstaled_scan". */
    void setProfiler(Profiler *profiler) { profiler_ = profiler; }

    /** Forget all idle state (e.g. after migration reshuffles). */
    void reset();

    const KstaledConfig &config() const { return config_; }

  private:
    void visitPage(Addr base, Pte &pte, ScanStats &stats);

    AddressSpace &space_;
    TlbShards &tlb_;
    KstaledConfig config_;
    FlatMap<Addr, PageIdleState> pageState_;
    Profiler *profiler_ = nullptr;
    Ns totalCost_ = 0;
    Count scanCount_ = 0;
};

} // namespace thermostat

#endif // THERMOSTAT_SYS_KSTALED_HH
