#include "sys/kstaled.hh"

#include "obs/metrics.hh"
#include "obs/profiler.hh"

#include "common/logging.hh"

namespace thermostat
{

Kstaled::Kstaled(AddressSpace &space, TlbShards &tlb,
                 const KstaledConfig &config)
    : space_(space), tlb_(tlb), config_(config)
{
}

void
Kstaled::visitPage(Addr base, Pte &pte, ScanStats &stats)
{
    ++stats.scannedPtes;
    stats.cost += config_.perPteCost;
    PageIdleState &state = pageState_[base];
    if (pte.accessed()) {
        ++stats.accessedPtes;
        pte.clearAccessed();
        tlb_.invalidatePage(base);
        ++stats.shootdowns;
        stats.cost += config_.shootdownCost;
        state.idleScans = 0;
        ++state.hotStreak;
        ++state.totalAccessedScans;
    } else {
        ++state.idleScans;
        state.hotStreak = 0;
    }
}

ScanStats
Kstaled::scanAll()
{
    ProfileScope pscope(profiler_, "kstaled_scan");
    ScanStats stats;
    space_.pageTable().forEachLeaf(
        [this, &stats](Addr base, Pte &pte, bool) {
            visitPage(base, pte, stats);
        });
    totalCost_ += stats.cost;
    ++scanCount_;
    return stats;
}

ScanStats
Kstaled::scanPages(const std::vector<Addr> &pages)
{
    ProfileScope pscope(profiler_, "kstaled_scan");
    ScanStats stats;
    for (const Addr base : pages) {
        WalkResult wr = space_.pageTable().walk(base);
        if (!wr.mapped()) {
            continue;
        }
        visitPage(base, *wr.pte, stats);
    }
    totalCost_ += stats.cost;
    ++scanCount_;
    return stats;
}

bool
Kstaled::testAndClearAccessed(Addr page_base)
{
    WalkResult wr = space_.pageTable().walk(page_base);
    TSTAT_ASSERT(wr.mapped(), "testAndClearAccessed: unmapped page");
    totalCost_ += config_.perPteCost;
    if (!wr.pte->accessed()) {
        return false;
    }
    wr.pte->clearAccessed();
    tlb_.invalidatePage(page_base);
    totalCost_ += config_.shootdownCost;
    return true;
}

void
Kstaled::testAndClearRegion(Addr huge_base,
                            std::vector<Addr> &accessed)
{
    const PageTable::RegionLeaves leaves =
        space_.pageTable().regionLeaves(huge_base);
    TSTAT_ASSERT(leaves.ptEntries != nullptr,
                 "testAndClearRegion: region %#lx not split",
                 static_cast<unsigned long>(huge_base));
    for (unsigned i = 0; i < kSubpagesPerHuge; ++i) {
        Pte &pte = leaves.ptEntries[i];
        if (!pte.present()) {
            continue;
        }
        totalCost_ += config_.perPteCost;
        if (!pte.accessed()) {
            continue;
        }
        pte.clearAccessed();
        const Addr sub = huge_base + i * kPageSize4K;
        tlb_.invalidatePage(sub);
        totalCost_ += config_.shootdownCost;
        accessed.push_back(sub);
    }
}

ScanStats
Kstaled::clearSubpagesAfterSplit(Addr huge_base)
{
    ScanStats stats;
    // The region was just split, so its leaves are one dense PT
    // entry array: scan it directly instead of 512 cached walks.
    const PageTable::RegionLeaves leaves =
        space_.pageTable().regionLeaves(huge_base);
    if (leaves.ptEntries != nullptr) {
        for (unsigned i = 0; i < kSubpagesPerHuge; ++i) {
            Pte &pte = leaves.ptEntries[i];
            if (!pte.present()) {
                continue;
            }
            ++stats.scannedPtes;
            stats.cost += config_.perPteCost;
            if (pte.accessed()) {
                ++stats.accessedPtes;
                pte.clearAccessed();
            }
        }
    }
    tlb_.invalidatePage(huge_base);
    ++stats.shootdowns;
    stats.cost += config_.shootdownCost;
    totalCost_ += stats.cost;
    return stats;
}

PageIdleState
Kstaled::idleState(Addr page_base) const
{
    const auto it = pageState_.find(page_base);
    return it == pageState_.end() ? PageIdleState() : it->value;
}

bool
Kstaled::isHot(Addr page_base) const
{
    return idleState(page_base).hotStreak >= config_.hotConsecutiveScans;
}

double
Kstaled::hugeIdleFraction(unsigned min_idle_scans)
{
    std::uint64_t huge_total = 0;
    std::uint64_t huge_idle = 0;
    space_.pageTable().forEachLeaf(
        [&](Addr base, Pte &, bool huge) {
            if (!huge) {
                return;
            }
            ++huge_total;
            if (idleState(base).idleScans >= min_idle_scans) {
                ++huge_idle;
            }
        });
    return huge_total == 0 ? 0.0
                           : static_cast<double>(huge_idle) /
                                 static_cast<double>(huge_total);
}

void
Kstaled::reset()
{
    pageState_.clear();
}

void
Kstaled::registerMetrics(MetricRegistry &registry,
                         const std::string &prefix) const
{
    registry.addCallback(prefix + ".scan_count", [this] {
        return static_cast<double>(scanCount_);
    });
    registry.addCallback(prefix + ".total_cost_ns", [this] {
        return static_cast<double>(totalCost_);
    });
    registry.addCallback(prefix + ".tracked_pages", [this] {
        return static_cast<double>(pageState_.size());
    });
}

} // namespace thermostat
