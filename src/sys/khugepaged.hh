/**
 * @file
 * khugepaged: background huge-page recovery.
 *
 * Thermostat's sampler splits huge pages to profile them and
 * collapses them again at classification time, but split pages can
 * be left behind: a crash of the pipeline, THP-off phases, or the
 * Sec 6 spreading extension after its cold subpages were all
 * promoted back.  Linux recovers such ranges with khugepaged; this
 * model scans for 2MB-aligned ranges of 512 present, physically
 * contiguous 4KB mappings in the same tier and collapses them.
 */

#ifndef THERMOSTAT_SYS_KHUGEPAGED_HH
#define THERMOSTAT_SYS_KHUGEPAGED_HH

#include <cstdint>
#include <functional>
#include <string>

#include "common/types.hh"
#include "obs/event_trace.hh"
#include "tlb/tlb.hh"
#include "vm/address_space.hh"

namespace thermostat
{

class MetricRegistry;
class Profiler;

/** Scan parameters (mirroring khugepaged's pages_to_scan knob). */
struct KhugepagedConfig
{
    /** Time between scan passes. */
    Ns scanPeriod = 10 * kNsPerSec;

    /** Max collapses per pass (bounds per-pass CPU). */
    unsigned maxCollapsesPerPass = 64;

    /** Cost charged per candidate range examined. */
    Ns perRangeCost = 500;

    /** Cost of one collapse (copy-free here: remap + shootdown). */
    Ns perCollapseCost = 5000;
};

/** Counters. */
struct KhugepagedStats
{
    Count passes = 0;
    Count rangesScanned = 0;
    Count collapses = 0;
    Ns totalCost = 0;
};

/**
 * The daemon.  Call tick() periodically; it runs a pass when due.
 */
class Khugepaged
{
  public:
    Khugepaged(AddressSpace &space, TlbShards &tlb,
               const KhugepagedConfig &config = {});

    /** Advance to @p now; runs scan passes whose time has come. */
    void tick(Ns now);

    /** Run one pass immediately (tests, manual compaction). */
    unsigned runPass();

    const KhugepagedStats &stats() const { return stats_; }
    const KhugepagedConfig &config() const { return config_; }

    /**
     * Attach a lifecycle tracer: successful collapses emit
     * PageCollapsed stamped with the tracer's ambient simulated
     * time.
     */
    void setTracer(EventTracer *tracer) { tracer_ = tracer; }

    /** Host-time profiler: passes run under "khugepaged_pass". */
    void setProfiler(Profiler *profiler) { profiler_ = profiler; }

    /** Expose the counters under "<prefix>." in @p registry. */
    void registerMetrics(MetricRegistry &registry,
                         const std::string &prefix) const;

    /**
     * Ranges for which @p skip returns true are left alone, like
     * khugepaged honouring MMF_DISABLE_THP: Thermostat must keep
     * its sampled splits intact between the split and the poison
     * stage, a window in which no poisoned PTE marks them yet.
     */
    void setSkipFilter(std::function<bool(Addr)> skip)
    {
        skip_ = std::move(skip);
    }

  private:
    AddressSpace &space_;
    TlbShards &tlb_;
    KhugepagedConfig config_;
    KhugepagedStats stats_;
    EventTracer *tracer_ = nullptr;
    Profiler *profiler_ = nullptr;
    std::function<bool(Addr)> skip_;
    Ns nextPass_ = 0;
};

} // namespace thermostat

#endif // THERMOSTAT_SYS_KHUGEPAGED_HH
