#include "sys/migration.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "fault/fault_injector.hh"
#include "obs/metrics.hh"
#include "obs/profiler.hh"

namespace thermostat
{

PageMigrator::PageMigrator(AddressSpace &space, TlbShards &tlb,
                           LlcShards *llc,
                           const MigrationConfig &config)
    : space_(space), tlb_(tlb), llc_(llc), config_(config)
{
}

Ns
PageMigrator::copyCost(std::uint64_t bytes, double slowdown) const
{
    // slowdown == 1.0 except during an injected bandwidth
    // degradation episode (and 1.0 * sec is IEEE-exact, so the
    // fault-free cost is bit-identical to the pre-fault model).
    const double sec = slowdown * static_cast<double>(bytes) /
                       config_.copyBandwidthBytesPerSec;
    return config_.perPageSwCost +
           static_cast<Ns>(std::llround(sec * kNsPerSec));
}

MigrateResult
PageMigrator::migrate(Addr vaddr, Tier target, Ns now)
{
    ProfileScope pscope(profiler_, "migrate");
    MigrateResult result;
    WalkResult wr = space_.pageTable().walk(vaddr);
    TSTAT_ASSERT(wr.mapped(), "migrate: unmapped page %#lx",
                 static_cast<unsigned long>(vaddr));

    TieredMemory &memory = space_.memory();
    const Pfn old_pfn = wr.pte->pfn();
    const Tier source = memory.tierOf(old_pfn);
    if (source == target) {
        return result; // already placed; nothing to do
    }

    const bool huge = wr.huge;
    const std::uint64_t bytes = huge ? kPageSize2M : kPageSize4K;

    // Admission gate (host arbiter).  Checked after the same-tier
    // early return so no-op requests never consume budget, and
    // before any allocation so a denial has zero side effects.
    if (admission_ != nullptr &&
        !admission_->admit(vaddr, target, bytes, now)) {
        ++stats_.admissionDenials;
        stats_.bytesDenied += bytes;
        result.denied = true;
        if (tracer_) {
            tracer_->record(EventKind::MigrationThrottled, now,
                            vaddr, huge, bytes);
        }
        return result;
    }

    const unsigned frames = huge ? kSubpagesPerHuge : 1u;
    // Device wear from a full copy: 64B line writes per 4KB frame.
    const Count line_writes_per_frame =
        static_cast<Count>(kPageSize4K / 64);
    const double slowdown =
        faults_ != nullptr ? memory.slowCopySlowdown() : 1.0;

    // Single attempt in the fault-free path; with an injector
    // attached, transient failures retry with capped exponential
    // backoff (modeled as added migration cost, not simulated
    // wall-clock).
    const unsigned max_attempts =
        faults_ != nullptr ? config_.maxRetries + 1 : 1;
    bool alloc_starved = false;

    for (unsigned attempt = 1; attempt <= max_attempts; ++attempt) {
        if (attempt > 1) {
            const Ns backoff =
                std::min(config_.backoffCapNs,
                         config_.backoffBaseNs << (attempt - 2));
            result.cost += backoff;
            stats_.backoffNs += backoff;
            ++stats_.retries;
            if (tracer_) {
                tracer_->record(EventKind::MigrationRetried, now,
                                vaddr, huge, attempt);
            }
        }

        // Allocate the destination frame(s), under possible
        // injected transient allocation pressure.
        std::optional<Pfn> alloc;
        if (faults_ != nullptr &&
            faults_->shouldFail(FaultSite::MigrationAlloc, now)) {
            ++stats_.injectedAllocFails;
        } else {
            alloc = huge ? memory.allocHuge(target)
                         : memory.allocBase(target);
        }
        if (!alloc) {
            alloc_starved = true;
            continue;
        }
        alloc_starved = false;
        const Pfn new_pfn = *alloc;

        // Injected torn copy: half the page was written to the
        // destination before the device gave up.  Roll back -- the
        // half-written frames go back to the allocator, the page
        // table still points at the intact source, and only the
        // wasted wear sticks.  (The aborted bytes deliberately do
        // not count as tier migration traffic: the lifecycle
        // auditor cross-checks that traffic against successful
        // demotions/promotions.)
        if (faults_ != nullptr &&
            faults_->shouldFail(FaultSite::MigrationCopy, now)) {
            const std::uint64_t copied = bytes / 2;
            const unsigned frames_written =
                huge ? frames / 2 : 1u;
            const Count lines = huge
                                    ? line_writes_per_frame
                                    : static_cast<Count>(copied / 64);
            for (unsigned i = 0; i < frames_written; ++i) {
                memory.tier(target).recordWear(new_pfn + i, lines);
            }
            if (huge) {
                memory.freeHuge(new_pfn);
            } else {
                memory.freeBase(new_pfn);
            }
            ++stats_.copyAborts;
            stats_.bytesAborted += copied;
            result.cost += copyCost(copied, slowdown);
            if (tracer_) {
                tracer_->record(EventKind::MigrationAborted, now,
                                vaddr, huge, copied);
            }
            continue;
        }

        // Copy traffic: read from source, write to destination.
        memory.tier(source).recordMigrationOut(bytes);
        memory.tier(target).recordMigrationIn(bytes);
        for (unsigned i = 0; i < frames; ++i) {
            memory.tier(target).recordWear(new_pfn + i,
                                           line_writes_per_frame);
        }

        // Rewire the translation and invalidate stale cached state.
        space_.remapLeaf(vaddr, new_pfn);
        tlb_.invalidatePage(vaddr);
        if (llc_) {
            for (unsigned i = 0; i < frames; ++i) {
                llc_->invalidateFrame(old_pfn + i);
            }
        }

        // Release the old frame(s).
        if (huge) {
            memory.freeHuge(old_pfn);
        } else {
            memory.freeBase(old_pfn);
        }

        // Accounting.
        const bool demotion = target == Tier::Slow;
        if (demotion) {
            stats_.bytesDemoted += bytes;
            if (huge) {
                ++stats_.hugeDemotions;
            } else {
                ++stats_.baseDemotions;
            }
            demotionMeter_.record(now, bytes);
        } else {
            stats_.bytesPromoted += bytes;
            if (huge) {
                ++stats_.hugePromotions;
            } else {
                ++stats_.basePromotions;
            }
            promotionMeter_.record(now, bytes);
        }

        if (tracer_) {
            tracer_->record(demotion ? EventKind::PageDemoted
                                     : EventKind::PagePromoted,
                            now, vaddr, huge, bytes);
        }

        result.moved = true;
        result.cost += copyCost(bytes, slowdown);
        stats_.totalCost += result.cost;
        return result;
    }

    // All attempts exhausted.
    if (alloc_starved) {
        ++stats_.failedAllocs;
    }
    if (tracer_) {
        tracer_->record(EventKind::MigrationFailed, now, vaddr, huge,
                        bytes);
    }
    stats_.totalCost += result.cost;
    return result;
}

void
PageMigrator::registerMetrics(MetricRegistry &registry,
                              const std::string &prefix) const
{
    registry.addCallback(prefix + ".huge_demotions", [this] {
        return static_cast<double>(stats_.hugeDemotions);
    });
    registry.addCallback(prefix + ".base_demotions", [this] {
        return static_cast<double>(stats_.baseDemotions);
    });
    registry.addCallback(prefix + ".huge_promotions", [this] {
        return static_cast<double>(stats_.hugePromotions);
    });
    registry.addCallback(prefix + ".base_promotions", [this] {
        return static_cast<double>(stats_.basePromotions);
    });
    registry.addCallback(prefix + ".bytes_demoted", [this] {
        return static_cast<double>(stats_.bytesDemoted);
    });
    registry.addCallback(prefix + ".bytes_promoted", [this] {
        return static_cast<double>(stats_.bytesPromoted);
    });
    registry.addCallback(prefix + ".failed_allocs", [this] {
        return static_cast<double>(stats_.failedAllocs);
    });
    registry.addCallback(prefix + ".total_cost_ns", [this] {
        return static_cast<double>(stats_.totalCost);
    });
    registry.addCallback(prefix + ".retries", [this] {
        return static_cast<double>(stats_.retries);
    });
    registry.addCallback(prefix + ".copy_aborts", [this] {
        return static_cast<double>(stats_.copyAborts);
    });
    registry.addCallback(prefix + ".injected_alloc_fails", [this] {
        return static_cast<double>(stats_.injectedAllocFails);
    });
    registry.addCallback(prefix + ".bytes_aborted", [this] {
        return static_cast<double>(stats_.bytesAborted);
    });
    registry.addCallback(prefix + ".backoff_ns", [this] {
        return static_cast<double>(stats_.backoffNs);
    });
    registry.addCallback(prefix + ".admission_denials", [this] {
        return static_cast<double>(stats_.admissionDenials);
    });
    registry.addCallback(prefix + ".bytes_denied", [this] {
        return static_cast<double>(stats_.bytesDenied);
    });
}

} // namespace thermostat
