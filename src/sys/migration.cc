#include "sys/migration.hh"

#include <cmath>

#include "common/logging.hh"
#include "obs/metrics.hh"

namespace thermostat
{

PageMigrator::PageMigrator(AddressSpace &space, TlbHierarchy &tlb,
                           LastLevelCache *llc,
                           const MigrationConfig &config)
    : space_(space), tlb_(tlb), llc_(llc), config_(config)
{
}

Ns
PageMigrator::copyCost(std::uint64_t bytes) const
{
    const double sec = static_cast<double>(bytes) /
                       config_.copyBandwidthBytesPerSec;
    return config_.perPageSwCost +
           static_cast<Ns>(std::llround(sec * kNsPerSec));
}

MigrateResult
PageMigrator::migrate(Addr vaddr, Tier target, Ns now)
{
    MigrateResult result;
    WalkResult wr = space_.pageTable().walk(vaddr);
    TSTAT_ASSERT(wr.mapped(), "migrate: unmapped page %#lx",
                 static_cast<unsigned long>(vaddr));

    TieredMemory &memory = space_.memory();
    const Pfn old_pfn = wr.pte->pfn();
    const Tier source = memory.tierOf(old_pfn);
    if (source == target) {
        return result; // already placed; nothing to do
    }

    const bool huge = wr.huge;
    const std::uint64_t bytes = huge ? kPageSize2M : kPageSize4K;

    // Allocate the destination frame(s).
    Pfn new_pfn = 0;
    if (huge) {
        const auto alloc = memory.allocHuge(target);
        if (!alloc) {
            ++stats_.failedAllocs;
            if (tracer_) {
                tracer_->record(EventKind::MigrationFailed, now,
                                vaddr, true, bytes);
            }
            return result;
        }
        new_pfn = *alloc;
    } else {
        const auto alloc = memory.allocBase(target);
        if (!alloc) {
            ++stats_.failedAllocs;
            if (tracer_) {
                tracer_->record(EventKind::MigrationFailed, now,
                                vaddr, false, bytes);
            }
            return result;
        }
        new_pfn = *alloc;
    }

    // Copy traffic: read from source, write to destination.
    memory.tier(source).recordMigrationOut(bytes);
    memory.tier(target).recordMigrationIn(bytes);
    // Device wear from the copy: 64B line writes per 4KB frame.
    const Count line_writes_per_frame =
        static_cast<Count>(kPageSize4K / 64);
    const unsigned frames =
        huge ? kSubpagesPerHuge : 1u;
    for (unsigned i = 0; i < frames; ++i) {
        memory.tier(target).recordWear(new_pfn + i,
                                       line_writes_per_frame);
    }

    // Rewire the translation and invalidate stale cached state.
    space_.remapLeaf(vaddr, new_pfn);
    tlb_.invalidatePage(vaddr);
    if (llc_) {
        for (unsigned i = 0; i < frames; ++i) {
            llc_->invalidateFrame(old_pfn + i);
        }
    }

    // Release the old frame(s).
    if (huge) {
        memory.freeHuge(old_pfn);
    } else {
        memory.freeBase(old_pfn);
    }

    // Accounting.
    const bool demotion = target == Tier::Slow;
    if (demotion) {
        stats_.bytesDemoted += bytes;
        if (huge) {
            ++stats_.hugeDemotions;
        } else {
            ++stats_.baseDemotions;
        }
        demotionMeter_.record(now, bytes);
    } else {
        stats_.bytesPromoted += bytes;
        if (huge) {
            ++stats_.hugePromotions;
        } else {
            ++stats_.basePromotions;
        }
        promotionMeter_.record(now, bytes);
    }

    if (tracer_) {
        tracer_->record(demotion ? EventKind::PageDemoted
                                 : EventKind::PagePromoted,
                        now, vaddr, huge, bytes);
    }

    result.moved = true;
    result.cost = copyCost(bytes);
    stats_.totalCost += result.cost;
    return result;
}

void
PageMigrator::registerMetrics(MetricRegistry &registry,
                              const std::string &prefix) const
{
    registry.addCallback(prefix + ".huge_demotions", [this] {
        return static_cast<double>(stats_.hugeDemotions);
    });
    registry.addCallback(prefix + ".base_demotions", [this] {
        return static_cast<double>(stats_.baseDemotions);
    });
    registry.addCallback(prefix + ".huge_promotions", [this] {
        return static_cast<double>(stats_.hugePromotions);
    });
    registry.addCallback(prefix + ".base_promotions", [this] {
        return static_cast<double>(stats_.basePromotions);
    });
    registry.addCallback(prefix + ".bytes_demoted", [this] {
        return static_cast<double>(stats_.bytesDemoted);
    });
    registry.addCallback(prefix + ".bytes_promoted", [this] {
        return static_cast<double>(stats_.bytesPromoted);
    });
    registry.addCallback(prefix + ".failed_allocs", [this] {
        return static_cast<double>(stats_.failedAllocs);
    });
    registry.addCallback(prefix + ".total_cost_ns", [this] {
        return static_cast<double>(stats_.totalCost);
    });
}

} // namespace thermostat
