/**
 * @file
 * Page migration between memory tiers (NUMA zones).
 *
 * The paper moves cold pages into the slow tier through the existing
 * Linux NUMA migration path exposed to KVM guests (Sec 3.6), and
 * reports the resulting bandwidth in Table 3, split into demotion
 * ("Migration") and promotion-after-mis-classification
 * ("False-classification") traffic.
 */

#ifndef THERMOSTAT_SYS_MIGRATION_HH
#define THERMOSTAT_SYS_MIGRATION_HH

#include <cstdint>

#include "cache/llc.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "obs/event_trace.hh"
#include "tlb/tlb.hh"
#include "vm/address_space.hh"

namespace thermostat
{

class FaultInjector;
class MetricRegistry;
class Profiler;

/** Migration cost model. */
struct MigrationConfig
{
    /** Kernel software overhead per migrated page (either size). */
    Ns perPageSwCost = 3000;

    /** Copy bandwidth between tiers, bytes/sec. */
    double copyBandwidthBytesPerSec = 4.0e9;

    /**
     * Retry policy, exercised only when a fault injector is
     * attached (real kernels retry migrate_pages() on transient
     * failures too, but without faults the simulator never sees
     * one): up to maxRetries retries after the first attempt, with
     * capped exponential backoff between attempts.
     */
    unsigned maxRetries = 3;
    Ns backoffBaseNs = 50'000;
    Ns backoffCapNs = 1'000'000;
};

/** Aggregate migration accounting. */
struct MigrationStats
{
    Count hugeDemotions = 0;   //!< fast -> slow, 2MB
    Count baseDemotions = 0;   //!< fast -> slow, 4KB
    Count hugePromotions = 0;  //!< slow -> fast, 2MB
    Count basePromotions = 0;  //!< slow -> fast, 4KB
    std::uint64_t bytesDemoted = 0;
    std::uint64_t bytesPromoted = 0;
    Count failedAllocs = 0;    //!< target tier full
    Ns totalCost = 0;

    // Host-arbiter accounting (zero without an admission gate).
    Count admissionDenials = 0;  //!< requests the arbiter refused
    std::uint64_t bytesDenied = 0; //!< bytes those requests carried

    // Fault-path accounting (all zero without an injector).
    Count retries = 0;           //!< retry attempts made
    Count copyAborts = 0;        //!< copies torn and rolled back
    Count injectedAllocFails = 0; //!< injected allocation pressure
    std::uint64_t bytesAborted = 0; //!< copied then discarded
    Ns backoffNs = 0;            //!< time spent backing off
};

/** Outcome of one migration request. */
struct MigrateResult
{
    bool moved = false;
    Ns cost = 0;
    /**
     * The admission controller refused the move (distinct from a
     * full tier: a denied request should be retried later, and the
     * migration queue requeues it instead of dropping it).
     */
    bool denied = false;
};

/**
 * Admission control over migration traffic.  When a controller is
 * attached (the datacenter host's arbiter), every migration that
 * would actually move a page is first offered to admit(); a denial
 * leaves the page where it is, costs nothing, and is visible to the
 * caller only as moved=false -- the same shape as a full target
 * tier, which every policy already handles.  Standalone runs never
 * attach one, so the fault-free single-tenant path is unchanged.
 */
class MigrationAdmission
{
  public:
    virtual ~MigrationAdmission() = default;

    /**
     * @param vaddr Leaf base being moved.
     * @param target Destination tier.
     * @param bytes Leaf size (4KB or 2MB).
     * @param now Simulation time of the request.
     * @return Whether the migration may proceed.
     */
    virtual bool admit(Addr vaddr, Tier target, std::uint64_t bytes,
                       Ns now) = 0;
};

/**
 * Moves individual pages between tiers, updating the page table,
 * TLB, LLC and the per-tier traffic meters.
 */
class PageMigrator
{
  public:
    PageMigrator(AddressSpace &space, TlbShards &tlb,
                 LlcShards *llc = nullptr,
                 const MigrationConfig &config = {});

    /**
     * Migrate the leaf page at @p vaddr to @p target.
     * No-op (moved=false, cost=0) when already there; moved=false
     * with failedAllocs incremented when the target tier is full.
     */
    MigrateResult migrate(Addr vaddr, Tier target, Ns now);

    const MigrationStats &stats() const { return stats_; }
    const MigrationConfig &config() const { return config_; }

    /**
     * Attach a lifecycle tracer: successful moves emit
     * PageDemoted/PagePromoted (value = bytes), exhausted target
     * tiers emit MigrationFailed, and the fault path emits
     * MigrationRetried/MigrationAborted.
     */
    void setTracer(EventTracer *tracer) { tracer_ = tracer; }

    /**
     * Attach a fault injector.  Arms the retry/backoff/rollback
     * machinery: MigrationAlloc faults deny the destination frame,
     * MigrationCopy faults tear the copy halfway (the half-written
     * destination is discarded, wear included, and the page table
     * is left untouched on the source).  Without an injector,
     * migrate() is single-attempt, exactly the fault-free path.
     */
    void setFaultInjector(FaultInjector *faults) { faults_ = faults; }

    /**
     * Attach the host-time phase profiler: each migrate() call runs
     * under a "migrate" scope (observe-only, like the tracer).
     */
    void setProfiler(Profiler *profiler) { profiler_ = profiler; }

    /**
     * Attach an admission controller (see MigrationAdmission).
     * Null detaches; without one, migrate() never pays the check.
     */
    void setAdmission(MigrationAdmission *admission)
    {
        admission_ = admission;
    }

    /** Expose the counters under "<prefix>." in @p registry. */
    void registerMetrics(MetricRegistry &registry,
                         const std::string &prefix) const;

    /**
     * Demotion bandwidth (bytes/sec) in the window since the last
     * call; Table 3's "Migration" column.
     */
    double takeDemotionRate(Ns now) { return demotionMeter_.takeWindowRate(now); }

    /**
     * Promotion bandwidth (bytes/sec) in the window since the last
     * call; Table 3's "False-classification" column.
     */
    double takePromotionRate(Ns now) { return promotionMeter_.takeWindowRate(now); }

    double overallDemotionRate() const { return demotionMeter_.overallRate(); }
    double overallPromotionRate() const { return promotionMeter_.overallRate(); }

  private:
    Ns copyCost(std::uint64_t bytes, double slowdown = 1.0) const;

    AddressSpace &space_;
    TlbShards &tlb_;
    LlcShards *llc_;
    MigrationConfig config_;
    MigrationStats stats_;
    EventTracer *tracer_ = nullptr;
    FaultInjector *faults_ = nullptr;
    Profiler *profiler_ = nullptr;
    MigrationAdmission *admission_ = nullptr;
    RateMeter demotionMeter_;  //!< records bytes, not pages
    RateMeter promotionMeter_;
};

} // namespace thermostat

#endif // THERMOSTAT_SYS_MIGRATION_HH
