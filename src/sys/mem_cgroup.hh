/**
 * @file
 * Memory-cgroup style runtime control surface for Thermostat.
 *
 * The paper controls Thermostat via the Linux memory cgroup: "All
 * processes in the same cgroup share Thermostat parameters, such as
 * the sampling period and maximum tolerable slowdown" (Sec 3.1), and
 * the slowdown threshold "can be changed at runtime through the
 * Linux cgroup mechanism" (Sec 5).
 */

#ifndef THERMOSTAT_SYS_MEM_CGROUP_HH
#define THERMOSTAT_SYS_MEM_CGROUP_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace thermostat
{

/** Tunable Thermostat parameters, shared by a control group. */
struct ThermostatParams
{
    /** Master enable. */
    bool enabled = true;

    /**
     * Maximum tolerable slowdown in percent; the single input
     * parameter a system administrator specifies (Sec 5).
     */
    double tolerableSlowdownPct = 3.0;

    /**
     * Assumed slow-memory access latency ts used in the
     * slowdown-to-rate translation (Sec 3.4); 1us in the paper.
     */
    Ns slowMemLatency = 1000;

    /** Fraction of huge pages sampled per period (5%). */
    double sampleFraction = 0.05;

    /** Max poisoned 4KB pages per sampled huge page (K = 50). */
    unsigned poisonBudget = 50;

    /** Length of one full sampling period (30s). */
    Ns samplingPeriod = 30 * kNsPerSec;

    /**
     * Enable the mis-classification corrector (Sec 3.5).  Exposed
     * so its contribution can be ablated; always on in the paper.
     */
    bool correctionEnabled = true;

    /**
     * Future-work extension (paper Sec 6, "Spreading a 2MB page
     * across fast and slow memories"): when a sampled huge page is
     * too hot to place wholesale but its hot footprint is confined
     * to at most spreadMaxHotSubpages 4KB subpages, keep it split,
     * pin the hot subpages in fast memory and demote the rest.
     * Trades that page's TLB reach for fast-memory capacity; off by
     * default, evaluated by bench/abl_spread_pages.
     */
    bool spreadHugePages = false;
    unsigned spreadMaxHotSubpages = 64;

    /**
     * Graceful-degradation knobs (only consulted when a fault
     * injector is attached, see src/fault): a page whose demotion
     * fails quarantineThreshold consecutive times is benched --
     * ineligible for placement -- for quarantineDuration, instead
     * of burning migration bandwidth on it every period.
     */
    Count quarantineThreshold = 3;
    Ns quarantineDuration = 60 * kNsPerSec;

    /**
     * Target aggregate access rate (accesses/sec) to slow memory:
     * x / (100 * ts).  3% and 1us give the paper's 30K accesses/sec.
     */
    double
    targetSlowAccessRate() const
    {
        return tolerableSlowdownPct /
               (100.0 * static_cast<double>(slowMemLatency) /
                static_cast<double>(kNsPerSec));
    }
};

/**
 * A control group binding a name to shared parameters.  Runtime
 * writes (e.g. raising the tolerable slowdown mid-run, as the
 * Figure 11 sweep does) take effect at the next sampling period.
 */
class MemCgroup
{
  public:
    explicit MemCgroup(std::string name,
                       const ThermostatParams &params = {})
        : name_(std::move(name)), params_(params)
    {
    }

    const std::string &name() const { return name_; }
    const ThermostatParams &params() const { return params_; }

    /** cgroup-file style setters. */
    void setEnabled(bool enabled) { params_.enabled = enabled; }
    void
    setTolerableSlowdownPct(double pct)
    {
        params_.tolerableSlowdownPct = pct;
    }
    void setSamplingPeriod(Ns period) { params_.samplingPeriod = period; }
    void
    setSampleFraction(double fraction)
    {
        params_.sampleFraction = fraction;
    }
    void setPoisonBudget(unsigned k) { params_.poisonBudget = k; }
    void setSlowMemLatency(Ns ts) { params_.slowMemLatency = ts; }

  private:
    std::string name_;
    ThermostatParams params_;
};

} // namespace thermostat

#endif // THERMOSTAT_SYS_MEM_CGROUP_HH
