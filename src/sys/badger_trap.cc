#include "sys/badger_trap.hh"

#include "common/logging.hh"
#include "obs/metrics.hh"

namespace thermostat
{

BadgerTrap::BadgerTrap(AddressSpace &space, TlbShards &tlb,
                       const BadgerTrapConfig &config)
    : space_(space), tlb_(tlb), config_(config)
{
}

Ns
BadgerTrap::poison(Addr page_base)
{
    WalkResult wr = space_.pageTable().walk(page_base);
    TSTAT_ASSERT(wr.mapped(), "poison: unmapped page %#lx",
                 static_cast<unsigned long>(page_base));
    wr.pte->poison();
    tlb_.invalidatePage(page_base);
    lanes_[laneOf(page_base)].counts.set(page_base, 0);
    ++controlStats_.poisons;
    controlStats_.maintenanceTime += config_.poisonCost;
    if (tracer_) {
        tracer_->record(EventKind::PagePoisoned, tracer_->simTime(),
                        page_base, wr.huge);
    }
    return config_.poisonCost;
}

Ns
BadgerTrap::unpoison(Addr page_base)
{
    WalkResult wr = space_.pageTable().walk(page_base);
    TSTAT_ASSERT(wr.mapped(), "unpoison: unmapped page %#lx",
                 static_cast<unsigned long>(page_base));
    wr.pte->unpoison();
    ++controlStats_.unpoisons;
    controlStats_.maintenanceTime += config_.poisonCost;
    if (tracer_) {
        tracer_->record(EventKind::PageUnpoisoned,
                        tracer_->simTime(), page_base, wr.huge);
    }
    return config_.poisonCost;
}

bool
BadgerTrap::isPoisoned(Addr page_base)
{
    WalkResult wr = space_.pageTable().walk(page_base);
    return wr.mapped() && wr.pte->poisoned();
}

Ns
BadgerTrap::onPoisonFault(Addr page_base, Count weight)
{
    LaneState &lane = lanes_[laneOf(page_base)];
    ++lane.faults;
    lane.weightedFaults += weight;
    lane.handlerTime += config_.faultLatency;
    return config_.faultLatency;
}

void
BadgerTrap::recordAccess(Addr page_base, Count weight)
{
    lanes_[laneOf(page_base)].counts.add(page_base, weight);
}

Count
BadgerTrap::faultCount(Addr page_base) const
{
    return lanes_[laneOf(page_base)].counts.get(page_base);
}

void
BadgerTrap::resetCount(Addr page_base)
{
    lanes_[laneOf(page_base)].counts.set(page_base, 0);
}

void
BadgerTrap::resetAllCounts()
{
    for (LaneState &lane : lanes_) {
        lane.counts.clear();
    }
}

BadgerTrapStats
BadgerTrap::stats() const
{
    BadgerTrapStats merged = controlStats_;
    for (const LaneState &lane : lanes_) {
        merged.faults += lane.faults;
        merged.weightedFaults += lane.weightedFaults;
        merged.handlerTime += lane.handlerTime;
    }
    return merged;
}

std::size_t
BadgerTrap::trackedPages() const
{
    std::size_t n = 0;
    for (const LaneState &lane : lanes_) {
        n += lane.counts.size();
    }
    return n;
}

void
BadgerTrap::registerMetrics(MetricRegistry &registry,
                            const std::string &prefix) const
{
    registry.addCallback(prefix + ".faults", [this] {
        return static_cast<double>(stats().faults);
    });
    registry.addCallback(prefix + ".weighted_faults", [this] {
        return static_cast<double>(stats().weightedFaults);
    });
    registry.addCallback(prefix + ".poisons", [this] {
        return static_cast<double>(stats().poisons);
    });
    registry.addCallback(prefix + ".unpoisons", [this] {
        return static_cast<double>(stats().unpoisons);
    });
    registry.addCallback(prefix + ".handler_ns", [this] {
        return static_cast<double>(stats().handlerTime);
    });
    registry.addCallback(prefix + ".maintenance_ns", [this] {
        return static_cast<double>(stats().maintenanceTime);
    });
    registry.addCallback(prefix + ".tracked_pages", [this] {
        return static_cast<double>(trackedPages());
    });
}

} // namespace thermostat
