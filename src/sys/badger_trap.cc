#include "sys/badger_trap.hh"

#include "common/logging.hh"
#include "obs/metrics.hh"

namespace thermostat
{

BadgerTrap::BadgerTrap(AddressSpace &space, TlbHierarchy &tlb,
                       const BadgerTrapConfig &config)
    : space_(space), tlb_(tlb), config_(config)
{
}

Ns
BadgerTrap::poison(Addr page_base)
{
    WalkResult wr = space_.pageTable().walk(page_base);
    TSTAT_ASSERT(wr.mapped(), "poison: unmapped page %#lx",
                 static_cast<unsigned long>(page_base));
    wr.pte->poison();
    tlb_.invalidatePage(page_base);
    counts_[page_base] = 0;
    ++stats_.poisons;
    stats_.maintenanceTime += config_.poisonCost;
    if (tracer_) {
        tracer_->record(EventKind::PagePoisoned, tracer_->simTime(),
                        page_base, wr.huge);
    }
    return config_.poisonCost;
}

Ns
BadgerTrap::unpoison(Addr page_base)
{
    WalkResult wr = space_.pageTable().walk(page_base);
    TSTAT_ASSERT(wr.mapped(), "unpoison: unmapped page %#lx",
                 static_cast<unsigned long>(page_base));
    wr.pte->unpoison();
    ++stats_.unpoisons;
    stats_.maintenanceTime += config_.poisonCost;
    if (tracer_) {
        tracer_->record(EventKind::PageUnpoisoned,
                        tracer_->simTime(), page_base, wr.huge);
    }
    return config_.poisonCost;
}

bool
BadgerTrap::isPoisoned(Addr page_base)
{
    WalkResult wr = space_.pageTable().walk(page_base);
    return wr.mapped() && wr.pte->poisoned();
}

Ns
BadgerTrap::onPoisonFault(Addr page_base, Count weight)
{
    (void)page_base;
    ++stats_.faults;
    stats_.weightedFaults += weight;
    stats_.handlerTime += config_.faultLatency;
    return config_.faultLatency;
}

void
BadgerTrap::recordAccess(Addr page_base, Count weight)
{
    counts_[page_base] += weight;
}

Count
BadgerTrap::faultCount(Addr page_base) const
{
    const auto it = counts_.find(page_base);
    return it == counts_.end() ? 0 : it->value;
}

void
BadgerTrap::resetCount(Addr page_base)
{
    counts_[page_base] = 0;
}

void
BadgerTrap::resetAllCounts()
{
    counts_.clear();
}

void
BadgerTrap::registerMetrics(MetricRegistry &registry,
                            const std::string &prefix) const
{
    registry.addCallback(prefix + ".faults", [this] {
        return static_cast<double>(stats_.faults);
    });
    registry.addCallback(prefix + ".weighted_faults", [this] {
        return static_cast<double>(stats_.weightedFaults);
    });
    registry.addCallback(prefix + ".poisons", [this] {
        return static_cast<double>(stats_.poisons);
    });
    registry.addCallback(prefix + ".unpoisons", [this] {
        return static_cast<double>(stats_.unpoisons);
    });
    registry.addCallback(prefix + ".handler_ns", [this] {
        return static_cast<double>(stats_.handlerTime);
    });
    registry.addCallback(prefix + ".maintenance_ns", [this] {
        return static_cast<double>(stats_.maintenanceTime);
    });
    registry.addCallback(prefix + ".tracked_pages", [this] {
        return static_cast<double>(counts_.size());
    });
}

} // namespace thermostat
