#include "sys/khugepaged.hh"

#include <unordered_set>
#include <vector>

#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/profiler.hh"

namespace thermostat
{

Khugepaged::Khugepaged(AddressSpace &space, TlbShards &tlb,
                       const KhugepagedConfig &config)
    : space_(space), tlb_(tlb), config_(config)
{
}

void
Khugepaged::tick(Ns now)
{
    if (tracer_) {
        tracer_->setSimTime(now);
    }
    while (now >= nextPass_) {
        runPass();
        nextPass_ += config_.scanPeriod;
    }
}

unsigned
Khugepaged::runPass()
{
    ProfileScope pscope(profiler_, "khugepaged_pass");
    ++stats_.passes;

    // Gather the 2MB-aligned ranges that currently hold 4KB leaves.
    std::unordered_set<Addr> candidates;
    std::unordered_set<Addr> poisoned_ranges;
    space_.pageTable().forEachLeaf(
        [&](Addr base, Pte &pte, bool huge) {
            if (huge) {
                return;
            }
            const Addr range = alignDown2M(base);
            candidates.insert(range);
            if (pte.poisoned()) {
                // A poisoned subpage means the range is under
                // active monitoring; leave it alone, like
                // khugepaged skips pages with special PTE bits.
                poisoned_ranges.insert(range);
            }
        });

    std::vector<Addr> ordered(candidates.begin(), candidates.end());
    std::sort(ordered.begin(), ordered.end());

    unsigned collapsed = 0;
    for (const Addr range : ordered) {
        ++stats_.rangesScanned;
        stats_.totalCost += config_.perRangeCost;
        if (collapsed >= config_.maxCollapsesPerPass) {
            break;
        }
        if (poisoned_ranges.find(range) != poisoned_ranges.end()) {
            continue;
        }
        if (skip_ && skip_(range)) {
            continue;
        }
        // collapseHuge() enforces the real preconditions: all 512
        // present, physically contiguous, uniform flags.
        if (space_.collapseHuge(range)) {
            tlb_.invalidatePage(range);
            stats_.totalCost += config_.perCollapseCost;
            ++stats_.collapses;
            ++collapsed;
            if (tracer_) {
                tracer_->record(EventKind::PageCollapsed,
                                tracer_->simTime(), range, true);
            }
        }
    }
    return collapsed;
}

void
Khugepaged::registerMetrics(MetricRegistry &registry,
                            const std::string &prefix) const
{
    registry.addCallback(prefix + ".passes", [this] {
        return static_cast<double>(stats_.passes);
    });
    registry.addCallback(prefix + ".ranges_scanned", [this] {
        return static_cast<double>(stats_.rangesScanned);
    });
    registry.addCallback(prefix + ".collapses", [this] {
        return static_cast<double>(stats_.collapses);
    });
    registry.addCallback(prefix + ".total_cost_ns", [this] {
        return static_cast<double>(stats_.totalCost);
    });
}

} // namespace thermostat
