/**
 * @file
 * BadgerTrap: PTE-poisoning fault intercept (Gandhi et al., CAN'14),
 * as used by Thermostat for page access counting (paper Sec 3.3).
 *
 * Poisoning sets reserved bit 51 in a leaf PTE and shoots down the
 * TLB entry.  The next access misses the TLB, the hardware walk
 * loads the poisoned PTE and raises a reserved-bit protection fault.
 * The handler counts the access, installs a (temporary) valid
 * translation in the TLB and leaves the PTE poisoned, so the page
 * faults again on its next TLB miss.  Fault counts are therefore a
 * proxy for TLB misses, which for cold pages track LLC misses.
 */

#ifndef THERMOSTAT_SYS_BADGER_TRAP_HH
#define THERMOSTAT_SYS_BADGER_TRAP_HH

#include <array>
#include <cstdint>

#include "common/page_counters.hh"
#include "common/types.hh"
#include "obs/event_trace.hh"
#include "tlb/tlb.hh"
#include "vm/address_space.hh"

namespace thermostat
{

class MetricRegistry;

/** BadgerTrap cost/config knobs. */
struct BadgerTrapConfig
{
    /**
     * End-to-end fault latency as seen by the faulting access.  The
     * paper measures ~1us for the in-guest handler and notes that
     * value doubles as a slow-memory emulator; a bare counting
     * handler (no emulation) is a few hundred ns.
     */
    Ns faultLatency = 1000;

    /** Cost of poisoning/unpoisoning one PTE (incl. shootdown). */
    Ns poisonCost = 300;
};

/** Aggregate counters. */
struct BadgerTrapStats
{
    Count faults = 0;          //!< handler invocations (unweighted)
    Count weightedFaults = 0;  //!< represented real accesses
    Count poisons = 0;
    Count unpoisons = 0;
    Ns handlerTime = 0;        //!< total fault latency charged
    Ns maintenanceTime = 0;    //!< poison/unpoison cost charged
};

/**
 * The fault intercept and per-page access counters.
 *
 * Pages are keyed by virtual base address (4KB- or 2MB-aligned
 * depending on the leaf size); Thermostat poisons split 4KB pages
 * while profiling and whole 2MB pages while they live in slow
 * memory (mis-classification monitoring, Sec 3.5).
 *
 * The hot entry points (onPoisonFault from the timing stream,
 * recordAccess from the profiling stream) are lane-sharded: each
 * machine lane owns its own fault counters and SoA page-count shard
 * (common/page_counters.hh), so concurrent lane workers never share
 * mutable state and the merged view is a lane-ordered sum.  The
 * control path (poison/unpoison, called only from serial epoch
 * phases) keeps its own counters.
 */
class BadgerTrap
{
  public:
    BadgerTrap(AddressSpace &space, TlbShards &tlb,
               const BadgerTrapConfig &config = {});

    /**
     * Poison the leaf mapping @p page_base (must be mapped).  Resets
     * the page's fault counter and invalidates its TLB entries.
     * @return maintenance cost in ns.
     */
    Ns poison(Addr page_base);

    /** Remove poison and stop counting; keeps the final count. */
    Ns unpoison(Addr page_base);

    /** Whether the leaf at @p page_base is currently poisoned. */
    bool isPoisoned(Addr page_base);

    /**
     * The MMU calls this when a walk hits a poisoned leaf.  Charges
     * the handler latency; counting happens via recordAccess() so
     * that count granularity is independent of the timing stream.
     * @param page_base Base address of the faulting page.
     * @param weight Real accesses represented by this sampled access.
     * @return fault latency to charge the access.
     */
    Ns onPoisonFault(Addr page_base, Count weight = 1);

    /**
     * Account @p weight accesses against a poisoned page's counter.
     * Driven by the profiling stream (see Simulation): the net
     * effect matches the paper's counting, where every TLB miss to
     * a poisoned page is observed.
     */
    void recordAccess(Addr page_base, Count weight);

    /** Accumulated (weighted) fault count for a page. */
    Count faultCount(Addr page_base) const;

    /** Reset one page's counter (e.g. at a period boundary). */
    void resetCount(Addr page_base);

    /** Reset every counter. */
    void resetAllCounts();

    /** Lane-merged counters (by value: the sum over all lanes). */
    BadgerTrapStats stats() const;
    const BadgerTrapConfig &config() const { return config_; }

    /**
     * Attach a lifecycle tracer: poison()/unpoison() emit
     * PagePoisoned/PageUnpoisoned stamped with the tracer's ambient
     * simulated time (these APIs carry no timestamp).
     */
    void setTracer(EventTracer *tracer) { tracer_ = tracer; }

    /** Expose the counters under "<prefix>." in @p registry. */
    void registerMetrics(MetricRegistry &registry,
                         const std::string &prefix) const;

    /** Number of pages currently tracked (poisoned at some point). */
    std::size_t trackedPages() const;

  private:
    /** One machine lane's mutable hot-path state. */
    struct LaneState
    {
        Count faults = 0;         // shard: lane-local
        Count weightedFaults = 0; // shard: lane-local
        Ns handlerTime = 0;       // shard: lane-local
        PageCounterShard counts;
    };

    AddressSpace &space_; // shard: read-only
    TlbShards &tlb_; // shard: read-only
    BadgerTrapConfig config_; // shard: read-only
    // shard: serial-only
    BadgerTrapStats controlStats_; //!< serial-phase counters only
    EventTracer *tracer_ = nullptr; // shard: serial-only
    std::array<LaneState, kMachineLanes> lanes_;
};

} // namespace thermostat

#endif // THERMOSTAT_SYS_BADGER_TRAP_HH
