#include "migrate/transaction_engine.hh"

#include <cmath>

#include "common/logging.hh"
#include "fault/fault_injector.hh"
#include "obs/event_trace.hh"
#include "obs/metrics.hh"

namespace thermostat
{

TransactionEngine::TransactionEngine(AddressSpace &space,
                                     PageMigrator &migrator)
    : space_(space), migrator_(migrator)
{
}

Ns
TransactionEngine::shadowCopyCost(std::uint64_t bytes) const
{
    // Same cost model as PageMigrator::copyCost: the shadow copy
    // rides the identical inter-tier link, including any injected
    // bandwidth degradation.
    const double slowdown =
        faults_ != nullptr ? space_.memory().slowCopySlowdown() : 1.0;
    const MigrationConfig &config = migrator_.config();
    const double sec = slowdown * static_cast<double>(bytes) /
                       config.copyBandwidthBytesPerSec;
    return config.perPageSwCost +
           static_cast<Ns>(std::llround(sec * kNsPerSec));
}

void
TransactionEngine::releaseShadow(const ShadowEntry &entry,
                                 std::uint64_t bytes)
{
    TieredMemory &memory = space_.memory();
    if (entry.huge) {
        memory.freeHuge(entry.pfn);
    } else {
        memory.freeBase(entry.pfn);
    }
    memory.recordShadowRelease(entry.tier, bytes);
}

bool
TransactionEngine::begin(Addr base, bool huge, Tier target, Ns now,
                         Ns *cost)
{
    TSTAT_ASSERT(!ledger_.contains(base),
                 "transaction already open on %#lx",
                 static_cast<unsigned long>(base));
    TieredMemory &memory = space_.memory();
    const std::uint64_t bytes = huge ? kPageSize2M : kPageSize4K;
    const Count line_writes_per_frame =
        static_cast<Count>(kPageSize4K / 64);

    std::optional<Pfn> alloc =
        huge ? memory.allocHuge(target) : memory.allocBase(target);
    if (!alloc) {
        return false; // target tier full; caller treats as refusal
    }
    const Pfn shadow = *alloc;

    // Torn shadow copy: half the page landed before the device gave
    // up.  Same rollback as the migrator's torn path -- the wasted
    // wear sticks, the frames go back, the transaction never opens.
    if (faults_ != nullptr &&
        faults_->shouldFail(FaultSite::MigrationCopy, now)) {
        const std::uint64_t copied = bytes / 2;
        const unsigned frames_written =
            huge ? kSubpagesPerHuge / 2 : 1u;
        const Count lines =
            huge ? line_writes_per_frame
                 : static_cast<Count>(copied / 64);
        for (unsigned i = 0; i < frames_written; ++i) {
            memory.tier(target).recordWear(shadow + i, lines);
        }
        if (huge) {
            memory.freeHuge(shadow);
        } else {
            memory.freeBase(shadow);
        }
        ++stats_.aborts;
        ++stats_.tornAborts;
        *cost += shadowCopyCost(copied);
        if (tracer_) {
            tracer_->record(EventKind::TransactionAborted, now, base,
                            huge, copied);
        }
        return false;
    }

    // Full shadow copy: wear on every shadow frame, copy time
    // charged.  Deliberately *not* tier migration traffic -- the
    // page has not moved; the audited traffic flows at commit.
    const unsigned frames = huge ? kSubpagesPerHuge : 1u;
    for (unsigned i = 0; i < frames; ++i) {
        memory.tier(target).recordWear(shadow + i,
                                       line_writes_per_frame);
    }
    memory.recordShadowAlloc(target, bytes);
    ledger_[base] = {shadow, target, huge, false, false};
    ++stats_.begins;
    const std::uint64_t resident_twice = ledgerBytes(Tier::Fast) +
                                         ledgerBytes(Tier::Slow);
    if (resident_twice > stats_.shadowBytesPeak) {
        stats_.shadowBytesPeak = resident_twice;
    }
    *cost += shadowCopyCost(bytes);
    if (tracer_) {
        tracer_->record(EventKind::TransactionStarted, now, base,
                        huge, bytes);
    }
    return true;
}

void
TransactionEngine::markDirty(Addr base, Ns now)
{
    auto it = ledger_.find(base);
    if (it == ledger_.end()) {
        return;
    }
    if (it->value.replica) {
        // Writes invalidate read replicas immediately: the slow
        // copy is stale the moment the fast copy diverges.
        const std::uint64_t bytes =
            it->value.huge ? kPageSize2M : kPageSize4K;
        const ShadowEntry entry = it->value;
        ledger_.erase(base);
        releaseShadow(entry, bytes);
        ++stats_.replicasDropped;
        if (tracer_) {
            tracer_->record(EventKind::ReplicaDropped, now, base,
                            entry.huge, bytes);
        }
        return;
    }
    it->value.dirty = true;
}

bool
TransactionEngine::commit(Addr base, Ns now, Ns *cost)
{
    auto it = ledger_.find(base);
    TSTAT_ASSERT(it != ledger_.end(),
                 "commit without begin on %#lx",
                 static_cast<unsigned long>(base));
    TSTAT_ASSERT(!it->value.replica,
                 "commit on a retained replica %#lx",
                 static_cast<unsigned long>(base));
    const ShadowEntry entry = it->value;
    const std::uint64_t bytes =
        entry.huge ? kPageSize2M : kPageSize4K;
    ledger_.erase(base);

    // Dirty-revalidation: a write raced the copy, the shadow is
    // stale.  Roll back -- the page stays put, the copy wear from
    // begin() is the billed waste.
    if (entry.dirty) {
        releaseShadow(entry, bytes);
        ++stats_.aborts;
        ++stats_.dirtyAborts;
        if (tracer_) {
            tracer_->record(EventKind::TransactionAborted, now, base,
                            entry.huge, bytes);
        }
        return false;
    }

    // Clean: release the shadow first (making room in the target
    // tier), then issue the audited move through the migrator.  The
    // modeled device already holds the data, but the page-table
    // rewire, TLB/LLC invalidation and traffic accounting are
    // exactly a migration and must flow through the audited path.
    releaseShadow(entry, bytes);
    const MigrateResult res = migrator_.migrate(base, entry.tier, now);
    *cost += res.cost;
    if (!res.moved) {
        ++stats_.commitFailures;
        return false;
    }
    ++stats_.commits;
    if (tracer_) {
        tracer_->record(EventKind::TransactionCommitted, now, base,
                        entry.huge, bytes);
    }
    return true;
}

bool
TransactionEngine::retainReplica(Addr base, bool huge, Ns now)
{
    TSTAT_ASSERT(!ledger_.contains(base),
                 "replica over an open entry %#lx",
                 static_cast<unsigned long>(base));
    TieredMemory &memory = space_.memory();
    std::optional<Pfn> alloc =
        huge ? memory.allocHuge(Tier::Slow)
             : memory.allocBase(Tier::Slow);
    if (!alloc) {
        return false;
    }
    const std::uint64_t bytes = huge ? kPageSize2M : kPageSize4K;
    memory.recordShadowAlloc(Tier::Slow, bytes);
    ledger_[base] = {*alloc, Tier::Slow, huge, false, true};
    ++stats_.replicasRetained;
    if (tracer_) {
        tracer_->record(EventKind::ReplicaRetained, now, base, huge,
                        bytes);
    }
    return true;
}

bool
TransactionEngine::hasReplica(Addr base) const
{
    const auto it = ledger_.find(base);
    return it != ledger_.end() && it->value.replica &&
           !it->value.dirty;
}

void
TransactionEngine::consumeReplica(Addr base, Ns now)
{
    auto it = ledger_.find(base);
    TSTAT_ASSERT(it != ledger_.end() && it->value.replica,
                 "no replica to consume at %#lx",
                 static_cast<unsigned long>(base));
    const ShadowEntry entry = it->value;
    const std::uint64_t bytes =
        entry.huge ? kPageSize2M : kPageSize4K;
    ledger_.erase(base);
    releaseShadow(entry, bytes);
    ++stats_.replicasConsumed;
    if (tracer_) {
        tracer_->record(EventKind::ReplicaDropped, now, base,
                        entry.huge, bytes);
    }
}

std::uint64_t
TransactionEngine::ledgerBytes(Tier t) const
{
    std::uint64_t total = 0;
    for (const auto &slot : ledger_) {
        if (slot.value.tier == t) {
            total += slot.value.huge ? kPageSize2M : kPageSize4K;
        }
    }
    return total;
}

Count
TransactionEngine::verifyLedger()
{
    Count violations = 0;
    const TieredMemory &memory = space_.memory();
    for (const auto &slot : ledger_) {
        if (memory.tierOf(slot.value.pfn) != slot.value.tier) {
            ++violations;
        }
    }
    if (ledgerBytes(Tier::Fast) != memory.shadowBytes(Tier::Fast)) {
        ++violations;
    }
    if (ledgerBytes(Tier::Slow) != memory.shadowBytes(Tier::Slow)) {
        ++violations;
    }
    stats_.ledgerViolations += violations;
    return violations;
}

void
TransactionEngine::registerMetrics(MetricRegistry &registry,
                                   const std::string &prefix) const
{
    registry.addCallback(prefix + ".begins", [this] {
        return static_cast<double>(stats_.begins);
    });
    registry.addCallback(prefix + ".commits", [this] {
        return static_cast<double>(stats_.commits);
    });
    registry.addCallback(prefix + ".aborts", [this] {
        return static_cast<double>(stats_.aborts);
    });
    registry.addCallback(prefix + ".torn_aborts", [this] {
        return static_cast<double>(stats_.tornAborts);
    });
    registry.addCallback(prefix + ".dirty_aborts", [this] {
        return static_cast<double>(stats_.dirtyAborts);
    });
    registry.addCallback(prefix + ".commit_failures", [this] {
        return static_cast<double>(stats_.commitFailures);
    });
    registry.addCallback(prefix + ".replicas_retained", [this] {
        return static_cast<double>(stats_.replicasRetained);
    });
    registry.addCallback(prefix + ".replicas_dropped", [this] {
        return static_cast<double>(stats_.replicasDropped);
    });
    registry.addCallback(prefix + ".replicas_consumed", [this] {
        return static_cast<double>(stats_.replicasConsumed);
    });
    registry.addCallback(prefix + ".shadow_bytes_peak", [this] {
        return static_cast<double>(stats_.shadowBytesPeak);
    });
    registry.addCallback(prefix + ".ledger_violations", [this] {
        return static_cast<double>(stats_.ledgerViolations);
    });
}

} // namespace thermostat
