/**
 * @file
 * Bounded, epoch-stepped migration queue (ROADMAP item 3).
 *
 * The ChampSim-Ramulator / CAMEO line of work (SNIPPETS 1-2) models
 * hardware remapping through a bounded RemappingRequest queue with
 * congestion feedback; this is the software analogue for the
 * simulator's policy engines.  Instead of a policy calling the
 * PageMigrator synchronously from its decision round, an opted-in
 * engine *enqueues* requests and the simulation services the queue
 * once per epoch, bounded by a per-epoch service-byte budget drawn
 * from the migrator's copy-bandwidth model.  The queue therefore
 * turns migration capacity into a first-class modeled resource:
 *
 *   enqueue  policy decision round; rejected outright when the
 *            bounded queue is full (QueueRejected)
 *   issue    epoch step, strict FIFO, until the service budget is
 *            spent; transactional requests open a shadow-copy
 *            transaction instead of moving immediately
 *   complete same epoch for plain moves; next epoch for
 *            transactional ones (commit-or-abort after one epoch of
 *            dirty-revalidation exposure)
 *
 * Congestion feeds back two ways: pressure() (occupancy/capacity)
 * is surfaced to policies via TieringPolicy::queuePressure(), and an
 * admission denial from the host arbiter (MigrationAdmission) puts
 * the request back at the head and stops the epoch's issue phase --
 * arbiter backpressure and queue congestion compose instead of
 * racing.
 *
 * The queue is pass-through by construction: engines opt in with
 * activate(); without that the simulation never steps it, no state
 * changes, and the five legacy engines stay byte-identical.
 */

#ifndef THERMOSTAT_MIGRATE_MIGRATION_QUEUE_HH
#define THERMOSTAT_MIGRATE_MIGRATION_QUEUE_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/types.hh"
#include "migrate/transaction_engine.hh"
#include "sys/badger_trap.hh"
#include "sys/migration.hh"

namespace thermostat
{

class EventTracer;
class MetricRegistry;

/** Queue shape and per-epoch service budget. */
struct MigrationQueueConfig
{
    /** Max pending requests; enqueue beyond this is rejected. */
    std::size_t capacity = 64;

    /**
     * Bytes the queue may issue per epoch step -- the slice of the
     * migrator's copy bandwidth granted to queued background moves
     * (0 = unlimited).  The last request that crosses the budget
     * still issues whole; leaves are never split mid-service.
     */
    std::uint64_t serviceBytesPerEpoch = 32 * 1024 * 1024ull;

    /** pressure() at or above this reads as congested. */
    double busyThreshold = 0.8;
};

/** Queue accounting. */
struct MigrationQueueStats
{
    Count steps = 0;          //!< epoch services
    Count enqueued = 0;       //!< requests accepted
    Count rejectedFull = 0;   //!< requests bounced off a full queue
    Count issued = 0;         //!< requests taken off the head
    std::uint64_t bytesIssued = 0; //!< bytes those requests carried
    Count requeuedDenied = 0; //!< admission denials put back at head
    Count leavesMoved = 0;    //!< leaf migrations that landed
    Count leavesFailed = 0;   //!< leaf migrations refused
    Count leavesAborted = 0;  //!< transactional rollbacks
    std::size_t occupancyPeak = 0; //!< max pending depth
    std::size_t inflightPeak = 0;  //!< max open transactions
    Count waitEpochsSum = 0;  //!< epochs issued requests sat pending

    /** Mean epochs a serviced request waited in the queue. */
    double
    waitEpochsMean() const
    {
        return issued == 0 ? 0.0
                           : static_cast<double>(waitEpochsSum) /
                                 static_cast<double>(issued);
    }
};

/**
 * One serviced leaf, reported back to the owning policy so it can
 * maintain its placed set (the queue moves pages; the policy keeps
 * the books).  Multi-page run requests fan out into one completion
 * per leaf, sharing the request's seq.
 */
struct QueueCompletion
{
    std::uint64_t seq = 0; //!< FIFO issue order witness
    Addr base = 0;         //!< leaf base address
    bool huge = false;
    Tier target = Tier::Slow;
    std::uint64_t bytes = 0; //!< leaf size
    bool moved = false;
    bool aborted = false; //!< transactional rollback (torn/dirty)
};

/**
 * The bounded in-flight migration model.  Owned by the Simulation
 * next to the migrator; shared by whichever engine opted in.
 */
class MigrationQueue
{
  public:
    MigrationQueue(PageMigrator &migrator, BadgerTrap &trap,
                   TransactionEngine &transactions,
                   const MigrationQueueConfig &config = {});

    void setTracer(EventTracer *tracer) { tracer_ = tracer; }

    /** Opt in; the simulation only steps an activated queue. */
    void activate() { active_ = true; }
    bool active() const { return active_; }

    const MigrationQueueConfig &config() const { return config_; }

    /** Pending depth / capacity, the congestion signal. */
    double
    pressure() const
    {
        return config_.capacity == 0
                   ? 0.0
                   : static_cast<double>(pending_.size()) /
                         static_cast<double>(config_.capacity);
    }

    /** Whether pressure() crossed the congestion threshold. */
    bool busy() const { return pressure() >= config_.busyThreshold; }

    std::size_t occupancy() const { return pending_.size(); }
    std::size_t inflight() const { return inflight_.size(); }

    /**
     * Queue one leaf move.  @p transactional requests go through
     * the TransactionEngine (shadow copy now, commit next epoch);
     * @p retain additionally keeps the slow copy as a read replica
     * after a clean promotion commit.  False when the queue is full.
     */
    bool enqueueLeaf(Addr base, bool huge, Tier target,
                     bool transactional = false, bool retain = false);

    /**
     * Queue a contiguous run of @p pages 4KB leaves starting at
     * @p base as a single request -- the remap engine's 64KB
     * granularity: one queue slot, @p pages migrations at service
     * time.  Non-transactional.  False when the queue is full.
     */
    bool enqueueRun(Addr base, unsigned pages, Tier target);

    /**
     * Service the queue for one epoch: commit-or-abort last epoch's
     * transactions, then issue from the head until the service
     * budget is spent.  Returns the CPU/copy cost to charge the
     * epoch.
     */
    Ns step(Ns now);

    /** Serviced leaves since the last call (issue order). */
    std::vector<QueueCompletion> takeCompletions();

    const MigrationQueueStats &stats() const { return stats_; }

    /** Expose the counters under "<prefix>." in @p registry. */
    void registerMetrics(MetricRegistry &registry,
                         const std::string &prefix) const;

  private:
    struct Request
    {
        std::uint64_t seq = 0;
        Addr base = 0;
        bool huge = false;
        unsigned pages = 1; //!< >1: contiguous 4KB run
        Tier target = Tier::Slow;
        std::uint64_t bytes = 0;
        bool transactional = false;
        bool retain = false;
        Count waitEpochs = 0;
    };

    bool push(const Request &req);
    Ns serviceLeaf(const Request &req, Addr leaf_base, Ns now);
    Ns commitInflight(Ns now);

    // The queue is stepped once per epoch from the serial section
    // of the epoch loop; lane workers never touch it.
    PageMigrator &migrator_;       // shard: serial-only
    BadgerTrap &trap_;             // shard: serial-only
    TransactionEngine &transactions_; // shard: serial-only
    MigrationQueueConfig config_;  // shard: read-only
    EventTracer *tracer_ = nullptr; // shard: serial-only
    bool active_ = false;          // shard: serial-only
    std::uint64_t nextSeq_ = 0;    // shard: serial-only
    std::deque<Request> pending_;  // shard: serial-only
    // Open transactions, FIFO.
    std::deque<Request> inflight_; // shard: serial-only
    std::vector<QueueCompletion> completions_; // shard: serial-only
    MigrationQueueStats stats_;    // shard: serial-only
};

} // namespace thermostat

#endif // THERMOSTAT_MIGRATE_MIGRATION_QUEUE_HH
