/**
 * @file
 * Nomad-style transactional page migration (PAPERS.md).
 *
 * Nomad breaks Thermostat's assumption that a migration is an
 * exclusive, instantaneous move: a transactional migration first
 * copies the page into a *shadow* frame in the target tier (start),
 * leaves the page non-exclusively resident in both tiers for one
 * epoch, then revalidates that no write dirtied the source
 * (dirty-revalidation) before committing the move.  A dirty page
 * aborts: the shadow frame is discarded and only the wasted copy
 * wear sticks -- exactly the rollback shape the fault injector's
 * torn-copy site already models for the one-shot migrator.
 *
 * The engine owns the shadow ledger: every open transaction and
 * every retained read-replica is one entry, and the per-tier ledger
 * byte totals must equal TieredMemory's shadow accounting at all
 * times (verifyLedger(), called by the simulation each epoch).
 * Committed moves are issued through the shared PageMigrator so the
 * lifecycle auditor's traffic cross-checks keep holding: the shadow
 * phase is pure *extra* device traffic (wear + copy cost), never a
 * substitute for the audited move.
 *
 * Read-mostly non-exclusive residency: after a clean promotion
 * commits, the caller may retain the slow-tier copy as a replica
 * (retainReplica()).  A replica-backed page can later be demoted
 * without a shadow-copy phase -- the data is already down there --
 * which is the modeled benefit of Nomad's non-exclusive tiering.
 * Any observed write invalidates the replica (markDirty()).
 */

#ifndef THERMOSTAT_MIGRATE_TRANSACTION_ENGINE_HH
#define THERMOSTAT_MIGRATE_TRANSACTION_ENGINE_HH

#include <cstdint>
#include <string>

#include "common/flat_map.hh"
#include "common/types.hh"
#include "sys/migration.hh"
#include "vm/address_space.hh"

namespace thermostat
{

class EventTracer;
class FaultInjector;
class MetricRegistry;

/** Transactional-migration accounting. */
struct TransactionStats
{
    Count begins = 0;        //!< shadow copies started
    Count commits = 0;       //!< clean revalidations that moved
    Count aborts = 0;        //!< all rollbacks (torn + dirty)
    Count tornAborts = 0;    //!< shadow copy torn by the injector
    Count dirtyAborts = 0;   //!< revalidation saw a write
    Count commitFailures = 0; //!< clean but the migrator refused
    Count replicasRetained = 0; //!< read-mostly copies kept
    Count replicasDropped = 0;  //!< replicas invalidated by writes
    Count replicasConsumed = 0; //!< shadow-free demotions they paid for
    std::uint64_t shadowBytesPeak = 0; //!< max bytes resident twice
    Count ledgerViolations = 0; //!< verifyLedger() mismatches
};

/**
 * The transactional mover.  One instance per simulation; inert (and
 * metric-silent about activity) until an opted-in policy calls
 * activate() -- the five legacy engines never touch it, so their
 * runs carry zero transaction state.
 */
class TransactionEngine
{
  public:
    TransactionEngine(AddressSpace &space, PageMigrator &migrator);

    void setTracer(EventTracer *tracer) { tracer_ = tracer; }

    /**
     * Attach the fault injector: shadow copies then tear at the
     * MigrationCopy site (same site, independent draws from the
     * shared per-site stream) and abort at start.
     */
    void setFaultInjector(FaultInjector *faults) { faults_ = faults; }

    /** Opt in (nomad does this in its constructor). */
    void activate() { active_ = true; }
    bool active() const { return active_; }

    /**
     * Phase 1 -- shadow-copy start.  Allocates shadow frame(s) for
     * the leaf at @p base in @p target, pays the copy (wear + cost
     * into @p cost) and opens a ledger entry: the page is now
     * resident in both tiers.  Returns false when the copy tears
     * (torn abort, half wear billed) or the target tier is full.
     */
    bool begin(Addr base, bool huge, Tier target, Ns now, Ns *cost);

    /**
     * A write landed on @p base: any open transaction will abort at
     * commit (dirty-revalidation) and any retained replica is
     * dropped immediately.
     */
    void markDirty(Addr base, Ns now);

    /**
     * Phase 2 -- commit-or-abort.  Clean entries release the shadow
     * frame and issue the real move through the PageMigrator (the
     * audited path); dirty entries roll back.  Returns whether the
     * page actually moved.
     */
    bool commit(Addr base, Ns now, Ns *cost);

    /**
     * Keep the slow-tier copy of a just-promoted clean page as a
     * read replica (non-exclusive residency).  False when the slow
     * tier cannot hold it.
     */
    bool retainReplica(Addr base, bool huge, Ns now);

    /** Whether @p base has a live (clean) slow-tier replica. */
    bool hasReplica(Addr base) const;

    /**
     * Spend the replica backing @p base: frees the slow-tier copy so
     * a shadow-free demotion can land in its place.
     */
    void consumeReplica(Addr base, Ns now);

    /** Open transactions + live replicas, in bytes, for @p t. */
    std::uint64_t ledgerBytes(Tier t) const;

    /**
     * Cross-check the shadow ledger against TieredMemory's
     * non-exclusive residency accounting: per-tier byte totals must
     * match and every shadow frame must live in its recorded tier.
     * Returns the number of violations found (also accumulated in
     * stats().ledgerViolations).
     */
    Count verifyLedger();

    const TransactionStats &stats() const { return stats_; }

    /** Expose the counters under "<prefix>." in @p registry. */
    void registerMetrics(MetricRegistry &registry,
                         const std::string &prefix) const;

  private:
    /** One page resident in two tiers (open txn or read replica). */
    struct ShadowEntry
    {
        Pfn pfn = 0;        //!< shadow frame base
        Tier tier = Tier::Slow; //!< tier holding the shadow copy
        bool huge = false;
        bool dirty = false; //!< a write invalidated the copy
        bool replica = false; //!< retained post-commit read copy
    };

    Ns shadowCopyCost(std::uint64_t bytes) const;
    void releaseShadow(const ShadowEntry &entry,
                       std::uint64_t bytes);

    // Driven only from the queue's epoch step and the policy's
    // (serial) decision round; lane workers never touch it.
    AddressSpace &space_;           // shard: serial-only
    PageMigrator &migrator_;        // shard: serial-only
    EventTracer *tracer_ = nullptr; // shard: serial-only
    FaultInjector *faults_ = nullptr; // shard: serial-only
    bool active_ = false;           // shard: serial-only
    FlatMap<Addr, ShadowEntry> ledger_; // shard: serial-only
    TransactionStats stats_;        // shard: serial-only
};

} // namespace thermostat

#endif // THERMOSTAT_MIGRATE_TRANSACTION_ENGINE_HH
