#include "migrate/migration_queue.hh"

#include "obs/event_trace.hh"
#include "obs/metrics.hh"

namespace thermostat
{

MigrationQueue::MigrationQueue(PageMigrator &migrator,
                               BadgerTrap &trap,
                               TransactionEngine &transactions,
                               const MigrationQueueConfig &config)
    : migrator_(migrator), trap_(trap), transactions_(transactions),
      config_(config)
{
}

bool
MigrationQueue::push(const Request &req)
{
    if (pending_.size() >= config_.capacity) {
        ++stats_.rejectedFull;
        if (tracer_) {
            tracer_->record(EventKind::QueueRejected,
                            tracer_->simTime(), req.base, req.huge,
                            req.bytes);
        }
        return false;
    }
    Request accepted = req;
    accepted.seq = nextSeq_++;
    pending_.push_back(accepted);
    ++stats_.enqueued;
    if (pending_.size() > stats_.occupancyPeak) {
        stats_.occupancyPeak = pending_.size();
    }
    return true;
}

bool
MigrationQueue::enqueueLeaf(Addr base, bool huge, Tier target,
                            bool transactional, bool retain)
{
    Request req;
    req.base = base;
    req.huge = huge;
    req.pages = 1;
    req.target = target;
    req.bytes = huge ? kPageSize2M
                     : static_cast<std::uint64_t>(kPageSize4K);
    req.transactional = transactional;
    req.retain = retain;
    return push(req);
}

bool
MigrationQueue::enqueueRun(Addr base, unsigned pages, Tier target)
{
    Request req;
    req.base = base;
    req.huge = false;
    req.pages = pages;
    req.target = target;
    req.bytes = static_cast<std::uint64_t>(pages) * kPageSize4K;
    return push(req);
}

Ns
MigrationQueue::serviceLeaf(const Request &req, Addr leaf_base,
                            Ns now)
{
    const std::uint64_t bytes =
        req.huge ? kPageSize2M
                 : static_cast<std::uint64_t>(kPageSize4K);
    // A clean retained replica already holds the data in the slow
    // tier: spend it so the demotion lands in its place -- Nomad's
    // shadow-free demotion of read-mostly pages.
    if (req.target == Tier::Slow &&
        transactions_.hasReplica(leaf_base)) {
        transactions_.consumeReplica(leaf_base, now);
    }
    const MigrateResult res =
        migrator_.migrate(leaf_base, req.target, now);
    Ns cost = res.cost;
    if (res.denied) {
        return cost; // caller requeues; no completion yet
    }
    if (res.moved) {
        ++stats_.leavesMoved;
        cost += req.target == Tier::Slow ? trap_.poison(leaf_base)
                                         : trap_.unpoison(leaf_base);
    } else {
        ++stats_.leavesFailed;
    }
    completions_.push_back({req.seq, leaf_base, req.huge, req.target,
                            bytes, res.moved, false});
    return cost;
}

Ns
MigrationQueue::commitInflight(Ns now)
{
    Ns cost = 0;
    while (!inflight_.empty()) {
        const Request req = inflight_.front();
        inflight_.pop_front();
        Ns txn_cost = 0;
        const bool moved =
            transactions_.commit(req.base, now, &txn_cost);
        cost += txn_cost;
        if (moved) {
            ++stats_.leavesMoved;
            cost += req.target == Tier::Slow
                        ? trap_.poison(req.base)
                        : trap_.unpoison(req.base);
            if (req.retain && req.target == Tier::Fast) {
                transactions_.retainReplica(req.base, req.huge, now);
            }
            completions_.push_back({req.seq, req.base, req.huge,
                                    req.target, req.bytes, true,
                                    false});
        } else {
            ++stats_.leavesAborted;
            completions_.push_back({req.seq, req.base, req.huge,
                                    req.target, req.bytes, false,
                                    true});
        }
    }
    return cost;
}

Ns
MigrationQueue::step(Ns now)
{
    ++stats_.steps;
    // Complete phase first: last epoch's transactions resolve
    // before new work issues, so a transactional move occupies
    // exactly one epoch of non-exclusive residency.
    Ns cost = commitInflight(now);

    std::uint64_t spent = 0;
    bool denied = false;
    while (!pending_.empty() && !denied) {
        if (config_.serviceBytesPerEpoch != 0 &&
            spent >= config_.serviceBytesPerEpoch) {
            break;
        }
        Request req = pending_.front();
        pending_.pop_front();

        if (req.transactional &&
            !(req.target == Tier::Slow &&
              transactions_.hasReplica(req.base))) {
            spent += req.bytes;
            ++stats_.issued;
            stats_.bytesIssued += req.bytes;
            stats_.waitEpochsSum += req.waitEpochs;
            Ns txn_cost = 0;
            if (transactions_.begin(req.base, req.huge, req.target,
                                    now, &txn_cost)) {
                inflight_.push_back(req);
                if (inflight_.size() > stats_.inflightPeak) {
                    stats_.inflightPeak = inflight_.size();
                }
            } else {
                ++stats_.leavesAborted;
                completions_.push_back({req.seq, req.base, req.huge,
                                        req.target, req.bytes, false,
                                        true});
            }
            cost += txn_cost;
            continue;
        }

        // Plain (or replica-backed) request: service each leaf now.
        // An admission denial requeues the unserviced remainder at
        // the head and ends the issue phase -- arbiter backpressure
        // composes with queue congestion instead of spinning.
        const std::uint64_t leaf_bytes =
            req.huge ? kPageSize2M
                     : static_cast<std::uint64_t>(kPageSize4K);
        unsigned serviced = 0;
        for (unsigned i = 0; i < req.pages; ++i) {
            const Addr leaf = req.base + i * leaf_bytes;
            const Count denials_before =
                migrator_.stats().admissionDenials;
            cost += serviceLeaf(req, leaf, now);
            if (migrator_.stats().admissionDenials >
                denials_before) {
                denied = true;
                break;
            }
            ++serviced;
        }
        if (serviced > 0) {
            ++stats_.issued;
            stats_.bytesIssued += serviced * leaf_bytes;
            stats_.waitEpochsSum += req.waitEpochs;
            spent += serviced * leaf_bytes;
        }
        if (denied) {
            Request rest = req;
            rest.base = req.base + serviced * leaf_bytes;
            rest.pages = req.pages - serviced;
            rest.bytes =
                static_cast<std::uint64_t>(rest.pages) * leaf_bytes;
            pending_.push_front(rest);
            ++stats_.requeuedDenied;
        }
    }

    for (Request &req : pending_) {
        ++req.waitEpochs;
    }
    return cost;
}

std::vector<QueueCompletion>
MigrationQueue::takeCompletions()
{
    std::vector<QueueCompletion> out;
    out.swap(completions_);
    return out;
}

void
MigrationQueue::registerMetrics(MetricRegistry &registry,
                                const std::string &prefix) const
{
    registry.addCallback(prefix + ".occupancy", [this] {
        return static_cast<double>(pending_.size());
    });
    registry.addCallback(prefix + ".pressure",
                         [this] { return pressure(); });
    registry.addCallback(prefix + ".enqueued", [this] {
        return static_cast<double>(stats_.enqueued);
    });
    registry.addCallback(prefix + ".rejected_full", [this] {
        return static_cast<double>(stats_.rejectedFull);
    });
    registry.addCallback(prefix + ".issued", [this] {
        return static_cast<double>(stats_.issued);
    });
    registry.addCallback(prefix + ".bytes_issued", [this] {
        return static_cast<double>(stats_.bytesIssued);
    });
    registry.addCallback(prefix + ".requeued_denied", [this] {
        return static_cast<double>(stats_.requeuedDenied);
    });
    registry.addCallback(prefix + ".leaves_moved", [this] {
        return static_cast<double>(stats_.leavesMoved);
    });
    registry.addCallback(prefix + ".leaves_failed", [this] {
        return static_cast<double>(stats_.leavesFailed);
    });
    registry.addCallback(prefix + ".leaves_aborted", [this] {
        return static_cast<double>(stats_.leavesAborted);
    });
    registry.addCallback(prefix + ".occupancy_peak", [this] {
        return static_cast<double>(stats_.occupancyPeak);
    });
    registry.addCallback(prefix + ".inflight_peak", [this] {
        return static_cast<double>(stats_.inflightPeak);
    });
    registry.addCallback(prefix + ".wait_epochs_mean", [this] {
        return stats_.waitEpochsMean();
    });
}

} // namespace thermostat
