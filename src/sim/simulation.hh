/**
 * @file
 * The experiment driver: runs a workload on a Machine with the
 * Thermostat engine attached, epoch by epoch, and produces the
 * measurements the paper's tables and figures report.
 *
 * Scaled-stream methodology: each 1s epoch simulates
 * `samplesPerEpoch` concrete references, each representing
 * `memRefRate / samplesPerEpoch` real accesses; latencies and event
 * counts scale linearly.  Both the actual and the all-DRAM baseline
 * latency of every access are computed in the same pass, so one run
 * yields throughput degradation directly.
 */

#ifndef THERMOSTAT_SIM_SIMULATION_HH
#define THERMOSTAT_SIM_SIMULATION_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/rng.hh"
#include "common/thread_pool.hh"
#include "common/stats.hh"
#include "core/thermostat.hh"
#include "fault/fault_injector.hh"
#include "migrate/migration_queue.hh"
#include "migrate/transaction_engine.hh"
#include "policy/tiering_policy.hh"
#include "obs/access_sampler.hh"
#include "obs/event_trace.hh"
#include "obs/flight_recorder.hh"
#include "obs/lifecycle_audit.hh"
#include "obs/metrics.hh"
#include "obs/profiler.hh"
#include "sim/machine.hh"
#include "sys/khugepaged.hh"
#include "sys/kstaled.hh"
#include "sys/mem_cgroup.hh"
#include "sys/migration.hh"
#include "workload/workload.hh"

namespace thermostat
{

class ThermostatPolicy;

/** Experiment configuration. */
struct SimConfig
{
    std::uint64_t seed = 42;
    Ns epoch = kNsPerSec;
    unsigned samplesPerEpoch = 40000;

    /**
     * Worker threads for the sharded epoch pipeline: each epoch's
     * timing and profiling streams are pre-drawn serially, bucketed
     * into the kMachineLanes address lanes, and the lanes execute
     * concurrently on this many pool workers.  0 = auto
     * (min(kMachineLanes, ThreadPool::defaultJobs())); 1 = fully
     * serial.  The lane split is fixed, so every value produces
     * byte-identical results -- `--shards 1` doubles as the
     * verification mode, and setting THERMOSTAT_VERIFY_SHARDING in
     * the environment forces it regardless of this knob.
     */
    unsigned shards = 0;

    /** 0 = the workload's natural duration. */
    Ns duration = 0;

    /**
     * Warmup time before measurement starts.  Thermostat runs and
     * the workload executes, but nothing is recorded; matches the
     * paper's methodology of measuring after benchmark warmup
     * (e.g. 600s for MySQL-TPCC, Sec 4.3).
     */
    Ns warmup = 0;

    /**
     * Weight (real accesses per sample) of the profiling stream
     * that drives poisoned-page access counting and Accessed bits.
     * Finer than the timing stream so that low-rate pages are
     * measurable: the paper's mechanism observes every TLB miss,
     * which a coarse-grained timing stream cannot represent.
     */
    Count profileWeight = 4;

    MachineConfig machine;
    ThermostatParams params;

    /**
     * Tiering engine to drive (a PolicyFactory name).  The default
     * runs the paper's engine; the comparison engines take their
     * knobs from policyParams.
     */
    std::string policy = "thermostat";
    PolicyParams policyParams;

    /** Master enable for the selected policy (false = baseline). */
    bool thermostatEnabled = true;

    /**
     * Run the khugepaged model alongside Thermostat, recovering
     * huge pages from ranges left split (off by default: the engine
     * collapses its own samples, so the daemon matters mainly for
     * THP-off phases and the spreading extension).
     */
    bool khugepagedEnabled = false;

    /**
     * PEBS counting parameters (machine.countingMode == Pebs): one
     * record per `pebsPeriod` monitored accesses, capped at
     * `pebsMaxRecordsPerSec` (the Linux default of 1000Hz is the
     * bottleneck the paper calls out in Sec 6.1.2).
     */
    Count pebsPeriod = 16;
    double pebsMaxRecordsPerSec = 1000.0;

    /** Footprint/timeseries sampling interval. */
    Ns reportInterval = 5 * kNsPerSec;

    /** Event-trace ring capacity (events kept for export). */
    std::size_t traceCapacity = 1u << 16;

    /**
     * Which event categories the ring records (kEv* bits).  The
     * lifecycle auditor always sees the full stream regardless.
     */
    std::uint32_t traceMask = kEvAll;

    /**
     * Fault-injection plan (see fault/fault_injector.hh for the
     * spec grammar).  Default-empty: no injector is created and the
     * run is byte-identical to a build without the fault subsystem.
     */
    FaultPlan faultPlan;

    /**
     * Sampled access telemetry (obs/access_sampler.hh).  On by
     * default: the sampler draws from its own seeded stream and
     * only observes, so golden runs stay byte-identical.  Set
     * sampler.period = 0 to remove the Machine tap entirely.
     */
    AccessSamplerConfig sampler;

    /**
     * Route sampled accesses into the active policy's
     * access-feedback hook (scaled by the sampling period).  Off by
     * default: it changes what feedback-driven policies see, so
     * enabling it is an explicit experiment (ROADMAP item 5).
     */
    bool samplerFeedback = false;

    /** Flight-recorder ring capacity in epochs. */
    std::size_t flightCapacity = 1u << 12;

    /** Host-time phase profiler (obs/profiler.hh). */
    bool profilerEnabled = true;
};

/** One per-report-interval metric snapshot. */
struct MetricSnapshot
{
    Ns time = 0;
    std::vector<MetricSample> values;
};

/** Everything a run produces. */
struct SimResult
{
    std::string workload;
    Ns duration = 0;

    /** Overall throughput degradation: actual/baseline - 1. */
    double slowdown = 0.0;

    /** Absolute modeled execution time (for cross-run comparisons,
     *  e.g. Table 1's THP on/off throughput gain). */
    double actualSeconds = 0.0;
    double baselineSeconds = 0.0;

    /** Cold bytes / RSS, averaged over report points & at the end. */
    double avgColdFraction = 0.0;
    double finalColdFraction = 0.0;

    std::uint64_t finalRssBytes = 0;
    std::uint64_t finalFileBytes = 0;

    /** Footprint breakdown over time (bytes). */
    TimeSeries hot2M{"hot_2MB"};
    TimeSeries hot4K{"hot_4KB"};
    TimeSeries cold2M{"cold_2MB"};
    TimeSeries cold4K{"cold_4KB"};

    /** Engine-measured slow-memory access rate (Fig 3). */
    TimeSeries engineSlowRate{"engine_slow_rate"};

    /** Device-level slow-tier access rate per epoch. */
    TimeSeries deviceSlowRate{"device_slow_rate"};

    /** Average migration bandwidth over the run (bytes/sec). */
    double demotionBytesPerSec = 0.0;
    double promotionBytesPerSec = 0.0;

    /** Engine/monitoring CPU overhead relative to baseline time. */
    double monitorOverheadFraction = 0.0;

    /** Lifecycle-audit verdict (0 = event stream consistent). */
    Count auditViolations = 0;

    MigrationStats migration;

    /** Migration-queue counters (all zero unless an engine opted
     *  into queued migration: nomad, remap). */
    MigrationQueueStats queue;

    /** Transactional-migration counters (nomad only). */
    TransactionStats transactions;

    /** Which policy produced this run and its generic counters. */
    std::string policyName;
    PolicyStats policy;

    /** Thermostat-engine counters (zeroed under other policies). */
    EngineStats engine;
    BadgerTrapStats trap;
    MachineStats machineStats;
    TlbStats l1Tlb;
    TlbStats l2Tlb;
    LlcStats llc;
    WalkerStats walker;
};

/**
 * One experiment: workload + machine + Thermostat.
 */
class Simulation
{
  public:
    /** Called at each epoch boundary (after the engine tick). */
    using EpochHook = std::function<void(Simulation &, Ns)>;

    /**
     * @param shared_pool Optional externally owned worker pool for
     *     the sharded epoch pipeline; null (the default) makes the
     *     simulation own a pool sized to the resolved shard count.
     *     The datacenter host passes one pool shared by all tenant
     *     simulations so N tenants do not spawn N * shards threads.
     *     Ignored when the resolved shard count is 1.  Lane
     *     execution is lane-partitioned, so results are identical
     *     whichever pool runs them.
     */
    Simulation(std::unique_ptr<Workload> workload,
               const SimConfig &config,
               ThreadPool *shared_pool = nullptr);

    /** Run to completion and collect results. */
    SimResult run();

    /**
     * What one stepped epoch produced (the same quantities a flight
     * row records, exposed so an external driver -- the datacenter
     * host -- can do per-tenant SLO accounting without reparsing
     * the flight ring).
     */
    struct EpochReport
    {
        bool measured = false; //!< false while inside warmup
        Ns time = 0;       //!< epoch end, measurement timeline
        double actualNs = 0.0;   //!< work + actual memory + overhead
        double baselineNs = 0.0; //!< work + baseline memory
        double slowdown = 0.0;   //!< actualNs / baselineNs - 1
    };

    /**
     * Stepwise execution: run() is exactly
     *
     *     startRun();
     *     while (!runDone()) stepEpoch();
     *     return finishRun();
     *
     * so an external driver interleaving epochs of several
     * simulations (the datacenter host round-robin) reproduces a
     * standalone run byte-for-byte per tenant.
     */
    void startRun();

    /** True once the simulated clock has covered warmup+duration. */
    bool runDone() const;

    /** Execute the next epoch; requires startRun() and !runDone(). */
    EpochReport stepEpoch();

    /** Finalize and return the run's results. */
    SimResult finishRun();

    /**
     * The epoch pipeline's worker count this config resolves to
     * (env override, then the knob, then auto; never more than
     * kMachineLanes).  Exposed so an external pool owner can size
     * one shared pool before constructing tenant simulations.
     */
    static unsigned resolveShards(const SimConfig &config);

    /** Install a per-epoch callback (custom policies in benches). */
    void setEpochHook(EpochHook hook) { hook_ = std::move(hook); }

    Machine &machine() { return machine_; }
    Workload &workload() { return *workload_; }
    MetricRegistry &metrics() { return metrics_; }
    const MetricRegistry &metrics() const { return metrics_; }
    EventTracer &tracer() { return tracer_; }
    const LifecycleAuditor &auditor() const { return auditor_; }

    /** Null when config.sampler.period == 0. */
    AccessSampler *accessSampler() { return sampler_.get(); }
    const AccessSampler *accessSampler() const
    {
        return sampler_.get();
    }

    /** Per-epoch time-series ring (always recording). */
    EpochFlightRecorder &flightRecorder() { return flight_; }
    const EpochFlightRecorder &flightRecorder() const
    {
        return flight_;
    }

    /** Host-time phase profile of this run. */
    Profiler &profiler() { return profiler_; }
    const Profiler &profiler() const { return profiler_; }

    /** Per-report-interval metric snapshots captured by run(). */
    const std::vector<MetricSnapshot> &snapshots() const
    {
        return snapshots_;
    }

    /**
     * Full metrics dump: {"final": <hierarchical metrics>,
     * "snapshots": [{"time_sec": t, "metrics": {flat}}]}.
     */
    std::string metricsJson() const;

    Kstaled &kstaled() { return kstaled_; }
    Khugepaged &khugepaged() { return khugepaged_; }
    PageMigrator &migrator() { return migrator_; }
    MemCgroup &cgroup() { return cgroup_; }
    MigrationQueue &migrationQueue() { return queue_; }
    TransactionEngine &transactionEngine() { return transactions_; }

    /** The active tiering policy. */
    TieringPolicy &policy() { return *policy_; }

    /**
     * Compatibility accessor for the paper's engine; asserts when
     * the run uses a different policy.
     */
    ThermostatEngine &engine();

    const SimConfig &config() const { return config_; }

    /** Effective worker count after auto/env resolution. */
    unsigned shards() const { return shards_; }

    /** Null unless the config's fault plan is non-empty. */
    const FaultInjector *faultInjector() const { return faults_.get(); }

  private:
    void recordFootprint(SimResult &result, Ns now);

    /** One epoch's timing stream (serial or lane-parallel). */
    void runTimingStream(Count weight, Ns &epoch_actual,
                         Ns &epoch_baseline);

    /** One epoch's profiling stream (serial or lane-parallel). */
    void runProfileStream(std::uint64_t profile_samples,
                          Count pebs_budget);

    /** Cumulative counters latched to compute per-epoch deltas. */
    struct EpochBase
    {
        std::uint64_t bytesDemoted = 0;
        std::uint64_t bytesPromoted = 0;
        Count demotionsOrdered = 0;
        Count promotionsOrdered = 0;
        Count retries = 0;
        Count copyAborts = 0;
        Count slowWear = 0;
        Count weightedFaults = 0;
        std::uint64_t sampled = 0;
        std::uint64_t sampledSlow = 0;
        std::uint64_t queueIssuedBytes = 0;
    };

    /** Snapshot the cumulative counters feeding the flight rows. */
    EpochBase epochBase();

    /** Append one flight-recorder row for the epoch ending @p at. */
    void recordEpoch(Ns at, const EpochBase &base, Ns actual,
                     Ns baseline, Ns work, Ns overhead,
                     Count weight, Count slow_accesses);

    /**
     * Run-in-progress state: the locals of the old monolithic run()
     * loop, hoisted so stepEpoch() can be re-entered from outside.
     * Reset by startRun(), consumed by finishRun().
     */
    struct RunState
    {
        SimResult result;
        Ns duration = 0;          //!< resolved (config or natural)
        double epochSec = 0.0;
        Count weight = 1;         //!< real accesses per timing sample
        std::uint64_t profileSamples = 0;
        Count pebsBudget = 0;
        Ns workPerEpoch = 0;      //!< baseline CPU work per epoch
        double actualTotal = 0.0;
        double baselineTotal = 0.0;
        double coldFracSum = 0.0;
        std::uint64_t coldFracCount = 0;
        Ns nextReport = 0;
        Ns overheadTotal = 0;
        Ns now = 0;               //!< next epoch's start time
        bool active = false;      //!< between startRun and finishRun
    };

    SimConfig config_;                      // shard: read-only
    std::unique_ptr<Workload> workload_;    // shard: serial-only
    std::unique_ptr<FaultInjector> faults_; // shard: serial-only
    Machine machine_;    // shard: lane-local (internally sliced)
    Kstaled kstaled_;    // shard: serial-only
    Khugepaged khugepaged_; // shard: serial-only
    PageMigrator migrator_; // shard: serial-only
    MemCgroup cgroup_;      // shard: serial-only
    TransactionEngine transactions_; // shard: serial-only
    MigrationQueue queue_;           // shard: serial-only

    /** The selected engine; thermostat_ caches the default engine's
     *  concrete type for the compatibility accessor. */
    std::unique_ptr<TieringPolicy> policy_; // shard: serial-only
    ThermostatPolicy *thermostat_ = nullptr; // shard: serial-only

    Rng rng_;        // shard: serial-only (pre-draw before fan-out)
    Rng profileRng_; // shard: serial-only (pre-draw before fan-out)
    Count pebsMonitoredHits_ = 0; // shard: serial-only (forces it)
    EpochHook hook_;              // shard: serial-only

    unsigned shards_ = 1;    //!< resolved // shard: read-only
    /** Owned only when no shared pool was injected. */
    std::unique_ptr<ThreadPool> ownedPool_; // shard: read-only
    /** Effective pool (owned or shared); null = serial. */
    ThreadPool *pool_ = nullptr; // shard: read-only handle
    /** Per-lane reference buckets, reused across epochs. */
    std::array<std::vector<MemRef>, kMachineLanes> laneRefs_;

    RunState run_; // shard: serial-only

    MetricRegistry metrics_;  // shard: serial-only
    EventTracer tracer_;      // shard: serial-only
    LifecycleAuditor auditor_; // shard: serial-only
    std::vector<MetricSnapshot> snapshots_; // shard: serial-only

    std::unique_ptr<AccessSampler> sampler_; // shard: lane-local
    EpochFlightRecorder flight_; // shard: serial-only
    Profiler profiler_;          // shard: serial-only
};

} // namespace thermostat

#endif // THERMOSTAT_SIM_SIMULATION_HH
