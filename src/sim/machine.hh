/**
 * @file
 * The evaluation machine: cores' memory path over the two-tier
 * system (paper Sec 4.1 hardware, Sec 4.2 slow-memory emulation).
 *
 * Every memory reference flows TLB -> (page walk -> poison fault?)
 * -> LLC -> memory tier.  Two slow-memory operating modes:
 *
 *  - BadgerTrapEmu (paper's methodology): cold data physically sits
 *    in the slow NUMA zone but the device behaves like DRAM; the 1us
 *    poison-fault on each TLB miss to a cold page *is* the emulated
 *    slow access.
 *  - Device: a real slow device model; LLC misses to the slow tier
 *    pay its latency, and the poison fault only costs a bare
 *    counting handler.
 *
 * Alongside the actual latency, each access computes the latency it
 * would have had on the all-DRAM, unmonitored baseline, so a single
 * run yields the slowdown directly.
 */

#ifndef THERMOSTAT_SIM_MACHINE_HH
#define THERMOSTAT_SIM_MACHINE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/llc.hh"
#include "common/flat_map.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mem/tiered_memory.hh"
#include "sys/badger_trap.hh"
#include "tlb/tlb.hh"
#include "vm/address_space.hh"
#include "vm/page_walker.hh"

namespace thermostat
{

class AccessSampler;
class MetricRegistry;

/** How slow memory is realized (paper Sec 4.2). */
enum class SlowEmuMode : std::uint8_t
{
    BadgerTrapEmu, //!< 1us fault per TLB miss emulates the device
    Device         //!< modeled device latency on LLC misses
};

/**
 * How accesses to monitored (poisoned) pages are observed (paper
 * Sec 3.3 and the Sec 6.1 hardware proposals).
 */
enum class CountingMode : std::uint8_t
{
    BadgerTrap, //!< reserved-bit fault on every TLB miss (software)
    CmBit,      //!< proposed "count miss" PTE bit: fault on LLC
                //!< miss, service overlapped with the memory access
    Pebs        //!< PEBS-style sampled records, no faults at all
};

/** Full machine configuration. */
struct MachineConfig
{
    TierConfig fastTier = TierConfig::dram(24ULL << 30);
    TierConfig slowTier = TierConfig::slow(24ULL << 30);
    TlbConfig l1Tlb{64, 4};
    TlbConfig l2Tlb{1024, 8};
    WalkerConfig walker;
    LlcConfig llc;
    BadgerTrapConfig trap;
    SlowEmuMode slowMode = SlowEmuMode::BadgerTrapEmu;
    CountingMode countingMode = CountingMode::BadgerTrap;

    /**
     * Visible cost of a CM-bit fault: the handler runs while the
     * memory access proceeds in parallel, so only a small residue
     * shows up on the critical path (Sec 6.1.1).
     */
    Ns cmFaultLatency = 150;

    /**
     * Memory-level parallelism: pipelineable latencies (walks, LLC,
     * DRAM) overlap by this factor; poison faults and the slow-tier
     * latency excess are serialized (pointer-chase-like).
     */
    double overlapFactor = 4.0;

    /** L2 TLB hit cost (L1 hits are free / hidden). */
    Ns l2TlbHitLatency = 7;

    bool thpEnabled = true;

    /**
     * Base address of the first mapped region (2MB aligned); 0
     * keeps the historical default.  The datacenter host assigns
     * each tenant machine a disjoint virtual window so address
     * isolation between guests is checkable, not assumed.
     */
    Addr addressBase = 0;
};

/** Per-access outcome. */
struct AccessOutcome
{
    Ns actualLatency = 0;   //!< with tiering + monitoring
    Ns baselineLatency = 0; //!< all-DRAM, no monitoring
    bool tlbMiss = false;
    bool llcMiss = false;
    bool poisonFault = false;
    Tier tier = Tier::Fast;
};

/** Machine-level accumulated counters. */
struct MachineStats
{
    Count accesses = 0;          //!< sampled bursts simulated
    Count lineAccesses = 0;      //!< line-level accesses simulated
    Count cmFaults = 0;          //!< CM-bit faults (CmBit mode)
    Count weightedAccesses = 0;  //!< real accesses represented
    Count weightedSlowAccesses = 0;
    Ns actualTime = 0;           //!< weighted actual memory time
    Ns baselineTime = 0;         //!< weighted baseline memory time
};

/**
 * Owns the memory system components and executes accesses.
 *
 * All mutable access-path state is partitioned by machine lane
 * (laneOf of the accessed virtual address): the TLB and LLC are
 * lane routers (TlbShards/LlcShards), the walker, machine counters
 * and deferred device-traffic deltas live in a per-lane LaneState,
 * and BadgerTrap and the sampler shard themselves internally.
 * access() may therefore be called concurrently for addresses in
 * *different* lanes; calls within one lane must stay ordered (the
 * simulation's lane workers guarantee this).  Because every merged
 * view is a lane-ordered reduction of lane-local state, results
 * depend only on the lane split -- never on how many workers
 * executed the lanes.
 */
class Machine
{
  public:
    explicit Machine(const MachineConfig &config);

    /**
     * Execute one sampled burst reference representing @p weight
     * real bursts.  The first line access pays the TLB/walk/fault
     * path; the remaining @p burst_lines - 1 line accesses on the
     * same page only see the LLC and the device.  Weighted latencies
     * accumulate into stats().
     */
    AccessOutcome access(Addr vaddr, AccessType type, Count weight = 1,
                         unsigned burst_lines = 1);

    const MachineConfig &config() const { return config_; }

    /**
     * The device model, with any deferred per-lane traffic/wear
     * deltas flushed first so direct readers always see totals.
     */
    TieredMemory &
    memory()
    {
        syncDeviceState();
        return memory_;
    }

    AddressSpace &
    space()
    {
        syncDeviceState();
        return space_;
    }

    TlbShards &tlb() { return tlb_; }

    /**
     * Lane 0's walker: valid for configuration-derived queries
     * (walkLatency/walkAccesses are identical across lanes); use
     * walkerStats() for merged counters.
     */
    const PageWalker &walker() const { return lanes_[0].walker; }

    /** Lane-summed walker counters. */
    WalkerStats walkerStats() const;

    LlcShards &llc() { return llc_; }
    BadgerTrap &trap() { return trap_; }

    /** Lane-merged counters (by value: the sum over all lanes). */
    MachineStats stats() const;

    /**
     * Flush the per-lane deferred device accounting (tier traffic
     * and frame wear) into the TieredMemory model, in lane order.
     * The access path only appends lane-locally; anything that reads
     * device state (fault advancement, migration picks, stats dumps)
     * must run behind this barrier.  Idempotent and cheap when
     * nothing is pending.
     */
    void syncDeviceState();

    /**
     * Register every memory-path component's counters under
     * "<prefix>.": tlb.l1/l2, llc, walker, memory.fast/slow, trap,
     * plus the machine-level access counters.
     */
    void registerMetrics(MetricRegistry &registry,
                         const std::string &prefix) const;

    /** Weighted slow-tier accesses since the last call. */
    Count takeSlowAccessCount();

    /**
     * Attach the telemetry tap: every access() is offered to the
     * sampler after its tier is resolved.  Null (the default)
     * removes the tap; the sampler only observes, so attaching one
     * cannot change simulated results.
     */
    void setAccessSampler(AccessSampler *sampler)
    {
        sampler_ = sampler;
    }

    /** Effective (overlapped) latency helpers, for tests. */
    Ns effectiveWalkLatency(bool huge) const;

  private:
    /**
     * Overlap-scaled latencies, precomputed at construction with
     * the same `llround(latency / overlapFactor)` the access path
     * used to evaluate per event.  `config_` is immutable after
     * construction, so the table never goes stale; killing the
     * per-access floating-point divisions is the single biggest
     * win on the simulated-access hot path.
     */
    struct EffectiveCosts
    {
        Ns walk[2] = {0, 0};       //!< [huge] page-walk cost
        Ns llcHit = 0;             //!< per-line LLC probe cost
        Ns fastAccess[2] = {0, 0}; //!< [is_write] fast-tier line
        Ns slowExcess[2] = {0, 0}; //!< [is_write] serialized excess
    };

    static EffectiveCosts computeCosts(const MachineConfig &config);

    /** One machine lane's mutable access-path state. */
    struct LaneState
    {
        explicit LaneState(const WalkerConfig &walker_config)
            : walker(walker_config)
        {
        }

        PageWalker walker;
        MachineStats stats;
        Count slowAccessWindow = 0; // shard: lane-local
        bool devicePending = false; // shard: lane-local
        /** Deferred device traffic, [0]=fast [1]=slow tier. */
        TierStats tierDelta[2];
        /** Deferred per-frame wear (line writes), same indexing. */
        FlatMap<Pfn, Count> wearDelta[2];
    };

    MachineConfig config_;  // shard: read-only
    TieredMemory memory_;   // shard: merge-barrier (syncDeviceState)
    AddressSpace space_;    // shard: merge-barrier (syncDeviceState)
    TlbShards tlb_;         // shard: lane-local (internally sliced)
    LlcShards llc_;         // shard: lane-local (internally sliced)
    BadgerTrap trap_;       // shard: lane-local (internally sliced)
    EffectiveCosts costs_;  // shard: read-only
    std::vector<LaneState> lanes_; //!< kMachineLanes entries
    AccessSampler *sampler_ = nullptr; // shard: lane-local (sliced)
};

} // namespace thermostat

#endif // THERMOSTAT_SIM_MACHINE_HH
