#include "sim/machine.hh"

#include "obs/access_sampler.hh"
#include "obs/metrics.hh"

#include <cmath>

#include "common/logging.hh"

namespace thermostat
{

// shard: serial-only -- construction precedes any lane fan-out.
Machine::Machine(const MachineConfig &config)
    : config_(config),
      memory_(config.fastTier, config.slowTier),
      space_(memory_, config.thpEnabled, config.addressBase),
      tlb_(config.l1Tlb, config.l2Tlb),
      llc_(config.llc),
      trap_(space_, tlb_, config.trap),
      costs_(computeCosts(config_))
{
    lanes_.reserve(kMachineLanes);
    for (unsigned lane = 0; lane < kMachineLanes; ++lane) {
        lanes_.emplace_back(config_.walker);
    }
}

Machine::EffectiveCosts
Machine::computeCosts(const MachineConfig &config)
{
    // A throwaway walker: walkLatency() is pure configuration, and
    // building one here keeps costs_ independent of lane state (it
    // is initialized before lanes_ exists).
    const PageWalker walker(config.walker);
    const double overlap = config.overlapFactor;
    const auto scaled = [overlap](Ns latency) {
        return static_cast<Ns>(std::llround(
            static_cast<double>(latency) / overlap));
    };
    EffectiveCosts costs;
    costs.walk[0] = scaled(walker.walkLatency(false));
    costs.walk[1] = scaled(walker.walkLatency(true));
    costs.llcHit = scaled(config.llc.hitLatency);
    for (const bool write : {false, true}) {
        const Ns fast = write ? config.fastTier.writeLatency
                              : config.fastTier.readLatency;
        const Ns slow = write ? config.slowTier.writeLatency
                              : config.slowTier.readLatency;
        costs.fastAccess[write] = scaled(fast);
        costs.slowExcess[write] = slow > fast ? slow - fast : 0;
    }
    return costs;
}

Ns
Machine::effectiveWalkLatency(bool huge) const
{
    return costs_.walk[huge];
}

AccessOutcome
Machine::access(Addr vaddr, AccessType type, Count weight,
                unsigned burst_lines)
{
    AccessOutcome out;

    const unsigned lane_id = laneOf(vaddr);
    LaneState &lane = lanes_[lane_id];

    Pfn pfn = 0;
    bool huge = false;

    TlbEntry entry;
    const TlbShards::HitLevel level = tlb_.lookup(vaddr, &entry);
    if (level == TlbShards::HitLevel::L1) {
        pfn = entry.pfn;
        huge = entry.huge;
    } else if (level == TlbShards::HitLevel::L2) {
        pfn = entry.pfn;
        huge = entry.huge;
        out.actualLatency += config_.l2TlbHitLatency;
        out.baselineLatency += config_.l2TlbHitLatency;
    } else {
        out.tlbMiss = true;
        const WalkOutcome walk = lane.walker.walk(space_.pageTable(),
                                                  vaddr, type);
        TSTAT_ASSERT(walk.result.mapped(),
                     "access to unmapped address %#lx",
                     static_cast<unsigned long>(vaddr));
        huge = walk.result.huge;
        pfn = walk.result.pte->pfn();
        const Ns walk_cost = costs_.walk[huge];
        out.actualLatency += walk_cost;
        out.baselineLatency += walk_cost;

        if (walk.result.pte->poisoned() &&
            config_.countingMode == CountingMode::BadgerTrap) {
            out.poisonFault = true;
            const Addr page_base =
                huge ? alignDown2M(vaddr) : alignDown4K(vaddr);
            // The handler latency is serialized (not overlapped).
            out.actualLatency += trap_.onPoisonFault(page_base, weight);
        }
        // BadgerTrap (or the walker) installs the translation.
        tlb_.insert(huge ? alignDown2M(vaddr) : alignDown4K(vaddr),
                    pfn, huge);
    }

    // Compose the physical address.
    const Addr paddr =
        huge ? (pfn << kPageShift4K) + (vaddr & (kPageSize2M - 1))
             : (pfn << kPageShift4K) + (vaddr & (kPageSize4K - 1));

    // The burst: the leading line plus (burst_lines - 1) further
    // lines on the same 4KB-aligned page region, wrapping within it.
    // Every line lands on the same 4KB frame, so the tier, the
    // device and the per-line costs are loop invariants.
    const Addr page4k = alignDown4K(paddr);
    const Pfn frame = page4k >> kPageShift4K;
    const Tier tier = memory_.tierOf(frame);
    const unsigned tier_idx = tier == Tier::Fast ? 0 : 1;
    TierStats &traffic = lane.tierDelta[tier_idx];
    out.tier = tier;
    const bool write = type == AccessType::Write;
    const unsigned lines = std::max(1u, burst_lines);
    const Ns fast_cost = costs_.fastAccess[write];
    const Ns miss_cost =
        tier == Tier::Fast ||
                config_.slowMode != SlowEmuMode::Device
            // Fast tier, or emulation mode: the device behaves like
            // DRAM; the poison fault above already charged ~1us for
            // the burst, and further lines ride on the installed
            // translation (the paper's noted under-estimate).
            ? fast_cost
            // Fast-equivalent part overlaps; the latency excess of
            // the slow device is serialized.  slowFaultExcess() is
            // zero except during an injected degradation episode.
            : fast_cost + costs_.slowExcess[write] +
                  memory_.slowFaultExcess();

    out.actualLatency += costs_.llcHit * lines;
    out.baselineLatency += costs_.llcHit * lines;
    lane.stats.lineAccesses += lines;

    bool first_line_missed = false;
    Count missed_lines = 0;
    for (unsigned line = 0; line < lines; ++line) {
        const Addr line_addr =
            page4k + ((paddr - page4k + line * 64) & (kPageSize4K - 1));
        if (llc_.access(lane_id, line_addr, type)) {
            continue;
        }
        if (line == 0) {
            first_line_missed = true;
        }
        ++missed_lines;
        out.baselineLatency += fast_cost;
        out.actualLatency += miss_cost;
    }
    if (missed_lines != 0) {
        // Deferred device accounting: append into this lane's delta
        // and flush at the next syncDeviceState() barrier.  All the
        // merged quantities are commutative sums (and per-frame wear
        // is lane-exclusive: a frame is reached through one vaddr
        // region, hence one lane), so lane-order flushing reproduces
        // the serial totals exactly.
        if (write) {
            traffic.writes += missed_lines;
            traffic.bytesWritten += missed_lines * 64;
            lane.wearDelta[tier_idx][frame] += missed_lines;
        } else {
            traffic.reads += missed_lines;
            traffic.bytesRead += missed_lines * 64;
        }
        lane.devicePending = true;
    }
    out.llcMiss = first_line_missed;
    if (first_line_missed &&
        config_.countingMode == CountingMode::CmBit) {
        // The CM bit travels with the translation: an LLC miss to a
        // monitored page raises a fault whose service overlaps the
        // memory access (Sec 6.1.1).
        const WalkResult wr = space_.pageTable().walk(vaddr);
        if (wr.mapped() && wr.pte->poisoned()) {
            out.poisonFault = true;
            out.actualLatency += config_.cmFaultLatency;
            lane.stats.cmFaults += weight;
        }
    }
    if (first_line_missed && out.tier == Tier::Slow) {
        lane.stats.weightedSlowAccesses += weight;
        lane.slowAccessWindow += weight;
    }

    ++lane.stats.accesses;
    lane.stats.weightedAccesses += weight;
    lane.stats.actualTime += out.actualLatency * weight;
    lane.stats.baselineTime += out.baselineLatency * weight;
    if (sampler_ != nullptr) {
        // Telemetry tap: observe-only, own RNG stream; placement
        // after tier resolution so the sample carries the tier.
        sampler_->onAccess(alignDown4K(vaddr), huge, write,
                           tier == Tier::Slow, weight);
    }
    return out;
}

void
Machine::syncDeviceState()
{
    for (LaneState &lane : lanes_) {
        if (!lane.devicePending) {
            continue;
        }
        for (unsigned tier_idx = 0; tier_idx < 2; ++tier_idx) {
            MemoryTier &device = memory_.tier(
                tier_idx == 0 ? Tier::Fast : Tier::Slow);
            device.applyDeferred(lane.tierDelta[tier_idx]);
            lane.tierDelta[tier_idx] = TierStats();
            for (const auto &entry : lane.wearDelta[tier_idx]) {
                device.recordWear(entry.key, entry.value);
            }
            lane.wearDelta[tier_idx].clear();
        }
        lane.devicePending = false;
    }
}

// shard: merge-barrier -- callers read stats between epochs, after
// syncDeviceState() has drained every lane's pending deltas.
MachineStats
Machine::stats() const
{
    MachineStats total;
    for (const LaneState &lane : lanes_) {
        total.accesses += lane.stats.accesses;
        total.lineAccesses += lane.stats.lineAccesses;
        total.cmFaults += lane.stats.cmFaults;
        total.weightedAccesses += lane.stats.weightedAccesses;
        total.weightedSlowAccesses += lane.stats.weightedSlowAccesses;
        total.actualTime += lane.stats.actualTime;
        total.baselineTime += lane.stats.baselineTime;
    }
    return total;
}

// shard: merge-barrier -- same contract as stats().
WalkerStats
Machine::walkerStats() const
{
    WalkerStats total;
    for (const LaneState &lane : lanes_) {
        const WalkerStats &ws = lane.walker.stats();
        total.walks4K += ws.walks4K;
        total.walks2M += ws.walks2M;
        total.tableAccesses += ws.tableAccesses;
        total.totalWalkTime += ws.totalWalkTime;
    }
    return total;
}

// shard: merge-barrier -- drains the per-lane windows serially
// between epochs.
Count
Machine::takeSlowAccessCount()
{
    Count out = 0;
    for (LaneState &lane : lanes_) {
        out += lane.slowAccessWindow;
        lane.slowAccessWindow = 0;
    }
    return out;
}

// shard: serial-only -- registration happens once at setup; the
// callbacks themselves fire from the serial reporting phase.
void
Machine::registerMetrics(MetricRegistry &registry,
                         const std::string &prefix) const
{
    registry.addCallback(prefix + ".accesses", [this] {
        return static_cast<double>(stats().accesses);
    });
    registry.addCallback(prefix + ".line_accesses", [this] {
        return static_cast<double>(stats().lineAccesses);
    });
    registry.addCallback(prefix + ".cm_faults", [this] {
        return static_cast<double>(stats().cmFaults);
    });
    registry.addCallback(prefix + ".weighted_accesses", [this] {
        return static_cast<double>(stats().weightedAccesses);
    });
    registry.addCallback(prefix + ".weighted_slow_accesses", [this] {
        return static_cast<double>(stats().weightedSlowAccesses);
    });
    registry.addCallback(prefix + ".actual_ns", [this] {
        return static_cast<double>(stats().actualTime);
    });
    registry.addCallback(prefix + ".baseline_ns", [this] {
        return static_cast<double>(stats().baselineTime);
    });
    tlb_.registerMetrics(registry, prefix + ".tlb");
    llc_.registerMetrics(registry, prefix + ".llc");
    // Merged walker counters, same names PageWalker::registerMetrics
    // would emit for a single walker.
    const std::string walker_prefix = prefix + ".walker";
    registry.addCallback(walker_prefix + ".walks_4k", [this] {
        return static_cast<double>(walkerStats().walks4K);
    });
    registry.addCallback(walker_prefix + ".walks_2m", [this] {
        return static_cast<double>(walkerStats().walks2M);
    });
    registry.addCallback(walker_prefix + ".table_accesses", [this] {
        return static_cast<double>(walkerStats().tableAccesses);
    });
    registry.addCallback(walker_prefix + ".total_walk_ns", [this] {
        return static_cast<double>(walkerStats().totalWalkTime);
    });
    memory_.registerMetrics(registry, prefix + ".memory");
    trap_.registerMetrics(registry, prefix + ".trap");
}

} // namespace thermostat
