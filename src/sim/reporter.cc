#include "sim/reporter.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/logging.hh"
#include "common/types.hh"

namespace thermostat
{

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    TSTAT_ASSERT(cells.size() == headers_.size(),
                 "row width %zu != header width %zu", cells.size(),
                 headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
TablePrinter::toString() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        widths[c] = headers_[c].size();
        for (const auto &row : rows_) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }
    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << (c == 0 ? "" : "  ");
            os << cells[c];
            os << std::string(widths[c] - cells[c].size(), ' ');
        }
        os << "\n";
    };
    emit_row(headers_);
    std::size_t total = 0;
    for (const std::size_t w : widths) {
        total += w + 2;
    }
    os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
    for (const auto &row : rows_) {
        emit_row(row);
    }
    return os.str();
}

void
TablePrinter::print() const
{
    std::fputs(toString().c_str(), stdout);
}

std::string
formatBytes(std::uint64_t bytes)
{
    char buf[32];
    if (bytes >= 10ULL << 30) {
        std::snprintf(buf, sizeof(buf), "%.1fGB",
                      static_cast<double>(bytes) / (1ULL << 30));
    } else if (bytes >= 1ULL << 30) {
        std::snprintf(buf, sizeof(buf), "%.2fGB",
                      static_cast<double>(bytes) / (1ULL << 30));
    } else if (bytes >= 1ULL << 20) {
        std::snprintf(buf, sizeof(buf), "%.0fMB",
                      static_cast<double>(bytes) / (1ULL << 20));
    } else if (bytes >= 1ULL << 10) {
        std::snprintf(buf, sizeof(buf), "%.0fKB",
                      static_cast<double>(bytes) / (1ULL << 10));
    } else {
        std::snprintf(buf, sizeof(buf), "%lluB",
                      static_cast<unsigned long long>(bytes));
    }
    return buf;
}

std::string
formatPct(double fraction, int decimals)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals,
                  fraction * 100.0);
    return buf;
}

std::string
formatNumber(double value, int decimals)
{
    char buf[32];
    if (value >= 1.0e6) {
        std::snprintf(buf, sizeof(buf), "%.2fM", value / 1.0e6);
    } else if (value >= 1.0e4) {
        std::snprintf(buf, sizeof(buf), "%.1fK", value / 1.0e3);
    } else {
        std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    }
    return buf;
}

std::string
formatRateMBps(double bytes_per_sec)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f MB/s",
                  bytes_per_sec / 1.0e6);
    return buf;
}

void
printSeries(const TimeSeries &series, const std::string &unit,
            std::size_t max_points)
{
    const std::size_t n = series.size();
    if (n == 0) {
        std::printf("  (empty series)\n");
        return;
    }
    const std::size_t step = std::max<std::size_t>(1, n / max_points);
    for (std::size_t i = 0; i < n; i += step) {
        const auto &s = series.at(i);
        std::printf("  t=%7.1fs  %12.3f %s\n",
                    static_cast<double>(s.time) / kNsPerSec, s.value,
                    unit.c_str());
    }
}

} // namespace thermostat
