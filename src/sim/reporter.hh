/**
 * @file
 * Console reporting helpers used by the benchmark harnesses to
 * print paper-style tables and series.
 */

#ifndef THERMOSTAT_SIM_REPORTER_HH
#define THERMOSTAT_SIM_REPORTER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"

namespace thermostat
{

/**
 * Fixed-width console table: add rows of strings, print aligned.
 */
class TablePrinter
{
  public:
    explicit TablePrinter(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);

    /** Render to a string (also usable in tests). */
    std::string toString() const;

    /** Print to stdout. */
    void print() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** "12.3GB", "512MB", "4KB" style formatting. */
std::string formatBytes(std::uint64_t bytes);

/** "3.1%" style formatting. */
std::string formatPct(double fraction, int decimals = 1);

/** "30000", "1.2e6" plain number formatting. */
std::string formatNumber(double value, int decimals = 1);

/** "12.5 MB/s" bandwidth formatting. */
std::string formatRateMBps(double bytes_per_sec);

/**
 * Print a TimeSeries as aligned "t=...s  value" lines, downsampled
 * to at most @p max_points evenly spaced points.
 */
void printSeries(const TimeSeries &series, const std::string &unit,
                 std::size_t max_points = 24);

} // namespace thermostat

#endif // THERMOSTAT_SIM_REPORTER_HH
