#include "sim/simulation.hh"

#include <algorithm>
#include <cstdlib>

#include "common/logging.hh"
#include "obs/json.hh"
#include "policy/policy_factory.hh"
#include "policy/thermostat_policy.hh"

namespace thermostat
{

/**
 * Resolve the epoch pipeline's worker count: the env override wins
 * (verification mode), then the config knob, then auto.  Never more
 * workers than lanes -- there is nothing for them to do.
 */
unsigned
Simulation::resolveShards(const SimConfig &config)
{
    if (std::getenv("THERMOSTAT_VERIFY_SHARDING") != nullptr) {
        return 1;
    }
    const unsigned requested =
        config.shards != 0
            ? config.shards
            : std::min(kMachineLanes, ThreadPool::defaultJobs());
    return std::min(std::max(requested, 1u), kMachineLanes);
}

namespace
{

/** Flight-recorder schema: one row per measured epoch. */
std::vector<std::string>
flightColumns()
{
    return {"slowdown",      "actual_ns",  "baseline_ns",
            "overhead_ns",   "slow_accesses", "demote_bytes",
            "promote_bytes", "demotions",  "promotions",
            "migration_retries", "copy_aborts", "wear_writes",
            "trap_faults",   "cold_bytes", "rss_bytes",
            "sampled",       "sampled_slow",
            "queue_depth",   "queue_issued_bytes"};
}

} // namespace

// shard: serial-only -- construction precedes any lane fan-out.
Simulation::Simulation(std::unique_ptr<Workload> workload,
                       const SimConfig &config,
                       ThreadPool *shared_pool)
    : config_(config),
      workload_(std::move(workload)),
      faults_(config.faultPlan.enabled()
                  ? std::make_unique<FaultInjector>(
                        config.faultPlan,
                        // rng: fault-injector stream
                        config.seed ^ 0xfa017ab1eULL)
                  : nullptr),
      machine_(config.machine),
      kstaled_(machine_.space(), machine_.tlb()),
      khugepaged_(machine_.space(), machine_.tlb()),
      migrator_(machine_.space(), machine_.tlb(), &machine_.llc()),
      cgroup_("workload", config.params),
      transactions_(machine_.space(), migrator_),
      queue_(migrator_, machine_.trap(), transactions_,
             {config.policyParams.queueCapacity,
              config.policyParams.queueServiceBytes,
              config.policyParams.queueBusyThreshold}),
      rng_(config.seed),
      profileRng_(config.seed ^ 0x5aadddULL), // rng: profiler
      shards_(resolveShards(config)),
      ownedPool_(shards_ > 1 && shared_pool == nullptr
                     ? std::make_unique<ThreadPool>(shards_)
                     : nullptr),
      pool_(shards_ > 1
                ? (shared_pool != nullptr ? shared_pool
                                          : ownedPool_.get())
                : nullptr),
      tracer_(config.traceCapacity),
      flight_(flightColumns(), config.flightCapacity),
      profiler_(config.profilerEnabled)
{
    TSTAT_ASSERT(workload_ != nullptr, "Simulation without workload");
    policy_ = PolicyFactory::make(
        config.policy,
        PolicyContext{cgroup_, machine_.space(), machine_.trap(),
                      kstaled_, migrator_, config.policyParams,
                      workload_.get(), config.seed, &queue_,
                      &transactions_});
    if (policy_ == nullptr) {
        TSTAT_FATAL("unknown tiering policy '%s'",
                    config.policy.c_str());
    }
    thermostat_ = dynamic_cast<ThermostatPolicy *>(policy_.get());
    policy_->setMarkingQuantum(
        static_cast<double>(config.profileWeight));
    workload_->setup(machine_.space());

    // Observability: the auditor sees the full event stream (the
    // ring mask only filters what is kept for export).
    tracer_.setMask(config.traceMask);
    tracer_.setSink(
        [this](const TraceEvent &ev) { auditor_.onEvent(ev); });
    policy_->setTracer(&tracer_);
    migrator_.setTracer(&tracer_);
    queue_.setTracer(&tracer_);
    transactions_.setTracer(&tracer_);
    machine_.trap().setTracer(&tracer_);
    khugepaged_.setTracer(&tracer_);
    khugepaged_.setSkipFilter([this](Addr range) {
        return policy_->isProfilingRange(range);
    });

    machine_.registerMetrics(metrics_, "machine");
    policy_->registerMetrics(metrics_);
    migrator_.registerMetrics(metrics_, "migrator");
    queue_.registerMetrics(metrics_, "queue");
    transactions_.registerMetrics(metrics_, "transactions");
    kstaled_.registerMetrics(metrics_, "kstaled");
    khugepaged_.registerMetrics(metrics_, "khugepaged");
    tracer_.registerMetrics(metrics_);
    flight_.registerMetrics(metrics_);

    // Sampled telemetry: the tap observes the timing stream from its
    // own seeded RNG stream, so attaching it cannot change results.
    if (config_.sampler.period != 0) {
        sampler_ = std::make_unique<AccessSampler>(config_.sampler,
                                                   config_.seed);
        machine_.setAccessSampler(sampler_.get());
        sampler_->registerMetrics(metrics_, "sampler");
        if (config_.samplerFeedback &&
            policy_->wantsAccessFeedback()) {
            // Each sample stands for ~period offered accesses; scale
            // the feedback weight so the policy sees calibrated
            // magnitudes (an explicit experiment: this changes what
            // feedback-driven policies observe).
            const Count period = config_.sampler.period;
            sampler_->setHook(
                [this, period](const AccessSample &s) {
                    policy_->onProfiledAccess(
                        s.huge ? alignDown2M(s.pageBase)
                               : s.pageBase,
                        s.huge, s.write, s.weight * period);
                });
        }
    }
    migrator_.setProfiler(&profiler_);
    kstaled_.setProfiler(&profiler_);
    khugepaged_.setProfiler(&profiler_);

    // Fault injection: attached only when a plan is configured, so
    // fault-free runs execute exactly the pre-fault code paths.
    if (faults_ != nullptr) {
        machine_.memory().setFaultInjector(faults_.get());
        machine_.memory().setTracer(&tracer_);
        migrator_.setFaultInjector(faults_.get());
        transactions_.setFaultInjector(faults_.get());
        faults_->registerMetrics(metrics_, "faults");
    }
}

ThermostatEngine &
Simulation::engine()
{
    TSTAT_ASSERT(thermostat_ != nullptr,
                 "engine() requires the thermostat policy");
    return thermostat_->engine();
}

// shard: merge-barrier -- runs between epochs, after the lane
// fan-out has joined and syncDeviceState() has drained the lanes.
Simulation::EpochBase
Simulation::epochBase()
{
    EpochBase base;
    const MigrationStats &mig = migrator_.stats();
    base.bytesDemoted = mig.bytesDemoted;
    base.bytesPromoted = mig.bytesPromoted;
    base.demotionsOrdered = mig.hugeDemotions + mig.baseDemotions;
    base.promotionsOrdered = mig.hugePromotions + mig.basePromotions;
    base.retries = mig.retries;
    base.copyAborts = mig.copyAborts;
    base.slowWear = machine_.memory().slow().totalWear();
    base.weightedFaults = machine_.trap().stats().weightedFaults;
    if (sampler_ != nullptr) {
        base.sampled = sampler_->sampled();
        base.sampledSlow = sampler_->sampledSlow();
    }
    base.queueIssuedBytes = queue_.stats().bytesIssued;
    return base;
}

// shard: merge-barrier -- same contract as epochBase().
void
Simulation::recordEpoch(Ns at, const EpochBase &base, Ns actual,
                        Ns baseline, Ns work, Ns overhead,
                        Count weight, Count slow_accesses)
{
    const EpochBase now = epochBase();
    const double w = static_cast<double>(weight);
    const double actual_ns = static_cast<double>(work) +
                             static_cast<double>(actual) * w +
                             static_cast<double>(overhead);
    const double baseline_ns = static_cast<double>(work) +
                               static_cast<double>(baseline) * w;
    const double slowdown =
        baseline_ns > 0.0 ? actual_ns / baseline_ns - 1.0 : 0.0;
    const auto delta = [](std::uint64_t a, std::uint64_t b) {
        return static_cast<double>(a - b);
    };
    flight_.append(
        at,
        {slowdown, actual_ns, baseline_ns,
         static_cast<double>(overhead),
         static_cast<double>(slow_accesses),
         delta(now.bytesDemoted, base.bytesDemoted),
         delta(now.bytesPromoted, base.bytesPromoted),
         delta(now.demotionsOrdered, base.demotionsOrdered),
         delta(now.promotionsOrdered, base.promotionsOrdered),
         delta(now.retries, base.retries),
         delta(now.copyAborts, base.copyAborts),
         delta(now.slowWear, base.slowWear),
         delta(now.weightedFaults, base.weightedFaults),
         static_cast<double>(policy_->coldBytes()),
         static_cast<double>(machine_.space().rssBytes()),
         delta(now.sampled, base.sampled),
         delta(now.sampledSlow, base.sampledSlow),
         static_cast<double>(queue_.occupancy()),
         delta(now.queueIssuedBytes, base.queueIssuedBytes)});
}

void
Simulation::runTimingStream(Count weight, Ns &epoch_actual,
                            Ns &epoch_baseline)
{
    TraceScope scope(&tracer_, "timing_stream");
    ProfileScope pscope(&profiler_, "timing_stream");
    // The sampler feedback hook mutates policy state per sample and
    // is order-sensitive across lanes: drive it serially.  The flag
    // is a run mode, not a function of the shard count, so results
    // stay shard-invariant.
    const bool serial = pool_ == nullptr ||
                        (sampler_ != nullptr && sampler_->hasHook());
    if (serial) {
        for (unsigned i = 0; i < config_.samplesPerEpoch; ++i) {
            const MemRef ref = workload_->sample(rng_);
            const AccessOutcome out = machine_.access(
                ref.addr, ref.type, weight, ref.burstLines);
            epoch_actual += out.actualLatency;
            epoch_baseline += out.baselineLatency;
        }
        return;
    }
    // Sharded path: draw the epoch's references serially first
    // (consuming rng_ exactly as the serial path would), bucket them
    // by machine lane, then execute the lanes concurrently.  Each
    // lane's machine state sees precisely the lane-subsequence of
    // the draw order -- the same subsequence the serial loop feeds
    // it -- and every cross-lane accumulation is a commutative sum,
    // so the merged outcome is identical for any worker count.
    for (std::vector<MemRef> &bucket : laneRefs_) {
        bucket.clear();
    }
    for (unsigned i = 0; i < config_.samplesPerEpoch; ++i) {
        const MemRef ref = workload_->sample(rng_);
        laneRefs_[laneOf(ref.addr)].push_back(ref);
    }
    std::array<Ns, kMachineLanes> actual{};
    std::array<Ns, kMachineLanes> baseline{};
    pool_->parallelFor(0, kMachineLanes, 1, [&](std::size_t lane) {
        Ns lane_actual = 0;
        Ns lane_baseline = 0;
        for (const MemRef &ref : laneRefs_[lane]) {
            const AccessOutcome out = machine_.access(
                ref.addr, ref.type, weight, ref.burstLines);
            lane_actual += out.actualLatency;
            lane_baseline += out.baselineLatency;
        }
        actual[lane] = lane_actual;
        baseline[lane] = lane_baseline;
    });
    for (unsigned lane = 0; lane < kMachineLanes; ++lane) {
        epoch_actual += actual[lane];
        epoch_baseline += baseline[lane];
    }
}

void
Simulation::runProfileStream(std::uint64_t profile_samples,
                             Count pebs_budget)
{
    TraceScope scope(&tracer_, "profile_stream");
    ProfileScope pscope(&profiler_, "profile_stream");
    const bool pebs =
        config_.machine.countingMode == CountingMode::Pebs;
    const bool feedback = config_.thermostatEnabled &&
                          policy_->wantsAccessFeedback();
    // PEBS counts monitored hits through one global modulo counter
    // and the feedback hook mutates policy state per sample: both
    // are order-sensitive across lanes, so those modes run serially.
    // Like the sampler hook, they are run modes, not functions of
    // the shard count.
    const bool serial = pool_ == nullptr || pebs || feedback;
    // Grab the component references up front: the Machine accessors
    // that flush deferred device state must run neither per-sample
    // (serial loop) nor inside the lane workers (sharded loop).
    PageTable &table = machine_.space().pageTable();
    BadgerTrap &trap = machine_.trap();
    if (serial) {
        Count pebs_records = 0;
        for (std::uint64_t i = 0; i < profile_samples; ++i) {
            const MemRef ref = workload_->sample(profileRng_);
            const WalkResult wr = table.walk(ref.addr);
            TSTAT_ASSERT(wr.mapped(), "profile ref unmapped");
            wr.pte->setAccessed();
            if (ref.type == AccessType::Write) {
                wr.pte->setDirty();
            }
            if (feedback) {
                policy_->onProfiledAccess(
                    wr.huge ? alignDown2M(ref.addr)
                            : alignDown4K(ref.addr),
                    wr.huge, ref.type == AccessType::Write,
                    config_.profileWeight);
            }
            if (!wr.pte->poisoned()) {
                continue;
            }
            const Addr base = wr.huge ? alignDown2M(ref.addr)
                                      : alignDown4K(ref.addr);
            if (!pebs) {
                trap.recordAccess(base, config_.profileWeight);
                continue;
            }
            // PEBS: one record per pebsPeriod monitored accesses,
            // silently dropped beyond the record-rate budget --
            // which is exactly why 1000Hz cannot support 30K
            // accesses/sec of monitoring (Sec 6.1.2).
            if (++pebsMonitoredHits_ % config_.pebsPeriod != 0) {
                continue;
            }
            if (pebs_records >= pebs_budget) {
                continue;
            }
            ++pebs_records;
            trap.recordAccess(
                base, config_.profileWeight * config_.pebsPeriod);
        }
        return;
    }
    // Sharded path: same pre-draw/bucket/execute shape as the
    // timing stream.  Lane workers only touch lane-owned state --
    // the leaf PTE (a page maps to exactly one lane), the lane's
    // walk-cache slots and BadgerTrap's lane counters -- so the
    // walks and counts commute across lanes.
    for (std::vector<MemRef> &bucket : laneRefs_) {
        bucket.clear();
    }
    for (std::uint64_t i = 0; i < profile_samples; ++i) {
        const MemRef ref = workload_->sample(profileRng_);
        laneRefs_[laneOf(ref.addr)].push_back(ref);
    }
    pool_->parallelFor(0, kMachineLanes, 1, [&](std::size_t lane) {
        for (const MemRef &ref : laneRefs_[lane]) {
            const WalkResult wr = table.walk(ref.addr);
            TSTAT_ASSERT(wr.mapped(), "profile ref unmapped");
            wr.pte->setAccessed();
            if (ref.type == AccessType::Write) {
                wr.pte->setDirty();
            }
            if (!wr.pte->poisoned()) {
                continue;
            }
            trap.recordAccess(wr.huge ? alignDown2M(ref.addr)
                                      : alignDown4K(ref.addr),
                              config_.profileWeight);
        }
    });
}

// shard: merge-barrier -- same contract as epochBase().
void
Simulation::recordFootprint(SimResult &result, Ns now)
{
    std::uint64_t hot2m = 0;
    std::uint64_t hot4k = 0;
    std::uint64_t cold2m = 0;
    std::uint64_t cold4k = 0;
    TieredMemory &memory = machine_.memory();
    machine_.space().pageTable().forEachLeaf(
        [&](Addr, Pte &pte, bool huge) {
            const bool cold = memory.tierOf(pte.pfn()) == Tier::Slow;
            if (huge) {
                (cold ? cold2m : hot2m) += kPageSize2M;
            } else {
                (cold ? cold4k : hot4k) += kPageSize4K;
            }
        });
    result.hot2M.append(now, static_cast<double>(hot2m));
    result.hot4K.append(now, static_cast<double>(hot4k));
    result.cold2M.append(now, static_cast<double>(cold2m));
    result.cold4K.append(now, static_cast<double>(cold4k));
}

void
Simulation::startRun()
{
    snapshots_.clear();
    run_ = RunState{};
    run_.result.workload = workload_->name();
    run_.duration = config_.duration != 0
                        ? config_.duration
                        : workload_->naturalDuration();
    run_.result.duration = run_.duration;

    const double rate = workload_->memRefRate();
    run_.epochSec = static_cast<double>(config_.epoch) /
                    static_cast<double>(kNsPerSec);
    run_.weight = static_cast<Count>(
        rate * run_.epochSec /
            static_cast<double>(config_.samplesPerEpoch) +
        0.5);
    TSTAT_ASSERT(run_.weight >= 1,
                 "sample weight underflow; lower "
                 "samplesPerEpoch or raise access rate");
    run_.profileSamples = static_cast<std::uint64_t>(
        rate * run_.epochSec /
            static_cast<double>(config_.profileWeight) +
        0.5);
    run_.pebsBudget = static_cast<Count>(
        config_.pebsMaxRecordsPerSec * run_.epochSec);

    // CPU (non-memory) work per epoch on the baseline machine.
    const double cpu_frac = workload_->cpuWorkFraction();
    run_.workPerEpoch = static_cast<Ns>(
        cpu_frac * static_cast<double>(config_.epoch));

    run_.active = true;
}

bool
Simulation::runDone() const
{
    return run_.now >= config_.warmup + run_.duration;
}

Simulation::EpochReport
Simulation::stepEpoch()
{
    TSTAT_ASSERT(run_.active, "stepEpoch outside startRun/finishRun");
    TSTAT_ASSERT(!runDone(), "stepEpoch past the run's end");
    EpochReport report;
    SimResult &result = run_.result;
    const Ns warmup = config_.warmup;
    const Ns now = run_.now;

    ProfileScope epoch_scope(&profiler_, "epoch");
    const bool recording = now >= warmup;
    const Ns rec_time = recording ? now - warmup : 0;
    const EpochBase epoch_base = epochBase();
    tracer_.setSimTime(now);
    if (faults_ != nullptr) {
        // Latch the slow tier's degradation state for this
        // epoch and fire any pending wear retirements (the
        // engine tick below evacuates retired blocks).
        machine_.memory().advanceFaultState(now);
    }
    {
        TraceScope scope(&tracer_, "workload_advance");
        ProfileScope pscope(&profiler_, "workload_advance");
        workload_->advance(now, machine_.space());
    }
    Ns queue_cost = 0;
    if (config_.thermostatEnabled) {
        {
            TraceScope scope(&tracer_, "policy_tick");
            ProfileScope pscope(&profiler_, "policy_tick");
            policy_->tick(now);
        }
        // Service the bounded migration queue after the decision
        // round so this epoch's orders contend for this epoch's
        // service budget.  Pass-through engines never activate it.
        if (queue_.active()) {
            TraceScope scope(&tracer_, "migrate_queue");
            ProfileScope pscope(&profiler_, "migrate_queue");
            queue_cost = queue_.step(now);
            if (transactions_.active()) {
                transactions_.verifyLedger();
            }
        }
    }
    if (config_.khugepagedEnabled) {
        TraceScope scope(&tracer_, "khugepaged_tick");
        ProfileScope pscope(&profiler_, "khugepaged_tick");
        khugepaged_.tick(now);
    }
    if (hook_) {
        hook_(*this, now);
    }
    const Ns overhead = policy_->takeOverhead() + queue_cost;
    if (recording) {
        run_.overheadTotal += overhead;
    }

    Ns epoch_actual = 0;
    Ns epoch_baseline = 0;
    runTimingStream(run_.weight, epoch_actual, epoch_baseline);
    // Profiling stream: fine-grained accesses that maintain
    // Accessed bits and poisoned-page counters without touching
    // the timing model.
    runProfileStream(run_.profileSamples, run_.pebsBudget);

    // Flush the lanes' deferred device accounting before
    // anything below (flight rows, fault advancement, the next
    // policy tick) reads the device model.
    machine_.syncDeviceState();
    const Count slow_accesses = machine_.takeSlowAccessCount();
    run_.now = now + config_.epoch;
    if (!recording) {
        return report;
    }
    recordEpoch(rec_time + config_.epoch, epoch_base,
                epoch_actual, epoch_baseline, run_.workPerEpoch,
                overhead, run_.weight, slow_accesses);
    const double w = static_cast<double>(run_.weight);
    const double actual_mem =
        static_cast<double>(epoch_actual) * w;
    const double baseline_mem =
        static_cast<double>(epoch_baseline) * w;
    const double work = static_cast<double>(run_.workPerEpoch);
    const double epoch_actual_ns =
        work + actual_mem + static_cast<double>(overhead);
    const double epoch_baseline_ns = work + baseline_mem;
    run_.actualTotal += epoch_actual_ns;
    run_.baselineTotal += epoch_baseline_ns;
    report.measured = true;
    report.time = rec_time + config_.epoch;
    report.actualNs = epoch_actual_ns;
    report.baselineNs = epoch_baseline_ns;
    report.slowdown = epoch_baseline_ns > 0.0
                          ? epoch_actual_ns / epoch_baseline_ns - 1.0
                          : 0.0;

    // Device-level slow access rate for this epoch.
    result.deviceSlowRate.append(
        rec_time + config_.epoch,
        static_cast<double>(slow_accesses) / run_.epochSec);

    if (rec_time >= run_.nextReport) {
        recordFootprint(result, rec_time);
        snapshots_.push_back({rec_time, metrics_.snapshot()});
        const std::uint64_t rss = machine_.space().rssBytes();
        if (rss > 0) {
            run_.coldFracSum +=
                static_cast<double>(policy_->coldBytes()) /
                static_cast<double>(rss);
            ++run_.coldFracCount;
        }
        run_.nextReport += config_.reportInterval;
    }
    return report;
}

// shard: serial-only -- the run has ended; no lanes are in flight.
SimResult
Simulation::finishRun()
{
    TSTAT_ASSERT(run_.active, "finishRun without startRun");
    SimResult result = std::move(run_.result);
    const Ns duration = run_.duration;
    recordFootprint(result, duration);

    result.slowdown = run_.baselineTotal > 0.0
                          ? run_.actualTotal / run_.baselineTotal - 1.0
                          : 0.0;
    result.actualSeconds = run_.actualTotal / kNsPerSec;
    result.baselineSeconds = run_.baselineTotal / kNsPerSec;
    result.finalRssBytes = machine_.space().rssBytes();
    result.finalFileBytes = machine_.space().fileBackedBytes();
    result.finalColdFraction =
        result.finalRssBytes > 0
            ? static_cast<double>(policy_->coldBytes()) /
                  static_cast<double>(result.finalRssBytes)
            : 0.0;
    result.avgColdFraction =
        run_.coldFracCount > 0
            ? run_.coldFracSum /
                  static_cast<double>(run_.coldFracCount)
            : 0.0;
    // Shift the engine's series into measurement time.
    const Ns warmup = config_.warmup;
    if (const TimeSeries *series = policy_->slowRateSeries()) {
        for (const auto &sample : series->samples()) {
            if (sample.time >= warmup) {
                result.engineSlowRate.append(sample.time - warmup,
                                             sample.value);
            }
        }
    }

    const double dur_sec = static_cast<double>(duration) /
                           static_cast<double>(kNsPerSec);
    result.demotionBytesPerSec =
        static_cast<double>(migrator_.stats().bytesDemoted) / dur_sec;
    result.promotionBytesPerSec =
        static_cast<double>(migrator_.stats().bytesPromoted) / dur_sec;
    result.monitorOverheadFraction =
        run_.baselineTotal > 0.0
            ? static_cast<double>(run_.overheadTotal) /
                  run_.baselineTotal
            : 0.0;

    // Lifecycle audit: replays of the event stream must agree with
    // the migrator's and the slow tier's own accounting.
    auditor_.finish(migrator_.stats(),
                    machine_.memory().slow().stats());
    result.auditViolations = auditor_.violations();
    if (!auditor_.ok()) {
        for (const std::string &msg : auditor_.messages()) {
            TSTAT_WARN("lifecycle audit: %s", msg.c_str());
        }
    }

    result.migration = migrator_.stats();
    result.queue = queue_.stats();
    result.transactions = transactions_.stats();
    result.policyName = policy_->name();
    result.policy = policy_->stats();
    if (thermostat_ != nullptr) {
        result.engine = thermostat_->engine().stats();
    }
    result.trap = machine_.trap().stats();
    result.machineStats = machine_.stats();
    result.l1Tlb = machine_.tlb().l1Stats();
    result.l2Tlb = machine_.tlb().l2Stats();
    result.llc = machine_.llc().stats();
    result.walker = machine_.walkerStats();
    run_.active = false;
    return result;
}

SimResult
Simulation::run()
{
    startRun();
    while (!runDone()) {
        stepEpoch();
    }
    return finishRun();
}

std::string
Simulation::metricsJson() const
{
    JsonWriter w;
    w.beginObject();
    w.key("final");
    w.raw(metrics_.dumpJson());
    w.key("snapshots");
    w.beginArray();
    for (const MetricSnapshot &snap : snapshots_) {
        w.beginObject();
        w.key("time_sec");
        w.value(static_cast<double>(snap.time) /
                static_cast<double>(kNsPerSec));
        w.key("metrics");
        w.beginObject();
        for (const MetricSample &sample : snap.values) {
            w.key(sample.name);
            w.value(sample.value);
        }
        w.endObject();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

} // namespace thermostat
