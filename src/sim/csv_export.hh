/**
 * @file
 * CSV export of simulation results, for plotting the figures with
 * external tooling (gnuplot/matplotlib).
 */

#ifndef THERMOSTAT_SIM_CSV_EXPORT_HH
#define THERMOSTAT_SIM_CSV_EXPORT_HH

#include <string>

#include "sim/simulation.hh"

namespace thermostat
{

/**
 * Write a run's series and summary into @p directory:
 *
 *   footprint.csv  time_sec, hot_2mb, hot_4kb, cold_2mb, cold_4kb
 *   slow_rate.csv  time_sec, engine_rate; plus the device series
 *   summary.csv    key,value rows (slowdown, cold fraction, ...)
 *
 * The directory must exist.
 * @return false (with a warning) when any file cannot be written.
 */
bool writeSimResultCsv(const SimResult &result,
                       const std::string &directory);

} // namespace thermostat

#endif // THERMOSTAT_SIM_CSV_EXPORT_HH
