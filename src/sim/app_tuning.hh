/**
 * @file
 * Per-application machine tuning.
 *
 * The evaluation machine is the same box for every workload
 * (Sec 4.1), but the *effective* cost of a page walk differs by
 * application: small active sets keep page-table entries resident
 * in the page-walk caches and LLC (web search), while huge
 * TLB-hostile footprints pay nearly full nested-walk cost (Redis).
 * These factors are the calibration surface for Table 1's reported
 * THP gains; everything else is shared.
 */

#ifndef THERMOSTAT_SIM_APP_TUNING_HH
#define THERMOSTAT_SIM_APP_TUNING_HH

#include <string>

#include "sim/machine.hh"

namespace thermostat
{

/**
 * Machine configuration tuned for one of the six cloud workloads:
 * tier capacities sized to the footprint, walk-cache factors
 * calibrated per application.  Unknown names get the defaults.
 */
MachineConfig tunedMachineConfig(const std::string &workload);

} // namespace thermostat

#endif // THERMOSTAT_SIM_APP_TUNING_HH
