#include "sim/csv_export.hh"

#include <cstdio>
#include <memory>

#include "common/logging.hh"

namespace thermostat
{

namespace
{

struct FileCloser
{
    void
    operator()(std::FILE *file) const
    {
        if (file) {
            std::fclose(file);
        }
    }
};

using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

FilePtr
openCsv(const std::string &directory, const char *name)
{
    const std::string path = directory + "/" + name;
    FilePtr file(std::fopen(path.c_str(), "w"));
    if (!file) {
        TSTAT_WARN("cannot write %s", path.c_str());
    }
    return file;
}

double
seconds(Ns t)
{
    return static_cast<double>(t) / static_cast<double>(kNsPerSec);
}

} // namespace

bool
writeSimResultCsv(const SimResult &result,
                  const std::string &directory)
{
    bool ok = true;

    if (FilePtr f = openCsv(directory, "footprint.csv")) {
        std::fprintf(f.get(),
                     "time_sec,hot_2mb,hot_4kb,cold_2mb,cold_4kb\n");
        for (std::size_t i = 0; i < result.hot2M.size(); ++i) {
            std::fprintf(f.get(), "%.1f,%.0f,%.0f,%.0f,%.0f\n",
                         seconds(result.hot2M.at(i).time),
                         result.hot2M.at(i).value,
                         result.hot4K.at(i).value,
                         result.cold2M.at(i).value,
                         result.cold4K.at(i).value);
        }
    } else {
        ok = false;
    }

    if (FilePtr f = openCsv(directory, "slow_rate.csv")) {
        std::fprintf(f.get(), "time_sec,engine_rate\n");
        for (const auto &s : result.engineSlowRate.samples()) {
            std::fprintf(f.get(), "%.1f,%.1f\n", seconds(s.time),
                         s.value);
        }
    } else {
        ok = false;
    }

    if (FilePtr f = openCsv(directory, "device_rate.csv")) {
        std::fprintf(f.get(), "time_sec,device_rate\n");
        for (const auto &s : result.deviceSlowRate.samples()) {
            std::fprintf(f.get(), "%.1f,%.1f\n", seconds(s.time),
                         s.value);
        }
    } else {
        ok = false;
    }

    if (FilePtr f = openCsv(directory, "summary.csv")) {
        std::fprintf(f.get(), "key,value\n");
        std::fprintf(f.get(), "workload,%s\n",
                     result.workload.c_str());
        std::fprintf(f.get(), "duration_sec,%.0f\n",
                     seconds(result.duration));
        std::fprintf(f.get(), "slowdown,%.5f\n", result.slowdown);
        std::fprintf(f.get(), "final_cold_fraction,%.5f\n",
                     result.finalColdFraction);
        std::fprintf(f.get(), "avg_cold_fraction,%.5f\n",
                     result.avgColdFraction);
        std::fprintf(f.get(), "rss_bytes,%llu\n",
                     static_cast<unsigned long long>(
                         result.finalRssBytes));
        std::fprintf(f.get(), "file_mapped_bytes,%llu\n",
                     static_cast<unsigned long long>(
                         result.finalFileBytes));
        std::fprintf(f.get(), "demotion_bytes_per_sec,%.1f\n",
                     result.demotionBytesPerSec);
        std::fprintf(f.get(), "promotion_bytes_per_sec,%.1f\n",
                     result.promotionBytesPerSec);
        std::fprintf(f.get(), "monitor_overhead_fraction,%.5f\n",
                     result.monitorOverheadFraction);
        std::fprintf(f.get(), "cold_huge_placed,%llu\n",
                     static_cast<unsigned long long>(
                         result.engine.coldHugePlaced));
        std::fprintf(f.get(), "cold_base_placed,%llu\n",
                     static_cast<unsigned long long>(
                         result.engine.coldBasePlaced));
        std::fprintf(f.get(), "promotions,%llu\n",
                     static_cast<unsigned long long>(
                         result.engine.promotions));
        std::fprintf(f.get(), "pages_spread,%llu\n",
                     static_cast<unsigned long long>(
                         result.engine.pagesSpread));
    } else {
        ok = false;
    }
    return ok;
}

} // namespace thermostat
