#include "sim/app_tuning.hh"

namespace thermostat
{

namespace
{

struct AppTuning
{
    const char *name;
    std::uint64_t fastGiB;     //!< fast tier capacity
    std::uint64_t slowGiB;     //!< slow tier capacity
    double walkCacheFactor4K;  //!< effective fraction of raw access
    double walkCacheFactor2M;
    double overlapFactor;
};

/**
 * Calibrated against Table 1 (THP gain under virtualization):
 * Aerospike 6%, Cassandra 13%, In-memory analytics 8%,
 * MySQL-TPCC 8%, Redis 30%, Web-search ~0%.
 */
constexpr AppTuning kTunings[] = {
    {"aerospike", 20, 16, 0.091, 0.077, 2.0},
    {"cassandra", 20, 16, 0.116, 0.096, 2.0},
    {"mysql-tpcc", 14, 12, 0.049, 0.040, 2.0},
    {"redis", 24, 20, 0.74, 0.40, 2.0},
    {"in-memory-analytics", 10, 8, 0.071, 0.058, 2.0},
    {"web-search", 6, 4, 0.035, 0.10, 2.0},
};

} // namespace

MachineConfig
tunedMachineConfig(const std::string &workload)
{
    MachineConfig config;
    for (const AppTuning &tuning : kTunings) {
        if (workload == tuning.name) {
            config.fastTier =
                TierConfig::dram(tuning.fastGiB << 30);
            config.slowTier =
                TierConfig::slow(tuning.slowGiB << 30);
            config.walker.walkCacheFactor4K =
                tuning.walkCacheFactor4K;
            config.walker.walkCacheFactor2M =
                tuning.walkCacheFactor2M;
            config.overlapFactor = tuning.overlapFactor;
            // Measured in-guest fault handler latency runs under
            // the 1us the budget arithmetic assumes (paper Sec 5.1
            // explains Aerospike's undershoot this way).
            config.trap.faultLatency = 850;
            return config;
        }
    }
    return config;
}

} // namespace thermostat
