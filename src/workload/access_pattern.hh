/**
 * @file
 * Synthetic memory access patterns.
 *
 * A pattern produces byte offsets within a span of memory (one
 * region of an application's address space).  Patterns capture the
 * structure the paper's workloads exhibit: YCSB Zipfian key
 * popularity (Aerospike/Cassandra), the Redis hotspot distribution
 * where 0.01% of keys take 90% of traffic scattered uniformly by the
 * hash table, cold database tables (TPC-C), and streaming scans
 * (Spark analytics, Cassandra compaction).
 *
 * Popularity-to-address mapping is controlled by a "scatter" flag:
 * scattered patterns place popular items pseudo-randomly across the
 * span (hash-table layout), local patterns keep popular items
 * adjacent (log/table layout).  This is the property that decides
 * how much page-granular cold data exists (paper Sec 5, Redis
 * discussion).
 */

#ifndef THERMOSTAT_WORKLOAD_ACCESS_PATTERN_HH
#define THERMOSTAT_WORKLOAD_ACCESS_PATTERN_HH

#include <cstdint>
#include <memory>

#include "common/permutation.hh"
#include "common/rng.hh"
#include "common/types.hh"

namespace thermostat
{

/**
 * Base interface: a stream of byte offsets in [0, spanBytes()).
 */
class AccessPattern
{
  public:
    virtual ~AccessPattern() = default;

    /** Next byte offset (line aligned by the caller if desired). */
    virtual std::uint64_t next(Rng &rng) = 0;

    /** Current span covered by the pattern. */
    virtual std::uint64_t spanBytes() const = 0;

    /**
     * Resize the span (e.g. the underlying region grew).  Patterns
     * that cannot resize cheaply may ignore growth and keep using
     * their original span.
     */
    virtual void setSpanBytes(std::uint64_t bytes) { (void)bytes; }

    /** Advance pattern-internal time (phase changes). */
    virtual void advance(Ns now) { (void)now; }
};

/** Uniform offsets over the whole span. */
class UniformPattern : public AccessPattern
{
  public:
    explicit UniformPattern(std::uint64_t span_bytes);

    std::uint64_t next(Rng &rng) override;
    std::uint64_t spanBytes() const override { return spanBytes_; }
    void setSpanBytes(std::uint64_t bytes) override
    {
        spanBytes_ = bytes;
        draw_ = BoundedDraw(spanBytes_);
    }

  private:
    std::uint64_t spanBytes_;
    BoundedDraw draw_;
};

/**
 * Zipf-popular objects of fixed size.  Rank r's slot is either
 * rank-order (local layout) or a fixed pseudo-random permutation of
 * ranks (scattered / hash-table layout).
 */
class ZipfianPattern : public AccessPattern
{
  public:
    ZipfianPattern(std::uint64_t span_bytes, std::uint64_t object_bytes,
                   double theta, bool scatter, std::uint64_t seed);

    std::uint64_t next(Rng &rng) override;
    std::uint64_t spanBytes() const override { return spanBytes_; }

    std::uint64_t objectCount() const { return zipf_.itemCount(); }

    /** Slot index (address order) for popularity rank @p rank. */
    std::uint64_t slotForRank(std::uint64_t rank) const;

  private:
    std::uint64_t spanBytes_;
    std::uint64_t objectBytes_;
    ZipfSampler zipf_;
    bool scatter_;
    FixedPermutation perm_;
    BoundedDraw withinDraw_; //!< line draw inside one object
};

/**
 * Hotspot traffic: with probability hotTraffic the access targets a
 * small hot subset (hotFraction of objects); otherwise any object.
 * The hot subset is scattered or clustered per the scatter flag.
 * Redis's published load (0.01% of keys, 90% of traffic) is the
 * canonical instance.
 */
class HotspotPattern : public AccessPattern
{
  public:
    HotspotPattern(std::uint64_t span_bytes, std::uint64_t object_bytes,
                   double hot_fraction, double hot_traffic,
                   bool scatter, std::uint64_t seed);

    std::uint64_t next(Rng &rng) override;
    std::uint64_t spanBytes() const override { return spanBytes_; }

    std::uint64_t hotObjectCount() const { return hotObjects_; }

  private:
    std::uint64_t spanBytes_;
    std::uint64_t objectBytes_;
    std::uint64_t objectCount_;
    std::uint64_t hotObjects_;
    double hotTraffic_;
    bool scatter_;
    FixedPermutation perm_;
    BoundedDraw hotDraw_;    //!< draw over the hot subset
    BoundedDraw anyDraw_;    //!< draw over all objects
    BoundedDraw withinDraw_; //!< line draw inside one object
};

/**
 * Sequential streaming scan with a fixed stride; wraps at the end of
 * the span.  Spreads accesses evenly over every page at a rate set
 * by the traffic share it is given.
 */
class SequentialScanPattern : public AccessPattern
{
  public:
    SequentialScanPattern(std::uint64_t span_bytes,
                          std::uint64_t stride_bytes);

    std::uint64_t next(Rng &rng) override;
    std::uint64_t spanBytes() const override { return spanBytes_; }
    void setSpanBytes(std::uint64_t bytes) override;

  private:
    std::uint64_t spanBytes_;
    std::uint64_t strideBytes_;
    std::uint64_t cursor_ = 0;
};

/**
 * Uniform accesses confined to the most recent `windowBytes` of a
 * growing span: an append-structured store (memtable, log) writes
 * its tail while flushed segments go cold.  setSpanBytes() tracks
 * region growth.
 */
class RecentWindowPattern : public AccessPattern
{
  public:
    RecentWindowPattern(std::uint64_t span_bytes,
                        std::uint64_t window_bytes);

    std::uint64_t next(Rng &rng) override;
    std::uint64_t spanBytes() const override { return spanBytes_; }
    void setSpanBytes(std::uint64_t bytes) override
    {
        spanBytes_ = bytes;
        windowDraw_ = BoundedDraw(
            windowBytes_ < spanBytes_ ? windowBytes_ : spanBytes_);
    }

    std::uint64_t windowBytes() const { return windowBytes_; }

  private:
    std::uint64_t spanBytes_;
    std::uint64_t windowBytes_;
    BoundedDraw windowDraw_;
};

/**
 * Confines an inner pattern to the slice [offset, offset + inner
 * span) of a region, so zones (hot head, warm middle, idle tail)
 * can be laid out explicitly.
 */
class OffsetPattern : public AccessPattern
{
  public:
    OffsetPattern(std::uint64_t offset_bytes,
                  std::unique_ptr<AccessPattern> inner);

    std::uint64_t next(Rng &rng) override;
    std::uint64_t spanBytes() const override;

    /** Growth forwards to the inner pattern, minus the offset. */
    void setSpanBytes(std::uint64_t bytes) override;
    void advance(Ns now) override;

  private:
    std::uint64_t offsetBytes_;
    std::unique_ptr<AccessPattern> inner_;
};

/**
 * Wraps a pattern and remaps its offsets by a rotating shift that
 * changes every @p phasePeriod, modeling working sets that move over
 * time (used to exercise Thermostat's mis-classification correction,
 * Sec 3.5).
 */
class PhaseShiftPattern : public AccessPattern
{
  public:
    /**
     * @param inner Pattern generating offsets in its own span.
     * @param phase_period Time between shifts.
     * @param shift_bytes Offset added per elapsed phase.
     * @param wrap_bytes Total window the shifted offsets wrap
     *        within; must be >= the inner span.
     */
    PhaseShiftPattern(std::unique_ptr<AccessPattern> inner,
                      Ns phase_period, std::uint64_t shift_bytes,
                      std::uint64_t wrap_bytes);

    std::uint64_t next(Rng &rng) override;
    std::uint64_t spanBytes() const override { return wrapBytes_; }
    void advance(Ns now) override;

    unsigned phaseIndex() const { return phaseIndex_; }

  private:
    std::unique_ptr<AccessPattern> inner_;
    Ns phasePeriod_;
    std::uint64_t shiftBytes_;
    std::uint64_t wrapBytes_;
    unsigned phaseIndex_ = 0;
};

} // namespace thermostat

#endif // THERMOSTAT_WORKLOAD_ACCESS_PATTERN_HH
