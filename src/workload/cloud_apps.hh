/**
 * @file
 * Models of the paper's six cloud applications (Sec 4.3, Table 2).
 *
 * Each factory builds a ComposedWorkload whose footprint matches
 * Table 2 and whose traffic mixture reproduces the published
 * behavior: per-app cold fractions under Thermostat (Figs 5-10),
 * idle fractions under Accessed-bit scanning (Fig 1), huge-page
 * sensitivity (Table 1) and time-varying footprints (Cassandra
 * memtable growth, Spark heap growth).
 *
 * These are synthetic stand-ins for the real applications -- the
 * substitution DESIGN.md documents -- so absolute throughput is not
 * modeled, only the structure of the memory reference stream.
 */

#ifndef THERMOSTAT_WORKLOAD_CLOUD_APPS_HH
#define THERMOSTAT_WORKLOAD_CLOUD_APPS_HH

#include <memory>
#include <string>
#include <vector>

#include "workload/workload.hh"

namespace thermostat
{

/** YCSB driver mix (Sec 4.3): 95:5 or 5:95 read/write. */
enum class YcsbMix { ReadHeavy, WriteHeavy };

/**
 * Aerospike: multi-threaded key-value store, 12.3GB RSS.  Hash
 * indexed, so popularity scatters across pages; only ~15% of the
 * footprint is cold at a 3% slowdown target (Fig 7).
 */
std::unique_ptr<ComposedWorkload>
makeAerospike(YcsbMix mix = YcsbMix::ReadHeavy,
              std::uint64_t seed = 1);

/**
 * Cassandra: wide-column store, 8GB RSS + 4GB file-mapped
 * SSTables, growing memtable; 40-50% cold (Fig 5).
 */
std::unique_ptr<ComposedWorkload>
makeCassandra(YcsbMix mix = YcsbMix::WriteHeavy,
              std::uint64_t seed = 2);

/**
 * MySQL running TPC-C: 6GB RSS + 3.5GB file-mapped page cache.
 * The large, rarely-read history table leaves 40-50% cold, and the
 * rest is hot enough that the cold fraction saturates near 45% even
 * at 10% tolerable slowdown (Fig 6, Fig 11).
 */
std::unique_ptr<ComposedWorkload>
makeMysqlTpcc(std::uint64_t seed = 3);

/**
 * Redis: single-threaded KV store, 17.2GB RSS.  Hotspot load
 * (0.01% of keys take 90% of traffic) scattered by the hash table,
 * plus a slowly rotating warm set; ~10% cold at 2-3% degradation
 * (Fig 8), and naive idle-page placement costs >10% (Fig 1).
 */
std::unique_ptr<ComposedWorkload> makeRedis(std::uint64_t seed = 4);

/**
 * Redis variant with an amplified rotating warm set (~140K
 * bursts/sec).  Its pages look idle to 10s Accessed-bit scans yet
 * carry >10% worth of slow-memory traffic when placed naively: the
 * configuration behind Figure 1's ">10% degradation for Redis"
 * observation.
 */
std::unique_ptr<ComposedWorkload>
makeRedisBursty(std::uint64_t seed = 4);

/**
 * Cloudsuite in-memory analytics (Spark collaborative filtering):
 * 6.2GB heap that grows over the 317s run; 15-20% cold (Fig 9).
 */
std::unique_ptr<ComposedWorkload>
makeInMemAnalytics(std::uint64_t seed = 5);

/**
 * Cloudsuite web search (Apache Solr): 2.28GB RSS + 86MB file.
 * Mostly-cold index (~40%), low memory intensity, so huge pages do
 * not measurably help (Table 1) and degradation stays <1% (Fig 10).
 */
std::unique_ptr<ComposedWorkload> makeWebSearch(std::uint64_t seed = 6);

/** Canonical workload names in the paper's plotting order. */
const std::vector<std::string> &allWorkloadNames();

/**
 * Whether @p name resolves to a workload: one of
 * allWorkloadNames() or the "redis-bursty" variant.  CLIs validate
 * against this before calling makeWorkload (which aborts).
 */
bool isWorkloadName(const std::string &name);

/**
 * Factory by name ("aerospike", "cassandra", "mysql-tpcc", "redis",
 * "in-memory-analytics", "web-search").  YCSB-driven apps get the
 * paper's default mix (Aerospike read-heavy, Cassandra write-heavy).
 */
std::unique_ptr<ComposedWorkload>
makeWorkload(const std::string &name, std::uint64_t seed = 1);

} // namespace thermostat

#endif // THERMOSTAT_WORKLOAD_CLOUD_APPS_HH
