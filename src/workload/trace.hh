/**
 * @file
 * Reference-trace capture and replay.
 *
 * RecordingWorkload wraps any Workload and logs the reference
 * stream it produces; TraceWorkload replays a saved trace file.
 * Region layout, rates and CPU fraction are stored in the trace
 * header, so a replayed run maps the identical address space and
 * the recorded absolute addresses stay valid (region base
 * assignment is deterministic).
 *
 * Uses: capturing a production-like stream once and sweeping
 * Thermostat parameters over it, or importing externally generated
 * traces by writing the simple binary format.
 */

#ifndef THERMOSTAT_WORKLOAD_TRACE_HH
#define THERMOSTAT_WORKLOAD_TRACE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "workload/workload.hh"

namespace thermostat
{

/** One recorded reference (packed for compact trace files). */
struct TraceEntry
{
    Addr addr = 0;
    std::uint16_t burstLines = 1;
    std::uint8_t isWrite = 0;
    std::uint8_t pad = 0;
};

static_assert(sizeof(TraceEntry) == 12 || sizeof(TraceEntry) == 16,
              "TraceEntry should stay compact");

/**
 * Decorator: behaves exactly like the wrapped workload while
 * logging every sampled reference.
 */
class RecordingWorkload : public Workload
{
  public:
    explicit RecordingWorkload(std::unique_ptr<Workload> inner);

    const std::string &name() const override;
    void setup(AddressSpace &space) override;
    void advance(Ns now, AddressSpace &space) override;
    MemRef sample(Rng &rng) override;
    double memRefRate() const override;
    double cpuWorkFraction() const override;
    Ns naturalDuration() const override;

    /** References recorded so far. */
    std::size_t recordedCount() const { return entries_.size(); }

    /**
     * Write the trace (header with region specs + entries) to
     * @p path.
     * @return false on I/O failure.
     */
    bool save(const std::string &path) const;

  private:
    std::unique_ptr<Workload> inner_;
    std::vector<RegionSpec> regions_;
    std::vector<TraceEntry> entries_;
};

/**
 * Replays a saved trace: maps the recorded regions and serves the
 * recorded references in order, wrapping at the end.
 */
class TraceWorkload : public Workload
{
  public:
    /**
     * Load a trace file; nullptr on parse/I/O failure.  When
     * @p error is non-null it receives a caller-printable
     * diagnostic naming the path and, for I/O failures, the errno.
     */
    static std::unique_ptr<TraceWorkload>
    load(const std::string &path, std::string *error = nullptr);

    const std::string &name() const override { return name_; }
    void setup(AddressSpace &space) override;
    void advance(Ns now, AddressSpace &space) override;
    MemRef sample(Rng &rng) override;
    double memRefRate() const override { return memRefRate_; }
    double cpuWorkFraction() const override
    {
        return cpuWorkFraction_;
    }
    Ns naturalDuration() const override { return naturalDuration_; }

    std::size_t entryCount() const { return entries_.size(); }
    const std::vector<RegionSpec> &regions() const
    {
        return regions_;
    }

  private:
    TraceWorkload() = default;

    std::string name_;
    double memRefRate_ = 0.0;
    double cpuWorkFraction_ = 0.0;
    Ns naturalDuration_ = 0;
    std::vector<RegionSpec> regions_;
    std::vector<TraceEntry> entries_;
    std::size_t cursor_ = 0;
};

} // namespace thermostat

#endif // THERMOSTAT_WORKLOAD_TRACE_HH
