#include "workload/access_pattern.hh"

#include <algorithm>

#include "common/logging.hh"

namespace thermostat
{

UniformPattern::UniformPattern(std::uint64_t span_bytes)
    : spanBytes_(span_bytes), draw_(span_bytes)
{
    TSTAT_ASSERT(span_bytes > 0, "UniformPattern: empty span");
}

std::uint64_t
UniformPattern::next(Rng &rng)
{
    return draw_(rng);
}

ZipfianPattern::ZipfianPattern(std::uint64_t span_bytes,
                               std::uint64_t object_bytes, double theta,
                               bool scatter, std::uint64_t seed)
    : spanBytes_(span_bytes),
      objectBytes_(object_bytes),
      zipf_(std::max<std::uint64_t>(1, span_bytes / object_bytes),
            theta),
      scatter_(scatter),
      perm_(std::max<std::uint64_t>(1, span_bytes / object_bytes), seed)
{
    TSTAT_ASSERT(object_bytes > 0 && span_bytes >= object_bytes,
                 "ZipfianPattern: bad geometry");
    if (objectBytes_ > 64) {
        withinDraw_ = BoundedDraw(objectBytes_ / 64);
    }
}

std::uint64_t
ZipfianPattern::slotForRank(std::uint64_t rank) const
{
    return scatter_ ? perm_.map(rank) : rank;
}

std::uint64_t
ZipfianPattern::next(Rng &rng)
{
    const std::uint64_t rank = zipf_.sample(rng);
    const std::uint64_t slot = slotForRank(rank);
    const std::uint64_t within =
        objectBytes_ <= 64 ? 0 : withinDraw_(rng) * 64;
    return std::min(slot * objectBytes_ + within, spanBytes_ - 1);
}

HotspotPattern::HotspotPattern(std::uint64_t span_bytes,
                               std::uint64_t object_bytes,
                               double hot_fraction, double hot_traffic,
                               bool scatter, std::uint64_t seed)
    : spanBytes_(span_bytes),
      objectBytes_(object_bytes),
      objectCount_(std::max<std::uint64_t>(1,
                                           span_bytes / object_bytes)),
      hotTraffic_(hot_traffic),
      scatter_(scatter),
      perm_(objectCount_, seed)
{
    TSTAT_ASSERT(hot_fraction > 0.0 && hot_fraction <= 1.0,
                 "HotspotPattern: bad hot fraction");
    TSTAT_ASSERT(hot_traffic >= 0.0 && hot_traffic <= 1.0,
                 "HotspotPattern: bad hot traffic");
    hotObjects_ = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               static_cast<double>(objectCount_) * hot_fraction));
    hotDraw_ = BoundedDraw(hotObjects_);
    anyDraw_ = BoundedDraw(objectCount_);
    if (objectBytes_ > 64) {
        withinDraw_ = BoundedDraw(objectBytes_ / 64);
    }
}

std::uint64_t
HotspotPattern::next(Rng &rng)
{
    std::uint64_t index;
    if (rng.nextBool(hotTraffic_)) {
        index = hotDraw_(rng);
    } else {
        index = anyDraw_(rng);
    }
    const std::uint64_t slot = scatter_ ? perm_.map(index) : index;
    const std::uint64_t within =
        objectBytes_ <= 64 ? 0 : withinDraw_(rng) * 64;
    return std::min(slot * objectBytes_ + within, spanBytes_ - 1);
}

SequentialScanPattern::SequentialScanPattern(std::uint64_t span_bytes,
                                             std::uint64_t stride_bytes)
    : spanBytes_(span_bytes), strideBytes_(stride_bytes)
{
    TSTAT_ASSERT(span_bytes > 0, "SequentialScanPattern: empty span");
    TSTAT_ASSERT(stride_bytes > 0,
                 "SequentialScanPattern: zero stride");
}

std::uint64_t
SequentialScanPattern::next(Rng &)
{
    const std::uint64_t offset = cursor_;
    cursor_ += strideBytes_;
    if (cursor_ >= spanBytes_) {
        cursor_ = 0;
    }
    return offset;
}

void
SequentialScanPattern::setSpanBytes(std::uint64_t bytes)
{
    spanBytes_ = bytes;
    if (cursor_ >= spanBytes_) {
        cursor_ = 0;
    }
}

RecentWindowPattern::RecentWindowPattern(std::uint64_t span_bytes,
                                         std::uint64_t window_bytes)
    : spanBytes_(span_bytes),
      windowBytes_(window_bytes),
      windowDraw_(window_bytes < span_bytes ? window_bytes
                                            : span_bytes)
{
    TSTAT_ASSERT(span_bytes > 0, "RecentWindowPattern: empty span");
    TSTAT_ASSERT(window_bytes > 0,
                 "RecentWindowPattern: empty window");
}

std::uint64_t
RecentWindowPattern::next(Rng &rng)
{
    return spanBytes_ - windowDraw_.bound() + windowDraw_(rng);
}

OffsetPattern::OffsetPattern(std::uint64_t offset_bytes,
                             std::unique_ptr<AccessPattern> inner)
    : offsetBytes_(offset_bytes), inner_(std::move(inner))
{
    TSTAT_ASSERT(inner_ != nullptr, "OffsetPattern without inner");
}

std::uint64_t
OffsetPattern::next(Rng &rng)
{
    return offsetBytes_ + inner_->next(rng);
}

std::uint64_t
OffsetPattern::spanBytes() const
{
    return offsetBytes_ + inner_->spanBytes();
}

void
OffsetPattern::setSpanBytes(std::uint64_t bytes)
{
    if (bytes > offsetBytes_) {
        inner_->setSpanBytes(bytes - offsetBytes_);
    }
}

void
OffsetPattern::advance(Ns now)
{
    inner_->advance(now);
}

PhaseShiftPattern::PhaseShiftPattern(
    std::unique_ptr<AccessPattern> inner, Ns phase_period,
    std::uint64_t shift_bytes, std::uint64_t wrap_bytes)
    : inner_(std::move(inner)),
      phasePeriod_(phase_period),
      shiftBytes_(shift_bytes),
      wrapBytes_(wrap_bytes)
{
    TSTAT_ASSERT(phasePeriod_ > 0, "PhaseShiftPattern: zero period");
    TSTAT_ASSERT(wrapBytes_ >= inner_->spanBytes(),
                 "PhaseShiftPattern: wrap smaller than inner span");
}

std::uint64_t
PhaseShiftPattern::next(Rng &rng)
{
    const std::uint64_t raw = inner_->next(rng);
    return (raw + static_cast<std::uint64_t>(phaseIndex_) *
                      shiftBytes_) %
           wrapBytes_;
}

void
PhaseShiftPattern::advance(Ns now)
{
    inner_->advance(now);
    phaseIndex_ = static_cast<unsigned>(now / phasePeriod_);
}

} // namespace thermostat
