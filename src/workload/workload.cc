#include "workload/workload.hh"

#include <algorithm>

#include "common/logging.hh"

namespace thermostat
{

ComposedWorkload::ComposedWorkload(std::string name, double mem_ref_rate,
                                   double cpu_work_fraction,
                                   Ns natural_duration)
    : name_(std::move(name)),
      memRefRate_(mem_ref_rate),
      cpuWorkFraction_(cpu_work_fraction),
      naturalDuration_(natural_duration)
{
    TSTAT_ASSERT(mem_ref_rate > 0.0, "workload with zero access rate");
    TSTAT_ASSERT(cpu_work_fraction >= 0.0 && cpu_work_fraction < 1.0,
                 "cpu work fraction must be in [0,1)");
}

void
ComposedWorkload::addRegion(const RegionSpec &spec)
{
    TSTAT_ASSERT(space_ == nullptr, "addRegion after setup");
    regionSpecs_.push_back(spec);
}

void
ComposedWorkload::addGrowth(const GrowthSpec &spec)
{
    TSTAT_ASSERT(space_ == nullptr, "addGrowth after setup");
    growthSpecs_.push_back(spec);
}

void
ComposedWorkload::addComponent(TrafficComponent component)
{
    TSTAT_ASSERT(space_ == nullptr, "addComponent after setup");
    TSTAT_ASSERT(component.pattern != nullptr,
                 "component without pattern");
    TSTAT_ASSERT(component.weight > 0.0, "component with zero weight");
    BoundComponent bound;
    bound.spec = std::move(component);
    components_.push_back(std::move(bound));
}

void
ComposedWorkload::setup(AddressSpace &space)
{
    TSTAT_ASSERT(space_ == nullptr, "setup called twice");
    space_ = &space;
    for (const RegionSpec &spec : regionSpecs_) {
        space.mapRegion(spec.name, spec.bytes, spec.reserveBytes,
                        spec.thp, spec.fileBacked);
    }
    totalWeight_ = 0.0;
    for (BoundComponent &bound : components_) {
        const Region *region = space.findRegion(bound.spec.region);
        TSTAT_ASSERT(region != nullptr,
                     "component targets unknown region '%s'",
                     bound.spec.region.c_str());
        bound.regionBase = region->base;
        bound.regionIndex = static_cast<std::size_t>(
            region - space.regions().data());
        totalWeight_ += bound.spec.weight;
        bound.cumulativeWeight = totalWeight_;
        if (bound.spec.trackGrowth) {
            bound.spec.pattern->setSpanBytes(region->mappedBytes);
        }
    }
    TSTAT_ASSERT(totalWeight_ > 0.0, "workload with no traffic");
    growthCarry_.assign(growthSpecs_.size(), 0.0);
}

void
ComposedWorkload::advance(Ns now, AddressSpace &space)
{
    TSTAT_ASSERT(space_ == &space, "advance on wrong space");
    const Ns delta = now > lastAdvance_ ? now - lastAdvance_ : 0;
    lastAdvance_ = now;

    for (std::size_t i = 0; i < growthSpecs_.size(); ++i) {
        const GrowthSpec &growth = growthSpecs_[i];
        const Region *region = space.findRegion(growth.region);
        TSTAT_ASSERT(region != nullptr, "growth for unknown region");
        double want = growth.bytesPerSec *
                          static_cast<double>(delta) /
                          static_cast<double>(kNsPerSec) +
                      growthCarry_[i];
        const std::uint64_t headroom =
            region->reservedBytes - region->mappedBytes;
        // THP regions grow in 2MB chunks (khugepaged would collapse
        // trickled 4KB growth anyway); others grow page by page.
        const std::uint64_t quantum =
            region->thp ? kPageSize2M : kPageSize4K;
        std::uint64_t grow_bytes = std::min(
            headroom,
            static_cast<std::uint64_t>(want) / quantum * quantum);
        if (grow_bytes > 0) {
            space.growRegion(growth.region, grow_bytes);
        }
        growthCarry_[i] = want - static_cast<double>(grow_bytes);
        if (headroom == 0) {
            growthCarry_[i] = 0.0;
        }
    }

    for (BoundComponent &bound : components_) {
        bound.spec.pattern->advance(now);
        if (bound.spec.trackGrowth) {
            const Region &region =
                space.regions()[bound.regionIndex];
            bound.spec.pattern->setSpanBytes(region.mappedBytes);
        }
    }
}

MemRef
ComposedWorkload::sample(Rng &rng)
{
    TSTAT_ASSERT(space_ != nullptr, "sample before setup");
    const double pick = rng.nextDouble() * totalWeight_;
    BoundComponent *chosen = &components_.back();
    for (BoundComponent &bound : components_) {
        if (pick < bound.cumulativeWeight) {
            chosen = &bound;
            break;
        }
    }
    const Region &region = space_->regions()[chosen->regionIndex];
    std::uint64_t offset = chosen->spec.pattern->next(rng);
    if (offset >= region.mappedBytes) {
        offset %= region.mappedBytes;
    }
    MemRef ref;
    ref.addr = (chosen->regionBase + offset) & ~Addr{63};
    ref.type = rng.nextBool(chosen->spec.writeFraction)
                   ? AccessType::Write
                   : AccessType::Read;
    ref.burstLines = chosen->spec.burstLines;
    return ref;
}

std::uint64_t
ComposedWorkload::initialRssBytes() const
{
    std::uint64_t bytes = 0;
    for (const RegionSpec &spec : regionSpecs_) {
        bytes += alignUp4K(spec.bytes);
    }
    return bytes;
}

std::uint64_t
ComposedWorkload::initialFileBytes() const
{
    std::uint64_t bytes = 0;
    for (const RegionSpec &spec : regionSpecs_) {
        if (spec.fileBacked) {
            bytes += alignUp4K(spec.bytes);
        }
    }
    return bytes;
}

std::vector<RegionRate>
ComposedWorkload::regionRates() const
{
    std::vector<RegionRate> rates;
    for (const RegionSpec &spec : regionSpecs_) {
        double weight = 0.0;
        for (const BoundComponent &bound : components_) {
            if (bound.spec.region == spec.name) {
                weight += bound.spec.weight;
            }
        }
        const double share =
            totalWeight_ > 0.0 ? weight / totalWeight_ : 0.0;
        rates.push_back({spec.name, share * memRefRate_});
    }
    return rates;
}

} // namespace thermostat
