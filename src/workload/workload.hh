/**
 * @file
 * Workload abstraction: an application generating a stream of memory
 * references against its address space.
 *
 * A Workload owns (i) a set of address-space regions it creates at
 * setup (matching the resident-set and file-mapped footprints of
 * Table 2), (ii) a mixture of traffic components, each directing a
 * share of references at one region through an AccessPattern, and
 * (iii) optional footprint growth over time (Cassandra memtables,
 * Spark heap).
 */

#ifndef THERMOSTAT_WORKLOAD_WORKLOAD_HH
#define THERMOSTAT_WORKLOAD_WORKLOAD_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "vm/address_space.hh"
#include "workload/access_pattern.hh"

namespace thermostat
{

/**
 * One operation-level memory reference: an access to `addr` followed
 * by `burstLines - 1` further line accesses on the same page (an
 * object read/write touches several cache lines but costs one TLB
 * event).  Rates throughout are in bursts (TLB-event-equivalents)
 * per second, matching the unit of the paper's poison-fault counters
 * and of its 30K accesses/sec budget arithmetic.
 */
struct MemRef
{
    Addr addr = 0;
    AccessType type = AccessType::Read;
    unsigned burstLines = 1;
};

/** A region the workload maps at setup. */
struct RegionSpec
{
    std::string name;
    std::uint64_t bytes = 0;
    std::uint64_t reserveBytes = 0; //!< 0 means bytes
    bool thp = true;
    bool fileBacked = false;
};

/** Linear growth of one region over time. */
struct GrowthSpec
{
    std::string region;
    double bytesPerSec = 0.0;
};

/**
 * Ground-truth access rate of one region (bursts/sec), summed over
 * the traffic components targeting it.  Only the simulator can know
 * this; the oracle policy reads it as its placement input.
 */
struct RegionRate
{
    std::string region;
    double accessesPerSec = 0.0;
};

/** One traffic component of the mixture. */
struct TrafficComponent
{
    std::string region;
    double weight = 1.0;         //!< share of total references
    double writeFraction = 0.1;  //!< P(reference is a write)
    unsigned burstLines = 4;     //!< lines touched per operation
    std::unique_ptr<AccessPattern> pattern;
    bool trackGrowth = false;    //!< span follows region growth
};

/**
 * Abstract workload interface consumed by the simulation driver.
 */
class Workload
{
  public:
    virtual ~Workload() = default;

    virtual const std::string &name() const = 0;

    /** Create regions; called once before the run. */
    virtual void setup(AddressSpace &space) = 0;

    /** Epoch boundary hook: growth and phase changes. */
    virtual void advance(Ns now, AddressSpace &space) = 0;

    /** Draw one memory reference. */
    virtual MemRef sample(Rng &rng) = 0;

    /** Burst references (TLB-event-equivalents) per second. */
    virtual double memRefRate() const = 0;

    /**
     * CPU (non-memory) time per second of baseline execution, as a
     * fraction of wall time in [0, 1).
     */
    virtual double cpuWorkFraction() const = 0;

    /** Nominal run length used by the paper's figures. */
    virtual Ns naturalDuration() const { return 1200 * kNsPerSec; }

    /**
     * True per-region access rates, when the workload can expose
     * them (oracle policies).  Default: unknown.
     */
    virtual std::vector<RegionRate> regionRates() const { return {}; }
};

/**
 * A concrete workload assembled from region specs, growth specs and
 * traffic components; all six cloud applications are instances
 * (see cloud_apps.hh).
 */
class ComposedWorkload : public Workload
{
  public:
    ComposedWorkload(std::string name, double mem_ref_rate,
                     double cpu_work_fraction, Ns natural_duration);

    /** Builder API (call before setup()). */
    void addRegion(const RegionSpec &spec);
    void addGrowth(const GrowthSpec &spec);
    void addComponent(TrafficComponent component);

    const std::string &name() const override { return name_; }
    void setup(AddressSpace &space) override;
    void advance(Ns now, AddressSpace &space) override;
    MemRef sample(Rng &rng) override;
    double memRefRate() const override { return memRefRate_; }
    double cpuWorkFraction() const override { return cpuWorkFraction_; }
    Ns naturalDuration() const override { return naturalDuration_; }

    /** Total configured initial footprint (for Table 2). */
    std::uint64_t initialRssBytes() const;
    std::uint64_t initialFileBytes() const;

    std::vector<RegionRate> regionRates() const override;

  private:
    struct BoundComponent
    {
        TrafficComponent spec;
        Addr regionBase = 0;
        std::size_t regionIndex = 0;
        double cumulativeWeight = 0.0;
    };

    std::string name_;
    double memRefRate_;
    double cpuWorkFraction_;
    Ns naturalDuration_;
    std::vector<RegionSpec> regionSpecs_;
    std::vector<GrowthSpec> growthSpecs_;
    std::vector<BoundComponent> components_;
    double totalWeight_ = 0.0;
    AddressSpace *space_ = nullptr;
    Ns lastAdvance_ = 0;
    std::vector<double> growthCarry_;
};

} // namespace thermostat

#endif // THERMOSTAT_WORKLOAD_WORKLOAD_HH
