#include "workload/trace.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <memory>

#include "common/logging.hh"

namespace thermostat
{

namespace
{

constexpr char kMagic[8] = {'T', 'S', 'T', 'A',
                            'T', 'T', 'R', '1'};

struct FileCloser
{
    void
    operator()(std::FILE *file) const
    {
        if (file) {
            std::fclose(file);
        }
    }
};

using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

/** Fixed-size header; strings are written separately. */
struct TraceHeader
{
    char magic[8];
    std::uint32_t regionCount;
    std::uint32_t nameLength;
    std::uint64_t entryCount;
    double memRefRate;
    double cpuWorkFraction;
    std::uint64_t naturalDurationNs;
};

/** On-disk region record (name written separately). */
struct RegionRecord
{
    std::uint64_t bytes;
    std::uint64_t reserveBytes;
    std::uint32_t nameLength;
    std::uint8_t thp;
    std::uint8_t fileBacked;
    std::uint8_t pad[2];
};

bool
writeString(std::FILE *file, const std::string &s)
{
    return std::fwrite(s.data(), 1, s.size(), file) == s.size();
}

bool
readString(std::FILE *file, std::uint32_t length, std::string *out)
{
    out->resize(length);
    return std::fread(out->data(), 1, length, file) == length;
}

} // namespace

RecordingWorkload::RecordingWorkload(std::unique_ptr<Workload> inner)
    : inner_(std::move(inner))
{
    TSTAT_ASSERT(inner_ != nullptr, "RecordingWorkload without inner");
}

const std::string &
RecordingWorkload::name() const
{
    return inner_->name();
}

void
RecordingWorkload::setup(AddressSpace &space)
{
    inner_->setup(space);
    // Snapshot the region layout for the trace header so replay can
    // recreate the identical address space.
    regions_.clear();
    for (const Region &region : space.regions()) {
        RegionSpec spec;
        spec.name = region.name;
        spec.bytes = region.mappedBytes;
        spec.reserveBytes = region.reservedBytes;
        spec.thp = region.thp;
        spec.fileBacked = region.fileBacked;
        regions_.push_back(spec);
    }
}

void
RecordingWorkload::advance(Ns now, AddressSpace &space)
{
    inner_->advance(now, space);
}

MemRef
RecordingWorkload::sample(Rng &rng)
{
    const MemRef ref = inner_->sample(rng);
    TraceEntry entry;
    entry.addr = ref.addr;
    entry.burstLines = static_cast<std::uint16_t>(ref.burstLines);
    entry.isWrite = ref.type == AccessType::Write ? 1 : 0;
    entries_.push_back(entry);
    return ref;
}

double
RecordingWorkload::memRefRate() const
{
    return inner_->memRefRate();
}

double
RecordingWorkload::cpuWorkFraction() const
{
    return inner_->cpuWorkFraction();
}

Ns
RecordingWorkload::naturalDuration() const
{
    return inner_->naturalDuration();
}

bool
RecordingWorkload::save(const std::string &path) const
{
    FilePtr file(std::fopen(path.c_str(), "wb"));
    if (!file) {
        TSTAT_WARN("trace save: cannot open %s", path.c_str());
        return false;
    }
    TraceHeader header{};
    std::memcpy(header.magic, kMagic, sizeof(kMagic));
    header.regionCount =
        static_cast<std::uint32_t>(regions_.size());
    header.nameLength =
        static_cast<std::uint32_t>(inner_->name().size());
    header.entryCount = entries_.size();
    header.memRefRate = inner_->memRefRate();
    header.cpuWorkFraction = inner_->cpuWorkFraction();
    header.naturalDurationNs = inner_->naturalDuration();
    if (std::fwrite(&header, sizeof(header), 1, file.get()) != 1 ||
        !writeString(file.get(), inner_->name())) {
        return false;
    }
    for (const RegionSpec &spec : regions_) {
        RegionRecord record{};
        record.bytes = spec.bytes;
        record.reserveBytes = spec.reserveBytes;
        record.nameLength =
            static_cast<std::uint32_t>(spec.name.size());
        record.thp = spec.thp ? 1 : 0;
        record.fileBacked = spec.fileBacked ? 1 : 0;
        if (std::fwrite(&record, sizeof(record), 1, file.get()) !=
                1 ||
            !writeString(file.get(), spec.name)) {
            return false;
        }
    }
    if (!entries_.empty() &&
        std::fwrite(entries_.data(), sizeof(TraceEntry),
                    entries_.size(),
                    file.get()) != entries_.size()) {
        return false;
    }
    return true;
}

namespace
{

/** Build the diagnostic, warn, and hand it to the caller. */
void
loadError(std::string *error, const std::string &path,
          const std::string &reason)
{
    const std::string message =
        "trace load: " + reason + " in " + path;
    TSTAT_WARN("%s", message.c_str());
    if (error != nullptr) {
        *error = message;
    }
}

} // namespace

std::unique_ptr<TraceWorkload>
TraceWorkload::load(const std::string &path, std::string *error)
{
    errno = 0;
    FilePtr file(std::fopen(path.c_str(), "rb"));
    if (!file) {
        loadError(error, path,
                  std::string("cannot open (errno ") +
                      std::to_string(errno) + ", " +
                      std::strerror(errno) + ")");
        return nullptr;
    }
    TraceHeader header{};
    if (std::fread(&header, sizeof(header), 1, file.get()) != 1 ||
        std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
        loadError(error, path, "bad header");
        return nullptr;
    }
    auto trace = std::unique_ptr<TraceWorkload>(new TraceWorkload());
    if (!readString(file.get(), header.nameLength, &trace->name_)) {
        loadError(error, path, "truncated workload name");
        return nullptr;
    }
    trace->memRefRate_ = header.memRefRate;
    trace->cpuWorkFraction_ = header.cpuWorkFraction;
    trace->naturalDuration_ = header.naturalDurationNs;
    for (std::uint32_t i = 0; i < header.regionCount; ++i) {
        RegionRecord record{};
        RegionSpec spec;
        if (std::fread(&record, sizeof(record), 1, file.get()) !=
                1 ||
            !readString(file.get(), record.nameLength,
                        &spec.name)) {
            loadError(error, path, "truncated region record");
            return nullptr;
        }
        spec.bytes = record.bytes;
        spec.reserveBytes = record.reserveBytes;
        spec.thp = record.thp != 0;
        spec.fileBacked = record.fileBacked != 0;
        trace->regions_.push_back(spec);
    }
    trace->entries_.resize(header.entryCount);
    if (header.entryCount != 0 &&
        std::fread(trace->entries_.data(), sizeof(TraceEntry),
                   trace->entries_.size(),
                   file.get()) != trace->entries_.size()) {
        loadError(error, path, "truncated entries");
        return nullptr;
    }
    return trace;
}

void
TraceWorkload::setup(AddressSpace &space)
{
    // Recreate the recorded layout; bump allocation makes the bases
    // identical, so recorded absolute addresses remain valid.
    for (const RegionSpec &spec : regions_) {
        space.mapRegion(spec.name, spec.bytes, spec.reserveBytes,
                        spec.thp, spec.fileBacked);
    }
}

void
TraceWorkload::advance(Ns now, AddressSpace &space)
{
    (void)now;
    (void)space;
}

MemRef
TraceWorkload::sample(Rng &rng)
{
    (void)rng;
    TSTAT_ASSERT(!entries_.empty(), "empty trace");
    const TraceEntry &entry = entries_[cursor_];
    cursor_ = (cursor_ + 1) % entries_.size();
    MemRef ref;
    ref.addr = entry.addr;
    ref.burstLines = entry.burstLines;
    ref.type = entry.isWrite ? AccessType::Write : AccessType::Read;
    return ref;
}

} // namespace thermostat
