#include "workload/cloud_apps.hh"

#include "common/logging.hh"

namespace thermostat
{

namespace
{

/** Traffic share so a zone's aggregate rate is @p rate bursts/sec. */
double
weightForRate(double rate, double total_rate)
{
    return rate / total_rate;
}

/** Add a component over a whole region. */
void
addZone(ComposedWorkload &w, const std::string &region, double weight,
        double write_fraction, std::unique_ptr<AccessPattern> pattern,
        unsigned burst_lines = 4)
{
    TrafficComponent component;
    component.region = region;
    component.weight = weight;
    component.writeFraction = write_fraction;
    component.burstLines = burst_lines;
    component.pattern = std::move(pattern);
    w.addComponent(std::move(component));
}

/** Add a component confined to the slice [lo, lo+inner span). */
void
addSlice(ComposedWorkload &w, const std::string &region, double weight,
         double write_fraction, std::uint64_t lo_bytes,
         std::unique_ptr<AccessPattern> inner,
         unsigned burst_lines = 4)
{
    addZone(w, region, weight, write_fraction,
            std::make_unique<OffsetPattern>(lo_bytes,
                                            std::move(inner)),
            burst_lines);
}

/** Fraction of a byte count, 2MB aligned. */
std::uint64_t
frac(std::uint64_t bytes, double f)
{
    return alignDown2M(static_cast<std::uint64_t>(
        static_cast<double>(bytes) * f));
}

} // namespace

std::unique_ptr<ComposedWorkload>
makeAerospike(YcsbMix mix, std::uint64_t seed)
{
    // 12.3GB RSS, 5MB file (Table 2).  Hash-indexed store: hot and
    // warm zones scatter popularity across their pages, so per-page
    // rates stay well above the placement budget; a small lukewarm
    // zone is classifiable by rate but rarely idle, and ~10% is
    // expired/overprovisioned data that is truly idle.  Cold total
    // at a 3% target: ~15% (Fig 7), growing gently with the budget
    // (Fig 11).
    const std::uint64_t rss = 12'600_MiB;
    const double rate = 1.2e6;
    const double write_frac = mix == YcsbMix::ReadHeavy ? 0.05 : 0.95;
    auto w = std::make_unique<ComposedWorkload>(
        "aerospike", rate, 0.445, 1200 * kNsPerSec);
    w->addRegion({"data", rss, 0, true, false});
    w->addRegion({"conf", 5_MiB, 0, false, true});

    // Hot zone [0, 55%): ~230 bursts/s per 2MB page.
    addSlice(*w, "data", 0.666, write_frac, 0,
             std::make_unique<ZipfianPattern>(frac(rss, 0.55), 1024,
                                              0.60, true, seed),
             8);
    // Warm zone [55%, 85%): ~190 bursts/s per page.
    addSlice(*w, "data", 0.30, write_frac, frac(rss, 0.55),
             std::make_unique<ZipfianPattern>(frac(rss, 0.30), 1024,
                                              0.75, true, seed + 1),
             8);
    // Lukewarm zone [85%, 90%): ~7K bursts/s aggregate (~22/s per
    // page): cheap to place, not idle.
    addSlice(*w, "data", weightForRate(7000.0, rate), write_frac,
             frac(rss, 0.85),
             std::make_unique<UniformPattern>(frac(rss, 0.05)));
    // [90%, 100%): untouched (idle).
    addZone(*w, "conf", 0.0005, 0.0,
            std::make_unique<UniformPattern>(5_MiB));
    return w;
}

std::unique_ptr<ComposedWorkload>
makeCassandra(YcsbMix mix, std::uint64_t seed)
{
    // 8GB RSS + 4GB file-mapped SSTables (Table 2).  The memtable
    // grows until flush; old-generation heap is effectively idle;
    // SSTable reads have strong recency skew (recent tables hot,
    // old tables cold).  Cold total: 40-50% (Fig 5), rising with
    // larger budgets as deeper SSTable history fits (Fig 11).
    const double rate = 1.5e6;
    const double write_frac = mix == YcsbMix::WriteHeavy ? 0.95 : 0.05;
    auto w = std::make_unique<ComposedWorkload>(
        "cassandra", rate, 0.498, 1400 * kNsPerSec);
    const std::uint64_t heap = 2'800_MiB;
    const std::uint64_t sst = 4'096_MiB;
    w->addRegion({"heap", heap, 0, true, false});
    w->addRegion({"memtable", 1'200_MiB, 3'584_MiB, true, false});
    w->addRegion({"sstables", sst, 0, true, true});
    // Memtable fills at ~1.3MB/s over the run.
    w->addGrowth({"memtable", 1.3e6});

    // Hot heap [0, 45%): key cache, row cache, young generation.
    addSlice(*w, "heap", 0.47, 0.3, 0,
             std::make_unique<ZipfianPattern>(frac(heap, 0.45), 512,
                                              0.70, true, seed));
    // Old generation [45%, 100%): occasional GC touch, mostly idle.
    addSlice(*w, "heap", weightForRate(300.0, rate), 0.0,
             frac(heap, 0.45),
             std::make_unique<ZipfianPattern>(frac(heap, 0.55),
                                              kPageSize4K, 0.90,
                                              false, seed + 3));
    // Memtable: writes land in the most recent ~600MB; flushed
    // segments behind the window go cold, which is where much of
    // Fig 5's growing cold fraction comes from.
    {
        TrafficComponent c;
        c.region = "memtable";
        c.weight = 0.23;
        c.writeFraction = write_frac;
        c.burstLines = 8;
        c.pattern = std::make_unique<RecentWindowPattern>(
            1'200_MiB, 600_MiB);
        c.trackGrowth = true;
        w->addComponent(std::move(c));
    }
    // SSTable reads: recency-skewed (recent tables at low offsets);
    // the Zipf gradient decides how deep the budget reaches.
    addZone(*w, "sstables", 0.2995, 0.0,
            std::make_unique<ZipfianPattern>(sst, 64_KiB, 0.92,
                                             false, seed + 1),
            8);
    // Background compaction touch of old SSTables: rare.
    addZone(*w, "sstables", weightForRate(100.0, rate), 0.0,
            std::make_unique<SequentialScanPattern>(sst, kPageSize4K));
    return w;
}

std::unique_ptr<ComposedWorkload>
makeMysqlTpcc(std::uint64_t seed)
{
    // 6GB RSS + 3.5GB file-mapped page cache (Table 2).  The large
    // history-style table is written once and rarely read and the
    // cold half of the page cache never cycles, so ~45% of the
    // footprint is cold; the rest is hot enough that the cold
    // fraction saturates near 45-50% even at 10% tolerable slowdown
    // (Fig 6, Fig 11).
    const double rate = 2.0e6;
    auto w = std::make_unique<ComposedWorkload>(
        "mysql-tpcc", rate, 0.579, 1400 * kNsPerSec);
    const std::uint64_t pool = 2'560_MiB;
    const std::uint64_t cache = 3'584_MiB;
    w->addRegion({"buffer-pool", pool, 0, true, false});
    w->addRegion({"page-cache", cache, 0, true, true});

    // Hot tables [0, 40%): WAREHOUSE/DISTRICT/CUSTOMER working set,
    // ~1300 bursts/s per page.
    addSlice(*w, "buffer-pool", 0.80, 0.35, 0,
             std::make_unique<ZipfianPattern>(frac(pool, 0.40), 4096,
                                              0.65, true, seed));
    // Warm zone [40%, 55%): STOCK/ORDER-LINE recent rows, ~870
    // bursts/s per page; absorbs little budget even at 10%.
    addSlice(*w, "buffer-pool", 0.20, 0.25, frac(pool, 0.40),
             std::make_unique<ZipfianPattern>(frac(pool, 0.15), 4096,
                                              0.80, true, seed + 1));
    // Cold history [55%, 100%): written once, essentially never
    // read again (tiny residual rate).
    addSlice(*w, "buffer-pool", weightForRate(30.0, rate), 0.8,
             frac(pool, 0.55),
             std::make_unique<UniformPattern>(frac(pool, 0.45)));
    // Page cache: hot log/doublewrite head over the first 60%,
    // warm enough that the budget cannot absorb it.
    addSlice(*w, "page-cache", 0.10, 0.9, 0,
             std::make_unique<ZipfianPattern>(frac(cache, 0.60),
                                              64_KiB, 0.60, false,
                                              seed + 2),
             8);
    addSlice(*w, "page-cache", weightForRate(20.0, rate), 0.0,
             frac(cache, 0.60),
             std::make_unique<UniformPattern>(frac(cache, 0.40)));
    return w;
}

namespace
{

std::unique_ptr<ComposedWorkload>
makeRedisImpl(std::uint64_t seed, double rotation_weight)
{
    // 17.2GB RSS (Table 2).  Hotspot load: 0.01% of keys get ~90%
    // of traffic, scattered across the address space by the hash
    // table; a uniform probe floor keeps nearly every page warm
    // enough that only ~10% is placeable (Fig 8).  A rotating warm
    // slice is idle to Accessed-bit scans between visits yet hot
    // over the long run: the Fig 1 ">10% degradation" trap, and a
    // source of ongoing correction traffic (Table 3).
    const std::uint64_t rss = 17'600_MiB;
    const double rate = 800.0e3;
    auto w = std::make_unique<ComposedWorkload>(
        "redis", rate, 0.74, 2000 * kNsPerSec);
    w->addRegion({"heap", rss, 0, true, false});
    w->addRegion({"aof", 1_MiB, 0, false, true});

    // The hotspot: 0.01% of 1KB objects, most of the key traffic.
    addZone(*w, "heap", 0.70, 0.10,
            std::make_unique<HotspotPattern>(rss, 1024, 1.0e-4, 1.0,
                                             true, seed),
            8);
    // Hash-table probe floor over [0, 96%): ~36 bursts/s per page,
    // too expensive to place within the budget.
    addSlice(*w, "heap", 0.38, 0.10, 0,
             std::make_unique<UniformPattern>(frac(rss, 0.96)));
    // Rotating warm set over [86%, 98%): a 4-slot window out of 32
    // slides one slot every 30s.  A page is active for ~2 minutes,
    // then idle for ~14: long enough that Accessed-bit scans call
    // it idle (and a naive idle-page policy eats the full zone
    // rate), while Thermostat's per-period correction promotes the
    // newly-hot slot quickly, bounding the overshoot.
    {
        const std::uint64_t slice = frac(rss, 0.03);
        auto inner = std::make_unique<ZipfianPattern>(
            slice / 8, 1024, 0.60, true, seed + 1);
        auto rotating = std::make_unique<PhaseShiftPattern>(
            std::move(inner), 30 * kNsPerSec, slice / 32, slice);
        addSlice(*w, "heap", rotation_weight, 0.10, frac(rss, 0.96),
                 std::move(rotating), 8);
    }
    // Allocation tail [99%, 100%): mostly-idle old values.
    addSlice(*w, "heap", weightForRate(500.0, rate), 0.10,
             frac(rss, 0.99),
             std::make_unique<UniformPattern>(frac(rss, 0.01)));
    addZone(*w, "aof", 0.0001, 1.0,
            std::make_unique<SequentialScanPattern>(1_MiB, 64));
    return w;
}

} // namespace

std::unique_ptr<ComposedWorkload>
makeRedis(std::uint64_t seed)
{
    return makeRedisImpl(seed, 0.016);
}

std::unique_ptr<ComposedWorkload>
makeRedisBursty(std::uint64_t seed)
{
    return makeRedisImpl(seed, 0.17);
}

std::unique_ptr<ComposedWorkload>
makeInMemAnalytics(std::uint64_t seed)
{
    // 6.2GB peak heap over a 317s run (Table 2, Fig 9): the rating
    // matrix is scanned, the factor matrices are hot, and the heap
    // grows as Spark materializes RDDs; grown pages are unread, so
    // the cold fraction rises over the run to 15-20%.
    const double rate = 1.5e6;
    auto w = std::make_unique<ComposedWorkload>(
        "in-memory-analytics", rate, 0.677, 317 * kNsPerSec);
    const std::uint64_t heap0 = 4'400_MiB;
    w->addRegion({"heap", heap0, 5'400_MiB, true, false});
    // Materialized-but-rarely-read RDD partitions accumulate here.
    w->addRegion({"rdd-cache", 64_MiB, 1'536_MiB, true, false});
    w->addRegion({"spark-conf", 1_MiB, 0, false, true});
    // Heap grows ~2.6MB/s (read by later iterations); the RDD cache
    // grows ~3.2MB/s and stays cold.
    w->addGrowth({"heap", 2.6e6});
    w->addGrowth({"rdd-cache", 3.2e6});

    // Hot factor matrices and shuffle buffers [0, 25%).
    addSlice(*w, "heap", 0.80, 0.40, 0,
             std::make_unique<ZipfianPattern>(frac(heap0, 0.25), 4096,
                                              0.60, true, seed));
    // Rating-matrix scan over [25%, 100%) of the *current* heap:
    // grown heap pages are read by later iterations.
    {
        TrafficComponent c;
        c.region = "heap";
        c.weight = 0.1985;
        c.writeFraction = 0.05;
        c.burstLines = 4;
        // A 1KB stride makes one full sweep take ~15s, inside the
        // profiling window, so scanned pages are visibly warm and
        // never mis-placed (their re-scan would blow the budget).
        c.pattern = std::make_unique<OffsetPattern>(
            frac(heap0, 0.25),
            std::make_unique<SequentialScanPattern>(
                frac(heap0, 0.75), 1024));
        c.trackGrowth = true;
        w->addComponent(std::move(c));
    }
    // The RDD cache is written once and essentially never read.
    addZone(*w, "rdd-cache", weightForRate(20.0, rate), 0.9,
            std::make_unique<UniformPattern>(64_MiB));
    addZone(*w, "spark-conf", 0.0001, 0.0,
            std::make_unique<UniformPattern>(1_MiB));
    return w;
}

std::unique_ptr<ComposedWorkload>
makeWebSearch(std::uint64_t seed)
{
    // 2.28GB RSS + 86MB file (Table 2).  A small LLC-resident hot
    // set plus a warm posting-list zone hot enough to resist
    // placement, so the cold fraction stops at the ~40% idle index
    // tail with <1% degradation (Fig 10); low TLB pressure means
    // huge pages do not measurably help (Table 1).
    const double rate = 600.0e3;
    auto w = std::make_unique<ComposedWorkload>(
        "web-search", rate, 0.553, 600 * kNsPerSec);
    const std::uint64_t index = 2'250_MiB;
    w->addRegion({"index", index, 0, true, false});
    w->addRegion({"segments", 86_MiB, 0, true, true});

    // Hot query caches and dictionary [0, 1.5%): ~35MB, cacheable.
    addSlice(*w, "index", 0.35, 0.05, 0,
             std::make_unique<ZipfianPattern>(frac(index, 0.015),
                                              4096, 0.70, true, seed),
             16);
    // Warm posting lists [1.5%, 60%): ~270 bursts/s per page.
    addSlice(*w, "index", 0.6185, 0.02, frac(index, 0.015),
             std::make_unique<ZipfianPattern>(frac(index, 0.585),
                                              4096, 0.50, true,
                                              seed + 1),
             16);
    // Cold tail [60%, 100%): rarely-queried terms; idle.
    addSlice(*w, "index", weightForRate(15.0, rate), 0.0,
             frac(index, 0.60),
             std::make_unique<UniformPattern>(frac(index, 0.40)));
    addZone(*w, "segments", 0.0015, 0.0,
            std::make_unique<ZipfianPattern>(86_MiB, 64_KiB, 0.80,
                                             false, seed + 2));
    return w;
}

const std::vector<std::string> &
allWorkloadNames()
{
    static const std::vector<std::string> names = {
        "aerospike",    "cassandra", "in-memory-analytics",
        "mysql-tpcc",   "redis",     "web-search",
    };
    return names;
}

bool
isWorkloadName(const std::string &name)
{
    if (name == "redis-bursty") {
        return true;
    }
    for (const std::string &known : allWorkloadNames()) {
        if (name == known) {
            return true;
        }
    }
    return false;
}

std::unique_ptr<ComposedWorkload>
makeWorkload(const std::string &name, std::uint64_t seed)
{
    if (name == "aerospike") {
        return makeAerospike(YcsbMix::ReadHeavy, seed);
    }
    if (name == "cassandra") {
        return makeCassandra(YcsbMix::WriteHeavy, seed);
    }
    if (name == "mysql-tpcc") {
        return makeMysqlTpcc(seed);
    }
    if (name == "redis") {
        return makeRedis(seed);
    }
    if (name == "in-memory-analytics") {
        return makeInMemAnalytics(seed);
    }
    if (name == "web-search") {
        return makeWebSearch(seed);
    }
    TSTAT_FATAL("unknown workload '%s'", name.c_str());
}

} // namespace thermostat
