/**
 * @file
 * Hardware page table walker cost model.
 *
 * Captures the paper's Sec 2.2 arithmetic: a native walk touches up
 * to 4 page-table levels; under virtualization the two-dimensional
 * (nested/extended paging) walk costs up to 24 memory accesses for a
 * 4KB mapping and 15 when both guest and host use 2MB pages.  Upper
 * levels are highly cacheable, so each step costs a configurable
 * fraction of a DRAM access.
 */

#ifndef THERMOSTAT_VM_PAGE_WALKER_HH
#define THERMOSTAT_VM_PAGE_WALKER_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "vm/page_table.hh"

namespace thermostat
{

class MetricRegistry;

/** Whether walks are native or two-dimensional (nested paging). */
enum class PagingMode : std::uint8_t { Native, Nested };

/** Static walker parameters. */
struct WalkerConfig
{
    PagingMode mode = PagingMode::Nested;

    /**
     * Worst-case memory accesses per walk, by mode and leaf size
     * (paper Sec 2.2: 4 native, 24 nested 4KB, 15 nested 2MB).
     */
    unsigned native4KAccesses = 4;
    unsigned native2MAccesses = 3;
    unsigned nested4KAccesses = 24;
    unsigned nested2MAccesses = 15;

    /**
     * Fraction of a raw DRAM access actually paid per walk step;
     * models page-walk caches and the better cacheability of 2MB
     * page tables ("fewer total entries compete for cache capacity").
     */
    double walkCacheFactor4K = 0.45;
    double walkCacheFactor2M = 0.35;

    /** Latency of one uncached page-table memory access. */
    Ns tableAccessLatency = 80;
};

/** Walker statistics. */
struct WalkerStats
{
    Count walks4K = 0;
    Count walks2M = 0;
    Count tableAccesses = 0;
    Ns totalWalkTime = 0;
};

/** Outcome of one hardware walk. */
struct WalkOutcome
{
    WalkResult result;        //!< leaf (or unmapped)
    Ns latency = 0;           //!< time spent walking
    unsigned accesses = 0;    //!< memory accesses performed
};

/**
 * The walker: resolves a virtual address against a PageTable,
 * charging the mode-dependent walk cost and maintaining the
 * hardware Accessed/Dirty bits in the leaf.
 */
class PageWalker
{
  public:
    explicit PageWalker(const WalkerConfig &config = {});

    const WalkerConfig &config() const { return config_; }
    const WalkerStats &stats() const { return stats_; }

    /** Memory accesses for a walk ending at a leaf of given size. */
    unsigned walkAccesses(bool huge) const { return accesses_[huge]; }

    /** Latency of a full walk ending at a leaf of given size. */
    Ns walkLatency(bool huge) const { return latency_[huge]; }

    /**
     * Perform a walk: resolve @p vaddr in @p table, set the leaf's
     * Accessed bit (and Dirty for writes), and account the cost.
     * Poison is *not* interpreted here; the MMU layer raises the
     * fault, mirroring hardware (reserved-bit check happens when the
     * walker loads the leaf).  Defined inline below: one call per
     * TLB miss.
     */
    WalkOutcome walk(PageTable &table, Addr vaddr, AccessType type);

    void resetStats() { stats_ = WalkerStats(); }

    /** Expose the counters under "<prefix>." in @p registry. */
    void registerMetrics(MetricRegistry &registry,
                         const std::string &prefix) const;

  private:
    WalkerConfig config_; // shard: read-only
    WalkerStats stats_; // shard: lane-local
    Ns latency_[2]; //!< [huge] walk latency, fixed at construction
    unsigned accesses_[2]; //!< [huge] accesses per walk
};

inline WalkOutcome
PageWalker::walk(PageTable &table, Addr vaddr, AccessType type)
{
    WalkOutcome out;
    out.result = table.walk(vaddr);
    const bool huge = out.result.huge;
    out.accesses = walkAccesses(huge);
    out.latency = walkLatency(huge);

    if (out.result.mapped()) {
        out.result.pte->setAccessed();
        if (type == AccessType::Write) {
            out.result.pte->setDirty();
        }
        if (huge) {
            ++stats_.walks2M;
        } else {
            ++stats_.walks4K;
        }
    } else {
        // Walk aborted partway; charge the 4KB-depth cost anyway.
        ++stats_.walks4K;
    }
    stats_.tableAccesses += out.accesses;
    stats_.totalWalkTime += out.latency;
    return out;
}

} // namespace thermostat

#endif // THERMOSTAT_VM_PAGE_WALKER_HH
