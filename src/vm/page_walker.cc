#include "vm/page_walker.hh"

#include "obs/metrics.hh"

#include <cmath>

namespace thermostat
{

PageWalker::PageWalker(const WalkerConfig &config)
    : config_(config)
{
    // The cost model is pure config arithmetic; evaluate it once so
    // walks pay a table load instead of floating-point math.
    for (const bool huge : {false, true}) {
        const bool native = config_.mode == PagingMode::Native;
        accesses_[huge] =
            native ? (huge ? config_.native2MAccesses
                           : config_.native4KAccesses)
                   : (huge ? config_.nested2MAccesses
                           : config_.nested4KAccesses);
        const double factor = huge ? config_.walkCacheFactor2M
                                   : config_.walkCacheFactor4K;
        latency_[huge] = static_cast<Ns>(std::llround(
            static_cast<double>(accesses_[huge]) * factor *
            static_cast<double>(config_.tableAccessLatency)));
    }
}

void
PageWalker::registerMetrics(MetricRegistry &registry,
                            const std::string &prefix) const
{
    registry.addCallback(prefix + ".walks_4k", [this] {
        return static_cast<double>(stats_.walks4K);
    });
    registry.addCallback(prefix + ".walks_2m", [this] {
        return static_cast<double>(stats_.walks2M);
    });
    registry.addCallback(prefix + ".table_accesses", [this] {
        return static_cast<double>(stats_.tableAccesses);
    });
    registry.addCallback(prefix + ".total_walk_ns", [this] {
        return static_cast<double>(stats_.totalWalkTime);
    });
}

} // namespace thermostat
