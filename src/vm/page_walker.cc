#include "vm/page_walker.hh"

#include "obs/metrics.hh"

#include <cmath>

namespace thermostat
{

PageWalker::PageWalker(const WalkerConfig &config)
    : config_(config)
{
}

unsigned
PageWalker::walkAccesses(bool huge) const
{
    if (config_.mode == PagingMode::Native) {
        return huge ? config_.native2MAccesses
                    : config_.native4KAccesses;
    }
    return huge ? config_.nested2MAccesses : config_.nested4KAccesses;
}

Ns
PageWalker::walkLatency(bool huge) const
{
    const double factor = huge ? config_.walkCacheFactor2M
                               : config_.walkCacheFactor4K;
    const double cost = static_cast<double>(walkAccesses(huge)) *
                        factor *
                        static_cast<double>(config_.tableAccessLatency);
    return static_cast<Ns>(std::llround(cost));
}

WalkOutcome
PageWalker::walk(PageTable &table, Addr vaddr, AccessType type)
{
    WalkOutcome out;
    out.result = table.walk(vaddr);
    const bool huge = out.result.huge;
    out.accesses = walkAccesses(huge);
    out.latency = walkLatency(huge);

    if (out.result.mapped()) {
        out.result.pte->setAccessed();
        if (type == AccessType::Write) {
            out.result.pte->setDirty();
        }
        if (huge) {
            ++stats_.walks2M;
        } else {
            ++stats_.walks4K;
        }
    } else {
        // Walk aborted partway; charge the 4KB-depth cost anyway.
        ++stats_.walks4K;
    }
    stats_.tableAccesses += out.accesses;
    stats_.totalWalkTime += out.latency;
    return out;
}

void
PageWalker::registerMetrics(MetricRegistry &registry,
                            const std::string &prefix) const
{
    registry.addCallback(prefix + ".walks_4k", [this] {
        return static_cast<double>(stats_.walks4K);
    });
    registry.addCallback(prefix + ".walks_2m", [this] {
        return static_cast<double>(stats_.walks2M);
    });
    registry.addCallback(prefix + ".table_accesses", [this] {
        return static_cast<double>(stats_.tableAccesses);
    });
    registry.addCallback(prefix + ".total_walk_ns", [this] {
        return static_cast<double>(stats_.totalWalkTime);
    });
}

} // namespace thermostat
