#include "vm/address_space.hh"

#include "common/logging.hh"

namespace thermostat
{

AddressSpace::AddressSpace(TieredMemory &memory, bool thp_enabled,
                           Addr base)
    : memory_(memory), thpEnabled_(thp_enabled),
      nextBase_(base != 0 ? base : kFirstRegionBase)
{
    TSTAT_ASSERT((nextBase_ & (kPageSize2M - 1)) == 0,
                 "address-space base must be 2MB aligned");
}

AddressSpace::~AddressSpace()
{
    // Release all backing frames so the TieredMemory can be reused.
    pageTable_.forEachLeaf([this](Addr, Pte &pte, bool huge) {
        if (huge) {
            memory_.freeHuge(pte.pfn());
        } else {
            memory_.freeBase(pte.pfn());
        }
    });
}

Addr
AddressSpace::mapRegion(const std::string &name, std::uint64_t bytes,
                        std::uint64_t reserve_bytes, bool thp,
                        bool file_backed)
{
    TSTAT_ASSERT(findRegion(name) == nullptr,
                 "duplicate region name '%s'", name.c_str());
    bytes = alignUp4K(bytes);
    reserve_bytes = alignUp2M(std::max(reserve_bytes, bytes));

    Region region;
    region.name = name;
    region.base = nextBase_;
    region.mappedBytes = 0;
    region.reservedBytes = reserve_bytes;
    region.thp = thp;
    region.fileBacked = file_backed;
    regions_.push_back(region);
    nextBase_ += reserve_bytes + kPageSize2M; // guard gap

    populate(regions_.back(), regions_.back().base, bytes);
    return regions_.back().base;
}

void
AddressSpace::growRegion(const std::string &name, std::uint64_t bytes)
{
    for (auto &region : regions_) {
        if (region.name != name) {
            continue;
        }
        bytes = alignUp4K(bytes);
        if (region.mappedBytes + bytes > region.reservedBytes) {
            TSTAT_FATAL("region '%s' growth exceeds reservation",
                        name.c_str());
        }
        const Addr start = region.base + region.mappedBytes;
        populate(region, start, bytes);
        return;
    }
    TSTAT_FATAL("growRegion: unknown region '%s'", name.c_str());
}

const Region *
AddressSpace::findRegion(const std::string &name) const
{
    for (const auto &region : regions_) {
        if (region.name == name) {
            return &region;
        }
    }
    return nullptr;
}

void
AddressSpace::populate(Region &region, Addr start, std::uint64_t bytes)
{
    Addr addr = start;
    const Addr end = start + bytes;
    while (addr < end) {
        const bool can_huge = thpEnabled_ && region.thp &&
                              addr % kPageSize2M == 0 &&
                              end - addr >= kPageSize2M;
        if (can_huge) {
            const auto pfn = memory_.allocHuge(Tier::Fast);
            if (!pfn) {
                TSTAT_FATAL("fast tier exhausted mapping '%s'",
                            region.name.c_str());
            }
            pageTable_.map2M(addr, *pfn);
            addr += kPageSize2M;
        } else {
            const auto pfn = memory_.allocBase(Tier::Fast);
            if (!pfn) {
                TSTAT_FATAL("fast tier exhausted mapping '%s'",
                            region.name.c_str());
            }
            pageTable_.map4K(addr, *pfn);
            addr += kPageSize4K;
        }
    }
    region.mappedBytes += bytes;
    rssBytes_ += bytes;
    if (region.fileBacked) {
        fileBytes_ += bytes;
    }
}

std::vector<Addr>
AddressSpace::hugePageAddrs()
{
    std::vector<Addr> out;
    out.reserve(pageTable_.hugeLeafCount());
    pageTable_.forEachLeaf([&out](Addr vaddr, Pte &, bool huge) {
        if (huge) {
            out.push_back(vaddr);
        }
    });
    return out;
}

bool
AddressSpace::splitHuge(Addr vaddr)
{
    WalkResult wr = pageTable_.walk(vaddr);
    if (!wr.mapped() || !wr.huge) {
        return false;
    }
    const Pfn base = wr.pte->pfn();
    const bool ok = pageTable_.split(vaddr);
    TSTAT_ASSERT(ok, "split failed after successful walk");
    memory_.tier(memory_.tierOf(base))
        .allocator()
        .breakAllocatedHuge(base);
    return true;
}

bool
AddressSpace::collapseHuge(Addr vaddr)
{
    if (!pageTable_.collapse(vaddr)) {
        return false;
    }
    WalkResult wr = pageTable_.walk(vaddr);
    TSTAT_ASSERT(wr.mapped() && wr.huge, "collapse left no huge leaf");
    const Pfn base = wr.pte->pfn();
    const bool reformed = memory_.tier(memory_.tierOf(base))
                              .allocator()
                              .reformAllocatedHuge(base);
    TSTAT_ASSERT(reformed, "allocator block not reformable");
    return true;
}

void
AddressSpace::remapLeaf(Addr vaddr, Pfn new_pfn)
{
    WalkResult wr = pageTable_.walk(vaddr);
    TSTAT_ASSERT(wr.mapped(), "remapLeaf: unmapped vaddr");
    if (wr.huge) {
        TSTAT_ASSERT(new_pfn % kSubpagesPerHuge == 0,
                     "remapLeaf: unaligned huge frame");
    }
    wr.pte->setPfn(new_pfn);
}

std::optional<Tier>
AddressSpace::tierOf(Addr vaddr)
{
    WalkResult wr = pageTable_.walk(vaddr);
    if (!wr.mapped()) {
        return std::nullopt;
    }
    return memory_.tierOf(wr.pte->pfn());
}

std::uint64_t
AddressSpace::bytesInTier(Tier t)
{
    std::uint64_t bytes = 0;
    pageTable_.forEachLeaf([&](Addr, Pte &pte, bool huge) {
        if (memory_.tierOf(pte.pfn()) == t) {
            bytes += huge ? kPageSize2M : kPageSize4K;
        }
    });
    return bytes;
}

} // namespace thermostat
