/**
 * @file
 * Bit-accurate x86-64 page table entry.
 *
 * Thermostat's mechanisms manipulate PTE state directly: the
 * hardware-maintained Accessed/Dirty bits (Sec 2.1), and the
 * software-reserved bit 51 that BadgerTrap uses to poison a
 * translation so the next TLB miss faults (Sec 3.3).  This class
 * models the relevant bits of the 64-bit entry exactly.
 */

#ifndef THERMOSTAT_VM_PTE_HH
#define THERMOSTAT_VM_PTE_HH

#include <cstdint>

#include "common/types.hh"

namespace thermostat
{

/**
 * One 64-bit x86-64 page table entry.
 *
 * Layout (bits used by this model):
 *   0  P    present
 *   1  R/W  writable
 *   2  U/S  user
 *   5  A    accessed (set by the page walker)
 *   6  D    dirty (set by the page walker on write)
 *   7  PS   page size (2MB leaf when set in a PD entry)
 *   12..50  physical frame number
 *   51      reserved; set by BadgerTrap to poison the entry
 */
class Pte
{
  public:
    static constexpr std::uint64_t kPresent = 1ULL << 0;
    static constexpr std::uint64_t kWritable = 1ULL << 1;
    static constexpr std::uint64_t kUser = 1ULL << 2;
    static constexpr std::uint64_t kAccessed = 1ULL << 5;
    static constexpr std::uint64_t kDirty = 1ULL << 6;
    static constexpr std::uint64_t kPageSize = 1ULL << 7;
    static constexpr std::uint64_t kPoison = 1ULL << 51;

    static constexpr unsigned kPfnShift = 12;
    static constexpr std::uint64_t kPfnMask =
        ((1ULL << 39) - 1) << kPfnShift; // bits 12..50

    Pte() = default;
    explicit Pte(std::uint64_t raw) : raw_(raw) {}

    /** Build a present leaf entry mapping @p pfn. */
    static Pte
    makeLeaf(Pfn pfn, bool huge, bool writable = true)
    {
        std::uint64_t raw = kPresent | kUser;
        if (writable) {
            raw |= kWritable;
        }
        if (huge) {
            raw |= kPageSize;
        }
        raw |= (pfn << kPfnShift) & kPfnMask;
        return Pte(raw);
    }

    std::uint64_t raw() const { return raw_; }

    bool present() const { return raw_ & kPresent; }
    bool writable() const { return raw_ & kWritable; }
    bool accessed() const { return raw_ & kAccessed; }
    bool dirty() const { return raw_ & kDirty; }
    bool huge() const { return raw_ & kPageSize; }
    bool poisoned() const { return raw_ & kPoison; }

    Pfn pfn() const { return (raw_ & kPfnMask) >> kPfnShift; }

    void
    setPfn(Pfn pfn)
    {
        raw_ = (raw_ & ~kPfnMask) | ((pfn << kPfnShift) & kPfnMask);
    }

    void setAccessed() { raw_ |= kAccessed; }
    void clearAccessed() { raw_ &= ~kAccessed; }
    void setDirty() { raw_ |= kDirty; }
    void clearDirty() { raw_ &= ~kDirty; }
    void poison() { raw_ |= kPoison; }
    void unpoison() { raw_ &= ~kPoison; }
    void setPresent(bool p)
    {
        raw_ = p ? (raw_ | kPresent) : (raw_ & ~kPresent);
    }

    bool operator==(const Pte &other) const = default;

  private:
    std::uint64_t raw_ = 0;
};

} // namespace thermostat

#endif // THERMOSTAT_VM_PTE_HH
