#include "vm/page_table.hh"

#include "common/logging.hh"

namespace thermostat
{

namespace
{

constexpr int kLevels = 4;         // PML4, PDPT, PD, PT
constexpr unsigned kFanout = 512;  // 9 bits per level

} // namespace

/**
 * A table node at any level.  Inner levels use children[]; leaf
 * levels (PD for huge, PT for base) use entries[].
 */
struct PageTable::Node
{
    std::array<Pte, kFanout> entries{};
    std::array<std::unique_ptr<Node>, kFanout> children{};
};

PageTable::PageTable()
    : root_(std::make_unique<Node>()),
      walkCache_(new WalkCacheEntry[kWalkCacheSize])
{
    nodes_ = 1;
}

PageTable::~PageTable() = default;

PageTable::Node *
PageTable::newNode()
{
    ++nodes_;
    return new Node();
}

PageTable::Node *
PageTable::pdNodeFor(Addr vaddr, bool create)
{
    Node *node = root_.get();
    for (int level = 0; level < 2; ++level) {
        const unsigned idx = indexAt(vaddr, level);
        if (!node->children[idx]) {
            if (!create) {
                return nullptr;
            }
            node->children[idx].reset(newNode());
        }
        node = node->children[idx].get();
    }
    return node;
}

void
PageTable::map2M(Addr vaddr, Pfn pfn)
{
    invalidateWalkCache();
    TSTAT_ASSERT(vaddr % kPageSize2M == 0, "map2M: unaligned vaddr");
    TSTAT_ASSERT(pfn % kSubpagesPerHuge == 0, "map2M: unaligned pfn");
    Node *pd = pdNodeFor(vaddr, true);
    const unsigned idx = indexAt(vaddr, 2);
    TSTAT_ASSERT(!pd->entries[idx].present() && !pd->children[idx],
                 "map2M over existing mapping");
    pd->entries[idx] = Pte::makeLeaf(pfn, true);
    ++hugeLeaves_;
}

void
PageTable::map4K(Addr vaddr, Pfn pfn)
{
    invalidateWalkCache();
    TSTAT_ASSERT(vaddr % kPageSize4K == 0, "map4K: unaligned vaddr");
    Node *pd = pdNodeFor(vaddr, true);
    const unsigned pd_idx = indexAt(vaddr, 2);
    TSTAT_ASSERT(!pd->entries[pd_idx].present(),
                 "map4K under an existing 2MB leaf");
    if (!pd->children[pd_idx]) {
        pd->children[pd_idx].reset(newNode());
    }
    Node *pt = pd->children[pd_idx].get();
    const unsigned pt_idx = indexAt(vaddr, 3);
    TSTAT_ASSERT(!pt->entries[pt_idx].present(),
                 "map4K over existing mapping");
    pt->entries[pt_idx] = Pte::makeLeaf(pfn, false);
    ++baseLeaves_;
}

void
PageTable::unmap2M(Addr vaddr)
{
    invalidateWalkCache();
    Node *pd = pdNodeFor(vaddr, false);
    const unsigned idx = indexAt(vaddr, 2);
    TSTAT_ASSERT(pd && pd->entries[idx].present() &&
                     pd->entries[idx].huge(),
                 "unmap2M: no huge leaf at vaddr");
    pd->entries[idx] = Pte();
    TSTAT_ASSERT(hugeLeaves_ > 0, "huge leaf count underflow");
    --hugeLeaves_;
}

void
PageTable::unmap4K(Addr vaddr)
{
    invalidateWalkCache();
    Node *pd = pdNodeFor(vaddr, false);
    const unsigned pd_idx = indexAt(vaddr, 2);
    TSTAT_ASSERT(pd && pd->children[pd_idx], "unmap4K: no PT");
    Node *pt = pd->children[pd_idx].get();
    const unsigned pt_idx = indexAt(vaddr, 3);
    TSTAT_ASSERT(pt->entries[pt_idx].present(),
                 "unmap4K: not mapped");
    pt->entries[pt_idx] = Pte();
    TSTAT_ASSERT(baseLeaves_ > 0, "base leaf count underflow");
    --baseLeaves_;
    // Free the page-table node once it holds no mappings, so the
    // slot can later be reused by a 2MB leaf.
    for (const Pte &entry : pt->entries) {
        if (entry.present()) {
            return;
        }
    }
    pd->children[pd_idx].reset();
    TSTAT_ASSERT(nodes_ > 0, "node count underflow");
    --nodes_;
}

WalkResult
PageTable::walkSlow(Addr vaddr)
{
    const Addr tag = vaddr >> kPageShift2M;
    WalkCacheEntry &slot = walkCache_[walkCacheSlot(tag)];
    Node *pd = pdNodeFor(vaddr, false);
    if (!pd) {
        return {};
    }
    const unsigned pd_idx = indexAt(vaddr, 2);
    Pte &pd_entry = pd->entries[pd_idx];
    if (pd_entry.present() && pd_entry.huge()) {
        slot = {tag, walkGen_, &pd_entry, nullptr};
        return {&pd_entry, true};
    }
    Node *pt = pd->children[pd_idx].get();
    if (!pt) {
        return {};
    }
    slot = {tag, walkGen_, nullptr, pt->entries.data()};
    Pte &pt_entry = pt->entries[indexAt(vaddr, 3)];
    if (!pt_entry.present()) {
        return {};
    }
    return {&pt_entry, false};
}

PageTable::RegionLeaves
PageTable::regionLeaves(Addr region_base)
{
    const Addr tag = region_base >> kPageShift2M;
    WalkCacheEntry &slot = walkCache_[walkCacheSlot(tag)];
    if (slot.tag == tag && slot.gen == walkGen_) {
        return {slot.pdEntry, slot.ptEntries};
    }
    Node *pd = pdNodeFor(region_base, false);
    if (!pd) {
        return {};
    }
    const unsigned pd_idx = indexAt(region_base, 2);
    Pte &pd_entry = pd->entries[pd_idx];
    if (pd_entry.present() && pd_entry.huge()) {
        slot = {tag, walkGen_, &pd_entry, nullptr};
        return {&pd_entry, nullptr};
    }
    Node *pt = pd->children[pd_idx].get();
    if (!pt) {
        return {};
    }
    slot = {tag, walkGen_, nullptr, pt->entries.data()};
    return {nullptr, pt->entries.data()};
}

bool
PageTable::split(Addr vaddr)
{
    invalidateWalkCache();
    TSTAT_ASSERT(vaddr % kPageSize2M == 0, "split: unaligned vaddr");
    Node *pd = pdNodeFor(vaddr, false);
    if (!pd) {
        return false;
    }
    const unsigned pd_idx = indexAt(vaddr, 2);
    Pte &huge_pte = pd->entries[pd_idx];
    if (!huge_pte.present() || !huge_pte.huge()) {
        return false;
    }
    auto pt = std::unique_ptr<Node>(newNode());
    const Pfn base_pfn = huge_pte.pfn();
    for (unsigned i = 0; i < kSubpagesPerHuge; ++i) {
        Pte sub = Pte::makeLeaf(base_pfn + i, false,
                                huge_pte.writable());
        if (huge_pte.accessed()) {
            sub.setAccessed();
        }
        if (huge_pte.dirty()) {
            sub.setDirty();
        }
        if (huge_pte.poisoned()) {
            sub.poison();
        }
        pt->entries[i] = sub;
    }
    huge_pte = Pte();
    pd->children[pd_idx] = std::move(pt);
    --hugeLeaves_;
    baseLeaves_ += kSubpagesPerHuge;
    return true;
}

bool
PageTable::collapse(Addr vaddr)
{
    invalidateWalkCache();
    TSTAT_ASSERT(vaddr % kPageSize2M == 0, "collapse: unaligned vaddr");
    Node *pd = pdNodeFor(vaddr, false);
    if (!pd) {
        return false;
    }
    const unsigned pd_idx = indexAt(vaddr, 2);
    if (pd->entries[pd_idx].present() || !pd->children[pd_idx]) {
        return false;
    }
    Node *pt = pd->children[pd_idx].get();
    const Pte first = pt->entries[0];
    if (!first.present()) {
        return false;
    }
    const Pfn base_pfn = first.pfn();
    if (base_pfn % kSubpagesPerHuge != 0) {
        return false;
    }
    bool accessed = false;
    bool dirty = false;
    bool poisoned = false;
    for (unsigned i = 0; i < kSubpagesPerHuge; ++i) {
        const Pte &sub = pt->entries[i];
        if (!sub.present() || sub.pfn() != base_pfn + i ||
            sub.writable() != first.writable()) {
            return false;
        }
        accessed |= sub.accessed();
        dirty |= sub.dirty();
        poisoned |= sub.poisoned();
    }
    Pte huge_pte = Pte::makeLeaf(base_pfn, true, first.writable());
    if (accessed) {
        huge_pte.setAccessed();
    }
    if (dirty) {
        huge_pte.setDirty();
    }
    if (poisoned) {
        huge_pte.poison();
    }
    pd->children[pd_idx].reset();
    TSTAT_ASSERT(nodes_ > 0, "node count underflow");
    --nodes_;
    pd->entries[pd_idx] = huge_pte;
    ++hugeLeaves_;
    TSTAT_ASSERT(baseLeaves_ >= kSubpagesPerHuge,
                 "base leaf count underflow");
    baseLeaves_ -= kSubpagesPerHuge;
    return true;
}

void
PageTable::visitNode(Node *node, int level, Addr base,
                     const std::function<void(Addr, Pte &, bool)> &visit)
{
    const unsigned shift = 39 - 9 * static_cast<unsigned>(level);
    for (unsigned i = 0; i < kFanout; ++i) {
        const Addr child_base =
            base | (static_cast<Addr>(i) << shift);
        if (level == 2 && node->entries[i].present()) {
            visit(child_base, node->entries[i], true);
        }
        if (level == 3) {
            if (node->entries[i].present()) {
                visit(child_base, node->entries[i], false);
            }
            continue;
        }
        if (node->children[i]) {
            visitNode(node->children[i].get(), level + 1, child_base,
                      visit);
        }
    }
}

void
PageTable::forEachLeaf(
    const std::function<void(Addr, Pte &, bool)> &visit)
{
    visitNode(root_.get(), 0, 0, visit);
}

} // namespace thermostat
