/**
 * @file
 * Four-level x86-64 radix page table with transparent-huge-page
 * support.
 *
 * Leaves exist at two levels: PD entries with the PS bit map 2MB
 * huge pages; PT entries map 4KB base pages.  split() converts a 2MB
 * leaf into a PT of 512 base-page entries that keep pointing at the
 * same contiguous physical block, exactly what Linux's THP split
 * does and what Thermostat's sampler relies on (Sec 3.2: "we split a
 * random sample of huge pages into 4KB pages").  collapse() is the
 * khugepaged-style inverse.
 */

#ifndef THERMOSTAT_VM_PAGE_TABLE_HH
#define THERMOSTAT_VM_PAGE_TABLE_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>

#include "common/types.hh"
#include "vm/pte.hh"

namespace thermostat
{

/** Result of a page table walk. */
struct WalkResult
{
    Pte *pte = nullptr; //!< leaf entry, or nullptr if unmapped
    bool huge = false;  //!< leaf maps a 2MB page

    bool mapped() const { return pte != nullptr; }
};

/**
 * The 4-level table.  Upper-level (non-leaf) entries are modeled as
 * child pointers; leaf entries are bit-accurate Pte values.
 */
class PageTable
{
  public:
    PageTable();
    ~PageTable();

    PageTable(const PageTable &) = delete;
    PageTable &operator=(const PageTable &) = delete;

    /** Map a 2MB-aligned virtual address to a 2MB-aligned block. */
    void map2M(Addr vaddr, Pfn pfn);

    /** Map a 4KB-aligned virtual address to a 4KB frame. */
    void map4K(Addr vaddr, Pfn pfn);

    /** Remove the leaf mapping 2MB page at @p vaddr. */
    void unmap2M(Addr vaddr);

    /** Remove the 4KB leaf mapping at @p vaddr. */
    void unmap4K(Addr vaddr);

    /**
     * Find the leaf entry translating @p vaddr.  Does not touch
     * Accessed/Dirty bits; the PageWalker does that.  Defined inline
     * below: the walk-cache hit path runs on every TLB miss and
     * BadgerTrap replay, so it must not pay a cross-TU call.
     */
    WalkResult walk(Addr vaddr);

    /**
     * Split the 2MB leaf at @p vaddr into 512 4KB leaves backed by
     * the same contiguous frames, preserving flags; A/D bits are
     * propagated to every subpage.
     * @return false if @p vaddr is not mapped by a 2MB leaf.
     */
    bool split(Addr vaddr);

    /**
     * Collapse 512 4KB leaves back into one 2MB leaf.  Requires all
     * 512 entries present and physically contiguous starting at a
     * 2MB-aligned frame.  A/D/poison bits are OR-folded.
     * @return false when the preconditions do not hold.
     */
    bool collapse(Addr vaddr);

    /**
     * Visit every leaf.  The callback receives the virtual base
     * address of the page, a mutable entry reference, and whether the
     * leaf is huge.
     */
    void forEachLeaf(
        const std::function<void(Addr, Pte &, bool)> &visit);

    /**
     * Dense view of the leaves covering one 2MB region: either the
     * huge leaf, or the contiguous 512-entry PT array when the
     * region is split (entries may individually be non-present).
     * Lets region-granular scans (kstaled clears after a split, the
     * sampler's subpage poison pass) run over a flat array instead
     * of 512 independent walks.
     */
    struct RegionLeaves
    {
        Pte *huge = nullptr;      //!< 2MB leaf, when huge-mapped
        Pte *ptEntries = nullptr; //!< PT entry array, when split
        bool mapped() const { return huge || ptEntries; }
    };
    RegionLeaves regionLeaves(Addr region_base);

    std::uint64_t hugeLeafCount() const { return hugeLeaves_; }
    std::uint64_t baseLeafCount() const { return baseLeaves_; }

    /** Number of table nodes currently allocated (all levels). */
    std::uint64_t nodeCount() const { return nodes_; }

  private:
    struct Node;

    static constexpr std::size_t kWalkCacheSize = 1024; //!< 2MB regions

    /** One walk-cache slot; valid only while gen matches walkGen_. */
    struct WalkCacheEntry
    {
        Addr tag = ~Addr{0}; //!< vaddr >> 21
        std::uint64_t gen = 0;
        Pte *pdEntry = nullptr; //!< huge leaf, when 2MB-mapped
        Pte *ptEntries = nullptr; //!< PT entry array, when 4KB-mapped
    };

    static unsigned
    indexAt(Addr vaddr, int level)
    {
        // level 0 = PML4 (bits 47..39) ... level 3 = PT (bits 20..12)
        const unsigned shift = 39 - 9 * static_cast<unsigned>(level);
        return static_cast<unsigned>((vaddr >> shift) & 0x1ff);
    }

    /**
     * Walk-cache slot for a 2MB-region tag.  The cache is
     * partitioned into kMachineLanes equal segments, each indexed
     * only by the lane owning the region (same hash as laneOf), so
     * concurrent lane workers never collide on a slot and the
     * partitioning is semantically invisible -- the cache is pure
     * memoization, walk() returns identical results on hit or miss.
     */
    static std::size_t
    walkCacheSlot(Addr tag)
    {
        constexpr std::size_t kSlotsPerLane =
            kWalkCacheSize / kMachineLanes;
        const auto lane = static_cast<std::size_t>(
            (tag * 0x9e3779b97f4a7c15ULL) >> 61);
        return lane * kSlotsPerLane + (tag & (kSlotsPerLane - 1));
    }

    /** Full table descent on a walk-cache miss; fills the slot. */
    WalkResult walkSlow(Addr vaddr);

    /** Walk down to the PD node covering @p vaddr, creating levels. */
    Node *pdNodeFor(Addr vaddr, bool create);

    Node *newNode();
    void visitNode(Node *node, int level, Addr base,
                   const std::function<void(Addr, Pte &, bool)> &visit);

    /** Any structural change invalidates the walk cache wholesale. */
    void invalidateWalkCache() { ++walkGen_; }

    std::unique_ptr<Node> root_; // shard: read-only
    std::uint64_t hugeLeaves_ = 0; // shard: read-only
    std::uint64_t baseLeaves_ = 0; // shard: read-only
    std::uint64_t nodes_ = 0; // shard: read-only

    /**
     * Direct-mapped cache of resolved PD-level state per 2MB region:
     * either the huge leaf entry or the PT node backing the region.
     * Entries are valid only while their generation matches walkGen_;
     * every map/unmap/split/collapse bumps the generation, so walk()
     * never observes stale structure.
     */
    std::unique_ptr<WalkCacheEntry[]> walkCache_; // shard: read-only
    std::uint64_t walkGen_ = 1; // shard: read-only
};

inline WalkResult
PageTable::walk(Addr vaddr)
{
    const Addr tag = vaddr >> kPageShift2M;
    WalkCacheEntry &slot = walkCache_[walkCacheSlot(tag)];
    if (slot.tag == tag && slot.gen == walkGen_) {
        if (slot.pdEntry) {
            return {slot.pdEntry, true};
        }
        Pte &pt_entry = slot.ptEntries[indexAt(vaddr, 3)];
        if (!pt_entry.present()) {
            return {};
        }
        return {&pt_entry, false};
    }
    return walkSlow(vaddr);
}

} // namespace thermostat

#endif // THERMOSTAT_VM_PAGE_TABLE_HH
