/**
 * @file
 * A process virtual address space backed by tiered physical memory.
 *
 * Provides mmap-like anonymous/file-backed regions with a THP
 * allocation policy (2MB mappings whenever a region chunk is
 * huge-page sized, as Linux THP does), growth for workloads whose
 * footprint increases over time (Cassandra memtables, Spark heaps),
 * and the remap primitive that page migration builds on.
 */

#ifndef THERMOSTAT_VM_ADDRESS_SPACE_HH
#define THERMOSTAT_VM_ADDRESS_SPACE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hh"
#include "mem/tiered_memory.hh"
#include "vm/page_table.hh"

namespace thermostat
{

/**
 * Default base address of the first mapped region (the historical
 * 4GiB start every standalone run uses).  Exported so the
 * datacenter host can compute tenant address windows that contain
 * it.
 */
constexpr Addr kFirstRegionBase = Addr{4} << 30;

/** One mapped region (a VMA). */
struct Region
{
    std::string name;
    Addr base = 0;
    std::uint64_t mappedBytes = 0;   //!< currently populated
    std::uint64_t reservedBytes = 0; //!< virtual reservation
    bool thp = true;                 //!< eligible for 2MB mappings
    bool fileBacked = false;         //!< page-cache style region

    Addr end() const { return base + mappedBytes; }
};

/**
 * The address space: region table + page table + backing frames.
 * All pages are initially backed by the fast tier, matching the
 * paper's baseline of an all-DRAM first-touch policy.
 */
class AddressSpace
{
  public:
    /**
     * @param memory Backing physical memory.
     * @param thp_enabled Global THP switch (like
     *        /sys/kernel/mm/transparent_hugepage/enabled); when
     *        false every region is mapped with 4KB pages regardless
     *        of its own thp flag (the Table 1 baseline).
     * @param base First region base address (2MB aligned); 0 keeps
     *        the historical 4GiB default.  The multi-tenant host
     *        gives each guest a disjoint window so no tenant's
     *        pages can alias another's.
     */
    explicit AddressSpace(TieredMemory &memory, bool thp_enabled = true,
                          Addr base = 0);
    ~AddressSpace();

    AddressSpace(const AddressSpace &) = delete;
    AddressSpace &operator=(const AddressSpace &) = delete;

    /**
     * Create a region and populate its first @p bytes.
     * @param name Unique region name ("heap", "page-cache", ...).
     * @param bytes Initially mapped size (rounded up to 4KB).
     * @param reserve_bytes Total virtual reservation (>= bytes);
     *        grow() may extend the mapping up to this limit.
     * @param thp Use 2MB mappings for huge-aligned chunks.
     * @param file_backed Marks the region as page-cache-like
     *        (reported separately, as in Table 2).
     * @return The region base address.
     */
    Addr mapRegion(const std::string &name, std::uint64_t bytes,
                   std::uint64_t reserve_bytes = 0, bool thp = true,
                   bool file_backed = false);

    /** Extend a region's populated size by @p bytes. */
    void growRegion(const std::string &name, std::uint64_t bytes);

    const Region *findRegion(const std::string &name) const;
    const std::vector<Region> &regions() const { return regions_; }

    PageTable &pageTable() { return pageTable_; }
    const PageTable &pageTable() const { return pageTable_; }
    TieredMemory &memory() { return memory_; }

    /** Resident set size: populated anonymous + file bytes. */
    std::uint64_t rssBytes() const { return rssBytes_; }

    /** Populated bytes in file-backed regions only. */
    std::uint64_t fileBackedBytes() const { return fileBytes_; }

    /** Collect the virtual base addresses of all 2MB leaves. */
    std::vector<Addr> hugePageAddrs();

    /**
     * Split the 2MB mapping at @p vaddr into 512 4KB mappings and
     * keep the frame allocator's view consistent (the backing block
     * becomes individually-freeable frames).
     * @return false when @p vaddr is not mapped by a huge leaf.
     */
    bool splitHuge(Addr vaddr);

    /**
     * Collapse 512 4KB mappings back into a 2MB mapping (khugepaged
     * style); requires physical contiguity, which holds as long as
     * no subpage has been migrated away.
     * @return false when preconditions do not hold.
     */
    bool collapseHuge(Addr vaddr);

    /**
     * Replace the backing frame of the leaf at @p vaddr (either
     * size).  The caller owns allocation/free of frames; this only
     * rewrites the PTE.  Accessed/Dirty state is preserved.
     */
    void remapLeaf(Addr vaddr, Pfn new_pfn);

    /** The tier currently backing @p vaddr (nullopt if unmapped). */
    std::optional<Tier> tierOf(Addr vaddr);

    /**
     * Bytes currently resident in @p t, by walking the page table.
     * O(leaves); intended for reporting, not per-access paths.
     */
    std::uint64_t bytesInTier(Tier t);

  private:
    void populate(Region &region, Addr start, std::uint64_t bytes);

    TieredMemory &memory_;
    bool thpEnabled_;
    PageTable pageTable_;
    std::vector<Region> regions_;
    Addr nextBase_;
    std::uint64_t rssBytes_ = 0;
    std::uint64_t fileBytes_ = 0;
};

} // namespace thermostat

#endif // THERMOSTAT_VM_ADDRESS_SPACE_HH
