#include "fault/fault_injector.hh"

#include <cmath>
#include <cstdlib>
#include <limits>
#include <vector>

#include "common/logging.hh"
#include "obs/metrics.hh"

namespace thermostat
{

namespace
{

constexpr const char *kSiteNames[kFaultSiteCount] = {
    "migration-copy", "migration-alloc", "slow-latency",
    "slow-bandwidth", "wear-retire",
};

bool
parseDouble(const std::string &text, double &out)
{
    if (text.empty()) {
        return false;
    }
    char *end = nullptr;
    out = std::strtod(text.c_str(), &end);
    return end != nullptr && *end == '\0';
}

Ns
secondsToNs(double sec)
{
    return static_cast<Ns>(
        std::llround(sec * static_cast<double>(kNsPerSec)));
}

bool
lookupSite(const std::string &name, FaultSite &out)
{
    for (std::size_t i = 0; i < kFaultSiteCount; ++i) {
        if (name == kSiteNames[i]) {
            out = static_cast<FaultSite>(i);
            return true;
        }
    }
    // Historical alias from early design notes.
    if (name == "migration-fail") {
        out = FaultSite::MigrationCopy;
        return true;
    }
    return false;
}

std::vector<std::string>
splitOn(const std::string &text, char sep)
{
    std::vector<std::string> parts;
    std::size_t start = 0;
    for (;;) {
        const std::size_t pos = text.find(sep, start);
        if (pos == std::string::npos) {
            parts.push_back(text.substr(start));
            return parts;
        }
        parts.push_back(text.substr(start, pos - start));
        start = pos + 1;
    }
}

} // namespace

const char *
faultSiteName(FaultSite site)
{
    return kSiteNames[static_cast<std::size_t>(site)];
}

bool
FaultPlan::enabled() const
{
    for (const FaultSitePlan &site : sites) {
        if (site.configured) {
            return true;
        }
    }
    return false;
}

bool
FaultPlan::parse(const std::string &spec, FaultPlan &out,
                 std::string &error)
{
    FaultPlan plan;
    for (const std::string &entry : splitOn(spec, ';')) {
        if (entry.empty()) {
            continue;
        }
        const std::size_t colon = entry.find(':');
        if (colon == std::string::npos) {
            error = "fault entry '" + entry + "' has no ':'";
            return false;
        }
        FaultSite site;
        const std::string siteName = entry.substr(0, colon);
        if (!lookupSite(siteName, site)) {
            error = "unknown fault site '" + siteName + "'";
            return false;
        }
        FaultSitePlan &sp = plan[site];
        sp.configured = true;
        for (const std::string &kv :
             splitOn(entry.substr(colon + 1), ',')) {
            const std::size_t eq = kv.find('=');
            if (eq == std::string::npos) {
                error = "fault setting '" + kv + "' has no '='";
                return false;
            }
            const std::string key = kv.substr(0, eq);
            const std::string value = kv.substr(eq + 1);
            double num = 0.0;
            if (!parseDouble(value, num)) {
                error = "bad value '" + value + "' for fault key '" +
                        key + "'";
                return false;
            }
            if (key == "p") {
                if (num < 0.0 || num > 1.0) {
                    error = "fault probability must be in [0,1]";
                    return false;
                }
                sp.probability = num;
            } else if (key == "burst") {
                sp.burst = static_cast<Count>(num);
            } else if (key == "at") {
                sp.hasAt = true;
                sp.at = secondsToNs(num);
            } else if (key == "from") {
                sp.hasWindow = true;
                sp.from = secondsToNs(num);
            } else if (key == "until") {
                sp.hasWindow = true;
                sp.until = secondsToNs(num);
            } else if (key == "factor") {
                if (num < 1.0) {
                    error = "fault factor must be >= 1";
                    return false;
                }
                sp.factor = num;
            } else if (key == "count") {
                sp.count = static_cast<Count>(num);
            } else {
                error = "unknown fault key '" + key + "'";
                return false;
            }
        }
        if (sp.hasWindow && sp.until == 0) {
            // `from` without `until`: open-ended episode.
            sp.until = std::numeric_limits<Ns>::max();
        }
        if (sp.hasWindow && sp.until <= sp.from) {
            error = "fault window is empty (until <= from)";
            return false;
        }
    }
    out = plan;
    return true;
}

FaultInjector::FaultInjector(const FaultPlan &plan, std::uint64_t seed)
    : plan_(plan)
{
    // One forked stream per site, in fixed site order, so a site's
    // schedule does not depend on which other sites are configured.
    Rng root(seed);
    for (std::size_t i = 0; i < kFaultSiteCount; ++i) {
        sites_[i].rng = root.fork();
        const FaultSitePlan &sp = plan_.sites[i];
        // A burst with no trigger time is armed from t=0.
        sites_[i].burstLeft = sp.hasAt ? 0 : sp.burst;
        sites_[i].scheduledPending = sp.hasAt;
    }
}

FaultInjector::SiteState &
FaultInjector::state(FaultSite site)
{
    return sites_[static_cast<std::size_t>(site)];
}

const FaultInjector::SiteState &
FaultInjector::state(FaultSite site) const
{
    return sites_[static_cast<std::size_t>(site)];
}

bool
FaultInjector::shouldFail(FaultSite site, Ns now)
{
    const FaultSitePlan &sp = plan_[site];
    SiteState &st = state(site);
    if (!sp.configured) {
        return false;
    }
    ++st.queries;
    // A timed burst arms when its trigger passes (and consumes the
    // scheduled-event token, so a site is either burst- or
    // scheduled-mode, never both from one `at`).
    if (st.scheduledPending && sp.burst > 0 && now >= sp.at) {
        st.scheduledPending = false;
        st.burstLeft = sp.burst;
    }
    if (st.burstLeft > 0) {
        --st.burstLeft;
        ++st.injected;
        return true;
    }
    if (sp.probability > 0.0 &&
        (!sp.hasWindow || windowActive(site, now)) &&
        st.rng.nextBool(sp.probability)) {
        ++st.injected;
        return true;
    }
    return false;
}

bool
FaultInjector::windowActive(FaultSite site, Ns now) const
{
    const FaultSitePlan &sp = plan_[site];
    return sp.configured && sp.hasWindow && now >= sp.from &&
           now < sp.until;
}

double
FaultInjector::severity(FaultSite site, Ns now) const
{
    return windowActive(site, now) ? plan_[site].factor : 1.0;
}

Count
FaultInjector::takeScheduled(FaultSite site, Ns now)
{
    const FaultSitePlan &sp = plan_[site];
    SiteState &st = state(site);
    if (!sp.configured) {
        return 0;
    }
    ++st.queries;
    // One-shot trigger (not claimed by a burst).
    if (st.scheduledPending && sp.burst == 0 && now >= sp.at) {
        st.scheduledPending = false;
        st.injected += sp.count;
        return sp.count;
    }
    // Recurring probabilistic trigger.
    if (sp.probability > 0.0 &&
        (!sp.hasWindow || windowActive(site, now)) &&
        st.rng.nextBool(sp.probability)) {
        st.injected += sp.count;
        return sp.count;
    }
    return 0;
}

Count
FaultInjector::queries(FaultSite site) const
{
    return state(site).queries;
}

Count
FaultInjector::injected(FaultSite site) const
{
    return state(site).injected;
}

void
FaultInjector::registerMetrics(MetricRegistry &registry,
                               const std::string &prefix) const
{
    for (std::size_t i = 0; i < kFaultSiteCount; ++i) {
        const FaultSite site = static_cast<FaultSite>(i);
        if (!plan_.sites[i].configured) {
            continue;
        }
        const std::string base =
            prefix + "." + kSiteNames[i] + ".";
        registry.addCallback(base + "queries", [this, site] {
            return static_cast<double>(queries(site));
        });
        registry.addCallback(base + "injected", [this, site] {
            return static_cast<double>(injected(site));
        });
    }
}

} // namespace thermostat
