/**
 * @file
 * Deterministic fault injection.
 *
 * Real two-tier systems live with a slow tier that misbehaves: NVM
 * wears out (the paper budgets migration bandwidth against 3D XPoint
 * endurance, Sec 6), migrations fail or are aborted mid-copy (Nomad
 * builds its transactional migration around exactly this), and the
 * device sees latency/bandwidth degradation episodes.  The simulator
 * models those events through a single seeded `FaultInjector` that
 * components query at named sites, so every failure scenario is
 * bit-reproducible from the experiment seed.
 *
 * Faults are described by a `FaultPlan`, parsed from a compact spec
 * string (`thermostat_sim --fault-plan=...`):
 *
 *     plan  := entry (';' entry)*
 *     entry := site ':' key '=' value (',' key '=' value)*
 *     site  := migration-copy | migration-alloc | slow-latency
 *            | slow-bandwidth | wear-retire
 *
 * Keys (all optional, any combination):
 *     p=<0..1>     Bernoulli probability per query (fault rate)
 *     burst=<n>    fail the first n queries after `at` fires
 *     at=<sec>     one-shot trigger time (scheduled events)
 *     from=<sec>,until=<sec>
 *                  degradation window (slow-latency/bandwidth)
 *     factor=<x>   severity multiplier inside the window
 *     count=<n>    event magnitude (e.g. blocks to retire)
 *
 * Example -- 5% migration copy failure plus one wear burst at t=60s
 * retiring 4 huge-page blocks:
 *
 *     migration-copy:p=0.05;wear-retire:at=60,count=4
 *
 * Each site draws from its own forked RNG stream, so enabling one
 * fault site never perturbs the schedule of another.
 */

#ifndef THERMOSTAT_FAULT_FAULT_INJECTOR_HH
#define THERMOSTAT_FAULT_FAULT_INJECTOR_HH

#include <array>
#include <cstddef>
#include <string>

#include "common/rng.hh"
#include "common/types.hh"

namespace thermostat
{

class MetricRegistry;

/** Named injection points components consult. */
enum class FaultSite : unsigned
{
    /** Abort a migration copy halfway through (torn migration). */
    MigrationCopy,
    /** Destination-tier allocation failure (transient pressure). */
    MigrationAlloc,
    /** Slow-tier access latency spike episode. */
    SlowLatency,
    /** Slow-tier copy/migration bandwidth degradation episode. */
    SlowBandwidth,
    /** Wear-induced retirement of slow-tier frame blocks. */
    WearRetire,
};

inline constexpr std::size_t kFaultSiteCount = 5;

/** Human-readable site name (the spec-string spelling). */
const char *faultSiteName(FaultSite site);

/** Per-site behaviour, as parsed from one plan entry. */
struct FaultSitePlan
{
    bool configured = false;

    /** Bernoulli fault probability per query. */
    double probability = 0.0;

    /** Deterministic burst: fail this many queries once armed. */
    Count burst = 0;

    /** One-shot trigger time; also arms `burst`. */
    bool hasAt = false;
    Ns at = 0;

    /** Degradation window [from, until). */
    bool hasWindow = false;
    Ns from = 0;
    Ns until = 0;

    /** Severity multiplier while the window is active. */
    double factor = 1.0;

    /** Magnitude of scheduled events (e.g. blocks to retire). */
    Count count = 1;
};

/** A full plan: one optional entry per site. */
struct FaultPlan
{
    std::array<FaultSitePlan, kFaultSiteCount> sites;

    FaultSitePlan &
    operator[](FaultSite site)
    {
        return sites[static_cast<std::size_t>(site)];
    }

    const FaultSitePlan &
    operator[](FaultSite site) const
    {
        return sites[static_cast<std::size_t>(site)];
    }

    /** True when any site is configured. */
    bool enabled() const;

    /**
     * Parse a spec string (grammar above) into @p out.
     * @return false with a message in @p error on malformed input.
     */
    static bool parse(const std::string &spec, FaultPlan &out,
                      std::string &error);
};

/**
 * The injector: owns the plan, the per-site RNG streams and the
 * per-site query/injection counts.  Queries are cheap and
 * side-effect-free for unconfigured sites, but components should
 * still gate fault paths on the injector being present at all so a
 * fault-free run stays byte-identical to a build without it.
 */
class FaultInjector
{
  public:
    FaultInjector(const FaultPlan &plan, std::uint64_t seed);

    /**
     * Should the operation at @p site fail now?  Consumes one burst
     * token if the site's burst is armed, otherwise draws from the
     * site's Bernoulli stream (gated on the window when one is set).
     */
    bool shouldFail(FaultSite site, Ns now);

    /**
     * Severity multiplier for degradation sites: `factor` while the
     * site's window is active, 1.0 otherwise.
     */
    double severity(FaultSite site, Ns now) const;

    /** Is the site's degradation window currently active? */
    bool windowActive(FaultSite site, Ns now) const;

    /**
     * One-shot scheduled trigger: the first call with `now >= at`
     * returns the site's `count` (and disarms it); 0 otherwise.
     * Probability-mode sites additionally fire `count` per epoch
     * with probability `p`.
     */
    Count takeScheduled(FaultSite site, Ns now);

    const FaultPlan &plan() const { return plan_; }

    /** Total queries / injected faults at a site. */
    Count queries(FaultSite site) const;
    Count injected(FaultSite site) const;

    /** Export per-site counts under "<prefix>.<site>.*". */
    void registerMetrics(MetricRegistry &registry,
                         const std::string &prefix) const;

  private:
    struct SiteState
    {
        Rng rng{0};
        Count burstLeft = 0;
        bool scheduledPending = false;
        Count queries = 0;
        Count injected = 0;
    };

    SiteState &state(FaultSite site);
    const SiteState &state(FaultSite site) const;

    FaultPlan plan_;
    mutable std::array<SiteState, kFaultSiteCount> sites_;
};

} // namespace thermostat

#endif // THERMOSTAT_FAULT_FAULT_INJECTOR_HH
