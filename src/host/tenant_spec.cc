#include "host/tenant_spec.hh"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>

#include "fault/fault_injector.hh"
#include "policy/policy_factory.hh"
#include "workload/cloud_apps.hh"

namespace thermostat
{

namespace
{

/** All workload names a tenant may use, in listing order. */
std::vector<std::string>
tenantWorkloadNames()
{
    std::vector<std::string> names = allWorkloadNames();
    names.push_back("redis-bursty");
    names.push_back("trace:<path>");
    return names;
}

std::string
listingError(const std::string &what, const std::string &name,
             const std::vector<std::string> &known)
{
    std::string out =
        "unknown " + what + " '" + name + "'; known:";
    for (const std::string &k : known) {
        out += "\n  " + k;
    }
    return out;
}

bool
validIdChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) != 0 ||
           c == '_' || c == '-' || c == '.';
}

bool
parseDouble(const std::string &text, double *out)
{
    if (text.empty()) {
        return false;
    }
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (errno != 0 || end == nullptr || *end != '\0') {
        return false;
    }
    *out = v;
    return true;
}

bool
parseCount(const std::string &text, unsigned *out)
{
    if (text.empty() || text[0] == '-' || text[0] == '+') {
        return false;
    }
    errno = 0;
    char *end = nullptr;
    const unsigned long v = std::strtoul(text.c_str(), &end, 10);
    if (errno != 0 || end == nullptr || *end != '\0' ||
        v > 100000UL) {
        return false;
    }
    *out = static_cast<unsigned>(v);
    return true;
}

std::string
lineError(std::size_t line_no, const std::string &message)
{
    return "--tenants line " + std::to_string(line_no) + ": " +
           message;
}

/** Parse one `key=value ...` tenant line. */
bool
parseTenantLine(const std::string &line, std::size_t line_no,
                TenantSpec *spec, std::string *error)
{
    std::size_t pos = 0;
    bool saw_id = false;
    bool saw_workload = false;
    while (pos < line.size()) {
        while (pos < line.size() &&
               std::isspace(static_cast<unsigned char>(line[pos]))) {
            ++pos;
        }
        if (pos >= line.size()) {
            break;
        }
        std::size_t end = pos;
        while (end < line.size() &&
               !std::isspace(
                   static_cast<unsigned char>(line[end]))) {
            ++end;
        }
        const std::string token = line.substr(pos, end - pos);
        pos = end;
        const std::size_t eq = token.find('=');
        if (eq == std::string::npos || eq == 0) {
            *error = lineError(line_no,
                               "expected key=value, got '" + token +
                                   "'");
            return false;
        }
        const std::string key = token.substr(0, eq);
        const std::string value = token.substr(eq + 1);
        if (value.empty()) {
            *error = lineError(line_no,
                               "empty value for '" + key + "'");
            return false;
        }
        if (key == "id") {
            for (const char c : value) {
                if (!validIdChar(c)) {
                    *error = lineError(
                        line_no,
                        "tenant id '" + value +
                            "' has characters outside "
                            "[A-Za-z0-9_.-]");
                    return false;
                }
            }
            spec->id = value;
            saw_id = true;
        } else if (key == "workload") {
            if (!isTenantWorkloadName(value)) {
                *error = lineError(
                    line_no, listingError("workload", value,
                                          tenantWorkloadNames()));
                return false;
            }
            spec->workload = value;
            saw_workload = true;
        } else if (key == "policy") {
            if (!PolicyFactory::known(value)) {
                *error = lineError(
                    line_no, listingError("policy", value,
                                          PolicyFactory::names()));
                return false;
            }
            spec->policy = value;
        } else if (key == "cold-fraction") {
            double v = 0.0;
            if (!parseDouble(value, &v) || v < 0.0 || v > 1.0) {
                *error = lineError(line_no,
                                   "cold-fraction '" + value +
                                       "' is not in [0, 1]");
                return false;
            }
            spec->coldFraction = v;
        } else if (key == "target") {
            double v = 0.0;
            if (!parseDouble(value, &v) || v <= 0.0 || v > 100.0) {
                *error = lineError(line_no,
                                   "target '" + value +
                                       "' is not a percentage in "
                                       "(0, 100]");
                return false;
            }
            spec->targetPct = v;
        } else if (key == "count") {
            unsigned v = 0;
            if (!parseCount(value, &v) || v == 0) {
                *error = lineError(line_no,
                                   "count '" + value +
                                       "' is not a positive "
                                       "integer");
                return false;
            }
            spec->count = v;
        } else if (key == "fault-plan") {
            FaultPlan plan;
            std::string plan_error;
            if (!FaultPlan::parse(value, plan, plan_error)) {
                *error = lineError(line_no, "bad fault-plan: " +
                                                plan_error);
                return false;
            }
            spec->faultPlan = value;
        } else {
            *error = lineError(line_no,
                               "unknown key '" + key + "'");
            return false;
        }
    }
    if (!saw_id) {
        *error = lineError(line_no, "missing id=");
        return false;
    }
    if (!saw_workload) {
        *error = lineError(line_no, "missing workload=");
        return false;
    }
    return true;
}

} // namespace

bool
isTenantWorkloadName(const std::string &name)
{
    const char kTracePrefix[] = "trace:";
    if (name.compare(0, sizeof(kTracePrefix) - 1, kTracePrefix) ==
        0) {
        return name.size() > sizeof(kTracePrefix) - 1;
    }
    return isWorkloadName(name);
}

bool
parseTenantSpecs(const std::string &text,
                 std::vector<TenantSpec> *out, std::string *error)
{
    std::vector<TenantSpec> specs;
    std::size_t start = 0;
    std::size_t line_no = 0;
    while (start <= text.size()) {
        std::size_t end = text.find('\n', start);
        if (end == std::string::npos) {
            end = text.size();
        }
        std::string line = text.substr(start, end - start);
        ++line_no;
        const bool last = end == text.size();
        start = end + 1;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos) {
            line.erase(hash);
        }
        const bool blank =
            line.find_first_not_of(" \t\r") == std::string::npos;
        if (!blank) {
            TenantSpec spec;
            if (!parseTenantLine(line, line_no, &spec, error)) {
                return false;
            }
            specs.push_back(std::move(spec));
        }
        if (last) {
            break;
        }
    }
    if (specs.empty()) {
        *error = "--tenants config defines no tenants";
        return false;
    }
    *out = std::move(specs);
    return true;
}

bool
parseTenantSpecFile(const std::string &path,
                    std::vector<TenantSpec> *out,
                    std::string *error)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
        *error = "cannot open --tenants file '" + path +
                 "': " + std::strerror(errno);
        return false;
    }
    std::string text;
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
        text.append(buf, n);
    }
    const bool read_error = std::ferror(f) != 0;
    std::fclose(f);
    if (read_error) {
        *error = "error reading --tenants file '" + path + "'";
        return false;
    }
    return parseTenantSpecs(text, out, error);
}

bool
expandTenantSpecs(const std::vector<TenantSpec> &in,
                  std::vector<TenantSpec> *out, std::string *error)
{
    std::vector<TenantSpec> expanded;
    std::set<std::string> ids;
    for (const TenantSpec &spec : in) {
        for (unsigned i = 0; i < spec.count; ++i) {
            TenantSpec one = spec;
            one.count = 1;
            if (spec.count > 1) {
                one.id = spec.id + "." + std::to_string(i);
            }
            if (!ids.insert(one.id).second) {
                *error = "duplicate tenant id '" + one.id + "'";
                return false;
            }
            expanded.push_back(std::move(one));
        }
    }
    *out = std::move(expanded);
    return true;
}

} // namespace thermostat
