#include "host/host_arbiter.hh"

#include <cmath>

#include "common/logging.hh"
#include "obs/metrics.hh"

namespace thermostat
{

HostArbiter::HostArbiter(const HostArbiterConfig &config,
                         unsigned tenants)
    : config_(config), ledger_(tenants)
{
    TSTAT_ASSERT(tenants > 0, "arbiter needs at least one tenant");
    gates_.reserve(tenants);
    for (unsigned i = 0; i < tenants; ++i) {
        gates_.emplace_back(*this, i);
    }
}

void
HostArbiter::beginEpoch(Ns now, const std::vector<bool> &active)
{
    (void)now;
    TSTAT_ASSERT(active.size() == ledger_.size(),
                 "active mask size mismatch");
    unsigned live = 0;
    for (const bool a : active) {
        live += a ? 1u : 0u;
    }
    std::uint64_t budget = 0;
    if (config_.migrationBwBytesPerSec > 0.0) {
        const double epoch_sec =
            static_cast<double>(config_.epoch) /
            static_cast<double>(kNsPerSec);
        budget = static_cast<std::uint64_t>(std::llround(
            config_.migrationBwBytesPerSec * epoch_sec));
    }
    const std::uint64_t share = live > 0 ? budget / live : 0;
    std::uint64_t remainder = live > 0 ? budget % live : 0;
    for (std::size_t i = 0; i < ledger_.size(); ++i) {
        TenantLedger &t = ledger_[i];
        t.usedBytes = 0;
        if (!active[i]) {
            t.grantBytes = 0;
            continue;
        }
        t.grantBytes = share + (remainder > 0 ? 1 : 0);
        if (remainder > 0) {
            --remainder;
        }
        ++grantsIssued_;
        grantBytesIssued_ += t.grantBytes;
    }
}

void
HostArbiter::setInitialResidency(unsigned tenant,
                                 std::uint64_t fast,
                                 std::uint64_t slow)
{
    ledger_[tenant].fastBytes = fast;
    ledger_[tenant].slowBytes = slow;
}

void
HostArbiter::applyEpochDeltas(unsigned tenant,
                              std::uint64_t demoted,
                              std::uint64_t promoted,
                              std::uint64_t rss_growth)
{
    TenantLedger &t = ledger_[tenant];
    // fast = fast + growth + promoted - demoted, computed in signed
    // space (an epoch may demote more than the current delta-sum
    // order would allow in unsigned arithmetic).
    const std::int64_t fast =
        static_cast<std::int64_t>(t.fastBytes) +
        static_cast<std::int64_t>(rss_growth) +
        static_cast<std::int64_t>(promoted) -
        static_cast<std::int64_t>(demoted);
    const std::int64_t slow =
        static_cast<std::int64_t>(t.slowBytes) +
        static_cast<std::int64_t>(demoted) -
        static_cast<std::int64_t>(promoted);
    TSTAT_ASSERT(fast >= 0 && slow >= 0,
                 "tenant %u residency ledger went negative", tenant);
    t.fastBytes = static_cast<std::uint64_t>(fast);
    t.slowBytes = static_cast<std::uint64_t>(slow);
    t.pendingFastDelta = 0;
}

bool
HostArbiter::verifyTenant(unsigned tenant, std::uint64_t actual_fast,
                          std::uint64_t actual_slow)
{
    const TenantLedger &t = ledger_[tenant];
    if (t.fastBytes == actual_fast && t.slowBytes == actual_slow) {
        return true;
    }
    ++invariantViolations_;
    if (messages_.size() < 32) {
        messages_.push_back(
            "tenant " + std::to_string(tenant) +
            " residency ledger fast=" +
            std::to_string(t.fastBytes) + "/slow=" +
            std::to_string(t.slowBytes) + " != scanned fast=" +
            std::to_string(actual_fast) + "/slow=" +
            std::to_string(actual_slow));
    }
    return false;
}

bool
HostArbiter::admit(unsigned tenant, Addr vaddr, Tier target,
                   std::uint64_t bytes, Ns now)
{
    (void)vaddr;
    (void)now;
    TenantLedger &t = ledger_[tenant];
    // Bandwidth: charge the tenant's fair-share grant.
    if (config_.migrationBwBytesPerSec > 0.0 &&
        t.usedBytes + bytes > t.grantBytes) {
        ++t.denials;
        t.bytesDenied += bytes;
        return false;
    }
    // Capacity: promotions must fit the tenant's fast share and
    // the host's total fast budget.
    if (target == Tier::Fast) {
        const std::int64_t would =
            effectiveFast(t) + static_cast<std::int64_t>(bytes);
        if (config_.tenantFastCapBytes != 0 &&
            would > static_cast<std::int64_t>(
                        config_.tenantFastCapBytes)) {
            ++t.denials;
            t.bytesDenied += bytes;
            return false;
        }
        if (config_.hostFastCapBytes != 0) {
            std::int64_t host_fast = 0;
            for (const TenantLedger &l : ledger_) {
                host_fast += effectiveFast(l);
            }
            if (host_fast + static_cast<std::int64_t>(bytes) >
                static_cast<std::int64_t>(
                    config_.hostFastCapBytes)) {
                ++t.denials;
                t.bytesDenied += bytes;
                return false;
            }
        }
    }
    t.usedBytes += bytes;
    t.pendingFastDelta +=
        target == Tier::Fast ? static_cast<std::int64_t>(bytes)
                             : -static_cast<std::int64_t>(bytes);
    return true;
}

std::uint64_t
HostArbiter::totalFastBytes() const
{
    std::uint64_t total = 0;
    for (const TenantLedger &t : ledger_) {
        total += t.fastBytes;
    }
    return total;
}

std::uint64_t
HostArbiter::totalSlowBytes() const
{
    std::uint64_t total = 0;
    for (const TenantLedger &t : ledger_) {
        total += t.slowBytes;
    }
    return total;
}

Count
HostArbiter::totalDenials() const
{
    Count total = 0;
    for (const TenantLedger &t : ledger_) {
        total += t.denials;
    }
    return total;
}

std::uint64_t
HostArbiter::totalBytesDenied() const
{
    std::uint64_t total = 0;
    for (const TenantLedger &t : ledger_) {
        total += t.bytesDenied;
    }
    return total;
}

void
HostArbiter::registerMetrics(MetricRegistry &registry) const
{
    registry.addCallback("host/arbiter/fast_bytes", [this] {
        return static_cast<double>(totalFastBytes());
    });
    registry.addCallback("host/arbiter/slow_bytes", [this] {
        return static_cast<double>(totalSlowBytes());
    });
    registry.addCallback("host/arbiter/denials", [this] {
        return static_cast<double>(totalDenials());
    });
    registry.addCallback("host/arbiter/bytes_denied", [this] {
        return static_cast<double>(totalBytesDenied());
    });
    registry.addCallback("host/arbiter/grants_issued", [this] {
        return static_cast<double>(grantsIssued_);
    });
    registry.addCallback("host/arbiter/grant_bytes_issued", [this] {
        return static_cast<double>(grantBytesIssued_);
    });
    registry.addCallback("host/arbiter/invariant_violations",
                         [this] {
                             return static_cast<double>(
                                 invariantViolations_);
                         });
}

} // namespace thermostat
