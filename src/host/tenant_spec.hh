/**
 * @file
 * Tenant descriptions for the multi-tenant datacenter host.
 *
 * A consolidation experiment is specified as a list of tenants,
 * each naming a workload (one of the six cloud applications, the
 * redis-bursty variant, or a recorded trace via "trace:<path>"),
 * the tiering policy driving it and that policy's knobs.  The list
 * comes either from code (tests, benches) or from a small config
 * file handed to `thermostat_sim --tenants`:
 *
 *     # one tenant per line; '#' starts a comment
 *     id=web workload=web-search policy=thermostat target=3
 *     id=kv  workload=redis      policy=hotness cold-fraction=0.4
 *     id=bg  workload=cassandra  count=4
 *
 * Keys: id (required), workload (required), policy, target
 * (thermostat's tolerable-slowdown percent), cold-fraction (the
 * comparison engines' knob), count (replica expansion: id becomes
 * id.0 .. id.N-1) and fault-plan (per-tenant fault injection spec,
 * grammar in src/fault/fault_injector.hh).
 *
 * Parsing is strict: unknown keys, malformed numbers, unknown
 * workload/policy names and duplicate ids (after expansion) are
 * errors with a line-numbered diagnostic, so the CLI can exit 2
 * with the same name-listing convention as --list-policies.
 */

#ifndef THERMOSTAT_HOST_TENANT_SPEC_HH
#define THERMOSTAT_HOST_TENANT_SPEC_HH

#include <string>
#include <vector>

namespace thermostat
{

/** One tenant (before replica expansion). */
struct TenantSpec
{
    std::string id;
    /** Workload name, "redis-bursty", or "trace:<path>". */
    std::string workload;
    std::string policy = "thermostat";
    /** Comparison engines: fraction of RSS placed cold. */
    double coldFraction = 0.5;
    /** Thermostat: tolerable slowdown percent (the SLO). */
    double targetPct = 3.0;
    /** Replicas this line expands into (>= 1). */
    unsigned count = 1;
    /** Per-tenant fault-injection spec; empty = fault-free. */
    std::string faultPlan;
};

/**
 * Whether @p name resolves to a tenant workload: a CLI workload
 * name (cloud apps + "redis-bursty") or a "trace:<path>" reference
 * with a non-empty path.  Trace files are opened at host
 * construction, not here.
 */
bool isTenantWorkloadName(const std::string &name);

/**
 * Parse a --tenants config text into specs.  On failure returns
 * false and sets @p error to a line-numbered diagnostic; for
 * unknown workload/policy names the diagnostic lists the known
 * names, one per line.
 */
bool parseTenantSpecs(const std::string &text,
                      std::vector<TenantSpec> *out,
                      std::string *error);

/** Parse a --tenants config file (reads then parses). */
bool parseTenantSpecFile(const std::string &path,
                         std::vector<TenantSpec> *out,
                         std::string *error);

/**
 * Expand count-replicated specs into single tenants (count=1):
 * a spec with count N becomes N copies named id.0 .. id.N-1.
 * Returns false (with @p error) when the expanded id list has
 * duplicates.
 */
bool expandTenantSpecs(const std::vector<TenantSpec> &in,
                       std::vector<TenantSpec> *out,
                       std::string *error);

} // namespace thermostat

#endif // THERMOSTAT_HOST_TENANT_SPEC_HH
