/**
 * @file
 * The multi-tenant datacenter host: N guest workloads consolidated
 * onto one two-tiered box, each driven by its own tiering policy.
 *
 * Thermostat's motivating deployment (paper Secs 1, 5.4) is a
 * datacenter host packing many VMs against a shared cheap-memory
 * tier.  This driver models that consolidation: every tenant is a
 * full Simulation (own Machine, policy, metrics, tracer) placed in
 * a disjoint virtual address window, and the host interleaves
 * their epochs round-robin in tenant order while a HostArbiter
 * meters the shared migration bandwidth and fast-tier capacity.
 *
 * Determinism and parity are load-bearing design points:
 *
 *  - Tenant i's RNG seed is base.seed + i, its address window is
 *    disjoint by construction, and epochs execute in tenant order,
 *    so a host run is a deterministic function of (specs, config).
 *  - Tenant 0 receives base.seed exactly, the default address
 *    window, and -- when no arbiter limit is configured -- no
 *    admission gate.  A 1-tenant host run is therefore
 *    byte-identical to the standalone Simulation it wraps; the
 *    parity test pins this.
 *  - All tenants share one worker pool (sized once from the base
 *    config), so consolidation does not multiply threads; lane
 *    partitioning keeps results worker-count-invariant.
 *
 * Per-tenant slowdown/SLO accounting lands in the host metric
 * registry under tenant/<id>/..., in the host flight recorder
 * (one row per host epoch with per-tenant columns) and in the
 * returned HostResult.
 */

#ifndef THERMOSTAT_HOST_DATACENTER_HOST_HH
#define THERMOSTAT_HOST_DATACENTER_HOST_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.hh"
#include "host/host_arbiter.hh"
#include "host/tenant_spec.hh"
#include "obs/flight_recorder.hh"
#include "obs/metrics.hh"
#include "sim/simulation.hh"

namespace thermostat
{

/** Host-level configuration. */
struct HostConfig
{
    /**
     * Template for every tenant's SimConfig.  Per-tenant fields
     * (seed, policy, knobs, machine tuning, address window, fault
     * plan) are derived from the TenantSpec on top of this base.
     */
    SimConfig base;

    /** Shared-resource limits (all-zero = inert arbiter). */
    HostArbiterConfig arbiter;

    /**
     * Spacing of tenant address windows.  Tenant 0 keeps the
     * default base (parity); tenant i > 0 starts at
     * kFirstRegionBase + i * stride.  Must exceed any tenant's
     * final virtual footprint.
     */
    Addr addressStride = 1024_GiB;

    /**
     * Retune each tenant's machine to its workload
     * (tunedMachineConfig), as the standalone CLI does.  Tests
     * that inject synthetic workloads turn this off so base.machine
     * is used verbatim.
     */
    bool tuneMachinePerWorkload = true;

    /**
     * Verify the arbiter's residency ledger against a ground-truth
     * page-table scan every epoch (the invariant the test layer
     * pins).  O(leaves) per tenant per epoch; on by default.
     */
    bool verifyLedger = true;

    /** Host flight-recorder capacity in epochs. */
    std::size_t flightCapacity = 1u << 12;
};

/** One tenant's end-of-run accounting. */
struct TenantOutcome
{
    std::string id;
    TenantSpec spec;
    SimResult result;

    double avgEpochSlowdown = 0.0;
    double maxEpochSlowdown = 0.0;
    Count measuredEpochs = 0;
    /** Measured epochs whose slowdown exceeded spec.targetPct. */
    Count sloViolations = 0;

    /** Final arbiter-ledger residency. */
    std::uint64_t fastBytes = 0;
    std::uint64_t slowBytes = 0;
    Count arbiterDenials = 0;
    std::uint64_t bytesDenied = 0;
};

/** Everything a host run produces. */
struct HostResult
{
    std::vector<TenantOutcome> tenants;
    Count hostEpochs = 0;
    Count arbiterDenials = 0;
    std::uint64_t bytesDenied = 0;
    /** Ledger-vs-scan mismatches (0 on a correct host). */
    Count invariantViolations = 0;
    /** Tenant leaves mapped outside their window (0 always). */
    Count isolationViolations = 0;
};

/**
 * Owns the tenant simulations, the arbiter and the host-level
 * observability, and interleaves tenant epochs to completion.
 */
class DatacenterHost
{
  public:
    /**
     * Test seam: builds the workload for one tenant.  The default
     * factory resolves spec.workload through makeWorkload /
     * makeRedisBursty / TraceWorkload::load (fatal on a bad trace
     * path; the CLI validates first).
     */
    using WorkloadFactory = std::function<std::unique_ptr<Workload>(
        const TenantSpec &, const SimConfig &)>;

    /**
     * @param specs Expanded tenant list (count == 1 each; run
     *        expandTenantSpecs() first).  Must be non-empty.
     * @param config Host configuration.
     * @param factory Optional workload factory override.
     */
    DatacenterHost(const std::vector<TenantSpec> &specs,
                   const HostConfig &config,
                   WorkloadFactory factory = nullptr);

    /** Run every tenant to completion and collect results. */
    HostResult run();

    unsigned tenantCount() const
    {
        return static_cast<unsigned>(tenants_.size());
    }
    const std::string &tenantId(unsigned i) const
    {
        return tenants_[i].spec.id;
    }
    Simulation &tenant(unsigned i) { return *tenants_[i].sim; }
    const Simulation &tenant(unsigned i) const
    {
        return *tenants_[i].sim;
    }

    HostArbiter &arbiter() { return arbiter_; }
    const HostArbiter &arbiter() const { return arbiter_; }

    /** Host-level registry: host/... and tenant/<id>/... metrics. */
    MetricRegistry &metrics() { return metrics_; }
    const MetricRegistry &metrics() const { return metrics_; }

    /** One row per host epoch; per-tenant slowdown/residency. */
    EpochFlightRecorder &flightRecorder() { return flight_; }
    const EpochFlightRecorder &flightRecorder() const
    {
        return flight_;
    }

    /**
     * Count leaves mapped outside their owner's address window
     * (ground-truth page-table scan).  Zero unless the window
     * assignment is broken.
     */
    Count isolationViolations();

    /** The SimConfig tenant @p i runs with (derivation exposed
     *  so tests can reproduce it for parity checks). */
    const SimConfig &tenantConfig(unsigned i) const
    {
        return tenants_[i].config;
    }

    /** Start of tenant @p i's virtual address window. */
    Addr windowBase(unsigned i) const;

  private:
    /** One tenant's runtime state. */
    struct TenantRuntime
    {
        TenantSpec spec;
        SimConfig config;
        std::unique_ptr<Simulation> sim;

        // Cumulative-counter latches for per-epoch deltas.
        std::uint64_t lastDemoted = 0;
        std::uint64_t lastPromoted = 0;
        std::uint64_t lastRss = 0;

        // SLO accounting over measured epochs.
        double slowdownSum = 0.0;
        double maxSlowdown = 0.0;
        double lastSlowdown = 0.0;
        Count measuredEpochs = 0;
        Count sloViolations = 0;
    };

    SimConfig deriveConfig(const TenantSpec &spec,
                           unsigned index) const;
    void registerTenantMetrics(unsigned index);
    /** Flight columns depend only on the spec count, so the
     *  recorder can be built before tenants_ is populated. */
    static std::vector<std::string>
    hostFlightColumnsFor(const std::vector<TenantSpec> &specs);
    void appendFlightRow(Ns at, unsigned active);

    HostConfig config_;
    std::unique_ptr<ThreadPool> pool_; //!< shared by all tenants
    std::vector<TenantRuntime> tenants_;
    HostArbiter arbiter_;
    MetricRegistry metrics_;
    EpochFlightRecorder flight_;
};

} // namespace thermostat

#endif // THERMOSTAT_HOST_DATACENTER_HOST_HH
