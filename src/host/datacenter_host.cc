#include "host/datacenter_host.hh"

#include <utility>

#include "common/logging.hh"
#include "sim/app_tuning.hh"
#include "workload/cloud_apps.hh"
#include "workload/trace.hh"

namespace thermostat
{

namespace
{

constexpr char kTracePrefix[] = "trace:";

/** Build the workload a spec names (the default factory). */
std::unique_ptr<Workload>
makeTenantWorkload(const TenantSpec &spec, const SimConfig &config)
{
    if (spec.workload.compare(0, sizeof(kTracePrefix) - 1,
                              kTracePrefix) == 0) {
        const std::string path =
            spec.workload.substr(sizeof(kTracePrefix) - 1);
        std::string error;
        auto w = TraceWorkload::load(path, &error);
        if (w == nullptr) {
            TSTAT_FATAL("tenant '%s': %s", spec.id.c_str(),
                        error.c_str());
        }
        return w;
    }
    if (spec.workload == "redis-bursty") {
        return makeRedisBursty(config.seed);
    }
    return makeWorkload(spec.workload, config.seed);
}

/** The app-tuning key for a spec ("redis-bursty" tunes as redis). */
std::string
tuningName(const TenantSpec &spec)
{
    return spec.workload == "redis-bursty" ? "redis"
                                           : spec.workload;
}

/** "tenant/<id>/<leaf>" (built here so registration call sites
 *  carry only lint-clean leaf literals). */
std::string
tenantMetricName(const std::string &id, const std::string &leaf)
{
    return "tenant/" + id + "/" + leaf;
}

/** Shared worker pool sized from the base config; null = serial. */
std::unique_ptr<ThreadPool>
makeSharedPool(const SimConfig &base)
{
    const unsigned shards = Simulation::resolveShards(base);
    return shards > 1 ? std::make_unique<ThreadPool>(shards)
                      : nullptr;
}

} // namespace

DatacenterHost::DatacenterHost(const std::vector<TenantSpec> &specs,
                               const HostConfig &config,
                               WorkloadFactory factory)
    : config_(config),
      pool_(makeSharedPool(config.base)),
      arbiter_(config.arbiter,
               static_cast<unsigned>(specs.empty() ? 1
                                                   : specs.size())),
      flight_(hostFlightColumnsFor(specs), config.flightCapacity)
{
    TSTAT_ASSERT(!specs.empty(), "host needs at least one tenant");
    TSTAT_ASSERT((config_.addressStride & (kPageSize2M - 1)) == 0,
                 "address stride must be 2MB aligned");
    tenants_.reserve(specs.size());
    for (unsigned i = 0; i < specs.size(); ++i) {
        const TenantSpec &spec = specs[i];
        TSTAT_ASSERT(spec.count == 1,
                     "tenant '%s' not expanded (count=%u); run "
                     "expandTenantSpecs first",
                     spec.id.c_str(), spec.count);
        TenantRuntime rt;
        rt.spec = spec;
        rt.config = deriveConfig(spec, i);
        auto workload =
            factory ? factory(spec, rt.config)
                    : makeTenantWorkload(spec, rt.config);
        TSTAT_ASSERT(workload != nullptr,
                     "tenant '%s': workload factory returned null",
                     spec.id.c_str());
        rt.sim = std::make_unique<Simulation>(
            std::move(workload), rt.config, pool_.get());
        tenants_.push_back(std::move(rt));
    }
    // Admission gates only when a limit is configured: an inert
    // arbiter leaves every tenant on the standalone code path
    // (the N=1 parity guarantee).
    if (arbiter_.metering()) {
        for (unsigned i = 0; i < tenants_.size(); ++i) {
            tenants_[i].sim->migrator().setAdmission(
                arbiter_.gate(i));
        }
    }
    arbiter_.registerMetrics(metrics_);
    flight_.registerMetrics(metrics_);
    metrics_.addCallback("host/tenants", [this] {
        return static_cast<double>(tenants_.size());
    });
    for (unsigned i = 0; i < tenants_.size(); ++i) {
        registerTenantMetrics(i);
    }
}

SimConfig
DatacenterHost::deriveConfig(const TenantSpec &spec,
                             unsigned index) const
{
    SimConfig cfg = config_.base;
    // Tenant 0 gets the base seed exactly so a 1-tenant host
    // reproduces the standalone run byte-for-byte.
    cfg.seed = config_.base.seed + index;
    cfg.policy = spec.policy;
    cfg.policyParams.coldFraction = spec.coldFraction;
    cfg.params.tolerableSlowdownPct = spec.targetPct;
    if (config_.tuneMachinePerWorkload) {
        const MachineConfig tuned =
            tunedMachineConfig(tuningName(spec));
        const MachineConfig &base = config_.base.machine;
        cfg.machine = tuned;
        // The base's mode switches survive retuning, exactly as
        // the standalone CLI applies them after tunedMachineConfig.
        cfg.machine.slowMode = base.slowMode;
        cfg.machine.countingMode = base.countingMode;
        cfg.machine.thpEnabled = base.thpEnabled;
        if (base.slowMode == SlowEmuMode::Device) {
            cfg.machine.trap.faultLatency =
                base.trap.faultLatency;
        }
    }
    cfg.machine.addressBase = windowBase(index) == kFirstRegionBase
                                  ? 0
                                  : windowBase(index);
    if (!spec.faultPlan.empty()) {
        std::string error;
        FaultPlan plan;
        if (!FaultPlan::parse(spec.faultPlan, plan, error)) {
            TSTAT_FATAL("tenant '%s': bad fault-plan: %s",
                        spec.id.c_str(), error.c_str());
        }
        cfg.faultPlan = plan;
    }
    return cfg;
}

Addr
DatacenterHost::windowBase(unsigned i) const
{
    return kFirstRegionBase +
           static_cast<Addr>(i) * config_.addressStride;
}

void
DatacenterHost::registerTenantMetrics(unsigned index)
{
    const std::string &id = tenants_[index].spec.id;
    metrics_.addCallback(tenantMetricName(id, "slowdown"),
                         [this, index] {
                             return tenants_[index].lastSlowdown;
                         });
    metrics_.addCallback(
        tenantMetricName(id, "avg_slowdown"), [this, index] {
            const TenantRuntime &t = tenants_[index];
            return t.measuredEpochs > 0
                       ? t.slowdownSum /
                             static_cast<double>(t.measuredEpochs)
                       : 0.0;
        });
    metrics_.addCallback(tenantMetricName(id, "max_slowdown"),
                         [this, index] {
                             return tenants_[index].maxSlowdown;
                         });
    metrics_.addCallback(
        tenantMetricName(id, "slo_violations"), [this, index] {
            return static_cast<double>(
                tenants_[index].sloViolations);
        });
    metrics_.addCallback(
        tenantMetricName(id, "measured_epochs"), [this, index] {
            return static_cast<double>(
                tenants_[index].measuredEpochs);
        });
    metrics_.addCallback(tenantMetricName(id, "fast_bytes"),
                         [this, index] {
                             return static_cast<double>(
                                 arbiter_.fastBytes(index));
                         });
    metrics_.addCallback(tenantMetricName(id, "slow_bytes"),
                         [this, index] {
                             return static_cast<double>(
                                 arbiter_.slowBytes(index));
                         });
    metrics_.addCallback(tenantMetricName(id, "denials"),
                         [this, index] {
                             return static_cast<double>(
                                 arbiter_.denials(index));
                         });
    metrics_.addCallback(tenantMetricName(id, "bytes_denied"),
                         [this, index] {
                             return static_cast<double>(
                                 arbiter_.bytesDenied(index));
                         });
}

std::vector<std::string>
DatacenterHost::hostFlightColumnsFor(
    const std::vector<TenantSpec> &specs)
{
    std::vector<std::string> cols = {
        "active_tenants", "grant_bytes",  "used_bytes",
        "denials",        "bytes_denied", "fast_bytes",
        "slow_bytes",     "invariant_violations"};
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const std::string t = "t" + std::to_string(i);
        cols.push_back(t + "_slowdown");
        cols.push_back(t + "_fast_bytes");
        cols.push_back(t + "_denials");
    }
    return cols;
}

void
DatacenterHost::appendFlightRow(Ns at, unsigned active)
{
    std::uint64_t grant = 0;
    std::uint64_t used = 0;
    for (unsigned i = 0; i < tenants_.size(); ++i) {
        grant += arbiter_.grantBytes(i);
        used += arbiter_.usedGrantBytes(i);
    }
    std::vector<double> row = {
        static_cast<double>(active),
        static_cast<double>(grant),
        static_cast<double>(used),
        static_cast<double>(arbiter_.totalDenials()),
        static_cast<double>(arbiter_.totalBytesDenied()),
        static_cast<double>(arbiter_.totalFastBytes()),
        static_cast<double>(arbiter_.totalSlowBytes()),
        static_cast<double>(arbiter_.invariantViolations())};
    for (unsigned i = 0; i < tenants_.size(); ++i) {
        row.push_back(tenants_[i].lastSlowdown);
        row.push_back(static_cast<double>(arbiter_.fastBytes(i)));
        row.push_back(static_cast<double>(arbiter_.denials(i)));
    }
    flight_.append(at, row);
}

Count
DatacenterHost::isolationViolations()
{
    Count violations = 0;
    for (unsigned i = 0; i < tenants_.size(); ++i) {
        const Addr lo = windowBase(i);
        const Addr hi = lo + config_.addressStride;
        tenants_[i].sim->machine().space().pageTable().forEachLeaf(
            [&](Addr vaddr, Pte &, bool) {
                if (vaddr < lo || vaddr >= hi) {
                    ++violations;
                }
            });
    }
    return violations;
}

HostResult
DatacenterHost::run()
{
    const unsigned n = tenantCount();
    for (unsigned i = 0; i < n; ++i) {
        TenantRuntime &t = tenants_[i];
        t.sim->startRun();
        AddressSpace &space = t.sim->machine().space();
        arbiter_.setInitialResidency(
            i, space.bytesInTier(Tier::Fast),
            space.bytesInTier(Tier::Slow));
        t.lastRss = space.rssBytes();
        t.lastDemoted = t.sim->migrator().stats().bytesDemoted;
        t.lastPromoted = t.sim->migrator().stats().bytesPromoted;
    }

    HostResult result;
    std::vector<bool> active(n, false);
    Ns host_time = 0;
    while (true) {
        unsigned live = 0;
        for (unsigned i = 0; i < n; ++i) {
            active[i] = !tenants_[i].sim->runDone();
            live += active[i] ? 1u : 0u;
        }
        if (live == 0) {
            break;
        }
        arbiter_.beginEpoch(host_time, active);
        for (unsigned i = 0; i < n; ++i) {
            if (!active[i]) {
                continue;
            }
            TenantRuntime &t = tenants_[i];
            const Simulation::EpochReport rep =
                t.sim->stepEpoch();

            // Reconcile the residency ledger from this epoch's
            // cumulative-counter deltas.
            const MigrationStats &mig = t.sim->migrator().stats();
            AddressSpace &space = t.sim->machine().space();
            const std::uint64_t rss = space.rssBytes();
            arbiter_.applyEpochDeltas(
                i, mig.bytesDemoted - t.lastDemoted,
                mig.bytesPromoted - t.lastPromoted,
                rss - t.lastRss);
            t.lastDemoted = mig.bytesDemoted;
            t.lastPromoted = mig.bytesPromoted;
            t.lastRss = rss;
            if (config_.verifyLedger) {
                arbiter_.verifyTenant(
                    i, space.bytesInTier(Tier::Fast),
                    space.bytesInTier(Tier::Slow));
            }

            if (rep.measured) {
                t.lastSlowdown = rep.slowdown;
                t.slowdownSum += rep.slowdown;
                if (rep.slowdown > t.maxSlowdown) {
                    t.maxSlowdown = rep.slowdown;
                }
                ++t.measuredEpochs;
                if (rep.slowdown >
                    t.spec.targetPct / 100.0) {
                    ++t.sloViolations;
                }
            }
        }
        host_time += config_.base.epoch;
        ++result.hostEpochs;
        appendFlightRow(host_time, live);
    }

    result.isolationViolations = isolationViolations();
    for (unsigned i = 0; i < n; ++i) {
        TenantRuntime &t = tenants_[i];
        TenantOutcome out;
        out.id = t.spec.id;
        out.spec = t.spec;
        out.result = t.sim->finishRun();
        out.avgEpochSlowdown =
            t.measuredEpochs > 0
                ? t.slowdownSum /
                      static_cast<double>(t.measuredEpochs)
                : 0.0;
        out.maxEpochSlowdown = t.maxSlowdown;
        out.measuredEpochs = t.measuredEpochs;
        out.sloViolations = t.sloViolations;
        out.fastBytes = arbiter_.fastBytes(i);
        out.slowBytes = arbiter_.slowBytes(i);
        out.arbiterDenials = arbiter_.denials(i);
        out.bytesDenied = arbiter_.bytesDenied(i);
        result.tenants.push_back(std::move(out));
    }
    result.arbiterDenials = arbiter_.totalDenials();
    result.bytesDenied = arbiter_.totalBytesDenied();
    result.invariantViolations = arbiter_.invariantViolations();
    for (const std::string &msg : arbiter_.messages()) {
        TSTAT_WARN("host arbiter: %s", msg.c_str());
    }
    return result;
}

} // namespace thermostat
