/**
 * @file
 * The datacenter host's migration/capacity arbiter.
 *
 * When N tenants consolidate onto one two-tiered box, two shared
 * resources need metering: the inter-tier copy engine (migration
 * bandwidth) and the fast tier's capacity.  The arbiter owns both:
 *
 *  - Bandwidth: each epoch it splits the host's migration-byte
 *    budget fairly across active tenants (equal shares, remainder
 *    to the lowest tenant indices -- deterministic), and every
 *    migration a tenant's PageMigrator attempts is charged against
 *    that tenant's grant via the MigrationAdmission gate.
 *  - Capacity: a per-tenant residency ledger (fast/slow bytes)
 *    tracks each tenant's fast-tier footprint; promotions that
 *    would push a tenant past its fast-share cap, or the host past
 *    its total fast cap, are denied.
 *
 * A denial surfaces to the policy as moved=false -- the same shape
 * as a full tier, which every engine already handles -- so no
 * policy code knows the arbiter exists.
 *
 * The ledger is maintained incrementally (initial residency scan,
 * then per-epoch migration-stats deltas plus RSS growth, which
 * first-touches fast).  Because that accounting is independent of
 * the page table, the host verifies it each epoch against a
 * ground-truth tier scan; any mismatch increments
 * invariantViolations() -- the property the invariant test layer
 * pins.
 *
 * With no caps configured the arbiter is inert: no gate is
 * installed and tenant runs are byte-identical to standalone runs.
 */

#ifndef THERMOSTAT_HOST_HOST_ARBITER_HH
#define THERMOSTAT_HOST_HOST_ARBITER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "sys/migration.hh"

namespace thermostat
{

class MetricRegistry;

/** Shared-resource limits; 0 always means "unlimited". */
struct HostArbiterConfig
{
    /** Host-wide migration copy budget, bytes/sec. */
    double migrationBwBytesPerSec = 0.0;

    /** Cap on the sum of all tenants' fast-tier bytes. */
    std::uint64_t hostFastCapBytes = 0;

    /** Cap on any single tenant's fast-tier bytes. */
    std::uint64_t tenantFastCapBytes = 0;

    /** Epoch length the bandwidth budget is granted over. */
    Ns epoch = kNsPerSec;
};

/**
 * Meters migration bandwidth and fast-tier capacity across the
 * host's tenants.  One Gate per tenant adapts the tenant-less
 * MigrationAdmission interface onto the shared arbiter.
 */
class HostArbiter
{
  public:
    HostArbiter(const HostArbiterConfig &config, unsigned tenants);

    /** Whether any limit is configured (else fully inert). */
    bool metering() const
    {
        return config_.migrationBwBytesPerSec > 0.0 ||
               config_.hostFastCapBytes != 0 ||
               config_.tenantFastCapBytes != 0;
    }

    /** The admission gate to install into tenant @p i's migrator. */
    MigrationAdmission *gate(unsigned tenant)
    {
        return &gates_[tenant];
    }

    /**
     * Start an epoch: reset per-epoch usage and split the epoch's
     * bandwidth budget over the tenants flagged @p active -- equal
     * integer shares, the remainder going one byte at a time to the
     * lowest active indices, so the split is deterministic.
     */
    void beginEpoch(Ns now, const std::vector<bool> &active);

    /** Seed tenant @p i's residency ledger (pre-run scan). */
    void setInitialResidency(unsigned tenant, std::uint64_t fast,
                             std::uint64_t slow);

    /**
     * Fold one tenant epoch's residency changes into the ledger:
     * @p demoted / @p promoted are this epoch's successful
     * migration bytes, @p rss_growth the bytes the workload newly
     * populated (first-touch fast).  Also clears the tenant's
     * in-epoch prospective deltas.
     */
    void applyEpochDeltas(unsigned tenant, std::uint64_t demoted,
                          std::uint64_t promoted,
                          std::uint64_t rss_growth);

    /**
     * Check the ledger against a ground-truth page-table scan;
     * returns true when they agree, else records a violation.
     */
    bool verifyTenant(unsigned tenant, std::uint64_t actual_fast,
                      std::uint64_t actual_slow);

    // ----- per-tenant accounting reads --------------------------------
    std::uint64_t grantBytes(unsigned tenant) const
    {
        return ledger_[tenant].grantBytes;
    }
    std::uint64_t usedGrantBytes(unsigned tenant) const
    {
        return ledger_[tenant].usedBytes;
    }
    std::uint64_t fastBytes(unsigned tenant) const
    {
        return ledger_[tenant].fastBytes;
    }
    std::uint64_t slowBytes(unsigned tenant) const
    {
        return ledger_[tenant].slowBytes;
    }
    Count denials(unsigned tenant) const
    {
        return ledger_[tenant].denials;
    }
    std::uint64_t bytesDenied(unsigned tenant) const
    {
        return ledger_[tenant].bytesDenied;
    }

    // ----- host-level accounting reads --------------------------------
    std::uint64_t totalFastBytes() const;
    std::uint64_t totalSlowBytes() const;
    Count totalDenials() const;
    std::uint64_t totalBytesDenied() const;
    Count invariantViolations() const
    {
        return invariantViolations_;
    }
    const std::vector<std::string> &messages() const
    {
        return messages_;
    }

    const HostArbiterConfig &config() const { return config_; }

    /** "host/arbiter/..." counters in @p registry. */
    void registerMetrics(MetricRegistry &registry) const;

  private:
    /** Adapter: tags admissions with the owning tenant index. */
    class Gate : public MigrationAdmission
    {
      public:
        Gate(HostArbiter &arbiter, unsigned tenant)
            : arbiter_(arbiter), tenant_(tenant)
        {
        }

        bool
        admit(Addr vaddr, Tier target, std::uint64_t bytes,
              Ns now) override
        {
            return arbiter_.admit(tenant_, vaddr, target, bytes,
                                  now);
        }

      private:
        HostArbiter &arbiter_;
        unsigned tenant_;
    };

    struct TenantLedger
    {
        std::uint64_t fastBytes = 0;
        std::uint64_t slowBytes = 0;
        std::uint64_t grantBytes = 0; //!< this epoch's bw share
        std::uint64_t usedBytes = 0;  //!< bw consumed this epoch
        /**
         * Net fast-tier bytes admitted (not yet reconciled) this
         * epoch: promotions add, demotions subtract.  Conservative
         * -- an admitted migration that later fails to allocate
         * still counts until applyEpochDeltas() resets it -- but
         * deterministic, and reconciled every epoch.
         */
        std::int64_t pendingFastDelta = 0;
        Count denials = 0;
        std::uint64_t bytesDenied = 0;
    };

    bool admit(unsigned tenant, Addr vaddr, Tier target,
               std::uint64_t bytes, Ns now);

    /** Ledger fast bytes plus in-epoch prospective delta. */
    std::int64_t effectiveFast(const TenantLedger &t) const
    {
        return static_cast<std::int64_t>(t.fastBytes) +
               t.pendingFastDelta;
    }

    HostArbiterConfig config_;
    std::vector<Gate> gates_;
    std::vector<TenantLedger> ledger_;
    Count grantsIssued_ = 0;
    std::uint64_t grantBytesIssued_ = 0;
    Count invariantViolations_ = 0;
    std::vector<std::string> messages_;
};

} // namespace thermostat

#endif // THERMOSTAT_HOST_HOST_ARBITER_HH
