#include "policy/nomad_policy.hh"

#include <algorithm>
#include <vector>

#include "common/logging.hh"
#include "migrate/migration_queue.hh"
#include "obs/metrics.hh"

namespace thermostat
{

namespace
{
const std::string kName = "nomad";
} // namespace

NomadPolicy::NomadPolicy(const PolicyContext &ctx)
    : TieringPolicy(ctx)
{
    TSTAT_ASSERT(ctx.queue != nullptr && ctx.transactions != nullptr,
                 "nomad requires the migration queue");
    ctx.queue->activate();
    ctx.transactions->activate();
}

const std::string &
NomadPolicy::name() const
{
    return kName;
}

void
NomadPolicy::onProfiledAccess(Addr base, bool huge, bool write,
                              Count weight)
{
    (void)huge;
    WindowEntry &entry = window_[base];
    if (write) {
        entry.writes += weight;
        // Dirty-revalidation feed: a write aborts any open
        // transaction on the page and drops its read replica.
        transactions()->markDirty(base, nowHint_);
    } else {
        entry.reads += weight;
    }
}

void
NomadPolicy::tick(Ns now)
{
    nowHint_ = now;
    ++stats_.ticks;
    if (now < nextDecision_) {
        return;
    }
    applyQueueCompletions();
    if (now > 0) {
        runPeriod(now);
    }
    lastDecision_ = now;
    nextDecision_ = now + params().decisionPeriod;
}

void
NomadPolicy::runPeriod(Ns now)
{
    ++stats_.decisionPeriods;
    const double period_sec =
        static_cast<double>(now - lastDecision_) /
        static_cast<double>(kNsPerSec);

    // Promotion pass: placed pages that turned hot this window,
    // hottest first, bounded by the per-period batch.  Windows with
    // zero writes mark the page read-mostly: the promotion retains
    // the slow copy as a replica.
    struct Hot
    {
        Addr base;
        bool huge;
        Count reads;
        Count writes;
    };
    std::vector<Hot> hot;
    const auto consider = [&](Addr base, bool huge) {
        const auto it = window_.find(base);
        if (it == window_.end() || hasInFlight(base)) {
            return;
        }
        const Count total = it->value.reads + it->value.writes;
        if (static_cast<double>(total) / period_sec >=
            params().promoteRateThreshold) {
            hot.push_back(
                {base, huge, it->value.reads, it->value.writes});
        }
    };
    for (const Addr base : placedHuge_) {
        consider(base, true);
    }
    for (const Addr base : placedBase_) {
        consider(base, false);
    }
    std::sort(hot.begin(), hot.end(), [](const Hot &a, const Hot &b) {
        const Count at = a.reads + a.writes;
        const Count bt = b.reads + b.writes;
        if (at != bt) {
            return at > bt;
        }
        return a.base < b.base;
    });
    std::size_t promoted = 0;
    for (const Hot &h : hot) {
        if (promoted >= params().promoteBatch) {
            break;
        }
        if (queue()->busy()) {
            ++throttleSkips_;
            break;
        }
        const bool retain = h.writes == 0;
        if (orderPromotion(h.base, h.huge, now, true, retain)) {
            ++promoted;
        }
    }

    // Demotion pass: refill the budget with pages the window never
    // saw, in address order.  Every demotion is transactional; the
    // queue downgrades replica-backed pages to shadow-free moves on
    // its own.
    struct Cold
    {
        Addr base;
        bool huge;
        std::uint64_t bytes;
    };
    std::vector<Cold> cold;
    space().pageTable().forEachLeaf([&](Addr base, Pte &, bool huge) {
        if (isPlaced(base) || hasInFlight(base) ||
            window_.contains(base)) {
            return;
        }
        cold.push_back(
            {base, huge,
             huge ? kPageSize2M
                  : static_cast<std::uint64_t>(kPageSize4K)});
    });
    std::sort(cold.begin(), cold.end(),
              [](const Cold &a, const Cold &b) {
                  return a.base < b.base;
              });
    const std::uint64_t budget = placementBudgetBytes();
    for (const Cold &c : cold) {
        if (orderedColdBytes() + c.bytes > budget) {
            break;
        }
        if (queue()->busy()) {
            ++throttleSkips_;
            break;
        }
        orderDemotion(c.base, c.huge, now, true);
    }
    window_.clear();
}

void
NomadPolicy::registerMetrics(MetricRegistry &registry)
{
    TieringPolicy::registerMetrics(registry);
    registry.addCallback(metricPrefix(kName) + ".throttle_skips",
                         [this] {
                             return static_cast<double>(
                                 throttleSkips_);
                         });
}

} // namespace thermostat
