/**
 * @file
 * oracle: placement from the workload's true per-region rates.
 *
 * The simulator knows the ground truth no real kernel can see: each
 * workload's configured traffic mixture (Workload::regionRates()).
 * The oracle ranks regions by true access density (accesses per
 * second per byte), fills the coldFraction budget from the coldest
 * region up -- no profiling, no poison-fault counting, no
 * misclassification -- and re-walks each decision period only to
 * pick up newly mapped pages.  Its slowdown at a given cold
 * fraction is the lower bound any online region-granular policy is
 * chasing.  With a workload that exposes no rates (e.g. a bare
 * TraceWorkload) it degrades gracefully: it warns once and places
 * nothing.
 */

#ifndef THERMOSTAT_POLICY_ORACLE_POLICY_HH
#define THERMOSTAT_POLICY_ORACLE_POLICY_HH

#include "policy/tiering_policy.hh"

namespace thermostat
{

class OraclePolicy : public TieringPolicy
{
  public:
    explicit OraclePolicy(const PolicyContext &ctx)
        : TieringPolicy(ctx)
    {
    }

    const std::string &name() const override;
    void tick(Ns now) override;

  private:
    void runPeriod(Ns now);

    Ns nextDecision_ = 0;
    bool warned_ = false;
};

} // namespace thermostat

#endif // THERMOSTAT_POLICY_ORACLE_POLICY_HH
