#include "policy/thermostat_policy.hh"

#include "obs/metrics.hh"

namespace thermostat
{

namespace
{
const std::string kName = "thermostat";
} // namespace

ThermostatPolicy::ThermostatPolicy(const PolicyContext &ctx)
    : TieringPolicy(ctx),
      // The seed derivation must stay in lockstep with the
      // pre-policy driver: goldens pin the byte-identical output.
      engine_(ctx.cgroup, ctx.space, ctx.trap, ctx.kstaled,
              // rng: thermostat sampling-engine stream
              ctx.migrator, Rng(ctx.seed ^ 0x7e47a11ULL))
{
}

const std::string &
ThermostatPolicy::name() const
{
    return kName;
}

void
ThermostatPolicy::tick(Ns now)
{
    ++stats_.ticks;
    engine_.tick(now);
    // Mirror the engine's counters into the generic PolicyStats so
    // policy/thermostat/* reads the same truth as engine/*.
    const EngineStats &es = engine_.stats();
    stats_.decisionPeriods = es.periods;
    stats_.demotionsOrdered = es.coldHugePlaced + es.coldBasePlaced;
    stats_.promotionsOrdered = es.promotions + es.evacuationPromotions;
    stats_.placementFailures = es.migrationFailures;
    stats_.overheadTime = es.overheadTime;
}

std::uint64_t
ThermostatPolicy::coldBytes() const
{
    return engine_.coldBytes();
}

bool
ThermostatPolicy::isProfilingRange(Addr base) const
{
    return engine_.isProfilingRange(base);
}

const TimeSeries *
ThermostatPolicy::slowRateSeries() const
{
    return &engine_.slowRateSeries();
}

void
ThermostatPolicy::setMarkingQuantum(double quantum)
{
    engine_.setMarkingQuantum(quantum);
}

void
ThermostatPolicy::setTracer(EventTracer *tracer)
{
    TieringPolicy::setTracer(tracer);
    engine_.setTracer(tracer);
}

Ns
ThermostatPolicy::takeOverhead()
{
    return engine_.takeOverhead();
}

void
ThermostatPolicy::registerMetrics(MetricRegistry &registry)
{
    // The engine's metrics keep their historical "engine" prefix so
    // existing dashboards and tests stay valid; the generic policy
    // counters appear under policy/thermostat like every engine.
    engine_.registerMetrics(registry, "engine");
    TieringPolicy::registerMetrics(registry);
}

} // namespace thermostat
