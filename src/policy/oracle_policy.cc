#include "policy/oracle_policy.hh"

#include <algorithm>
#include <vector>

#include "common/logging.hh"
#include "workload/workload.hh"

namespace thermostat
{

namespace
{
const std::string kName = "oracle";
} // namespace

const std::string &
OraclePolicy::name() const
{
    return kName;
}

void
OraclePolicy::tick(Ns now)
{
    ++stats_.ticks;
    if (now < nextDecision_) {
        return;
    }
    runPeriod(now);
    nextDecision_ = now + params().decisionPeriod;
}

void
OraclePolicy::runPeriod(Ns now)
{
    ++stats_.decisionPeriods;
    const std::vector<RegionRate> rates =
        workload() ? workload()->regionRates()
                   : std::vector<RegionRate>{};
    if (rates.empty()) {
        if (!warned_) {
            TSTAT_WARN("oracle policy: workload exposes no region "
                       "rates; placing nothing");
            warned_ = true;
        }
        return;
    }

    // Rank regions by true access density, coldest first.
    struct Ranked
    {
        const Region *region;
        double density;
    };
    std::vector<Ranked> ranked;
    for (const RegionRate &rr : rates) {
        const Region *region = space().findRegion(rr.region);
        if (region == nullptr || region->mappedBytes == 0) {
            continue;
        }
        ranked.push_back(
            {region, rr.accessesPerSec /
                         static_cast<double>(region->mappedBytes)});
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const Ranked &a, const Ranked &b) {
                  if (a.density != b.density) {
                      return a.density < b.density;
                  }
                  return a.region->base < b.region->base;
              });

    // Fill the budget from the coldest region up, in address order
    // within each region.
    struct Leaf
    {
        Addr base;
        bool huge;
        std::uint64_t bytes;
    };
    std::vector<Leaf> leaves;
    space().pageTable().forEachLeaf([&](Addr base, Pte &, bool huge) {
        if (isPlaced(base)) {
            return;
        }
        leaves.push_back(
            {base, huge,
             huge ? kPageSize2M
                  : static_cast<std::uint64_t>(kPageSize4K)});
    });
    std::sort(leaves.begin(), leaves.end(),
              [](const Leaf &a, const Leaf &b) {
                  return a.base < b.base;
              });
    const std::uint64_t budget = placementBudgetBytes();
    bool full = false;
    for (const Ranked &r : ranked) {
        for (const Leaf &leaf : leaves) {
            if (leaf.base < r.region->base ||
                leaf.base >= r.region->end()) {
                continue;
            }
            if (placedBytes_ + leaf.bytes > budget) {
                full = true;
                break;
            }
            placePage(leaf.base, leaf.huge, now);
        }
        if (full) {
            break;
        }
    }
}

} // namespace thermostat
