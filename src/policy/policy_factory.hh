/**
 * @file
 * Name-keyed registry of tiering-policy engines.
 *
 * The factory is the one place that knows every concrete engine;
 * drivers (thermostat_sim, the bench harnesses, tests) resolve a
 * policy by name and otherwise program only against TieringPolicy.
 * Adding an engine means one entry in kMakers (policy_factory.cc)
 * -- the CLI listing, validation and the per-policy metric prefix
 * all follow from it.
 */

#ifndef THERMOSTAT_POLICY_POLICY_FACTORY_HH
#define THERMOSTAT_POLICY_POLICY_FACTORY_HH

#include <memory>
#include <string>
#include <vector>

#include "policy/tiering_policy.hh"

namespace thermostat
{

/** One registry row: the engine name and its one-line blurb. */
struct PolicyListing
{
    std::string name;
    std::string description;
};

class PolicyFactory
{
  public:
    /** Registered engine names, in stable (registration) order. */
    static const std::vector<std::string> &names();

    /** Names plus one-line descriptions (--list-policies). */
    static const std::vector<PolicyListing> &listings();

    /** Whether @p name is a registered engine. */
    static bool known(const std::string &name);

    /**
     * Construct the engine registered under @p name; null when the
     * name is unknown (callers surface the known() list).
     */
    static std::unique_ptr<TieringPolicy>
    make(const std::string &name, const PolicyContext &ctx);
};

} // namespace thermostat

#endif // THERMOSTAT_POLICY_POLICY_FACTORY_HH
