/**
 * @file
 * nomad: transactional tiering with non-exclusive residency
 * (PAPERS.md; the Nomad paper's page-management design).
 *
 * Where hotness calls the migrator synchronously, nomad rides the
 * bounded MigrationQueue and the TransactionEngine: every order is
 * a transactional move -- shadow copy this epoch, dirty-revalidate
 * and commit-or-abort the next -- so a page the workload keeps
 * writing simply refuses to demote (the abort bills wear, not a
 * stall), which is Nomad's core win on write-heavy workloads.
 *
 * Read-mostly pages go further: a promotion whose window saw zero
 * writes retains the slow-tier copy as a read replica
 * (non-exclusive residency).  If the page later cools, the demotion
 * spends the replica instead of a shadow copy -- the page "returns"
 * to slow memory for free.  Any write drops the replica.
 *
 * Congestion feedback: the engine stops ordering work for the
 * period when the queue reads busy (queuePressure() at or above
 * queueBusyThreshold), counting the skips it was forced into.
 */

#ifndef THERMOSTAT_POLICY_NOMAD_POLICY_HH
#define THERMOSTAT_POLICY_NOMAD_POLICY_HH

#include "common/flat_map.hh"
#include "policy/tiering_policy.hh"

namespace thermostat
{

class NomadPolicy : public TieringPolicy
{
  public:
    explicit NomadPolicy(const PolicyContext &ctx);

    const std::string &name() const override;
    void tick(Ns now) override;

    bool wantsAccessFeedback() const override { return true; }
    void onProfiledAccess(Addr base, bool huge, bool write,
                          Count weight) override;

    void registerMetrics(MetricRegistry &registry) override;

  private:
    struct WindowEntry
    {
        Count reads = 0;
        Count writes = 0;
    };

    void runPeriod(Ns now);

    FlatMap<Addr, WindowEntry> window_; //!< fed per profiled access
    Ns nextDecision_ = 0;
    Ns lastDecision_ = 0;
    Ns nowHint_ = 0; //!< tick time, for feedback-path events
    Count throttleSkips_ = 0; //!< rounds cut short by congestion
};

} // namespace thermostat

#endif // THERMOSTAT_POLICY_NOMAD_POLICY_HH
