/**
 * @file
 * hotness: access-frequency promotion in the style of Nomad.
 *
 * The policy keeps a per-leaf access-count window fed by the
 * profiling stream.  Each decision period it (i) promotes the placed
 * pages whose windowed rate crossed promoteRateThreshold -- hottest
 * first, at most promoteBatch per period, mirroring Nomad's bounded
 * transactional promotion batches -- and (ii) refills the
 * coldFraction budget with the pages that saw no traffic at all this
 * window.  Migrations ride the shared PageMigrator, so under fault
 * injection a torn copy rolls back transactionally (the PR 3 path)
 * and the page simply stays where it was until the next window.
 */

#ifndef THERMOSTAT_POLICY_HOTNESS_POLICY_HH
#define THERMOSTAT_POLICY_HOTNESS_POLICY_HH

#include "common/flat_map.hh"
#include "policy/tiering_policy.hh"

namespace thermostat
{

class HotnessPolicy : public TieringPolicy
{
  public:
    explicit HotnessPolicy(const PolicyContext &ctx)
        : TieringPolicy(ctx)
    {
    }

    const std::string &name() const override;
    void tick(Ns now) override;

    bool wantsAccessFeedback() const override { return true; }
    void onProfiledAccess(Addr base, bool huge, bool write,
                          Count weight) override;

  private:
    void runPeriod(Ns now);

    FlatMap<Addr, Count> window_; //!< fed per profiled access
    Ns nextDecision_ = 0;
    Ns lastDecision_ = 0;
};

} // namespace thermostat

#endif // THERMOSTAT_POLICY_HOTNESS_POLICY_HH
