/**
 * @file
 * The paper's engine behind the TieringPolicy interface.
 *
 * A thin adapter over core/thermostat.hh: every virtual forwards to
 * the wrapped ThermostatEngine, which keeps its own RNG (seeded
 * exactly as the pre-policy driver did) and its own cold sets, so a
 * run through this adapter is byte-identical to the historical
 * hardwired driver -- the golden tests pin that equivalence.
 */

#ifndef THERMOSTAT_POLICY_THERMOSTAT_POLICY_HH
#define THERMOSTAT_POLICY_THERMOSTAT_POLICY_HH

#include "core/thermostat.hh"
#include "policy/tiering_policy.hh"

namespace thermostat
{

class ThermostatPolicy : public TieringPolicy
{
  public:
    explicit ThermostatPolicy(const PolicyContext &ctx);

    const std::string &name() const override;
    void tick(Ns now) override;
    std::uint64_t coldBytes() const override;
    bool isProfilingRange(Addr base) const override;
    const TimeSeries *slowRateSeries() const override;
    void setMarkingQuantum(double quantum) override;
    void setTracer(EventTracer *tracer) override;
    Ns takeOverhead() override;
    void registerMetrics(MetricRegistry &registry) override;

    /** The wrapped engine (tests and the driver's compat accessor). */
    ThermostatEngine &engine() { return engine_; }
    const ThermostatEngine &engine() const { return engine_; }

  private:
    ThermostatEngine engine_;
};

} // namespace thermostat

#endif // THERMOSTAT_POLICY_THERMOSTAT_POLICY_HH
