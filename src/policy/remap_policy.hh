/**
 * @file
 * remap: variable-granularity block remapping (SNIPPETS 1-2; the
 * ChampSim-Ramulator variable_granularity/CAMEO design).
 *
 * The hardware-remapping line of work moves data between memories
 * at whatever granularity the access pattern earns: whole 2MB
 * blocks when an entire block is idle, 64KB runs when only parts
 * of a block cooled, single 4KB pages for the stragglers.  This
 * engine models that choice per 2MB block each decision period:
 *
 *   fully idle block  ->  one 2MB demotion request
 *   lukewarm block    ->  split (splitHuge), so next period its
 *                         4KB leaves profile individually
 *   idle 4KB leaves   ->  coalesced into contiguous runs of up to
 *                         16 pages (64KB granularity: one queue
 *                         slot, 16 migrations at service time);
 *                         loners go as plain 4KB requests
 *
 * All traffic rides the bounded MigrationQueue, and the engine
 * throttles on queuePressure() -- the CAMEO-style congestion
 * feedback: when the queue reads busy the rest of the round is
 * skipped rather than queued blind.
 */

#ifndef THERMOSTAT_POLICY_REMAP_POLICY_HH
#define THERMOSTAT_POLICY_REMAP_POLICY_HH

#include "common/flat_map.hh"
#include "policy/tiering_policy.hh"

namespace thermostat
{

class RemapPolicy : public TieringPolicy
{
  public:
    explicit RemapPolicy(const PolicyContext &ctx);

    const std::string &name() const override;
    void tick(Ns now) override;

    bool wantsAccessFeedback() const override { return true; }
    void onProfiledAccess(Addr base, bool huge, bool write,
                          Count weight) override;

    void registerMetrics(MetricRegistry &registry) override;

  private:
    /** Pages per 64KB-granularity run request. */
    static constexpr unsigned kRunPages = 16;

    void runPeriod(Ns now);

    FlatMap<Addr, Count> leafWindow_;  //!< per-leaf window counts
    FlatMap<Addr, Count> blockWindow_; //!< per-2MB-block counts
    Ns nextDecision_ = 0;
    Ns lastDecision_ = 0;
    Count throttleSkips_ = 0; //!< rounds cut short by congestion
    Count splits_ = 0;        //!< lukewarm blocks split
    Count demotions2M_ = 0;   //!< whole-block demotion requests
    Count demotionRuns_ = 0;  //!< multi-page (64KB) run requests
    Count demotions4K_ = 0;   //!< single-leaf demotion requests
};

} // namespace thermostat

#endif // THERMOSTAT_POLICY_REMAP_POLICY_HH
