#include "policy/hotness_policy.hh"

#include <algorithm>
#include <vector>

namespace thermostat
{

namespace
{
const std::string kName = "hotness";
} // namespace

const std::string &
HotnessPolicy::name() const
{
    return kName;
}

void
HotnessPolicy::onProfiledAccess(Addr base, bool huge, bool write,
                                Count weight)
{
    (void)huge;
    (void)write;
    window_[base] += weight;
}

void
HotnessPolicy::tick(Ns now)
{
    ++stats_.ticks;
    if (now < nextDecision_) {
        return;
    }
    if (now > 0) {
        runPeriod(now);
    }
    lastDecision_ = now;
    nextDecision_ = now + params().decisionPeriod;
}

void
HotnessPolicy::runPeriod(Ns now)
{
    ++stats_.decisionPeriods;
    const double period_sec =
        static_cast<double>(now - lastDecision_) /
        static_cast<double>(kNsPerSec);

    // Promotion pass: placed pages that turned hot this window,
    // hottest first, bounded by the per-period batch (Nomad's
    // transaction-budget analogue).
    struct Hot
    {
        Addr base;
        bool huge;
        Count count;
    };
    std::vector<Hot> hot;
    for (const Addr base : placedHuge_) {
        const auto it = window_.find(base);
        if (it == window_.end()) {
            continue;
        }
        if (static_cast<double>(it->value) / period_sec >=
            params().promoteRateThreshold) {
            hot.push_back({base, true, it->value});
        }
    }
    for (const Addr base : placedBase_) {
        const auto it = window_.find(base);
        if (it == window_.end()) {
            continue;
        }
        if (static_cast<double>(it->value) / period_sec >=
            params().promoteRateThreshold) {
            hot.push_back({base, false, it->value});
        }
    }
    std::sort(hot.begin(), hot.end(), [](const Hot &a, const Hot &b) {
        if (a.count != b.count) {
            return a.count > b.count;
        }
        return a.base < b.base;
    });
    std::size_t promoted = 0;
    for (const Hot &h : hot) {
        if (promoted >= params().promoteBatch) {
            break;
        }
        if (promotePage(h.base, h.huge, now)) {
            ++promoted;
        }
    }

    // Demotion pass: refill the budget with pages the window never
    // saw.  Address order keeps it deterministic.
    struct Cold
    {
        Addr base;
        bool huge;
        std::uint64_t bytes;
    };
    std::vector<Cold> cold;
    space().pageTable().forEachLeaf([&](Addr base, Pte &, bool huge) {
        if (isPlaced(base) || window_.contains(base)) {
            return;
        }
        cold.push_back(
            {base, huge,
             huge ? kPageSize2M
                  : static_cast<std::uint64_t>(kPageSize4K)});
    });
    std::sort(cold.begin(), cold.end(),
              [](const Cold &a, const Cold &b) {
                  return a.base < b.base;
              });
    const std::uint64_t budget = placementBudgetBytes();
    for (const Cold &c : cold) {
        if (placedBytes_ + c.bytes > budget) {
            break;
        }
        placePage(c.base, c.huge, now);
    }
    window_.clear();
}

} // namespace thermostat
