#include "policy/tiering_policy.hh"

#include <cerrno>
#include <cstdlib>

#include "common/logging.hh"
#include "migrate/migration_queue.hh"
#include "obs/metrics.hh"

namespace thermostat
{

namespace
{

bool
parseDouble(const std::string &value, double *out)
{
    errno = 0;
    char *end = nullptr;
    const double parsed = std::strtod(value.c_str(), &end);
    if (errno != 0 || end == value.c_str() || *end != '\0') {
        return false;
    }
    *out = parsed;
    return true;
}

bool
parseUint(const std::string &value, std::uint64_t *out)
{
    errno = 0;
    char *end = nullptr;
    const unsigned long long parsed =
        std::strtoull(value.c_str(), &end, 10);
    if (errno != 0 || end == value.c_str() || *end != '\0') {
        return false;
    }
    *out = parsed;
    return true;
}

} // namespace

const std::vector<PolicyParamKey> &
policyParamKeys()
{
    static const std::vector<PolicyParamKey> kKeys = {
        {"cold-fraction",
         "fraction of the RSS placed in slow memory (0..1)"},
        {"decision-period-sec",
         "re-evaluation period of the periodic engines, seconds"},
        {"idle-scans-to-demote",
         "lru-age: consecutive idle scans before demotion"},
        {"promote-rate-threshold",
         "accesses/sec above which a placed page is promoted"},
        {"promote-batch", "max promotions per decision period"},
        {"queue-capacity",
         "nomad/remap: bounded migration-queue depth (requests)"},
        {"queue-service-bytes",
         "nomad/remap: bytes serviced per epoch (0 = unlimited)"},
        {"queue-busy-threshold",
         "nomad/remap: pressure at which engines stop enqueuing"},
    };
    return kKeys;
}

bool
setPolicyParam(PolicyParams &params, const std::string &key,
               const std::string &value, std::string *error)
{
    double d = 0.0;
    std::uint64_t u = 0;
    if (key == "cold-fraction") {
        if (!parseDouble(value, &d) || d < 0.0 || d > 1.0) {
            *error = "expects a fraction in [0,1]";
            return false;
        }
        params.coldFraction = d;
    } else if (key == "decision-period-sec") {
        if (!parseDouble(value, &d) || d <= 0.0) {
            *error = "expects a positive number of seconds";
            return false;
        }
        params.decisionPeriod = static_cast<Ns>(
            d * static_cast<double>(kNsPerSec));
    } else if (key == "idle-scans-to-demote") {
        if (!parseUint(value, &u) || u == 0) {
            *error = "expects a positive integer";
            return false;
        }
        params.idleScansToDemote = static_cast<unsigned>(u);
    } else if (key == "promote-rate-threshold") {
        if (!parseDouble(value, &d) || d < 0.0) {
            *error = "expects a non-negative rate";
            return false;
        }
        params.promoteRateThreshold = d;
    } else if (key == "promote-batch") {
        if (!parseUint(value, &u)) {
            *error = "expects a non-negative integer";
            return false;
        }
        params.promoteBatch = static_cast<std::size_t>(u);
    } else if (key == "queue-capacity") {
        if (!parseUint(value, &u) || u == 0) {
            *error = "expects a positive integer";
            return false;
        }
        params.queueCapacity = static_cast<std::size_t>(u);
    } else if (key == "queue-service-bytes") {
        if (!parseUint(value, &u)) {
            *error = "expects a byte count (0 = unlimited)";
            return false;
        }
        params.queueServiceBytes = u;
    } else if (key == "queue-busy-threshold") {
        if (!parseDouble(value, &d) || d <= 0.0 || d > 1.0) {
            *error = "expects a fraction in (0,1]";
            return false;
        }
        params.queueBusyThreshold = d;
    } else {
        *error = "unknown key";
        return false;
    }
    return true;
}

TieringPolicy::TieringPolicy(const PolicyContext &ctx)
    : ctxCgroup_(ctx.cgroup),
      ctxSpace_(ctx.space),
      ctxTrap_(ctx.trap),
      ctxKstaled_(ctx.kstaled),
      ctxMigrator_(ctx.migrator),
      params_(ctx.params),
      workload_(ctx.workload),
      queue_(ctx.queue),
      transactions_(ctx.transactions)
{
}

double
TieringPolicy::queuePressure() const
{
    return queue_ != nullptr ? queue_->pressure() : 0.0;
}

void
TieringPolicy::applyQueueCompletions()
{
    TSTAT_ASSERT(queue_ != nullptr,
                 "applyQueueCompletions without a queue");
    for (const QueueCompletion &done : queue_->takeCompletions()) {
        const auto it = inFlight_.find(done.base);
        if (it != inFlight_.end()) {
            if (it->value == OrderDir::Demote) {
                inFlightDemoteBytes_ -= done.bytes;
            } else {
                inFlightPromoteBytes_ -= done.bytes;
            }
            inFlight_.erase(done.base);
        }
        if (!done.moved) {
            ++stats_.placementFailures;
            continue;
        }
        if (done.target == Tier::Slow) {
            if (done.huge) {
                placedHuge_.insert(done.base);
            } else {
                placedBase_.insert(done.base);
            }
            placedBytes_ += done.bytes;
        } else {
            if (done.huge) {
                placedHuge_.erase(done.base);
            } else {
                placedBase_.erase(done.base);
            }
            placedBytes_ -= done.bytes;
        }
    }
}

bool
TieringPolicy::orderDemotion(Addr base, bool huge, Ns now,
                             bool transactional)
{
    TSTAT_ASSERT(queue_ != nullptr, "orderDemotion without a queue");
    if (inFlight_.contains(base)) {
        return false;
    }
    if (!queue_->enqueueLeaf(base, huge, Tier::Slow, transactional)) {
        return false;
    }
    ++stats_.demotionsOrdered;
    if (tracer_) {
        tracer_->record(EventKind::PolicyDemote, now, base, huge);
    }
    const std::uint64_t bytes =
        huge ? kPageSize2M : static_cast<std::uint64_t>(kPageSize4K);
    inFlight_[base] = OrderDir::Demote;
    inFlightDemoteBytes_ += bytes;
    return true;
}

bool
TieringPolicy::orderPromotion(Addr base, bool huge, Ns now,
                              bool transactional, bool retain)
{
    TSTAT_ASSERT(queue_ != nullptr,
                 "orderPromotion without a queue");
    if (inFlight_.contains(base)) {
        return false;
    }
    if (!queue_->enqueueLeaf(base, huge, Tier::Fast, transactional,
                             retain)) {
        return false;
    }
    ++stats_.promotionsOrdered;
    if (tracer_) {
        tracer_->record(EventKind::PolicyPromote, now, base, huge);
    }
    const std::uint64_t bytes =
        huge ? kPageSize2M : static_cast<std::uint64_t>(kPageSize4K);
    inFlight_[base] = OrderDir::Promote;
    inFlightPromoteBytes_ += bytes;
    return true;
}

bool
TieringPolicy::orderRunDemotion(Addr base, unsigned pages, Ns now)
{
    TSTAT_ASSERT(queue_ != nullptr,
                 "orderRunDemotion without a queue");
    for (unsigned i = 0; i < pages; ++i) {
        if (inFlight_.contains(base + i * kPageSize4K)) {
            return false;
        }
    }
    if (!queue_->enqueueRun(base, pages, Tier::Slow)) {
        return false;
    }
    stats_.demotionsOrdered += pages;
    if (tracer_) {
        // One decision event for the whole run; the value-free
        // per-leaf record appears as each completion lands.
        tracer_->record(EventKind::PolicyDemote, now, base, false,
                        pages);
    }
    for (unsigned i = 0; i < pages; ++i) {
        inFlight_[base + i * kPageSize4K] = OrderDir::Demote;
    }
    inFlightDemoteBytes_ +=
        static_cast<std::uint64_t>(pages) * kPageSize4K;
    return true;
}

std::uint64_t
TieringPolicy::orderedColdBytes() const
{
    const std::uint64_t placed =
        placedBytes_ + inFlightDemoteBytes_;
    return placed >= inFlightPromoteBytes_
               ? placed - inFlightPromoteBytes_
               : 0;
}

std::uint64_t
TieringPolicy::coldBytes() const
{
    return placedHuge_.size() * kPageSize2M +
           placedBase_.size() * kPageSize4K;
}

Ns
TieringPolicy::takeOverhead()
{
    const Ns out = pendingOverhead_;
    pendingOverhead_ = 0;
    return out;
}

std::uint64_t
TieringPolicy::placementBudgetBytes() const
{
    return static_cast<std::uint64_t>(
        params_.coldFraction *
        static_cast<double>(ctxSpace_.rssBytes()));
}

bool
TieringPolicy::placePage(Addr base, bool huge, Ns now)
{
    ++stats_.demotionsOrdered;
    if (tracer_) {
        tracer_->record(EventKind::PolicyDemote, now, base, huge);
    }
    const MigrateResult res =
        ctxMigrator_.migrate(base, Tier::Slow, now);
    pendingOverhead_ += res.cost;
    stats_.overheadTime += res.cost;
    if (!res.moved) {
        ++stats_.placementFailures;
        return false;
    }
    // Poison after the move: the fault latency is the slow-access
    // emulation, and its counter feeds fault-driven promotion.
    const Ns poison_cost = ctxTrap_.poison(base);
    pendingOverhead_ += poison_cost;
    stats_.overheadTime += poison_cost;
    if (huge) {
        placedHuge_.insert(base);
        placedBytes_ += kPageSize2M;
    } else {
        placedBase_.insert(base);
        placedBytes_ += kPageSize4K;
    }
    return true;
}

bool
TieringPolicy::promotePage(Addr base, bool huge, Ns now)
{
    ++stats_.promotionsOrdered;
    if (tracer_) {
        tracer_->record(EventKind::PolicyPromote, now, base, huge);
    }
    const MigrateResult res =
        ctxMigrator_.migrate(base, Tier::Fast, now);
    pendingOverhead_ += res.cost;
    stats_.overheadTime += res.cost;
    if (!res.moved) {
        ++stats_.placementFailures;
        return false;
    }
    const Ns unpoison_cost = ctxTrap_.unpoison(base);
    pendingOverhead_ += unpoison_cost;
    stats_.overheadTime += unpoison_cost;
    if (huge) {
        placedHuge_.erase(base);
        placedBytes_ -= kPageSize2M;
    } else {
        placedBase_.erase(base);
        placedBytes_ -= kPageSize4K;
    }
    return true;
}

void
TieringPolicy::registerMetrics(MetricRegistry &registry)
{
    const std::string prefix = metricPrefix(name());
    registry.addCallback(prefix + ".ticks", [this] {
        return static_cast<double>(stats_.ticks);
    });
    registry.addCallback(prefix + ".decision_periods", [this] {
        return static_cast<double>(stats_.decisionPeriods);
    });
    registry.addCallback(prefix + ".demotions_ordered", [this] {
        return static_cast<double>(stats_.demotionsOrdered);
    });
    registry.addCallback(prefix + ".promotions_ordered", [this] {
        return static_cast<double>(stats_.promotionsOrdered);
    });
    registry.addCallback(prefix + ".placement_failures", [this] {
        return static_cast<double>(stats_.placementFailures);
    });
    registry.addCallback(prefix + ".overhead_ns", [this] {
        return static_cast<double>(stats_.overheadTime);
    });
    registry.addCallback(prefix + ".cold_bytes", [this] {
        return static_cast<double>(coldBytes());
    });
}

} // namespace thermostat
