#include "policy/tiering_policy.hh"

#include "common/logging.hh"
#include "obs/metrics.hh"

namespace thermostat
{

TieringPolicy::TieringPolicy(const PolicyContext &ctx)
    : ctxCgroup_(ctx.cgroup),
      ctxSpace_(ctx.space),
      ctxTrap_(ctx.trap),
      ctxKstaled_(ctx.kstaled),
      ctxMigrator_(ctx.migrator),
      params_(ctx.params),
      workload_(ctx.workload)
{
}

std::uint64_t
TieringPolicy::coldBytes() const
{
    return placedHuge_.size() * kPageSize2M +
           placedBase_.size() * kPageSize4K;
}

Ns
TieringPolicy::takeOverhead()
{
    const Ns out = pendingOverhead_;
    pendingOverhead_ = 0;
    return out;
}

std::uint64_t
TieringPolicy::placementBudgetBytes() const
{
    return static_cast<std::uint64_t>(
        params_.coldFraction *
        static_cast<double>(ctxSpace_.rssBytes()));
}

bool
TieringPolicy::placePage(Addr base, bool huge, Ns now)
{
    ++stats_.demotionsOrdered;
    if (tracer_) {
        tracer_->record(EventKind::PolicyDemote, now, base, huge);
    }
    const MigrateResult res =
        ctxMigrator_.migrate(base, Tier::Slow, now);
    pendingOverhead_ += res.cost;
    stats_.overheadTime += res.cost;
    if (!res.moved) {
        ++stats_.placementFailures;
        return false;
    }
    // Poison after the move: the fault latency is the slow-access
    // emulation, and its counter feeds fault-driven promotion.
    const Ns poison_cost = ctxTrap_.poison(base);
    pendingOverhead_ += poison_cost;
    stats_.overheadTime += poison_cost;
    if (huge) {
        placedHuge_.insert(base);
        placedBytes_ += kPageSize2M;
    } else {
        placedBase_.insert(base);
        placedBytes_ += kPageSize4K;
    }
    return true;
}

bool
TieringPolicy::promotePage(Addr base, bool huge, Ns now)
{
    ++stats_.promotionsOrdered;
    if (tracer_) {
        tracer_->record(EventKind::PolicyPromote, now, base, huge);
    }
    const MigrateResult res =
        ctxMigrator_.migrate(base, Tier::Fast, now);
    pendingOverhead_ += res.cost;
    stats_.overheadTime += res.cost;
    if (!res.moved) {
        ++stats_.placementFailures;
        return false;
    }
    const Ns unpoison_cost = ctxTrap_.unpoison(base);
    pendingOverhead_ += unpoison_cost;
    stats_.overheadTime += unpoison_cost;
    if (huge) {
        placedHuge_.erase(base);
        placedBytes_ -= kPageSize2M;
    } else {
        placedBase_.erase(base);
        placedBytes_ -= kPageSize4K;
    }
    return true;
}

void
TieringPolicy::registerMetrics(MetricRegistry &registry)
{
    const std::string prefix = metricPrefix(name());
    registry.addCallback(prefix + ".ticks", [this] {
        return static_cast<double>(stats_.ticks);
    });
    registry.addCallback(prefix + ".decision_periods", [this] {
        return static_cast<double>(stats_.decisionPeriods);
    });
    registry.addCallback(prefix + ".demotions_ordered", [this] {
        return static_cast<double>(stats_.demotionsOrdered);
    });
    registry.addCallback(prefix + ".promotions_ordered", [this] {
        return static_cast<double>(stats_.promotionsOrdered);
    });
    registry.addCallback(prefix + ".placement_failures", [this] {
        return static_cast<double>(stats_.placementFailures);
    });
    registry.addCallback(prefix + ".overhead_ns", [this] {
        return static_cast<double>(stats_.overheadTime);
    });
    registry.addCallback(prefix + ".cold_bytes", [this] {
        return static_cast<double>(coldBytes());
    });
}

} // namespace thermostat
