/**
 * @file
 * The pluggable tiering-policy interface.
 *
 * A TieringPolicy owns the *decision* side of two-tiered page
 * management: which pages live in slow memory, when they move, and
 * what monitoring cost that implies.  The mechanism side -- page
 * tables, migration, poisoning, idle scanning -- stays in the
 * shared components the policy receives via PolicyContext, so every
 * engine runs on exactly the same machine model and its results are
 * directly comparable.
 *
 * Engines behind this interface (see policy_factory.hh):
 *
 *   thermostat  the paper's engine (core/thermostat.hh), refactored
 *               onto the interface with byte-identical output
 *   static      pin the coldest-by-initial-rate fraction once,
 *               never migrate (the paper's strawman)
 *   lru-age     kstaled idle-age demotion + fault-driven promotion
 *   hotness     access-frequency promotion/demotion in the style of
 *               Nomad's transactional hot-page promotion
 *   oracle      true per-region rates read from the workload: the
 *               upper bound no online policy can beat at region
 *               granularity
 *
 * Emulation-fidelity note: in BadgerTrapEmu mode the slow tier's
 * latency is realized by the poison fault on each TLB miss (see
 * sim/machine.hh), so every policy poisons the pages it places --
 * exactly how the paper measures the naive baseline of Figure 1.
 * Placement order is always migrate-then-poison, matching the
 * lifecycle auditor's rule that whole huge pages are poisoned only
 * while resident in slow memory.
 */

#ifndef THERMOSTAT_POLICY_TIERING_POLICY_HH
#define THERMOSTAT_POLICY_TIERING_POLICY_HH

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/flat_map.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "obs/event_trace.hh"
#include "sys/badger_trap.hh"
#include "sys/kstaled.hh"
#include "sys/mem_cgroup.hh"
#include "sys/migration.hh"
#include "vm/address_space.hh"

namespace thermostat
{

class MetricRegistry;
class MigrationQueue;
class TransactionEngine;
class Workload;
struct QueueCompletion;

/**
 * Knobs shared by the non-Thermostat engines.  Thermostat itself is
 * driven by ThermostatParams (the slowdown target is its knob; the
 * cold fraction is an output); the comparison engines invert that:
 * the cold fraction is the knob and the slowdown is the output.
 */
struct PolicyParams
{
    /** Fraction of the resident set to place in slow memory. */
    double coldFraction = 0.5;

    /** Re-evaluation period for the periodic engines. */
    Ns decisionPeriod = 10 * kNsPerSec;

    /** lru-age: consecutive idle scans before a page is demoted. */
    unsigned idleScansToDemote = 3;

    /**
     * hotness: measured accesses/sec above which a placed page is
     * promoted back to fast memory.
     */
    double promoteRateThreshold = 100.0;

    /** hotness: max promotions per decision period. */
    std::size_t promoteBatch = 64;

    /** nomad/remap: bounded migration-queue depth (requests). */
    std::size_t queueCapacity = 64;

    /**
     * nomad/remap: bytes the queue services per epoch (0 =
     * unlimited) -- the slice of migration copy bandwidth granted
     * to queued background moves.
     */
    std::uint64_t queueServiceBytes = 32 * 1024 * 1024ull;

    /**
     * nomad/remap: queue pressure (occupancy/capacity) at which the
     * engines stop enqueuing new work for the period.
     */
    double queueBusyThreshold = 0.8;
};

/** One settable --policy-param key and its one-line meaning. */
struct PolicyParamKey
{
    const char *key;
    const char *help;
};

/** The keys setPolicyParam() accepts, in listing order. */
const std::vector<PolicyParamKey> &policyParamKeys();

/**
 * Apply "key=value" to @p params.  Unknown keys and unparsable
 * values return false with a diagnostic in @p error (the CLI turns
 * that into a listing-style exit-2 rejection).
 */
bool setPolicyParam(PolicyParams &params, const std::string &key,
                    const std::string &value, std::string *error);

/** Generic per-policy counters, registered under policy/<name>. */
struct PolicyStats
{
    Count ticks = 0;            //!< tick() calls
    Count decisionPeriods = 0;  //!< placement rounds executed
    Count demotionsOrdered = 0; //!< pages the policy asked to demote
    Count promotionsOrdered = 0; //!< pages it asked to promote
    Count placementFailures = 0; //!< orders the migrator refused
    Ns overheadTime = 0;        //!< monitoring+migration CPU charged
};

/**
 * Everything a policy may touch.  All references outlive the policy
 * (the Simulation owns both); @p workload may be null when the
 * driver cannot provide one (oracle degrades gracefully).
 */
struct PolicyContext
{
    MemCgroup &cgroup;
    AddressSpace &space;
    BadgerTrap &trap;
    Kstaled &kstaled;
    PageMigrator &migrator;
    PolicyParams params;
    Workload *workload = nullptr;
    std::uint64_t seed = 42;

    /**
     * The bounded migration queue and transactional mover
     * (src/migrate).  Null in contexts that build policies without
     * a simulation (unit fixtures); the queue-riding engines assert
     * their presence, the legacy five never touch them.
     */
    MigrationQueue *queue = nullptr;
    TransactionEngine *transactions = nullptr;
};

/**
 * Abstract engine.  The driver calls tick() once per epoch; the
 * policy decides placements/promotions and accounts its own CPU
 * overhead, which the driver charges to the application via
 * takeOverhead().
 */
class TieringPolicy
{
  public:
    explicit TieringPolicy(const PolicyContext &ctx);
    virtual ~TieringPolicy() = default;

    TieringPolicy(const TieringPolicy &) = delete;
    TieringPolicy &operator=(const TieringPolicy &) = delete;

    /** Registered factory name ("thermostat", "static", ...). */
    virtual const std::string &name() const = 0;

    /** Advance to @p now; run any placement round that is due. */
    virtual void tick(Ns now) = 0;

    /**
     * Access-feedback hook: when wantsAccessFeedback() is true the
     * driver forwards every profiling-stream reference (page base,
     * leaf size, kind, represented real accesses).  Policies that
     * return false never pay the call.
     */
    virtual bool wantsAccessFeedback() const { return false; }
    virtual void
    onProfiledAccess(Addr base, bool huge, bool write, Count weight)
    {
        (void)base;
        (void)huge;
        (void)write;
        (void)weight;
    }

    /** Bytes currently placed in slow memory by this policy. */
    virtual std::uint64_t coldBytes() const;

    /**
     * True while the 2MB range at @p base is mid-profiling and must
     * not be collapsed by khugepaged (Thermostat only).
     */
    virtual bool isProfilingRange(Addr base) const
    {
        (void)base;
        return false;
    }

    /**
     * Measured slow-memory access-rate series (Figure 3), when the
     * engine maintains one; null otherwise.
     */
    virtual const TimeSeries *slowRateSeries() const { return nullptr; }

    /**
     * Simulation-fidelity shim: real accesses per profiling sample
     * (see ThermostatEngine::setMarkingQuantum).
     */
    virtual void setMarkingQuantum(double quantum) { (void)quantum; }

    /** Attach the lifecycle tracer (policy-decision events). */
    virtual void setTracer(EventTracer *tracer) { tracer_ = tracer; }

    /**
     * Monitoring/migration CPU accumulated since the last call; the
     * driver charges it to the application's epoch.
     */
    virtual Ns takeOverhead();

    /**
     * Register the generic PolicyStats counters under
     * "policy/<name>" plus any engine-specific metrics.  Overrides
     * must chain up.  Called exactly once per registry.
     */
    virtual void registerMetrics(MetricRegistry &registry);

    /** Canonical metric prefix for a policy name. */
    static std::string metricPrefix(const std::string &policy_name)
    {
        return "policy/" + policy_name;
    }

    const PolicyStats &stats() const { return stats_; }
    const PolicyParams &params() const { return params_; }

  protected:
    /**
     * Demote the leaf at @p base to slow memory and poison it (the
     * emulation vehicle + misclassification counter).  Updates the
     * placed set, stats and overhead; emits a PolicyDemote decision
     * event.  @return whether the page moved.
     */
    bool placePage(Addr base, bool huge, Ns now);

    /** Promote a placed page back and unpoison it. */
    bool promotePage(Addr base, bool huge, Ns now);

    /** Whether @p base is currently placed by this policy. */
    bool isPlaced(Addr base) const
    {
        return placedHuge_.count(base) != 0 ||
               placedBase_.count(base) != 0;
    }

    /** Target placed-bytes budget: coldFraction x current RSS. */
    std::uint64_t placementBudgetBytes() const;

    AddressSpace &space() { return ctxSpace_; }
    BadgerTrap &trap() { return ctxTrap_; }
    Kstaled &kstaled() { return ctxKstaled_; }
    PageMigrator &migrator() { return ctxMigrator_; }
    MemCgroup &cgroup() { return ctxCgroup_; }
    Workload *workload() { return workload_; }
    EventTracer *tracer() { return tracer_; }
    MigrationQueue *queue() { return queue_; }
    TransactionEngine *transactions() { return transactions_; }

    /**
     * Congestion feedback from the migration queue: pending
     * occupancy / capacity, 0.0 when no queue is attached.  Engines
     * throttle their decision rounds on this.
     */
    double queuePressure() const;

    /**
     * Drain queue completions into the placed sets: demotions that
     * landed become placed, promotions that landed leave the set,
     * refusals count as placement failures.  Also retires the
     * in-flight order tracking below.  Queue-riding engines call
     * this at the top of each decision round.
     */
    void applyQueueCompletions();

    // Queue-order helpers.  Mirror placePage()/promotePage() --
    // stats, decision events, dedup -- but enqueue instead of
    // moving synchronously; the placed sets update when the
    // completion drains.

    /** Queue a demotion order for @p base; false if full/duplicate. */
    bool orderDemotion(Addr base, bool huge, Ns now,
                       bool transactional = false);

    /** Queue a promotion order; @p retain keeps a read replica. */
    bool orderPromotion(Addr base, bool huge, Ns now,
                        bool transactional = false,
                        bool retain = false);

    /** Queue @p pages contiguous 4KB leaves as one run request. */
    bool orderRunDemotion(Addr base, unsigned pages, Ns now);

    /** Whether @p base has an unresolved queued order. */
    bool hasInFlight(Addr base) const
    {
        return inFlight_.contains(base);
    }

    /**
     * Cold bytes already placed plus in-flight demotions minus
     * in-flight promotions: what placedBytes_ becomes once the
     * queue drains, used to respect the budget despite completion
     * lag.
     */
    std::uint64_t orderedColdBytes() const;

    /** Placed sets (leaf granularity, keyed by base address). */
    std::unordered_set<Addr> placedHuge_;
    std::unordered_set<Addr> placedBase_;
    std::uint64_t placedBytes_ = 0;

    PolicyStats stats_;
    Ns pendingOverhead_ = 0;

  private:
    MemCgroup &ctxCgroup_;
    AddressSpace &ctxSpace_;
    BadgerTrap &ctxTrap_;
    Kstaled &ctxKstaled_;
    PageMigrator &ctxMigrator_;
    PolicyParams params_;
    Workload *workload_;
    EventTracer *tracer_ = nullptr;
    MigrationQueue *queue_;
    TransactionEngine *transactions_;

    /** Queued-but-unresolved orders: leaf base -> direction. */
    enum class OrderDir : std::uint8_t
    {
        Demote,
        Promote
    };
    FlatMap<Addr, OrderDir> inFlight_;
    std::uint64_t inFlightDemoteBytes_ = 0;
    std::uint64_t inFlightPromoteBytes_ = 0;
};

} // namespace thermostat

#endif // THERMOSTAT_POLICY_TIERING_POLICY_HH
