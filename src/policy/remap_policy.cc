#include "policy/remap_policy.hh"

#include <algorithm>
#include <vector>

#include "common/logging.hh"
#include "migrate/migration_queue.hh"
#include "obs/metrics.hh"

namespace thermostat
{

namespace
{
const std::string kName = "remap";
} // namespace

RemapPolicy::RemapPolicy(const PolicyContext &ctx)
    : TieringPolicy(ctx)
{
    TSTAT_ASSERT(ctx.queue != nullptr,
                 "remap requires the migration queue");
    ctx.queue->activate();
}

const std::string &
RemapPolicy::name() const
{
    return kName;
}

void
RemapPolicy::onProfiledAccess(Addr base, bool huge, bool write,
                              Count weight)
{
    (void)huge;
    (void)write;
    leafWindow_[base] += weight;
    blockWindow_[alignDown2M(base)] += weight;
}

void
RemapPolicy::tick(Ns now)
{
    ++stats_.ticks;
    if (now < nextDecision_) {
        return;
    }
    applyQueueCompletions();
    if (now > 0) {
        runPeriod(now);
    }
    lastDecision_ = now;
    nextDecision_ = now + params().decisionPeriod;
}

void
RemapPolicy::runPeriod(Ns now)
{
    ++stats_.decisionPeriods;
    const double period_sec =
        static_cast<double>(now - lastDecision_) /
        static_cast<double>(kNsPerSec);
    const double hot_rate = params().promoteRateThreshold;

    // Promotion pass: placed leaves that crossed the hot threshold
    // this window, hottest first, batch-bounded.
    struct Hot
    {
        Addr base;
        bool huge;
        Count count;
    };
    std::vector<Hot> hot;
    const auto consider = [&](Addr base, bool huge) {
        const auto it = leafWindow_.find(base);
        if (it == leafWindow_.end() || hasInFlight(base)) {
            return;
        }
        if (static_cast<double>(it->value) / period_sec >= hot_rate) {
            hot.push_back({base, huge, it->value});
        }
    };
    for (const Addr base : placedHuge_) {
        consider(base, true);
    }
    for (const Addr base : placedBase_) {
        consider(base, false);
    }
    std::sort(hot.begin(), hot.end(), [](const Hot &a, const Hot &b) {
        if (a.count != b.count) {
            return a.count > b.count;
        }
        return a.base < b.base;
    });
    std::size_t promoted = 0;
    for (const Hot &h : hot) {
        if (promoted >= params().promoteBatch) {
            break;
        }
        if (queue()->busy()) {
            ++throttleSkips_;
            break;
        }
        if (orderPromotion(h.base, h.huge, now)) {
            ++promoted;
        }
    }

    // Granularity pass over the unplaced leaves: classify each 2MB
    // block by its windowed rate, split the lukewarm ones, and
    // collect demotion candidates at the granularity they earned.
    std::vector<Addr> coldBlocks;  //!< fully idle huge leaves
    std::vector<Addr> splitCands;  //!< lukewarm huge leaves
    std::vector<Addr> idleLeaves;  //!< idle 4KB leaves
    space().pageTable().forEachLeaf([&](Addr base, Pte &, bool huge) {
        if (isPlaced(base) || hasInFlight(base)) {
            return;
        }
        if (huge) {
            const auto it = blockWindow_.find(base);
            const Count count =
                it == blockWindow_.end() ? 0 : it->value;
            if (count == 0) {
                coldBlocks.push_back(base);
            } else if (static_cast<double>(count) / period_sec <
                       hot_rate) {
                splitCands.push_back(base);
            }
            return;
        }
        if (!leafWindow_.contains(base)) {
            idleLeaves.push_back(base);
        }
    });
    std::sort(coldBlocks.begin(), coldBlocks.end());
    std::sort(splitCands.begin(), splitCands.end());
    std::sort(idleLeaves.begin(), idleLeaves.end());

    // Lukewarm blocks split so the next window can tell their hot
    // subpages from their cold ones; the split itself is a software
    // operation billed like a migration's per-page cost.
    std::size_t split_count = 0;
    for (const Addr base : splitCands) {
        if (split_count >= params().promoteBatch) {
            break;
        }
        if (space().splitHuge(base)) {
            const Ns split_cost =
                migrator().config().perPageSwCost;
            pendingOverhead_ += split_cost;
            stats_.overheadTime += split_cost;
            ++splits_;
            ++split_count;
        }
    }

    // Demotion pass, coarse granularity first (2MB blocks), then
    // idle 4KB leaves coalesced into up-to-16-page runs.
    const std::uint64_t budget = placementBudgetBytes();
    bool throttled = false;
    for (const Addr base : coldBlocks) {
        if (orderedColdBytes() + kPageSize2M > budget) {
            break;
        }
        if (queue()->busy()) {
            ++throttleSkips_;
            throttled = true;
            break;
        }
        if (orderDemotion(base, true, now)) {
            ++demotions2M_;
        }
    }
    std::size_t i = 0;
    while (!throttled && i < idleLeaves.size()) {
        // Extend the run while the leaves stay contiguous, up to
        // the 64KB granularity cap.
        unsigned pages = 1;
        while (pages < kRunPages && i + pages < idleLeaves.size() &&
               idleLeaves[i + pages] ==
                   idleLeaves[i] + pages * kPageSize4K) {
            ++pages;
        }
        const std::uint64_t bytes =
            static_cast<std::uint64_t>(pages) * kPageSize4K;
        if (orderedColdBytes() + bytes > budget) {
            break;
        }
        if (queue()->busy()) {
            ++throttleSkips_;
            break;
        }
        if (pages > 1) {
            if (orderRunDemotion(idleLeaves[i], pages, now)) {
                ++demotionRuns_;
            }
        } else if (orderDemotion(idleLeaves[i], false, now)) {
            ++demotions4K_;
        }
        i += pages;
    }

    leafWindow_.clear();
    blockWindow_.clear();
}

void
RemapPolicy::registerMetrics(MetricRegistry &registry)
{
    TieringPolicy::registerMetrics(registry);
    const std::string prefix = metricPrefix(kName);
    registry.addCallback(prefix + ".throttle_skips", [this] {
        return static_cast<double>(throttleSkips_);
    });
    registry.addCallback(prefix + ".splits", [this] {
        return static_cast<double>(splits_);
    });
    registry.addCallback(prefix + ".demotions_2m", [this] {
        return static_cast<double>(demotions2M_);
    });
    registry.addCallback(prefix + ".demotion_runs", [this] {
        return static_cast<double>(demotionRuns_);
    });
    registry.addCallback(prefix + ".demotions_4k", [this] {
        return static_cast<double>(demotions4K_);
    });
}

} // namespace thermostat
