#include "policy/lru_age_policy.hh"

#include <algorithm>
#include <vector>

namespace thermostat
{

namespace
{
const std::string kName = "lru-age";
} // namespace

const std::string &
LruAgePolicy::name() const
{
    return kName;
}

void
LruAgePolicy::tick(Ns now)
{
    ++stats_.ticks;
    if (now < nextDecision_) {
        return;
    }
    runPeriod(now);
    lastDecision_ = now;
    nextDecision_ = now + params().decisionPeriod;
}

void
LruAgePolicy::runPeriod(Ns now)
{
    ++stats_.decisionPeriods;
    const ScanStats scan = kstaled().scanAll();
    pendingOverhead_ += scan.cost;
    stats_.overheadTime += scan.cost;

    const double period_sec =
        static_cast<double>(now - lastDecision_) /
        static_cast<double>(kNsPerSec);

    // Promotion: placed pages whose poison-fault counters show them
    // hot again.  Hottest first; address breaks ties.
    if (period_sec > 0.0) {
        struct Hot
        {
            Addr base;
            bool huge;
            Count count;
        };
        std::vector<Hot> hot;
        for (const Addr base : placedHuge_) {
            const Count count = trap().faultCount(base);
            if (static_cast<double>(count) / period_sec >=
                params().promoteRateThreshold) {
                hot.push_back({base, true, count});
            }
        }
        for (const Addr base : placedBase_) {
            const Count count = trap().faultCount(base);
            if (static_cast<double>(count) / period_sec >=
                params().promoteRateThreshold) {
                hot.push_back({base, false, count});
            }
        }
        std::sort(hot.begin(), hot.end(),
                  [](const Hot &a, const Hot &b) {
                      if (a.count != b.count) {
                          return a.count > b.count;
                      }
                      return a.base < b.base;
                  });
        for (const Hot &h : hot) {
            promotePage(h.base, h.huge, now);
        }
    }
    // Fresh counting window for everything still placed.
    for (const Addr base : placedHuge_) {
        trap().resetCount(base);
    }
    for (const Addr base : placedBase_) {
        trap().resetCount(base);
    }

    // Demotion: longest-idle unplaced pages, up to the budget.
    struct Idle
    {
        Addr base;
        bool huge;
        unsigned idleScans;
        std::uint64_t bytes;
    };
    std::vector<Idle> idle;
    space().pageTable().forEachLeaf([&](Addr base, Pte &, bool huge) {
        if (isPlaced(base)) {
            return;
        }
        const unsigned scans = kstaled().idleState(base).idleScans;
        if (scans < params().idleScansToDemote) {
            return;
        }
        idle.push_back(
            {base, huge, scans,
             huge ? kPageSize2M
                  : static_cast<std::uint64_t>(kPageSize4K)});
    });
    std::sort(idle.begin(), idle.end(),
              [](const Idle &a, const Idle &b) {
                  if (a.idleScans != b.idleScans) {
                      return a.idleScans > b.idleScans;
                  }
                  return a.base < b.base;
              });
    const std::uint64_t budget = placementBudgetBytes();
    for (const Idle &i : idle) {
        if (placedBytes_ + i.bytes > budget) {
            break;
        }
        placePage(i.base, i.huge, now);
    }
}

} // namespace thermostat
