#include "policy/static_policy.hh"

#include <algorithm>
#include <vector>

namespace thermostat
{

namespace
{
const std::string kName = "static";
} // namespace

const std::string &
StaticColdestPolicy::name() const
{
    return kName;
}

void
StaticColdestPolicy::onProfiledAccess(Addr base, bool huge,
                                      bool write, Count weight)
{
    (void)huge;
    (void)write;
    observed_[base] += weight;
}

void
StaticColdestPolicy::tick(Ns now)
{
    ++stats_.ticks;
    if (!placed_ && now >= params().decisionPeriod) {
        placeOnce(now);
        placed_ = true;
        observed_.clear();
    }
}

void
StaticColdestPolicy::placeOnce(Ns now)
{
    ++stats_.decisionPeriods;
    struct Candidate
    {
        Addr base;
        bool huge;
        Count count;
        std::uint64_t bytes;
    };
    std::vector<Candidate> candidates;
    space().pageTable().forEachLeaf([&](Addr base, Pte &, bool huge) {
        const auto it = observed_.find(base);
        const Count count = it == observed_.end() ? 0 : it->value;
        candidates.push_back(
            {base, huge, count,
             huge ? kPageSize2M
                  : static_cast<std::uint64_t>(kPageSize4K)});
    });
    // Coldest first; address breaks ties so slot order (hash-map
    // iteration) never leaks into placement.
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate &a, const Candidate &b) {
                  if (a.count != b.count) {
                      return a.count < b.count;
                  }
                  return a.base < b.base;
              });
    const std::uint64_t budget = placementBudgetBytes();
    for (const Candidate &c : candidates) {
        if (placedBytes_ + c.bytes > budget) {
            break;
        }
        placePage(c.base, c.huge, now);
    }
}

} // namespace thermostat
