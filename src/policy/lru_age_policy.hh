/**
 * @file
 * lru-age: kstaled idle-age demotion with fault-driven promotion.
 *
 * Each decision period the policy runs a full kstaled scan (paying
 * the scanner's modeled cost as its own overhead), then demotes the
 * longest-idle unplaced pages -- most consecutive idle scans first
 * -- up to the coldFraction budget.  Placed pages stay poisoned
 * purely as the slow-tier emulation vehicle (see
 * tiering_policy.hh); their poison-fault counters double as the
 * promotion signal: a placed page whose measured access rate
 * crosses promoteRateThreshold comes back to fast memory, the
 * classic reactive recency policy Thermostat's Sec 2 argues against.
 */

#ifndef THERMOSTAT_POLICY_LRU_AGE_POLICY_HH
#define THERMOSTAT_POLICY_LRU_AGE_POLICY_HH

#include "policy/tiering_policy.hh"

namespace thermostat
{

class LruAgePolicy : public TieringPolicy
{
  public:
    explicit LruAgePolicy(const PolicyContext &ctx)
        : TieringPolicy(ctx)
    {
    }

    const std::string &name() const override;
    void tick(Ns now) override;

  private:
    void runPeriod(Ns now);

    Ns nextDecision_ = 0;
    Ns lastDecision_ = 0;
};

} // namespace thermostat

#endif // THERMOSTAT_POLICY_LRU_AGE_POLICY_HH
