/**
 * @file
 * The paper's strawman: measure once, pin the coldest fraction in
 * slow memory, never migrate again.
 *
 * During the first decision period the policy listens to the
 * profiling stream and counts accesses per leaf page.  At the first
 * tick past that window it sorts every mapped leaf by observed rate
 * (coldest first, address as the tie-break), demotes pages up to the
 * coldFraction budget, and then goes quiet: no promotions, no
 * re-evaluation.  This is the naive static placement whose slowdown
 * Figure 1 shows to be unacceptable -- any page that turns hot later
 * keeps paying the slow-tier latency forever.
 */

#ifndef THERMOSTAT_POLICY_STATIC_POLICY_HH
#define THERMOSTAT_POLICY_STATIC_POLICY_HH

#include "common/flat_map.hh"
#include "policy/tiering_policy.hh"

namespace thermostat
{

class StaticColdestPolicy : public TieringPolicy
{
  public:
    explicit StaticColdestPolicy(const PolicyContext &ctx)
        : TieringPolicy(ctx)
    {
    }

    const std::string &name() const override;
    void tick(Ns now) override;

    bool wantsAccessFeedback() const override { return !placed_; }
    void onProfiledAccess(Addr base, bool huge, bool write,
                          Count weight) override;

  private:
    void placeOnce(Ns now);

    FlatMap<Addr, Count> observed_; //!< fed per profiled access
    bool placed_ = false;
};

} // namespace thermostat

#endif // THERMOSTAT_POLICY_STATIC_POLICY_HH
