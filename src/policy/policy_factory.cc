#include "policy/policy_factory.hh"

#include "policy/hotness_policy.hh"
#include "policy/lru_age_policy.hh"
#include "policy/oracle_policy.hh"
#include "policy/static_policy.hh"
#include "policy/thermostat_policy.hh"

namespace thermostat
{

namespace
{

using Maker =
    std::unique_ptr<TieringPolicy> (*)(const PolicyContext &);

template <typename P>
std::unique_ptr<TieringPolicy>
makeEngine(const PolicyContext &ctx)
{
    return std::make_unique<P>(ctx);
}

struct Entry
{
    const char *name;
    Maker maker;
};

// Registration order is the order --list-policies prints.
const Entry kMakers[] = {
    {"thermostat", makeEngine<ThermostatPolicy>},
    {"static", makeEngine<StaticColdestPolicy>},
    {"lru-age", makeEngine<LruAgePolicy>},
    {"hotness", makeEngine<HotnessPolicy>},
    {"oracle", makeEngine<OraclePolicy>},
};

} // namespace

const std::vector<std::string> &
PolicyFactory::names()
{
    static const std::vector<std::string> kNames = [] {
        std::vector<std::string> out;
        for (const Entry &entry : kMakers) {
            out.emplace_back(entry.name);
        }
        return out;
    }();
    return kNames;
}

bool
PolicyFactory::known(const std::string &name)
{
    for (const Entry &entry : kMakers) {
        if (name == entry.name) {
            return true;
        }
    }
    return false;
}

std::unique_ptr<TieringPolicy>
PolicyFactory::make(const std::string &name, const PolicyContext &ctx)
{
    for (const Entry &entry : kMakers) {
        if (name == entry.name) {
            return entry.maker(ctx);
        }
    }
    return nullptr;
}

} // namespace thermostat
