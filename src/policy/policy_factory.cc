#include "policy/policy_factory.hh"

#include "policy/hotness_policy.hh"
#include "policy/lru_age_policy.hh"
#include "policy/nomad_policy.hh"
#include "policy/oracle_policy.hh"
#include "policy/remap_policy.hh"
#include "policy/static_policy.hh"
#include "policy/thermostat_policy.hh"

namespace thermostat
{

namespace
{

using Maker =
    std::unique_ptr<TieringPolicy> (*)(const PolicyContext &);

template <typename P>
std::unique_ptr<TieringPolicy>
makeEngine(const PolicyContext &ctx)
{
    return std::make_unique<P>(ctx);
}

struct Entry
{
    const char *name;
    const char *description;
    Maker maker;
};

// Registration order is the order --list-policies prints.
const Entry kMakers[] = {
    {"thermostat",
     "the paper's engine: sampled profiling, slowdown-targeted "
     "cold-set sizing",
     makeEngine<ThermostatPolicy>},
    {"static",
     "pin the coldest-by-initial-rate fraction once, never migrate",
     makeEngine<StaticColdestPolicy>},
    {"lru-age",
     "kstaled idle-age demotion with fault-driven promotion",
     makeEngine<LruAgePolicy>},
    {"hotness",
     "windowed access-frequency promotion/demotion, batch-bounded",
     makeEngine<HotnessPolicy>},
    {"oracle",
     "true per-region rates from the workload: the region-granular "
     "upper bound",
     makeEngine<OraclePolicy>},
    {"nomad",
     "transactional migration via the bounded queue; read-mostly "
     "pages kept resident in both tiers",
     makeEngine<NomadPolicy>},
    {"remap",
     "variable-granularity 4KB/64KB/2MB block remapping with "
     "congestion-fed throttling",
     makeEngine<RemapPolicy>},
};

} // namespace

const std::vector<std::string> &
PolicyFactory::names()
{
    static const std::vector<std::string> kNames = [] {
        std::vector<std::string> out;
        for (const Entry &entry : kMakers) {
            out.emplace_back(entry.name);
        }
        return out;
    }();
    return kNames;
}

const std::vector<PolicyListing> &
PolicyFactory::listings()
{
    static const std::vector<PolicyListing> kListings = [] {
        std::vector<PolicyListing> out;
        for (const Entry &entry : kMakers) {
            out.push_back({entry.name, entry.description});
        }
        return out;
    }();
    return kListings;
}

bool
PolicyFactory::known(const std::string &name)
{
    for (const Entry &entry : kMakers) {
        if (name == entry.name) {
            return true;
        }
    }
    return false;
}

std::unique_ptr<TieringPolicy>
PolicyFactory::make(const std::string &name, const PolicyContext &ctx)
{
    for (const Entry &entry : kMakers) {
        if (name == entry.name) {
            return entry.maker(ctx);
        }
    }
    return nullptr;
}

} // namespace thermostat
