/**
 * @file
 * Set-associative TLB and the two-level hierarchy of the evaluation
 * machine (Sec 4.1: 64-entry per-core L1, shared 1024-entry L2).
 *
 * Entries are tagged with the mapping size; a lookup probes both the
 * 4KB and 2MB interpretation of an address, as x86 TLBs effectively
 * do.  Huge pages increase reach by covering 512x more memory per
 * entry, which is where Table 1's THP benefit comes from.
 */

#ifndef THERMOSTAT_TLB_TLB_HH
#define THERMOSTAT_TLB_TLB_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hh"

namespace thermostat
{

class MetricRegistry;

/** One cached translation. */
struct TlbEntry
{
    Vpn vpn = 0;     //!< page number at the entry's granularity
    Pfn pfn = 0;     //!< frame number at the same granularity
    bool huge = false;
    bool valid = false;
    std::uint64_t lastUse = 0;
};

/** Static TLB geometry. */
struct TlbConfig
{
    unsigned entryCount = 64;
    unsigned ways = 4;
};

/** Hit/miss/maintenance counters. */
struct TlbStats
{
    Count hits = 0;
    Count misses = 0;
    Count fills = 0;
    Count evictions = 0;
    Count invalidations = 0;
    Count flushes = 0;

    double
    missRatio() const
    {
        const Count total = hits + misses;
        return total == 0
                   ? 0.0
                   : static_cast<double>(misses) /
                         static_cast<double>(total);
    }
};

/**
 * One set-associative TLB holding 4KB and 2MB entries side by side.
 */
class Tlb
{
  public:
    explicit Tlb(const TlbConfig &config);

    /**
     * Probe for a translation of @p vaddr at either granularity.
     * Updates LRU state and hit/miss counters.
     */
    std::optional<TlbEntry> lookup(Addr vaddr);

    /** Probe without updating LRU or counters. */
    std::optional<TlbEntry> peek(Addr vaddr) const;

    /** Install a translation (after a walk). */
    void insert(Addr vaddr, Pfn pfn, bool huge);

    /** Invalidate any entry translating @p vaddr (both sizes). */
    void invalidatePage(Addr vaddr);

    /** Invalidate everything. */
    void flushAll();

    const TlbConfig &config() const { return config_; }
    const TlbStats &stats() const { return stats_; }
    void resetStats() { stats_ = TlbStats(); }

    /** Expose the counters under "<prefix>." in @p registry. */
    void registerMetrics(MetricRegistry &registry,
                         const std::string &prefix) const;

    /** Number of currently valid entries (for tests). */
    unsigned validCount() const;

  private:
    unsigned setCount() const { return setCount_; }
    unsigned setIndex(Vpn vpn) const;
    TlbEntry *findEntry(Vpn vpn, bool huge);
    const TlbEntry *findEntry(Vpn vpn, bool huge) const;

    TlbConfig config_;
    unsigned setCount_;
    std::vector<TlbEntry> entries_; //!< setCount_ x ways, row-major
    std::uint64_t useClock_ = 0;
    TlbStats stats_;
};

/**
 * Two-level TLB hierarchy: private L1 backed by a shared L2.
 * Lookup latency (L1 hit / L2 hit) is accounted by the caller's
 * machine model; this class reports which level hit.
 */
class TlbHierarchy
{
  public:
    enum class HitLevel { L1, L2, Miss };

    TlbHierarchy(const TlbConfig &l1_config, const TlbConfig &l2_config);

    /** Probe L1 then L2; an L2 hit refills L1. */
    HitLevel lookup(Addr vaddr, TlbEntry *entry_out = nullptr);

    /** Install into both levels (after a walk). */
    void insert(Addr vaddr, Pfn pfn, bool huge);

    /** Shootdown: invalidate the page in both levels. */
    void invalidatePage(Addr vaddr);

    void flushAll();

    Tlb &l1() { return l1_; }
    Tlb &l2() { return l2_; }
    const Tlb &l1() const { return l1_; }
    const Tlb &l2() const { return l2_; }

    /** Register "<prefix>.l1.*" and "<prefix>.l2.*". */
    void registerMetrics(MetricRegistry &registry,
                         const std::string &prefix) const;

  private:
    Tlb l1_;
    Tlb l2_;
};

} // namespace thermostat

#endif // THERMOSTAT_TLB_TLB_HH
