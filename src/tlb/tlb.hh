/**
 * @file
 * Set-associative TLB and the two-level hierarchy of the evaluation
 * machine (Sec 4.1: 64-entry per-core L1, shared 1024-entry L2).
 *
 * Entries are tagged with the mapping size; a lookup probes both the
 * 4KB and 2MB interpretation of an address, as x86 TLBs effectively
 * do.  Huge pages increase reach by covering 512x more memory per
 * entry, which is where Table 1's THP benefit comes from.
 */

#ifndef THERMOSTAT_TLB_TLB_HH
#define THERMOSTAT_TLB_TLB_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hh"

namespace thermostat
{

class MetricRegistry;

/** One cached translation. */
struct TlbEntry
{
    Vpn vpn = 0;     //!< page number at the entry's granularity
    Pfn pfn = 0;     //!< frame number at the same granularity
    bool huge = false;
    bool valid = false;
    std::uint64_t lastUse = 0;
};

/** Static TLB geometry. */
struct TlbConfig
{
    unsigned entryCount = 64;
    unsigned ways = 4;
};

/** Hit/miss/maintenance counters. */
struct TlbStats
{
    Count hits = 0;
    Count misses = 0;
    Count fills = 0;
    Count evictions = 0;
    Count invalidations = 0;
    Count flushes = 0;

    double
    missRatio() const
    {
        const Count total = hits + misses;
        return total == 0
                   ? 0.0
                   : static_cast<double>(misses) /
                         static_cast<double>(total);
    }
};

/**
 * One set-associative TLB holding 4KB and 2MB entries side by side.
 */
class Tlb
{
  public:
    explicit Tlb(const TlbConfig &config);

    /**
     * Probe for a translation of @p vaddr at either granularity.
     * Updates LRU state and hit/miss counters.  Defined inline
     * below: the last-translation fast path runs once per memory
     * access and must not pay a call.
     */
    std::optional<TlbEntry> lookup(Addr vaddr);

    /** Probe without updating LRU or counters. */
    std::optional<TlbEntry> peek(Addr vaddr) const;

    /** Install a translation (after a walk). */
    void insert(Addr vaddr, Pfn pfn, bool huge);

    /** Invalidate any entry translating @p vaddr (both sizes). */
    void invalidatePage(Addr vaddr);

    /** Invalidate everything. */
    void flushAll();

    const TlbConfig &config() const { return config_; }
    const TlbStats &stats() const { return stats_; }
    void resetStats() { stats_ = TlbStats(); }

    /** Expose the counters under "<prefix>." in @p registry. */
    void registerMetrics(MetricRegistry &registry,
                         const std::string &prefix) const;

    /** Number of currently valid entries (for tests). */
    unsigned validCount() const;

  private:
    unsigned setCount() const { return setCount_; }

    unsigned
    setIndex(Vpn vpn) const
    {
        return setsPow2_ ? static_cast<unsigned>(vpn & setMask_)
                         : static_cast<unsigned>(vpn % setCount_);
    }

    TlbEntry *findEntry(Vpn vpn, bool huge);
    const TlbEntry *findEntry(Vpn vpn, bool huge) const;
    void dropTranslationCache() { lastEntry_ = nullptr; }

    /** Full two-granularity probe (useClock_ already advanced). */
    std::optional<TlbEntry> lookupProbe(Addr vaddr);

    TlbConfig config_; // shard: read-only
    unsigned setCount_; // shard: read-only
    // shard: read-only
    std::uint64_t setMask_; //!< setCount_ - 1 when a power of two
    bool setsPow2_; // shard: read-only
    // shard: lane-local
    std::vector<TlbEntry> entries_; //!< setCount_ x ways, row-major
    std::uint64_t useClock_ = 0; // shard: lane-local
    TlbStats stats_; // shard: lane-local

    /**
     * Valid entries per size class ([0]=4KB, [1]=2MB), so a probe
     * can skip a granularity that holds no entries at all -- the
     * common case when a workload maps a single page size.
     */
    unsigned sizeCount_[2] = {0, 0};

    /**
     * Last-translation fast path: the entry returned by the previous
     * lookup, keyed by 4KB page.  A repeat lookup within the same
     * 4KB page resolves without probing either granularity; any
     * insert or invalidation drops the cache, so the shortcut is
     * exact (the 4KB probe that would normally take priority cannot
     * have gained an entry while the cache is live).
     */
    Vpn lastPage_ = 0; // shard: lane-local
    TlbEntry *lastEntry_ = nullptr; // shard: lane-local
};

/**
 * Two-level TLB hierarchy: private L1 backed by a shared L2.
 * Lookup latency (L1 hit / L2 hit) is accounted by the caller's
 * machine model; this class reports which level hit.
 */
class TlbHierarchy
{
  public:
    enum class HitLevel { L1, L2, Miss };

    TlbHierarchy(const TlbConfig &l1_config, const TlbConfig &l2_config);

    /** Probe L1 then L2; an L2 hit refills L1. */
    HitLevel lookup(Addr vaddr, TlbEntry *entry_out = nullptr);

    /** Install into both levels (after a walk). */
    void insert(Addr vaddr, Pfn pfn, bool huge);

    /** Shootdown: invalidate the page in both levels. */
    void invalidatePage(Addr vaddr);

    void flushAll();

    Tlb &l1() { return l1_; }
    Tlb &l2() { return l2_; }
    const Tlb &l1() const { return l1_; }
    const Tlb &l2() const { return l2_; }

    /** Register "<prefix>.l1.*" and "<prefix>.l2.*". */
    void registerMetrics(MetricRegistry &registry,
                         const std::string &prefix) const;

  private:
    Tlb l1_; // shard: lane-local
    Tlb l2_; // shard: lane-local
};

/**
 * Address-hash lane router over kMachineLanes independent
 * TlbHierarchy slices.
 *
 * Each lane owns the translations of the 2MB regions hashing to it
 * (laneOf in common/types.hh), with the global entry budget divided
 * evenly across the lanes, so one epoch's access stream can probe
 * and fill all lanes concurrently with no shared mutable state.
 * Results are defined per lane: the slicing -- not the worker count
 * executing the lanes -- fixes hit/miss behavior, which is why
 * `--shards N` cannot perturb output.  Maintenance operations that
 * are not address-directed (flushAll) broadcast to every lane;
 * merged statistics are summed lane-major.
 */
class TlbShards
{
  public:
    using HitLevel = TlbHierarchy::HitLevel;

    /**
     * Geometry is the *aggregate* machine budget (e.g. 64-entry L1,
     * 1024-entry L2); each lane gets entryCount / kMachineLanes
     * entries, rounded down to a multiple of the way count and
     * clamped to at least one set.
     */
    TlbShards(const TlbConfig &l1_config, const TlbConfig &l2_config);

    /** Probe the owning lane; an L2 hit refills that lane's L1. */
    HitLevel
    lookup(Addr vaddr, TlbEntry *entry_out = nullptr)
    {
        return lanes_[laneOf(vaddr)].lookup(vaddr, entry_out);
    }

    /** Install into both levels of the owning lane. */
    void
    insert(Addr vaddr, Pfn pfn, bool huge)
    {
        lanes_[laneOf(vaddr)].insert(vaddr, pfn, huge);
    }

    /** Shootdown: invalidate the page in the owning lane. */
    void
    invalidatePage(Addr vaddr)
    {
        lanes_[laneOf(vaddr)].invalidatePage(vaddr);
    }

    /** Full flush: broadcast to every lane. */
    void flushAll();

    TlbHierarchy &lane(unsigned lane) { return lanes_[lane]; }
    const TlbHierarchy &lane(unsigned lane) const
    {
        return lanes_[lane];
    }

    /** Per-lane slice geometry (all lanes are identical). */
    const TlbConfig &l1Config() const { return l1Config_; }
    const TlbConfig &l2Config() const { return l2Config_; }

    /** Lane-summed counters. */
    TlbStats l1Stats() const;
    TlbStats l2Stats() const;

    /** Valid entries across all lanes, per level. */
    unsigned l1ValidCount() const;
    unsigned l2ValidCount() const;

    void resetStats();

    /** Register lane-summed "<prefix>.l1.*" and "<prefix>.l2.*". */
    void registerMetrics(MetricRegistry &registry,
                         const std::string &prefix) const;

    /** Divide an aggregate geometry into one lane's slice. */
    static TlbConfig sliceConfig(const TlbConfig &config);

  private:
    // shard: read-only
    TlbConfig l1Config_; //!< per-lane slice geometry
    TlbConfig l2Config_; // shard: read-only
    std::vector<TlbHierarchy> lanes_; //!< kMachineLanes slices
};

inline TlbEntry *
Tlb::findEntry(Vpn vpn, bool huge)
{
    const unsigned set = setIndex(vpn);
    for (unsigned w = 0; w < config_.ways; ++w) {
        TlbEntry &e = entries_[set * config_.ways + w];
        if (e.valid && e.huge == huge && e.vpn == vpn) {
            return &e;
        }
    }
    return nullptr;
}

inline const TlbEntry *
Tlb::findEntry(Vpn vpn, bool huge) const
{
    return const_cast<Tlb *>(this)->findEntry(vpn, huge);
}

inline std::optional<TlbEntry>
Tlb::lookupProbe(Addr vaddr)
{
    const Vpn page = vpn4K(vaddr);
    if (sizeCount_[0] != 0) {
        if (TlbEntry *e = findEntry(page, false)) {
            e->lastUse = useClock_;
            ++stats_.hits;
            lastPage_ = page;
            lastEntry_ = e;
            return *e;
        }
    }
    if (sizeCount_[1] != 0) {
        if (TlbEntry *e = findEntry(vpn2M(vaddr), true)) {
            e->lastUse = useClock_;
            ++stats_.hits;
            lastPage_ = page;
            lastEntry_ = e;
            return *e;
        }
    }
    ++stats_.misses;
    return std::nullopt;
}

inline void
Tlb::insert(Addr vaddr, Pfn pfn, bool huge)
{
    dropTranslationCache();
    const Vpn vpn = huge ? vpn2M(vaddr) : vpn4K(vaddr);
    ++useClock_;
    // One pass finds a refreshable entry, the first invalid way and
    // the LRU way together (outcome identical to probe-then-scan:
    // victim priority is first-invalid, else least-recently-used
    // with the first-encountered way winning ties).
    const unsigned set = setIndex(vpn);
    TlbEntry *base = &entries_[set * config_.ways];
    TlbEntry *invalid = nullptr;
    TlbEntry *lru = nullptr;
    for (unsigned w = 0; w < config_.ways; ++w) {
        TlbEntry &e = base[w];
        if (!e.valid) {
            if (!invalid) {
                invalid = &e;
            }
            continue;
        }
        if (e.huge == huge && e.vpn == vpn) {
            // Refresh an existing entry in place.
            e.pfn = pfn;
            e.lastUse = useClock_;
            return;
        }
        if (!lru || e.lastUse < lru->lastUse) {
            lru = &e;
        }
    }
    TlbEntry *victim = invalid ? invalid : lru;
    if (victim->valid) {
        ++stats_.evictions;
        --sizeCount_[victim->huge];
    }
    victim->vpn = vpn;
    victim->pfn = pfn;
    victim->huge = huge;
    victim->valid = true;
    victim->lastUse = useClock_;
    ++sizeCount_[huge];
    ++stats_.fills;
}

inline std::optional<TlbEntry>
Tlb::lookup(Addr vaddr)
{
    ++useClock_;
    if (lastEntry_ != nullptr && vpn4K(vaddr) == lastPage_) {
        lastEntry_->lastUse = useClock_;
        ++stats_.hits;
        return *lastEntry_;
    }
    return lookupProbe(vaddr);
}

inline void
TlbHierarchy::insert(Addr vaddr, Pfn pfn, bool huge)
{
    l1_.insert(vaddr, pfn, huge);
    l2_.insert(vaddr, pfn, huge);
}

inline void
TlbHierarchy::invalidatePage(Addr vaddr)
{
    l1_.invalidatePage(vaddr);
    l2_.invalidatePage(vaddr);
}

inline TlbHierarchy::HitLevel
TlbHierarchy::lookup(Addr vaddr, TlbEntry *entry_out)
{
    if (auto e = l1_.lookup(vaddr)) {
        if (entry_out) {
            *entry_out = *e;
        }
        return HitLevel::L1;
    }
    if (auto e = l2_.lookup(vaddr)) {
        // Refill L1 from L2.
        const Addr base = e->huge ? (e->vpn << kPageShift2M)
                                  : (e->vpn << kPageShift4K);
        l1_.insert(base, e->pfn, e->huge);
        if (entry_out) {
            *entry_out = *e;
        }
        return HitLevel::L2;
    }
    return HitLevel::Miss;
}

} // namespace thermostat

#endif // THERMOSTAT_TLB_TLB_HH
