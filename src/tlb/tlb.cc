#include "tlb/tlb.hh"

#include "common/logging.hh"
#include "obs/metrics.hh"

namespace thermostat
{

Tlb::Tlb(const TlbConfig &config)
    : config_(config)
{
    TSTAT_ASSERT(config.entryCount > 0 && config.ways > 0,
                 "empty TLB");
    TSTAT_ASSERT(config.entryCount % config.ways == 0,
                 "TLB entries not divisible by ways");
    setCount_ = config.entryCount / config.ways;
    entries_.resize(config.entryCount);
}

unsigned
Tlb::setIndex(Vpn vpn) const
{
    return static_cast<unsigned>(vpn % setCount_);
}

TlbEntry *
Tlb::findEntry(Vpn vpn, bool huge)
{
    const unsigned set = setIndex(vpn);
    for (unsigned w = 0; w < config_.ways; ++w) {
        TlbEntry &e = entries_[set * config_.ways + w];
        if (e.valid && e.huge == huge && e.vpn == vpn) {
            return &e;
        }
    }
    return nullptr;
}

const TlbEntry *
Tlb::findEntry(Vpn vpn, bool huge) const
{
    return const_cast<Tlb *>(this)->findEntry(vpn, huge);
}

std::optional<TlbEntry>
Tlb::lookup(Addr vaddr)
{
    ++useClock_;
    if (TlbEntry *e = findEntry(vpn4K(vaddr), false)) {
        e->lastUse = useClock_;
        ++stats_.hits;
        return *e;
    }
    if (TlbEntry *e = findEntry(vpn2M(vaddr), true)) {
        e->lastUse = useClock_;
        ++stats_.hits;
        return *e;
    }
    ++stats_.misses;
    return std::nullopt;
}

std::optional<TlbEntry>
Tlb::peek(Addr vaddr) const
{
    if (const TlbEntry *e = findEntry(vpn4K(vaddr), false)) {
        return *e;
    }
    if (const TlbEntry *e = findEntry(vpn2M(vaddr), true)) {
        return *e;
    }
    return std::nullopt;
}

void
Tlb::insert(Addr vaddr, Pfn pfn, bool huge)
{
    const Vpn vpn = huge ? vpn2M(vaddr) : vpn4K(vaddr);
    ++useClock_;
    if (TlbEntry *e = findEntry(vpn, huge)) {
        // Refresh an existing entry in place.
        e->pfn = pfn;
        e->lastUse = useClock_;
        return;
    }
    const unsigned set = setIndex(vpn);
    TlbEntry *victim = nullptr;
    for (unsigned w = 0; w < config_.ways; ++w) {
        TlbEntry &e = entries_[set * config_.ways + w];
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (!victim || e.lastUse < victim->lastUse) {
            victim = &e;
        }
    }
    if (victim->valid) {
        ++stats_.evictions;
    }
    victim->vpn = vpn;
    victim->pfn = pfn;
    victim->huge = huge;
    victim->valid = true;
    victim->lastUse = useClock_;
    ++stats_.fills;
}

void
Tlb::invalidatePage(Addr vaddr)
{
    if (TlbEntry *e = findEntry(vpn4K(vaddr), false)) {
        e->valid = false;
        ++stats_.invalidations;
    }
    if (TlbEntry *e = findEntry(vpn2M(vaddr), true)) {
        e->valid = false;
        ++stats_.invalidations;
    }
}

void
Tlb::flushAll()
{
    for (TlbEntry &e : entries_) {
        e.valid = false;
    }
    ++stats_.flushes;
}

unsigned
Tlb::validCount() const
{
    unsigned n = 0;
    for (const TlbEntry &e : entries_) {
        n += e.valid ? 1 : 0;
    }
    return n;
}

TlbHierarchy::TlbHierarchy(const TlbConfig &l1_config,
                           const TlbConfig &l2_config)
    : l1_(l1_config), l2_(l2_config)
{
}

TlbHierarchy::HitLevel
TlbHierarchy::lookup(Addr vaddr, TlbEntry *entry_out)
{
    if (auto e = l1_.lookup(vaddr)) {
        if (entry_out) {
            *entry_out = *e;
        }
        return HitLevel::L1;
    }
    if (auto e = l2_.lookup(vaddr)) {
        // Refill L1 from L2.
        const Addr base = e->huge ? (e->vpn << kPageShift2M)
                                  : (e->vpn << kPageShift4K);
        l1_.insert(base, e->pfn, e->huge);
        if (entry_out) {
            *entry_out = *e;
        }
        return HitLevel::L2;
    }
    return HitLevel::Miss;
}

void
TlbHierarchy::insert(Addr vaddr, Pfn pfn, bool huge)
{
    l1_.insert(vaddr, pfn, huge);
    l2_.insert(vaddr, pfn, huge);
}

void
TlbHierarchy::invalidatePage(Addr vaddr)
{
    l1_.invalidatePage(vaddr);
    l2_.invalidatePage(vaddr);
}

void
TlbHierarchy::flushAll()
{
    l1_.flushAll();
    l2_.flushAll();
}

void
Tlb::registerMetrics(MetricRegistry &registry,
                     const std::string &prefix) const
{
    registry.addCallback(prefix + ".hits", [this] {
        return static_cast<double>(stats_.hits);
    });
    registry.addCallback(prefix + ".misses", [this] {
        return static_cast<double>(stats_.misses);
    });
    registry.addCallback(prefix + ".fills", [this] {
        return static_cast<double>(stats_.fills);
    });
    registry.addCallback(prefix + ".evictions", [this] {
        return static_cast<double>(stats_.evictions);
    });
    registry.addCallback(prefix + ".invalidations", [this] {
        return static_cast<double>(stats_.invalidations);
    });
    registry.addCallback(prefix + ".flushes", [this] {
        return static_cast<double>(stats_.flushes);
    });
    registry.addCallback(prefix + ".miss_ratio",
                         [this] { return stats_.missRatio(); });
}

void
TlbHierarchy::registerMetrics(MetricRegistry &registry,
                              const std::string &prefix) const
{
    l1_.registerMetrics(registry, prefix + ".l1");
    l2_.registerMetrics(registry, prefix + ".l2");
}

} // namespace thermostat
