#include "tlb/tlb.hh"

#include <algorithm>

#include "common/logging.hh"
#include "obs/metrics.hh"

namespace thermostat
{

Tlb::Tlb(const TlbConfig &config)
    : config_(config)
{
    TSTAT_ASSERT(config.entryCount > 0 && config.ways > 0,
                 "empty TLB");
    TSTAT_ASSERT(config.entryCount % config.ways == 0,
                 "TLB entries not divisible by ways");
    setCount_ = config.entryCount / config.ways;
    setsPow2_ = (setCount_ & (setCount_ - 1)) == 0;
    setMask_ = setCount_ - 1;
    entries_.resize(config.entryCount);
}

std::optional<TlbEntry>
Tlb::peek(Addr vaddr) const
{
    if (const TlbEntry *e = findEntry(vpn4K(vaddr), false)) {
        return *e;
    }
    if (const TlbEntry *e = findEntry(vpn2M(vaddr), true)) {
        return *e;
    }
    return std::nullopt;
}

void
Tlb::invalidatePage(Addr vaddr)
{
    dropTranslationCache();
    if (TlbEntry *e = findEntry(vpn4K(vaddr), false)) {
        e->valid = false;
        --sizeCount_[0];
        ++stats_.invalidations;
    }
    if (TlbEntry *e = findEntry(vpn2M(vaddr), true)) {
        e->valid = false;
        --sizeCount_[1];
        ++stats_.invalidations;
    }
}

void
Tlb::flushAll()
{
    dropTranslationCache();
    for (TlbEntry &e : entries_) {
        e.valid = false;
    }
    sizeCount_[0] = 0;
    sizeCount_[1] = 0;
    ++stats_.flushes;
}

unsigned
Tlb::validCount() const
{
    unsigned n = 0;
    for (const TlbEntry &e : entries_) {
        n += e.valid ? 1 : 0;
    }
    return n;
}

TlbHierarchy::TlbHierarchy(const TlbConfig &l1_config,
                           const TlbConfig &l2_config)
    : l1_(l1_config), l2_(l2_config)
{
}

void
TlbHierarchy::flushAll()
{
    l1_.flushAll();
    l2_.flushAll();
}

void
Tlb::registerMetrics(MetricRegistry &registry,
                     const std::string &prefix) const
{
    registry.addCallback(prefix + ".hits", [this] {
        return static_cast<double>(stats_.hits);
    });
    registry.addCallback(prefix + ".misses", [this] {
        return static_cast<double>(stats_.misses);
    });
    registry.addCallback(prefix + ".fills", [this] {
        return static_cast<double>(stats_.fills);
    });
    registry.addCallback(prefix + ".evictions", [this] {
        return static_cast<double>(stats_.evictions);
    });
    registry.addCallback(prefix + ".invalidations", [this] {
        return static_cast<double>(stats_.invalidations);
    });
    registry.addCallback(prefix + ".flushes", [this] {
        return static_cast<double>(stats_.flushes);
    });
    registry.addCallback(prefix + ".miss_ratio",
                         [this] { return stats_.missRatio(); });
}

void
TlbHierarchy::registerMetrics(MetricRegistry &registry,
                              const std::string &prefix) const
{
    l1_.registerMetrics(registry, prefix + ".l1");
    l2_.registerMetrics(registry, prefix + ".l2");
}

TlbConfig
TlbShards::sliceConfig(const TlbConfig &config)
{
    TlbConfig slice = config;
    const unsigned share = config.entryCount / kMachineLanes;
    slice.entryCount = std::max(
        config.ways, share - (share % config.ways));
    return slice;
}

TlbShards::TlbShards(const TlbConfig &l1_config,
                     const TlbConfig &l2_config)
    : l1Config_(sliceConfig(l1_config)),
      l2Config_(sliceConfig(l2_config))
{
    lanes_.reserve(kMachineLanes);
    for (unsigned lane = 0; lane < kMachineLanes; ++lane) {
        lanes_.emplace_back(l1Config_, l2Config_);
    }
}

void
TlbShards::flushAll()
{
    for (TlbHierarchy &lane : lanes_) {
        lane.flushAll();
    }
}

namespace
{

TlbStats
sumTlbStats(TlbStats into, const TlbStats &from)
{
    into.hits += from.hits;
    into.misses += from.misses;
    into.fills += from.fills;
    into.evictions += from.evictions;
    into.invalidations += from.invalidations;
    into.flushes += from.flushes;
    return into;
}

} // namespace

TlbStats
TlbShards::l1Stats() const
{
    TlbStats merged;
    for (const TlbHierarchy &lane : lanes_) {
        merged = sumTlbStats(merged, lane.l1().stats());
    }
    return merged;
}

TlbStats
TlbShards::l2Stats() const
{
    TlbStats merged;
    for (const TlbHierarchy &lane : lanes_) {
        merged = sumTlbStats(merged, lane.l2().stats());
    }
    return merged;
}

unsigned
TlbShards::l1ValidCount() const
{
    unsigned n = 0;
    for (const TlbHierarchy &lane : lanes_) {
        n += lane.l1().validCount();
    }
    return n;
}

unsigned
TlbShards::l2ValidCount() const
{
    unsigned n = 0;
    for (const TlbHierarchy &lane : lanes_) {
        n += lane.l2().validCount();
    }
    return n;
}

void
TlbShards::resetStats()
{
    for (TlbHierarchy &lane : lanes_) {
        lane.l1().resetStats();
        lane.l2().resetStats();
    }
}

void
TlbShards::registerMetrics(MetricRegistry &registry,
                           const std::string &prefix) const
{
    const auto add = [this, &registry,
                      &prefix](const std::string &level,
                               const std::string &name,
                               auto field) {
        registry.addCallback(
            prefix + "." + level + "." + name,
            [this, level, field] {
                const bool l2 = level == "l2";
                Count total = 0;
                for (const TlbHierarchy &lane : lanes_) {
                    const Tlb &tlb = l2 ? lane.l2() : lane.l1();
                    total += tlb.stats().*field;
                }
                return static_cast<double>(total);
            });
    };
    for (const char *level : {"l1", "l2"}) {
        add(level, "hits", &TlbStats::hits);
        add(level, "misses", &TlbStats::misses);
        add(level, "fills", &TlbStats::fills);
        add(level, "evictions", &TlbStats::evictions);
        add(level, "invalidations", &TlbStats::invalidations);
        add(level, "flushes", &TlbStats::flushes);
    }
    registry.addCallback(prefix + ".l1.miss_ratio",
                         [this] { return l1Stats().missRatio(); });
    registry.addCallback(prefix + ".l2.miss_ratio",
                         [this] { return l2Stats().missRatio(); });
}

} // namespace thermostat
