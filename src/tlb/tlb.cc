#include "tlb/tlb.hh"

#include "common/logging.hh"
#include "obs/metrics.hh"

namespace thermostat
{

Tlb::Tlb(const TlbConfig &config)
    : config_(config)
{
    TSTAT_ASSERT(config.entryCount > 0 && config.ways > 0,
                 "empty TLB");
    TSTAT_ASSERT(config.entryCount % config.ways == 0,
                 "TLB entries not divisible by ways");
    setCount_ = config.entryCount / config.ways;
    setsPow2_ = (setCount_ & (setCount_ - 1)) == 0;
    setMask_ = setCount_ - 1;
    entries_.resize(config.entryCount);
}

std::optional<TlbEntry>
Tlb::peek(Addr vaddr) const
{
    if (const TlbEntry *e = findEntry(vpn4K(vaddr), false)) {
        return *e;
    }
    if (const TlbEntry *e = findEntry(vpn2M(vaddr), true)) {
        return *e;
    }
    return std::nullopt;
}

void
Tlb::invalidatePage(Addr vaddr)
{
    dropTranslationCache();
    if (TlbEntry *e = findEntry(vpn4K(vaddr), false)) {
        e->valid = false;
        --sizeCount_[0];
        ++stats_.invalidations;
    }
    if (TlbEntry *e = findEntry(vpn2M(vaddr), true)) {
        e->valid = false;
        --sizeCount_[1];
        ++stats_.invalidations;
    }
}

void
Tlb::flushAll()
{
    dropTranslationCache();
    for (TlbEntry &e : entries_) {
        e.valid = false;
    }
    sizeCount_[0] = 0;
    sizeCount_[1] = 0;
    ++stats_.flushes;
}

unsigned
Tlb::validCount() const
{
    unsigned n = 0;
    for (const TlbEntry &e : entries_) {
        n += e.valid ? 1 : 0;
    }
    return n;
}

TlbHierarchy::TlbHierarchy(const TlbConfig &l1_config,
                           const TlbConfig &l2_config)
    : l1_(l1_config), l2_(l2_config)
{
}

void
TlbHierarchy::flushAll()
{
    l1_.flushAll();
    l2_.flushAll();
}

void
Tlb::registerMetrics(MetricRegistry &registry,
                     const std::string &prefix) const
{
    registry.addCallback(prefix + ".hits", [this] {
        return static_cast<double>(stats_.hits);
    });
    registry.addCallback(prefix + ".misses", [this] {
        return static_cast<double>(stats_.misses);
    });
    registry.addCallback(prefix + ".fills", [this] {
        return static_cast<double>(stats_.fills);
    });
    registry.addCallback(prefix + ".evictions", [this] {
        return static_cast<double>(stats_.evictions);
    });
    registry.addCallback(prefix + ".invalidations", [this] {
        return static_cast<double>(stats_.invalidations);
    });
    registry.addCallback(prefix + ".flushes", [this] {
        return static_cast<double>(stats_.flushes);
    });
    registry.addCallback(prefix + ".miss_ratio",
                         [this] { return stats_.missRatio(); });
}

void
TlbHierarchy::registerMetrics(MetricRegistry &registry,
                              const std::string &prefix) const
{
    l1_.registerMetrics(registry, prefix + ".l1");
    l2_.registerMetrics(registry, prefix + ".l2");
}

} // namespace thermostat
