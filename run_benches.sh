#!/usr/bin/env bash
# Regenerates every table and figure via the parallel driver
# (tools/run_all): headline experiments at full durations,
# ablations/microbenches in quick mode.  Worker count honors
# THERMOSTAT_JOBS; pass --quick to shorten everything, or benchmark
# names to run a subset.  Exits non-zero when any benchmark fails.
set -euo pipefail
cd "$(dirname "$0")" || exit

if [[ ! -x build/tools/run_all ]]; then
    echo "run_benches.sh: build/tools/run_all not found;" \
         "build the tree first (cmake -B build -S . && cmake --build build -j)" >&2
    exit 2
fi

exec ./build/tools/run_all --bench-dir build/bench "$@"
