#!/usr/bin/env bash
# Regenerates every table and figure via the parallel driver
# (tools/run_all): headline experiments at full durations,
# ablations/microbenches and the datacenter_consolidation sweep in
# quick mode (run `build/bench/datacenter_consolidation` directly
# for the full 32-tenant grid).  Worker count honors
# THERMOSTAT_JOBS; pass --quick to shorten everything, or benchmark
# names to run a subset.  After the artifact run, re-times the
# hot-path microbenchmark and gates it against the committed
# BENCH_hotpath.json baseline with tools/perf_diff (generous local
# tolerance; CI's perf-smoke job runs the same gate).  Exits
# non-zero when any benchmark fails or the perf gate regresses.
#
# --update-baseline: after an intended performance change, prints
# the same delta table and then rewrites BENCH_hotpath.json with the
# fresh run (commit the result).
set -euo pipefail
cd "$(dirname "$0")" || exit

update_baseline=0
args=()
for arg in "$@"; do
    if [[ "$arg" == "--update-baseline" ]]; then
        update_baseline=1
    else
        args+=("$arg")
    fi
done
set -- ${args[@]+"${args[@]}"}

if [[ ! -x build/tools/run_all ]]; then
    echo "run_benches.sh: build/tools/run_all not found;" \
         "build the tree first (cmake -B build -S . && cmake --build build -j)" >&2
    exit 2
fi

./build/tools/run_all --bench-dir build/bench "$@"

# Perf-regression gate: a fresh quick hotpath run diffed against
# the committed baseline.
if [[ -x build/tools/perf_diff && -x build/bench/bench_hotpath ]]; then
    echo
    echo "== perf gate: bench_hotpath vs committed baseline =="
    ./build/bench/bench_hotpath --quick --out BENCH_hotpath.fresh.json
    gate_flags=()
    if [[ "$update_baseline" == 1 ]]; then
        gate_flags+=(--update-baseline)
    fi
    ./build/tools/perf_diff \
        --baseline BENCH_hotpath.json \
        --fresh BENCH_hotpath.fresh.json \
        --threshold 50 \
        --json BENCH_hotpath.verdict.json \
        ${gate_flags[@]+"${gate_flags[@]}"}
fi
