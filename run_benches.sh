#!/bin/bash
# Regenerates every table and figure. Headline experiments run at
# full durations; ablations/microbenches honor THERMOSTAT_QUICK.
cd "$(dirname "$0")"
FULL="fig03_slowmem_rate fig05_cassandra fig06_mysql fig07_aerospike fig08_redis fig09_analytics fig10_websearch fig11_slowdown_sweep tab01_thp_gain tab02_footprints tab03_migration_bw tab04_cost_savings fig01_idle_fraction fig02_accessbit_scatter"
QUICK="abl_sampling_overhead abl_poison_budget abl_sample_fraction abl_correction abl_slow_emu_mode abl_hw_counting abl_spread_pages abl_wear_leveling micro_components"
for b in $FULL; do
  echo "===== $b ====="
  ./build/bench/$b
done
for b in $QUICK; do
  echo "===== $b ====="
  THERMOSTAT_QUICK=1 ./build/bench/$b --quick
done
