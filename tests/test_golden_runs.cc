/**
 * @file
 * Golden-run regression tests: pin byte-exact CSV output for one
 * small configuration per figure family (fig03, fig11, tab04).
 *
 * These runs never enable fault injection, so any diff against the
 * checked-in goldens means the simulator's fault-free behaviour
 * changed -- exactly the "bit-identical when disabled" claim this
 * suite exists to enforce.  To regenerate after an intentional
 * change:
 *
 *     THERMOSTAT_REGOLDEN=1 ./build/tests/test_golden_runs
 *
 * and commit the updated files under tests/golden/.
 */

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include <gtest/gtest.h>

#include "harness.hh"
#include "sim/csv_export.hh"

#ifndef THERMOSTAT_GOLDEN_DIR
#error "tests/CMakeLists.txt must define THERMOSTAT_GOLDEN_DIR"
#endif

namespace thermostat
{
namespace
{

using test::TempDir;
using test::halfColdWorkload;
using test::slurpFile;
using test::spillFile;
using test::tinySimConfig;

/**
 * Compare @p produced against the checked-in golden file, or rewrite
 * the golden when THERMOSTAT_REGOLDEN is set in the environment.
 */
void
checkGolden(const std::string &name, const std::string &produced)
{
    const std::string path =
        std::string(THERMOSTAT_GOLDEN_DIR) + "/" + name;
    if (std::getenv("THERMOSTAT_REGOLDEN") != nullptr) {
        ASSERT_TRUE(spillFile(path, produced))
            << "cannot regenerate " << path;
        return;
    }
    const std::string want = slurpFile(path);
    ASSERT_FALSE(want.empty())
        << "missing golden file " << path
        << "; run with THERMOSTAT_REGOLDEN=1 to create it";
    EXPECT_EQ(want, produced)
        << "output of " << name
        << " drifted from the golden run; if the change is "
           "intentional, regenerate with THERMOSTAT_REGOLDEN=1";
}

std::string
formatRow(const char *fmt, ...)
{
    char buf[256];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    return buf;
}

/** Fig 3 family: one full run exported through writeSimResultCsv. */
TEST(GoldenRuns, Fig03FamilyCsvFiles)
{
    SimConfig config = tinySimConfig(42);
    config.duration = 120 * kNsPerSec;
    Simulation sim(halfColdWorkload(), config);
    const SimResult result = sim.run();
    EXPECT_EQ(result.auditViolations, 0u);

    TempDir dir;
    ASSERT_TRUE(writeSimResultCsv(result, dir.path()));
    for (const char *name :
         {"footprint.csv", "slow_rate.csv", "device_rate.csv",
          "summary.csv"}) {
        checkGolden(std::string("fig03_") + name,
                    slurpFile(dir.file(name)));
    }
}

/**
 * The same run with the engine resolved through the policy factory
 * by its registered name: the tiering-policy refactor must be
 * byte-invisible against the fig03 goldens.
 */
TEST(GoldenRuns, ExplicitThermostatPolicyMatchesFig03Golden)
{
    SimConfig config = tinySimConfig(42);
    config.duration = 120 * kNsPerSec;
    config.policy = "thermostat";
    Simulation sim(halfColdWorkload(), config);
    const SimResult result = sim.run();
    EXPECT_EQ(result.policyName, "thermostat");
    EXPECT_EQ(result.auditViolations, 0u);

    TempDir dir;
    ASSERT_TRUE(writeSimResultCsv(result, dir.path()));
    for (const char *name :
         {"footprint.csv", "slow_rate.csv", "device_rate.csv",
          "summary.csv"}) {
        checkGolden(std::string("fig03_") + name,
                    slurpFile(dir.file(name)));
    }
}

/** Fig 11 family: slowdown-target sweep summary. */
TEST(GoldenRuns, Fig11SlowdownTargetSweep)
{
    std::string csv = "target_pct,slowdown,avg_cold_fraction,"
                      "final_cold_fraction,demotion_bytes_per_sec\n";
    for (const double target : {1.0, 3.0, 10.0}) {
        SimConfig config = tinySimConfig(7);
        config.duration = 90 * kNsPerSec;
        config.params.tolerableSlowdownPct = target;
        Simulation sim(halfColdWorkload(), config);
        const SimResult result = sim.run();
        EXPECT_EQ(result.auditViolations, 0u);
        csv += formatRow("%.1f,%.5f,%.5f,%.5f,%.1f\n", target,
                         result.slowdown, result.avgColdFraction,
                         result.finalColdFraction,
                         result.demotionBytesPerSec);
    }
    checkGolden("fig11_slowdown.csv", csv);
}

/** Tab 4 family: device-mode run with the memory-cost summary. */
TEST(GoldenRuns, Tab04DeviceModeSummary)
{
    SimConfig config = tinySimConfig(13);
    config.duration = 90 * kNsPerSec;
    config.machine.slowMode = SlowEmuMode::Device;
    Simulation sim(halfColdWorkload(), config);
    const SimResult result = sim.run();
    EXPECT_EQ(result.auditViolations, 0u);

    std::string csv = "key,value\n";
    csv += formatRow("slowdown,%.5f\n", result.slowdown);
    csv += formatRow("cost_relative_to_all_fast,%.6f\n",
                     sim.machine().memory().costRelativeToAllFast());
    csv += formatRow("final_cold_fraction,%.5f\n",
                     result.finalColdFraction);
    csv += formatRow("rss_bytes,%llu\n",
                     static_cast<unsigned long long>(
                         result.finalRssBytes));
    csv += formatRow("demotion_bytes_per_sec,%.1f\n",
                     result.demotionBytesPerSec);
    checkGolden("tab04_device_summary.csv", csv);
}

} // namespace
} // namespace thermostat
