/**
 * @file
 * Bit-level tests for the x86-64 PTE model, including the reserved
 * bit 51 Thermostat uses for poisoning.
 */

#include <gtest/gtest.h>

#include "vm/pte.hh"

namespace thermostat
{
namespace
{

TEST(Pte, DefaultIsNotPresent)
{
    Pte pte;
    EXPECT_EQ(pte.raw(), 0u);
    EXPECT_FALSE(pte.present());
}

TEST(Pte, BitPositionsMatchX86)
{
    EXPECT_EQ(Pte::kPresent, 1ULL << 0);
    EXPECT_EQ(Pte::kWritable, 1ULL << 1);
    EXPECT_EQ(Pte::kUser, 1ULL << 2);
    EXPECT_EQ(Pte::kAccessed, 1ULL << 5);
    EXPECT_EQ(Pte::kDirty, 1ULL << 6);
    EXPECT_EQ(Pte::kPageSize, 1ULL << 7);
    EXPECT_EQ(Pte::kPoison, 1ULL << 51);
}

TEST(Pte, MakeLeafBase)
{
    const Pte pte = Pte::makeLeaf(0x1234, false);
    EXPECT_TRUE(pte.present());
    EXPECT_TRUE(pte.writable());
    EXPECT_FALSE(pte.huge());
    EXPECT_FALSE(pte.accessed());
    EXPECT_FALSE(pte.dirty());
    EXPECT_FALSE(pte.poisoned());
    EXPECT_EQ(pte.pfn(), 0x1234u);
}

TEST(Pte, MakeLeafHugeSetsPageSizeBit)
{
    const Pte pte = Pte::makeLeaf(512, true);
    EXPECT_TRUE(pte.huge());
    EXPECT_TRUE(pte.raw() & Pte::kPageSize);
}

TEST(Pte, MakeLeafReadOnly)
{
    const Pte pte = Pte::makeLeaf(1, false, false);
    EXPECT_FALSE(pte.writable());
}

TEST(Pte, PfnRoundTripsThroughRawBits)
{
    Pte pte = Pte::makeLeaf(0, false);
    const Pfn max_pfn = (1ULL << 39) - 1; // bits 12..50
    pte.setPfn(max_pfn);
    EXPECT_EQ(pte.pfn(), max_pfn);
    EXPECT_TRUE(pte.present()) << "setPfn must not clobber flags";
    pte.setPfn(42);
    EXPECT_EQ(pte.pfn(), 42u);
}

TEST(Pte, PoisonDoesNotDisturbPfnOrFlags)
{
    Pte pte = Pte::makeLeaf(0xabcd, true);
    pte.setAccessed();
    pte.poison();
    EXPECT_TRUE(pte.poisoned());
    EXPECT_EQ(pte.pfn(), 0xabcdu);
    EXPECT_TRUE(pte.present());
    EXPECT_TRUE(pte.accessed());
    EXPECT_TRUE(pte.huge());
    pte.unpoison();
    EXPECT_FALSE(pte.poisoned());
    EXPECT_EQ(pte.pfn(), 0xabcdu);
}

TEST(Pte, PoisonIsExactlyBit51)
{
    Pte pte;
    pte.poison();
    EXPECT_EQ(pte.raw(), 1ULL << 51);
}

TEST(Pte, AccessedDirtyLifecycle)
{
    Pte pte = Pte::makeLeaf(1, false);
    pte.setAccessed();
    pte.setDirty();
    EXPECT_TRUE(pte.accessed());
    EXPECT_TRUE(pte.dirty());
    pte.clearAccessed();
    EXPECT_FALSE(pte.accessed());
    EXPECT_TRUE(pte.dirty());
    pte.clearDirty();
    EXPECT_FALSE(pte.dirty());
}

TEST(Pte, SetPresentToggles)
{
    Pte pte = Pte::makeLeaf(9, false);
    pte.setPresent(false);
    EXPECT_FALSE(pte.present());
    EXPECT_EQ(pte.pfn(), 9u);
    pte.setPresent(true);
    EXPECT_TRUE(pte.present());
}

TEST(Pte, EqualityComparesRawBits)
{
    const Pte a = Pte::makeLeaf(7, false);
    Pte b = Pte::makeLeaf(7, false);
    EXPECT_EQ(a, b);
    b.poison();
    EXPECT_NE(a, b);
}

} // namespace
} // namespace thermostat
