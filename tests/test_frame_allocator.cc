/**
 * @file
 * Unit and property tests for the per-tier frame allocator.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.hh"
#include "mem/frame_allocator.hh"

namespace thermostat
{
namespace
{

constexpr std::uint64_t kFrames = 8 * kSubpagesPerHuge;

TEST(FrameAllocator, HugeAllocationIsAligned)
{
    FrameAllocator alloc(0, kFrames);
    for (int i = 0; i < 8; ++i) {
        const auto pfn = alloc.allocHuge();
        ASSERT_TRUE(pfn.has_value());
        EXPECT_EQ(*pfn % kSubpagesPerHuge, 0u);
    }
    EXPECT_FALSE(alloc.allocHuge().has_value());
}

TEST(FrameAllocator, HugeAllocationsAreDistinct)
{
    FrameAllocator alloc(0, kFrames);
    std::set<Pfn> seen;
    for (int i = 0; i < 8; ++i) {
        seen.insert(*alloc.allocHuge());
    }
    EXPECT_EQ(seen.size(), 8u);
}

TEST(FrameAllocator, BaseAllocationBreaksOneBlock)
{
    FrameAllocator alloc(0, kFrames);
    std::set<Pfn> seen;
    for (unsigned i = 0; i < kSubpagesPerHuge; ++i) {
        const auto pfn = alloc.allocBase();
        ASSERT_TRUE(pfn.has_value());
        EXPECT_TRUE(seen.insert(*pfn).second) << "duplicate frame";
    }
    // All 512 frames should come from one 2MB block.
    const Pfn base = *seen.begin() - *seen.begin() % kSubpagesPerHuge;
    for (const Pfn pfn : seen) {
        EXPECT_EQ(pfn - pfn % kSubpagesPerHuge, base);
    }
    // 7 huge blocks must remain allocatable.
    for (int i = 0; i < 7; ++i) {
        EXPECT_TRUE(alloc.allocHuge().has_value());
    }
    EXPECT_FALSE(alloc.allocHuge().has_value());
}

TEST(FrameAllocator, FreeHugeMakesBlockReusable)
{
    FrameAllocator alloc(0, kSubpagesPerHuge);
    const Pfn pfn = *alloc.allocHuge();
    EXPECT_FALSE(alloc.allocHuge().has_value());
    alloc.freeHuge(pfn);
    EXPECT_TRUE(alloc.allocHuge().has_value());
}

TEST(FrameAllocator, BaseFreeCoalescesBackToHuge)
{
    FrameAllocator alloc(0, kSubpagesPerHuge);
    std::vector<Pfn> frames;
    for (unsigned i = 0; i < kSubpagesPerHuge; ++i) {
        frames.push_back(*alloc.allocBase());
    }
    EXPECT_FALSE(alloc.allocHuge().has_value());
    for (const Pfn pfn : frames) {
        alloc.freeBase(pfn);
    }
    EXPECT_EQ(alloc.allocatedFrames(), 0u);
    EXPECT_TRUE(alloc.allocHuge().has_value());
}

TEST(FrameAllocator, OccupancyAccounting)
{
    FrameAllocator alloc(0, kFrames);
    EXPECT_EQ(alloc.allocatedFrames(), 0u);
    EXPECT_EQ(alloc.freeFrames(), kFrames);
    EXPECT_DOUBLE_EQ(alloc.utilization(), 0.0);
    const Pfn huge = *alloc.allocHuge();
    const Pfn base = *alloc.allocBase();
    EXPECT_EQ(alloc.allocatedFrames(), kSubpagesPerHuge + 1);
    alloc.freeBase(base);
    alloc.freeHuge(huge);
    EXPECT_EQ(alloc.allocatedFrames(), 0u);
}

TEST(FrameAllocator, OwnsRange)
{
    FrameAllocator alloc(1024, kFrames);
    EXPECT_FALSE(alloc.owns(1023));
    EXPECT_TRUE(alloc.owns(1024));
    EXPECT_TRUE(alloc.owns(1024 + kFrames - 1));
    EXPECT_FALSE(alloc.owns(1024 + kFrames));
}

TEST(FrameAllocator, NonZeroBasePfn)
{
    FrameAllocator alloc(4 * kSubpagesPerHuge, kFrames);
    const Pfn pfn = *alloc.allocHuge();
    EXPECT_GE(pfn, 4u * kSubpagesPerHuge);
    EXPECT_EQ(pfn % kSubpagesPerHuge, 0u);
}

TEST(FrameAllocator, BreakAllocatedHugeEnablesBaseFrees)
{
    FrameAllocator alloc(0, kFrames);
    const Pfn base = *alloc.allocHuge();
    alloc.breakAllocatedHuge(base);
    EXPECT_EQ(alloc.allocatedFrames(), kSubpagesPerHuge);
    // Every subframe can now be freed individually.
    for (unsigned i = 0; i < kSubpagesPerHuge; ++i) {
        alloc.freeBase(base + i);
    }
    EXPECT_EQ(alloc.allocatedFrames(), 0u);
    // The block coalesced: we can allocate 8 huge blocks again.
    for (int i = 0; i < 8; ++i) {
        EXPECT_TRUE(alloc.allocHuge().has_value());
    }
}

TEST(FrameAllocator, ReformAllocatedHugeRoundTrip)
{
    FrameAllocator alloc(0, kFrames);
    const Pfn base = *alloc.allocHuge();
    alloc.breakAllocatedHuge(base);
    EXPECT_TRUE(alloc.reformAllocatedHuge(base));
    // Now the whole block can be freed as a huge block.
    alloc.freeHuge(base);
    EXPECT_EQ(alloc.allocatedFrames(), 0u);
}

TEST(FrameAllocator, ReformFailsAfterPartialFree)
{
    FrameAllocator alloc(0, kFrames);
    const Pfn base = *alloc.allocHuge();
    alloc.breakAllocatedHuge(base);
    alloc.freeBase(base + 3);
    EXPECT_FALSE(alloc.reformAllocatedHuge(base));
}

TEST(FrameAllocator, PartiallyFreedBlockServesBaseAllocs)
{
    FrameAllocator alloc(0, kSubpagesPerHuge);
    const Pfn base = *alloc.allocHuge();
    alloc.breakAllocatedHuge(base);
    alloc.freeBase(base + 7);
    const auto pfn = alloc.allocBase();
    ASSERT_TRUE(pfn.has_value());
    EXPECT_EQ(*pfn, base + 7);
}

TEST(FrameAllocatorDeath, DoubleFreeBasePanics)
{
    FrameAllocator alloc(0, kFrames);
    (void)alloc.allocHuge();
    const Pfn pfn = *alloc.allocBase();
    alloc.freeBase(pfn);
    EXPECT_DEATH(alloc.freeBase(pfn), "");
}

TEST(FrameAllocatorDeath, UnalignedConstructionPanics)
{
    EXPECT_DEATH(FrameAllocator(1, kFrames), "aligned");
    EXPECT_DEATH(FrameAllocator(0, 100), "multiple");
}

/** Randomized invariant check across seeds. */
class FrameAllocatorFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(FrameAllocatorFuzz, RandomOpsPreserveInvariants)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    FrameAllocator alloc(0, 16 * kSubpagesPerHuge);
    std::vector<Pfn> huge_allocs;
    std::vector<Pfn> base_allocs;
    std::set<Pfn> live;

    for (int step = 0; step < 4000; ++step) {
        switch (rng.nextBounded(4)) {
          case 0:
            if (const auto pfn = alloc.allocHuge()) {
                huge_allocs.push_back(*pfn);
                for (unsigned i = 0; i < kSubpagesPerHuge; ++i) {
                    ASSERT_TRUE(live.insert(*pfn + i).second)
                        << "frame handed out twice";
                }
            }
            break;
          case 1:
            if (const auto pfn = alloc.allocBase()) {
                base_allocs.push_back(*pfn);
                ASSERT_TRUE(live.insert(*pfn).second)
                    << "frame handed out twice";
            }
            break;
          case 2:
            if (!huge_allocs.empty()) {
                const std::size_t idx = static_cast<std::size_t>(
                    rng.nextBounded(huge_allocs.size()));
                const Pfn pfn = huge_allocs[idx];
                huge_allocs.erase(huge_allocs.begin() +
                                  static_cast<long>(idx));
                alloc.freeHuge(pfn);
                for (unsigned i = 0; i < kSubpagesPerHuge; ++i) {
                    live.erase(pfn + i);
                }
            }
            break;
          default:
            if (!base_allocs.empty()) {
                const std::size_t idx = static_cast<std::size_t>(
                    rng.nextBounded(base_allocs.size()));
                const Pfn pfn = base_allocs[idx];
                base_allocs.erase(base_allocs.begin() +
                                  static_cast<long>(idx));
                alloc.freeBase(pfn);
                live.erase(pfn);
            }
            break;
        }
        ASSERT_EQ(alloc.allocatedFrames(), live.size());
        ASSERT_EQ(alloc.freeFrames(),
                  16 * kSubpagesPerHuge - live.size());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FrameAllocatorFuzz,
                         ::testing::Range(1, 6));

} // namespace
} // namespace thermostat
