/**
 * @file
 * Tests for ComposedWorkload and the six cloud application models
 * (footprints must match Table 2).
 */

#include <gtest/gtest.h>

#include <map>

#include "workload/cloud_apps.hh"

namespace thermostat
{
namespace
{

TieredMemory
bigMemory()
{
    return TieredMemory(TierConfig::dram(24ULL << 30),
                        TierConfig::slow(4ULL << 30));
}

std::unique_ptr<ComposedWorkload>
tinyWorkload()
{
    auto w = std::make_unique<ComposedWorkload>("tiny", 1.0e6, 0.5,
                                                60 * kNsPerSec);
    w->addRegion({"a", 4_MiB, 0, true, false});
    w->addRegion({"b", 2_MiB, 8_MiB, true, true});
    w->addGrowth({"b", 1.0e6}); // 1MB/s
    TrafficComponent hot;
    hot.region = "a";
    hot.weight = 0.9;
    hot.writeFraction = 0.0;
    hot.burstLines = 2;
    hot.pattern = std::make_unique<UniformPattern>(4_MiB);
    w->addComponent(std::move(hot));
    TrafficComponent grow;
    grow.region = "b";
    grow.weight = 0.1;
    grow.writeFraction = 1.0;
    grow.burstLines = 4;
    grow.pattern = std::make_unique<UniformPattern>(2_MiB);
    grow.trackGrowth = true;
    w->addComponent(std::move(grow));
    return w;
}

TEST(ComposedWorkload, SetupCreatesRegions)
{
    TieredMemory mem(TierConfig::dram(64_MiB),
                     TierConfig::slow(64_MiB));
    AddressSpace space(mem);
    auto w = tinyWorkload();
    w->setup(space);
    EXPECT_NE(space.findRegion("a"), nullptr);
    EXPECT_NE(space.findRegion("b"), nullptr);
    EXPECT_EQ(space.rssBytes(), 6_MiB);
    EXPECT_EQ(space.fileBackedBytes(), 2_MiB);
}

TEST(ComposedWorkload, SamplesLandInRegions)
{
    TieredMemory mem(TierConfig::dram(64_MiB),
                     TierConfig::slow(64_MiB));
    AddressSpace space(mem);
    auto w = tinyWorkload();
    w->setup(space);
    Rng rng(1);
    const Region *a = space.findRegion("a");
    const Region *b = space.findRegion("b");
    int in_a = 0;
    int in_b = 0;
    for (int i = 0; i < 10000; ++i) {
        const MemRef ref = w->sample(rng);
        if (ref.addr >= a->base && ref.addr < a->end()) {
            ++in_a;
            EXPECT_EQ(ref.burstLines, 2u);
            EXPECT_EQ(ref.type, AccessType::Read);
        } else if (ref.addr >= b->base && ref.addr < b->end()) {
            ++in_b;
            EXPECT_EQ(ref.burstLines, 4u);
            EXPECT_EQ(ref.type, AccessType::Write);
        } else {
            FAIL() << "sample outside any region";
        }
    }
    EXPECT_NEAR(in_a, 9000, 300);
    EXPECT_NEAR(in_b, 1000, 300);
}

TEST(ComposedWorkload, SamplesAreLineAligned)
{
    TieredMemory mem(TierConfig::dram(64_MiB),
                     TierConfig::slow(64_MiB));
    AddressSpace space(mem);
    auto w = tinyWorkload();
    w->setup(space);
    Rng rng(2);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(w->sample(rng).addr % 64, 0u);
    }
}

TEST(ComposedWorkload, GrowthFollowsRate)
{
    TieredMemory mem(TierConfig::dram(64_MiB),
                     TierConfig::slow(64_MiB));
    AddressSpace space(mem);
    auto w = tinyWorkload();
    w->setup(space);
    // 5s at 1.0e6 bytes/s = 5.0e6 bytes, quantized to 2MB chunks
    // for a THP region: exactly two chunks mapped.
    w->advance(5 * kNsPerSec, space);
    EXPECT_EQ(space.findRegion("b")->mappedBytes, 2_MiB + 4_MiB);
}

TEST(ComposedWorkload, GrowthStopsAtReservation)
{
    TieredMemory mem(TierConfig::dram(64_MiB),
                     TierConfig::slow(64_MiB));
    AddressSpace space(mem);
    auto w = tinyWorkload();
    w->setup(space);
    w->advance(60 * kNsPerSec, space); // would be 60MB; capped at 8
    EXPECT_EQ(space.findRegion("b")->mappedBytes, 8_MiB);
    // Further advances must not die.
    w->advance(120 * kNsPerSec, space);
    EXPECT_EQ(space.findRegion("b")->mappedBytes, 8_MiB);
}

TEST(ComposedWorkload, TrackGrowthSamplesReachNewPages)
{
    TieredMemory mem(TierConfig::dram(64_MiB),
                     TierConfig::slow(64_MiB));
    AddressSpace space(mem);
    auto w = tinyWorkload();
    w->setup(space);
    w->advance(6 * kNsPerSec, space);
    const Region *b = space.findRegion("b");
    Rng rng(3);
    bool reached_growth = false;
    for (int i = 0; i < 20000; ++i) {
        const MemRef ref = w->sample(rng);
        if (ref.addr >= b->base + 2_MiB && ref.addr < b->end()) {
            reached_growth = true;
            break;
        }
    }
    EXPECT_TRUE(reached_growth);
}

TEST(ComposedWorkload, InitialFootprintHelpers)
{
    auto w = tinyWorkload();
    EXPECT_EQ(w->initialRssBytes(), 6_MiB);
    EXPECT_EQ(w->initialFileBytes(), 2_MiB);
}

/** Table 2 footprints for all six applications. */
struct FootprintCase
{
    const char *name;
    double rss_gb;       // paper Table 2
    double file_mb;
};

class CloudAppFootprint
    : public ::testing::TestWithParam<FootprintCase>
{
};

TEST_P(CloudAppFootprint, MatchesTable2)
{
    const FootprintCase &c = GetParam();
    auto w = makeWorkload(c.name);
    const double rss_gb =
        static_cast<double>(w->initialRssBytes()) / (1ULL << 30);
    EXPECT_NEAR(rss_gb, c.rss_gb, c.rss_gb * 0.12)
        << c.name << " RSS off Table 2";
    const double file_mb =
        static_cast<double>(w->initialFileBytes()) / (1ULL << 20);
    EXPECT_NEAR(file_mb, c.file_mb, c.file_mb * 0.15 + 2.0)
        << c.name << " file-mapped off Table 2";
}

INSTANTIATE_TEST_SUITE_P(
    Table2, CloudAppFootprint,
    ::testing::Values(
        FootprintCase{"aerospike", 12.3, 5.0},
        FootprintCase{"cassandra", 8.0, 4096.0},
        FootprintCase{"mysql-tpcc", 6.0, 3584.0},
        FootprintCase{"redis", 17.2, 1.0},
        FootprintCase{"in-memory-analytics", 4.3, 1.0},
        FootprintCase{"web-search", 2.28, 86.0}));

TEST(CloudApps, AllNamesConstruct)
{
    for (const std::string &name : allWorkloadNames()) {
        auto w = makeWorkload(name);
        ASSERT_NE(w, nullptr);
        EXPECT_EQ(w->name(), name);
        EXPECT_GT(w->memRefRate(), 0.0);
        EXPECT_GT(w->cpuWorkFraction(), 0.0);
        EXPECT_LT(w->cpuWorkFraction(), 1.0);
        EXPECT_GT(w->naturalDuration(), 0u);
    }
}

TEST(CloudApps, UnknownNameIsFatal)
{
    EXPECT_EXIT((void)makeWorkload("nosuchapp"),
                ::testing::ExitedWithCode(1), "unknown workload");
}

TEST(CloudApps, RedisSamplesStayInHeap)
{
    TieredMemory mem = bigMemory();
    AddressSpace space(mem);
    auto w = makeRedis();
    w->setup(space);
    Rng rng(4);
    for (int i = 0; i < 5000; ++i) {
        const MemRef ref = w->sample(rng);
        bool inside = false;
        for (const Region &region : space.regions()) {
            inside |= ref.addr >= region.base &&
                      ref.addr < region.end();
        }
        EXPECT_TRUE(inside);
    }
}

TEST(CloudApps, YcsbMixChangesWriteFraction)
{
    TieredMemory mem = bigMemory();
    AddressSpace space(mem);
    auto reads = makeAerospike(YcsbMix::ReadHeavy, 1);
    reads->setup(space);
    Rng rng(5);
    int writes = 0;
    for (int i = 0; i < 5000; ++i) {
        writes +=
            reads->sample(rng).type == AccessType::Write ? 1 : 0;
    }
    EXPECT_LT(writes, 1000); // ~5% writes on the main zones
}

TEST(CloudApps, AnalyticsGrowsOverRun)
{
    TieredMemory mem = bigMemory();
    AddressSpace space(mem);
    auto w = makeInMemAnalytics();
    w->setup(space);
    const std::uint64_t start = space.rssBytes();
    w->advance(300 * kNsPerSec, space);
    const std::uint64_t end = space.rssBytes();
    EXPECT_GT(end, start + 1'000_MiB);
    // Peak heap ~6.2GB per Table 2.
    EXPECT_NEAR(static_cast<double>(end) / (1ULL << 30), 6.1, 0.4);
}

} // namespace
} // namespace thermostat
