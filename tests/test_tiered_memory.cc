/**
 * @file
 * Tests for the two-tier physical memory system and wear tracking.
 */

#include <gtest/gtest.h>

#include "mem/tiered_memory.hh"

namespace thermostat
{
namespace
{

TieredMemory
makeMemory(std::uint64_t fast_mb = 64, std::uint64_t slow_mb = 64)
{
    return TieredMemory(TierConfig::dram(fast_mb << 20),
                        TierConfig::slow(slow_mb << 20));
}

TEST(TierConfig, DramDefaults)
{
    const TierConfig dram = TierConfig::dram(1_GiB);
    EXPECT_EQ(dram.capacityBytes, 1_GiB);
    EXPECT_EQ(dram.writeEndurance, 0u);
    EXPECT_DOUBLE_EQ(dram.relativeCostPerByte, 1.0);
    EXPECT_LT(dram.readLatency, 200u);
}

TEST(TierConfig, SlowDefaults)
{
    const TierConfig slow = TierConfig::slow(1_GiB);
    EXPECT_GT(slow.readLatency, TierConfig::dram(1_GiB).readLatency);
    EXPECT_GT(slow.writeLatency, slow.readLatency - 1);
    EXPECT_LT(slow.relativeCostPerByte, 1.0);
    EXPECT_GT(slow.writeEndurance, 0u);
}

TEST(TieredMemory, TierOfResolvesByPfnRange)
{
    TieredMemory mem = makeMemory(64, 64);
    const std::uint64_t fast_frames = (64_MiB) / kPageSize4K;
    EXPECT_EQ(mem.tierOf(0), Tier::Fast);
    EXPECT_EQ(mem.tierOf(fast_frames - 1), Tier::Fast);
    EXPECT_EQ(mem.tierOf(fast_frames), Tier::Slow);
}

TEST(TieredMemory, AllocationsLandInRequestedTier)
{
    TieredMemory mem = makeMemory();
    const Pfn fast = *mem.allocHuge(Tier::Fast);
    const Pfn slow = *mem.allocHuge(Tier::Slow);
    EXPECT_EQ(mem.tierOf(fast), Tier::Fast);
    EXPECT_EQ(mem.tierOf(slow), Tier::Slow);
    const Pfn fast4k = *mem.allocBase(Tier::Fast);
    const Pfn slow4k = *mem.allocBase(Tier::Slow);
    EXPECT_EQ(mem.tierOf(fast4k), Tier::Fast);
    EXPECT_EQ(mem.tierOf(slow4k), Tier::Slow);
}

TEST(TieredMemory, FreeRoutesToOwningTier)
{
    TieredMemory mem = makeMemory();
    const Pfn slow = *mem.allocHuge(Tier::Slow);
    EXPECT_EQ(mem.slow().usedBytes(), kPageSize2M);
    mem.freeHuge(slow);
    EXPECT_EQ(mem.slow().usedBytes(), 0u);
}

TEST(TieredMemory, AccessLatencyByTier)
{
    TieredMemory mem = makeMemory();
    const Pfn fast = *mem.allocBase(Tier::Fast);
    const Pfn slow = *mem.allocBase(Tier::Slow);
    const Ns fast_read = mem.access(fast, AccessType::Read);
    const Ns slow_read = mem.access(slow, AccessType::Read);
    EXPECT_LT(fast_read, slow_read);
    EXPECT_EQ(mem.fast().stats().reads, 1u);
    EXPECT_EQ(mem.slow().stats().reads, 1u);
}

TEST(TieredMemory, WriteTrafficAndWear)
{
    TieredMemory mem = makeMemory();
    const Pfn slow = *mem.allocBase(Tier::Slow);
    for (int i = 0; i < 10; ++i) {
        mem.access(slow, AccessType::Write);
    }
    EXPECT_EQ(mem.slow().stats().writes, 10u);
    EXPECT_EQ(mem.slow().totalWear(), 10u);
    EXPECT_EQ(mem.slow().maxFrameWear(), 10u);
    EXPECT_FALSE(mem.slow().wornOut());
}

TEST(TieredMemory, DramDoesNotTrackWear)
{
    TieredMemory mem = makeMemory();
    const Pfn fast = *mem.allocBase(Tier::Fast);
    mem.access(fast, AccessType::Write);
    EXPECT_EQ(mem.fast().totalWear(), 0u);
}

TEST(TieredMemory, WearOutDetection)
{
    TierConfig slow = TierConfig::slow(64_MiB);
    slow.writeEndurance = 5;
    TieredMemory mem(TierConfig::dram(64_MiB), slow);
    const Pfn pfn = *mem.allocBase(Tier::Slow);
    for (int i = 0; i < 6; ++i) {
        mem.access(pfn, AccessType::Write);
    }
    EXPECT_TRUE(mem.slow().wornOut());
}

TEST(TieredMemory, MigrationTrafficMeters)
{
    TieredMemory mem = makeMemory();
    mem.fast().recordMigrationOut(kPageSize2M);
    mem.slow().recordMigrationIn(kPageSize2M);
    EXPECT_EQ(mem.fast().stats().migrationsOut, 1u);
    EXPECT_EQ(mem.fast().stats().migrationBytesOut, kPageSize2M);
    EXPECT_EQ(mem.slow().stats().migrationBytesIn, kPageSize2M);
}

TEST(TieredMemory, CostModelAllFastIsOne)
{
    TieredMemory mem = makeMemory();
    (void)*mem.allocHuge(Tier::Fast);
    EXPECT_NEAR(mem.costRelativeToAllFast(), 1.0, 1e-12);
}

TEST(TieredMemory, CostModelBlendsByTier)
{
    TieredMemory mem = makeMemory();
    (void)*mem.allocHuge(Tier::Fast);
    (void)*mem.allocHuge(Tier::Slow);
    // Half fast (cost 1) and half slow (cost 1/3): blended 2/3.
    EXPECT_NEAR(mem.costRelativeToAllFast(), 2.0 / 3.0, 1e-9);
}

TEST(TieredMemory, CostModelEmptyIsOne)
{
    TieredMemory mem = makeMemory();
    EXPECT_DOUBLE_EQ(mem.costRelativeToAllFast(), 1.0);
}

TEST(TieredMemory, UsedBytesAggregates)
{
    TieredMemory mem = makeMemory();
    (void)*mem.allocHuge(Tier::Fast);
    (void)*mem.allocBase(Tier::Slow);
    EXPECT_EQ(mem.usedBytes(), kPageSize2M + kPageSize4K);
}

TEST(TieredMemory, ExhaustionReturnsNullopt)
{
    TieredMemory mem = makeMemory(2, 2);
    EXPECT_TRUE(mem.allocHuge(Tier::Fast).has_value());
    EXPECT_FALSE(mem.allocHuge(Tier::Fast).has_value());
    EXPECT_TRUE(mem.allocHuge(Tier::Slow).has_value());
    EXPECT_FALSE(mem.allocHuge(Tier::Slow).has_value());
}

} // namespace
} // namespace thermostat
