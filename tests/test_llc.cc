/**
 * @file
 * Tests for the last-level cache model.
 */

#include <gtest/gtest.h>

#include "cache/llc.hh"

namespace thermostat
{
namespace
{

LlcConfig
tinyConfig()
{
    LlcConfig config;
    config.sizeBytes = 64 * 1024; // 1024 lines
    config.lineSize = 64;
    config.ways = 4;
    return config;
}

TEST(Llc, MissThenHit)
{
    LastLevelCache llc(tinyConfig());
    EXPECT_FALSE(llc.access(0x1000, AccessType::Read));
    EXPECT_TRUE(llc.access(0x1000, AccessType::Read));
    EXPECT_EQ(llc.stats().hits, 1u);
    EXPECT_EQ(llc.stats().misses, 1u);
}

TEST(Llc, SameLineDifferentBytesHit)
{
    LastLevelCache llc(tinyConfig());
    (void)llc.access(0x1000, AccessType::Read);
    EXPECT_TRUE(llc.access(0x1030, AccessType::Read));
}

TEST(Llc, DifferentLinesMissIndependently)
{
    LastLevelCache llc(tinyConfig());
    (void)llc.access(0x1000, AccessType::Read);
    EXPECT_FALSE(llc.access(0x1040, AccessType::Read));
}

TEST(Llc, LruEvictionWithinSet)
{
    LlcConfig config = tinyConfig();
    LastLevelCache llc(config);
    const unsigned sets = static_cast<unsigned>(
        config.sizeBytes / config.lineSize / config.ways);
    const Addr stride = static_cast<Addr>(sets) * config.lineSize;
    // Fill one set (4 ways), then touch line 0 and insert a fifth.
    for (Addr i = 0; i < 4; ++i) {
        (void)llc.access(i * stride, AccessType::Read);
    }
    EXPECT_TRUE(llc.access(0, AccessType::Read));
    (void)llc.access(4 * stride, AccessType::Read);
    EXPECT_TRUE(llc.access(0, AccessType::Read));
    EXPECT_FALSE(llc.access(stride, AccessType::Read))
        << "LRU line should have been evicted";
}

TEST(Llc, DirtyEvictionCountsWriteback)
{
    LlcConfig config = tinyConfig();
    LastLevelCache llc(config);
    const unsigned sets = static_cast<unsigned>(
        config.sizeBytes / config.lineSize / config.ways);
    const Addr stride = static_cast<Addr>(sets) * config.lineSize;
    (void)llc.access(0, AccessType::Write);
    for (Addr i = 1; i <= 4; ++i) {
        (void)llc.access(i * stride, AccessType::Read);
    }
    EXPECT_EQ(llc.stats().writebacks, 1u);
}

TEST(Llc, FlushAllEmptiesCache)
{
    LastLevelCache llc(tinyConfig());
    (void)llc.access(0x2000, AccessType::Read);
    llc.flushAll();
    EXPECT_FALSE(llc.contains(0x2000));
    EXPECT_FALSE(llc.access(0x2000, AccessType::Read));
}

TEST(Llc, InvalidateFrameDropsOnlyThatFrame)
{
    LastLevelCache llc(tinyConfig());
    (void)llc.access(5 * kPageSize4K, AccessType::Read);
    (void)llc.access(6 * kPageSize4K, AccessType::Read);
    llc.invalidateFrame(5);
    EXPECT_FALSE(llc.contains(5 * kPageSize4K));
    EXPECT_TRUE(llc.contains(6 * kPageSize4K));
}

TEST(Llc, ContainsDoesNotPerturb)
{
    LastLevelCache llc(tinyConfig());
    (void)llc.access(0x3000, AccessType::Read);
    const auto hits = llc.stats().hits;
    EXPECT_TRUE(llc.contains(0x3000));
    EXPECT_FALSE(llc.contains(0x4000));
    EXPECT_EQ(llc.stats().hits, hits);
}

TEST(Llc, FrameMissTrackingWhenEnabled)
{
    LlcConfig config = tinyConfig();
    config.trackFrameMisses = true;
    LastLevelCache llc(config);
    // Two misses within the first 2MB region.
    (void)llc.access(0x0, AccessType::Read);
    (void)llc.access(kPageSize4K, AccessType::Read);
    // One miss in the second 2MB region.
    (void)llc.access(kPageSize2M, AccessType::Read);
    EXPECT_EQ(llc.frameMisses(0), 2u);
    EXPECT_EQ(llc.frameMisses(kSubpagesPerHuge), 1u);
    llc.clearFrameMisses();
    EXPECT_EQ(llc.frameMisses(0), 0u);
}

TEST(Llc, FrameMissTrackingDisabledByDefault)
{
    LastLevelCache llc(tinyConfig());
    (void)llc.access(0x0, AccessType::Read);
    EXPECT_EQ(llc.frameMisses(0), 0u);
}

TEST(Llc, ResetStats)
{
    LastLevelCache llc(tinyConfig());
    (void)llc.access(0x0, AccessType::Read);
    llc.resetStats();
    EXPECT_EQ(llc.stats().misses, 0u);
}

TEST(Llc, MissRatio)
{
    LastLevelCache llc(tinyConfig());
    (void)llc.access(0, AccessType::Read);
    (void)llc.access(0, AccessType::Read);
    (void)llc.access(0, AccessType::Read);
    EXPECT_NEAR(llc.stats().missRatio(), 1.0 / 3.0, 1e-12);
}

TEST(LlcDeath, BadGeometryPanics)
{
    LlcConfig config;
    config.sizeBytes = 1000;
    config.lineSize = 64;
    config.ways = 7;
    EXPECT_DEATH(LastLevelCache{config}, "");
}

} // namespace
} // namespace thermostat
