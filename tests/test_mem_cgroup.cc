/**
 * @file
 * Tests for the memory-cgroup control surface (paper Sec 3.1/5:
 * Thermostat parameters live in a cgroup and can change at runtime).
 */

#include <gtest/gtest.h>

#include "sys/mem_cgroup.hh"

namespace thermostat
{
namespace
{

TEST(ThermostatParams, PaperDefaults)
{
    const ThermostatParams params;
    EXPECT_TRUE(params.enabled);
    EXPECT_DOUBLE_EQ(params.tolerableSlowdownPct, 3.0);
    EXPECT_EQ(params.slowMemLatency, 1000u);
    EXPECT_DOUBLE_EQ(params.sampleFraction, 0.05);
    EXPECT_EQ(params.poisonBudget, 50u);
    EXPECT_EQ(params.samplingPeriod, 30 * kNsPerSec);
    EXPECT_TRUE(params.correctionEnabled);
    EXPECT_FALSE(params.spreadHugePages);
}

TEST(ThermostatParams, TargetRateArithmetic)
{
    ThermostatParams params;
    EXPECT_NEAR(params.targetSlowAccessRate(), 30000.0, 1e-9);
    params.tolerableSlowdownPct = 10.0;
    EXPECT_NEAR(params.targetSlowAccessRate(), 100000.0, 1e-9);
    params.slowMemLatency = 400;
    EXPECT_NEAR(params.targetSlowAccessRate(), 250000.0, 1e-9);
}

TEST(MemCgroup, SettersTakeEffect)
{
    MemCgroup cgroup("vm-1");
    EXPECT_EQ(cgroup.name(), "vm-1");
    cgroup.setTolerableSlowdownPct(6.0);
    cgroup.setSamplingPeriod(10 * kNsPerSec);
    cgroup.setSampleFraction(0.10);
    cgroup.setPoisonBudget(25);
    cgroup.setSlowMemLatency(400);
    cgroup.setEnabled(false);
    EXPECT_DOUBLE_EQ(cgroup.params().tolerableSlowdownPct, 6.0);
    EXPECT_EQ(cgroup.params().samplingPeriod, 10 * kNsPerSec);
    EXPECT_DOUBLE_EQ(cgroup.params().sampleFraction, 0.10);
    EXPECT_EQ(cgroup.params().poisonBudget, 25u);
    EXPECT_EQ(cgroup.params().slowMemLatency, 400u);
    EXPECT_FALSE(cgroup.params().enabled);
}

TEST(MemCgroup, ConstructedWithCustomParams)
{
    ThermostatParams params;
    params.tolerableSlowdownPct = 1.0;
    params.spreadHugePages = true;
    MemCgroup cgroup("vm-2", params);
    EXPECT_DOUBLE_EQ(cgroup.params().tolerableSlowdownPct, 1.0);
    EXPECT_TRUE(cgroup.params().spreadHugePages);
}

} // namespace
} // namespace thermostat
