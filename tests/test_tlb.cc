/**
 * @file
 * Tests for the set-associative TLB and the two-level hierarchy.
 */

#include <gtest/gtest.h>

#include "tlb/tlb.hh"

namespace thermostat
{
namespace
{

constexpr Addr kBase = Addr{8} << 30;

TEST(Tlb, MissThenHitAfterInsert)
{
    Tlb tlb({16, 4});
    EXPECT_FALSE(tlb.lookup(kBase).has_value());
    tlb.insert(kBase, 42, false);
    const auto entry = tlb.lookup(kBase);
    ASSERT_TRUE(entry.has_value());
    EXPECT_EQ(entry->pfn, 42u);
    EXPECT_FALSE(entry->huge);
    EXPECT_EQ(tlb.stats().hits, 1u);
    EXPECT_EQ(tlb.stats().misses, 1u);
}

TEST(Tlb, HugeEntryCoversWholePage)
{
    Tlb tlb({16, 4});
    tlb.insert(kBase, 512, true);
    for (const Addr off : {Addr{0}, Addr{4096}, kPageSize2M - 64}) {
        const auto entry = tlb.lookup(kBase + off);
        ASSERT_TRUE(entry.has_value());
        EXPECT_TRUE(entry->huge);
        EXPECT_EQ(entry->pfn, 512u);
    }
}

TEST(Tlb, BaseEntryDoesNotCoverNeighbour)
{
    Tlb tlb({16, 4});
    tlb.insert(kBase, 1, false);
    EXPECT_FALSE(tlb.lookup(kBase + kPageSize4K).has_value());
}

TEST(Tlb, MixedSizesCoexist)
{
    Tlb tlb({16, 4});
    tlb.insert(kBase, 512, true);
    tlb.insert(kBase + 16 * kPageSize2M, 7, false);
    EXPECT_TRUE(tlb.lookup(kBase).has_value());
    EXPECT_TRUE(tlb.lookup(kBase + 16 * kPageSize2M).has_value());
}

TEST(Tlb, LruEvictionWithinSet)
{
    // Direct-mapped-ish: 4 entries, 4 ways = one set.
    Tlb tlb({4, 4});
    for (Addr i = 0; i < 4; ++i) {
        tlb.insert(kBase + i * kPageSize4K, i, false);
    }
    // Touch page 0 so page 1 is LRU.
    EXPECT_TRUE(tlb.lookup(kBase).has_value());
    tlb.insert(kBase + 100 * kPageSize4K, 100, false);
    EXPECT_TRUE(tlb.lookup(kBase).has_value());
    EXPECT_FALSE(tlb.lookup(kBase + kPageSize4K).has_value())
        << "LRU entry should have been evicted";
    EXPECT_EQ(tlb.stats().evictions, 1u);
}

TEST(Tlb, InsertRefreshesExistingEntry)
{
    Tlb tlb({4, 4});
    tlb.insert(kBase, 1, false);
    tlb.insert(kBase, 2, false);
    EXPECT_EQ(tlb.validCount(), 1u);
    EXPECT_EQ(tlb.lookup(kBase)->pfn, 2u);
}

TEST(Tlb, InvalidatePageBothSizes)
{
    Tlb tlb({16, 4});
    tlb.insert(kBase, 512, true);
    tlb.insert(kBase, 42, false); // same vaddr, 4KB entry
    tlb.invalidatePage(kBase);
    EXPECT_FALSE(tlb.lookup(kBase).has_value());
    EXPECT_EQ(tlb.stats().invalidations, 2u);
}

TEST(Tlb, FlushAllClearsEverything)
{
    Tlb tlb({16, 4});
    for (Addr i = 0; i < 8; ++i) {
        tlb.insert(kBase + i * kPageSize4K, i, false);
    }
    tlb.flushAll();
    EXPECT_EQ(tlb.validCount(), 0u);
    EXPECT_EQ(tlb.stats().flushes, 1u);
}

TEST(Tlb, PeekDoesNotTouchStats)
{
    Tlb tlb({16, 4});
    tlb.insert(kBase, 1, false);
    const auto before = tlb.stats().hits;
    EXPECT_TRUE(tlb.peek(kBase).has_value());
    EXPECT_FALSE(tlb.peek(kBase + kPageSize2M).has_value());
    EXPECT_EQ(tlb.stats().hits, before);
}

TEST(Tlb, MissRatio)
{
    Tlb tlb({16, 4});
    tlb.insert(kBase, 1, false);
    (void)tlb.lookup(kBase);
    (void)tlb.lookup(kBase);
    (void)tlb.lookup(kBase + kPageSize2M);
    EXPECT_NEAR(tlb.stats().missRatio(), 1.0 / 3.0, 1e-12);
}

TEST(TlbDeath, BadGeometryPanics)
{
    EXPECT_DEATH(Tlb({0, 4}), "empty");
    EXPECT_DEATH(Tlb({10, 4}), "divisible");
}

TEST(TlbHierarchy, L2HitRefillsL1)
{
    TlbHierarchy tlb({4, 4}, {64, 8});
    tlb.insert(kBase, 1, false);
    // Evict from tiny L1 by filling the set.
    for (Addr i = 1; i <= 4; ++i) {
        tlb.l1().insert(kBase + i * kPageSize4K, i, false);
    }
    TlbEntry entry;
    const auto level = tlb.lookup(kBase, &entry);
    EXPECT_EQ(level, TlbHierarchy::HitLevel::L2);
    EXPECT_EQ(entry.pfn, 1u);
    // Refilled into L1 now.
    EXPECT_EQ(tlb.lookup(kBase, &entry), TlbHierarchy::HitLevel::L1);
}

TEST(TlbHierarchy, MissWhenNeitherHolds)
{
    TlbHierarchy tlb({4, 4}, {64, 8});
    EXPECT_EQ(tlb.lookup(kBase), TlbHierarchy::HitLevel::Miss);
}

TEST(TlbHierarchy, InvalidateBothLevels)
{
    TlbHierarchy tlb({4, 4}, {64, 8});
    tlb.insert(kBase, 9, true);
    tlb.invalidatePage(kBase);
    EXPECT_EQ(tlb.lookup(kBase), TlbHierarchy::HitLevel::Miss);
}

TEST(TlbHierarchy, HugeRefillTranslatesBaseAddress)
{
    TlbHierarchy tlb({4, 4}, {64, 8});
    tlb.insert(kBase + kPageSize2M, 512, true);
    tlb.l1().flushAll();
    TlbEntry entry;
    // Hit via an offset address; refill must use the page base.
    EXPECT_EQ(tlb.lookup(kBase + kPageSize2M + 777, &entry),
              TlbHierarchy::HitLevel::L2);
    EXPECT_EQ(tlb.lookup(kBase + kPageSize2M + 4096, &entry),
              TlbHierarchy::HitLevel::L1);
}

} // namespace
} // namespace thermostat
