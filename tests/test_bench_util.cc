/**
 * @file
 * Tests for the benchmark-harness helpers (correlation math used by
 * the Figure 2 study, duration scaling, configuration defaults).
 */

#include <gtest/gtest.h>

#include "bench_util.hh"

namespace thermostat::bench
{
namespace
{

TEST(Pearson, PerfectPositive)
{
    EXPECT_NEAR(pearson({1, 2, 3, 4}, {10, 20, 30, 40}), 1.0, 1e-12);
}

TEST(Pearson, PerfectNegative)
{
    EXPECT_NEAR(pearson({1, 2, 3, 4}, {8, 6, 4, 2}), -1.0, 1e-12);
}

TEST(Pearson, ConstantSeriesIsZero)
{
    EXPECT_DOUBLE_EQ(pearson({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(Pearson, UncorrelatedNearZero)
{
    Rng rng(1);
    std::vector<double> x;
    std::vector<double> y;
    for (int i = 0; i < 5000; ++i) {
        x.push_back(rng.nextDouble());
        y.push_back(rng.nextDouble());
    }
    EXPECT_LT(std::abs(pearson(x, y)), 0.05);
}

TEST(Spearman, MonotoneNonlinearIsOne)
{
    // Rank correlation sees through the nonlinearity.
    std::vector<double> x{1, 2, 3, 4, 5};
    std::vector<double> y{1, 8, 27, 64, 125};
    EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
    EXPECT_LT(pearson(x, y), 1.0);
}

TEST(Spearman, TiesAreAveraged)
{
    std::vector<double> x{1, 2, 2, 3};
    std::vector<double> y{1, 2, 2, 3};
    EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
}

TEST(ScaledDuration, QuickDividesByFour)
{
    EXPECT_EQ(scaledDuration(1200, false), 1200 * kNsPerSec);
    EXPECT_EQ(scaledDuration(1200, true), 300 * kNsPerSec);
}

TEST(ScaledDuration, QuickFloorsAt120)
{
    EXPECT_EQ(scaledDuration(200, true), 120 * kNsPerSec);
}

TEST(StandardConfig, UsesTunedMachineAndTarget)
{
    const SimConfig config =
        standardConfig("redis", 6.0, 100 * kNsPerSec);
    EXPECT_DOUBLE_EQ(config.params.tolerableSlowdownPct, 6.0);
    EXPECT_EQ(config.duration, 100 * kNsPerSec);
    // Redis tuning gives a 24GB fast tier.
    EXPECT_EQ(config.machine.fastTier.capacityBytes, 24ULL << 30);
}

TEST(BenchWorkloads, DefaultsToAllSix)
{
    // THERMOSTAT_ONLY unset in the test environment.
    unsetenv("THERMOSTAT_ONLY");
    EXPECT_EQ(benchWorkloadNames().size(), 6u);
    setenv("THERMOSTAT_ONLY", "redis", 1);
    const auto only = benchWorkloadNames();
    ASSERT_EQ(only.size(), 1u);
    EXPECT_EQ(only[0], "redis");
    unsetenv("THERMOSTAT_ONLY");
}

} // namespace
} // namespace thermostat::bench
