/**
 * @file
 * Regression net for the cloud-application calibrations: the zone
 * structure each model promises (hot heads, warm middles, idle
 * tails, rate floors) is what actually comes out of the samplers.
 * If a recalibration breaks a paper-level behaviour (e.g. Redis's
 * probe floor disappears, or MySQL's history table starts taking
 * traffic), these tests fail before any benchmark does.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "workload/cloud_apps.hh"

namespace thermostat
{
namespace
{

constexpr int kSamples = 300000;

/** Per-2MB-page empirical burst counts for one workload. */
struct ZoneProfile
{
    TieredMemory memory{TierConfig::dram(32ULL << 30),
                        TierConfig::slow(8ULL << 30)};
    std::unique_ptr<AddressSpace> space;
    std::unique_ptr<ComposedWorkload> workload;
    std::map<Addr, Count> pageCounts;

    explicit ZoneProfile(std::unique_ptr<ComposedWorkload> w)
        : space(std::make_unique<AddressSpace>(memory)),
          workload(std::move(w))
    {
        workload->setup(*space);
        Rng rng(123);
        for (int i = 0; i < kSamples; ++i) {
            ++pageCounts[alignDown2M(workload->sample(rng).addr)];
        }
    }

    /** Fraction of samples landing in [lo, hi) of a region. */
    double
    sliceShare(const std::string &region, double lo, double hi)
    {
        const Region *r = space->findRegion(region);
        if (r == nullptr) {
            return 0.0;
        }
        const Addr lo_addr =
            r->base + static_cast<Addr>(
                          static_cast<double>(r->mappedBytes) * lo);
        const Addr hi_addr =
            r->base + static_cast<Addr>(
                          static_cast<double>(r->mappedBytes) * hi);
        Count hits = 0;
        for (const auto &[page, count] : pageCounts) {
            if (page >= lo_addr && page < hi_addr) {
                hits += count;
            }
        }
        return static_cast<double>(hits) / kSamples;
    }
};

TEST(CloudAppZones, AerospikeIdleTailIsUntouched)
{
    ZoneProfile p(makeAerospike());
    // [90%, 100%) of the data region: expired records, truly idle.
    EXPECT_EQ(p.sliceShare("data", 0.905, 1.0), 0.0);
    // Hot zone carries the bulk.
    EXPECT_GT(p.sliceShare("data", 0.0, 0.55), 0.60);
}

TEST(CloudAppZones, CassandraOldGenIsNearlyIdle)
{
    ZoneProfile p(makeCassandra());
    // Old generation [45%, 100%) of the heap: GC trickle only.
    EXPECT_LT(p.sliceShare("heap", 0.46, 1.0), 0.002);
    // SSTables see recency-skewed reads: the head outweighs the
    // tail by a large factor.
    const double head = p.sliceShare("sstables", 0.0, 0.1);
    const double tail = p.sliceShare("sstables", 0.9, 1.0);
    EXPECT_GT(head, 8.0 * (tail + 1e-9));
}

TEST(CloudAppZones, MysqlHistoryTableIsCold)
{
    ZoneProfile p(makeMysqlTpcc());
    // History [55%, 100%) of the buffer pool: written once.
    EXPECT_LT(p.sliceShare("buffer-pool", 0.56, 1.0), 0.001);
    // Hot tables dominate.
    EXPECT_GT(p.sliceShare("buffer-pool", 0.0, 0.40), 0.70);
}

TEST(CloudAppZones, RedisFloorTouchesMostPages)
{
    ZoneProfile p(makeRedis());
    const Region *heap = p.space->findRegion("heap");
    // Count distinct 2MB pages with at least one sample: the probe
    // floor plus scattered hotspot should reach most of the heap.
    Count touched = 0;
    for (const auto &[page, count] : p.pageCounts) {
        if (page >= heap->base && page < heap->end()) {
            ++touched;
        }
    }
    const double frac =
        static_cast<double>(touched) /
        static_cast<double>(heap->mappedBytes / kPageSize2M);
    EXPECT_GT(frac, 0.90)
        << "the hash-table probe floor should warm nearly every "
           "page (Sec 5's Redis argument)";
}

TEST(CloudAppZones, RedisBurstyRotationConcentrates)
{
    ZoneProfile p(makeRedisBursty());
    // The rotating slice [96%, 99%) gets a large share in the
    // bursty variant -- the Fig 1 trap traffic.
    EXPECT_GT(p.sliceShare("heap", 0.96, 0.99), 0.05);
}

TEST(CloudAppZones, AnalyticsScanCoversMiddle)
{
    ZoneProfile p(makeInMemAnalytics());
    // The rating-matrix scan walks [25%, 100%) of the initial heap
    // cyclically; over 300K samples it reaches deep offsets.
    EXPECT_GT(p.sliceShare("heap", 0.25, 1.00), 0.10);
    // The RDD cache is written rarely.
    EXPECT_LT(p.sliceShare("rdd-cache", 0.0, 1.0), 0.001);
}

TEST(CloudAppZones, WebSearchTailIsIdle)
{
    ZoneProfile p(makeWebSearch());
    EXPECT_LT(p.sliceShare("index", 0.61, 1.0), 0.001);
    EXPECT_GT(p.sliceShare("index", 0.0, 0.02), 0.30)
        << "hot dictionary/query caches";
}

TEST(CloudAppZones, WriteFractionsFollowMix)
{
    TieredMemory memory(TierConfig::dram(32ULL << 30),
                        TierConfig::slow(8ULL << 30));
    AddressSpace space(memory);
    auto w = makeCassandra(YcsbMix::WriteHeavy);
    w->setup(space);
    Rng rng(5);
    Count writes = 0;
    Count memtable_writes = 0;
    Count memtable_total = 0;
    const Region *memtable = space.findRegion("memtable");
    for (int i = 0; i < 100000; ++i) {
        const MemRef ref = w->sample(rng);
        writes += ref.type == AccessType::Write;
        if (ref.addr >= memtable->base &&
            ref.addr < memtable->end()) {
            ++memtable_total;
            memtable_writes += ref.type == AccessType::Write;
        }
    }
    // Write-heavy memtable traffic is ~95% writes.
    EXPECT_GT(static_cast<double>(memtable_writes) /
                  static_cast<double>(memtable_total),
              0.9);
    EXPECT_GT(writes, 0u);
}

} // namespace
} // namespace thermostat
