/**
 * @file
 * Randomized differential test of the page table against a simple
 * shadow model: random map/unmap/split/collapse sequences must keep
 * walk results, leaf counts and flag folding consistent.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.hh"
#include "vm/page_table.hh"

namespace thermostat
{
namespace
{

/** Shadow leaf: what the model thinks a 2MB slot holds. */
struct ShadowSlot
{
    enum class State { Unmapped, Huge, Split } state =
        State::Unmapped;
    Pfn basePfn = 0;
};

class PageTableFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(PageTableFuzz, MatchesShadowModel)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
    PageTable pt;
    constexpr Addr kBase = Addr{16} << 30;
    constexpr unsigned kSlots = 24;
    std::map<unsigned, ShadowSlot> shadow;
    for (unsigned i = 0; i < kSlots; ++i) {
        shadow[i] = ShadowSlot();
    }
    Pfn next_block = 0;

    for (int step = 0; step < 3000; ++step) {
        const unsigned slot =
            static_cast<unsigned>(rng.nextBounded(kSlots));
        const Addr vaddr = kBase + slot * kPageSize2M;
        ShadowSlot &s = shadow[slot];
        switch (rng.nextBounded(5)) {
          case 0: // map2M
            if (s.state == ShadowSlot::State::Unmapped) {
                s.basePfn = next_block;
                next_block += kSubpagesPerHuge;
                pt.map2M(vaddr, s.basePfn);
                s.state = ShadowSlot::State::Huge;
            }
            break;
          case 1: // unmap
            if (s.state == ShadowSlot::State::Huge) {
                pt.unmap2M(vaddr);
                s.state = ShadowSlot::State::Unmapped;
            } else if (s.state == ShadowSlot::State::Split) {
                for (unsigned i = 0; i < kSubpagesPerHuge; ++i) {
                    pt.unmap4K(vaddr + i * kPageSize4K);
                }
                s.state = ShadowSlot::State::Unmapped;
            }
            break;
          case 2: // split
            if (s.state == ShadowSlot::State::Huge) {
                ASSERT_TRUE(pt.split(vaddr));
                s.state = ShadowSlot::State::Split;
            } else {
                ASSERT_FALSE(pt.split(vaddr));
            }
            break;
          case 3: // collapse
            if (s.state == ShadowSlot::State::Split) {
                ASSERT_TRUE(pt.collapse(vaddr));
                s.state = ShadowSlot::State::Huge;
            } else {
                ASSERT_FALSE(pt.collapse(vaddr));
            }
            break;
          default: { // probe a random address in the slot
            const Addr probe =
                vaddr + rng.nextBounded(kPageSize2M);
            const WalkResult wr = pt.walk(probe);
            switch (s.state) {
              case ShadowSlot::State::Unmapped:
                ASSERT_FALSE(wr.mapped());
                break;
              case ShadowSlot::State::Huge:
                ASSERT_TRUE(wr.mapped());
                ASSERT_TRUE(wr.huge);
                ASSERT_EQ(wr.pte->pfn(), s.basePfn);
                break;
              case ShadowSlot::State::Split:
                ASSERT_TRUE(wr.mapped());
                ASSERT_FALSE(wr.huge);
                ASSERT_EQ(wr.pte->pfn(),
                          s.basePfn + subpageIndex(probe));
                break;
            }
            break;
          }
        }

        // Leaf-count invariants hold after every operation.
        std::uint64_t huge = 0;
        std::uint64_t split = 0;
        for (const auto &[idx, slot_state] : shadow) {
            huge += slot_state.state == ShadowSlot::State::Huge;
            split += slot_state.state == ShadowSlot::State::Split;
        }
        ASSERT_EQ(pt.hugeLeafCount(), huge);
        ASSERT_EQ(pt.baseLeafCount(), split * kSubpagesPerHuge);
    }

    // Final enumeration agrees with the shadow model.
    std::uint64_t visited = 0;
    pt.forEachLeaf([&](Addr addr, Pte &, bool huge) {
        ++visited;
        const unsigned slot = static_cast<unsigned>(
            (alignDown2M(addr) - kBase) / kPageSize2M);
        ASSERT_LT(slot, kSlots);
        if (huge) {
            ASSERT_EQ(shadow[slot].state, ShadowSlot::State::Huge);
        } else {
            ASSERT_EQ(shadow[slot].state, ShadowSlot::State::Split);
        }
    });
    std::uint64_t expected = 0;
    for (const auto &[idx, s] : shadow) {
        if (s.state == ShadowSlot::State::Huge) {
            ++expected;
        } else if (s.state == ShadowSlot::State::Split) {
            expected += kSubpagesPerHuge;
        }
    }
    ASSERT_EQ(visited, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PageTableFuzz,
                         ::testing::Range(1, 7));

TEST(PageTableFuzzFlags, SplitCollapseFoldsRandomFlags)
{
    Rng rng(4242);
    for (int round = 0; round < 200; ++round) {
        PageTable pt;
        const Addr vaddr = Addr{4} << 30;
        pt.map2M(vaddr, 512);
        ASSERT_TRUE(pt.split(vaddr));
        bool any_accessed = false;
        bool any_dirty = false;
        bool any_poison = false;
        for (unsigned i = 0; i < kSubpagesPerHuge; ++i) {
            Pte *pte = pt.walk(vaddr + i * kPageSize4K).pte;
            if (rng.nextBool(0.05)) {
                pte->setAccessed();
                any_accessed = true;
            }
            if (rng.nextBool(0.03)) {
                pte->setDirty();
                any_dirty = true;
            }
            if (rng.nextBool(0.01)) {
                pte->poison();
                any_poison = true;
            }
        }
        ASSERT_TRUE(pt.collapse(vaddr));
        const Pte *huge = pt.walk(vaddr).pte;
        ASSERT_EQ(huge->accessed(), any_accessed);
        ASSERT_EQ(huge->dirty(), any_dirty);
        ASSERT_EQ(huge->poisoned(), any_poison);
    }
}

} // namespace
} // namespace thermostat
