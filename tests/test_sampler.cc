/**
 * @file
 * Tests for the profiling sampler (paper Sec 3.2): selection,
 * splitting, Accessed-bit screening and poison budgeting.
 */

#include <gtest/gtest.h>

#include <unordered_set>

#include "core/sampler.hh"

namespace thermostat
{
namespace
{

class SamplerTest : public ::testing::Test
{
  protected:
    SamplerTest()
        : memory_(TierConfig::dram(512_MiB),
                  TierConfig::slow(512_MiB)),
          space_(memory_),
          tlb_({64, 4}, {1024, 8}),
          trap_(space_, tlb_),
          kstaled_(space_, tlb_),
          sampler_(space_, trap_, kstaled_, Rng(7))
    {
        heap_ = space_.mapRegion("heap", 200_MiB); // 100 huge pages
        conf_ = space_.mapRegion("conf", 80_KiB, 0, false);
    }

    void
    touch(Addr page)
    {
        space_.pageTable().walk(page).pte->setAccessed();
    }

    TieredMemory memory_;
    AddressSpace space_;
    TlbShards tlb_;
    BadgerTrap trap_;
    Kstaled kstaled_;
    Sampler sampler_;
    Addr heap_ = 0;
    Addr conf_ = 0;
};

TEST_F(SamplerTest, SelectsRequestedFraction)
{
    const auto split = sampler_.selectAndSplit(0.05, {});
    EXPECT_EQ(split.size(), 5u); // 5% of 100 huge pages
    EXPECT_EQ(sampler_.stats().splits, 5u);
}

TEST_F(SamplerTest, SplitPagesAre4KMapped)
{
    const auto split = sampler_.selectAndSplit(0.05, {});
    for (const Addr base : split) {
        const WalkResult wr = space_.pageTable().walk(base);
        ASSERT_TRUE(wr.mapped());
        EXPECT_FALSE(wr.huge);
    }
}

TEST_F(SamplerTest, SplitClearsSubpageAccessedBits)
{
    // Pre-set A bits everywhere; after stage 1 the sampled pages'
    // subpages must be clean so stage 2 reflects new accesses only.
    space_.pageTable().forEachLeaf(
        [](Addr, Pte &pte, bool) { pte.setAccessed(); });
    const auto split = sampler_.selectAndSplit(0.10, {});
    for (const Addr base : split) {
        for (unsigned i = 0; i < kSubpagesPerHuge; ++i) {
            EXPECT_FALSE(space_.pageTable()
                             .walk(base + i * kPageSize4K)
                             .pte->accessed());
        }
    }
}

TEST_F(SamplerTest, ExclusionRespected)
{
    std::unordered_set<Addr> exclude;
    for (unsigned i = 0; i < 90; ++i) {
        exclude.insert(heap_ + i * kPageSize2M);
    }
    const auto split = sampler_.selectAndSplit(0.5, exclude);
    for (const Addr base : split) {
        EXPECT_EQ(exclude.count(base), 0u);
    }
    EXPECT_LE(split.size(), 10u);
}

TEST_F(SamplerTest, ZeroFractionSelectsNothing)
{
    EXPECT_TRUE(sampler_.selectAndSplit(0.0, {}).empty());
}

TEST_F(SamplerTest, PoisonBudgetCapsPoisonedSubpages)
{
    const auto split = sampler_.selectAndSplit(0.02, {});
    ASSERT_EQ(split.size(), 2u);
    const Addr page = split[0];
    // Touch 100 subpages.
    for (unsigned i = 0; i < 100; ++i) {
        touch(page + i * 5 * kPageSize4K % kPageSize2M);
    }
    const SampledPage sampled = sampler_.poisonSubpages(page, 50);
    EXPECT_LE(sampled.poisoned.size(), 50u);
    EXPECT_GT(sampled.accessedSubpages, 0u);
    for (const Addr sub : sampled.poisoned) {
        EXPECT_TRUE(trap_.isPoisoned(sub));
    }
}

TEST_F(SamplerTest, OnlyAccessedSubpagesArePoisoned)
{
    const auto split = sampler_.selectAndSplit(0.01, {});
    ASSERT_EQ(split.size(), 1u);
    const Addr page = split[0];
    touch(page + 3 * kPageSize4K);
    touch(page + 9 * kPageSize4K);
    const SampledPage sampled = sampler_.poisonSubpages(page, 50);
    EXPECT_EQ(sampled.accessedSubpages, 2u);
    ASSERT_EQ(sampled.poisoned.size(), 2u);
    std::unordered_set<Addr> poisoned(sampled.poisoned.begin(),
                                      sampled.poisoned.end());
    EXPECT_EQ(poisoned.count(page + 3 * kPageSize4K), 1u);
    EXPECT_EQ(poisoned.count(page + 9 * kPageSize4K), 1u);
}

TEST_F(SamplerTest, IdlePageYieldsNoPoison)
{
    const auto split = sampler_.selectAndSplit(0.01, {});
    const SampledPage sampled =
        sampler_.poisonSubpages(split[0], 50);
    EXPECT_EQ(sampled.accessedSubpages, 0u);
    EXPECT_TRUE(sampled.poisoned.empty());
}

TEST_F(SamplerTest, SelectBasePagesSkipsSplitSubpages)
{
    const auto split = sampler_.selectAndSplit(0.05, {});
    // Select *all* base pages; none may belong to split samples.
    const auto base_pages =
        sampler_.selectBasePages(1.0, {}, split);
    std::unordered_set<Addr> split_set(split.begin(), split.end());
    for (const Addr page : base_pages) {
        EXPECT_EQ(split_set.count(alignDown2M(page)), 0u);
    }
    // The 20 "conf" pages are all eligible.
    EXPECT_EQ(base_pages.size(), 20u);
}

TEST_F(SamplerTest, PoisonBasePage)
{
    const SampledPage page = sampler_.poisonBasePage(conf_);
    EXPECT_FALSE(page.huge);
    ASSERT_EQ(page.poisoned.size(), 1u);
    EXPECT_TRUE(trap_.isPoisoned(conf_));
}

TEST_F(SamplerTest, RepeatedSelectionsDiffer)
{
    const auto a = sampler_.selectAndSplit(0.05, {});
    const auto b = sampler_.selectAndSplit(0.05, {});
    // Random selection: extremely unlikely to be identical (and
    // the first batch is still split, so b avoids... re-splitting
    // returns false and they are skipped).
    std::unordered_set<Addr> a_set(a.begin(), a.end());
    unsigned overlap = 0;
    for (const Addr base : b) {
        overlap += a_set.count(base);
    }
    EXPECT_EQ(overlap, 0u) << "already-split pages cannot re-split";
}

} // namespace
} // namespace thermostat
