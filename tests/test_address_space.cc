/**
 * @file
 * Tests for AddressSpace: regions, THP policy, growth, split /
 * collapse with allocator consistency, and tier accounting.
 */

#include <gtest/gtest.h>

#include "vm/address_space.hh"

namespace thermostat
{
namespace
{

TieredMemory
makeMemory()
{
    return TieredMemory(TierConfig::dram(256_MiB),
                        TierConfig::slow(256_MiB));
}

TEST(AddressSpace, MapRegionPopulatesHugePages)
{
    TieredMemory mem = makeMemory();
    AddressSpace space(mem);
    const Addr base = space.mapRegion("heap", 8_MiB);
    EXPECT_EQ(base % kPageSize2M, 0u);
    EXPECT_EQ(space.pageTable().hugeLeafCount(), 4u);
    EXPECT_EQ(space.pageTable().baseLeafCount(), 0u);
    EXPECT_EQ(space.rssBytes(), 8_MiB);
}

TEST(AddressSpace, NonThpRegionUses4K)
{
    TieredMemory mem = makeMemory();
    AddressSpace space(mem);
    space.mapRegion("conf", 64_KiB, 0, false);
    EXPECT_EQ(space.pageTable().hugeLeafCount(), 0u);
    EXPECT_EQ(space.pageTable().baseLeafCount(), 16u);
}

TEST(AddressSpace, GlobalThpDisableForcesBasePages)
{
    TieredMemory mem = makeMemory();
    AddressSpace space(mem, false);
    space.mapRegion("heap", 4_MiB, 0, true);
    EXPECT_EQ(space.pageTable().hugeLeafCount(), 0u);
    EXPECT_EQ(space.pageTable().baseLeafCount(),
              2 * kSubpagesPerHuge);
}

TEST(AddressSpace, UnalignedTailUses4K)
{
    TieredMemory mem = makeMemory();
    AddressSpace space(mem);
    space.mapRegion("heap", 2_MiB + 12_KiB);
    EXPECT_EQ(space.pageTable().hugeLeafCount(), 1u);
    EXPECT_EQ(space.pageTable().baseLeafCount(), 3u);
}

TEST(AddressSpace, RegionsDoNotOverlap)
{
    TieredMemory mem = makeMemory();
    AddressSpace space(mem);
    const Addr a = space.mapRegion("a", 4_MiB);
    const Addr b = space.mapRegion("b", 4_MiB);
    EXPECT_GE(b, a + 4_MiB);
}

TEST(AddressSpace, FindRegion)
{
    TieredMemory mem = makeMemory();
    AddressSpace space(mem);
    space.mapRegion("heap", 2_MiB);
    ASSERT_NE(space.findRegion("heap"), nullptr);
    EXPECT_EQ(space.findRegion("heap")->mappedBytes, 2_MiB);
    EXPECT_EQ(space.findRegion("nope"), nullptr);
}

TEST(AddressSpace, GrowRegionExtendsMapping)
{
    TieredMemory mem = makeMemory();
    AddressSpace space(mem);
    const Addr base = space.mapRegion("heap", 2_MiB, 8_MiB);
    space.growRegion("heap", 2_MiB);
    EXPECT_EQ(space.findRegion("heap")->mappedBytes, 4_MiB);
    EXPECT_TRUE(space.pageTable().walk(base + 3 * kPageSize2M / 2)
                    .mapped());
    EXPECT_EQ(space.rssBytes(), 4_MiB);
}

TEST(AddressSpace, GrowBeyondReservationDies)
{
    TieredMemory mem = makeMemory();
    AddressSpace space(mem);
    space.mapRegion("heap", 2_MiB, 4_MiB);
    EXPECT_EXIT(space.growRegion("heap", 4_MiB),
                ::testing::ExitedWithCode(1), "reservation");
}

TEST(AddressSpace, FileBackedAccounting)
{
    TieredMemory mem = makeMemory();
    AddressSpace space(mem);
    space.mapRegion("heap", 4_MiB);
    space.mapRegion("cache", 2_MiB, 0, true, true);
    EXPECT_EQ(space.rssBytes(), 6_MiB);
    EXPECT_EQ(space.fileBackedBytes(), 2_MiB);
}

TEST(AddressSpace, HugePageAddrsLists2MLeaves)
{
    TieredMemory mem = makeMemory();
    AddressSpace space(mem);
    space.mapRegion("heap", 6_MiB);
    space.mapRegion("conf", 8_KiB, 0, false);
    EXPECT_EQ(space.hugePageAddrs().size(), 3u);
}

TEST(AddressSpace, SplitHugeKeepsTranslationAndAllocator)
{
    TieredMemory mem = makeMemory();
    AddressSpace space(mem);
    const Addr base = space.mapRegion("heap", 2_MiB);
    const Pfn pfn = space.pageTable().walk(base).pte->pfn();
    ASSERT_TRUE(space.splitHuge(base));
    const WalkResult wr = space.pageTable().walk(base + 5 * 4096);
    ASSERT_TRUE(wr.mapped());
    EXPECT_FALSE(wr.huge);
    EXPECT_EQ(wr.pte->pfn(), pfn + 5);
    // Occupancy unchanged.
    EXPECT_EQ(mem.fast().usedBytes(), 2_MiB);
}

TEST(AddressSpace, SplitNonHugeFails)
{
    TieredMemory mem = makeMemory();
    AddressSpace space(mem);
    const Addr base = space.mapRegion("conf", 4_KiB, 0, false);
    EXPECT_FALSE(space.splitHuge(alignDown2M(base)));
}

TEST(AddressSpace, CollapseHugeRoundTrip)
{
    TieredMemory mem = makeMemory();
    AddressSpace space(mem);
    const Addr base = space.mapRegion("heap", 2_MiB);
    ASSERT_TRUE(space.splitHuge(base));
    ASSERT_TRUE(space.collapseHuge(base));
    EXPECT_TRUE(space.pageTable().walk(base).huge);
    // The reformed block can later be freed as a huge unit
    // (exercised by the destructor at scope exit).
}

TEST(AddressSpace, CollapseFailsAfterSubpageMigration)
{
    TieredMemory mem = makeMemory();
    AddressSpace space(mem);
    const Addr base = space.mapRegion("heap", 2_MiB);
    ASSERT_TRUE(space.splitHuge(base));
    // Move one subpage to the slow tier (what the migrator does).
    const Pfn new_pfn = *mem.allocBase(Tier::Slow);
    const Pfn old_pfn =
        space.pageTable().walk(base + 4096).pte->pfn();
    space.remapLeaf(base + 4096, new_pfn);
    mem.freeBase(old_pfn);
    EXPECT_FALSE(space.collapseHuge(base));
    EXPECT_EQ(space.tierOf(base + 4096), Tier::Slow);
}

TEST(AddressSpace, RemapLeafChangesBackingFrame)
{
    TieredMemory mem = makeMemory();
    AddressSpace space(mem);
    const Addr base = space.mapRegion("heap", 2_MiB);
    const Pfn old_pfn = space.pageTable().walk(base).pte->pfn();
    const Pfn new_pfn = *mem.allocHuge(Tier::Slow);
    space.remapLeaf(base, new_pfn);
    EXPECT_EQ(space.pageTable().walk(base).pte->pfn(), new_pfn);
    EXPECT_EQ(space.tierOf(base), Tier::Slow);
    mem.freeHuge(old_pfn);
}

TEST(AddressSpace, TierOfUnmapped)
{
    TieredMemory mem = makeMemory();
    AddressSpace space(mem);
    EXPECT_FALSE(space.tierOf(0x1234).has_value());
}

TEST(AddressSpace, BytesInTier)
{
    TieredMemory mem = makeMemory();
    AddressSpace space(mem);
    const Addr base = space.mapRegion("heap", 4_MiB);
    EXPECT_EQ(space.bytesInTier(Tier::Fast), 4_MiB);
    EXPECT_EQ(space.bytesInTier(Tier::Slow), 0u);
    const Pfn old_pfn = space.pageTable().walk(base).pte->pfn();
    const Pfn new_pfn = *mem.allocHuge(Tier::Slow);
    space.remapLeaf(base, new_pfn);
    mem.freeHuge(old_pfn);
    EXPECT_EQ(space.bytesInTier(Tier::Fast), 2_MiB);
    EXPECT_EQ(space.bytesInTier(Tier::Slow), 2_MiB);
}

TEST(AddressSpace, DestructorReleasesFrames)
{
    TieredMemory mem = makeMemory();
    {
        AddressSpace space(mem);
        space.mapRegion("heap", 32_MiB);
        space.mapRegion("conf", 64_KiB, 0, false);
        const Addr heap = space.findRegion("heap")->base;
        ASSERT_TRUE(space.splitHuge(heap));
        EXPECT_GT(mem.usedBytes(), 0u);
    }
    EXPECT_EQ(mem.usedBytes(), 0u);
}

TEST(AddressSpaceDeath, DuplicateRegionName)
{
    TieredMemory mem = makeMemory();
    AddressSpace space(mem);
    space.mapRegion("heap", 2_MiB);
    EXPECT_DEATH(space.mapRegion("heap", 2_MiB), "duplicate");
}

TEST(AddressSpaceDeath, ExhaustedTierIsFatal)
{
    TieredMemory mem(TierConfig::dram(4_MiB),
                     TierConfig::slow(4_MiB));
    AddressSpace space(mem);
    EXPECT_EXIT(space.mapRegion("big", 64_MiB),
                ::testing::ExitedWithCode(1), "exhausted");
}

} // namespace
} // namespace thermostat
