/**
 * @file
 * Tests for the machine access path: TLB fill, walk costs, poison
 * faults, bursts, tiers and the counterfactual baseline.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/machine.hh"

namespace thermostat
{
namespace
{

MachineConfig
tinyConfig()
{
    MachineConfig config;
    config.fastTier = TierConfig::dram(128_MiB);
    config.slowTier = TierConfig::slow(128_MiB);
    config.llc.sizeBytes = 256 * 1024;
    config.llc.ways = 4;
    return config;
}

class MachineTest : public ::testing::Test
{
  protected:
    MachineTest() : machine_(tinyConfig())
    {
        heap_ = machine_.space().mapRegion("heap", 16_MiB);
    }

    Machine machine_;
    Addr heap_ = 0;
};

TEST_F(MachineTest, FirstAccessMissesTlbThenHits)
{
    const AccessOutcome first =
        machine_.access(heap_, AccessType::Read);
    EXPECT_TRUE(first.tlbMiss);
    const AccessOutcome second =
        machine_.access(heap_ + 64, AccessType::Read);
    EXPECT_FALSE(second.tlbMiss);
    EXPECT_LT(second.actualLatency, first.actualLatency);
}

TEST_F(MachineTest, HugeEntryCoversWholePage)
{
    (void)machine_.access(heap_, AccessType::Read);
    const AccessOutcome out =
        machine_.access(heap_ + kPageSize2M - 64, AccessType::Read);
    EXPECT_FALSE(out.tlbMiss);
}

TEST_F(MachineTest, LlcMissChargesMemory)
{
    const AccessOutcome first =
        machine_.access(heap_, AccessType::Read);
    EXPECT_TRUE(first.llcMiss);
    EXPECT_EQ(first.tier, Tier::Fast);
    const AccessOutcome second =
        machine_.access(heap_, AccessType::Read);
    EXPECT_FALSE(second.llcMiss);
}

TEST_F(MachineTest, PoisonFaultChargedOnTlbMissOnly)
{
    machine_.trap().poison(heap_);
    const AccessOutcome faulted =
        machine_.access(heap_, AccessType::Read);
    EXPECT_TRUE(faulted.poisonFault);
    EXPECT_GE(faulted.actualLatency,
              machine_.config().trap.faultLatency);
    // BadgerTrap installed a TLB translation: next access sails.
    const AccessOutcome cached =
        machine_.access(heap_ + 128, AccessType::Read);
    EXPECT_FALSE(cached.poisonFault);
    // The PTE stays poisoned (repoisoned by the handler).
    EXPECT_TRUE(machine_.trap().isPoisoned(heap_));
}

TEST_F(MachineTest, FaultRecursAfterShootdown)
{
    machine_.trap().poison(heap_);
    (void)machine_.access(heap_, AccessType::Read);
    machine_.tlb().invalidatePage(heap_);
    const AccessOutcome out =
        machine_.access(heap_, AccessType::Read);
    EXPECT_TRUE(out.poisonFault);
    EXPECT_EQ(machine_.trap().stats().faults, 2u);
}

TEST_F(MachineTest, BaselineExcludesFaultAndSlowCosts)
{
    machine_.trap().poison(heap_);
    const AccessOutcome out =
        machine_.access(heap_, AccessType::Read);
    EXPECT_GE(out.actualLatency - out.baselineLatency,
              machine_.config().trap.faultLatency);
}

TEST_F(MachineTest, BurstTouchesMultipleLines)
{
    const AccessOutcome out =
        machine_.access(heap_, AccessType::Read, 1, 8);
    (void)out;
    EXPECT_EQ(machine_.stats().accesses, 1u);
    EXPECT_EQ(machine_.stats().lineAccesses, 8u);
    // All 8 lines are now cached.
    for (unsigned i = 0; i < 8; ++i) {
        EXPECT_TRUE(machine_.llc().contains(
            machine_.space().pageTable().walk(heap_).pte->pfn() *
                kPageSize4K +
            i * 64));
    }
}

TEST_F(MachineTest, BurstCostsMoreThanSingleLine)
{
    const AccessOutcome single =
        machine_.access(heap_, AccessType::Read, 1, 1);
    machine_.llc().flushAll();
    machine_.tlb().flushAll();
    const AccessOutcome burst =
        machine_.access(heap_, AccessType::Read, 1, 8);
    EXPECT_GT(burst.actualLatency, single.actualLatency);
}

TEST_F(MachineTest, WeightedStatsScale)
{
    (void)machine_.access(heap_, AccessType::Read, 100);
    EXPECT_EQ(machine_.stats().weightedAccesses, 100u);
    EXPECT_EQ(machine_.stats().accesses, 1u);
}

TEST_F(MachineTest, SlowTierAccessCountedInEmuMode)
{
    // Move the page into the slow zone manually.
    const Pfn old_pfn =
        machine_.space().pageTable().walk(heap_).pte->pfn();
    const Pfn new_pfn =
        *machine_.memory().allocHuge(Tier::Slow);
    machine_.space().remapLeaf(heap_, new_pfn);
    machine_.memory().freeHuge(old_pfn);
    machine_.tlb().flushAll();
    const AccessOutcome out =
        machine_.access(heap_, AccessType::Read, 7);
    EXPECT_EQ(out.tier, Tier::Slow);
    EXPECT_EQ(machine_.stats().weightedSlowAccesses, 7u);
    EXPECT_EQ(machine_.takeSlowAccessCount(), 7u);
    EXPECT_EQ(machine_.takeSlowAccessCount(), 0u);
}

TEST_F(MachineTest, ThpDisabledMapsBasePages)
{
    MachineConfig config = tinyConfig();
    config.thpEnabled = false;
    Machine machine(config);
    machine.space().mapRegion("heap", 4_MiB);
    EXPECT_EQ(machine.space().pageTable().hugeLeafCount(), 0u);
}

TEST(MachineModes, DeviceModeChargesSlowLatency)
{
    MachineConfig emu = tinyConfig();
    emu.slowMode = SlowEmuMode::BadgerTrapEmu;
    MachineConfig dev = tinyConfig();
    dev.slowMode = SlowEmuMode::Device;

    auto run = [](Machine &machine) {
        const Addr heap = machine.space().mapRegion("heap", 2_MiB);
        const Pfn old_pfn =
            machine.space().pageTable().walk(heap).pte->pfn();
        const Pfn new_pfn =
            *machine.memory().allocHuge(Tier::Slow);
        machine.space().remapLeaf(heap, new_pfn);
        machine.memory().freeHuge(old_pfn);
        machine.tlb().flushAll();
        machine.llc().flushAll();
        // TLB entry present (second access) so no walk, no fault.
        (void)machine.access(heap, AccessType::Read);
        machine.llc().flushAll();
        return machine.access(heap + 64, AccessType::Read);
    };
    Machine emu_machine(emu);
    Machine dev_machine(dev);
    const AccessOutcome emu_out = run(emu_machine);
    const AccessOutcome dev_out = run(dev_machine);
    EXPECT_GT(dev_out.actualLatency, emu_out.actualLatency)
        << "Device mode must charge the slow-device latency";
}

TEST(CountingModes, CmBitFaultsOnLlcMissOnly)
{
    MachineConfig config = tinyConfig();
    config.countingMode = CountingMode::CmBit;
    Machine machine(config);
    const Addr heap = machine.space().mapRegion("heap", 2_MiB);
    machine.trap().poison(heap);
    // First access: TLB miss but NO 1us fault; LLC miss raises a
    // cheap overlapped CM fault instead.
    const AccessOutcome out =
        machine.access(heap, AccessType::Read);
    EXPECT_TRUE(out.poisonFault);
    EXPECT_LT(out.actualLatency,
              machine.config().trap.faultLatency);
    EXPECT_EQ(machine.stats().cmFaults, 1u);
    EXPECT_EQ(machine.trap().stats().faults, 0u);
    // Second access hits the LLC: no CM fault.
    const AccessOutcome hit =
        machine.access(heap, AccessType::Read);
    EXPECT_FALSE(hit.poisonFault);
}

TEST(CountingModes, PebsModeNeverFaults)
{
    MachineConfig config = tinyConfig();
    config.countingMode = CountingMode::Pebs;
    Machine machine(config);
    const Addr heap = machine.space().mapRegion("heap", 2_MiB);
    machine.trap().poison(heap);
    const AccessOutcome out =
        machine.access(heap, AccessType::Read);
    EXPECT_FALSE(out.poisonFault);
    EXPECT_EQ(machine.trap().stats().faults, 0u);
    EXPECT_EQ(machine.stats().cmFaults, 0u);
}

TEST_F(MachineTest, EffectiveWalkLatencyHonorsOverlap)
{
    EXPECT_EQ(machine_.effectiveWalkLatency(true),
              static_cast<Ns>(std::llround(
                  static_cast<double>(
                      machine_.walker().walkLatency(true)) /
                  machine_.config().overlapFactor)));
}

TEST_F(MachineTest, UnmappedAccessPanics)
{
    EXPECT_DEATH((void)machine_.access(Addr{1} << 40,
                                       AccessType::Read),
                 "unmapped");
}

} // namespace
} // namespace thermostat
