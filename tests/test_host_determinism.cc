/**
 * @file
 * Host determinism matrix: a consolidated multi-tenant run must be
 * a pure function of (specs, config) -- byte-identical across
 * worker-pool sizes (THERMOSTAT_JOBS), shard counts (--shards),
 * and simple repetition, mirroring what test_shard_determinism
 * proves for a standalone Simulation.
 *
 * The host adds three things the standalone matrix does not cover:
 * the shared worker pool injected into every tenant, the arbiter's
 * fair-share grant split, and the per-epoch accounting reads.  All
 * are deterministic by construction (tenant order is fixed, the
 * grant split is integer arithmetic over active indices, and the
 * scans are read-only); this suite proves it empirically.
 *
 * The same binary runs under TSan in the shard-determinism CI job,
 * which additionally proves the consolidated tenants share no
 * unsynchronized state through the pool.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "harness.hh"
#include "host/datacenter_host.hh"

namespace thermostat
{
namespace
{

using test::halfColdWorkload;
using test::tinySimConfig;

/** Everything we compare between two host runs. */
struct HostFingerprint
{
    std::string hostFlightCsv;
    std::string hostMetricsJson;
    std::vector<std::string> tenantMetrics;
    std::vector<std::string> tenantFlights;
    std::vector<std::uint64_t> samplerDigests;
    std::vector<double> slowdowns;
    Count denials = 0;
    Count invariantViolations = 0;
};

DatacenterHost::WorkloadFactory
halfColdFactory()
{
    return [](const TenantSpec &, const SimConfig &) {
        return halfColdWorkload();
    };
}

std::vector<TenantSpec>
matrixTenants()
{
    std::vector<TenantSpec> specs;
    const char *const policies[] = {"thermostat", "lru-age",
                                    "hotness"};
    for (unsigned i = 0; i < 3; ++i) {
        TenantSpec spec;
        spec.id = "t" + std::to_string(i);
        spec.workload = "half-cold";
        spec.policy = policies[i];
        spec.coldFraction = 0.4;
        specs.push_back(spec);
    }
    // Fault injection on one tenant keeps the fault RNG stream in
    // the determinism contract too.
    specs[2].faultPlan = "migration-copy:p=0.1";
    return specs;
}

HostConfig
matrixConfig(std::uint64_t seed, unsigned shards)
{
    HostConfig config;
    config.base = tinySimConfig(seed);
    config.base.samplesPerEpoch = 2000;
    config.base.duration = 20 * kNsPerSec;
    config.base.shards = shards;
    config.base.sampler.keepRecords = true;
    config.base.sampler.maxRecords = 256;
    config.tuneMachinePerWorkload = false;
    config.arbiter.migrationBwBytesPerSec = 48.0e6;
    config.arbiter.tenantFastCapBytes = 48_MiB;
    config.arbiter.epoch = config.base.epoch;
    return config;
}

HostFingerprint
runHost(std::uint64_t seed, unsigned shards)
{
    DatacenterHost host(matrixTenants(),
                        matrixConfig(seed, shards),
                        halfColdFactory());
    const HostResult hr = host.run();

    HostFingerprint fp;
    fp.hostFlightCsv = host.flightRecorder().toCsv();
    fp.hostMetricsJson = host.metrics().dumpJson();
    for (unsigned i = 0; i < host.tenantCount(); ++i) {
        Simulation &tenant = host.tenant(i);
        fp.tenantMetrics.push_back(tenant.metricsJson());
        fp.tenantFlights.push_back(
            tenant.flightRecorder().toCsv());
        fp.samplerDigests.push_back(
            tenant.accessSampler() != nullptr
                ? tenant.accessSampler()->streamDigest()
                : 0);
        fp.slowdowns.push_back(hr.tenants[i].result.slowdown);
    }
    fp.denials = hr.arbiterDenials;
    fp.invariantViolations = hr.invariantViolations;
    return fp;
}

void
expectIdentical(const HostFingerprint &ref,
                const HostFingerprint &got, const std::string &where)
{
    EXPECT_EQ(ref.hostFlightCsv, got.hostFlightCsv) << where;
    EXPECT_EQ(ref.hostMetricsJson, got.hostMetricsJson) << where;
    EXPECT_EQ(ref.tenantMetrics, got.tenantMetrics) << where;
    EXPECT_EQ(ref.tenantFlights, got.tenantFlights) << where;
    EXPECT_EQ(ref.samplerDigests, got.samplerDigests) << where;
    EXPECT_EQ(ref.slowdowns, got.slowdowns) << where;
    EXPECT_EQ(ref.denials, got.denials) << where;
    EXPECT_EQ(ref.invariantViolations, got.invariantViolations)
        << where;
}

/** RAII env pin for THERMOSTAT_JOBS. */
class ScopedJobs
{
  public:
    explicit ScopedJobs(const char *value)
    {
        const char *old = std::getenv("THERMOSTAT_JOBS");
        had_ = old != nullptr;
        if (had_) {
            saved_ = old;
        }
        ::setenv("THERMOSTAT_JOBS", value, 1);
    }

    ~ScopedJobs()
    {
        if (had_) {
            ::setenv("THERMOSTAT_JOBS", saved_.c_str(), 1);
        } else {
            ::unsetenv("THERMOSTAT_JOBS");
        }
    }

  private:
    bool had_ = false;
    std::string saved_;
};

TEST(HostDeterminism, JobsShardsRerunMatrix)
{
    // Reference: serial pool, serial pipeline.
    HostFingerprint ref;
    {
        ScopedJobs jobs("1");
        ref = runHost(5, 1);
    }
    ASSERT_FALSE(ref.hostFlightCsv.empty());
    ASSERT_EQ(ref.invariantViolations, 0u);

    for (const char *jobs_env : {"1", "4"}) {
        // shards 0 = auto, which is where THERMOSTAT_JOBS actually
        // steers the pool size.
        for (const unsigned shards : {0u, 1u, 8u}) {
            ScopedJobs jobs(jobs_env);
            const std::string where =
                std::string("jobs=") + jobs_env +
                " shards=" + std::to_string(shards);
            expectIdentical(ref, runHost(5, shards), where);
            if (::testing::Test::HasFailure()) {
                return; // one cell's dump is enough
            }
            // Same-seed rerun inside the same cell.
            expectIdentical(ref, runHost(5, shards),
                            where + " (rerun)");
            if (::testing::Test::HasFailure()) {
                return;
            }
        }
    }
}

TEST(HostDeterminism, DistinctSeedsDiverge)
{
    // Sanity check that the fingerprint has discriminating power:
    // different seeds must not collide.
    ScopedJobs jobs("1");
    const HostFingerprint a = runHost(5, 1);
    const HostFingerprint b = runHost(6, 1);
    EXPECT_NE(a.tenantMetrics, b.tenantMetrics);
}

} // namespace
} // namespace thermostat
