/**
 * @file
 * Tests for the Sec 6 future-work extension: spreading a 2MB page
 * across fast and slow memory.
 */

#include <gtest/gtest.h>

#include "sim/simulation.hh"

namespace thermostat
{
namespace
{

/**
 * Hot-corner workload: every 2MB page has exactly one blazing 4KB
 * subpage (stride 2MB scan) plus a trickle everywhere.
 */
std::unique_ptr<ComposedWorkload>
hotCornerWorkload()
{
    auto w = std::make_unique<ComposedWorkload>(
        "hot-corner", 200.0e3, 0.8, 300 * kNsPerSec);
    const std::uint64_t bytes = 64_MiB;
    w->addRegion({"data", bytes, 0, true, false});
    TrafficComponent hot;
    hot.region = "data";
    hot.weight = 0.999;
    hot.burstLines = 8;
    hot.pattern =
        std::make_unique<SequentialScanPattern>(bytes, kPageSize2M);
    w->addComponent(std::move(hot));
    TrafficComponent trickle;
    trickle.region = "data";
    trickle.weight = 0.0001; // dead bulk: ~0.6 touches/page/sec
    trickle.pattern = std::make_unique<UniformPattern>(bytes);
    w->addComponent(std::move(trickle));
    return w;
}

SimConfig
spreadConfig(bool spread)
{
    SimConfig config;
    config.seed = 9;
    config.samplesPerEpoch = 5000;
    config.profileWeight = 2;
    config.machine.fastTier = TierConfig::dram(256_MiB);
    config.machine.slowTier = TierConfig::slow(256_MiB);
    config.machine.llc.sizeBytes = 1_MiB;
    config.params.sampleFraction = 0.25;
    config.params.spreadHugePages = spread;
    config.params.spreadMaxHotSubpages = 16;
    config.duration = 240 * kNsPerSec;
    return config;
}

TEST(SpreadPages, DisabledKeepsHotCornerPagesWhole)
{
    Simulation sim(hotCornerWorkload(), spreadConfig(false));
    const SimResult r = sim.run();
    EXPECT_EQ(r.engine.pagesSpread, 0u);
    // Page-granular placement cannot separate the hot corner from
    // the dead bulk: nearly nothing moves.
    EXPECT_LT(r.finalColdFraction, 0.15);
}

TEST(SpreadPages, EnabledDemotesColdSubpages)
{
    Simulation sim(hotCornerWorkload(), spreadConfig(true));
    const SimResult r = sim.run();
    EXPECT_GT(r.engine.pagesSpread, 0u);
    EXPECT_GT(r.engine.spreadSubpagesDemoted,
              r.engine.pagesSpread * 400)
        << "spread pages should demote most of their 512 subpages";
    // Most of the footprint ends up in slow memory...
    EXPECT_GT(r.finalColdFraction, 0.4);
    // ...while the hot subpages stay fast and the slowdown stays
    // near the budget.
    EXPECT_LT(r.slowdown, 0.06);
}

TEST(SpreadPages, HotSubpagesStayInFastMemory)
{
    Simulation sim(hotCornerWorkload(), spreadConfig(true));
    (void)sim.run();
    AddressSpace &space = sim.machine().space();
    const Region *data = space.findRegion("data");
    // Subpage 0 of every 2MB page is the hot one.
    unsigned spread_pages = 0;
    for (Addr base = data->base; base < data->end();
         base += kPageSize2M) {
        const WalkResult wr = space.pageTable().walk(base);
        if (!wr.mapped() || wr.huge) {
            continue; // not spread
        }
        ++spread_pages;
        EXPECT_EQ(space.tierOf(base), Tier::Fast)
            << "hot subpage of a spread page was demoted";
    }
    EXPECT_GT(spread_pages, 0u);
}

TEST(SpreadPages, SpreadColdSubpagesAreMonitored)
{
    Simulation sim(hotCornerWorkload(), spreadConfig(true));
    (void)sim.run();
    // All spread-demoted subpages sit in the engine's cold base set
    // and are poisoned for correction monitoring.
    for (const Addr page : sim.engine().coldBasePages()) {
        EXPECT_EQ(sim.machine().space().tierOf(page), Tier::Slow);
        EXPECT_TRUE(sim.machine().trap().isPoisoned(page));
    }
    EXPECT_GE(sim.engine().coldBasePages().size(),
              sim.engine().stats().spreadSubpagesDemoted / 2);
}

TEST(SpreadPages, ThresholdGatesSpreading)
{
    // With a threshold of 0 hot subpages allowed... the page always
    // has >= 1 accessed subpage, so nothing spreads.
    SimConfig config = spreadConfig(true);
    config.params.spreadMaxHotSubpages = 0;
    Simulation sim(hotCornerWorkload(), config);
    const SimResult r = sim.run();
    EXPECT_EQ(r.engine.pagesSpread, 0u);
}

} // namespace
} // namespace thermostat
