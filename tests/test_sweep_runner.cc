/**
 * @file
 * Determinism tests for the parallel sweep runner: a sweep executed
 * on N workers must be bit-identical to the same sweep executed
 * serially -- same scalar results, same counter snapshots, same
 * time series, same exported CSV bytes -- because every run's
 * randomness derives only from its own seed.  Also exercises the
 * ThreadPool primitive directly.
 */

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <atomic>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/thread_pool.hh"
#include "sim/csv_export.hh"
#include "sweep_runner.hh"

namespace thermostat
{
namespace
{

using bench::SweepJob;
using bench::runSweep;

std::vector<SweepJob>
smallSweep()
{
    // Two applications x two seeds, short runs: enough structure to
    // catch cross-run interference without slowing the suite.
    std::vector<SweepJob> jobs;
    for (const char *workload : {"redis", "web-search"}) {
        for (const std::uint64_t seed : {7ULL, 21ULL}) {
            jobs.push_back(
                {workload, 3.0, 30 * kNsPerSec, seed, 0});
        }
    }
    return jobs;
}

void
expectSeriesIdentical(const TimeSeries &a, const TimeSeries &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.at(i).time, b.at(i).time);
        EXPECT_EQ(a.at(i).value, b.at(i).value); // exact, not near
    }
}

void
expectResultsIdentical(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.duration, b.duration);
    EXPECT_EQ(a.slowdown, b.slowdown);
    EXPECT_EQ(a.actualSeconds, b.actualSeconds);
    EXPECT_EQ(a.baselineSeconds, b.baselineSeconds);
    EXPECT_EQ(a.avgColdFraction, b.avgColdFraction);
    EXPECT_EQ(a.finalColdFraction, b.finalColdFraction);
    EXPECT_EQ(a.finalRssBytes, b.finalRssBytes);
    EXPECT_EQ(a.demotionBytesPerSec, b.demotionBytesPerSec);
    EXPECT_EQ(a.promotionBytesPerSec, b.promotionBytesPerSec);
    EXPECT_EQ(a.monitorOverheadFraction, b.monitorOverheadFraction);
    EXPECT_EQ(a.auditViolations, b.auditViolations);

    expectSeriesIdentical(a.hot2M, b.hot2M);
    expectSeriesIdentical(a.hot4K, b.hot4K);
    expectSeriesIdentical(a.cold2M, b.cold2M);
    expectSeriesIdentical(a.cold4K, b.cold4K);
    expectSeriesIdentical(a.engineSlowRate, b.engineSlowRate);
    expectSeriesIdentical(a.deviceSlowRate, b.deviceSlowRate);

    // Machine-level counter snapshots.
    EXPECT_EQ(a.l1Tlb.hits, b.l1Tlb.hits);
    EXPECT_EQ(a.l1Tlb.misses, b.l1Tlb.misses);
    EXPECT_EQ(a.l2Tlb.hits, b.l2Tlb.hits);
    EXPECT_EQ(a.l2Tlb.misses, b.l2Tlb.misses);
    EXPECT_EQ(a.llc.hits, b.llc.hits);
    EXPECT_EQ(a.llc.misses, b.llc.misses);
    EXPECT_EQ(a.llc.writebacks, b.llc.writebacks);
    EXPECT_EQ(a.walker.walks4K, b.walker.walks4K);
    EXPECT_EQ(a.walker.walks2M, b.walker.walks2M);
    EXPECT_EQ(a.walker.totalWalkTime, b.walker.totalWalkTime);
    EXPECT_EQ(a.trap.faults, b.trap.faults);
    EXPECT_EQ(a.trap.weightedFaults, b.trap.weightedFaults);
    EXPECT_EQ(a.machineStats.accesses, b.machineStats.accesses);
    EXPECT_EQ(a.machineStats.actualTime, b.machineStats.actualTime);
    EXPECT_EQ(a.machineStats.baselineTime,
              b.machineStats.baselineTime);
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Export @p r and return the concatenated CSV bytes. */
std::string
csvBytes(const SimResult &r, const std::string &tag)
{
    const std::string dir = ::testing::TempDir() + "sweep_" + tag;
    (void)mkdir(dir.c_str(), 0755);
    EXPECT_TRUE(writeSimResultCsv(r, dir));
    return slurp(dir + "/footprint.csv") +
           slurp(dir + "/slow_rate.csv") +
           slurp(dir + "/summary.csv");
}

TEST(ThreadPool, RunsEverySubmittedJob)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i) {
        pool.submit([&count] { ++count; });
    }
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIsReusableAcrossBatches)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
    for (int i = 0; i < 10; ++i) {
        pool.submit([&count] { ++count; });
    }
    pool.wait();
    EXPECT_EQ(count.load(), 11);
}

TEST(ThreadPool, DefaultJobsHonorsEnvironment)
{
    setenv("THERMOSTAT_JOBS", "3", 1);
    EXPECT_EQ(ThreadPool::defaultJobs(), 3u);
    setenv("THERMOSTAT_JOBS", "not-a-number", 1);
    EXPECT_GE(ThreadPool::defaultJobs(), 1u);
    unsetenv("THERMOSTAT_JOBS");
    EXPECT_GE(ThreadPool::defaultJobs(), 1u);
}

TEST(SweepRunner, EmptySweepReturnsNothing)
{
    EXPECT_TRUE(runSweep({}, 4).empty());
}

TEST(SweepRunner, ParallelSweepMatchesSerialBitForBit)
{
    const std::vector<SweepJob> jobs = smallSweep();
    const std::vector<SimResult> serial = runSweep(jobs, 1);
    const std::vector<SimResult> parallel = runSweep(jobs, 4);

    ASSERT_EQ(serial.size(), jobs.size());
    ASSERT_EQ(parallel.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        SCOPED_TRACE(jobs[i].workload + "/seed " +
                     std::to_string(jobs[i].seed));
        expectResultsIdentical(serial[i], parallel[i]);
    }

    // The exported CSV artifacts must also match byte for byte.
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const std::string tag = std::to_string(i);
        EXPECT_EQ(csvBytes(serial[i], "serial_" + tag),
                  csvBytes(parallel[i], "parallel_" + tag));
    }
}

TEST(SweepRunner, RepeatedParallelSweepsAreIdentical)
{
    std::vector<SweepJob> jobs;
    for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
        jobs.push_back({"redis", 3.0, 15 * kNsPerSec, seed, 0});
    }
    const std::vector<SimResult> first = runSweep(jobs, 3);
    const std::vector<SimResult> second = runSweep(jobs, 3);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        expectResultsIdentical(first[i], second[i]);
    }
    // Distinct seeds must actually produce distinct streams.
    EXPECT_NE(first[0].llc.hits, first[1].llc.hits);
}

} // namespace
} // namespace thermostat
