/**
 * @file
 * Tests for kstaled-style Accessed-bit idle tracking (paper
 * Sec 2.1, Fig 1 baseline).
 */

#include <gtest/gtest.h>

#include "sys/kstaled.hh"

namespace thermostat
{
namespace
{

class KstaledTest : public ::testing::Test
{
  protected:
    KstaledTest()
        : memory_(TierConfig::dram(64_MiB), TierConfig::slow(64_MiB)),
          space_(memory_),
          tlb_({64, 4}, {1024, 8}),
          kstaled_(space_, tlb_)
    {
        heap_ = space_.mapRegion("heap", 8_MiB); // 4 huge pages
    }

    void
    touch(Addr page)
    {
        space_.pageTable().walk(page).pte->setAccessed();
    }

    TieredMemory memory_;
    AddressSpace space_;
    TlbShards tlb_;
    Kstaled kstaled_;
    Addr heap_ = 0;
};

TEST_F(KstaledTest, ScanClearsAccessedBits)
{
    touch(heap_);
    const ScanStats stats = kstaled_.scanAll();
    EXPECT_EQ(stats.scannedPtes, 4u);
    EXPECT_EQ(stats.accessedPtes, 1u);
    EXPECT_EQ(stats.shootdowns, 1u);
    EXPECT_FALSE(space_.pageTable().walk(heap_).pte->accessed());
}

TEST_F(KstaledTest, ScanShootsDownAccessedPages)
{
    tlb_.insert(heap_, 0, true);
    touch(heap_);
    kstaled_.scanAll();
    EXPECT_EQ(tlb_.lookup(heap_), TlbHierarchy::HitLevel::Miss);
}

TEST_F(KstaledTest, IdleScansAccumulateForUntouchedPages)
{
    for (int i = 0; i < 5; ++i) {
        kstaled_.scanAll();
    }
    EXPECT_EQ(kstaled_.idleState(heap_).idleScans, 5u);
    EXPECT_EQ(kstaled_.idleState(heap_).hotStreak, 0u);
}

TEST_F(KstaledTest, AccessResetsIdleCount)
{
    kstaled_.scanAll();
    kstaled_.scanAll();
    touch(heap_);
    kstaled_.scanAll();
    EXPECT_EQ(kstaled_.idleState(heap_).idleScans, 0u);
    EXPECT_EQ(kstaled_.idleState(heap_).hotStreak, 1u);
}

TEST_F(KstaledTest, HotStreakCriterion)
{
    for (int i = 0; i < 3; ++i) {
        touch(heap_);
        kstaled_.scanAll();
    }
    EXPECT_TRUE(kstaled_.isHot(heap_));
    kstaled_.scanAll(); // one idle scan breaks the streak
    EXPECT_FALSE(kstaled_.isHot(heap_));
}

TEST_F(KstaledTest, HugeIdleFraction)
{
    // Touch one of the four huge pages on every scan.
    for (int i = 0; i < 4; ++i) {
        touch(heap_);
        kstaled_.scanAll();
    }
    // 3 of 4 huge pages idle for >= 3 scans.
    EXPECT_NEAR(kstaled_.hugeIdleFraction(3), 0.75, 1e-12);
    EXPECT_NEAR(kstaled_.hugeIdleFraction(5), 0.0, 1e-12);
}

TEST_F(KstaledTest, ScanPagesSubset)
{
    ASSERT_TRUE(space_.splitHuge(heap_));
    touch(heap_ + 3 * kPageSize4K);
    const std::vector<Addr> pages = {heap_, heap_ + 3 * kPageSize4K};
    const ScanStats stats = kstaled_.scanPages(pages);
    EXPECT_EQ(stats.scannedPtes, 2u);
    EXPECT_EQ(stats.accessedPtes, 1u);
}

TEST_F(KstaledTest, ScanPagesSkipsUnmapped)
{
    const std::vector<Addr> pages = {Addr{1} << 40};
    const ScanStats stats = kstaled_.scanPages(pages);
    EXPECT_EQ(stats.scannedPtes, 0u);
}

TEST_F(KstaledTest, TestAndClearAccessed)
{
    touch(heap_);
    EXPECT_TRUE(kstaled_.testAndClearAccessed(heap_));
    EXPECT_FALSE(kstaled_.testAndClearAccessed(heap_));
}

TEST_F(KstaledTest, CostModelChargesPerPteAndShootdown)
{
    touch(heap_);
    const ScanStats stats = kstaled_.scanAll();
    const KstaledConfig &config = kstaled_.config();
    EXPECT_EQ(stats.cost, 4 * config.perPteCost +
                              1 * config.shootdownCost);
    EXPECT_EQ(kstaled_.totalCost(), stats.cost);
}

TEST_F(KstaledTest, ScanCountIncrements)
{
    kstaled_.scanAll();
    kstaled_.scanPages({heap_});
    EXPECT_EQ(kstaled_.scanCount(), 2u);
}

TEST_F(KstaledTest, ResetForgetsState)
{
    kstaled_.scanAll();
    kstaled_.reset();
    EXPECT_EQ(kstaled_.idleState(heap_).idleScans, 0u);
}

} // namespace
} // namespace thermostat
